/**
 * @file
 * Table 6: network echo round-trip for 64 B packets (microseconds):
 * FLD-E vs a CPU echo server. Paper: FLD-E mean 2.78 / median 2.6 /
 * p99 3.4 / p99.9 4.34; CPU mean 2.36 / median 2.34 / p99 2.58 /
 * p99.9 11.18 — FLD is ~17% slower on average (FPGA clock) but 2.5x
 * better at the 99.9th percentile (no OS interference).
 */
#include "apps/scenarios.h"
#include "bench/bench_util.h"

using namespace fld;
using namespace fld::apps;

namespace {

sim::Histogram
run_echo_rtt(bool fld)
{
    // window=1: unloaded round trips.
    PktGenConfig g = bench::closed_loop_gen(64, 1, /*measure_rtt=*/true);

    sim::TimePs warmup = sim::microseconds(200);
    sim::TimePs duration = sim::milliseconds(120);
    if (fld) {
        auto s = make_fld_echo(true, g);
        s->gen->start(warmup, duration);
        s->tb->eq.run();
        return s->gen->rtt_us();
    }
    auto s = make_cpu_echo(true, g);
    s->gen->start(warmup, duration);
    s->tb->eq.run();
    return s->gen->rtt_us();
}

} // namespace

int
main()
{
    bench::banner("Table 6: echo round trip, 64 B packets (us)",
                  "FlexDriver §8.1.1");

    sim::Histogram fld = run_echo_rtt(true);
    sim::Histogram cpu = run_echo_rtt(false);

    TextTable t;
    t.header({"", "Mean", "Median", "99th-%", "99.9th-%", "samples"});
    t.row({"FLD-E", strfmt("%.2f", fld.mean()),
           strfmt("%.2f", fld.median()),
           strfmt("%.2f", fld.percentile(99)),
           strfmt("%.2f", fld.percentile(99.9)),
           strfmt("%zu", fld.count())});
    t.row({"CPU", strfmt("%.2f", cpu.mean()),
           strfmt("%.2f", cpu.median()),
           strfmt("%.2f", cpu.percentile(99)),
           strfmt("%.2f", cpu.percentile(99.9)),
           strfmt("%zu", cpu.count())});
    t.separator();
    t.row({"(paper FLD-E)", "2.78", "2.6", "3.4", "4.34", ""});
    t.row({"(paper CPU)", "2.36", "2.34", "2.58", "11.18", ""});
    t.print();

    bench::note(strfmt(
        "shape checks: FLD mean/CPU mean = %.2f (paper 1.17); CPU "
        "p99.9 / FLD p99.9 = %.2f (paper 2.5)",
        fld.mean() / cpu.mean(),
        cpu.percentile(99.9) / fld.percentile(99.9)));
    return 0;
}
