/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries. Each
 * binary regenerates one table or figure of the paper; outputs print
 * the paper's reported value next to the reproduced one wherever the
 * paper gives a number.
 */
#ifndef FLD_BENCH_BENCH_UTIL_H
#define FLD_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

#include "util/strings.h"
#include "util/table.h"

namespace fld::bench {

inline void
banner(const std::string& what, const std::string& paper_ref)
{
    std::printf("\n=== %s (%s) ===\n", what.c_str(), paper_ref.c_str());
}

inline void
note(const std::string& text)
{
    std::printf("  %s\n", text.c_str());
}

/**
 * Parse the `--trace=<path>` knob shared by the bench binaries.
 * Returns the export path, or an empty string when tracing was not
 * requested on the command line.
 */
inline std::string
parse_trace_option(int argc, char** argv)
{
    const std::string prefix = "--trace=";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            return arg.substr(prefix.size());
    }
    return {};
}

} // namespace fld::bench

#endif // FLD_BENCH_BENCH_UTIL_H
