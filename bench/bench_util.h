/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries. Each
 * binary regenerates one table or figure of the paper; outputs print
 * the paper's reported value next to the reproduced one wherever the
 * paper gives a number.
 */
#ifndef FLD_BENCH_BENCH_UTIL_H
#define FLD_BENCH_BENCH_UTIL_H

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "apps/scenarios.h"
#include "util/strings.h"
#include "util/table.h"

namespace fld::bench {

inline void
banner(const std::string& what, const std::string& paper_ref)
{
    std::printf("\n=== %s (%s) ===\n", what.c_str(), paper_ref.c_str());
}

inline void
note(const std::string& text)
{
    std::printf("  %s\n", text.c_str());
}

/**
 * Parse the `--trace=<path>` knob shared by the bench binaries.
 * Returns the export path, or an empty string when tracing was not
 * requested on the command line.
 */
inline std::string
parse_trace_option(int argc, char** argv)
{
    const std::string prefix = "--trace=";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            return arg.substr(prefix.size());
    }
    return {};
}

/**
 * Parse the `--jobs=N` knob shared by the sweep benches. Returns 1
 * (serial) when not given.
 */
inline unsigned
parse_jobs_option(int argc, char** argv)
{
    const std::string prefix = "--jobs=";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0) {
            unsigned long v = std::strtoul(
                arg.c_str() + prefix.size(), nullptr, 0);
            return v < 1 ? 1u : unsigned(v);
        }
    }
    return 1;
}

/**
 * Evaluate @p fn(i) for i in [0, n) across @p jobs worker threads and
 * return the results in index order, so a parallel sweep prints the
 * same table as a serial one. Each fn(i) must be self-contained (its
 * own testbed/EventQueue); the per-thread Tracer slot keeps traced
 * rows from interfering. Rows are claimed from an atomic counter, so
 * results are deterministic for any jobs value — only wall-clock
 * completion order varies.
 */
inline std::vector<std::vector<std::string>>
parallel_rows(size_t n, unsigned jobs,
              const std::function<std::vector<std::string>(size_t)>& fn)
{
    std::vector<std::vector<std::string>> rows(n);
    if (jobs <= 1) {
        for (size_t i = 0; i < n; ++i)
            rows[i] = fn(i);
        return rows;
    }
    std::atomic<size_t> next{0};
    auto worker = [&] {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            rows[i] = fn(i);
        }
    };
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < jobs && t < n; ++t)
        pool.emplace_back(worker);
    for (auto& th : pool)
        th.join();
    return rows;
}

// ---------------------------------------------------------------------
// Canonical workload/config builders. These used to be copy-pasted in
// every bench binary; they are also the scenario fuzzer's default-
// config base, so the randomized runs start from the same calibrated
// setup the paper reproductions use.
// ---------------------------------------------------------------------

/** Open-loop offered rate used across benches: just past the 25 GbE
 *  line rate, so the device under test is the bottleneck. */
constexpr double kOpenLoopGbps = 26.0;

/** testpmd-style open-loop generator at @p gbps offered load. */
inline apps::PktGenConfig
open_loop_gen(size_t frame, double gbps = kOpenLoopGbps,
              uint32_t flows = 1)
{
    apps::PktGenConfig g;
    g.frame_size = frame;
    g.offered_gbps = gbps;
    g.flows = flows;
    return g;
}

/** Closed-loop generator with @p window outstanding packets. */
inline apps::PktGenConfig
closed_loop_gen(size_t frame, uint32_t window, bool measure_rtt = false)
{
    apps::PktGenConfig g;
    g.frame_size = frame;
    g.window = window;
    g.measure_rtt = measure_rtt;
    return g;
}

/** IMC-2010 mixed-size open-loop generator (§8.1.1 packet rates). */
inline apps::PktGenConfig
imc_mix_gen(uint32_t flows = 16, double gbps = kOpenLoopGbps)
{
    apps::PktGenConfig g;
    g.imc_mix = true;
    g.offered_gbps = gbps;
    g.flows = flows;
    return g;
}

/** Delivered goodput over a finished generator's measure window. */
inline double
measured_gbps(const apps::PacketGen& gen)
{
    return gen.rx_meter().gbps(gen.measure_start(), gen.measure_end());
}

/** Delivered packet rate over a finished generator's measure window. */
inline double
measured_mpps(const apps::PacketGen& gen)
{
    return gen.rx_meter().mpps(gen.measure_start(), gen.measure_end());
}

/** Build, run and measure one FLD-E echo exchange. */
inline double
run_fld_echo_gbps(bool remote, const apps::PktGenConfig& g,
                  sim::TimePs warmup, sim::TimePs duration,
                  apps::TestbedConfig tc = {})
{
    auto s = apps::make_fld_echo(remote, g, tc);
    s->gen->start(warmup, duration);
    s->tb->eq.run();
    return measured_gbps(*s->gen);
}

/** Build, run and measure one CPU-driver echo exchange. */
inline double
run_cpu_echo_gbps(bool remote, const apps::PktGenConfig& g,
                  sim::TimePs warmup, sim::TimePs duration,
                  apps::TestbedConfig tc = {})
{
    auto s = apps::make_cpu_echo(remote, g, tc);
    s->gen->start(warmup, duration);
    s->tb->eq.run();
    return measured_gbps(*s->gen);
}

} // namespace fld::bench

#endif // FLD_BENCH_BENCH_UTIL_H
