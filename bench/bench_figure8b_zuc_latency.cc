/**
 * @file
 * Figure 8b: ZUC request latency vs offered bandwidth (512 B
 * requests). Paper: the disaggregated accelerator is no faster at low
 * load (network adds RTT) but sustains much higher bandwidth than the
 * single-core CPU; latency blows up when either side saturates.
 */
#include "apps/scenarios.h"
#include "bench/bench_util.h"

using namespace fld;
using namespace fld::apps;

namespace {

struct Point
{
    double achieved_gbps;
    double median_us;
    double p99_us;
};

Point
run_fld_point(double offered_gbps)
{
    auto s = make_fldr_zuc(true);
    CryptoPerfConfig cfg;
    cfg.request_payload = 512;
    cfg.offered_gbps = offered_gbps;
    CryptoPerfClient perf(s->tb->eq, *s->client, cfg);
    perf.start(sim::milliseconds(1), sim::milliseconds(5));
    s->tb->eq.run();
    return {perf.response_meter().gbps(perf.measure_start(),
                                       perf.last_response()),
            perf.latency_us().median(), perf.latency_us().percentile(99)};
}

/** CPU path: local software ZUC on one core — latency is the service
 *  time plus M/M/1-style queueing against the core's capacity. */
Point
cpu_point(double offered_gbps)
{
    double service_us = (250.0 + 512.0 * 8.0 / 6.0) / 1000.0;
    double capacity_gbps = 512.0 * 8.0 / (service_us * 1000.0);
    double rho = offered_gbps / capacity_gbps;
    if (rho >= 0.99)
        return {capacity_gbps, 1e3, 1e3}; // saturated
    double wait_us = service_us * rho / (1.0 - rho);
    return {offered_gbps, service_us + wait_us,
            (service_us + wait_us) * 3.0};
}

} // namespace

int
main()
{
    bench::banner("Figure 8b: ZUC latency vs bandwidth (512 B)",
                  "FlexDriver §8.2.1");

    TextTable t;
    t.header({"Offered Gbps", "FLD achieved", "FLD median us",
              "FLD p99 us", "CPU median us"});
    for (double offered : {1.0, 2.0, 4.0, 8.0, 12.0, 15.0, 17.0}) {
        Point fld = run_fld_point(offered);
        Point cpu = cpu_point(offered);
        t.row({format_gbps(offered), format_gbps(fld.achieved_gbps),
               strfmt("%.1f", fld.median_us),
               strfmt("%.1f", fld.p99_us),
               cpu.median_us >= 1e3 ? "saturated"
                                    : strfmt("%.1f", cpu.median_us)});
    }
    t.print();
    bench::note("paper shape: the remote accelerator starts with a "
                "network RTT handicap at low load but keeps a flat "
                "latency to ~4x the bandwidth the CPU can serve");
    return 0;
}
