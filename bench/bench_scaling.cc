/**
 * @file
 * §9 (Discussion) scaling study: FLD scales to higher rates by
 * instantiating multiple queues/"cores" and letting NIC RSS balance
 * flows across them. This bench echoes small packets through one vs.
 * several FLD-E queues and reports the throughput scaling, plus the
 * §5.2.1 memory headroom at higher rates.
 */
#include "apps/testbed.h"
#include "bench/bench_util.h"
#include "apps/pktgen.h"
#include "driver/cpu_driver.h"
#include "model/memory_model.h"

using namespace fld;
using namespace fld::apps;

namespace {

double
run_with_queues(uint32_t queues)
{
    TestbedConfig tc;
    tc.fld.num_tx_queues = queues;
    tc.fld.tx_vwindow_bytes = 256 * 1024 / queues; // shared SRAM
    // Model a narrower per-core DMA pipeline so the per-queue engine,
    // not the shared fabric, is the first bottleneck — the situation
    // §9's multi-core proposal addresses.
    tc.nic.max_fetches_inflight = 2;
    tc.client_host.rx_packet_cost = sim::nanoseconds(20);
    tc.client_host.tx_packet_cost = sim::nanoseconds(20);
    Testbed tb(tc);

    // One FLD-E queue pair per "core", RSS spreading across them.
    std::vector<runtime::FldRuntime::EthQueue> qs;
    std::vector<uint32_t> rqns;
    for (uint32_t q = 0; q < queues; ++q) {
        qs.push_back(
            tb.rt->create_eth_queue(tb.fld_vport, q, 16 / queues));
        rqns.push_back(qs.back().rqn);
    }

    // Echo accelerator lanes: completion key -> FLD tx queue.
    std::map<uint32_t, uint32_t> lane;
    for (uint32_t q = 0; q < queues; ++q)
        lane[qs[q].rqn] = q;
    tb.fld->set_rx_handler([&tb, lane](core::StreamPacket&& pkt) {
        uint32_t q = lane.count(pkt.meta.queue)
                         ? lane.at(pkt.meta.queue) : 0;
        core::StreamPacket out;
        out.data = std::move(pkt.data);
        tb.fld->tx(q, std::move(out));
    });

    // Steering: RSS over the FLD RQs; FLD egress to the wire.
    uint32_t tir = tb.server_nic->create_tir({rqns});
    nic::FlowMatch from_wire;
    from_wire.in_vport = nic::kUplinkVport;
    tb.server_nic->add_rule(0, 0, from_wire, {nic::fwd_tir(tir)});
    tb.route_vport_to_uplink(*tb.server_nic, tb.fld_vport);

    // Client generator (2 lcores) with many flows for RSS entropy.
    driver::CpuDriverConfig gcfg;
    gcfg.num_queues = 2;
    driver::CpuDriver gen_driver(
        "client.testpmd", tb.eq, tb.fabric, tb.client_host_port,
        tb.client_mem, tb.client_arena(32 << 20), 32 << 20,
        *tb.client_nic, Testbed::kClientNicBar, tb.client_host,
        tb.client_app_vport, gcfg, Testbed::kClientMemBase);
    tb.install_client_forwarding();
    uint32_t ctir = tb.client_nic->create_tir({{gen_driver.rqn(1)}});
    tb.client_nic->set_vport_default_tir(tb.client_app_vport, ctir);

    PktGenConfig g = bench::open_loop_gen(64, bench::kOpenLoopGbps,
                                          /*flows=*/64);
    PacketGen gen(tb.eq, gen_driver, 0, g);
    tb.eq.run();
    gen.start(sim::milliseconds(1), sim::milliseconds(4));
    tb.eq.run();
    return bench::measured_gbps(gen);
}

} // namespace

int
main()
{
    bench::banner("Scaling FLD with multiple queues + RSS",
                  "FlexDriver §9");

    TextTable t;
    t.header({"FLD queues", "64 B echo Gbps", "scaling"});
    double base = 0;
    for (uint32_t queues : {1u, 2u, 4u}) {
        double gbps = run_with_queues(queues);
        if (queues == 1)
            base = gbps;
        t.row({strfmt("%u", queues), format_gbps(gbps),
               strfmt("%.2fx", gbps / base)});
    }
    t.print();
    bench::note("per-queue descriptor pipelines parallelize; the "
                "remaining bound is the shared PCIe link, matching "
                "§9's expectation that fabric speed is the scaling "
                "limit");

    bench::banner("Memory headroom at future rates (§5.2.1)", "§9");
    TextTable m;
    m.header({"line rate", "FLD on-die", "fits XCKU15P"});
    for (double gbps : {100.0, 200.0, 400.0}) {
        model::MemoryParams p;
        p.bandwidth_gbps = gbps;
        p.num_queues = 2048;
        auto fld = model::fld_memory(p);
        m.row({format_gbps(gbps), format_bytes(fld.total),
               fld.total <= double(core::kXcku15pBytes) ? "yes" : "NO"});
    }
    m.print();
    return 0;
}
