/**
 * @file
 * Figure 8a: disaggregated ZUC encryption throughput vs request size
 * — remote FLD-R accelerator (25 GbE) against the local CPU software
 * implementation and the performance-model upper bound. Paper: FLD
 * reaches 17.6 Gbps (89% of expected) at >= 512 B, ~4x the CPU.
 */
#include "apps/scenarios.h"
#include "bench/bench_util.h"
#include "model/perf_model.h"

using namespace fld;
using namespace fld::apps;

namespace {

double
run_fld_zuc(size_t request_bytes)
{
    auto s = make_fldr_zuc(true);
    CryptoPerfConfig cfg;
    cfg.request_payload = request_bytes;
    cfg.window = 64;
    CryptoPerfClient perf(s->tb->eq, *s->client, cfg);
    perf.start(sim::milliseconds(1), sim::milliseconds(5));
    s->tb->eq.run();
    return perf.response_meter().gbps(perf.measure_start(),
                                      perf.last_response());
}

/**
 * CPU software ZUC (single core, Intel multi-buffer-library-class
 * implementation). Calibrated to the paper's measurement that the
 * remote accelerator's 17.6 Gbps is ~4x the CPU at >= 512 B requests:
 * per-request overhead ~250 ns plus ~6 Gbps of streaming throughput.
 */
double
cpu_zuc_gbps(size_t request_bytes)
{
    double ns = 250.0 + double(request_bytes) * 8.0 / 6.0;
    return double(request_bytes) * 8.0 / ns;
}

} // namespace

int
main()
{
    bench::banner("Figure 8a: ZUC encryption throughput",
                  "FlexDriver §8.2.1");

    model::PerfModelParams p;
    p.eth_gbps = 25.0;
    p.pcie_gbps = 50.0;

    TextTable t;
    t.header({"Request B", "FLD-R remote", "CPU (model)",
              "model bound", "FLD/CPU"});
    for (size_t size : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
        double fld = run_fld_zuc(size);
        double cpu = cpu_zuc_gbps(size);
        double bound = model::zuc_expected_gbps(p, uint32_t(size), 64,
                                                1024);
        t.row({strfmt("%zu", size), format_gbps(fld), format_gbps(cpu),
               format_gbps(bound), strfmt("%.1fx", fld / cpu)});
    }
    t.print();
    bench::note("paper shape: accelerator throughput rises with "
                "request size toward ~17.6 Gbps (89% of the model "
                "bound) and is ~4x the single-core CPU for >= 512 B");
    return 0;
}
