/**
 * @file
 * Figure 7b: FLD-E / FLD-R echo bandwidth vs packet size, local
 * (50 Gbps PCIe loopback) and remote (25 GbE wire), against the CPU
 * (testpmd) driver baseline and the performance model. Also the
 * §8.1.1 mixed-size (IMC-2010) packet-rate comparison: paper reports
 * 12.7 Mpps FLD-E vs 9.6 Mpps single-core CPU testpmd.
 */
#include "apps/scenarios.h"
#include "bench/bench_util.h"
#include "model/perf_model.h"

using namespace fld;
using namespace fld::apps;

namespace {

constexpr sim::TimePs kWarmup = sim::milliseconds(1);
constexpr sim::TimePs kDuration = sim::milliseconds(4);

double
run_fld_echo(bool remote, size_t frame)
{
    PktGenConfig g;
    g.frame_size = frame;
    if (remote) {
        g.offered_gbps = 26.0; // open loop just past line rate
    } else {
        // Local has no wire pacing: a closed loop self-regulates at
        // the PCIe bottleneck instead of collapsing under overload.
        g.window = 256;
    }
    auto s = make_fld_echo(remote, g);
    s->gen->start(kWarmup, kDuration);
    s->tb->eq.run();
    return s->gen->rx_meter().gbps(s->gen->measure_start(),
                                   s->gen->measure_end());
}

double
run_cpu_echo(size_t frame)
{
    PktGenConfig g;
    g.frame_size = frame;
    g.offered_gbps = 26.0;
    auto s = make_cpu_echo(true, g);
    s->gen->start(kWarmup, kDuration);
    s->tb->eq.run();
    return s->gen->rx_meter().gbps(s->gen->measure_start(),
                                   s->gen->measure_end());
}

double
run_fldr_echo(bool remote, size_t msg_bytes)
{
    auto s = make_fldr_echo(remote);
    sim::RateMeter meter;
    sim::TimePs start_measure = s->tb->eq.now() + kWarmup;
    sim::TimePs end = s->tb->eq.now() + kDuration;
    uint32_t next_id = 1;
    auto& eq = s->tb->eq;
    auto& client = *s->client;

    std::function<void()> send_next = [&] {
        if (eq.now() >= end)
            return;
        client.post_send(std::vector<uint8_t>(msg_bytes, 0xe5),
                         next_id++);
    };
    client.set_msg_handler([&](uint32_t, std::vector<uint8_t>&& msg) {
        if (eq.now() >= start_measure && eq.now() <= end)
            meter.record(eq.now(), msg.size());
        send_next();
    });
    for (int i = 0; i < 64; ++i)
        send_next();
    eq.run();
    return meter.gbps(start_measure, end);
}

double
run_mix_mpps(bool fld)
{
    PktGenConfig g;
    g.imc_mix = true;
    g.offered_gbps = 26.0;
    g.flows = 16;
    double mpps = 0;
    if (fld) {
        auto s = make_fld_echo(true, g);
        s->gen->start(kWarmup, kDuration);
        s->tb->eq.run();
        mpps = double(s->gen->rx_count()) /
               sim::to_us(s->gen->measure_end() -
                          s->gen->measure_start());
        // rx_count includes warmup; recompute from meter instead.
        mpps = s->gen->rx_meter().mpps(s->gen->measure_start(),
                                       s->gen->measure_end());
    } else {
        auto s = make_cpu_echo(true, g);
        s->gen->start(kWarmup, kDuration);
        s->tb->eq.run();
        mpps = s->gen->rx_meter().mpps(s->gen->measure_start(),
                                       s->gen->measure_end());
    }
    return mpps;
}

} // namespace

int
main()
{
    bench::banner("Figure 7b: echo throughput vs packet size",
                  "FlexDriver §8.1.1-8.1.2");

    model::PerfModelParams remote_model;
    remote_model.eth_gbps = 25.0;
    remote_model.pcie_gbps = 50.0;

    TextTable t;
    t.header({"Frame B", "FLD-E remote", "FLD-E local", "CPU remote",
              "FLD-R remote", "FLD-R local", "model (remote)",
              "eth line"});
    for (size_t size : {64u, 128u, 256u, 512u, 1024u, 1500u}) {
        double fld_remote = run_fld_echo(true, size);
        double fld_local = run_fld_echo(false, size);
        double cpu = run_cpu_echo(size);
        // FLD-R: message = frame payload; headers ride the transport.
        double fldr = run_fldr_echo(true, size);
        double fldr_local = run_fldr_echo(false, size);
        t.row({strfmt("%zu", size), format_gbps(fld_remote),
               format_gbps(fld_local), format_gbps(cpu),
               format_gbps(fldr), format_gbps(fldr_local),
               format_gbps(model::fld_expected_gbps(remote_model,
                                                    uint32_t(size))),
               format_gbps(
                   model::eth_goodput_gbps(25.0, uint32_t(size)))});
    }
    t.print();
    bench::note("paper shape: FLD-E meets the model from ~128 B "
                "(remote) / ~256 B (local); on par with the CPU "
                "driver; FLD-R slightly lower, meeting 25 Gbps for "
                ">= 512 B messages");

    bench::banner("IMC-2010 mixed sizes: packet rate", "§8.1.1");
    double fld_mpps = run_mix_mpps(true);
    double cpu_mpps = run_mix_mpps(false);
    TextTable m;
    m.header({"Driver", "Mpps", "(paper)"});
    m.row({"FLD-E echo", strfmt("%.1f", fld_mpps), "12.7"});
    m.row({"CPU testpmd (1 core)", strfmt("%.1f", cpu_mpps), "9.6"});
    m.row({"ratio", strfmt("%.2fx", fld_mpps / cpu_mpps), "1.32x"});
    m.print();
    return 0;
}
