/**
 * @file
 * Figure 7b: FLD-E / FLD-R echo bandwidth vs packet size, local
 * (50 Gbps PCIe loopback) and remote (25 GbE wire), against the CPU
 * (testpmd) driver baseline and the performance model. Also the
 * §8.1.1 mixed-size (IMC-2010) packet-rate comparison: paper reports
 * 12.7 Mpps FLD-E vs 9.6 Mpps single-core CPU testpmd.
 */
#include "apps/scenarios.h"
#include "bench/bench_util.h"
#include "model/perf_model.h"
#include "sim/trace.h"

using namespace fld;
using namespace fld::apps;

namespace {

constexpr sim::TimePs kWarmup = sim::milliseconds(1);
constexpr sim::TimePs kDuration = sim::milliseconds(4);

double
run_fld_echo(bool remote, size_t frame)
{
    // Local has no wire pacing: a closed loop self-regulates at the
    // PCIe bottleneck instead of collapsing under overload.
    PktGenConfig g = remote ? bench::open_loop_gen(frame)
                            : bench::closed_loop_gen(frame, 256);
    return bench::run_fld_echo_gbps(remote, g, kWarmup, kDuration);
}

double
run_cpu_echo(size_t frame)
{
    return bench::run_cpu_echo_gbps(true, bench::open_loop_gen(frame),
                                    kWarmup, kDuration);
}

double
run_fldr_echo(bool remote, size_t msg_bytes)
{
    auto s = make_fldr_echo(remote);
    sim::RateMeter meter;
    sim::TimePs start_measure = s->tb->eq.now() + kWarmup;
    sim::TimePs end = s->tb->eq.now() + kDuration;
    uint32_t next_id = 1;
    auto& eq = s->tb->eq;
    auto& client = *s->client;

    std::function<void()> send_next = [&] {
        if (eq.now() >= end)
            return;
        client.post_send(std::vector<uint8_t>(msg_bytes, 0xe5),
                         next_id++);
    };
    client.set_msg_handler([&](uint32_t, std::vector<uint8_t>&& msg) {
        if (eq.now() >= start_measure && eq.now() <= end)
            meter.record(eq.now(), msg.size());
        send_next();
    });
    for (int i = 0; i < 64; ++i)
        send_next();
    eq.run();
    return meter.gbps(start_measure, end);
}

double
run_mix_mpps(bool fld)
{
    PktGenConfig g = bench::imc_mix_gen();
    if (fld) {
        auto s = make_fld_echo(true, g);
        s->gen->start(kWarmup, kDuration);
        s->tb->eq.run();
        return bench::measured_mpps(*s->gen);
    }
    auto s = make_cpu_echo(true, g);
    s->gen->start(kWarmup, kDuration);
    s->tb->eq.run();
    return bench::measured_mpps(*s->gen);
}

/**
 * `--trace=<path>` mode: instead of the full throughput sweep, run two
 * short traced exchanges — a fault-free FLD-E echo and a 5%-loss FLD-R
 * echo — validate the causal invariants over both traces, and export
 * the fault-free one as Chrome trace-event JSON for Perfetto. Exits
 * non-zero on any invariant violation so CI can gate on it.
 */
int
run_trace_smoke(const std::string& path)
{
    bench::banner("Packet-lifecycle trace smoke (--trace)",
                  "tracing extension");
    size_t violations = 0;
    sim::TraceChecker checker;

    // Fault-free FLD-E echo, traced from setup through drain.
    sim::Tracer tracer;
    tracer.install();
    {
        PktGenConfig g;
        g.frame_size = 256;
        g.window = 8;
        auto s = make_fld_echo(true, g);
        s->gen->start(sim::microseconds(10), sim::microseconds(200));
        s->tb->eq.run();
    }
    tracer.uninstall();
    auto v = checker.check(tracer.events());
    bench::note(strfmt("fault-free FLD-E echo: %zu events, "
                       "%zu invariant violations",
                       tracer.events().size(), v.size()));
    for (const std::string& why : v)
        bench::note("  VIOLATION: " + why);
    violations += v.size();
    if (!tracer.write_chrome_json(path)) {
        bench::note("FAILED to write trace to " + path);
        return 1;
    }
    bench::note("wrote Chrome trace JSON to " + path +
                " (load it at https://ui.perfetto.dev)");

    // 5%-loss FLD-R echo: go-back-N recovery must stay causally
    // ordered, and completions exactly-once, under a lossy wire.
    sim::Tracer lossy;
    lossy.install();
    {
        TestbedConfig tb;
        tb.fault_seed = 42;
        tb.nic.wire_faults.drop_prob = 0.05;
        auto s = make_fldr_echo(true, tb);
        const uint32_t total = 30;
        uint32_t next = 1;
        auto post_next = [&] {
            if (next <= total) {
                s->client->post_send(
                    std::vector<uint8_t>(2048, uint8_t(next)), next);
                ++next;
            }
        };
        s->client->set_msg_handler(
            [&](uint32_t, std::vector<uint8_t>&&) { post_next(); });
        for (uint32_t i = 0; i < 8; ++i)
            post_next();
        s->tb->eq.run();
    }
    lossy.uninstall();
    auto v2 = checker.check(lossy.events());
    bench::note(strfmt("5%%-loss FLD-R echo: %zu events, "
                       "%zu invariant violations",
                       lossy.events().size(), v2.size()));
    for (const std::string& why : v2)
        bench::note("  VIOLATION: " + why);
    violations += v2.size();

    bench::note(violations == 0 ? "trace smoke: PASS"
                                : "trace smoke: FAIL");
    return violations == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string trace_path = bench::parse_trace_option(argc, argv);
    if (!trace_path.empty())
        return run_trace_smoke(trace_path);
    unsigned jobs = bench::parse_jobs_option(argc, argv);

    bench::banner("Figure 7b: echo throughput vs packet size",
                  "FlexDriver §8.1.1-8.1.2");

    model::PerfModelParams remote_model;
    remote_model.eth_gbps = 25.0;
    remote_model.pcie_gbps = 50.0;

    TextTable t;
    t.header({"Frame B", "FLD-E remote", "FLD-E local", "CPU remote",
              "FLD-R remote", "FLD-R local", "model (remote)",
              "eth line"});
    const std::vector<size_t> sizes = {64, 128, 256, 512, 1024, 1500};
    // Each row builds independent testbeds, so rows can sweep in
    // parallel (--jobs=N); results land in size order either way.
    auto rows = bench::parallel_rows(
        sizes.size(), jobs, [&](size_t i) -> std::vector<std::string> {
            size_t size = sizes[i];
            double fld_remote = run_fld_echo(true, size);
            double fld_local = run_fld_echo(false, size);
            double cpu = run_cpu_echo(size);
            // FLD-R: message = frame payload; headers ride the
            // transport.
            double fldr = run_fldr_echo(true, size);
            double fldr_local = run_fldr_echo(false, size);
            return {strfmt("%zu", size), format_gbps(fld_remote),
                    format_gbps(fld_local), format_gbps(cpu),
                    format_gbps(fldr), format_gbps(fldr_local),
                    format_gbps(model::fld_expected_gbps(
                        remote_model, uint32_t(size))),
                    format_gbps(
                        model::eth_goodput_gbps(25.0, uint32_t(size)))};
        });
    for (auto& row : rows)
        t.row(row);
    t.print();
    bench::note("paper shape: FLD-E meets the model from ~128 B "
                "(remote) / ~256 B (local); on par with the CPU "
                "driver; FLD-R slightly lower, meeting 25 Gbps for "
                ">= 512 B messages");

    bench::banner("IMC-2010 mixed sizes: packet rate", "§8.1.1");
    double fld_mpps = run_mix_mpps(true);
    double cpu_mpps = run_mix_mpps(false);
    TextTable m;
    m.header({"Driver", "Mpps", "(paper)"});
    m.row({"FLD-E echo", strfmt("%.1f", fld_mpps), "12.7"});
    m.row({"CPU testpmd (1 core)", strfmt("%.1f", cpu_mpps), "9.6"});
    m.row({"ratio", strfmt("%.2fx", fld_mpps / cpu_mpps), "1.32x"});
    m.print();
    return 0;
}
