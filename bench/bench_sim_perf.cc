/**
 * @file
 * Simulator-throughput telemetry: measures how fast the discrete-event
 * engine executes the paper's echo-throughput scenarios plus two
 * scheduler-stress points (a 10k-connection fast-path storm and a
 * million-event timer churn) and writes the samples to
 * BENCH_SIM_PERF.json so CI can archive simulator-speed numbers per
 * commit.
 *
 * This intentionally measures the *simulator*, not the simulated
 * hardware: the Gbps tables live in bench_figure7b; this file answers
 * "how long does reproducing them take, and is the engine regressing".
 * Per-sample wheel telemetry (bucket occupancy, cascades) shows how
 * the timing-wheel engine is spending its time.
 *
 * Compare mode: --baseline=PATH reads a previously written
 * BENCH_SIM_PERF.json and FAILS (exit 1) when any sample's events/sec
 * drops more than 20% below the baseline — the CI perf-smoke gate.
 *
 * Usage: bench_sim_perf [--out=PATH] [--baseline=PATH] [--quick]
 */
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "apps/fastpath_harness.h"
#include "apps/scenarios.h"
#include "bench/bench_util.h"
#include "sim/sim_perf.h"
#include "util/rng.h"

using namespace fld;
using namespace fld::apps;

namespace {

constexpr sim::TimePs kWarmup = sim::milliseconds(1);
constexpr sim::TimePs kDuration = sim::milliseconds(4);

/** Run one echo scenario to completion, sampling engine telemetry. */
template <class MakeScenario>
sim::SimPerfSample
sample_echo(const std::string& name, MakeScenario&& make,
            const PktGenConfig& g)
{
    auto s = make(g);
    s->gen->start(kWarmup, kDuration);
    auto& eq = s->tb->eq;
    uint64_t events0 = eq.executed_total();
    sim::TimePs sim0 = eq.now();
    sim::EventQueue::WheelStats wheel0 = eq.wheel_stats();
    auto t0 = std::chrono::steady_clock::now();
    eq.run();
    auto t1 = std::chrono::steady_clock::now();

    sim::SimPerfSample out;
    out.name = name;
    out.wall_sec = std::chrono::duration<double>(t1 - t0).count();
    out.events = eq.executed_total() - events0;
    out.packets = s->gen->rx_meter().packets();
    out.sim_time = eq.now() - sim0;
    out.take_wheel_stats(eq, wheel0);
    return out;
}

/**
 * Fast-path scheduler stress: the 10k-connection open/serve/close
 * storm from bench_fastpath, FLD-served. Tens of thousands of
 * concurrent per-connection RTO timers plus the full NIC/PCIe event
 * plumbing — the timer-heavy counterpoint to the echo points.
 */
sim::SimPerfSample
sample_fastpath(const std::string& name, uint32_t conns)
{
    FastPathHarnessConfig cfg;
    cfg.mode = FastPathMode::Fld;
    cfg.app.connections = conns;
    cfg.app.requests_per_conn = 2;
    cfg.app.request_bytes = 256;
    cfg.app.open_batch = 64;
    cfg.app.open_interval = sim::microseconds(50);
    cfg.conn.rto = sim::microseconds(2000);
    cfg.conn.max_retries = 16;
    cfg.app.tx_ring_entries = 256;
    cfg.app.rx_ring_entries = 1024;
    cfg.sink.rx_ring_entries = 1024;
    cfg.trace = false; // measure the engine, not the tracer

    FastPathReport r = run_fastpath_scenario(cfg);

    sim::SimPerfSample out;
    out.name = name;
    out.wall_sec = r.run_wall_sec;
    out.events = r.events;
    out.packets = r.server_stats.frames_rx;
    out.sim_time = r.end_time;
    if (!r.ok)
        std::fprintf(stderr, "warning: %s oracles tripped: %s\n",
                     name.c_str(),
                     r.violations.empty() ? "?"
                                          : r.violations[0].c_str());
    return out;
}

/**
 * Timer churn: a large population of flow timers rescheduling at
 * RTO-like horizons until @p total_events have executed. This is the
 * pure-scheduler point — no testbed, just schedule/advance churn over
 * a pending set big enough to spread across wheel levels (the
 * million-flow control plane's timer load, distilled).
 */
sim::SimPerfSample
sample_timer_churn(const std::string& name, uint32_t population,
                   uint64_t total_events)
{
    sim::EventQueue eq;
    Rng rng(0x7e57);
    uint64_t fired = 0;

    // Each "flow" perpetually re-arms: mostly short service delays
    // (the 2^14..2^21 ps band real runs live in), a tail of long RTOs.
    struct Flow
    {
        sim::EventQueue& eq;
        Rng& rng;
        uint64_t& fired;
        uint64_t budget;
        void arm()
        {
            sim::TimePs delay =
                (rng.uniform(100) < 2)
                    ? sim::microseconds(50) // RTO-scale outlier
                    : sim::TimePs(1) << (14 + rng.uniform(8));
            eq.schedule_in(delay, [this] {
                ++fired;
                if (fired < budget)
                    arm();
            });
        }
    };
    std::vector<Flow> flows(population,
                            Flow{eq, rng, fired, total_events});

    uint64_t events0 = eq.executed_total();
    sim::EventQueue::WheelStats wheel0 = eq.wheel_stats();
    auto t0 = std::chrono::steady_clock::now();
    for (Flow& f : flows)
        f.arm();
    eq.run();
    auto t1 = std::chrono::steady_clock::now();

    sim::SimPerfSample out;
    out.name = name;
    out.wall_sec = std::chrono::duration<double>(t1 - t0).count();
    out.events = eq.executed_total() - events0;
    out.packets = 0;
    out.sim_time = eq.now();
    out.take_wheel_stats(eq, wheel0);
    return out;
}

/**
 * Minimal reader for the BENCH_SIM_PERF.json this binary writes:
 * returns name -> events_per_sec. Not a general JSON parser — it
 * scans for the two keys the gate needs.
 */
std::map<std::string, double>
read_baseline(const std::string& path)
{
    std::map<std::string, double> out;
    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        return out;
    }
    std::string line;
    while (std::getline(f, line)) {
        size_t n = line.find("\"name\": \"");
        if (n == std::string::npos)
            continue;
        n += 9;
        size_t e = line.find('"', n);
        std::string name = line.substr(n, e - n);
        size_t v = line.find("\"events_per_sec\": ");
        if (v == std::string::npos)
            continue;
        out[name] = std::atof(line.c_str() + v + 18);
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string out_path = "BENCH_SIM_PERF.json";
    std::string baseline_path;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--out=", 0) == 0)
            out_path = a.substr(6);
        else if (a.rfind("--baseline=", 0) == 0)
            baseline_path = a.substr(11);
        else if (a == "--quick")
            quick = true;
    }

    bench::banner("Simulator throughput (events/sec, packets/sec)",
                  "engine telemetry");

    auto fld_echo = [](const PktGenConfig& g) {
        return make_fld_echo(true, g);
    };
    auto cpu_echo = [](const PktGenConfig& g) {
        return make_cpu_echo(true, g);
    };

    sim::SimPerfReport report;
    report.add(sample_echo("fld_echo_remote_64B", fld_echo,
                           bench::open_loop_gen(64)));
    report.add(sample_echo("fld_echo_remote_256B", fld_echo,
                           bench::open_loop_gen(256)));
    report.add(sample_echo("fld_echo_remote_1500B", fld_echo,
                           bench::open_loop_gen(1500)));
    report.add(sample_echo("cpu_echo_remote_256B", cpu_echo,
                           bench::open_loop_gen(256)));
    report.add(sample_echo("fld_echo_imc_mix", fld_echo,
                           bench::imc_mix_gen()));
    if (!quick) {
        report.add(sample_fastpath("fastpath_10k", 10000));
        report.add(sample_timer_churn("churn_1M", 100000, 1000000));
    }

    TextTable t;
    t.header({"Scenario", "events/s", "pkts/s", "sim/wall", "wall s",
              "avg bkt", "cascades"});
    for (const sim::SimPerfSample& s : report.samples()) {
        t.row({s.name, strfmt("%.2fM", s.events_per_sec() / 1e6),
               strfmt("%.2fM", s.packets_per_sec() / 1e6),
               strfmt("%.4f", s.sim_time_ratio()),
               strfmt("%.3f", s.wall_sec),
               strfmt("%.1f", s.wheel.avg_bucket_occupancy()),
               strfmt("%llu",
                      (unsigned long long)s.wheel.cascades)});
    }
    t.print();

    if (!report.write_json(out_path)) {
        std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
        return 1;
    }
    bench::note("wrote " + out_path);

    if (!baseline_path.empty()) {
        std::map<std::string, double> base =
            read_baseline(baseline_path);
        if (base.empty()) {
            std::fprintf(stderr,
                         "baseline %s empty or unreadable\n",
                         baseline_path.c_str());
            return 1;
        }
        int regressions = 0;
        for (const sim::SimPerfSample& s : report.samples()) {
            auto it = base.find(s.name);
            if (it == base.end())
                continue; // new sample: no baseline yet
            double floor = it->second * 0.8; // >20% drop fails
            if (s.events_per_sec() < floor) {
                std::fprintf(stderr,
                             "REGRESSION %s: %.0f events/s < 80%% of "
                             "baseline %.0f\n",
                             s.name.c_str(), s.events_per_sec(),
                             it->second);
                ++regressions;
            }
        }
        if (regressions)
            return 1;
        bench::note("no events/sec regression vs " + baseline_path);
    }
    return 0;
}
