/**
 * @file
 * Simulator-throughput telemetry: measures how fast the discrete-event
 * engine executes the paper's echo-throughput scenarios (events/sec,
 * simulated-packets/sec, sim-time/wall-time ratio) and writes the
 * samples to BENCH_SIM_PERF.json so CI can archive simulator-speed
 * numbers per commit.
 *
 * This intentionally measures the *simulator*, not the simulated
 * hardware: the Gbps tables live in bench_figure7b; this file answers
 * "how long does reproducing them take, and is the engine regressing".
 *
 * Usage: bench_sim_perf [--out=PATH]   (default ./BENCH_SIM_PERF.json)
 */
#include <chrono>
#include <cstdio>
#include <string>

#include "apps/scenarios.h"
#include "bench/bench_util.h"
#include "sim/sim_perf.h"

using namespace fld;
using namespace fld::apps;

namespace {

constexpr sim::TimePs kWarmup = sim::milliseconds(1);
constexpr sim::TimePs kDuration = sim::milliseconds(4);

/** Run one echo scenario to completion, sampling engine telemetry. */
template <class MakeScenario>
sim::SimPerfSample
sample_echo(const std::string& name, MakeScenario&& make,
            const PktGenConfig& g)
{
    auto s = make(g);
    s->gen->start(kWarmup, kDuration);
    auto& eq = s->tb->eq;
    uint64_t events0 = eq.executed_total();
    sim::TimePs sim0 = eq.now();
    auto t0 = std::chrono::steady_clock::now();
    eq.run();
    auto t1 = std::chrono::steady_clock::now();

    sim::SimPerfSample out;
    out.name = name;
    out.wall_sec = std::chrono::duration<double>(t1 - t0).count();
    out.events = eq.executed_total() - events0;
    out.packets = s->gen->rx_meter().packets();
    out.sim_time = eq.now() - sim0;
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string out_path = "BENCH_SIM_PERF.json";
    const std::string prefix = "--out=";
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind(prefix, 0) == 0)
            out_path = a.substr(prefix.size());
    }

    bench::banner("Simulator throughput (events/sec, packets/sec)",
                  "engine telemetry");

    auto fld_echo = [](const PktGenConfig& g) {
        return make_fld_echo(true, g);
    };
    auto cpu_echo = [](const PktGenConfig& g) {
        return make_cpu_echo(true, g);
    };

    sim::SimPerfReport report;
    report.add(sample_echo("fld_echo_remote_64B", fld_echo,
                           bench::open_loop_gen(64)));
    report.add(sample_echo("fld_echo_remote_256B", fld_echo,
                           bench::open_loop_gen(256)));
    report.add(sample_echo("fld_echo_remote_1500B", fld_echo,
                           bench::open_loop_gen(1500)));
    report.add(sample_echo("cpu_echo_remote_256B", cpu_echo,
                           bench::open_loop_gen(256)));
    report.add(sample_echo("fld_echo_imc_mix", fld_echo,
                           bench::imc_mix_gen()));

    TextTable t;
    t.header({"Scenario", "events/s", "pkts/s", "sim/wall", "wall s"});
    for (const sim::SimPerfSample& s : report.samples()) {
        t.row({s.name, strfmt("%.2fM", s.events_per_sec() / 1e6),
               strfmt("%.2fM", s.packets_per_sec() / 1e6),
               strfmt("%.4f", s.sim_time_ratio()),
               strfmt("%.3f", s.wall_sec)});
    }
    t.print();

    if (!report.write_json(out_path)) {
        std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
        return 1;
    }
    bench::note("wrote " + out_path);
    return 0;
}
