/**
 * @file
 * Host fast path serving bench (extension beyond the paper's §6: the
 * flextcp-style per-flow TCP fast path served by the FLD vs by the
 * conventional CPU driver).
 *
 * At each size point (1k / 10k connections) the bench runs the same
 * AppEmu open/serve/close workload through apps::run_fastpath_scenario
 * twice — server stack FLD-served and CPU-served — and reports, per
 * mode:
 *
 *   - connection setup+teardown throughput (full open->serve->close
 *     lifecycles per simulated second),
 *   - per-connection and aggregate goodput (application bytes the
 *     server delivered, excluding headers and retransmissions),
 *   - wall-clock simulation cost of the point.
 *
 * The run FAILS (non-zero exit) when any harness oracle trips, when a
 * connection fails to close, or when the FLD- and CPU-served runs of
 * a point disagree on the per-flow digest map (flow_hash) — so this
 * binary doubles as the acceptance check for the differential claim
 * at scale. Results go to BENCH_FASTPATH.json (--out=PATH) so CI can
 * archive and trend them.
 *
 * Usage: bench_fastpath [--out=PATH] [--max-conns=N]
 */
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/fastpath_harness.h"
#include "bench/bench_util.h"
#include "util/strings.h"

namespace {

using namespace fld;

struct PointResult
{
    uint32_t conns = 0;
    const char* mode = "";
    double sim_sec = 0;
    double conns_per_sec = 0;    ///< lifecycles / simulated second
    double goodput_gbps = 0;     ///< aggregate delivered app bytes
    double per_conn_mbps = 0;    ///< goodput_gbps / conns
    double wall_sec = 0;
    uint64_t flow_hash = 0;
    bool ok = false;
    std::string first_violation;
};

apps::FastPathHarnessConfig
point_cfg(apps::FastPathMode mode, uint32_t conns)
{
    apps::FastPathHarnessConfig cfg;
    cfg.mode = mode;
    cfg.app.connections = conns;
    cfg.app.requests_per_conn = 2;
    cfg.app.request_bytes = 256;
    // Same pacing/RTO tuning as the 10k acceptance scenario: open
    // storms near the service rate, RTO above the congested RTT (a
    // fixed 200 us RTO under 10k-way concurrency turns queueing delay
    // into spurious go-back-N retransmits).
    cfg.app.open_batch = 64;
    cfg.app.open_interval = sim::microseconds(50);
    cfg.conn.rto = sim::microseconds(2000);
    cfg.conn.max_retries = 16;
    cfg.app.tx_ring_entries = 256;
    cfg.app.rx_ring_entries = 1024;
    cfg.sink.rx_ring_entries = 1024;
    return cfg;
}

PointResult
run_point(apps::FastPathMode mode, uint32_t conns)
{
    PointResult r;
    r.conns = conns;
    r.mode = mode == apps::FastPathMode::Fld ? "fld" : "cpu";

    auto t0 = std::chrono::steady_clock::now();
    apps::FastPathReport rep =
        apps::run_fastpath_scenario(point_cfg(mode, conns));
    r.wall_sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();

    r.sim_sec = double(rep.end_time) * 1e-12;
    if (r.sim_sec > 0) {
        r.conns_per_sec = double(rep.closed) / r.sim_sec;
        r.goodput_gbps = double(rep.server_bytes) * 8.0 / r.sim_sec /
                         1e9;
        r.per_conn_mbps = r.goodput_gbps * 1e3 / double(conns);
    }
    r.flow_hash = rep.flow_hash;
    r.ok = rep.ok && rep.closed == conns && rep.resets == 0;
    if (!rep.violations.empty())
        r.first_violation = rep.violations.front();
    else if (rep.closed != conns)
        r.first_violation = strfmt("%u/%u connections closed",
                                   rep.closed, conns);
    else if (rep.resets != 0)
        r.first_violation = strfmt("%u resets", rep.resets);
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string out = "BENCH_FASTPATH.json";
    uint32_t max_conns = 10'000;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--out=", 6) == 0)
            out = argv[i] + 6;
        else if (std::strncmp(argv[i], "--max-conns=", 12) == 0)
            max_conns = uint32_t(
                std::strtoul(argv[i] + 12, nullptr, 0));
    }

    bench::banner("Host fast path serving",
                  "extension: per-flow TCP, FLD-served vs CPU-served");

    std::vector<PointResult> results;
    bool all_ok = true;
    for (uint32_t conns : {1'000u, 10'000u}) {
        if (conns > max_conns)
            continue;
        PointResult fld = run_point(apps::FastPathMode::Fld, conns);
        PointResult cpu = run_point(apps::FastPathMode::Cpu, conns);
        bool digests_match = fld.flow_hash == cpu.flow_hash;
        all_ok = all_ok && fld.ok && cpu.ok && digests_match;

        for (const PointResult& r : {fld, cpu}) {
            bench::note(strfmt(
                "%5u conns (%s): %9.0f conns/s, %6.3f Gbps aggregate,"
                " %7.3f Mbps/conn, sim %6.2f ms, wall %5.2f s%s",
                r.conns, r.mode, r.conns_per_sec, r.goodput_gbps,
                r.per_conn_mbps, r.sim_sec * 1e3, r.wall_sec,
                r.ok ? "" : "  ** FAIL **"));
            if (!r.ok)
                bench::note("    violation: " + r.first_violation);
        }
        bench::note(strfmt("%5u conns: per-flow digests %s", conns,
                           digests_match ? "identical (fld == cpu)"
                                         : "DIVERGE  ** FAIL **"));
        results.push_back(fld);
        results.push_back(cpu);
    }

    std::FILE* f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fastpath\",\n  \"points\": [");
    for (size_t i = 0; i < results.size(); ++i) {
        const PointResult& r = results[i];
        std::fprintf(
            f,
            "%s\n    {\"conns\": %u, \"mode\": \"%s\", "
            "\"conns_per_sec\": %.0f, \"goodput_gbps\": %.4f, "
            "\"per_conn_mbps\": %.4f, \"sim_ms\": %.3f, "
            "\"wall_sec\": %.3f, \"flow_hash\": \"%016" PRIx64 "\", "
            "\"ok\": %s}",
            i ? "," : "", r.conns, r.mode, r.conns_per_sec,
            r.goodput_gbps, r.per_conn_mbps, r.sim_sec * 1e3,
            r.wall_sec, r.flow_hash, r.ok ? "true" : "false");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    bench::note("wrote " + out);

    if (!all_ok) {
        std::fprintf(stderr, "bench_fastpath: oracle FAILURE\n");
        return 1;
    }
    return 0;
}
