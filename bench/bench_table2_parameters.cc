/**
 * @file
 * Table 2: NIC driver memory analysis parameters — the derived
 * quantities (packet rate, descriptor counts, bandwidth-delay
 * products) for the paper's 100 Gbps / 512-queue configuration.
 */
#include "bench/bench_util.h"
#include "model/memory_model.h"

using namespace fld;

int
main()
{
    bench::banner("Table 2a: memory analysis parameters",
                  "FlexDriver §4.3");

    model::MemoryParams p; // Table 2a defaults
    model::DerivedParams d = model::derive(p);

    TextTable t;
    t.header({"Description", "Variable", "Paper", "Reproduced"});
    t.row({"Bandwidth", "B", "100 Gbps",
           format_gbps(p.bandwidth_gbps)});
    t.row({"Min./max. packet size", "Mmin/Mmax", "256 B / 16 KiB",
           strfmt("%u B / %s", p.min_packet,
                  format_bytes(p.max_packet).c_str())});
    t.row({"Lifetime", "Lrx/Ltx", "5 / 25 us",
           strfmt("%.0f / %.0f us", p.lifetime_rx_us,
                  p.lifetime_tx_us)});
    t.row({"No. transmit queues", "Nq", "512",
           strfmt("%u", p.num_queues)});
    t.row({"Max. packet rate", "R", "45 Mpps",
           strfmt("%.1f Mpps", d.packet_rate_mpps)});
    t.row({"Min. TX descriptors", "Ntxdesc", "1133",
           strfmt("%u", d.n_txdesc)});
    t.row({"Min. RX descriptors", "Nrxdesc", "227",
           strfmt("%u", d.n_rxdesc)});
    t.row({"TX bandwidth x delay", "Stxbdp", "305 KiB",
           format_bytes(d.s_txbdp)});
    t.row({"RX bandwidth x delay", "Srxbdp", "61 KiB",
           format_bytes(d.s_rxbdp)});
    t.print();

    bench::banner("Table 2b: descriptor sizes", "FlexDriver §4.3");
    TextTable b;
    b.header({"Description", "Software", "FLD"});
    b.row({"Tx. descriptor size", "64 B", "8 B"});
    b.row({"Rx. descriptor size", "16 B", "- (host memory)"});
    b.row({"Completion queue entry", "64 B", "15 B"});
    b.row({"Producer index", "4 B", "4 B"});
    b.print();
    return 0;
}
