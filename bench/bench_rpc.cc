/**
 * @file
 * RPC application-tier SLO bench (extension beyond the paper's §6:
 * an RPC service dispatching accelerator-backed methods over the
 * flextcp-style host fast path, FLD-served vs CPU-served).
 *
 * At each size point (1k / 10k connections) the bench sweeps offered
 * load through the closed-loop clients' think time and reports, per
 * (point, mode):
 *
 *   - completed request rate (req/s of simulated time) and response
 *     goodput,
 *   - request latency p50 / p99 / p99.9 (client build-to-decode,
 *     including ring backpressure),
 *   - whether the point met the p99 SLO bound (reported, not failed:
 *     the SLO curve is the deliverable),
 *   - wall-clock simulation cost.
 *
 * The run FAILS (non-zero exit) when any harness oracle trips (shadow
 * conformance, lifecycle, conservation, quiescence), when the FLD-
 * and CPU-served runs of a fault-free point disagree on the
 * per-request digest map, or when a repeated run is not bit-identical
 * (state_hash). One point also runs under targeted wire loss to pin
 * the fault-overlap behavior. Results go to BENCH_RPC.json
 * (--out=PATH) so CI can archive and trend them.
 *
 * Usage: bench_rpc [--out=PATH] [--max-conns=N]
 */
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/rpc_harness.h"
#include "bench/bench_util.h"
#include "util/strings.h"

namespace {

using namespace fld;

/** p99 bound the SLO curve is judged against. */
constexpr double kSloP99Us = 1000.0;

struct PointResult
{
    uint32_t conns = 0;
    uint32_t think_us = 0;
    const char* mode = "";
    bool faulty = false;
    double sim_sec = 0;
    double req_per_sec = 0;
    double goodput_gbps = 0;
    double p50_us = 0, p99_us = 0, p999_us = 0, mean_us = 0;
    bool slo_met = false;
    double wall_sec = 0;
    uint64_t digest_hash = 0;
    uint64_t state_hash = 0;
    bool ok = false;
    std::string first_violation;
};

apps::RpcHarnessConfig
point_cfg(apps::FastPathMode mode, uint32_t conns, uint32_t think_us)
{
    apps::RpcHarnessConfig cfg;
    cfg.mode = mode;
    cfg.client.connections = conns;
    cfg.client.requests_per_conn = conns >= 10'000 ? 2 : 4;
    cfg.client.payload_min = 64;
    cfg.client.payload_max = 512;
    cfg.client.methods_mask = 0xf; // echo + zuc + defrag + busy
    cfg.client.think_mean = sim::microseconds(double(think_us));
    cfg.client.seed = 42;
    // Same pacing/RTO tuning as bench_fastpath's 10k acceptance
    // point: open storms near the service rate, RTO above the
    // congested RTT.
    cfg.client.open_batch = 64;
    cfg.client.open_interval = sim::microseconds(50);
    cfg.conn.rto = sim::microseconds(2000);
    cfg.conn.max_retries = 16;
    cfg.client.tx_ring_entries = 256;
    cfg.client.rx_ring_entries = 1024;
    cfg.server.tx_ring_entries = 512;
    cfg.server.rx_ring_entries = 1024;
    return cfg;
}

PointResult
run_point(const apps::RpcHarnessConfig& cfg)
{
    PointResult r;
    r.conns = cfg.client.connections;
    r.think_us = uint32_t(sim::to_us(cfg.client.think_mean));
    r.mode = cfg.mode == apps::FastPathMode::Fld ? "fld" : "cpu";
    r.faulty = cfg.tb.nic.wire_faults.enabled();

    auto t0 = std::chrono::steady_clock::now();
    apps::RpcReport rep = apps::run_rpc_scenario(cfg);
    r.wall_sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();

    r.sim_sec = double(rep.end_time) * 1e-12;
    r.req_per_sec = rep.req_per_sec;
    r.goodput_gbps = rep.goodput_gbps;
    r.p50_us = rep.p50_us;
    r.p99_us = rep.p99_us;
    r.p999_us = rep.p999_us;
    r.mean_us = rep.mean_us;
    r.slo_met = rep.p99_us > 0 && rep.p99_us <= kSloP99Us;
    r.digest_hash = rep.digest_hash;
    r.state_hash = rep.state_hash;
    r.ok = rep.ok;
    if (!rep.violations.empty())
        r.first_violation = rep.violations.front();
    return r;
}

void
print_point(const PointResult& r)
{
    bench::note(strfmt(
        "%5u conns think=%2uus (%s%s): %9.0f req/s, %6.3f Gbps, "
        "p50 %7.1f p99 %8.1f p99.9 %8.1f us, SLO(p99<=%.0fus) %s,"
        " wall %5.2f s%s",
        r.conns, r.think_us, r.mode, r.faulty ? "+faults" : "",
        r.req_per_sec, r.goodput_gbps, r.p50_us, r.p99_us, r.p999_us,
        kSloP99Us, r.slo_met ? "met" : "MISSED", r.wall_sec,
        r.ok ? "" : "  ** FAIL **"));
    if (!r.ok)
        bench::note("    violation: " + r.first_violation);
}

} // namespace

int
main(int argc, char** argv)
{
    std::string out = "BENCH_RPC.json";
    uint32_t max_conns = 10'000;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--out=", 6) == 0)
            out = argv[i] + 6;
        else if (std::strncmp(argv[i], "--max-conns=", 12) == 0)
            max_conns = uint32_t(
                std::strtoul(argv[i] + 12, nullptr, 0));
    }

    bench::banner("RPC application tier SLO",
                  "extension: accel-backed RPC over the host fast "
                  "path, FLD-served vs CPU-served");

    std::vector<PointResult> results;
    bool all_ok = true;

    auto run_pair = [&](uint32_t conns, uint32_t think_us,
                        bool faulty) {
        auto make = [&](apps::FastPathMode m) {
            apps::RpcHarnessConfig cfg = point_cfg(m, conns, think_us);
            if (faulty) {
                // Heavy enough that the targeted flow is guaranteed
                // to lose frames and retransmit through the sweep.
                cfg.tb.nic.wire_faults.drop_prob = 0.25;
                cfg.tb.nic.wire_faults.duplicate_prob = 0.10;
                cfg.tb.fault_seed = 0x5eed;
                cfg.fault_target_port = 21000 + 7;
            }
            return cfg;
        };
        PointResult fld = run_point(make(apps::FastPathMode::Fld));
        PointResult cpu = run_point(make(apps::FastPathMode::Cpu));
        print_point(fld);
        print_point(cpu);
        // Per-request digests must be identical across the serving
        // modes whenever no frame was lost (faults gate it: resets
        // legitimately drop requests).
        bool digests_match =
            faulty || fld.digest_hash == cpu.digest_hash;
        bench::note(strfmt(
            "%5u conns think=%2uus: per-request digests %s", conns,
            think_us,
            faulty             ? "not compared (faulty point)"
            : digests_match    ? "identical (fld == cpu)"
                               : "DIVERGE  ** FAIL **"));
        all_ok = all_ok && fld.ok && cpu.ok && digests_match;
        results.push_back(fld);
        results.push_back(cpu);
    };

    // SLO curve at 1k connections: offered load swept by think time.
    for (uint32_t think_us : {20u, 5u, 0u})
        run_pair(1'000, think_us, /*faulty=*/false);
    // Fault overlap: targeted wire loss on one client's flow.
    run_pair(1'000, 5, /*faulty=*/true);
    // Scale point.
    if (10'000u <= max_conns)
        run_pair(10'000, 20, /*faulty=*/false);

    // Rerun determinism: the same config must be bit-identical.
    {
        PointResult a = run_point(
            point_cfg(apps::FastPathMode::Fld, 1'000, 5));
        bool identical = false;
        for (const PointResult& r : results)
            if (r.conns == 1'000 && r.think_us == 5 && !r.faulty &&
                std::strcmp(r.mode, "fld") == 0)
                identical = r.state_hash == a.state_hash;
        bench::note(strfmt("rerun state_hash %016" PRIx64 ": %s",
                           a.state_hash,
                           identical ? "bit-identical"
                                     : "NON-DETERMINISTIC  ** FAIL **"));
        all_ok = all_ok && identical;
    }

    std::FILE* f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"rpc\",\n  \"slo_p99_us\": %.0f,\n"
                 "  \"points\": [",
                 kSloP99Us);
    for (size_t i = 0; i < results.size(); ++i) {
        const PointResult& r = results[i];
        std::fprintf(
            f,
            "%s\n    {\"conns\": %u, \"think_us\": %u, "
            "\"mode\": \"%s\", \"faulty\": %s, "
            "\"req_per_sec\": %.0f, \"goodput_gbps\": %.4f, "
            "\"p50_us\": %.2f, \"p99_us\": %.2f, \"p999_us\": %.2f, "
            "\"mean_us\": %.2f, \"slo_met\": %s, "
            "\"digest_hash\": \"%016" PRIx64 "\", "
            "\"state_hash\": \"%016" PRIx64 "\", "
            "\"sim_ms\": %.3f, \"wall_sec\": %.3f, \"ok\": %s}",
            i ? "," : "", r.conns, r.think_us, r.mode,
            r.faulty ? "true" : "false", r.req_per_sec,
            r.goodput_gbps, r.p50_us, r.p99_us, r.p999_us, r.mean_us,
            r.slo_met ? "true" : "false", r.digest_hash, r.state_hash,
            r.sim_sec * 1e3, r.wall_sec, r.ok ? "true" : "false");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    bench::note("wrote " + out);

    if (!all_ok) {
        std::fprintf(stderr, "bench_rpc: oracle FAILURE\n");
        return 1;
    }
    return 0;
}
