/**
 * @file
 * Figure 7a: FLD performance model — expected throughput vs packet
 * size for PCIe-attached FLD against a raw Ethernet port, at the
 * paper's three rate configurations (25 GbE remote, 50 Gbps local
 * PCIe, 100 Gbps future).
 */
#include "bench/bench_util.h"
#include "model/perf_model.h"

using namespace fld;

int
main()
{
    bench::banner("Figure 7a: PCIe (FLD) vs raw Ethernet model",
                  "FlexDriver §8.1");

    struct Config
    {
        const char* name;
        double eth;
        double pcie;
    };
    const Config configs[] = {
        {"25 GbE / 50G PCIe (remote)", 25.0, 50.0},
        {"50 GbE / 50G PCIe (local)", 50.0, 50.0},
        {"100 GbE / 100G PCIe", 100.0, 100.0},
    };

    for (const Config& c : configs) {
        std::printf("\n-- %s --\n", c.name);
        model::PerfModelParams p;
        p.eth_gbps = c.eth;
        p.pcie_gbps = c.pcie;

        TextTable t;
        t.header({"Frame B", "Ethernet line", "FLD PCIe bound",
                  "FLD expected", "FLD/line"});
        for (uint32_t size :
             {64u, 128u, 256u, 512u, 1024u, 1500u, 4096u, 16384u}) {
            double line = model::eth_goodput_gbps(c.eth, size);
            double pcie = model::fld_pcie_bound_gbps(p, size);
            double expect = model::fld_expected_gbps(p, size);
            t.row({strfmt("%u", size), format_gbps(line),
                   format_gbps(pcie), format_gbps(expect),
                   strfmt("%.0f%%", 100.0 * expect / line)});
        }
        t.print();
    }
    bench::note("paper shape: the 25 GbE configuration meets line "
                "rate from small packets up; matched-rate "
                "configurations approach line rate as the per-packet "
                "PCIe control traffic amortizes");
    return 0;
}
