/**
 * @file
 * Figure 7c: FLD-R latency vs throughput for 1 KiB messages, local
 * and remote, sweeping offered load. Paper: ~9.4 us median local /
 * ~10.6 us remote at low load, queueing blow-up near ~82% of the
 * maximum bandwidth.
 */
#include "apps/scenarios.h"
#include "bench/bench_util.h"

using namespace fld;
using namespace fld::apps;

namespace {

struct Point
{
    double offered_gbps;
    double achieved_gbps;
    double median_us;
    double p99_us;
};

Point
run_point(bool remote, double offered_gbps)
{
    constexpr size_t kMsg = 1024;
    auto s = make_fldr_echo(remote);
    auto& eq = s->tb->eq;
    auto& client = *s->client;

    sim::TimePs warmup = sim::milliseconds(1);
    sim::TimePs duration = sim::milliseconds(5);
    sim::TimePs start_measure = eq.now() + warmup;
    sim::TimePs end = eq.now() + duration;

    sim::RateMeter meter;
    sim::Histogram lat_us;
    std::map<uint32_t, sim::TimePs> sent_at;
    uint32_t next_id = 1;

    client.set_msg_handler([&](uint32_t id, std::vector<uint8_t>&&) {
        auto it = sent_at.find(id);
        if (it == sent_at.end())
            return;
        if (eq.now() >= start_measure && eq.now() <= end) {
            meter.record(eq.now(), kMsg);
            lat_us.add(sim::to_us(eq.now() - it->second));
        }
        sent_at.erase(it);
    });

    // Open loop at the offered rate.
    sim::TimePs gap = sim::serialize_time(kMsg, offered_gbps);
    std::function<void()> tick = [&] {
        if (eq.now() >= end)
            return;
        uint32_t id = next_id++;
        sent_at[id] = eq.now();
        client.post_send(std::vector<uint8_t>(kMsg, 0x5a), id);
        eq.schedule_in(gap, tick);
    };
    tick();
    eq.run();

    return {offered_gbps, meter.gbps(start_measure, end),
            lat_us.median(), lat_us.percentile(99)};
}

} // namespace

int
main()
{
    bench::banner("Figure 7c: FLD-R latency vs load (1 KiB messages)",
                  "FlexDriver §8.1.2");

    for (bool remote : {false, true}) {
        std::printf("\n-- %s --\n", remote ? "remote" : "local");
        TextTable t;
        t.header({"Offered Gbps", "Achieved Gbps", "Median us",
                  "p99 us"});
        for (double offered :
             {2.0, 5.0, 8.0, 11.0, 14.0, 16.0, 18.0, 20.0}) {
            Point p = run_point(remote, offered);
            t.row({format_gbps(p.offered_gbps),
                   format_gbps(p.achieved_gbps),
                   strfmt("%.1f", p.median_us),
                   strfmt("%.1f", p.p99_us)});
        }
        t.print();
    }
    bench::note("paper shape: flat single-digit-us latency at low "
                "load; queueing dominates as load approaches the "
                "bandwidth knee (~82% of max)");
    return 0;
}
