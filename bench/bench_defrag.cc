/**
 * @file
 * §8.2.2: IP defragmentation offload — 60 bulk flows through three
 * configurations:
 *   (a) no fragmentation (baseline),
 *   (b) 1500 B packets over a 1450 B route MTU, software vs hardware
 *       defragmentation,
 *   (c) same plus VXLAN tunneling (decapsulated by the NIC *before*
 *       the defrag AFU — the mid-pipeline insertion FLD enables).
 * Paper: 23.2 Gbps baseline; software defrag collapses to 3.2 Gbps
 * (single RSS bucket); hardware defrag restores 22.4 Gbps (7x); the
 * VXLAN case is sender-bound at a 5.25x speedup.
 */
#include "apps/scenarios.h"
#include "bench/bench_util.h"

using namespace fld;
using namespace fld::apps;

namespace {

struct Result
{
    double goodput_gbps;
    int active_cores;
    uint64_t reassembled;
};

Result
run(const DefragOptions& opt)
{
    auto s = make_defrag(opt);
    sim::TimePs duration = sim::milliseconds(10);
    sim::TimePs t0 = s->tb->eq.now();

    // Windowed goodput: sample the delivered-byte counter at the
    // window edges (avoids counting warmup and post-test drain).
    uint64_t bytes_at_start = 0, bytes_at_end = 0;
    sim::TimePs w0 = t0 + duration / 5;
    sim::TimePs w1 = t0 + duration;
    s->tb->eq.schedule_at(w0, [&] {
        bytes_at_start = s->stack->delivered_payload_bytes();
    });
    s->tb->eq.schedule_at(w1, [&] {
        bytes_at_end = s->stack->delivered_payload_bytes();
    });

    s->iperf->start(duration);
    s->tb->eq.run();

    Result r{};
    r.goodput_gbps = sim::gbps_of(bytes_at_end - bytes_at_start,
                                  w1 - w0);
    for (uint32_t c = 0; c < s->tb->server_host.cores(); ++c) {
        r.active_cores += s->tb->server_host.core_busy_time(c) >
                          sim::microseconds(100);
    }
    r.reassembled =
        s->defrag ? s->defrag->reassembly_stats().packets_out : 0;
    return r;
}

} // namespace

int
main()
{
    bench::banner("IP defragmentation offload (60 bulk flows)",
                  "FlexDriver §8.2.2");

    DefragOptions baseline;
    Result a = run(baseline);

    DefragOptions sw_frag;
    sw_frag.fragmented = true;
    Result b_sw = run(sw_frag);

    DefragOptions hw_frag;
    hw_frag.fragmented = true;
    hw_frag.hw_defrag = true;
    Result b_hw = run(hw_frag);

    DefragOptions vx;
    vx.fragmented = true;
    vx.vxlan = true;
    vx.hw_defrag = true;
    Result c_hw = run(vx);

    TextTable t;
    t.header({"Configuration", "Goodput", "Active cores",
              "AFU reassembled", "(paper)"});
    t.row({"(a) no fragmentation", format_gbps(a.goodput_gbps),
           strfmt("%d", a.active_cores), "-", "23.2 Gbps"});
    t.row({"(b) frag, software defrag", format_gbps(b_sw.goodput_gbps),
           strfmt("%d", b_sw.active_cores), "-", "3.2 Gbps"});
    t.row({"(b) frag, FLD defrag", format_gbps(b_hw.goodput_gbps),
           strfmt("%d", b_hw.active_cores),
           strfmt("%llu", (unsigned long long)b_hw.reassembled),
           "22.4 Gbps"});
    t.row({"(c) VXLAN + frag, FLD defrag",
           format_gbps(c_hw.goodput_gbps),
           strfmt("%d", c_hw.active_cores),
           strfmt("%llu", (unsigned long long)c_hw.reassembled),
           "16.8 Gbps (sender-bound)"});
    t.separator();
    t.row({"speedup FLD vs software",
           strfmt("%.1fx", b_hw.goodput_gbps / b_sw.goodput_gbps), "",
           "", "7x"});
    t.row({"speedup VXLAN case",
           strfmt("%.2fx", c_hw.goodput_gbps / b_sw.goodput_gbps), "",
           "", "5.25x"});
    t.print();

    bench::note("mechanism check: software defrag pins all fragments "
                "to one RSS bucket/core; the FLD acceleration action "
                "reassembles mid-pipeline so RSS spreads whole "
                "datagrams again");
    return 0;
}
