/**
 * @file
 * Million-flow control-plane scaling bench (extension beyond the
 * paper's Table 3).
 *
 * At each size point (1k / 10k / 100k / 1M flows) the bench builds a
 * many-tenant churn scenario, runs it through the ChurnHarness (which
 * judges the shadow/stat/budget oracles), and reports:
 *
 *   - churn throughput (flow opens+closes per wall-clock second),
 *   - packet-accounting throughput (record() ops/sec),
 *   - lookup latency (ns per find() over a live-key sample),
 *   - resident SRAM bytes vs model::flow_directory_memory (the run
 *     FAILS when any point diverges beyond 5%),
 *   - whether the point still fits the XCKU15P together with the
 *     paper-config FLD driver state.
 *
 * Results go to BENCH_FLOW_SCALE.json (override with --out=PATH) so
 * CI can archive and trend them. --max-flows=N skips larger points
 * (CI runs the 100k point; the 1M point is the local/Release target,
 * < 60 s). The exit code is non-zero on any oracle violation or
 * model divergence, so this binary doubles as a conformance check.
 *
 * Usage: bench_flow_scale [--out=PATH] [--max-flows=N] [--events=N]
 */
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/churn_harness.h"
#include "bench/bench_util.h"
#include "model/memory_model.h"
#include "util/strings.h"

namespace {

using namespace fld;

struct PointSpec
{
    uint64_t flows;     ///< directory capacity
    uint32_t tenants;
    uint32_t flows_per_tenant; ///< target live population / tenants
};

struct PointResult
{
    PointSpec spec;
    size_t live = 0;
    double churn_ops_per_sec = 0;
    double record_ops_per_sec = 0;
    double lookup_ns = 0;
    uint64_t resident_bytes = 0;
    double model_bytes = 0;
    double model_delta_pct = 0;
    bool fits_on_chip = false;
    bool ok = false;
    std::string first_violation;
};

double
elapsed_sec(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

PointResult
run_point(const PointSpec& spec, uint64_t steady_events)
{
    PointResult r;
    r.spec = spec;

    apps::ChurnHarnessConfig cfg;
    cfg.churn.tenants = spec.tenants;
    cfg.churn.flows_per_tenant = spec.flows_per_tenant;
    cfg.churn.packet_fraction = 0.5; // half churn, half packets
    cfg.churn.seed = 0xf10c + spec.flows;
    cfg.directory.flow_capacity = spec.flows;
    // The exact oracle costs ~64 B/flow of host memory and O(n) final
    // sweep; keep it on through 100k and trust the (identical) logic
    // plus the stat/budget oracles at the 1M point.
    cfg.shadow_oracle = spec.flows <= 200'000;

    apps::ChurnHarness harness(cfg);
    harness.ramp();

    auto t0 = std::chrono::steady_clock::now();
    harness.step(steady_events);
    double churn_sec = elapsed_sec(t0);

    apps::ChurnReport rep = harness.report();
    const core::FlowDirectory& dir = harness.directory();

    // Throughput split: opens+closes vs packet records.
    uint64_t churn_ops = rep.opens + rep.closes;
    r.churn_ops_per_sec = double(churn_ops) / churn_sec;
    r.record_ops_per_sec =
        double(rep.packets + rep.shaped_drops) / churn_sec;

    // Lookup latency over a stride sample of the live set.
    const auto& live = harness.gen().live_flows();
    size_t samples = std::min<size_t>(live.size(), 200'000);
    size_t stride = live.size() / std::max<size_t>(samples, 1);
    stride = std::max<size_t>(stride, 1);
    uint64_t found = 0;
    t0 = std::chrono::steady_clock::now();
    for (size_t i = 0, n = 0; n < samples; i += stride, ++n)
        found += dir.find(live[i % live.size()].key) ? 1 : 0;
    double lookup_sec = elapsed_sec(t0);
    r.lookup_ns = lookup_sec * 1e9 / double(samples);

    r.live = rep.final_live;
    r.resident_bytes = dir.memory_bytes();
    model::FlowScaleParams mp;
    mp.flow_capacity = dir.config().flow_capacity;
    mp.shards = dir.config().shards;
    mp.shard_capacity = dir.shard_capacity();
    mp.tenants = dir.config().tenants;
    mp.sketch_width = dir.config().sketch.width;
    mp.sketch_depth = dir.config().sketch.depth;
    mp.sketch_topk = dir.config().sketch.topk;
    model::FlowScaleBreakdown mb = model::flow_directory_memory(mp);
    r.model_bytes = mb.total;
    r.model_delta_pct = 100.0 *
                        (double(r.resident_bytes) - mb.total) /
                        mb.total;
    r.fits_on_chip = r.resident_bytes <= core::kXcku15pBytes;

    r.ok = rep.ok() && found == samples &&
           std::abs(r.model_delta_pct) <= 5.0;
    if (!rep.violations.empty())
        r.first_violation = rep.violations.front();
    else if (found != samples)
        r.first_violation = "live-key lookup missed";
    else if (std::abs(r.model_delta_pct) > 5.0)
        r.first_violation = strfmt("model divergence %.2f%%",
                                   r.model_delta_pct);
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string out = "BENCH_FLOW_SCALE.json";
    uint64_t max_flows = 1'048'576;
    uint64_t events = 0; // 0 = per-point default
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--out=", 6) == 0)
            out = argv[i] + 6;
        else if (std::strncmp(argv[i], "--max-flows=", 12) == 0)
            max_flows = std::strtoull(argv[i] + 12, nullptr, 0);
        else if (std::strncmp(argv[i], "--events=", 9) == 0)
            events = std::strtoull(argv[i] + 9, nullptr, 0);
    }

    bench::banner("Flow-directory scaling",
                  "extension: million-flow control plane");

    const std::vector<PointSpec> points = {
        {1'024, 16, 51},        // ~816 live
        {10'240, 64, 128},      // ~8.2k live
        {102'400, 256, 320},    // ~82k live
        {1'048'576, 256, 3'640} // ~932k live
    };

    std::vector<PointResult> results;
    bool all_ok = true;
    for (const PointSpec& p : points) {
        if (p.flows > max_flows)
            continue;
        uint64_t n = events ? events
                            : std::min<uint64_t>(
                                  std::max<uint64_t>(p.flows, 200'000),
                                  2'000'000);
        PointResult r = run_point(p, n);
        results.push_back(r);
        all_ok = all_ok && r.ok;
        bench::note(strfmt(
            "%8" PRIu64 " flows: churn %7.2f Mops/s, record %7.2f "
            "Mops/s, lookup %6.1f ns, SRAM %8.2f KiB (model %+.2f%%)"
            "%s%s",
            p.flows, r.churn_ops_per_sec / 1e6,
            r.record_ops_per_sec / 1e6, r.lookup_ns,
            double(r.resident_bytes) / 1024.0, r.model_delta_pct,
            r.fits_on_chip ? ", fits XCKU15P" : ", exceeds XCKU15P",
            r.ok ? "" : "  ** FAIL **"));
        if (!r.ok)
            bench::note("    violation: " + r.first_violation);
    }

    std::FILE* f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"flow_scale\",\n  \"points\": [");
    for (size_t i = 0; i < results.size(); ++i) {
        const PointResult& r = results[i];
        std::fprintf(
            f,
            "%s\n    {\"flows\": %" PRIu64 ", \"tenants\": %u, "
            "\"live\": %zu, \"churn_ops_per_sec\": %.0f, "
            "\"record_ops_per_sec\": %.0f, \"lookup_ns\": %.2f, "
            "\"resident_bytes\": %" PRIu64 ", \"model_bytes\": %.0f, "
            "\"model_delta_pct\": %.3f, \"fits_on_chip\": %s, "
            "\"ok\": %s}",
            i ? "," : "", r.spec.flows, r.spec.tenants, r.live,
            r.churn_ops_per_sec, r.record_ops_per_sec, r.lookup_ns,
            r.resident_bytes, r.model_bytes, r.model_delta_pct,
            r.fits_on_chip ? "true" : "false", r.ok ? "true" : "false");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    bench::note("wrote " + out);

    if (!all_ok) {
        std::fprintf(stderr,
                     "bench_flow_scale: oracle/model FAILURE\n");
        return 1;
    }
    return 0;
}
