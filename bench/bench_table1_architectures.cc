/**
 * @file
 * Table 1: FPGA-based networking architectures — hardware utilization
 * and network-feature comparison. Area numbers are paper-reported
 * constants (no synthesis hardware available); the FLD row's feature
 * set is what this reproduction actually implements, and the on-die
 * memory of the instantiated FLD configuration is printed alongside.
 */
#include "bench/bench_util.h"
#include "fld/flexdriver.h"
#include "model/area.h"
#include "pcie/fabric.h"

using namespace fld;

int
main()
{
    bench::banner("Table 1: accelerator networking architectures",
                  "FlexDriver §3");

    TextTable t;
    t.header({"Category", "Solution", "Gbps", "LUT", "FF", "BRAM",
              "URAM", "Stateless", "Tunneling", "HW transport"});
    for (const auto& r : model::table1_rows()) {
        t.row({r.category, r.solution, r.gbps,
               strfmt("%.1fK", r.luts_k), strfmt("%.1fK", r.ffs_k),
               strfmt("%d", r.bram), r.uram ? strfmt("%d", r.uram) : "",
               model::support_str(r.stateless),
               model::support_str(r.tunneling),
               model::support_str(r.transport)});
    }
    t.print();

    bench::note("area values are the paper's reported numbers; this "
                "reproduction validates the FLD feature column by "
                "construction (stateless offloads, tunneling and "
                "hardware RDMA transport all exercised in tests)");

    // What we *can* measure: the instantiated FLD on-die memory.
    sim::EventQueue eq;
    pcie::PcieFabric fabric(eq);
    pcie::PortId port = fabric.add_port("fld", 50.0, 0);
    core::FlexDriver fld("fld", eq, fabric, port, 0x8000'0000,
                         0x4000'0000);
    fabric.attach(port, &fld, 0x8000'0000, core::FlexDriver::kBarSize);
    std::printf("\nInstantiated FLD on-die memory (prototype config, "
                "§6):\n");
    TextTable m;
    m.header({"structure", "bytes"});
    for (const auto& [name, bytes] : fld.mem_budget().items())
        m.row({name, format_bytes(double(bytes))});
    m.separator();
    m.row({"total", format_bytes(double(fld.mem_budget().total()))});
    m.print();
    return 0;
}
