/**
 * @file
 * §8.2.3: IoT token-authentication offload — multi-tenant performance
 * isolation via NIC traffic shaping. Two tenants offer 8 and 16 Gbps
 * into an accelerator configured to accept 12 Gbps. Paper: without
 * shaping the tenants get 4.15 / 8.35 Gbps (proportional); capping
 * both at 6 Gbps restores tenant A's allocation (~6 / ~6).
 */
#include "apps/scenarios.h"
#include "bench/bench_util.h"

using namespace fld;
using namespace fld::apps;

namespace {

IotOptions
two_tenants(double cap_gbps)
{
    IotOptions opt;
    TenantFlow a;
    a.tenant_id = 1;
    a.offered_gbps = 8.0;
    a.frame_size = 1024;
    a.jwt_key = "tenant-a-key";
    a.src_ip = net::ipv4_addr(10, 0, 0, 2);
    a.sport = 50001;
    TenantFlow b = a;
    b.tenant_id = 2;
    b.offered_gbps = 16.0;
    b.jwt_key = "tenant-b-key";
    b.src_ip = net::ipv4_addr(10, 0, 0, 3);
    b.sport = 50002;
    opt.tenants = {a, b};
    opt.accel_capacity_gbps = 12.0;
    opt.tenant_rate_cap_gbps = cap_gbps;
    return opt;
}

std::pair<double, double>
run(const IotOptions& opt)
{
    auto s = make_iot(opt);
    s->trex->start(sim::milliseconds(10));
    s->tb->eq.run();
    return {s->accepted_meter[1].gbps(), s->accepted_meter[2].gbps()};
}

} // namespace

int
main()
{
    bench::banner("IoT authentication: tenant isolation",
                  "FlexDriver §8.2.3");

    auto [a_none, b_none] = run(two_tenants(0.0));
    auto [a_cap, b_cap] = run(two_tenants(6.0));

    TextTable t;
    t.header({"Configuration", "Tenant A (8G offered)",
              "Tenant B (16G offered)", "(paper A/B)"});
    t.row({"no shaping", format_gbps(a_none), format_gbps(b_none),
           "4.15 / 8.35"});
    t.row({"6 Gbps cap per tenant", format_gbps(a_cap),
           format_gbps(b_cap), "~6 / ~6"});
    t.print();

    bench::note("mechanism check: the 12 Gbps acceptance limit shares "
                "proportionally to offered load without shaping; NIC "
                "max-bandwidth meters restore each tenant's "
                "allocation");
    return 0;
}
