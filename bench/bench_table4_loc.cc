/**
 * @file
 * Table 4: software lines of code. Prints the paper's reported counts
 * for its components next to a cloc-like count of this reproduction's
 * corresponding modules (counted from the source tree at build time
 * via a simple non-blank-line counter over the compiled-in manifest).
 */
#include <dirent.h>

#include <fstream>

#include "bench/bench_util.h"
#include "model/area.h"

using namespace fld;

namespace {

/** Count non-blank, non-pure-comment lines of a file (cloc-like). */
int
count_loc(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        return 0;
    int loc = 0;
    std::string line;
    bool in_block_comment = false;
    while (std::getline(in, line)) {
        size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos)
            continue;
        std::string s = line.substr(start);
        if (in_block_comment) {
            if (s.find("*/") != std::string::npos)
                in_block_comment = false;
            continue;
        }
        if (s.rfind("//", 0) == 0)
            continue;
        if (s.rfind("/*", 0) == 0) {
            if (s.find("*/", 2) == std::string::npos)
                in_block_comment = true;
            continue;
        }
        if (s.rfind("*", 0) == 0)
            continue; // doxygen continuation
        ++loc;
    }
    return loc;
}

int
count_dir(const std::string& dir)
{
    int total = 0;
    DIR* d = opendir(dir.c_str());
    if (!d)
        return 0;
    while (dirent* e = readdir(d)) {
        std::string name = e->d_name;
        if (name.size() > 3 &&
            (name.substr(name.size() - 3) == ".cc" ||
             name.substr(name.size() - 2) == ".h")) {
            total += count_loc(dir + "/" + name);
        }
    }
    closedir(d);
    return total;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Table 4: software lines of code", "FlexDriver §6");

    // Locate the source tree: argument, or relative to the build dir.
    std::string root = argc > 1 ? argv[1] : "../src";
    if (count_dir(root + "/runtime") == 0)
        root = "src"; // running from the repo root

    TextTable t;
    t.header({"Paper component", "Paper LOC", "Reproduction module",
              "Repro LOC"});
    struct Map
    {
        const char* paper;
        int paper_loc;
        const char* module;
        std::string dir;
    };
    std::vector<Map> maps = {
        {"FLD runtime library", 3753, "src/runtime", root + "/runtime"},
        {"FLD kernel driver", 1137, "src/driver", root + "/driver"},
        {"FLD-E control-plane", 1554, "src/apps (scenarios)",
         root + "/apps"},
        {"FLD-R control-plane", 1510, "src/fld", root + "/fld"},
        {"FLD-R client library", 754, "src/accel (protocol)",
         root + "/accel"},
        {"ZUC DPDK driver", 732, "src/crypto", root + "/crypto"},
    };
    for (const auto& m : maps) {
        t.row({m.paper, strfmt("%d", m.paper_loc), m.module,
               strfmt("%d", count_dir(m.dir))});
    }
    t.print();
    bench::note("the mapping is approximate: this reproduction's "
                "module split differs from the authors' code base; "
                "the comparison shows both are a few thousand lines "
                "per component");
    return 0;
}
