/**
 * @file
 * Table 3: memory analysis for NIC-driver communication with and
 * without the FLD optimizations. Expected headline: 85.3 MiB software
 * vs 832.7 KiB FLD — a x105 shrink.
 */
#include "bench/bench_util.h"
#include "model/memory_model.h"

using namespace fld;

namespace {

void
row(TextTable& t, const char* desc, const char* var, double sw,
    double fl, const char* paper_sw, const char* paper_fld,
    const char* paper_ratio)
{
    std::string ratio =
        fl > 0 ? format_ratio(sw / fl) : std::string("-");
    t.row({desc, var, format_bytes(sw),
           fl > 0 ? format_bytes(fl) : "-", ratio, paper_sw, paper_fld,
           paper_ratio});
}

} // namespace

int
main()
{
    bench::banner("Table 3: driver memory, software vs FLD",
                  "FlexDriver §5.2");

    model::MemoryParams p;
    model::MemoryBreakdown sw = model::software_memory(p);
    model::MemoryBreakdown fld = model::fld_memory(p);

    TextTable t;
    t.header({"Description", "Var", "Software", "FLD", "Shrink",
              "(paper SW)", "(paper FLD)", "(paper shrink)"});
    row(t, "Tx. rings size", "S_txq", sw.txq, fld.txq, "64 MiB",
        "32 KiB", "x2080");
    row(t, "Tx. buffer size", "S_txdata", sw.txdata, fld.txdata,
        "17.7 MiB", "643 KiB", "x28.2");
    row(t, "Rx. buffer size", "S_rxdata", sw.rxdata, fld.rxdata,
        "3.5 MiB", "122 KiB", "x29.8");
    row(t, "Completion queue size", "S_cq", sw.cq, fld.cq, "144 KiB",
        "33.75 KiB", "x4.27");
    row(t, "Rx. ring size", "S_srq", sw.srq, fld.srq, "4 KiB", "-",
        "-");
    row(t, "Producer index size", "S_pitot", sw.pi, fld.pi, "2052 B",
        "2052 B", "x1");
    t.separator();
    row(t, "Total", "", sw.total, fld.total, "85.3 MiB", "832.7 KiB",
        "x105");
    t.print();

    bench::note(strfmt("reproduced shrink ratio: x%.1f (paper: x105)",
                       sw.total / fld.total));
    return 0;
}
