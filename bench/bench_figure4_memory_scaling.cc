/**
 * @file
 * Figure 4: driver memory requirements with/without the FLD
 * optimizations while scaling line rate (25..400 Gbps) and transmit
 * queue count (512..2048), against the prototype FPGA's on-chip
 * capacity (XCKU15P, 10.05 MiB).
 */
#include "bench/bench_util.h"
#include "fld/mem_budget.h"
#include "model/memory_model.h"

using namespace fld;

int
main()
{
    bench::banner("Figure 4: memory scaling, software vs FLD",
                  "FlexDriver §5.2.1");

    TextTable t;
    t.header({"Line rate", "Queues", "Software", "FLD", "Shrink",
              "FLD fits XCKU15P?"});
    for (uint32_t queues : {512u, 1024u, 2048u}) {
        for (double gbps : {25.0, 50.0, 100.0, 200.0, 400.0}) {
            model::MemoryParams p;
            p.bandwidth_gbps = gbps;
            p.num_queues = queues;
            model::MemoryBreakdown sw = model::software_memory(p);
            model::MemoryBreakdown fl = model::fld_memory(p);
            t.row({format_gbps(gbps), strfmt("%u", queues),
                   format_bytes(sw.total), format_bytes(fl.total),
                   format_ratio(sw.total / fl.total),
                   fl.total <= double(core::kXcku15pBytes) ? "yes"
                                                           : "NO"});
        }
        t.separator();
    }
    t.print();
    bench::note(strfmt("XCKU15P on-chip capacity: %s",
                       format_bytes(double(core::kXcku15pBytes))
                           .c_str()));
    bench::note("paper shape: FLD stays on-chip through 400 Gbps and "
                "2048 queues; the software layout exceeds the FPGA by "
                "orders of magnitude");
    return 0;
}
