/**
 * @file
 * Table 5: hardware resource utilization and HDL lines of code of the
 * FLD module and the example AFUs — paper-reported constants (no
 * synthesis possible), printed with the memory structures this
 * reproduction instantiates for each module so the BRAM/URAM scale
 * can be sanity-checked.
 */
#include "bench/bench_util.h"
#include "fld/flexdriver.h"
#include "model/area.h"
#include "pcie/fabric.h"

using namespace fld;

int
main()
{
    bench::banner("Table 5: hardware utilization and LOC",
                  "FlexDriver §6");

    TextTable t;
    t.header({"Module", "Clk (MHz)", "LUT", "FF", "BRAM", "URAM",
              "HDL LOC"});
    for (const auto& r : model::table5_rows()) {
        t.row({r.module, strfmt("%d", r.clock_mhz),
               strfmt("%.0fK", r.luts_k), strfmt("%.0fK", r.ffs_k),
               strfmt("%d", r.bram), r.uram ? strfmt("%d", r.uram) : "",
               r.loc_k ? strfmt("%dK", r.loc_k) : ""});
    }
    t.print();

    // Cross-check: FLD's 35 BRAM + 44 URAM on the XCKU15P is about
    // 35*4.5 KiB + 44*36 KiB = 1.7 MiB of addressable memory; our
    // instantiated on-die budget must fit well inside that.
    sim::EventQueue eq;
    pcie::PcieFabric fabric(eq);
    pcie::PortId port = fabric.add_port("fld", 50.0, 0);
    core::FlexDriver fld("fld", eq, fabric, port, 0x8000'0000,
                         0x4000'0000);
    fabric.attach(port, &fld, 0x8000'0000, core::FlexDriver::kBarSize);

    double fld_ram_bytes = 35 * 4.5 * 1024 + 44 * 36.0 * 1024;
    std::printf("\nFLD BRAM+URAM capacity (paper row): %s; "
                "instantiated on-die state: %s -> %s\n",
                format_bytes(fld_ram_bytes).c_str(),
                format_bytes(double(fld.mem_budget().total())).c_str(),
                fld.mem_budget().total() < fld_ram_bytes
                    ? "fits (consistent with Table 5)"
                    : "DOES NOT FIT");
    return 0;
}
