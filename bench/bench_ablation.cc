/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *
 *  A1. Selective completion signalling (§6): CQE interval vs 64 B
 *      echo throughput and completion wire traffic.
 *  A2. WQE-by-MMIO (§6): unloaded round-trip latency with and without
 *      inline doorbells.
 *  A3. Descriptor-fetch pipelining: outstanding ring reads vs
 *      small-packet throughput.
 *  A4. Cuckoo geometry (§5.2): achievable occupancy vs bank count and
 *      stash size — why 4 banks + stash at load factor 1/2.
 *  A5. MPRQ stride size (§5.2): receive-buffer waste on the IMC mix.
 *  A6. ZUC key cache (§8.2.1 future work): repeated-key throughput.
 */
#include "accel/zuc_accel.h"
#include "apps/scenarios.h"
#include "bench/bench_util.h"
#include "fld/cuckoo.h"
#include "model/perf_model.h"
#include "util/rng.h"

using namespace fld;
using namespace fld::apps;

namespace {

// ---------------------------------------------------------------- A1
void
ablate_signal_interval()
{
    bench::banner("A1: selective completion signalling",
                  "FlexDriver §6");
    TextTable t;
    t.header({"signal every", "64 B echo Gbps", "CQE wire B/pkt"});
    for (uint32_t interval : {1u, 4u, 16u, 64u}) {
        TestbedConfig tc;
        tc.fld.signal_interval = interval;
        PktGenConfig g = bench::open_loop_gen(64);
        auto s = make_fld_echo(true, g, tc);
        s->gen->start(sim::milliseconds(1), sim::milliseconds(3));
        s->tb->eq.run();
        double gbps = bench::measured_gbps(*s->gen);
        // TX CQEs per transmitted packet x 88 wire bytes.
        double cqe_wire =
            88.0 *
            double(s->tb->fld->stats().cqes -
                   s->tb->fld->stats().rx_packets) /
            double(std::max<uint64_t>(1, s->tb->fld->stats().tx_packets));
        t.row({strfmt("%u", interval), format_gbps(gbps),
               strfmt("%.1f", cqe_wire)});
    }
    t.print();
    bench::note("fewer signalled completions -> less PCIe control "
                "traffic; the default of 16 keeps the overhead "
                "negligible without starving credit returns");
}

// ---------------------------------------------------------------- A2
void
ablate_wqe_by_mmio()
{
    bench::banner("A2: WQE-by-MMIO (inline doorbells)",
                  "FlexDriver §6");
    TextTable t;
    t.header({"configuration", "median RTT us", "mean RTT us"});
    for (bool enabled : {true, false}) {
        TestbedConfig tc;
        tc.fld.wqe_by_mmio = enabled;
        PktGenConfig g =
            bench::closed_loop_gen(64, 1, /*measure_rtt=*/true);
        auto s = make_fld_echo(true, g, tc);
        // The generator driver flag lives in the scenario's driver;
        // FLD-side inline is what we toggle here.
        s->gen->start(sim::microseconds(200), sim::milliseconds(20));
        s->tb->eq.run();
        t.row({enabled ? "inline WQE (default)" : "ring fetch only",
               strfmt("%.2f", s->gen->rtt_us().median()),
               strfmt("%.2f", s->gen->rtt_us().mean())});
    }
    t.print();
    bench::note("the inline doorbell saves one PCIe read round trip "
                "on the FLD transmit path at low load");
}

// ---------------------------------------------------------------- A3
void
ablate_fetch_pipelining()
{
    bench::banner("A3: descriptor-fetch pipelining", "NIC DMA engine");
    TextTable t;
    t.header({"outstanding ring reads", "64 B echo Gbps"});
    for (uint32_t inflight : {1u, 2u, 4u, 16u}) {
        TestbedConfig tc;
        tc.nic.max_fetches_inflight = inflight;
        PktGenConfig g = bench::open_loop_gen(64);
        auto s = make_fld_echo(true, g, tc);
        s->gen->start(sim::milliseconds(1), sim::milliseconds(3));
        s->tb->eq.run();
        t.row({strfmt("%u", inflight),
               format_gbps(bench::measured_gbps(*s->gen))});
    }
    t.print();
    bench::note("small-packet rates need several descriptor reads in "
                "flight to hide the PCIe round trip");
}

// ---------------------------------------------------------------- A4
void
ablate_cuckoo_geometry()
{
    bench::banner("A4: cuckoo table geometry", "FlexDriver §5.2");
    TextTable t;
    t.header({"banks", "stash", "target load", "achieved", "stalls"});
    Rng rng(17);
    for (unsigned banks : {2u, 4u}) {
        for (size_t stash : {size_t(0), size_t(4)}) {
            for (double load : {0.5, 0.75, 0.95}) {
                const size_t slots = 8192;
                size_t target = size_t(double(slots) * load);
                // capacity param = slots/2 (table is 2x capacity);
                // build directly with the wanted slot count.
                core::CuckooTable table(slots / 2, banks, stash,
                                        rng.next());
                size_t inserted = 0;
                uint64_t stalls = 0;
                for (size_t i = 0; i < target; ++i) {
                    if (table.insert(rng.next(), uint32_t(i)))
                        ++inserted;
                    else
                        ++stalls;
                }
                t.row({strfmt("%u", banks), strfmt("%zu", stash),
                       strfmt("%.0f%%", load * 100),
                       strfmt("%.1f%%",
                              100.0 * double(inserted) /
                                  double(slots)),
                       strfmt("%llu", (unsigned long long)stalls)});
            }
        }
    }
    t.print();
    bench::note("4 banks + a 4-entry stash make load factor 1/2 "
                "stall-free (the paper's design point) and degrade "
                "gracefully beyond it");
}

// ---------------------------------------------------------------- A5
void
ablate_mprq_stride()
{
    bench::banner("A5: MPRQ stride size vs receive waste",
                  "FlexDriver §5.2");
    TextTable t;
    t.header({"stride", "IMC-mix waste", "1500 B waste"});
    Rng rng(23);
    std::vector<size_t> mix(20000);
    for (auto& v : mix)
        v = imc_frame_size(rng);
    for (uint32_t stride : {512u, 1024u, 2048u, 4096u}) {
        auto waste = [&](auto begin, auto end) {
            uint64_t used = 0, data = 0;
            for (auto it = begin; it != end; ++it) {
                size_t strides = (*it + stride - 1) / stride;
                used += strides * stride;
                data += *it;
            }
            return 100.0 * double(used - data) / double(used);
        };
        std::vector<size_t> mtu(1000, 1500);
        t.row({format_bytes(stride),
               strfmt("%.0f%%", waste(mix.begin(), mix.end())),
               strfmt("%.0f%%", waste(mtu.begin(), mtu.end()))});
    }
    t.print();
    bench::note("MPRQ bounds fragmentation to under one stride per "
                "packet; 2 KiB strides balance waste against "
                "per-packet stride bookkeeping");
}

// ---------------------------------------------------------------- A8
void
ablate_hostmem_design()
{
    bench::banner("A8: control structures in host memory (rejected "
                  "design)", "FlexDriver §4.2");
    model::PerfModelParams p;
    p.eth_gbps = 50.0; // expose the fabric bound, not the wire
    p.pcie_gbps = 50.0;
    TextTable t;
    t.header({"Frame B", "FLD (BAR) bound", "host-memory bound",
              "FLD advantage"});
    for (uint32_t size : {64u, 256u, 1024u, 1500u}) {
        double fld = model::fld_expected_gbps(p, size);
        double host = model::hostmem_accel_bound_gbps(p, size);
        t.row({strfmt("%u", size), format_gbps(fld),
               format_gbps(host), strfmt("%.1fx", fld / host)});
    }
    t.print();
    bench::note("hosting the accelerator's rings and buffers in host "
                "memory doubles the data crossings on the host PCIe "
                "link (and pollutes caches, which this model does not "
                "even charge) — §4.2's rationale for on-die state");
}

// ---------------------------------------------------------------- A7
void
ablate_cqe_compression()
{
    bench::banner("A7: receive CQE compression (mini-CQEs)",
                  "unused §8.1 optimization, modeled");
    TextTable t;
    t.header({"configuration", "64 B echo Gbps", "CQ wire B/pkt"});
    for (bool enabled : {false, true}) {
        TestbedConfig tc;
        tc.nic.cqe_compression = enabled;
        PktGenConfig g = bench::open_loop_gen(64);
        auto s = make_fld_echo(true, g, tc);
        s->gen->start(sim::milliseconds(1), sim::milliseconds(3));
        s->tb->eq.run();
        double gbps = bench::measured_gbps(*s->gen);
        // Rough per-packet CQ wire estimate from CQE counts: with
        // compression most completions ride as 16 B minis + shared
        // header instead of 88 B writes.
        double per_pkt =
            enabled ? (88.0 + 7 * 16.0) / 8.0 : 88.0;
        t.row({enabled ? "mini-CQEs" : "full CQEs (default)",
               format_gbps(gbps), strfmt("%.0f", per_pkt)});
    }
    t.print();
    bench::note("mini-CQEs cut completion wire traffic ~3.5x at "
                "64 B; the end-to-end gain is modest here because "
                "the transmit-side payload gather dominates once "
                "completions stop being the bottleneck — consistent "
                "with the paper listing it as a *further* "
                "optimization rather than a requirement");
}

// ---------------------------------------------------------------- A6
void
ablate_zuc_key_cache()
{
    bench::banner("A6: ZUC on-FPGA key cache (future work, §8.2.1)",
                  "extension");
    TextTable t;
    t.header({"key cache", "512 B responses/ms", "hit rate"});
    for (bool cache : {false, true}) {
        auto s = make_fldr_zuc(true);
        // Make the experiment accelerator-bound: one ZUC module
        // instead of eight, so per-request setup shows directly.
        accel::UnitModel one = accel::ZucAccelerator::default_model();
        one.units = 1;
        s->afu = std::make_unique<accel::ZucAccelerator>(
            s->tb->eq, *s->tb->fld, 0, one);
        auto* zuc = static_cast<accel::ZucAccelerator*>(s->afu.get());
        if (cache)
            zuc->enable_key_cache(16, sim::nanoseconds(80));
        // CryptoPerfClient reuses one key: the cacheable pattern of a
        // single LTE bearer.
        CryptoPerfConfig cfg;
        cfg.request_payload = 512;
        cfg.window = 64;
        CryptoPerfClient perf(s->tb->eq, *s->client, cfg);
        perf.start(sim::milliseconds(1), sim::milliseconds(4));
        s->tb->eq.run();
        double per_ms =
            double(perf.responses()) /
            sim::to_ms(perf.last_response() - perf.measure_start() +
                       sim::milliseconds(1));
        double hits =
            double(zuc->key_cache_hits()) /
            double(std::max<uint64_t>(
                1, zuc->key_cache_hits() + zuc->key_cache_misses()));
        t.row({cache ? "16 entries" : "off",
               strfmt("%.0f", per_ms),
               cache ? strfmt("%.0f%%", hits * 100) : "-"});
    }
    t.print();
}

} // namespace

int
main()
{
    ablate_signal_interval();
    ablate_wqe_by_mmio();
    ablate_fetch_pipelining();
    ablate_cuckoo_geometry();
    ablate_mprq_stride();
    ablate_zuc_key_cache();
    ablate_cqe_compression();
    ablate_hostmem_design();
    return 0;
}
