/**
 * @file
 * Microbenchmarks (google-benchmark) for the performance-critical
 * primitives: the cuckoo translation table, ZUC/SHA-256/HMAC, the
 * Toeplitz hash, checksums, packet parse/build, and IP reassembly.
 */
#include <benchmark/benchmark.h>

#include <functional>
#include <numeric>

#include "crypto/sha256.h"
#include "crypto/zuc.h"
#include "fld/buffer_pool.h"
#include "fld/cuckoo.h"
#include "net/checksum.h"
#include "net/headers.h"
#include "net/ip_reassembly.h"
#include "net/packet.h"
#include "net/toeplitz.h"
#include "sim/event_queue.h"
#include "util/rng.h"

using namespace fld;

static void
BM_CuckooInsertErase(benchmark::State& state)
{
    core::CuckooTable table(4096);
    uint64_t key = 0;
    // Keep the table at half capacity, FLD steady state.
    for (; key < 2048; ++key)
        table.insert(key, uint32_t(key));
    uint64_t erase_key = 0;
    for (auto _ : state) {
        table.insert(key++, 1);
        table.erase(erase_key++);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CuckooInsertErase);

static void
BM_CuckooLookup(benchmark::State& state)
{
    core::CuckooTable table(4096);
    for (uint64_t key = 0; key < 4096; ++key)
        table.insert(key, uint32_t(key));
    uint64_t key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.lookup(key % 4096));
        ++key;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CuckooLookup);

static void
BM_TxBufferPoolAllocFree(benchmark::State& state)
{
    core::TxBufferPool pool(256 * 1024, 2, 256 * 1024);
    for (auto _ : state) {
        auto v = pool.alloc(0, 1500);
        benchmark::DoNotOptimize(v);
        pool.free_oldest(0);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TxBufferPoolAllocFree);

static void
BM_ZucKeystream(benchmark::State& state)
{
    crypto::Zuc::Key key{};
    crypto::Zuc::Iv iv{};
    crypto::Zuc zuc(key, iv);
    for (auto _ : state)
        benchmark::DoNotOptimize(zuc.next());
    state.SetBytesProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ZucKeystream);

static void
BM_Eea3Encrypt(benchmark::State& state)
{
    crypto::Zuc::Key key{};
    std::vector<uint8_t> data(size_t(state.range(0)));
    std::iota(data.begin(), data.end(), 0);
    for (auto _ : state) {
        crypto::eea3_crypt(key, 1, 2, 0, data.data(), data.size() * 8);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Eea3Encrypt)->Arg(64)->Arg(512)->Arg(4096);

static void
BM_Eia3Mac(benchmark::State& state)
{
    crypto::Zuc::Key key{};
    std::vector<uint8_t> data(size_t(state.range(0)), 0x5a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::eia3_mac(
            key, 1, 2, 0, data.data(), data.size() * 8));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Eia3Mac)->Arg(64)->Arg(512);

static void
BM_HmacSha256(benchmark::State& state)
{
    std::vector<uint8_t> key(32, 0x0b);
    std::vector<uint8_t> data(size_t(state.range(0)), 0xa5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::hmac_sha256(
            key.data(), key.size(), data.data(), data.size()));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(512)->Arg(4096);

static void
BM_InternetChecksum(benchmark::State& state)
{
    std::vector<uint8_t> data(size_t(state.range(0)), 0x3c);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            net::internet_checksum(data.data(), data.size()));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1500);

static void
BM_ToeplitzHash(benchmark::State& state)
{
    const auto& key = net::default_rss_key();
    uint32_t sport = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(net::toeplitz_ipv4(
            key, 0x0a000001, 0x0a000002, uint16_t(sport++), 5201));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ToeplitzHash);

static void
BM_PacketBuildParse(benchmark::State& state)
{
    std::vector<uint8_t> payload(1000, 0x77);
    for (auto _ : state) {
        net::Packet pkt = net::PacketBuilder()
                              .eth({2, 0, 0, 0, 0, 1},
                                   {2, 0, 0, 0, 0, 2})
                              .ipv4(1, 2, net::kIpProtoUdp)
                              .udp(3, 4)
                              .payload(payload)
                              .build();
        benchmark::DoNotOptimize(net::parse(pkt));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketBuildParse);

static void
BM_EventQueueScheduleRun(benchmark::State& state)
{
    // The simulator's innermost loop: schedule a batch of events with
    // small captures (the shape of every datapath hop) and drain them.
    // Measures scheduling-side allocation plus the per-event execute
    // cost of the queue itself.
    sim::EventQueue eq;
    constexpr int kBatch = 1024;
    uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < kBatch; ++i) {
            eq.schedule_in(sim::TimePs(i % 7),
                           [&sink, i] { sink += uint64_t(i); });
        }
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_TimingWheel(benchmark::State& state)
{
    // Wheel-vs-heap A/B at a fastpath-like delay mix: a standing
    // population of timers re-arming at wire/DMA horizons (2^14..2^21
    // ps) with a 2% RTO-scale tail. arg 0 selects the engine.
    sim::EventQueue eq(state.range(0) == 0
                           ? sim::EventQueue::Engine::Wheel
                           : sim::EventQueue::Engine::Heap);
    constexpr int kPopulation = 512;
    uint64_t rng = 0x2545f4914f6cdd1dull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    uint64_t fired = 0;
    struct Timer
    {
        sim::EventQueue& eq;
        decltype(next)& rnd;
        uint64_t& fired;
        void arm()
        {
            sim::TimePs delay =
                (rnd() % 100 < 2)
                    ? sim::microseconds(50)
                    : sim::TimePs(1) << (14 + rnd() % 8);
            eq.schedule_in(delay, [this] {
                ++fired;
                arm();
            });
        }
    };
    std::vector<Timer> timers(kPopulation, Timer{eq, next, fired});
    for (Timer& t : timers)
        t.arm();
    for (auto _ : state) {
        uint64_t target = fired + 4096;
        while (fired < target)
            eq.run_until(eq.now() + sim::microseconds(2));
        benchmark::DoNotOptimize(fired);
    }
    eq.clear();
    state.SetItemsProcessed(int64_t(fired));
}
BENCHMARK(BM_TimingWheel)->Arg(0)->Arg(1);

static void
BM_PacketPipelineCopy(benchmark::State& state)
{
    // A frame hopping through scheduled pipeline stages by move, the
    // way wire -> NIC -> fabric -> driver hand packets around. Any
    // hidden per-hop payload copy inside the event queue shows up
    // directly in the bytes/sec figure.
    sim::EventQueue eq;
    const size_t frame = size_t(state.range(0));
    constexpr int kHops = 8;
    uint64_t sink = 0;
    std::function<void(net::Packet&&, int)> hop =
        [&](net::Packet&& p, int hops_left) {
            if (hops_left == 0) {
                sink += p.size();
                return;
            }
            eq.schedule_in(1, [&hop, hops_left,
                               p = std::move(p)]() mutable {
                hop(std::move(p), hops_left - 1);
            });
        };
    for (auto _ : state) {
        net::Packet pkt(std::vector<uint8_t>(frame, 0xab));
        hop(std::move(pkt), kHops);
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetBytesProcessed(state.iterations() * int64_t(frame) *
                            kHops);
}
BENCHMARK(BM_PacketPipelineCopy)->Arg(64)->Arg(1500)->Arg(9000);

static void
BM_IpFragmentReassemble(benchmark::State& state)
{
    std::vector<uint8_t> payload(3000);
    std::iota(payload.begin(), payload.end(), 0);
    net::Packet pkt = net::PacketBuilder()
                          .eth({2, 0, 0, 0, 0, 1}, {2, 0, 0, 0, 0, 2})
                          .ipv4(1, 2, net::kIpProtoUdp, 1)
                          .udp(3, 4)
                          .payload(payload)
                          .build();
    net::IpReassembler reasm;
    uint16_t id = 0;
    for (auto _ : state) {
        net::Ipv4Header ih =
            net::Ipv4Header::decode(pkt.bytes() + net::kEthHeaderLen);
        ih.id = ++id;
        ih.encode(pkt.bytes() + net::kEthHeaderLen, true);
        for (auto& frag : net::ip_fragment(pkt, 1450))
            benchmark::DoNotOptimize(reasm.push(frag));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IpFragmentReassemble);
