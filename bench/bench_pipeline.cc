/**
 * @file
 * Compiled-pipeline lookup bench (ROADMAP item 4 acceptance gate).
 *
 * At each ruleset size the bench installs an eSwitch-shaped ruleset
 * (VXLAN termination, tenant tag chains, dport steering, a wildcard
 * floor) into the fixed FlowTables interpreter, compiles the same
 * rules into the flat Pipeline program via config_from, and times
 * both engines over one pre-extracted field stream. Every stream
 * element is also cross-checked: the two engines must resolve to the
 * same rule — the bench doubles as a conformance check.
 *
 * Results go to BENCH_PIPELINE.json (override with --out=PATH) so CI
 * can archive and trend them. The exit code is non-zero when any
 * point disagrees or when the compiled engine falls more than 1.2x
 * behind the fixed interpreter (the flat form exists to be at least
 * competitive; regressing past that bound is a build breaker).
 *
 * Usage: bench_pipeline [--out=PATH] [--fields=N] [--seconds=S]
 */
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "net/headers.h"
#include "nic/pipeline.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

using namespace fld;
using namespace fld::nic;

/** eSwitch-shaped ruleset: @p rules total across tables 0 and 3. */
FlowTables
make_ruleset(uint32_t rules, fld::Rng& rng)
{
    FlowTables t;
    // VXLAN termination + wildcard floor, as the echo scenarios
    // install them.
    FlowMatch vx;
    vx.in_vport = kUplinkVport;
    vx.dport = net::kVxlanPort;
    t.add_rule(0, 1000, vx, {vxlan_decap(), fwd_tir(1)});
    t.add_rule(0, 1, {}, {fwd_tir(1)});
    for (uint32_t i = 2; i < rules; ++i) {
        FlowMatch m;
        m.in_vport = kUplinkVport;
        std::vector<Action> acts;
        switch (i % 3) {
        case 0: // tenant tag chain: tag + count, resolve in table 3
            m.dport = uint16_t(1000 + i);
            acts = {set_tag(i), count_action(i), goto_table(3)};
            break;
        case 1: // plain dport steering
            m.dport = uint16_t(1000 + i);
            acts = {fwd_queue(i % 8)};
            break;
        default: // src-scoped drop
            m.src_ip = uint32_t(rng.next());
            acts = {drop_action()};
            break;
        }
        t.add_rule(0, int(10 + i % 50), m, std::move(acts));
    }
    FlowMatch tagged;
    tagged.flow_tag = 0; // never set on extracted fields: miss floor
    t.add_rule(3, 1, tagged, {fwd_queue(0)});
    return t;
}

/** Pre-extracted field stream biased so hits and misses both occur. */
std::vector<FlowFields>
make_stream(uint32_t n, uint32_t rules, fld::Rng& rng)
{
    std::vector<FlowFields> fields(n);
    for (auto& f : fields) {
        f.in_vport = kUplinkVport;
        f.ethertype = net::kEtherTypeIpv4;
        f.ip_proto = net::kIpProtoUdp;
        f.src_ip = uint32_t(rng.next());
        f.dst_ip = uint32_t(rng.next());
        f.sport = uint16_t(rng.uniform(0xffff));
        f.dport = rng.chance(0.5)
                      ? uint16_t(1000 + rng.uniform(rules))
                      : uint16_t(rng.uniform(0xffff));
        f.has_l4 = true;
    }
    return fields;
}

struct PointResult
{
    uint32_t rules = 0;
    double fixed_rate = 0;    ///< FlowTables lookups per second
    double compiled_rate = 0; ///< Pipeline lookups per second
    uint64_t mismatches = 0;
    bool ok = false;
};

double
elapsed_sec(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

PointResult
run_point(uint32_t rules, uint32_t nfields, double seconds)
{
    PointResult r;
    r.rules = rules;
    fld::Rng rng(0xbe9c + rules);
    FlowTables flows = make_ruleset(rules, rng);
    Pipeline pipe(Pipeline::config_from(flows));
    std::vector<FlowFields> stream = make_stream(nfields, rules, rng);

    // Conformance sweep first: same winner everywhere.
    for (const FlowFields& f : stream) {
        FlowRule* fr = flows.lookup(0, f);
        CompiledEntry* ce = pipe.lookup(0, f);
        uint64_t a = fr ? fr->id : 0;
        uint64_t b = ce ? ce->rule_id : 0;
        if (a != b)
            r.mismatches++;
    }

    // Throughput: repeat full passes until the time budget is spent.
    uint64_t sink = 0, fixed_lookups = 0, compiled_lookups = 0;
    auto t0 = std::chrono::steady_clock::now();
    do {
        for (const FlowFields& f : stream)
            sink += flows.lookup(0, f) != nullptr;
        fixed_lookups += stream.size();
    } while (elapsed_sec(t0) < seconds);
    double fixed_sec = elapsed_sec(t0);

    t0 = std::chrono::steady_clock::now();
    do {
        for (const FlowFields& f : stream)
            sink += pipe.lookup(0, f) != nullptr;
        compiled_lookups += stream.size();
    } while (elapsed_sec(t0) < seconds);
    double compiled_sec = elapsed_sec(t0);

    if (sink == 0) // keep the loops honest without volatile
        std::fprintf(stderr, "no lookup ever matched\n");

    r.fixed_rate = double(fixed_lookups) / fixed_sec;
    r.compiled_rate = double(compiled_lookups) / compiled_sec;
    r.ok = r.mismatches == 0 &&
           r.compiled_rate * 1.2 >= r.fixed_rate;
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string out = "BENCH_PIPELINE.json";
    uint32_t nfields = 20'000;
    double seconds = 0.25;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--out=", 6) == 0)
            out = argv[i] + 6;
        else if (std::strncmp(argv[i], "--fields=", 9) == 0)
            nfields = uint32_t(std::strtoul(argv[i] + 9, nullptr, 0));
        else if (std::strncmp(argv[i], "--seconds=", 10) == 0)
            seconds = std::strtod(argv[i] + 10, nullptr);
    }

    bench::banner("Compiled pipeline lookup",
                  "flat program vs fixed eSwitch interpreter");

    std::vector<PointResult> results;
    bool all_ok = true;
    for (uint32_t rules : {4u, 16u, 64u, 256u}) {
        PointResult r = run_point(rules, nfields, seconds);
        results.push_back(r);
        all_ok = all_ok && r.ok;
        bench::note(strfmt(
            "%4u rules: fixed %7.2f Mlookups/s, compiled %7.2f "
            "Mlookups/s (%.2fx)%s%s",
            rules, r.fixed_rate / 1e6, r.compiled_rate / 1e6,
            r.compiled_rate / r.fixed_rate,
            r.mismatches ? ", MISMATCHES" : "",
            r.ok ? "" : "  ** FAIL **"));
    }

    std::FILE* f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"pipeline\",\n  \"points\": [");
    for (size_t i = 0; i < results.size(); ++i) {
        const PointResult& r = results[i];
        std::fprintf(f,
                     "%s\n    {\"rules\": %u, "
                     "\"fixed_lookups_per_sec\": %.0f, "
                     "\"compiled_lookups_per_sec\": %.0f, "
                     "\"ratio\": %.3f, \"mismatches\": %" PRIu64
                     ", \"ok\": %s}",
                     i ? "," : "", r.rules, r.fixed_rate,
                     r.compiled_rate, r.compiled_rate / r.fixed_rate,
                     r.mismatches, r.ok ? "true" : "false");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    bench::note("wrote " + out);

    return all_ok ? 0 : 2;
}
