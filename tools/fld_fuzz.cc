/**
 * @file
 * fld_fuzz — differential scenario fuzzer CLI.
 *
 * Walks 64-bit seeds, materializes each into a randomized testbed +
 * workload + fault plan (sim::ScenarioFuzzer), runs it through the
 * four oracles (apps::FuzzRunner: differential equivalence, trace
 * invariants, exactly-once, conservation) and, on the first failure,
 * greedily shrinks the scenario and writes replayable artifacts.
 *
 * Usage:
 *   fld_fuzz [--seeds=N] [--seed0=S] [--budget=120s] [--jobs=N]
 *            [--replay=SEED] [--artifacts=DIR] [--no-trace]
 *            [--churn=N] [--conn=N] [--rpc=N] [--pipeline=N]
 *
 *   --churn=N       control-plane mode: N seeds of randomized
 *                   many-tenant churn scenarios (sim::ChurnGen)
 *                   through the ChurnHarness oracles (shadow map,
 *                   stat conservation, budget/model reconciliation,
 *                   fault rejection) instead of datapath scenarios
 *   --conn=N        connection-workload mode: N seeds, each forced to
 *                   FuzzMode::ConnServe (every seed carries valid conn
 *                   draws), run FLD-served vs CPU-served through the
 *                   fastpath harness oracles; failures shrink and
 *                   write artifacts exactly like datapath mode
 *   --rpc=N         RPC-workload mode: N seeds, each forced to
 *                   FuzzMode::RpcServe (every seed carries valid rpc
 *                   draws), run FLD-served vs CPU-served through the
 *                   RPC harness; the differential oracle diffs
 *                   per-request response digests across the modes
 *   --pipeline=N    pipeline-program mode: N seeds, each forced to
 *                   FuzzMode::EthEcho with the compiled match-action
 *                   pipeline enabled and a random decoration program
 *                   (every seed carries valid pipeline draws) spliced
 *                   into the echo steering; FLD vs CPU differential
 *                   plus all four oracle families judge the program
 *   --seeds=N       run N consecutive seeds (default 100)
 *   --seed0=S       first seed (default 1)
 *   --budget=T      stop after T wall-clock seconds (e.g. 120s);
 *                   overrides --seeds with "as many as fit"
 *   --jobs=N        worker threads (default 1); any N yields the same
 *                   verdict and artifacts (see apps/fuzz_sweep.h)
 *   --replay=SEED   run exactly one seed and print its transcript
 *   --artifacts=DIR write failing_seed.txt / minimized_scenario.txt /
 *                   transcript.txt there on failure (default ".")
 *   --no-trace      skip trace recording (faster soak)
 *
 * Exit code 0 = all seeds clean, 1 = a failure was found (artifacts
 * written), 2 = bad usage.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "apps/churn_harness.h"
#include "apps/fuzz_runner.h"
#include "apps/fuzz_sweep.h"
#include "bench/bench_util.h"
#include "sim/fuzz.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace fld;

namespace {

struct CliOptions
{
    uint64_t seeds = 100;
    uint64_t seed0 = 1;
    double budget_sec = 0; ///< 0 = no time budget
    unsigned jobs = 1;
    bool replay = false;
    uint64_t replay_seed = 0;
    std::string artifacts = ".";
    bool trace = true;
    uint64_t churn = 0; ///< >0: churn mode, N seeds
    uint64_t conn = 0;  ///< >0: connection-workload mode, N seeds
    uint64_t rpc = 0;   ///< >0: RPC-workload mode, N seeds
    uint64_t pipeline = 0; ///< >0: pipeline-program mode, N seeds
};

bool
parse_args(int argc, char** argv, CliOptions& o)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const char* prefix) -> const char* {
            size_t n = std::string(prefix).size();
            return a.rfind(prefix, 0) == 0 ? a.c_str() + n : nullptr;
        };
        if (const char* v = val("--seeds="))
            o.seeds = std::strtoull(v, nullptr, 0);
        else if (const char* v = val("--seed0="))
            o.seed0 = std::strtoull(v, nullptr, 0);
        else if (const char* v = val("--budget="))
            o.budget_sec = std::strtod(v, nullptr); // "120s" parses as 120
        else if (const char* v = val("--jobs="))
            o.jobs = unsigned(std::strtoul(v, nullptr, 0));
        else if (const char* v = val("--replay=")) {
            o.replay = true;
            o.replay_seed = std::strtoull(v, nullptr, 0);
        } else if (const char* v = val("--artifacts="))
            o.artifacts = v;
        else if (const char* v = val("--churn="))
            o.churn = std::strtoull(v, nullptr, 0);
        else if (const char* v = val("--conn="))
            o.conn = std::strtoull(v, nullptr, 0);
        else if (const char* v = val("--rpc="))
            o.rpc = std::strtoull(v, nullptr, 0);
        else if (const char* v = val("--pipeline="))
            o.pipeline = std::strtoull(v, nullptr, 0);
        else if (a == "--no-trace")
            o.trace = false;
        else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            return false;
        }
    }
    return true;
}

apps::FuzzRunOptions
runner_options(const CliOptions& o)
{
    apps::FuzzRunOptions ropt;
    // The benches' canonical calibrated setup is the base every
    // scenario perturbs: same addressing, same testbed defaults.
    ropt.base_gen = bench::closed_loop_gen(/*frame=*/64, /*window=*/8);
    ropt.base_tb = apps::TestbedConfig{};
    ropt.check_trace = o.trace;
    return ropt;
}

apps::FuzzRunner
make_runner(const CliOptions& o)
{
    return apps::FuzzRunner(runner_options(o));
}

void
write_file(const std::string& path, const std::string& content)
{
    std::ofstream f(path);
    f << content;
}

int
report_failure(const CliOptions& o, apps::FuzzRunner& runner,
               const sim::FuzzScenario& failing,
               const apps::FuzzVerdict& verdict)
{
    std::printf("\nFAILURE at seed %llu: %s\n",
                (unsigned long long)failing.seed,
                failing.summary().c_str());
    for (const std::string& why : verdict.violations)
        std::printf("  %s\n", why.c_str());

    std::printf("shrinking...\n");
    sim::ScenarioShrinker shrinker(
        [&](const sim::FuzzScenario& s) { return !runner.run(s).ok; });
    sim::ShrinkResult shrunk = shrinker.shrink(failing);
    std::printf("shrunk after %u runs (%u accepted): %s\n",
                shrunk.predicate_runs, shrunk.accepted_mutations,
                shrunk.scenario.summary().c_str());

    apps::FuzzVerdict mv = runner.run(shrunk.scenario);
    write_file(o.artifacts + "/failing_seed.txt",
               std::to_string(failing.seed) + "\n");
    write_file(o.artifacts + "/minimized_scenario.txt",
               shrunk.scenario.to_string());
    write_file(o.artifacts + "/transcript.txt", mv.transcript);
    std::printf("artifacts written to %s "
                "(failing_seed.txt, minimized_scenario.txt, "
                "transcript.txt)\n",
                o.artifacts.c_str());
    if (failing.pipeline.enabled &&
        failing.workload.mode == sim::FuzzMode::EthEcho)
        std::printf("replay with: fld_fuzz --pipeline=1 --seed0=%llu\n",
                    (unsigned long long)failing.seed);
    else if (failing.workload.mode == sim::FuzzMode::ConnServe)
        std::printf("replay with: fld_fuzz --conn=1 --seed0=%llu\n",
                    (unsigned long long)failing.seed);
    else if (failing.workload.mode == sim::FuzzMode::RpcServe)
        std::printf("replay with: fld_fuzz --rpc=1 --seed0=%llu\n",
                    (unsigned long long)failing.seed);
    else
        std::printf("replay with: fld_fuzz --replay=%llu\n",
                    (unsigned long long)failing.seed);
    return 1;
}

/**
 * Connection-workload sweep: every seed already carries conn-shape
 * draws (they sit at the tail of the generator's draw order), so the
 * mode is simply forced to ConnServe and the scenario replays from
 * the seed alone. Seeds whose natural mode is already ConnServe are
 * unchanged by the forcing.
 */
int
run_conn_mode(const CliOptions& o)
{
    sim::ScenarioFuzzer fuzzer;
    apps::FuzzRunner runner = make_runner(o);
    for (uint64_t i = 0; i < o.conn; ++i) {
        uint64_t seed = o.seed0 + i;
        sim::FuzzScenario s = fuzzer.generate(seed);
        s.workload.mode = sim::FuzzMode::ConnServe;
        apps::FuzzVerdict v = runner.run(s);
        if (!v.ok)
            return report_failure(o, runner, s, v);
        if ((i + 1) % 10 == 0 || i + 1 == o.conn)
            std::printf("[%llu/%llu] conn seed %llu ok: %s\n",
                        (unsigned long long)(i + 1),
                        (unsigned long long)o.conn,
                        (unsigned long long)seed,
                        s.summary().c_str());
    }
    std::printf("all %llu conn seeds clean\n",
                (unsigned long long)o.conn);
    return 0;
}

/**
 * RPC-workload sweep: like run_conn_mode, but forcing RpcServe — the
 * rpc-shape draws sit at the very tail of the generator's draw order,
 * so any seed replays identically with the mode forced.
 */
int
run_rpc_mode(const CliOptions& o)
{
    sim::ScenarioFuzzer fuzzer;
    apps::FuzzRunner runner = make_runner(o);
    for (uint64_t i = 0; i < o.rpc; ++i) {
        uint64_t seed = o.seed0 + i;
        sim::FuzzScenario s = fuzzer.generate(seed);
        s.workload.mode = sim::FuzzMode::RpcServe;
        apps::FuzzVerdict v = runner.run(s);
        if (!v.ok)
            return report_failure(o, runner, s, v);
        if ((i + 1) % 10 == 0 || i + 1 == o.rpc)
            std::printf("[%llu/%llu] rpc seed %llu ok: %s\n",
                        (unsigned long long)(i + 1),
                        (unsigned long long)o.rpc,
                        (unsigned long long)seed,
                        s.summary().c_str());
    }
    std::printf("all %llu rpc seeds clean\n",
                (unsigned long long)o.rpc);
    return 0;
}

/**
 * Pipeline-program sweep: the pipeline-shape draws sit at the very
 * tail of the generator's draw order, so any seed replays identically
 * with the dimension forced on. The mode is forced to EthEcho (the
 * decoration chain splices into the echo steering rules) and the
 * compiled engine serves both the FLD and CPU runs.
 */
int
run_pipeline_mode(const CliOptions& o)
{
    sim::ScenarioFuzzer fuzzer;
    apps::FuzzRunner runner = make_runner(o);
    for (uint64_t i = 0; i < o.pipeline; ++i) {
        uint64_t seed = o.seed0 + i;
        sim::FuzzScenario s = fuzzer.generate(seed);
        s.workload.mode = sim::FuzzMode::EthEcho;
        s.pipeline.enabled = true;
        apps::FuzzVerdict v = runner.run(s);
        if (!v.ok)
            return report_failure(o, runner, s, v);
        if ((i + 1) % 10 == 0 || i + 1 == o.pipeline)
            std::printf("[%llu/%llu] pipeline seed %llu ok: %s\n",
                        (unsigned long long)(i + 1),
                        (unsigned long long)o.pipeline,
                        (unsigned long long)seed,
                        s.summary().c_str());
    }
    std::printf("all %llu pipeline seeds clean\n",
                (unsigned long long)o.pipeline);
    return 0;
}

/** One randomized churn scenario per seed: the geometry, fault mix
 *  and traffic shape all derive from the seed, so a failing seed
 *  replays exactly. */
apps::ChurnHarnessConfig
churn_scenario(uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 0xc4);
    apps::ChurnHarnessConfig cfg;
    cfg.churn.tenants = uint32_t(rng.range(2, 300));
    cfg.churn.flows_per_tenant = uint32_t(rng.range(1, 200));
    cfg.churn.packet_fraction = 0.3 + 0.6 * rng.uniform_double();
    cfg.churn.skew = rng.uniform_double() * 2.0;
    cfg.churn.dup_open_prob = rng.chance(0.5) ? 0.02 : 0.0;
    cfg.churn.stray_close_prob = rng.chance(0.5) ? 0.02 : 0.0;
    cfg.churn.seed = seed;
    if (rng.chance(0.3))
        cfg.directory.sketch_enabled = false;
    if (rng.chance(0.3)) {
        cfg.tenant_rate_gbps = 0.5 + rng.uniform_double() * 5.0;
        cfg.tenant_burst_bytes = 1 << rng.range(12, 16);
    }
    return cfg;
}

int
run_churn_mode(const CliOptions& o)
{
    for (uint64_t i = 0; i < o.churn; ++i) {
        uint64_t seed = o.seed0 + i;
        apps::ChurnHarnessConfig cfg = churn_scenario(seed);
        apps::ChurnHarness harness(cfg);
        uint64_t events = 4 * harness.gen().target_population();
        apps::ChurnReport rep = harness.run(events);
        if (!rep.ok()) {
            std::printf("\nCHURN FAILURE at seed %llu "
                        "(%u tenants x %u flows, dup=%.2f stray=%.2f)"
                        "\n",
                        (unsigned long long)seed, cfg.churn.tenants,
                        cfg.churn.flows_per_tenant,
                        cfg.churn.dup_open_prob,
                        cfg.churn.stray_close_prob);
            std::string transcript;
            for (const std::string& why : rep.violations) {
                std::printf("  %s\n", why.c_str());
                transcript += why + "\n";
            }
            write_file(o.artifacts + "/failing_seed.txt",
                       std::to_string(seed) + "\n");
            write_file(o.artifacts + "/transcript.txt", transcript);
            std::printf("replay with: fld_fuzz --churn=1 --seed0="
                        "%llu\n",
                        (unsigned long long)seed);
            return 1;
        }
        if ((i + 1) % 25 == 0 || i + 1 == o.churn)
            std::printf("[%llu/%llu] churn seed %llu ok: %llu events,"
                        " %zu live, hash %016llx\n",
                        (unsigned long long)(i + 1),
                        (unsigned long long)o.churn,
                        (unsigned long long)seed,
                        (unsigned long long)rep.events,
                        rep.final_live,
                        (unsigned long long)rep.state_hash);
    }
    std::printf("all %llu churn seeds clean\n",
                (unsigned long long)o.churn);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    CliOptions o;
    if (!parse_args(argc, argv, o))
        return 2;

    if (o.churn > 0)
        return run_churn_mode(o);
    if (o.conn > 0)
        return run_conn_mode(o);
    if (o.rpc > 0)
        return run_rpc_mode(o);
    if (o.pipeline > 0)
        return run_pipeline_mode(o);

    sim::ScenarioFuzzer fuzzer;
    apps::FuzzRunner runner = make_runner(o);

    if (o.replay) {
        sim::FuzzScenario s = fuzzer.generate(o.replay_seed);
        apps::FuzzVerdict v = runner.run(s);
        std::printf("%s", v.transcript.c_str());
        std::printf("transcript_hash = %016llx\n",
                    (unsigned long long)v.transcript_hash);
        return v.ok ? 0 : report_failure(o, runner, s, v);
    }

    auto start = std::chrono::steady_clock::now();
    auto elapsed_sec = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    apps::SweepOptions sweep;
    sweep.seed0 = o.seed0;
    sweep.seeds = o.seeds;
    sweep.budget_sec = o.budget_sec;
    sweep.jobs = o.jobs;
    sweep.run = runner_options(o);
    sweep.on_result = [&](uint64_t done, uint64_t seed,
                          const sim::FuzzScenario& s,
                          const apps::FuzzVerdict& v) {
        if (v.ok && (done % 25 == 0 ||
                     (o.budget_sec == 0 && done == o.seeds)))
            std::printf("[%llu/%s] seed %llu ok: %s\n",
                        (unsigned long long)done,
                        o.budget_sec > 0
                            ? strfmt("%.0fs", o.budget_sec).c_str()
                            : std::to_string(o.seeds).c_str(),
                        (unsigned long long)seed, s.summary().c_str());
    };

    apps::SweepResult result = apps::run_sweep(sweep);
    if (result.found_failure)
        return report_failure(o, runner, result.failing_scenario,
                              result.failing_verdict);
    std::printf("all %llu seeds clean (%.1fs, jobs=%u)\n",
                (unsigned long long)result.ran, elapsed_sec(),
                o.jobs < 1 ? 1u : o.jobs);
    return 0;
}
