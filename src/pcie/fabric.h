/**
 * @file
 * Event-driven PCIe fabric: ports, switch routing by BAR ranges,
 * per-direction link serialization, and split-completion reads.
 *
 * Topology model: every port connects to a central switch (the
 * Innova-2 NIC embeds one). A transaction from port A to port B
 * serializes on A's egress link, crosses the switch (propagation
 * latency), then serializes on B's ingress link. Both serializers are
 * independent resources, so bidirectional traffic and multi-initiator
 * contention behave naturally.
 */
#ifndef FLD_PCIE_FABRIC_H
#define FLD_PCIE_FABRIC_H

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "pcie/endpoint.h"
#include "pcie/tlp.h"
#include "sim/event_queue.h"
#include "sim/fault.h"
#include "sim/inline_callback.h"

namespace fld::pcie {

using PortId = uint32_t;
constexpr PortId kInvalidPort = ~0u;

/** Per-port wire-byte counters (for utilization reporting). */
struct PortStats
{
    uint64_t egress_bytes = 0;  ///< device -> switch
    uint64_t ingress_bytes = 0; ///< switch -> device
    uint64_t reads = 0;
    uint64_t writes = 0;
};

class PcieFabric
{
  public:
    /** Move-only completion handlers (sim::MoveFunction): DMA chunk
     *  fans fire thousands of these per descriptor ring spin, and the
     *  std::function they replaced heap-allocated per operation. */
    using OnWriteDone = sim::MoveFunction<void()>;
    using OnReadData = sim::MoveFunction<void(std::vector<uint8_t>)>;

    PcieFabric(sim::EventQueue& eq, TlpParams tlp = {})
        : eq_(eq), tlp_(tlp)
    {}

    /**
     * Create a port with a link of @p gbps per direction and one-way
     * propagation @p latency to the switch.
     */
    PortId add_port(std::string name, double gbps, sim::TimePs latency);

    /**
     * Map @p ep at fabric address range [base, base+size) reachable
     * through @p port. Ranges must not overlap.
     */
    void attach(PortId port, PcieEndpoint* ep, uint64_t base,
                uint64_t size);

    /**
     * Posted write from @p from to fabric address @p addr. The
     * optional callback fires when the data has been delivered into
     * the target endpoint (writes are posted: the initiator does not
     * wait, but callers may want delivery ordering hooks).
     */
    void write(PortId from, uint64_t addr, std::vector<uint8_t> data,
               OnWriteDone done = {});

    /**
     * Posted write that copies @p len bytes out of @p data instead of
     * taking a vector. Preferred for fixed-size records built on the
     * stack (CQEs, doorbells): the bytes land in a pooled, capacity-
     * recycled buffer, so steady state does no allocation. The vector
     * overload remains the zero-copy path for payloads that already
     * own their storage.
     */
    void write(PortId from, uint64_t addr, const void* data, size_t len,
               OnWriteDone done = {});

    /** Split-completion read of @p len bytes at @p addr. */
    void read(PortId from, uint64_t addr, size_t len, OnReadData done);

    const TlpParams& tlp() const { return tlp_; }

    /**
     * Attach a fault plan. Fault behaviour follows tlp().faults:
     * read completions may be delayed or stalled, doorbell-sized
     * posted writes may be delivered with jitter. With a null plan or
     * all-zero knobs the fabric's timing is bit-identical to before.
     */
    void set_fault_plan(sim::FaultPlan* plan) { faults_ = plan; }
    const PortStats& stats(PortId port) const
    {
        return ports_[port]->stats;
    }
    sim::EventQueue& event_queue() { return eq_; }

  private:
    struct Port
    {
        std::string name;
        double gbps;
        sim::TimePs latency;
        sim::TimePs egress_busy_until = 0;
        sim::TimePs ingress_busy_until = 0;
        /// Fault mode only: completions to this requester are kept
        /// FIFO; a delayed completion drags later ones behind it.
        sim::TimePs cpl_order_floor = 0;
        PortStats stats;
    };
    struct Mapping
    {
        uint64_t base;
        uint64_t size;
        PortId port;
        PcieEndpoint* ep;
    };
    /**
     * In-flight transaction state, pooled. The scheduled hops capture
     * only {fabric, op index} (16 bytes — always inline in the event
     * node); carrying the completion callback itself through the
     * capture chain overflowed the inline store and heap-allocated
     * three times per read.
     */
    struct ReadOp
    {
        PcieEndpoint* ep = nullptr;
        uint64_t bar_off = 0;
        size_t len = 0;
        Port* src = nullptr;
        Port* dst = nullptr;
        OnReadData done;
        std::vector<uint8_t> data;
        uint32_t next_free = 0;
    };
    struct WriteOp
    {
        PcieEndpoint* ep = nullptr;
        uint64_t bar_off = 0;
        std::vector<uint8_t> data;
        OnWriteDone done;
        uint32_t next_free = 0;
    };

    uint32_t acquire_read_op();
    void release_read_op(uint32_t idx);
    uint32_t acquire_write_op();
    void release_write_op(uint32_t idx);
    void post_write(PortId from, uint64_t addr, uint32_t idx);
    void read_request_arrived(uint32_t idx);
    void read_data_ready(uint32_t idx);
    void deliver_write(uint32_t idx);

    /**
     * Serialize @p wire_bytes on a direction serializer; returns the
     * time the last byte leaves the serializer.
     */
    sim::TimePs serialize(sim::TimePs earliest, sim::TimePs& busy_until,
                          double gbps, uint64_t wire_bytes);

    const Mapping& resolve(uint64_t addr) const;

    sim::EventQueue& eq_;
    TlpParams tlp_;
    sim::FaultPlan* faults_ = nullptr;
    std::vector<std::unique_ptr<Port>> ports_;
    std::vector<Mapping> map_;
    /// Op pools: deque for stable addresses, freelist threaded through
    /// next_free (kFreeListEnd terminates).
    static constexpr uint32_t kFreeListEnd = ~0u;
    std::deque<ReadOp> read_ops_;
    uint32_t read_free_ = kFreeListEnd;
    std::deque<WriteOp> write_ops_;
    uint32_t write_free_ = kFreeListEnd;
};

} // namespace fld::pcie

#endif // FLD_PCIE_FABRIC_H
