/**
 * @file
 * Event-driven PCIe fabric: ports, switch routing by BAR ranges,
 * per-direction link serialization, and split-completion reads.
 *
 * Topology model: every port connects to a central switch (the
 * Innova-2 NIC embeds one). A transaction from port A to port B
 * serializes on A's egress link, crosses the switch (propagation
 * latency), then serializes on B's ingress link. Both serializers are
 * independent resources, so bidirectional traffic and multi-initiator
 * contention behave naturally.
 */
#ifndef FLD_PCIE_FABRIC_H
#define FLD_PCIE_FABRIC_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pcie/endpoint.h"
#include "pcie/tlp.h"
#include "sim/event_queue.h"
#include "sim/fault.h"

namespace fld::pcie {

using PortId = uint32_t;
constexpr PortId kInvalidPort = ~0u;

/** Per-port wire-byte counters (for utilization reporting). */
struct PortStats
{
    uint64_t egress_bytes = 0;  ///< device -> switch
    uint64_t ingress_bytes = 0; ///< switch -> device
    uint64_t reads = 0;
    uint64_t writes = 0;
};

class PcieFabric
{
  public:
    using OnWriteDone = std::function<void()>;
    using OnReadData = std::function<void(std::vector<uint8_t>)>;

    PcieFabric(sim::EventQueue& eq, TlpParams tlp = {})
        : eq_(eq), tlp_(tlp)
    {}

    /**
     * Create a port with a link of @p gbps per direction and one-way
     * propagation @p latency to the switch.
     */
    PortId add_port(std::string name, double gbps, sim::TimePs latency);

    /**
     * Map @p ep at fabric address range [base, base+size) reachable
     * through @p port. Ranges must not overlap.
     */
    void attach(PortId port, PcieEndpoint* ep, uint64_t base,
                uint64_t size);

    /**
     * Posted write from @p from to fabric address @p addr. The
     * optional callback fires when the data has been delivered into
     * the target endpoint (writes are posted: the initiator does not
     * wait, but callers may want delivery ordering hooks).
     */
    void write(PortId from, uint64_t addr, std::vector<uint8_t> data,
               OnWriteDone done = {});

    /** Split-completion read of @p len bytes at @p addr. */
    void read(PortId from, uint64_t addr, size_t len, OnReadData done);

    const TlpParams& tlp() const { return tlp_; }

    /**
     * Attach a fault plan. Fault behaviour follows tlp().faults:
     * read completions may be delayed or stalled, doorbell-sized
     * posted writes may be delivered with jitter. With a null plan or
     * all-zero knobs the fabric's timing is bit-identical to before.
     */
    void set_fault_plan(sim::FaultPlan* plan) { faults_ = plan; }
    const PortStats& stats(PortId port) const
    {
        return ports_[port]->stats;
    }
    sim::EventQueue& event_queue() { return eq_; }

  private:
    struct Port
    {
        std::string name;
        double gbps;
        sim::TimePs latency;
        sim::TimePs egress_busy_until = 0;
        sim::TimePs ingress_busy_until = 0;
        /// Fault mode only: completions to this requester are kept
        /// FIFO; a delayed completion drags later ones behind it.
        sim::TimePs cpl_order_floor = 0;
        PortStats stats;
    };
    struct Mapping
    {
        uint64_t base;
        uint64_t size;
        PortId port;
        PcieEndpoint* ep;
    };

    /**
     * Serialize @p wire_bytes on a direction serializer; returns the
     * time the last byte leaves the serializer.
     */
    sim::TimePs serialize(sim::TimePs earliest, sim::TimePs& busy_until,
                          double gbps, uint64_t wire_bytes);

    const Mapping& resolve(uint64_t addr) const;

    sim::EventQueue& eq_;
    TlpParams tlp_;
    sim::FaultPlan* faults_ = nullptr;
    std::vector<std::unique_ptr<Port>> ports_;
    std::vector<Mapping> map_;
};

} // namespace fld::pcie

#endif // FLD_PCIE_FABRIC_H
