#include "pcie/endpoint.h"

#include <algorithm>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define FLD_HAVE_MMAP 1
#include <sys/mman.h>
#endif

#include "util/logging.h"

namespace fld::pcie {

MemoryEndpoint::MemoryEndpoint(std::string name, size_t capacity)
    : name_(std::move(name)), capacity_(capacity)
{
#ifdef FLD_HAVE_MMAP
    // MAP_NORESERVE: reserve address space only; pages materialize
    // (kernel-zeroed) on first touch, so an endpoint costs what the
    // simulation actually writes, not its nominal capacity.
    void* p = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS
#ifdef MAP_NORESERVE
                         | MAP_NORESERVE
#endif
                     ,
                     -1, 0);
    if (p != MAP_FAILED)
        map_ = static_cast<uint8_t*>(p);
#endif
}

MemoryEndpoint::~MemoryEndpoint()
{
#ifdef FLD_HAVE_MMAP
    if (map_)
        ::munmap(map_, capacity_);
#endif
}

void
MemoryEndpoint::ensure(uint64_t end)
{
    if (end > capacity_)
        fatal("%s: access beyond capacity (%llu > %zu)", name_.c_str(),
              (unsigned long long)end, capacity_);
    if (map_)
        return; // the mapping already spans the full capacity
    if (end > mem_.size()) {
        // Fallback path: grow geometrically so arena bump allocators
        // touching steadily increasing offsets don't trigger a
        // realloc-and-copy of the whole backing store per touch.
        if (end > mem_.capacity()) {
            size_t want = std::max<size_t>(end, mem_.capacity() * 2);
            mem_.reserve(std::min(want, capacity_));
        }
        mem_.resize(end, 0);
    }
}

void
MemoryEndpoint::bar_write(uint64_t addr, const uint8_t* data, size_t len)
{
    ensure(addr + len);
    if (len > 0)
        std::memcpy((map_ ? map_ : mem_.data()) + addr, data, len);
    for (const auto& w : watches_) {
        if (addr < w.base + w.size && w.base < addr + len)
            w.fn(addr, len);
    }
}

void
MemoryEndpoint::add_watch(uint64_t base, size_t size, WriteWatch fn)
{
    watches_.push_back({base, size, std::move(fn)});
}

void
MemoryEndpoint::bar_read(uint64_t addr, uint8_t* out, size_t len)
{
    ensure(addr + len);
    if (len > 0)
        std::memcpy(out, (map_ ? map_ : mem_.data()) + addr, len);
}

uint8_t*
MemoryEndpoint::raw(uint64_t addr, size_t len)
{
    ensure(addr + len);
    return (map_ ? map_ : mem_.data()) + addr;
}

} // namespace fld::pcie
