#include "pcie/endpoint.h"

#include <cstring>

#include "util/logging.h"

namespace fld::pcie {

void
MemoryEndpoint::ensure(uint64_t end)
{
    if (end > capacity_)
        fatal("%s: access beyond capacity (%llu > %zu)", name_.c_str(),
              (unsigned long long)end, capacity_);
    if (end > mem_.size())
        mem_.resize(end, 0);
}

void
MemoryEndpoint::bar_write(uint64_t addr, const uint8_t* data, size_t len)
{
    ensure(addr + len);
    if (len > 0)
        std::memcpy(mem_.data() + addr, data, len);
    for (const auto& w : watches_) {
        if (addr < w.base + w.size && w.base < addr + len)
            w.fn(addr, len);
    }
}

void
MemoryEndpoint::add_watch(uint64_t base, size_t size, WriteWatch fn)
{
    watches_.push_back({base, size, std::move(fn)});
}

void
MemoryEndpoint::bar_read(uint64_t addr, uint8_t* out, size_t len)
{
    ensure(addr + len);
    if (len > 0)
        std::memcpy(out, mem_.data() + addr, len);
}

uint8_t*
MemoryEndpoint::raw(uint64_t addr, size_t len)
{
    ensure(addr + len);
    return mem_.data() + addr;
}

} // namespace fld::pcie
