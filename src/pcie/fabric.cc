#include "pcie/fabric.h"

#include <algorithm>

#include "sim/trace.h"
#include "util/logging.h"

namespace fld::pcie {

PortId
PcieFabric::add_port(std::string name, double gbps, sim::TimePs latency)
{
    auto port = std::make_unique<Port>();
    port->name = std::move(name);
    port->gbps = gbps;
    port->latency = latency;
    ports_.push_back(std::move(port));
    return PortId(ports_.size() - 1);
}

void
PcieFabric::attach(PortId port, PcieEndpoint* ep, uint64_t base,
                   uint64_t size)
{
    if (port >= ports_.size())
        fatal("attach: bad port %u", port);
    for (const auto& m : map_) {
        if (base < m.base + m.size && m.base < base + size)
            fatal("attach: overlapping BAR ranges");
    }
    map_.push_back({base, size, port, ep});
}

const PcieFabric::Mapping&
PcieFabric::resolve(uint64_t addr) const
{
    for (const auto& m : map_) {
        if (addr >= m.base && addr < m.base + m.size)
            return m;
    }
    panic("PCIe fabric: no endpoint at address 0x%llx",
          (unsigned long long)addr);
}

sim::TimePs
PcieFabric::serialize(sim::TimePs earliest, sim::TimePs& busy_until,
                      double gbps, uint64_t wire_bytes)
{
    sim::TimePs start = std::max(earliest, busy_until);
    busy_until = start + sim::serialize_time(wire_bytes, gbps);
    return busy_until;
}

void
PcieFabric::write(PortId from, uint64_t addr, std::vector<uint8_t> data,
                  OnWriteDone done)
{
    const Mapping& m = resolve(addr);
    Port& src = *ports_[from];
    Port& dst = *ports_[m.port];

    uint64_t wire = tlp_.write_wire_bytes(data.size());
    src.stats.egress_bytes += wire;
    src.stats.writes++;
    dst.stats.ingress_bytes += wire;

    sim::TimePs now = eq_.now();
    // Same-port traffic (e.g. NIC's integrated paths) still pays
    // serialization once.
    sim::TimePs sent = serialize(now, src.egress_busy_until, src.gbps,
                                 wire);
    sim::TimePs at_switch = sent + src.latency;
    sim::TimePs delivered;
    if (&src == &dst) {
        delivered = at_switch;
    } else {
        delivered = serialize(at_switch, dst.ingress_busy_until,
                              dst.gbps, wire) + dst.latency;
    }

    // Fault injection: MMIO-sized posted writes (doorbells) may be
    // delivered late. Ordering within the port is preserved by the
    // event queue only for equal timestamps, so jitter can reorder a
    // doorbell behind a later one — exactly the hazard drivers must
    // tolerate (producer indices are cumulative, so a stale doorbell
    // is harmless).
    if (faults_) {
        sim::TimePs jitter =
            faults_->next_doorbell_jitter(tlp_.faults, data.size());
        if (jitter > 0) {
            if (auto* tr = sim::Tracer::active())
                tr->emit(eq_.now(), sim::TraceEventKind::FaultInject,
                         src.name, "db_jitter", 0, uint32_t(from), 0, 1,
                         data.size());
        }
        delivered += jitter;
    }

    uint64_t bar_off = addr - m.base;
    PcieEndpoint* ep = m.ep;
    eq_.schedule_at(delivered,
                    [ep, bar_off, data = std::move(data),
                     done = std::move(done)]() mutable {
                        ep->bar_write(bar_off, data.data(), data.size());
                        if (done)
                            done();
                    });
}

void
PcieFabric::read(PortId from, uint64_t addr, size_t len, OnReadData done)
{
    const Mapping& m = resolve(addr);
    Port& src = *ports_[from];
    Port& dst = *ports_[m.port];

    uint64_t req_wire = tlp_.read_req_wire_bytes(len);
    uint64_t cpl_wire = tlp_.read_cpl_wire_bytes(len);
    src.stats.egress_bytes += req_wire;
    src.stats.ingress_bytes += cpl_wire;
    src.stats.reads++;
    dst.stats.ingress_bytes += req_wire;
    dst.stats.egress_bytes += cpl_wire;

    sim::TimePs now = eq_.now();
    // Request: src egress -> dst ingress.
    sim::TimePs sent = serialize(now, src.egress_busy_until, src.gbps,
                                 req_wire);
    sim::TimePs at_dst;
    if (&src == &dst) {
        at_dst = sent + src.latency;
    } else {
        at_dst = serialize(sent + src.latency, dst.ingress_busy_until,
                           dst.gbps, req_wire) + dst.latency;
    }

    uint64_t bar_off = addr - m.base;
    PcieEndpoint* ep = m.ep;
    Port* srcp = &src;
    Port* dstp = &dst;
    eq_.schedule_at(at_dst, [this, ep, bar_off, len, srcp, dstp,
                             done = std::move(done)]() mutable {
        // Functional read happens once the request arrives, after the
        // endpoint's internal processing delay.
        sim::TimePs ready = eq_.now() + ep->read_processing_ps();
        eq_.schedule_at(ready, [this, ep, bar_off, len, srcp, dstp,
                                done = std::move(done)]() mutable {
            std::vector<uint8_t> data(len);
            ep->bar_read(bar_off, data.data(), len);

            uint64_t cpl_wire = tlp_.read_cpl_wire_bytes(len);
            // Completion: dst egress -> src ingress.
            sim::TimePs sent_cpl =
                serialize(eq_.now(), dstp->egress_busy_until, dstp->gbps,
                          cpl_wire);
            sim::TimePs delivered;
            if (srcp == dstp) {
                delivered = sent_cpl + dstp->latency;
            } else {
                delivered = serialize(sent_cpl + dstp->latency,
                                      srcp->ingress_busy_until,
                                      srcp->gbps, cpl_wire) +
                            srcp->latency;
            }
            // Fault injection: the completion may be delayed (switch
            // congestion) or stalled outright (retried TLP). The data
            // is unchanged — PCIe completions are reliable — only
            // late. Completions to one requester stay FIFO (a stalled
            // TLP head-of-line blocks the ones behind it), preserving
            // the in-order delivery the NIC's pipelined descriptor
            // DMA depends on.
            if (faults_ && (tlp_.faults.read_delay_prob > 0 ||
                            tlp_.faults.read_stall_prob > 0)) {
                sim::TimePs delay =
                    faults_->next_read_completion_delay(tlp_.faults);
                if (delay > 0) {
                    if (auto* tr = sim::Tracer::active())
                        tr->emit(eq_.now(),
                                 sim::TraceEventKind::FaultInject,
                                 dstp->name, "cpl_delay", 0, 0, 0, 1,
                                 len);
                }
                delivered += delay;
                delivered =
                    std::max(delivered, srcp->cpl_order_floor);
                srcp->cpl_order_floor = delivered;
            }
            eq_.schedule_at(delivered,
                            [data = std::move(data),
                             done = std::move(done)]() mutable {
                                done(std::move(data));
                            });
        });
    });
}

} // namespace fld::pcie
