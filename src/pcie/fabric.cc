#include "pcie/fabric.h"

#include <algorithm>

#include "sim/trace.h"
#include "util/logging.h"

namespace fld::pcie {

PortId
PcieFabric::add_port(std::string name, double gbps, sim::TimePs latency)
{
    auto port = std::make_unique<Port>();
    port->name = std::move(name);
    port->gbps = gbps;
    port->latency = latency;
    ports_.push_back(std::move(port));
    return PortId(ports_.size() - 1);
}

void
PcieFabric::attach(PortId port, PcieEndpoint* ep, uint64_t base,
                   uint64_t size)
{
    if (port >= ports_.size())
        fatal("attach: bad port %u", port);
    for (const auto& m : map_) {
        if (base < m.base + m.size && m.base < base + size)
            fatal("attach: overlapping BAR ranges");
    }
    map_.push_back({base, size, port, ep});
}

const PcieFabric::Mapping&
PcieFabric::resolve(uint64_t addr) const
{
    for (const auto& m : map_) {
        if (addr >= m.base && addr < m.base + m.size)
            return m;
    }
    panic("PCIe fabric: no endpoint at address 0x%llx",
          (unsigned long long)addr);
}

sim::TimePs
PcieFabric::serialize(sim::TimePs earliest, sim::TimePs& busy_until,
                      double gbps, uint64_t wire_bytes)
{
    sim::TimePs start = std::max(earliest, busy_until);
    busy_until = start + sim::serialize_time(wire_bytes, gbps);
    return busy_until;
}

void
PcieFabric::write(PortId from, uint64_t addr, std::vector<uint8_t> data,
                  OnWriteDone done)
{
    uint32_t idx = acquire_write_op();
    WriteOp& op = write_ops_[idx];
    op.data = std::move(data);
    op.done = std::move(done);
    post_write(from, addr, idx);
}

void
PcieFabric::write(PortId from, uint64_t addr, const void* data,
                  size_t len, OnWriteDone done)
{
    uint32_t idx = acquire_write_op();
    WriteOp& op = write_ops_[idx];
    const uint8_t* p = static_cast<const uint8_t*>(data);
    op.data.assign(p, p + len);
    op.done = std::move(done);
    post_write(from, addr, idx);
}

void
PcieFabric::post_write(PortId from, uint64_t addr, uint32_t idx)
{
    const Mapping& m = resolve(addr);
    Port& src = *ports_[from];
    Port& dst = *ports_[m.port];
    WriteOp& op = write_ops_[idx];
    op.ep = m.ep;
    op.bar_off = addr - m.base;

    uint64_t wire = tlp_.write_wire_bytes(op.data.size());
    src.stats.egress_bytes += wire;
    src.stats.writes++;
    dst.stats.ingress_bytes += wire;

    sim::TimePs now = eq_.now();
    // Same-port traffic (e.g. NIC's integrated paths) still pays
    // serialization once.
    sim::TimePs sent = serialize(now, src.egress_busy_until, src.gbps,
                                 wire);
    sim::TimePs at_switch = sent + src.latency;
    sim::TimePs delivered;
    if (&src == &dst) {
        delivered = at_switch;
    } else {
        delivered = serialize(at_switch, dst.ingress_busy_until,
                              dst.gbps, wire) + dst.latency;
    }

    // Fault injection: MMIO-sized posted writes (doorbells) may be
    // delivered late. Ordering within the port is preserved by the
    // event queue only for equal timestamps, so jitter can reorder a
    // doorbell behind a later one — exactly the hazard drivers must
    // tolerate (producer indices are cumulative, so a stale doorbell
    // is harmless).
    if (faults_) {
        sim::TimePs jitter =
            faults_->next_doorbell_jitter(tlp_.faults, op.data.size());
        if (jitter > 0) {
            if (auto* tr = sim::Tracer::active())
                tr->emit(eq_.now(), sim::TraceEventKind::FaultInject,
                         src.name, "db_jitter", 0, uint32_t(from), 0, 1,
                         op.data.size());
        }
        delivered += jitter;
    }

    eq_.schedule_at(delivered, [this, idx] { deliver_write(idx); });
}

void
PcieFabric::deliver_write(uint32_t idx)
{
    WriteOp& op = write_ops_[idx];
    op.ep->bar_write(op.bar_off, op.data.data(), op.data.size());
    OnWriteDone done = std::move(op.done);
    // Release before invoking: the handler may start new transactions,
    // and the freed op lets them reuse this slot.
    release_write_op(idx);
    if (done)
        done();
}

void
PcieFabric::read(PortId from, uint64_t addr, size_t len, OnReadData done)
{
    const Mapping& m = resolve(addr);
    Port& src = *ports_[from];
    Port& dst = *ports_[m.port];

    uint64_t req_wire = tlp_.read_req_wire_bytes(len);
    uint64_t cpl_wire = tlp_.read_cpl_wire_bytes(len);
    src.stats.egress_bytes += req_wire;
    src.stats.ingress_bytes += cpl_wire;
    src.stats.reads++;
    dst.stats.ingress_bytes += req_wire;
    dst.stats.egress_bytes += cpl_wire;

    sim::TimePs now = eq_.now();
    // Request: src egress -> dst ingress.
    sim::TimePs sent = serialize(now, src.egress_busy_until, src.gbps,
                                 req_wire);
    sim::TimePs at_dst;
    if (&src == &dst) {
        at_dst = sent + src.latency;
    } else {
        at_dst = serialize(sent + src.latency, dst.ingress_busy_until,
                           dst.gbps, req_wire) + dst.latency;
    }

    uint32_t idx = acquire_read_op();
    ReadOp& op = read_ops_[idx];
    op.ep = m.ep;
    op.bar_off = addr - m.base;
    op.len = len;
    op.src = &src;
    op.dst = &dst;
    op.done = std::move(done);
    eq_.schedule_at(at_dst,
                    [this, idx] { read_request_arrived(idx); });
}

void
PcieFabric::read_request_arrived(uint32_t idx)
{
    // Functional read happens once the request arrives, after the
    // endpoint's internal processing delay.
    ReadOp& op = read_ops_[idx];
    sim::TimePs ready = eq_.now() + op.ep->read_processing_ps();
    eq_.schedule_at(ready, [this, idx] { read_data_ready(idx); });
}

void
PcieFabric::read_data_ready(uint32_t idx)
{
    ReadOp& op = read_ops_[idx];
    op.data.assign(op.len, 0);
    op.ep->bar_read(op.bar_off, op.data.data(), op.len);

    Port* srcp = op.src;
    Port* dstp = op.dst;
    uint64_t cpl_wire = tlp_.read_cpl_wire_bytes(op.len);
    // Completion: dst egress -> src ingress.
    sim::TimePs sent_cpl = serialize(eq_.now(), dstp->egress_busy_until,
                                     dstp->gbps, cpl_wire);
    sim::TimePs delivered;
    if (srcp == dstp) {
        delivered = sent_cpl + dstp->latency;
    } else {
        delivered = serialize(sent_cpl + dstp->latency,
                              srcp->ingress_busy_until, srcp->gbps,
                              cpl_wire) +
                    srcp->latency;
    }
    // Fault injection: the completion may be delayed (switch
    // congestion) or stalled outright (retried TLP). The data
    // is unchanged — PCIe completions are reliable — only
    // late. Completions to one requester stay FIFO (a stalled
    // TLP head-of-line blocks the ones behind it), preserving
    // the in-order delivery the NIC's pipelined descriptor
    // DMA depends on.
    if (faults_ && (tlp_.faults.read_delay_prob > 0 ||
                    tlp_.faults.read_stall_prob > 0)) {
        sim::TimePs delay =
            faults_->next_read_completion_delay(tlp_.faults);
        if (delay > 0) {
            if (auto* tr = sim::Tracer::active())
                tr->emit(eq_.now(), sim::TraceEventKind::FaultInject,
                         dstp->name, "cpl_delay", 0, 0, 0, 1, op.len);
        }
        delivered += delay;
        delivered = std::max(delivered, srcp->cpl_order_floor);
        srcp->cpl_order_floor = delivered;
    }
    eq_.schedule_at(delivered, [this, idx] {
        ReadOp& fin = read_ops_[idx];
        OnReadData done = std::move(fin.done);
        std::vector<uint8_t> data = std::move(fin.data);
        // Release before invoking (the handler may start new reads).
        release_read_op(idx);
        done(std::move(data));
    });
}

uint32_t
PcieFabric::acquire_read_op()
{
    if (read_free_ == kFreeListEnd) {
        read_ops_.emplace_back();
        return uint32_t(read_ops_.size() - 1);
    }
    uint32_t idx = read_free_;
    read_free_ = read_ops_[idx].next_free;
    return idx;
}

void
PcieFabric::release_read_op(uint32_t idx)
{
    ReadOp& op = read_ops_[idx];
    op.ep = nullptr;
    op.next_free = read_free_;
    read_free_ = idx;
}

uint32_t
PcieFabric::acquire_write_op()
{
    if (write_free_ == kFreeListEnd) {
        write_ops_.emplace_back();
        return uint32_t(write_ops_.size() - 1);
    }
    uint32_t idx = write_free_;
    write_free_ = write_ops_[idx].next_free;
    return idx;
}

void
PcieFabric::release_write_op(uint32_t idx)
{
    WriteOp& op = write_ops_[idx];
    op.ep = nullptr;
    op.data.clear();
    op.next_free = write_free_;
    write_free_ = idx;
}

} // namespace fld::pcie
