/**
 * @file
 * PCIe endpoint interface and a plain memory endpoint.
 *
 * Endpoints expose BAR address space. Functional semantics are
 * synchronous (the fabric calls bar_read/bar_write once timing says
 * the TLPs have arrived); all timing lives in the fabric.
 */
#ifndef FLD_PCIE_ENDPOINT_H
#define FLD_PCIE_ENDPOINT_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fld::pcie {

/** A device mapped into the fabric's address space. */
class PcieEndpoint
{
  public:
    virtual ~PcieEndpoint() = default;

    /** Handle a memory write of @p len bytes at BAR-relative @p addr. */
    virtual void bar_write(uint64_t addr, const uint8_t* data,
                           size_t len) = 0;

    /** Handle a memory read; fill @p out with @p len bytes. */
    virtual void bar_read(uint64_t addr, uint8_t* out, size_t len) = 0;

    /** Human-readable name for diagnostics. */
    virtual std::string ep_name() const { return "endpoint"; }

    /**
     * Internal processing delay (ps) before a read completion can be
     * produced. FLD's on-the-fly descriptor generation, for example,
     * takes a few FPGA cycles.
     */
    virtual uint64_t read_processing_ps() const { return 0; }
};

/**
 * Flat RAM endpoint (host DRAM in the model). Reads of untouched
 * memory return zeros.
 *
 * Storage is a lazily-faulted anonymous mapping of the full capacity
 * (with a demand-grown std::vector fallback off POSIX): reserving
 * 256 MB of virtual space is free, the kernel zero-fills only the
 * pages actually touched, and ensure() is a pure bounds check. With
 * eager vector growth, a single write near the top of a driver arena
 * used to zero-fill tens of MB per testbed — the dominant cost of
 * multi-hundred-seed fuzz sweeps.
 */
class MemoryEndpoint : public PcieEndpoint
{
  public:
    explicit MemoryEndpoint(std::string name, size_t capacity);
    ~MemoryEndpoint() override;

    MemoryEndpoint(const MemoryEndpoint&) = delete;
    MemoryEndpoint& operator=(const MemoryEndpoint&) = delete;

    void bar_write(uint64_t addr, const uint8_t* data,
                   size_t len) override;
    void bar_read(uint64_t addr, uint8_t* out, size_t len) override;
    std::string ep_name() const override { return name_; }

    size_t capacity() const { return capacity_; }

    /** Direct (zero-time) access for software models running "on" it. */
    uint8_t* raw(uint64_t addr, size_t len);

    /**
     * Watch a range for DMA writes. Models a polling consumer (or
     * DDIO-delivered completion) without simulating each poll read:
     * the callback fires after the write lands. CPU cost of handling
     * it is accounted by the host model, not here.
     */
    using WriteWatch = std::function<void(uint64_t addr, size_t len)>;
    void add_watch(uint64_t base, size_t size, WriteWatch fn);

  private:
    void ensure(uint64_t end);

    struct Watch
    {
        uint64_t base;
        size_t size;
        WriteWatch fn;
    };

    std::string name_;
    size_t capacity_;
    uint8_t* map_ = nullptr;    ///< mmap-backed storage (POSIX)
    std::vector<uint8_t> mem_;  ///< fallback storage when map_ == null
    std::vector<Watch> watches_;
};

} // namespace fld::pcie

#endif // FLD_PCIE_ENDPOINT_H
