/**
 * @file
 * Transaction-layer-packet (TLP) accounting.
 *
 * FLD's whole performance story is PCIe per-packet overhead (§8.1's
 * performance model): every descriptor read, payload DMA, completion
 * write and doorbell costs TLP headers on the wire. These helpers
 * compute the exact on-wire byte cost of a transaction, shared by the
 * event-driven fabric and the analytical model (Figure 7a).
 */
#ifndef FLD_PCIE_TLP_H
#define FLD_PCIE_TLP_H

#include <cstdint>

#include "sim/fault.h"
#include "util/bitops.h"

namespace fld::pcie {

/**
 * PCIe link/TLP parameters.
 *
 * Defaults approximate PCIe Gen3 x8 as measured by Neugebauer et al.
 * (SIGCOMM'18): ~24 B of framing+header+LCRC per TLP with payload,
 * 256 B max payload size, 512 B max read request.
 */
struct TlpParams
{
    uint32_t mps = 256;       ///< max payload size per TLP (bytes)
    uint32_t mrrs = 512;      ///< max read request size (bytes)
    uint32_t hdr = 24;        ///< per-TLP overhead incl. framing (bytes)
    uint32_t read_req = 24;   ///< memory-read request TLP size (bytes)

    /** Opt-in fabric fault knobs (all-zero defaults = perfect fabric);
     *  active only when a sim::FaultPlan is attached to the fabric. */
    sim::PcieFaultConfig faults;

    /** Number of TLPs needed to write @p len bytes. */
    uint32_t write_tlps(uint64_t len) const
    {
        return len == 0 ? 1 : uint32_t(ceil_div<uint64_t>(len, mps));
    }

    /** Total wire bytes for a posted write of @p len bytes. */
    uint64_t write_wire_bytes(uint64_t len) const
    {
        return len + uint64_t(write_tlps(len)) * hdr;
    }

    /** Number of read-request TLPs to fetch @p len bytes. */
    uint32_t read_req_tlps(uint64_t len) const
    {
        return len == 0 ? 1 : uint32_t(ceil_div<uint64_t>(len, mrrs));
    }

    /** Wire bytes of the request(s) for a read of @p len bytes. */
    uint64_t read_req_wire_bytes(uint64_t len) const
    {
        return uint64_t(read_req_tlps(len)) * read_req;
    }

    /** Wire bytes of the completion(s) returning @p len bytes. */
    uint64_t read_cpl_wire_bytes(uint64_t len) const
    {
        return write_wire_bytes(len); // completions segment like writes
    }
};

} // namespace fld::pcie

#endif // FLD_PCIE_TLP_H
