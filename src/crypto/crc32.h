/**
 * @file
 * CRC-32 (IEEE 802.3) used for Ethernet frame check sequences.
 */
#ifndef FLD_CRYPTO_CRC32_H
#define FLD_CRYPTO_CRC32_H

#include <cstdint>
#include <cstddef>

namespace fld::crypto {

/** CRC-32/ISO-HDLC: reflected 0x04C11DB7, init/xorout 0xFFFFFFFF. */
uint32_t crc32(const uint8_t* data, size_t len);

/** Incremental form: feed @p crc from a previous call (start with 0). */
uint32_t crc32_update(uint32_t crc, const uint8_t* data, size_t len);

} // namespace fld::crypto

#endif // FLD_CRYPTO_CRC32_H
