#include "crypto/crc32.h"

namespace fld::crypto {

namespace {
struct Crc32Table
{
    uint32_t t[256];
    Crc32Table()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};
const Crc32Table kTable;
} // namespace

uint32_t
crc32_update(uint32_t crc, const uint8_t* data, size_t len)
{
    crc = ~crc;
    for (size_t i = 0; i < len; ++i)
        crc = kTable.t[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
}

uint32_t
crc32(const uint8_t* data, size_t len)
{
    return crc32_update(0, data, len);
}

} // namespace fld::crypto
