/**
 * @file
 * SHA-256 (FIPS 180-4) and HMAC-SHA256 (RFC 2104).
 *
 * Used by the IoT token-authentication accelerator (§7) to validate
 * JSON-Web-Token HMAC-SHA256 signatures, and by its CPU baseline.
 */
#ifndef FLD_CRYPTO_SHA256_H
#define FLD_CRYPTO_SHA256_H

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace fld::crypto {

using Sha256Digest = std::array<uint8_t, 32>;

/** Incremental SHA-256 context. */
class Sha256
{
  public:
    Sha256() { reset(); }

    void reset();
    void update(const uint8_t* data, size_t len);
    void update(const std::string& s)
    {
        update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
    }

    /** Finish and return the digest; the context must be reset after. */
    Sha256Digest finish();

    /** One-shot convenience. */
    static Sha256Digest digest(const uint8_t* data, size_t len);
    static Sha256Digest digest(const std::string& s)
    {
        return digest(reinterpret_cast<const uint8_t*>(s.data()),
                      s.size());
    }

  private:
    void compress(const uint8_t block[64]);

    uint32_t h_[8];
    uint8_t buf_[64];
    size_t buf_len_ = 0;
    uint64_t total_len_ = 0;
};

/** HMAC-SHA256 of @p data under @p key. */
Sha256Digest hmac_sha256(const uint8_t* key, size_t key_len,
                         const uint8_t* data, size_t data_len);

inline Sha256Digest
hmac_sha256(const std::string& key, const std::string& data)
{
    return hmac_sha256(reinterpret_cast<const uint8_t*>(key.data()),
                       key.size(),
                       reinterpret_cast<const uint8_t*>(data.data()),
                       data.size());
}

/** Constant-time digest comparison. */
bool digest_equal(const Sha256Digest& a, const Sha256Digest& b);

} // namespace fld::crypto

#endif // FLD_CRYPTO_SHA256_H
