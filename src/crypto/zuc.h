/**
 * @file
 * ZUC stream cipher and the LTE algorithms built on it.
 *
 * Implements the ZUC keystream generator and the 3GPP confidentiality
 * and integrity algorithms 128-EEA3 and 128-EIA3 (ETSI/SAGE
 * specification v1.6). This is the workload of the paper's
 * disaggregated LTE cipher accelerator (§7) and its CPU baseline.
 */
#ifndef FLD_CRYPTO_ZUC_H
#define FLD_CRYPTO_ZUC_H

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace fld::crypto {

/** ZUC keystream generator (LFSR + bit reorganization + nonlinear F). */
class Zuc
{
  public:
    using Key = std::array<uint8_t, 16>;
    using Iv = std::array<uint8_t, 16>;

    Zuc(const Key& key, const Iv& iv) { init(key, iv); }

    /** (Re-)initialize with a key/IV pair; runs the 32 warmup rounds. */
    void init(const Key& key, const Iv& iv);

    /** Produce the next 32-bit keystream word. */
    uint32_t next();

    /** Produce @p n consecutive keystream words. */
    std::vector<uint32_t> generate(size_t n);

  private:
    uint32_t lfsr_[16]; // 31-bit cells
    uint32_t r1_ = 0;
    uint32_t r2_ = 0;
    uint32_t x_[4]; // bit-reorganization output

    void bit_reorganization();
    uint32_t f();
    void lfsr_with_initialization(uint32_t u);
    void lfsr_with_work_mode();
};

/**
 * 128-EEA3 confidentiality: encrypt/decrypt @p length_bits of @p data
 * in place. Encryption and decryption are the same operation.
 *
 * @param count     32-bit counter.
 * @param bearer    5-bit bearer identity.
 * @param direction 1-bit direction (0 = uplink, 1 = downlink).
 */
void eea3_crypt(const Zuc::Key& key, uint32_t count, uint8_t bearer,
                uint8_t direction, uint8_t* data, size_t length_bits);

/**
 * 128-EIA3 integrity: compute the 32-bit MAC over @p length_bits of
 * @p data.
 */
uint32_t eia3_mac(const Zuc::Key& key, uint32_t count, uint8_t bearer,
                  uint8_t direction, const uint8_t* data,
                  size_t length_bits);

} // namespace fld::crypto

#endif // FLD_CRYPTO_ZUC_H
