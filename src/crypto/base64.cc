#include "crypto/base64.h"

#include <array>

namespace fld::crypto {

namespace {
const char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

struct ReverseTable
{
    std::array<int8_t, 256> t;
    ReverseTable()
    {
        t.fill(-1);
        for (int i = 0; i < 64; ++i)
            t[uint8_t(kAlphabet[i])] = int8_t(i);
    }
};
const ReverseTable kReverse;
} // namespace

std::string
base64url_encode(const uint8_t* data, size_t len)
{
    std::string out;
    out.reserve((len + 2) / 3 * 4);
    size_t i = 0;
    for (; i + 3 <= len; i += 3) {
        uint32_t v = uint32_t(data[i]) << 16 | uint32_t(data[i + 1]) << 8 |
                     uint32_t(data[i + 2]);
        out.push_back(kAlphabet[(v >> 18) & 63]);
        out.push_back(kAlphabet[(v >> 12) & 63]);
        out.push_back(kAlphabet[(v >> 6) & 63]);
        out.push_back(kAlphabet[v & 63]);
    }
    size_t rem = len - i;
    if (rem == 1) {
        uint32_t v = uint32_t(data[i]) << 16;
        out.push_back(kAlphabet[(v >> 18) & 63]);
        out.push_back(kAlphabet[(v >> 12) & 63]);
    } else if (rem == 2) {
        uint32_t v = uint32_t(data[i]) << 16 | uint32_t(data[i + 1]) << 8;
        out.push_back(kAlphabet[(v >> 18) & 63]);
        out.push_back(kAlphabet[(v >> 12) & 63]);
        out.push_back(kAlphabet[(v >> 6) & 63]);
    }
    return out;
}

std::optional<std::vector<uint8_t>>
base64url_decode(const std::string& s)
{
    size_t rem = s.size() % 4;
    if (rem == 1)
        return std::nullopt; // impossible length

    std::vector<uint8_t> out;
    out.reserve(s.size() / 4 * 3 + 2);
    uint32_t acc = 0;
    int bits = 0;
    for (char c : s) {
        int8_t v = kReverse.t[uint8_t(c)];
        if (v < 0)
            return std::nullopt;
        acc = acc << 6 | uint32_t(v);
        bits += 6;
        if (bits >= 8) {
            bits -= 8;
            out.push_back(uint8_t(acc >> bits));
        }
    }
    return out;
}

} // namespace fld::crypto
