/**
 * @file
 * Base64url (RFC 4648 §5, unpadded) encoding as used by JSON Web Tokens.
 */
#ifndef FLD_CRYPTO_BASE64_H
#define FLD_CRYPTO_BASE64_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fld::crypto {

/** Encode bytes as unpadded base64url. */
std::string base64url_encode(const uint8_t* data, size_t len);

inline std::string
base64url_encode(const std::string& s)
{
    return base64url_encode(reinterpret_cast<const uint8_t*>(s.data()),
                            s.size());
}

/** Decode unpadded base64url; nullopt on invalid input. */
std::optional<std::vector<uint8_t>> base64url_decode(const std::string& s);

} // namespace fld::crypto

#endif // FLD_CRYPTO_BASE64_H
