/**
 * @file
 * Software network stack models (kernel TCP/IP path).
 *
 * The receive side is used by the IP-defragmentation experiment
 * (§8.2.2) as the CPU baseline: when the NIC cannot validate L4
 * checksums (fragments) the stack pays a per-byte software checksum,
 * and when software defragmentation is enabled it pays reassembly
 * costs — all on the core RSS chose, which for fragments is a single
 * core.
 *
 * The send side models the kernel transmit path a CPU-driven
 * application depends on and an FLD-attached accelerator must
 * re-implement: ARP resolution (queue until the next hop answers),
 * TCP segmentation at the MSS, and a go-back-N retransmission timer.
 */
#ifndef FLD_DRIVER_SW_STACK_H
#define FLD_DRIVER_SW_STACK_H

#include <cstdint>
#include <functional>

#include "driver/cpu_driver.h"
#include "driver/fastpath.h"
#include "driver/host.h"
#include "net/headers.h"
#include "net/ip_reassembly.h"
#include "sim/stats.h"

namespace fld::driver {

struct SwStackConfig
{
    /** Kernel per-packet processing (softirq + TCP). Calibrated so 16
     *  cores comfortably sustain 25 Gbps of MTU packets while one
     *  core alone bottlenecks near the paper's 3.2 Gbps on the
     *  fragmented path. */
    sim::TimePs per_packet_cost = sim::nanoseconds(600);

    /** Software checksum cost per byte when the NIC offload verdict
     *  is unavailable (fragments). ~0.4 ns/B on the modeled cores. */
    sim::TimePs csum_per_byte = 550; // ps

    /** Reassembly bookkeeping per fragment. */
    sim::TimePs defrag_per_packet = sim::nanoseconds(380);

    /** Run software defragmentation (the non-offloaded baseline). */
    bool software_defrag = true;
};

/**
 * Attaches to a CpuDriver and plays the role of the kernel receive
 * path: costs CPU per packet, reassembles fragments in software when
 * configured, and meters application-level goodput (L4 payload bytes
 * of complete datagrams).
 */
class SoftwareReceiveStack
{
  public:
    SoftwareReceiveStack(sim::EventQueue& eq, HostNode& host,
                         CpuDriver& driver, SwStackConfig cfg = {});

    uint64_t delivered_payload_bytes() const { return delivered_; }
    uint64_t delivered_packets() const { return packets_; }
    uint64_t dropped_fragments() const { return dropped_; }
    const sim::RateMeter& meter() const { return meter_; }

  private:
    void on_packet(uint32_t queue, net::Packet&& pkt);
    void account(uint32_t queue, const net::Packet& pkt);

    sim::EventQueue& eq_;
    HostNode& host_;
    CpuDriver& driver_;
    SwStackConfig cfg_;
    net::IpReassembler reasm_{4096};
    uint64_t delivered_ = 0;
    uint64_t packets_ = 0;
    uint64_t dropped_ = 0;
    sim::RateMeter meter_;
};

// ---------------------------------------------------------------------
// Send side
// ---------------------------------------------------------------------

struct SendStackConfig
{
    net::MacAddr src_mac{0x02, 0, 0, 0, 0, 0x51};
    uint32_t src_ip = net::ipv4_addr(192, 168, 1, 2);
    uint32_t dst_ip = net::ipv4_addr(192, 168, 1, 1);
    uint16_t sport = 40000;
    uint16_t dport = 5001;

    /** TCP payload bytes per segment. */
    uint32_t mss = 1460;
    /** Go-back-N send window, in unacknowledged segments. */
    uint32_t window_segments = 8;
    /** Retransmission timeout. */
    sim::TimePs rto = sim::microseconds(200);
    /** Give up (and count a reset) after this many back-to-back
     *  timeouts with no forward progress. */
    uint32_t max_retries = 8;
};

/**
 * Single-connection kernel send path: stream bytes in, Ethernet
 * frames out through a caller-supplied transmit hook.
 *
 * Since the per-flow fast path landed this is a thin compatibility
 * wrapper over driver::FastPath with one pre-established legacy
 * connection — same frame bytes, same counters, same timer
 * semantics as the original single-connection stack:
 *
 * - ARP: frames to an unresolved next hop are queued while a request
 *   is broadcast; the reply releases them. Replies also refresh the
 *   cache unprompted (gratuitous ARP).
 * - Segmentation: send() slices the stream at MSS boundaries; the
 *   final short segment carries PSH.
 * - Reliability: go-back-N with a per-connection timer; a generation
 *   counter voids timers armed before the latest ACK, so a stale
 *   callback never retransmits acknowledged data.
 */
class SoftwareSendStack
{
  public:
    using TxFn = std::function<void(net::Packet&&)>;

    SoftwareSendStack(sim::EventQueue& eq, TxFn tx,
                      SendStackConfig cfg = {});

    /** Stream bytes to the peer; returns bytes accepted (all). */
    size_t send(const uint8_t* data, size_t len);
    size_t send(const std::vector<uint8_t>& data)
    {
        return send(data.data(), data.size());
    }

    /** Feed a received frame: ARP replies and TCP ACKs. */
    void on_rx(const net::Packet& pkt);

    /** Pre-seed the ARP cache (static neighbor entry). */
    void add_arp_entry(uint32_t ip, const net::MacAddr& mac);
    bool resolved(uint32_t ip) const { return fp_.resolved(ip); }

    /** The underlying fast path (shared with no one: one legacy
     *  connection, ring-less). */
    FastPath& fastpath() { return fp_; }

    // Introspection for tests and stats.
    uint32_t snd_una() const { return c_->snd_una(); }
    uint32_t snd_nxt() const { return c_->snd_nxt(); }
    uint64_t segments_sent() const { return c_->segments_sent(); }
    uint64_t retransmits() const { return c_->retransmits(); }
    uint64_t arp_requests() const { return fp_.stats().arp_requests; }
    uint64_t resets() const { return c_->resets(); }
    size_t unacked_segments() const { return c_->unacked_segments(); }
    size_t backlog_segments() const { return c_->backlog_segments(); }
    bool timer_armed() const { return c_->timer_armed(); }

  private:
    static FastPathConfig fp_config(const SendStackConfig& cfg);

    FastPath fp_;
    uint32_t conn_id_ = FastPath::kNoConn;
    const Connection* c_ = nullptr;
};

} // namespace fld::driver

#endif // FLD_DRIVER_SW_STACK_H
