/**
 * @file
 * Software receive-side network stack model (kernel TCP/IP path).
 *
 * Used by the IP-defragmentation experiment (§8.2.2) as the CPU
 * baseline: when the NIC cannot validate L4 checksums (fragments) the
 * stack pays a per-byte software checksum, and when software
 * defragmentation is enabled it pays reassembly costs — all on the
 * core RSS chose, which for fragments is a single core.
 */
#ifndef FLD_DRIVER_SW_STACK_H
#define FLD_DRIVER_SW_STACK_H

#include <cstdint>

#include "driver/cpu_driver.h"
#include "driver/host.h"
#include "net/ip_reassembly.h"
#include "sim/stats.h"

namespace fld::driver {

struct SwStackConfig
{
    /** Kernel per-packet processing (softirq + TCP). Calibrated so 16
     *  cores comfortably sustain 25 Gbps of MTU packets while one
     *  core alone bottlenecks near the paper's 3.2 Gbps on the
     *  fragmented path. */
    sim::TimePs per_packet_cost = sim::nanoseconds(600);

    /** Software checksum cost per byte when the NIC offload verdict
     *  is unavailable (fragments). ~0.4 ns/B on the modeled cores. */
    sim::TimePs csum_per_byte = 550; // ps

    /** Reassembly bookkeeping per fragment. */
    sim::TimePs defrag_per_packet = sim::nanoseconds(380);

    /** Run software defragmentation (the non-offloaded baseline). */
    bool software_defrag = true;
};

/**
 * Attaches to a CpuDriver and plays the role of the kernel receive
 * path: costs CPU per packet, reassembles fragments in software when
 * configured, and meters application-level goodput (L4 payload bytes
 * of complete datagrams).
 */
class SoftwareReceiveStack
{
  public:
    SoftwareReceiveStack(sim::EventQueue& eq, HostNode& host,
                         CpuDriver& driver, SwStackConfig cfg = {});

    uint64_t delivered_payload_bytes() const { return delivered_; }
    uint64_t delivered_packets() const { return packets_; }
    uint64_t dropped_fragments() const { return dropped_; }
    const sim::RateMeter& meter() const { return meter_; }

  private:
    void on_packet(uint32_t queue, net::Packet&& pkt);
    void account(uint32_t queue, const net::Packet& pkt);

    sim::EventQueue& eq_;
    HostNode& host_;
    CpuDriver& driver_;
    SwStackConfig cfg_;
    net::IpReassembler reasm_{4096};
    uint64_t delivered_ = 0;
    uint64_t packets_ = 0;
    uint64_t dropped_ = 0;
    sim::RateMeter meter_;
};

} // namespace fld::driver

#endif // FLD_DRIVER_SW_STACK_H
