/**
 * @file
 * Host-side RDMA verbs client.
 *
 * A software RC endpoint with rings in host memory, used by remote
 * clients talking to FLD-R accelerators (e.g., the disaggregated ZUC
 * cipher's DPDK cryptodev driver, §7) and by the FLD-R baselines.
 * Message receive reassembles per-packet MPRQ completions into whole
 * messages before delivery.
 */
#ifndef FLD_DRIVER_RDMA_CLIENT_H
#define FLD_DRIVER_RDMA_CLIENT_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "driver/host.h"
#include "nic/nic.h"
#include "pcie/endpoint.h"
#include "pcie/fabric.h"

namespace fld::driver {

struct RdmaClientConfig
{
    uint32_t sq_entries = 1024;
    uint32_t rq_entries = 256;
    uint32_t cq_entries = 4096;
    uint32_t rx_buffers = 64;
    uint16_t rx_strides = 32;
    uint16_t rx_stride_shift = 11;
    uint32_t core = 0;
    uint32_t max_msg_bytes = 64 * 1024;
    /** Verbs post/poll CPU costs (kernel-bypass path). */
    sim::TimePs post_cost = sim::nanoseconds(60);
    sim::TimePs poll_cost = sim::nanoseconds(40);
};

class RdmaClient
{
  public:
    RdmaClient(std::string name, sim::EventQueue& eq,
               pcie::PcieFabric& fabric, pcie::PortId host_port,
               pcie::MemoryEndpoint& hostmem, uint64_t arena_base,
               uint64_t arena_size, nic::NicDevice& nic,
               uint64_t nic_bar_base, HostNode& host,
               nic::VportId vport, RdmaClientConfig cfg = {},
               uint64_t mem_dma_base = 0);

    uint32_t qpn() const { return qpn_; }

    /** Bind to the remote QP (connection management is software). */
    void connect(uint32_t remote_qpn, const net::MacAddr& local_mac,
                 const net::MacAddr& remote_mac);

    /**
     * Post an RDMA SEND of @p payload with message id @p msg_id.
     * Returns false when the send ring is full.
     */
    bool post_send(std::vector<uint8_t> payload, uint32_t msg_id);

    /** Whole reassembled messages received on the QP. */
    using MsgHandler =
        std::function<void(uint32_t msg_id, std::vector<uint8_t>&&)>;
    void set_msg_handler(MsgHandler fn) { msg_handler_ = std::move(fn); }

    /** Send-completion (ACKed) notification. */
    using SendDoneHandler = std::function<void(uint32_t msg_id)>;
    void set_send_done_handler(SendDoneHandler fn)
    {
        send_done_ = std::move(fn);
    }

    size_t sends_outstanding() const { return tx_outstanding_.size(); }

    uint64_t messages_sent() const { return messages_sent_; }
    uint64_t messages_received() const { return messages_received_; }

  private:
    uint64_t alloc(uint64_t size, uint64_t align = 64);
    void handle_cqe(const nic::Cqe& cqe);
    void ring_doorbell(const uint8_t* inline_wqe = nullptr);

    std::string name_;
    sim::EventQueue& eq_;
    pcie::PcieFabric& fabric_;
    pcie::PortId host_port_;
    pcie::MemoryEndpoint& hostmem_;
    uint64_t arena_next_;
    uint64_t arena_end_;
    uint64_t dma_base_;
    nic::NicDevice& nic_;
    uint64_t nic_bar_base_;
    HostNode& host_;
    RdmaClientConfig cfg_;

    uint32_t cqn_ = 0;
    uint32_t sqn_ = 0;
    uint32_t rqn_ = 0;
    uint32_t qpn_ = 0;
    uint64_t sq_ring_ = 0;
    uint64_t data_arena_ = 0;
    std::vector<uint64_t> rx_buffers_;
    uint32_t sq_pi_ = 0;        ///< slots reserved by post_send()
    uint32_t sq_published_ = 0; ///< WQEs actually written to memory
    uint32_t rq_pi_ = 0;
    bool db_inflight_ = false;
    bool db_dirty_ = false;
    std::deque<std::pair<uint16_t, uint32_t>> tx_outstanding_;

    struct Reassembly
    {
        std::vector<uint8_t> data;
        uint32_t received = 0;
    };
    std::map<uint32_t, Reassembly> rx_messages_;

    MsgHandler msg_handler_;
    SendDoneHandler send_done_;
    uint64_t messages_sent_ = 0;
    uint64_t messages_received_ = 0;
};

} // namespace fld::driver

#endif // FLD_DRIVER_RDMA_CLIENT_H
