#include "driver/host.h"

#include <algorithm>

#include "util/logging.h"

namespace fld::driver {

HostNode::HostNode(std::string name, sim::EventQueue& eq, HostConfig cfg)
    : name_(std::move(name)), eq_(eq), cfg_(cfg),
      busy_until_(cfg.cores, 0), busy_time_(cfg.cores, 0),
      rng_(cfg.seed)
{
    if (cfg.cores == 0)
        fatal("HostNode: need at least one core");
}

sim::TimePs
HostNode::core_start(uint32_t core, sim::TimePs cost)
{
    if (core >= cfg_.cores)
        fatal("%s: core %u out of range", name_.c_str(), core);

    sim::TimePs start = std::max(eq_.now(), busy_until_[core]);
    // OS interference: the scheduler occasionally takes the core away.
    if (cfg_.jitter_prob > 0 && rng_.chance(cfg_.jitter_prob)) {
        start += cfg_.jitter_min +
                 sim::TimePs(rng_.exponential(
                     double(cfg_.jitter_mean_extra)));
    }
    busy_until_[core] = start + cost;
    busy_time_[core] += cost;
    return busy_until_[core];
}

} // namespace fld::driver
