/**
 * @file
 * Software (CPU) NIC driver — the baseline FLD is compared against.
 *
 * A DPDK/mlx5-style poll-mode driver: full-size descriptor rings and
 * data buffers in host memory (Table 2b "Software" column), MMIO
 * doorbells, MPRQ receive, selective TX completion signalling
 * (EMPW/inline disabled, matching the paper's fair-comparison setup).
 * Supports multiple queue pairs, one host core per queue, so RSS
 * experiments and single-core bottlenecks behave faithfully.
 */
#ifndef FLD_DRIVER_CPU_DRIVER_H
#define FLD_DRIVER_CPU_DRIVER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "driver/host.h"
#include "net/packet.h"
#include "nic/nic.h"
#include "pcie/endpoint.h"
#include "pcie/fabric.h"

namespace fld::driver {

struct CpuDriverConfig
{
    uint32_t num_queues = 1;
    uint32_t sq_entries = 1024;
    uint32_t rq_entries = 256;
    uint32_t cq_entries = 4096;
    uint32_t rx_buffers = 64;       ///< MPRQ buffers per RQ
    uint16_t rx_strides = 32;       ///< strides per buffer
    uint16_t rx_stride_shift = 11;  ///< 2 KiB strides
    uint32_t signal_interval = 16;
    /** First host core used; queue i runs on core first_core + i. */
    uint32_t first_core = 0;
    /**
     * Overload bound: when the owning core's backlog exceeds this,
     * further packets are dropped at the driver (a real poll-mode
     * driver stops reposting buffers and the NIC tail-drops; the
     * effect — bounded queueing, load shedding — is the same).
     * 100 us corresponds to a ~1024-descriptor ring at small-packet
     * line rate.
     */
    sim::TimePs max_app_backlog = sim::microseconds(20);
    bool wqe_by_mmio = true; ///< inline lone WQEs in doorbells (§6)
};

/** Per-queue counters. */
struct CpuDriverStats
{
    uint64_t tx_packets = 0;
    uint64_t tx_bytes = 0;
    uint64_t rx_packets = 0;
    uint64_t rx_bytes = 0;
    uint64_t tx_backpressured = 0; ///< ring full at send time
    uint64_t rx_overload_dropped = 0; ///< app backlog bound exceeded
};

class CpuDriver
{
  public:
    /**
     * Creates NIC queues with rings in @p hostmem (allocated from
     * [arena_base, arena_base+arena_size)), posts receive buffers and
     * leaves steering to the caller (install rules / TIRs over rqn()).
     */
    CpuDriver(std::string name, sim::EventQueue& eq,
              pcie::PcieFabric& fabric, pcie::PortId host_port,
              pcie::MemoryEndpoint& hostmem, uint64_t arena_base,
              uint64_t arena_size, nic::NicDevice& nic,
              uint64_t nic_bar_base, HostNode& host,
              nic::VportId vport, CpuDriverConfig cfg = {},
              uint64_t mem_dma_base = 0);

    uint32_t num_queues() const { return cfg_.num_queues; }
    uint32_t core_of(uint32_t q) const { return queues_[q].core; }
    uint32_t sqn(uint32_t q = 0) const { return queues_[q].sqn; }
    uint32_t rqn(uint32_t q = 0) const { return queues_[q].rqn; }
    std::vector<uint32_t> all_rqns() const;
    nic::VportId vport() const { return vport_; }

    /**
     * Transmit a frame on queue @p q: pays the driver's CPU cost on
     * the queue's core, writes the WQE + payload into host memory and
     * rings the doorbell. Returns false when the ring is full.
     */
    bool send(uint32_t q, net::Packet&& frame);

    /**
     * Packets delivered to the application after the driver's
     * receive-path CPU cost on the owning core.
     */
    using RxHandler = std::function<void(uint32_t q, net::Packet&&)>;
    void set_rx_handler(RxHandler fn) { rx_handler_ = std::move(fn); }

    const CpuDriverStats& stats() const { return stats_; }

    /** Outstanding (not yet completed) TX descriptors on queue q. */
    size_t tx_outstanding(uint32_t q) const
    {
        return queues_[q].tx_outstanding.size();
    }

  private:
    struct Queue
    {
        uint32_t sqn = 0;
        uint32_t rqn = 0;
        uint64_t sq_ring = 0;
        uint64_t rq_ring = 0;
        uint64_t data_arena = 0;   ///< per-WQE payload slots
        uint32_t sq_pi = 0;        ///< slots reserved by send()
        uint32_t sq_published = 0; ///< WQEs actually written to memory
        uint32_t rq_pi = 0;
        uint32_t rq_pi_published = 0; ///< last PI the NIC was told
        uint32_t unsignaled = 0;
        std::deque<uint16_t> tx_outstanding; ///< signaled bookkeeping
        bool db_inflight = false;
        bool db_dirty = false;
        std::vector<uint64_t> rx_buffers; ///< buffer base addresses
        uint32_t core = 0;
    };

    uint64_t alloc(uint64_t size, uint64_t align = 64);
    void ring_sq_doorbell(uint32_t q,
                          const uint8_t* inline_wqe = nullptr);
    void handle_cqe(const nic::Cqe& cqe);
    void handle_rx(uint32_t q, const nic::Cqe& cqe);

    std::string name_;
    sim::EventQueue& eq_;
    pcie::PcieFabric& fabric_;
    pcie::PortId host_port_;
    pcie::MemoryEndpoint& hostmem_;
    uint64_t arena_next_;
    uint64_t arena_end_;
    uint64_t dma_base_; ///< fabric address of hostmem offset 0
    nic::NicDevice& nic_;
    uint64_t nic_bar_base_;
    HostNode& host_;
    nic::VportId vport_;
    CpuDriverConfig cfg_;

    uint32_t cqn_ = 0;
    std::vector<Queue> queues_;
    RxHandler rx_handler_;
    CpuDriverStats stats_;
};

} // namespace fld::driver

#endif // FLD_DRIVER_CPU_DRIVER_H
