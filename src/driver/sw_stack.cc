#include "driver/sw_stack.h"

#include <algorithm>

#include "sim/trace.h"

namespace fld::driver {

SoftwareReceiveStack::SoftwareReceiveStack(sim::EventQueue& eq,
                                           HostNode& host,
                                           CpuDriver& driver,
                                           SwStackConfig cfg)
    : eq_(eq), host_(host), driver_(driver), cfg_(cfg)
{
    driver_.set_rx_handler([this](uint32_t q, net::Packet&& pkt) {
        on_packet(q, std::move(pkt));
    });
}

void
SoftwareReceiveStack::on_packet(uint32_t queue, net::Packet&& pkt)
{
    // Stack processing cost on the core RSS picked (== queue's core).
    sim::TimePs cost = cfg_.per_packet_cost;
    if (!pkt.meta.l4_csum_ok)
        cost += sim::TimePs(pkt.size()) * cfg_.csum_per_byte;

    net::ParsedPacket pp = net::parse(pkt);
    bool fragment = pp.is_ip_fragment();
    if (fragment) {
        if (!cfg_.software_defrag) {
            // Stack without reassembly support: fragment is dropped.
            ++dropped_;
            return;
        }
        cost += cfg_.defrag_per_packet;
    }

    host_.run_on_core(driver_.core_of(queue), cost,
                      [this, queue, pkt = std::move(pkt),
                       fragment]() mutable {
                          if (fragment) {
                              auto done = reasm_.push(pkt);
                              if (done)
                                  account(queue, *done);
                          } else {
                              account(queue, pkt);
                          }
                      });
}

void
SoftwareReceiveStack::account(uint32_t, const net::Packet& pkt)
{
    net::ParsedPacket pp = net::parse(pkt);
    ++packets_;
    delivered_ += pp.payload_len;
    meter_.record(eq_.now(), pp.payload_len);
}

// ---------------------------------------------------------------------
// Send side
// ---------------------------------------------------------------------

SoftwareSendStack::SoftwareSendStack(sim::EventQueue& eq, TxFn tx,
                                     SendStackConfig cfg)
    : eq_(eq), tx_(std::move(tx)), cfg_(cfg)
{
}

void
SoftwareSendStack::add_arp_entry(uint32_t ip, const net::MacAddr& mac)
{
    arp_cache_[ip] = mac;
}

size_t
SoftwareSendStack::send(const uint8_t* data, size_t len)
{
    // Slice the stream at MSS boundaries up front; the window decides
    // when each slice actually leaves.
    for (size_t off = 0; off < len; off += cfg_.mss) {
        Segment seg;
        seg.seq = snd_nxt_;
        size_t n = std::min<size_t>(cfg_.mss, len - off);
        // Intentional copy: each segment owns its bytes so it can be
        // retransmitted after the caller's buffer is gone.
        seg.payload.assign(data + off, data + off + n);
        seg.push = off + n == len;
        snd_nxt_ += uint32_t(n);
        backlog_.push_back(std::move(seg));
    }
    pump();
    return len;
}

void
SoftwareSendStack::pump()
{
    if (!arp_cache_.count(cfg_.dst_ip)) {
        if (!arp_pending_ && !backlog_.empty()) {
            arp_pending_ = true;
            send_arp_request();
        }
        return;
    }
    while (!backlog_.empty() &&
           unacked_.size() < cfg_.window_segments) {
        Segment seg = std::move(backlog_.front());
        backlog_.pop_front();
        transmit(seg);
        ++segments_sent_;
        unacked_.push_back(std::move(seg));
    }
    if (!unacked_.empty() && !timer_armed_)
        arm_timer();
}

void
SoftwareSendStack::transmit(const Segment& seg)
{
    uint8_t flags = 0x10; // ACK
    if (seg.push)
        flags |= 0x08; // PSH
    net::Packet pkt =
        net::PacketBuilder()
            .eth(cfg_.src_mac, arp_cache_.at(cfg_.dst_ip))
            .ipv4(cfg_.src_ip, cfg_.dst_ip, net::kIpProtoTcp, ip_id_++)
            .tcp(cfg_.sport, cfg_.dport, seg.seq, /*ack=*/0, flags)
            .payload(seg.payload)
            .build();
    tx_(std::move(pkt));
}

void
SoftwareSendStack::send_arp_request()
{
    ++arp_requests_;
    net::EthHeader eth;
    eth.src = cfg_.src_mac;
    eth.dst = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
    eth.ethertype = net::kEtherTypeArp;

    net::ArpHeader arp;
    arp.oper = net::ArpHeader::kRequest;
    arp.sender_mac = cfg_.src_mac;
    arp.sender_ip = cfg_.src_ip;
    arp.target_ip = cfg_.dst_ip;

    net::Packet pkt;
    pkt.data.resize(net::kEthHeaderLen + net::kArpLen);
    eth.encode(pkt.bytes());
    arp.encode(pkt.bytes() + net::kEthHeaderLen);
    tx_(std::move(pkt));
}

void
SoftwareSendStack::on_rx(const net::Packet& pkt)
{
    if (pkt.size() < net::kEthHeaderLen)
        return;
    net::EthHeader eth = net::EthHeader::decode(pkt.bytes());
    if (eth.ethertype == net::kEtherTypeArp) {
        auto arp = net::ArpHeader::decode(pkt.bytes() + net::kEthHeaderLen,
                                          pkt.size() - net::kEthHeaderLen);
        if (arp && arp->oper == net::ArpHeader::kReply) {
            arp_cache_[arp->sender_ip] = arp->sender_mac;
            if (arp->sender_ip == cfg_.dst_ip)
                arp_pending_ = false;
            pump();
        }
        return;
    }
    net::ParsedPacket pp = net::parse(pkt);
    if (pp.tcp && (pp.tcp->flags & 0x10))
        handle_ack(pp.tcp->ack);
}

void
SoftwareSendStack::handle_ack(uint32_t ack)
{
    // Cumulative ACK: everything below `ack` is delivered.
    if (int32_t(ack - snd_una_) <= 0)
        return; // duplicate or stale
    snd_una_ = ack;
    retries_ = 0;
    while (!unacked_.empty() &&
           int32_t(unacked_.front().seq +
                   uint32_t(unacked_.front().payload.size()) - ack) <= 0)
        unacked_.pop_front();

    // Progress voids any armed timer; re-arm below if data remains.
    ++timer_gen_;
    timer_armed_ = false;
    pump();
}

void
SoftwareSendStack::arm_timer()
{
    timer_armed_ = true;
    uint64_t gen = ++timer_gen_;
    eq_.schedule_in(cfg_.rto, [this, gen] { on_timeout(gen); });
}

void
SoftwareSendStack::on_timeout(uint64_t generation)
{
    if (generation != timer_gen_ || !timer_armed_)
        return; // an ACK (or a newer arm) voided this timer
    timer_armed_ = false;
    if (unacked_.empty())
        return;
    if (++retries_ > cfg_.max_retries) {
        // Connection reset: drop everything in flight and queued.
        ++resets_;
        unacked_.clear();
        backlog_.clear();
        return;
    }
    // Go-back-N: resend the entire unacknowledged window.
    for (const Segment& seg : unacked_) {
        transmit(seg);
        ++retransmits_;
    }
    if (auto* tr = sim::Tracer::active())
        tr->emit(eq_.now(), sim::TraceEventKind::Retransmit, "sw_stack",
                 "gbn", 0, 0, 0, uint32_t(unacked_.size()));
    arm_timer();
}

} // namespace fld::driver
