#include "driver/sw_stack.h"

namespace fld::driver {

SoftwareReceiveStack::SoftwareReceiveStack(sim::EventQueue& eq,
                                           HostNode& host,
                                           CpuDriver& driver,
                                           SwStackConfig cfg)
    : eq_(eq), host_(host), driver_(driver), cfg_(cfg)
{
    driver_.set_rx_handler([this](uint32_t q, net::Packet&& pkt) {
        on_packet(q, std::move(pkt));
    });
}

void
SoftwareReceiveStack::on_packet(uint32_t queue, net::Packet&& pkt)
{
    // Stack processing cost on the core RSS picked (== queue's core).
    sim::TimePs cost = cfg_.per_packet_cost;
    if (!pkt.meta.l4_csum_ok)
        cost += sim::TimePs(pkt.size()) * cfg_.csum_per_byte;

    net::ParsedPacket pp = net::parse(pkt);
    bool fragment = pp.is_ip_fragment();
    if (fragment) {
        if (!cfg_.software_defrag) {
            // Stack without reassembly support: fragment is dropped.
            ++dropped_;
            return;
        }
        cost += cfg_.defrag_per_packet;
    }

    host_.run_on_core(driver_.core_of(queue), cost,
                      [this, queue, pkt = std::move(pkt),
                       fragment]() mutable {
                          if (fragment) {
                              auto done = reasm_.push(pkt);
                              if (done)
                                  account(queue, *done);
                          } else {
                              account(queue, pkt);
                          }
                      });
}

void
SoftwareReceiveStack::account(uint32_t, const net::Packet& pkt)
{
    net::ParsedPacket pp = net::parse(pkt);
    ++packets_;
    delivered_ += pp.payload_len;
    meter_.record(eq_.now(), pp.payload_len);
}

} // namespace fld::driver
