#include "driver/sw_stack.h"

#include <algorithm>

namespace fld::driver {

SoftwareReceiveStack::SoftwareReceiveStack(sim::EventQueue& eq,
                                           HostNode& host,
                                           CpuDriver& driver,
                                           SwStackConfig cfg)
    : eq_(eq), host_(host), driver_(driver), cfg_(cfg)
{
    driver_.set_rx_handler([this](uint32_t q, net::Packet&& pkt) {
        on_packet(q, std::move(pkt));
    });
}

void
SoftwareReceiveStack::on_packet(uint32_t queue, net::Packet&& pkt)
{
    // Stack processing cost on the core RSS picked (== queue's core).
    sim::TimePs cost = cfg_.per_packet_cost;
    if (!pkt.meta.l4_csum_ok)
        cost += sim::TimePs(pkt.size()) * cfg_.csum_per_byte;

    net::ParsedPacket pp = net::parse(pkt);
    bool fragment = pp.is_ip_fragment();
    if (fragment) {
        if (!cfg_.software_defrag) {
            // Stack without reassembly support: fragment is dropped.
            ++dropped_;
            return;
        }
        cost += cfg_.defrag_per_packet;
    }

    host_.run_on_core(driver_.core_of(queue), cost,
                      [this, queue, pkt = std::move(pkt),
                       fragment]() mutable {
                          if (fragment) {
                              auto done = reasm_.push(pkt);
                              if (done)
                                  account(queue, *done);
                          } else {
                              account(queue, pkt);
                          }
                      });
}

void
SoftwareReceiveStack::account(uint32_t, const net::Packet& pkt)
{
    net::ParsedPacket pp = net::parse(pkt);
    ++packets_;
    delivered_ += pp.payload_len;
    meter_.record(eq_.now(), pp.payload_len);
}

// ---------------------------------------------------------------------
// Send side
// ---------------------------------------------------------------------

FastPathConfig
SoftwareSendStack::fp_config(const SendStackConfig& cfg)
{
    FastPathConfig fp;
    fp.mac = cfg.src_mac;
    fp.ip = cfg.src_ip;
    fp.conn.mss = cfg.mss;
    fp.conn.window_segments = cfg.window_segments;
    fp.conn.rto = cfg.rto;
    fp.conn.max_retries = cfg.max_retries;
    fp.slot_bytes = std::max(2048u, cfg.mss);
    // The legacy stack never answered ARP requests; keep frame-level
    // behavior identical for callers counting emitted frames.
    fp.arp_responder = false;
    return fp;
}

SoftwareSendStack::SoftwareSendStack(sim::EventQueue& eq, TxFn tx,
                                     SendStackConfig cfg)
    : fp_(eq, fp_config(cfg))
{
    fp_.set_tx([fn = std::move(tx)](net::Packet&& p) {
        fn(std::move(p));
        return true; // the hook has no backpressure channel
    });
    conn_id_ = fp_.open_established(FastPath::kNoApp, 0, cfg.dst_ip,
                                    cfg.dport, cfg.sport,
                                    /*legacy=*/true);
    c_ = fp_.conn(conn_id_);
}

void
SoftwareSendStack::add_arp_entry(uint32_t ip, const net::MacAddr& mac)
{
    fp_.add_arp_entry(ip, mac);
}

size_t
SoftwareSendStack::send(const uint8_t* data, size_t len)
{
    return fp_.stream_send(conn_id_, data, len);
}

void
SoftwareSendStack::on_rx(const net::Packet& pkt)
{
    // Intentional copy: the legacy interface passes frames by
    // reference while the fast path consumes them.
    fp_.on_rx(net::Packet(pkt));
}

} // namespace fld::driver
