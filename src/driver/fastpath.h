/**
 * @file
 * Host TCP fast path with a flextcp-like application ring ABI.
 *
 * The paper's FLD re-implements the NIC driver an accelerator needs;
 * serving real applications additionally needs the *host* transmit
 * path the kernel normally provides. This module grows the
 * single-connection SoftwareSendStack (PR 3) into a per-flow fast
 * path in the shape of TAS/flextcp (SNIPPETS.md snippet 1):
 *
 *  - Applications talk to the stack through per-application SPSC
 *    descriptor rings. Each entry is a flextcp-style
 *    {opaque, addr, len, flags} record with an ownership flag
 *    (`nic_own`) that round-trips producer -> consumer -> producer,
 *    and free-running wrap-aware head/tail indices. Work is announced
 *    with bump-queue doorbells that naturally coalesce over batches.
 *  - Connection open/teardown travels the *slow path*: explicit
 *    control messages between the application and the stack, never
 *    the data rings.
 *  - Every connection carries its own seq/ack/rto/go-back-N state and
 *    its own retransmission timer. This fixes the old stack's
 *    single-global-timer/global-ARP-queue design, where one stalled
 *    ARP entry or one lossy flow delayed unrelated flows' segments:
 *    ARP parking and timeouts are now strictly per next-hop and
 *    per connection.
 *
 * The stack is transport-agnostic: frames leave through a
 * caller-supplied hook (a CpuDriver queue, the FLD AXI stream, or a
 * test harness wire) and arrive via on_rx(). The same application
 * traffic can therefore be served CPU-driven or FLD-driven and the
 * two runs compared by the differential oracles.
 */
#ifndef FLD_DRIVER_FASTPATH_H
#define FLD_DRIVER_FASTPATH_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "net/headers.h"
#include "net/packet.h"
#include "sim/event_queue.h"

namespace fld::driver {

// ---------------------------------------------------------------------
// Ring ABI
// ---------------------------------------------------------------------

/** Descriptor types (RingDesc::type). */
constexpr uint8_t kDescInvalid = 0;
/** TX: payload at {addr, len} to stream on connection `opaque`.
 *  RX: `len` payload bytes for connection `opaque` at `addr`. */
constexpr uint8_t kDescData = 1;
/** RX only: `len` more transmit bytes of connection `opaque` were
 *  acknowledged end-to-end (flextcp's CONNUPDATE tx bump). */
constexpr uint8_t kDescTxDone = 2;

/** Descriptor flags (RingDesc::flags). */
constexpr uint16_t kDescFlagPush = 0x1; ///< TX: PSH the final segment
/**
 * TX: request a *tagged* completion for this descriptor. Instead of
 * being coalesced into the next aggregate TxDone bump, the descriptor
 * gets its own kDescTxDone entry echoing RingDesc::tag once its last
 * byte is acknowledged end-to-end. The RPC tier tags the final
 * descriptor of each response so response completion (not just byte
 * counts) is visible on the ring.
 */
constexpr uint16_t kDescFlagTxTag = 0x2;

/**
 * One ring entry, modeled on flextcp's 64 B queue entries: an opaque
 * cookie, a buffer reference, and an ownership flag the producer sets
 * and the consumer clears once the entry (and its buffer) may be
 * reused.
 */
struct RingDesc
{
    uint64_t opaque = 0; ///< connection id
    uint64_t addr = 0;   ///< offset into the owning app's arena
    uint32_t len = 0;
    uint32_t tag = 0;    ///< app cookie echoed by tagged completions
    uint16_t flags = 0;
    uint8_t type = kDescInvalid;
    uint8_t nic_own = 0; ///< 1 while the consumer side owns the entry
};

/**
 * Wrap-aware SPSC descriptor ring.
 *
 * head_/tail_ are free-running 32-bit indices (slot = index mod
 * capacity), so the ring keeps working across index wraparound — the
 * same discipline the NIC's WQE rings use and TraceChecker verifies.
 * Consumption is two-phase, like a real NIC: pop() advances the tail
 * (the consumer has *read* the entry) but the slot stays `nic_own`
 * until release() — only then may the producer reuse the slot and the
 * buffer it references. Backpressure is therefore visible to the
 * producer as post() returning false.
 */
class DescRing
{
  public:
    /** @p entries must be a power of two (>= 2). @p initial_index
     *  lets wrap tests start head/tail near the 2^32 boundary. */
    explicit DescRing(uint32_t entries, uint32_t initial_index = 0);

    uint32_t capacity() const { return capacity_; }
    uint32_t head() const { return head_; }
    uint32_t tail() const { return tail_; }
    bool empty() const { return head_ == tail_; }
    bool full() const { return head_ - tail_ == capacity_; }
    /** Entries posted but not yet consumed. */
    uint32_t pending() const { return head_ - tail_; }

    /** Slot index the next post() will claim (mod capacity). */
    uint32_t next_slot() const { return head_ & mask_; }

    /**
     * Producer: claim the next slot. Fails (returning false and
     * counting a stall) when the ring is full *or* the slot has not
     * been released yet — a consumer still owns its buffer.
     */
    bool post(const RingDesc& d);

    /** Consumer: entry at the tail, or null when none pending. */
    const RingDesc* peek() const;
    /**
     * Consumer: read the tail entry and advance the tail. Returns the
     * slot index (for the matching release()); the descriptor is
     * copied into @p out.
     */
    uint32_t pop(RingDesc* out);
    /** Consumer: return slot ownership to the producer. */
    void release(uint32_t slot);

    const RingDesc& slot(uint32_t index) const
    {
        return slots_[index & mask_];
    }

    // Conservation counters for the leak/round-trip oracles.
    uint64_t posted() const { return posted_; }
    uint64_t consumed() const { return consumed_; }
    uint64_t released() const { return released_; }
    uint64_t stalls() const { return stalls_; }
    /** True when every posted descriptor has been handed back. */
    bool all_released() const { return posted_ == released_; }
    /** True when no slot carries a dangling ownership flag. */
    bool own_flags_clear() const;

  private:
    uint32_t capacity_;
    uint32_t mask_;
    uint32_t head_;
    uint32_t tail_;
    std::vector<RingDesc> slots_;
    uint64_t posted_ = 0;
    uint64_t consumed_ = 0;
    uint64_t released_ = 0;
    uint64_t stalls_ = 0;
};

// ---------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------

/** Per-connection reliability parameters. */
struct ConnConfig
{
    uint32_t mss = 1460;         ///< TCP payload bytes per segment
    uint32_t window_segments = 8;///< go-back-N in-flight segment window
    sim::TimePs rto = sim::microseconds(200);
    uint32_t max_retries = 8;    ///< back-to-back timeouts before reset
};

enum class ConnState : uint8_t {
    Closed,      ///< time-wait: handshake done, conn about to be freed
    SynSent,     ///< active open, SYN in flight
    SynRcvd,     ///< passive open, SYN-ACK in flight
    Established,
    FinSent,     ///< close requested, FIN queued or in flight
    Reset,       ///< gave up after max_retries (or peer vanished)
};

const char* to_string(ConnState s);

/** Demultiplexing key (the local IP is the stack's own address). */
struct ConnKey
{
    uint32_t remote_ip = 0;
    uint16_t remote_port = 0;
    uint16_t local_port = 0;

    bool operator<(const ConnKey& o) const
    {
        return std::tie(remote_ip, remote_port, local_port) <
               std::tie(o.remote_ip, o.remote_port, o.local_port);
    }
    bool operator==(const ConnKey& o) const
    {
        return remote_ip == o.remote_ip &&
               remote_port == o.remote_port &&
               local_port == o.local_port;
    }
};

/** Slow-path message from the stack to an application. */
struct CtrlMsg
{
    enum class Type : uint8_t {
        Opened,   ///< active open completed (handshake done)
        Accepted, ///< passive connection established on a listener
        Closed,   ///< teardown finished cleanly
        Reset,    ///< connection gave up (max_retries exceeded)
    };
    Type type = Type::Opened;
    uint32_t conn_id = 0;
    uint64_t cookie = 0; ///< the opaque the app passed to open()
    ConnKey key;
};

class FastPath;

/**
 * One TCP connection: private per-flow seq/ack state, its own
 * go-back-N window and retransmission timer. Only FastPath mutates
 * it; tests and harnesses read through the const accessors.
 */
class Connection
{
  public:
    uint32_t id() const { return id_; }
    const ConnKey& key() const { return key_; }
    ConnState state() const { return state_; }
    uint32_t app() const { return app_; }
    uint64_t cookie() const { return cookie_; }

    uint32_t snd_una() const { return snd_una_; }
    uint32_t snd_nxt() const { return snd_nxt_; }
    uint32_t rcv_nxt() const { return rcv_nxt_; }
    size_t unacked_segments() const { return unacked_.size(); }
    size_t backlog_segments() const { return backlog_.size(); }
    bool timer_armed() const { return timer_armed_; }

    uint64_t segments_sent() const { return segments_sent_; }
    uint64_t retransmits() const { return retransmits_; }
    uint64_t resets() const { return resets_; }
    uint64_t bytes_streamed() const { return bytes_streamed_; }
    uint64_t bytes_acked() const { return bytes_acked_; }
    uint64_t bytes_delivered() const { return bytes_delivered_; }
    uint64_t dup_segments() const { return dup_segments_; }
    uint64_t ooo_segments() const { return ooo_segments_; }

  private:
    friend class FastPath;

    struct Segment
    {
        uint32_t seq = 0;
        std::vector<uint8_t> payload;
        bool push = false;
        bool syn = false;
        bool fin = false;

        uint32_t seq_len() const
        {
            return uint32_t(payload.size()) + (syn ? 1u : 0u) +
                   (fin ? 1u : 0u);
        }
    };

    uint32_t id_ = 0;
    ConnKey key_;
    uint32_t app_ = 0;
    uint64_t cookie_ = 0;
    ConnConfig cfg_;
    ConnState state_ = ConnState::Closed;
    /** Legacy single-connection mode (SoftwareSendStack): resets
     *  clear the queues but keep the connection usable. */
    bool legacy_ = false;
    bool auto_close_peer_fin_ = true;

    uint32_t snd_una_ = 1;
    uint32_t snd_nxt_ = 1;
    uint32_t rcv_nxt_ = 0;
    uint32_t fin_seq_ = 0;   ///< sequence our FIN occupies (when sent)
    bool fin_queued_ = false;
    bool fin_acked_ = false;
    bool peer_fin_rcvd_ = false;

    std::deque<Segment> backlog_;
    std::deque<Segment> unacked_;

    bool timer_armed_ = false;
    uint64_t timer_gen_ = 0;
    uint32_t retries_ = 0;

    /** TX-completion reporting: descriptor byte counts waiting for
     *  snd_una to cover {end_seq}. */
    struct TxRecord
    {
        uint32_t end_seq = 0;
        uint32_t bytes = 0;
        uint32_t tag = 0;
        bool tagged = false; ///< emit an own TxDone echoing `tag`
    };
    std::deque<TxRecord> tx_records_;

    uint64_t segments_sent_ = 0;
    uint64_t retransmits_ = 0;
    uint64_t resets_ = 0;
    uint64_t bytes_streamed_ = 0;
    uint64_t bytes_acked_ = 0;
    uint64_t bytes_delivered_ = 0;
    uint64_t dup_segments_ = 0;
    uint64_t ooo_segments_ = 0;
};

// ---------------------------------------------------------------------
// FastPath
// ---------------------------------------------------------------------

struct FastPathConfig
{
    net::MacAddr mac{0x02, 0, 0, 0, 0, 0x51};
    uint32_t ip = net::ipv4_addr(192, 168, 1, 2);
    /** Defaults applied to every new connection. */
    ConnConfig conn;
    /** Bytes per RX-ring slot buffer (>= conn.mss). */
    uint32_t slot_bytes = 2048;
    /** Retry cadence when the driver refuses a frame (ring full /
     *  no FLD credits). */
    sim::TimePs tx_retry_delay = sim::microseconds(5);
    /** Linger in Closed (time-wait) before freeing connection state,
     *  so a peer retransmitting its FIN still gets re-ACKed. Scaled
     *  on top of the connection's rto. */
    uint32_t time_wait_rtos = 4;
    /** Answer ARP requests for our own IP (a real host does). */
    bool arp_responder = true;
};

struct FastPathStats
{
    uint64_t conns_opened = 0;   ///< active opens completing handshake
    uint64_t conns_accepted = 0; ///< passive opens established
    uint64_t conns_closed = 0;
    uint64_t conns_reset = 0;
    uint64_t frames_tx = 0; ///< frames the driver accepted
    uint64_t frames_rx = 0;
    uint64_t segments_sent = 0;
    uint64_t segments_received = 0;
    uint64_t retransmits = 0;
    uint64_t pure_acks_sent = 0;
    uint64_t dup_segments = 0;  ///< below rcv_nxt, re-ACKed
    uint64_t ooo_segments = 0;  ///< above rcv_nxt, dropped (go-back-N)
    uint64_t stray_segments = 0;///< no matching connection
    uint64_t arp_requests = 0;
    uint64_t arp_replies_sent = 0;
    uint64_t doorbells = 0;
    uint64_t tx_descs = 0;      ///< data descriptors consumed
    uint64_t rx_descs = 0;      ///< data descriptors delivered
    uint64_t tx_done_descs = 0;
    uint64_t tagged_tx_done_descs = 0; ///< subset echoing an app tag
    uint64_t rx_ring_stalls = 0;   ///< deliveries parked on a full ring
    uint64_t driver_backpressure = 0; ///< frames queued on driver refusal
};

class FastPath
{
  public:
    /** Frame egress hook; returns false when the driver cannot accept
     *  the frame right now (the stack queues and retries). */
    using TxFn = std::function<bool(net::Packet&&)>;
    /** Ring-activity nudge delivered to an application. */
    using NotifyFn = std::function<void()>;

    static constexpr uint32_t kNoApp = 0xffffffffu;
    static constexpr uint32_t kNoConn = 0;

    FastPath(sim::EventQueue& eq, FastPathConfig cfg = {});
    ~FastPath();

    void set_tx(TxFn tx) { tx_ = std::move(tx); }

    // ---- driver-facing ----------------------------------------------
    void on_rx(net::Packet&& pkt);

    // ---- application registration / rings ---------------------------
    /** Register an application; rings are created with the given
     *  power-of-two entry counts. Returns the app id. */
    uint32_t register_app(uint32_t tx_entries, uint32_t rx_entries,
                          NotifyFn notify = {});
    DescRing& tx_ring(uint32_t app);
    DescRing& rx_ring(uint32_t app);
    const DescRing& tx_ring(uint32_t app) const;
    const DescRing& rx_ring(uint32_t app) const;
    /** Per-slot payload arenas backing desc.addr. */
    uint8_t* tx_arena(uint32_t app);
    const uint8_t* rx_arena(uint32_t app) const;
    uint32_t slot_bytes() const { return cfg_.slot_bytes; }

    /** Bump-queue doorbell: consume freshly posted TX descriptors. */
    void doorbell(uint32_t app);
    /** The app released RX descriptors: flush parked deliveries. */
    void rx_doorbell(uint32_t app);
    /** Next slow-path message for @p app, if any. */
    std::optional<CtrlMsg> poll_ctrl(uint32_t app);

    // ---- slow path (connection lifecycle) ---------------------------
    /**
     * Active open. Returns the connection id immediately; the
     * CtrlMsg::Opened message arrives once the handshake completes.
     * @p cookie is echoed in every ctrl message for this connection.
     */
    uint32_t open(uint32_t app, uint64_t cookie, uint32_t remote_ip,
                  uint16_t remote_port, uint16_t local_port);
    /** Graceful close: FIN after all queued data. */
    void close(uint32_t conn_id);
    /** Accept passive connections on @p local_port for @p app. */
    void listen(uint16_t local_port, uint32_t app);
    /**
     * Create a connection already in Established without a handshake
     * (tests, and the SoftwareSendStack compatibility wrapper).
     * @p legacy keeps the connection usable after a reset, matching
     * the old single-connection stack.
     */
    uint32_t open_established(uint32_t app, uint64_t cookie,
                              uint32_t remote_ip, uint16_t remote_port,
                              uint16_t local_port, bool legacy = false);

    /** Stream bytes directly (ring-less path; used by the wrapper and
     *  by tests that exercise TCP machinery without the ring ABI). */
    size_t stream_send(uint32_t conn_id, const uint8_t* data,
                       size_t len);

    // ---- ARP --------------------------------------------------------
    void add_arp_entry(uint32_t ip, const net::MacAddr& mac);
    bool resolved(uint32_t ip) const { return arp_cache_.count(ip); }

    // ---- introspection ----------------------------------------------
    /** Null once the connection has been freed (post time-wait). */
    const Connection* conn(uint32_t conn_id) const;
    /** Connections not yet freed (includes time-wait and Reset). */
    size_t live_conns() const { return conns_.size(); }
    std::vector<uint32_t> conn_ids() const;
    /** True when nothing is in flight anywhere in the stack. */
    bool quiesced() const;
    const FastPathStats& stats() const { return stats_; }
    const FastPathConfig& config() const { return cfg_; }

    /** Per-connection config override (before any traffic). */
    void set_conn_config(uint32_t conn_id, const ConnConfig& cfg);

  private:
    struct ParkedRx
    {
        uint32_t conn_id = 0;
        uint8_t type = kDescData;
        std::vector<uint8_t> bytes; ///< empty for kDescTxDone
        uint32_t len = 0;           ///< TxDone byte count
        uint32_t tag = 0;           ///< tagged TxDone cookie
        bool tagged = false;
    };

    struct AppContext
    {
        DescRing tx;
        DescRing rx;
        std::vector<uint8_t> tx_arena;
        std::vector<uint8_t> rx_arena;
        std::deque<CtrlMsg> ctrl;
        std::deque<ParkedRx> parked;
        NotifyFn notify;

        AppContext(uint32_t tx_entries, uint32_t rx_entries,
                   uint32_t slot_bytes, NotifyFn fn)
            : tx(tx_entries), rx(rx_entries),
              tx_arena(size_t(tx_entries) * slot_bytes),
              rx_arena(size_t(rx_entries) * slot_bytes),
              notify(std::move(fn))
        {}
    };

    Connection* find(uint32_t conn_id);
    Connection* find_by_key(const ConnKey& key);
    Connection* create_conn(uint32_t app, uint64_t cookie,
                            const ConnKey& key);
    void free_conn(uint32_t conn_id);
    void post_ctrl(Connection& c, CtrlMsg::Type type);
    void notify_app(uint32_t app);

    // TX machinery.
    void pump(Connection& c);
    void transmit_segment(Connection& c, const Connection::Segment& s);
    void send_pure_ack(Connection& c);
    void emit(net::Packet&& frame);
    void drain_driver_backlog();
    void enqueue_stream(Connection& c, const uint8_t* data, size_t len,
                        bool push);
    void queue_fin(Connection& c);

    // Timers.
    void arm_timer(Connection& c);
    void cancel_timer(Connection& c);
    void on_timeout(uint32_t conn_id, uint64_t generation);
    void reset_conn(Connection& c);
    void enter_closed(Connection& c);

    // RX machinery.
    void on_arp(const net::Packet& pkt);
    void on_tcp(const net::ParsedPacket& pp, const net::Packet& pkt);
    void handle_ack(Connection& c, uint32_t ack);
    void handle_data(Connection& c, const net::ParsedPacket& pp,
                     const net::Packet& pkt);
    void handle_fin(Connection& c, uint32_t fin_seq);
    void maybe_finish_close(Connection& c);
    void deliver_data(Connection& c, const uint8_t* data, size_t len);
    void report_tx_done(Connection& c);
    void park_or_post(uint32_t app, ParkedRx&& item);
    bool try_post_rx(uint32_t app, const ParkedRx& item);
    void flush_parked(uint32_t app);

    // ARP.
    void maybe_send_arp(uint32_t next_hop_ip);
    void on_arp_resolved(uint32_t ip);

    sim::EventQueue& eq_;
    FastPathConfig cfg_;
    TxFn tx_;

    std::vector<std::unique_ptr<AppContext>> apps_;
    std::map<uint32_t, std::unique_ptr<Connection>> conns_;
    std::map<ConnKey, uint32_t> by_key_;
    std::map<uint16_t, uint32_t> listeners_; ///< port -> app
    uint32_t next_conn_id_ = 1;

    std::map<uint32_t, net::MacAddr> arp_cache_;
    std::map<uint32_t, bool> arp_pending_; ///< request outstanding

    std::deque<net::Packet> driver_backlog_;
    bool retry_armed_ = false;

    uint16_t ip_id_ = 1;
    FastPathStats stats_;
};

} // namespace fld::driver

#endif // FLD_DRIVER_FASTPATH_H
