#include "driver/rdma_client.h"

#include <cstring>

#include "sim/trace.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace fld::driver {

RdmaClient::RdmaClient(std::string name, sim::EventQueue& eq,
                       pcie::PcieFabric& fabric, pcie::PortId host_port,
                       pcie::MemoryEndpoint& hostmem,
                       uint64_t arena_base, uint64_t arena_size,
                       nic::NicDevice& nic, uint64_t nic_bar_base,
                       HostNode& host, nic::VportId vport,
                       RdmaClientConfig cfg, uint64_t mem_dma_base)
    : name_(std::move(name)), eq_(eq), fabric_(fabric),
      host_port_(host_port), hostmem_(hostmem),
      arena_next_(arena_base), arena_end_(arena_base + arena_size),
      dma_base_(mem_dma_base), nic_(nic), nic_bar_base_(nic_bar_base),
      host_(host), cfg_(cfg)
{
    uint64_t cq_ring =
        alloc(uint64_t(cfg_.cq_entries) * nic::kCqeStride);
    cqn_ = nic_.create_cq({dma_base_ + cq_ring, cfg_.cq_entries});
    hostmem_.add_watch(
        cq_ring, uint64_t(cfg_.cq_entries) * nic::kCqeStride,
        [this](uint64_t addr, size_t len) {
            if (len != nic::kCqeStride)
                return;
            uint8_t buf[nic::kCqeStride];
            hostmem_.bar_read(addr, buf, nic::kCqeStride);
            handle_cqe(nic::Cqe::decode(buf));
        });

    sq_ring_ = alloc(uint64_t(cfg_.sq_entries) * nic::kWqeStride);
    sqn_ = nic_.create_sq(
        {dma_base_ + sq_ring_, cfg_.sq_entries, cqn_, vport, 0.0});
    data_arena_ =
        alloc(uint64_t(cfg_.sq_entries) * cfg_.max_msg_bytes, 4096);

    uint64_t rq_ring =
        alloc(uint64_t(cfg_.rq_entries) * nic::kRxDescStride);
    rqn_ = nic_.create_rq(
        {dma_base_ + rq_ring, cfg_.rq_entries, cqn_});
    uint32_t buf_bytes = uint32_t(cfg_.rx_strides)
                         << cfg_.rx_stride_shift;
    for (uint32_t i = 0; i < cfg_.rx_buffers; ++i)
        rx_buffers_.push_back(alloc(buf_bytes, 4096));
    for (uint32_t i = 0; i < cfg_.rq_entries; ++i) {
        nic::RxDesc d;
        d.addr = dma_base_ + rx_buffers_[i % cfg_.rx_buffers];
        d.byte_count = buf_bytes;
        d.stride_count = cfg_.rx_strides;
        d.stride_shift = cfg_.rx_stride_shift;
        uint8_t enc[nic::kRxDescStride];
        d.encode(enc);
        std::memcpy(hostmem_.raw(rq_ring +
                                     uint64_t(i) * nic::kRxDescStride,
                                 nic::kRxDescStride),
                    enc, nic::kRxDescStride);
    }
    rq_pi_ = cfg_.rx_buffers;
    uint8_t db[4];
    store_le32(db, rq_pi_);
    fabric_.write(host_port_,
                  nic_bar_base_ + nic::NicDevice::kRqDbBase +
                      uint64_t(rqn_) * 8,
                  db, sizeof db);

    qpn_ = nic_.create_qp({sqn_, rqn_, vport});
}

uint64_t
RdmaClient::alloc(uint64_t size, uint64_t align)
{
    arena_next_ = (arena_next_ + align - 1) & ~(align - 1);
    uint64_t addr = arena_next_;
    arena_next_ += size;
    if (arena_next_ > arena_end_)
        fatal("%s: host arena exhausted", name_.c_str());
    return addr;
}

void
RdmaClient::connect(uint32_t remote_qpn, const net::MacAddr& local_mac,
                    const net::MacAddr& remote_mac)
{
    nic_.connect_qp(qpn_, {remote_qpn, local_mac, remote_mac});
}

bool
RdmaClient::post_send(std::vector<uint8_t> payload, uint32_t msg_id)
{
    if (tx_outstanding_.size() >= cfg_.sq_entries - 1)
        return false;
    if (payload.size() > cfg_.max_msg_bytes)
        fatal("%s: message larger than max_msg_bytes", name_.c_str());

    uint16_t wqe_index = uint16_t(sq_pi_);
    uint32_t slot = sq_pi_ % cfg_.sq_entries;
    sq_pi_++;
    tx_outstanding_.emplace_back(wqe_index, msg_id);
    messages_sent_++;

    // Trace correlation: tag fresh messages at their origin.
    uint64_t corr = 0;
    if (auto* tr = sim::Tracer::active())
        corr = tr->next_corr();

    host_.run_on_core(
        cfg_.core, cfg_.post_cost,
        [this, slot, wqe_index, msg_id, corr,
         payload = std::move(payload)]() mutable {
            uint64_t data = data_arena_ +
                            uint64_t(slot) * cfg_.max_msg_bytes;
            if (!payload.empty())
                // Intentional copy: stages the message into
                // DMA-visible host memory, as a real verbs post does.
                std::memcpy(hostmem_.raw(data, payload.size()),
                            payload.data(), payload.size());

            nic::Wqe wqe;
            wqe.opcode = nic::WqeOpcode::RdmaSend;
            wqe.signaled = true; // verbs clients poll per message
            wqe.wqe_index = wqe_index;
            wqe.addr = dma_base_ + data;
            wqe.byte_count = uint32_t(payload.size());
            wqe.msg_id = msg_id;
            wqe.corr = corr;
            uint8_t enc[nic::kWqeStride];
            wqe.encode(enc);
            std::memcpy(hostmem_.raw(sq_ring_ +
                                         uint64_t(slot) *
                                             nic::kWqeStride,
                                     nic::kWqeStride),
                        enc, nic::kWqeStride);
            sq_published_++;
            // WQE-by-MMIO for lone posts (latency optimization, §6).
            bool lone = tx_outstanding_.size() == 1 &&
                        sq_published_ == sq_pi_;
            ring_doorbell(lone ? enc : nullptr);
        });
    return true;
}

void
RdmaClient::ring_doorbell(const uint8_t* inline_wqe)
{
    if (db_inflight_) {
        db_dirty_ = true;
        return;
    }
    db_inflight_ = true;
    uint8_t db[4 + nic::kWqeStride];
    size_t db_len = inline_wqe ? 4 + nic::kWqeStride : 4;
    store_le32(db, sq_published_);
    if (inline_wqe)
        std::memcpy(db + 4, inline_wqe, nic::kWqeStride);
    fabric_.write(host_port_,
                  nic_bar_base_ + nic::NicDevice::kSqDbBase +
                      uint64_t(sqn_) * 8,
                  db, db_len, [this] {
                      db_inflight_ = false;
                      if (db_dirty_) {
                          db_dirty_ = false;
                          ring_doorbell();
                      }
                  });
}

void
RdmaClient::handle_cqe(const nic::Cqe& cqe)
{
    if (cqe.opcode == nic::CqeOpcode::TxOk && cqe.qpn == qpn_) {
        while (!tx_outstanding_.empty()) {
            auto [widx, msg_id] = tx_outstanding_.front();
            int16_t delta = int16_t(cqe.wqe_counter - widx);
            if (delta < 0)
                break;
            tx_outstanding_.pop_front();
            if (send_done_) {
                uint32_t id = msg_id;
                host_.run_on_core(cfg_.core, cfg_.poll_cost,
                                  [this, id] { send_done_(id); });
            }
            if (delta == 0)
                break;
        }
        return;
    }
    if (cqe.opcode != nic::CqeOpcode::Rx || cqe.qpn != qpn_)
        return;

    // Per-packet MPRQ completion: copy the stride into the message
    // reassembly buffer (the incremental-processing property of §6).
    uint64_t buf = rx_buffers_[cqe.rq_wqe_index % cfg_.rx_buffers];
    uint64_t addr =
        buf + (uint64_t(cqe.stride_index) << cfg_.rx_stride_shift);

    Reassembly& msg = rx_messages_[cqe.msg_id];
    if (msg.data.size() < cqe.msg_offset + cqe.byte_count)
        msg.data.resize(cqe.msg_offset + cqe.byte_count);
    hostmem_.bar_read(addr, msg.data.data() + cqe.msg_offset,
                      cqe.byte_count);
    msg.received += cqe.byte_count;

    // Recycle receive buffers in order.
    uint16_t last = uint16_t(rq_pi_ - cfg_.rx_buffers);
    uint16_t delta = uint16_t(cqe.rq_wqe_index - last);
    if (delta > 0 && delta < 0x8000) {
        rq_pi_ += delta;
        uint8_t db[4];
        store_le32(db, rq_pi_);
        fabric_.write(host_port_,
                      nic_bar_base_ + nic::NicDevice::kRqDbBase +
                          uint64_t(rqn_) * 8,
                      db, sizeof db);
    }

    if (cqe.flags & nic::kCqeRdmaLast) {
        auto it = rx_messages_.find(cqe.msg_id);
        std::vector<uint8_t> data = std::move(it->second.data);
        rx_messages_.erase(it);
        messages_received_++;
        if (msg_handler_) {
            uint32_t id = cqe.msg_id;
            host_.run_on_core(
                cfg_.core, cfg_.poll_cost,
                [this, id, data = std::move(data)]() mutable {
                    msg_handler_(id, std::move(data));
                });
        }
    }
}

} // namespace fld::driver
