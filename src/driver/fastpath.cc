#include "driver/fastpath.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "sim/trace.h"
#include "util/logging.h"

namespace fld::driver {

namespace {
constexpr uint8_t kTcpFin = 0x01;
constexpr uint8_t kTcpSyn = 0x02;
constexpr uint8_t kTcpRst = 0x04;
constexpr uint8_t kTcpPsh = 0x08;
constexpr uint8_t kTcpAck = 0x10;

/** Wrap-safe sequence comparison: a <= b in sequence space. */
bool seq_le(uint32_t a, uint32_t b) { return int32_t(a - b) <= 0; }
bool seq_lt(uint32_t a, uint32_t b) { return int32_t(a - b) < 0; }

bool is_pow2(uint32_t v) { return v >= 2 && (v & (v - 1)) == 0; }
} // namespace

const char*
to_string(ConnState s)
{
    switch (s) {
    case ConnState::Closed: return "Closed";
    case ConnState::SynSent: return "SynSent";
    case ConnState::SynRcvd: return "SynRcvd";
    case ConnState::Established: return "Established";
    case ConnState::FinSent: return "FinSent";
    case ConnState::Reset: return "Reset";
    }
    return "?";
}

// ---------------------------------------------------------------------
// DescRing
// ---------------------------------------------------------------------

DescRing::DescRing(uint32_t entries, uint32_t initial_index)
    : capacity_(entries), mask_(entries - 1), head_(initial_index),
      tail_(initial_index), slots_(entries)
{
    if (!is_pow2(entries))
        fatal("DescRing: entries (%u) must be a power of two >= 2",
              entries);
}

bool
DescRing::post(const RingDesc& d)
{
    if (full()) {
        ++stalls_;
        return false;
    }
    RingDesc& slot = slots_[head_ & mask_];
    if (slot.nic_own) {
        // Consumed but not yet released: the consumer still owns the
        // buffer this slot references.
        ++stalls_;
        return false;
    }
    slot = d;
    slot.nic_own = 1;
    ++head_;
    ++posted_;
    return true;
}

const RingDesc*
DescRing::peek() const
{
    if (empty())
        return nullptr;
    return &slots_[tail_ & mask_];
}

uint32_t
DescRing::pop(RingDesc* out)
{
    assert(!empty());
    uint32_t slot = tail_ & mask_;
    *out = slots_[slot];
    ++tail_;
    ++consumed_;
    return slot;
}

void
DescRing::release(uint32_t slot)
{
    assert(slot < capacity_);
    assert(slots_[slot].nic_own);
    slots_[slot].nic_own = 0;
    ++released_;
}

bool
DescRing::own_flags_clear() const
{
    for (const RingDesc& d : slots_)
        if (d.nic_own)
            return false;
    return true;
}

// ---------------------------------------------------------------------
// FastPath: construction, apps, lookup
// ---------------------------------------------------------------------

FastPath::FastPath(sim::EventQueue& eq, FastPathConfig cfg)
    : eq_(eq), cfg_(cfg)
{
    if (cfg_.slot_bytes < cfg_.conn.mss)
        fatal("FastPath: slot_bytes (%u) < mss (%u)", cfg_.slot_bytes,
              cfg_.conn.mss);
}

FastPath::~FastPath() = default;

uint32_t
FastPath::register_app(uint32_t tx_entries, uint32_t rx_entries,
                       NotifyFn notify)
{
    apps_.push_back(std::make_unique<AppContext>(
        tx_entries, rx_entries, cfg_.slot_bytes, std::move(notify)));
    return uint32_t(apps_.size() - 1);
}

DescRing&
FastPath::tx_ring(uint32_t app)
{
    return apps_.at(app)->tx;
}

DescRing&
FastPath::rx_ring(uint32_t app)
{
    return apps_.at(app)->rx;
}

const DescRing&
FastPath::tx_ring(uint32_t app) const
{
    return apps_.at(app)->tx;
}

const DescRing&
FastPath::rx_ring(uint32_t app) const
{
    return apps_.at(app)->rx;
}

uint8_t*
FastPath::tx_arena(uint32_t app)
{
    return apps_.at(app)->tx_arena.data();
}

const uint8_t*
FastPath::rx_arena(uint32_t app) const
{
    return apps_.at(app)->rx_arena.data();
}

std::optional<CtrlMsg>
FastPath::poll_ctrl(uint32_t app)
{
    AppContext& a = *apps_.at(app);
    if (a.ctrl.empty())
        return std::nullopt;
    CtrlMsg m = a.ctrl.front();
    a.ctrl.pop_front();
    return m;
}

Connection*
FastPath::find(uint32_t conn_id)
{
    auto it = conns_.find(conn_id);
    return it == conns_.end() ? nullptr : it->second.get();
}

const Connection*
FastPath::conn(uint32_t conn_id) const
{
    auto it = conns_.find(conn_id);
    return it == conns_.end() ? nullptr : it->second.get();
}

std::vector<uint32_t>
FastPath::conn_ids() const
{
    std::vector<uint32_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, c] : conns_)
        ids.push_back(id);
    return ids;
}

Connection*
FastPath::find_by_key(const ConnKey& key)
{
    auto it = by_key_.find(key);
    if (it == by_key_.end())
        return nullptr;
    return find(it->second);
}

Connection*
FastPath::create_conn(uint32_t app, uint64_t cookie, const ConnKey& key)
{
    if (by_key_.count(key))
        return nullptr;
    auto c = std::make_unique<Connection>();
    c->id_ = next_conn_id_++;
    c->key_ = key;
    c->app_ = app;
    c->cookie_ = cookie;
    c->cfg_ = cfg_.conn;
    Connection* raw = c.get();
    by_key_[key] = raw->id_;
    conns_[raw->id_] = std::move(c);
    return raw;
}

void
FastPath::free_conn(uint32_t conn_id)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return;
    auto key_it = by_key_.find(it->second->key_);
    if (key_it != by_key_.end() && key_it->second == conn_id)
        by_key_.erase(key_it);
    conns_.erase(it);
}

void
FastPath::set_conn_config(uint32_t conn_id, const ConnConfig& cfg)
{
    if (Connection* c = find(conn_id))
        c->cfg_ = cfg;
}

void
FastPath::post_ctrl(Connection& c, CtrlMsg::Type type)
{
    if (c.app_ == kNoApp)
        return;
    CtrlMsg m;
    m.type = type;
    m.conn_id = c.id_;
    m.cookie = c.cookie_;
    m.key = c.key_;
    apps_.at(c.app_)->ctrl.push_back(m);
    notify_app(c.app_);
}

void
FastPath::notify_app(uint32_t app)
{
    AppContext& a = *apps_.at(app);
    if (a.notify)
        a.notify();
}

bool
FastPath::quiesced() const
{
    if (!driver_backlog_.empty())
        return false;
    for (const auto& up : apps_)
        if (!up->parked.empty())
            return false;
    for (const auto& [id, c] : conns_)
        if (!c->unacked_.empty() || !c->backlog_.empty() ||
            c->timer_armed_)
            return false;
    return true;
}

// ---------------------------------------------------------------------
// Slow path: open / close / listen
// ---------------------------------------------------------------------

uint32_t
FastPath::open(uint32_t app, uint64_t cookie, uint32_t remote_ip,
               uint16_t remote_port, uint16_t local_port)
{
    ConnKey key{remote_ip, remote_port, local_port};
    Connection* c = create_conn(app, cookie, key);
    if (!c)
        return kNoConn;
    c->state_ = ConnState::SynSent;
    Connection::Segment syn;
    syn.seq = c->snd_nxt_;
    syn.syn = true;
    c->snd_nxt_ += 1;
    c->backlog_.push_back(std::move(syn));
    pump(*c);
    return c->id_;
}

uint32_t
FastPath::open_established(uint32_t app, uint64_t cookie,
                           uint32_t remote_ip, uint16_t remote_port,
                           uint16_t local_port, bool legacy)
{
    ConnKey key{remote_ip, remote_port, local_port};
    Connection* c = create_conn(app, cookie, key);
    if (!c)
        return kNoConn;
    c->state_ = ConnState::Established;
    c->legacy_ = legacy;
    return c->id_;
}

void
FastPath::listen(uint16_t local_port, uint32_t app)
{
    listeners_[local_port] = app;
}

void
FastPath::close(uint32_t conn_id)
{
    Connection* c = find(conn_id);
    if (!c)
        return;
    switch (c->state_) {
    case ConnState::Established:
        queue_fin(*c);
        break;
    case ConnState::SynSent:
    case ConnState::SynRcvd:
    case ConnState::Reset:
        // Abort: nothing to tear down gracefully.
        free_conn(conn_id);
        break;
    case ConnState::FinSent:
    case ConnState::Closed:
        break; // already closing / closed
    }
}

void
FastPath::queue_fin(Connection& c)
{
    if (c.fin_queued_)
        return;
    c.fin_queued_ = true;
    c.state_ = ConnState::FinSent;
    Connection::Segment fin;
    fin.seq = c.snd_nxt_;
    fin.fin = true;
    c.fin_seq_ = c.snd_nxt_;
    c.snd_nxt_ += 1;
    c.backlog_.push_back(std::move(fin));
    pump(c);
}

// ---------------------------------------------------------------------
// Ring consumption (TX doorbell) and stream sends
// ---------------------------------------------------------------------

void
FastPath::doorbell(uint32_t app)
{
    ++stats_.doorbells;
    AppContext& a = *apps_.at(app);
    while (!a.tx.empty()) {
        RingDesc d;
        uint32_t slot = a.tx.pop(&d);
        if (d.type == kDescData) {
            ++stats_.tx_descs;
            Connection* c = find(uint32_t(d.opaque));
            if (c && (c->state_ == ConnState::Established ||
                      c->state_ == ConnState::SynSent ||
                      c->state_ == ConnState::SynRcvd)) {
                // Record before enqueueing: a harness tx hook may
                // complete the exchange synchronously.
                c->tx_records_.push_back(
                    {c->snd_nxt_ + d.len, d.len, d.tag,
                     (d.flags & kDescFlagTxTag) != 0});
                enqueue_stream(*c, a.tx_arena.data() + d.addr, d.len,
                               (d.flags & kDescFlagPush) != 0);
            }
        }
        // The payload was copied into segments (or the descriptor was
        // dropped): the slot and its buffer go back to the app.
        a.tx.release(slot);
    }
}

size_t
FastPath::stream_send(uint32_t conn_id, const uint8_t* data, size_t len)
{
    Connection* c = find(conn_id);
    if (!c)
        return 0;
    if (c->app_ != kNoApp)
        c->tx_records_.push_back(
            {c->snd_nxt_ + uint32_t(len), uint32_t(len), 0, false});
    enqueue_stream(*c, data, len, /*push=*/true);
    return len;
}

void
FastPath::enqueue_stream(Connection& c, const uint8_t* data, size_t len,
                         bool push)
{
    // Slice the stream at MSS boundaries up front; the window decides
    // when each slice actually leaves.
    for (size_t off = 0; off < len; off += c.cfg_.mss) {
        Connection::Segment seg;
        seg.seq = c.snd_nxt_;
        size_t n = std::min<size_t>(c.cfg_.mss, len - off);
        // Intentional copy: each segment owns its bytes so it can be
        // retransmitted after the source buffer is reused.
        seg.payload.assign(data + off, data + off + n);
        seg.push = push && off + n == len;
        c.snd_nxt_ += uint32_t(n);
        c.backlog_.push_back(std::move(seg));
    }
    c.bytes_streamed_ += len;
    pump(c);
}

// ---------------------------------------------------------------------
// TX machinery
// ---------------------------------------------------------------------

void
FastPath::pump(Connection& c)
{
    if (c.state_ == ConnState::Reset || c.state_ == ConnState::Closed)
        return;
    if (!arp_cache_.count(c.key_.remote_ip)) {
        if (!c.backlog_.empty())
            maybe_send_arp(c.key_.remote_ip);
        return;
    }
    while (!c.backlog_.empty() &&
           c.unacked_.size() < c.cfg_.window_segments) {
        // Data only flows once the handshake is done; SYN segments
        // (and the SYN-ACK) go out in any state.
        const Connection::Segment& front = c.backlog_.front();
        if (!front.syn && c.state_ != ConnState::Established &&
            c.state_ != ConnState::FinSent)
            break;
        Connection::Segment seg = std::move(c.backlog_.front());
        c.backlog_.pop_front();
        transmit_segment(c, seg);
        ++c.segments_sent_;
        ++stats_.segments_sent;
        c.unacked_.push_back(std::move(seg));
    }
    if (!c.unacked_.empty() && !c.timer_armed_)
        arm_timer(c);
}

void
FastPath::transmit_segment(Connection& c, const Connection::Segment& s)
{
    uint8_t flags;
    uint32_t ack;
    if (s.syn) {
        // Client SYN carries no ACK; the SYN-ACK (irs known) does.
        flags = kTcpSyn | (c.rcv_nxt_ ? kTcpAck : 0);
        ack = c.rcv_nxt_;
    } else {
        flags = kTcpAck;
        if (s.fin)
            flags |= kTcpFin;
        if (s.push)
            flags |= kTcpPsh;
        ack = c.rcv_nxt_;
    }
    net::Packet pkt =
        net::PacketBuilder()
            .eth(cfg_.mac, arp_cache_.at(c.key_.remote_ip))
            .ipv4(cfg_.ip, c.key_.remote_ip, net::kIpProtoTcp, ip_id_++)
            .tcp(c.key_.local_port, c.key_.remote_port, s.seq, ack,
                 flags)
            .payload(s.payload)
            .build();
    emit(std::move(pkt));
}

void
FastPath::send_pure_ack(Connection& c)
{
    if (!arp_cache_.count(c.key_.remote_ip))
        return; // nothing received a frame from yet; cannot address it
    ++stats_.pure_acks_sent;
    net::Packet pkt =
        net::PacketBuilder()
            .eth(cfg_.mac, arp_cache_.at(c.key_.remote_ip))
            .ipv4(cfg_.ip, c.key_.remote_ip, net::kIpProtoTcp, ip_id_++)
            .tcp(c.key_.local_port, c.key_.remote_port, c.snd_nxt_,
                 c.rcv_nxt_, kTcpAck)
            .build();
    emit(std::move(pkt));
}

void
FastPath::emit(net::Packet&& frame)
{
    if (!tx_)
        fatal("FastPath: tx hook not set");
    // Preserve FIFO order: while earlier frames wait on the driver,
    // new ones queue behind them.
    if (driver_backlog_.empty() && tx_(std::move(frame))) {
        ++stats_.frames_tx;
        return;
    }
    // CpuDriver::send / FlexDriver::tx reject without consuming, so
    // the frame is still intact here.
    ++stats_.driver_backpressure;
    driver_backlog_.push_back(std::move(frame));
    if (!retry_armed_) {
        retry_armed_ = true;
        eq_.schedule_in(cfg_.tx_retry_delay,
                        [this] { drain_driver_backlog(); });
    }
}

void
FastPath::drain_driver_backlog()
{
    retry_armed_ = false;
    while (!driver_backlog_.empty()) {
        if (!tx_ || !tx_(std::move(driver_backlog_.front()))) {
            if (!retry_armed_) {
                retry_armed_ = true;
                eq_.schedule_in(cfg_.tx_retry_delay,
                                [this] { drain_driver_backlog(); });
            }
            return;
        }
        ++stats_.frames_tx;
        driver_backlog_.pop_front();
    }
}

// ---------------------------------------------------------------------
// Timers / reset / close completion
// ---------------------------------------------------------------------

void
FastPath::arm_timer(Connection& c)
{
    c.timer_armed_ = true;
    uint64_t gen = ++c.timer_gen_;
    uint32_t id = c.id_;
    eq_.schedule_in(c.cfg_.rto,
                    [this, id, gen] { on_timeout(id, gen); });
}

void
FastPath::cancel_timer(Connection& c)
{
    ++c.timer_gen_;
    c.timer_armed_ = false;
}

void
FastPath::on_timeout(uint32_t conn_id, uint64_t generation)
{
    Connection* c = find(conn_id);
    if (!c)
        return; // connection freed while the timer was in flight
    if (generation != c->timer_gen_ || !c->timer_armed_)
        return; // an ACK (or a newer arm) voided this timer
    c->timer_armed_ = false;
    if (c->unacked_.empty())
        return;
    if (++c->retries_ > c->cfg_.max_retries) {
        reset_conn(*c);
        return;
    }
    // Go-back-N: resend the entire unacknowledged window.
    for (const Connection::Segment& seg : c->unacked_) {
        transmit_segment(*c, seg);
        ++c->retransmits_;
        ++stats_.retransmits;
    }
    if (auto* tr = sim::Tracer::active())
        tr->emit(eq_.now(), sim::TraceEventKind::Retransmit, "fastpath",
                 "gbn", 0, 0, c->id_, uint32_t(c->unacked_.size()));
    arm_timer(*c);
}

void
FastPath::reset_conn(Connection& c)
{
    ++c.resets_;
    ++stats_.conns_reset;
    c.backlog_.clear();
    c.unacked_.clear();
    c.tx_records_.clear();
    c.retries_ = 0;
    cancel_timer(c);
    if (c.legacy_)
        return; // single-connection mode stays usable after a reset
    c.state_ = ConnState::Reset;
    post_ctrl(c, CtrlMsg::Type::Reset);
}

void
FastPath::maybe_finish_close(Connection& c)
{
    if (c.state_ != ConnState::FinSent)
        return;
    if (c.fin_acked_ && c.peer_fin_rcvd_)
        enter_closed(c);
}

void
FastPath::enter_closed(Connection& c)
{
    c.state_ = ConnState::Closed;
    cancel_timer(c);
    c.backlog_.clear();
    c.unacked_.clear();
    ++stats_.conns_closed;
    post_ctrl(c, CtrlMsg::Type::Closed);
    // Time-wait: keep the demux entry so a peer retransmitting its
    // FIN (our final ACK may have been lost) still gets re-ACKed.
    uint32_t id = c.id_;
    sim::TimePs linger = c.cfg_.rto * cfg_.time_wait_rtos;
    eq_.schedule_in(linger, [this, id] {
        Connection* conn = find(id);
        if (conn && conn->state_ == ConnState::Closed)
            free_conn(id);
    });
}

// ---------------------------------------------------------------------
// RX machinery
// ---------------------------------------------------------------------

void
FastPath::on_rx(net::Packet&& pkt)
{
    ++stats_.frames_rx;
    if (pkt.size() < net::kEthHeaderLen)
        return;
    net::EthHeader eth = net::EthHeader::decode(pkt.bytes());
    if (eth.ethertype == net::kEtherTypeArp) {
        on_arp(pkt);
        return;
    }
    net::ParsedPacket pp = net::parse(pkt);
    if (pp.tcp && pp.ipv4)
        on_tcp(pp, pkt);
}

void
FastPath::on_arp(const net::Packet& pkt)
{
    auto arp = net::ArpHeader::decode(pkt.bytes() + net::kEthHeaderLen,
                                      pkt.size() - net::kEthHeaderLen);
    if (!arp)
        return;
    if (arp->oper == net::ArpHeader::kReply) {
        arp_cache_[arp->sender_ip] = arp->sender_mac;
        arp_pending_.erase(arp->sender_ip);
        on_arp_resolved(arp->sender_ip);
        return;
    }
    if (arp->oper == net::ArpHeader::kRequest && cfg_.arp_responder &&
        arp->target_ip == cfg_.ip) {
        // Learn the asker (we are about to talk back to it anyway).
        arp_cache_[arp->sender_ip] = arp->sender_mac;
        ++stats_.arp_replies_sent;

        net::EthHeader eth;
        eth.src = cfg_.mac;
        eth.dst = arp->sender_mac;
        eth.ethertype = net::kEtherTypeArp;

        net::ArpHeader reply;
        reply.oper = net::ArpHeader::kReply;
        reply.sender_mac = cfg_.mac;
        reply.sender_ip = cfg_.ip;
        reply.target_mac = arp->sender_mac;
        reply.target_ip = arp->sender_ip;

        net::Packet out;
        out.data.resize(net::kEthHeaderLen + net::kArpLen);
        eth.encode(out.bytes());
        reply.encode(out.bytes() + net::kEthHeaderLen);
        emit(std::move(out));
        on_arp_resolved(arp->sender_ip);
    }
}

void
FastPath::add_arp_entry(uint32_t ip, const net::MacAddr& mac)
{
    arp_cache_[ip] = mac;
    arp_pending_.erase(ip);
    on_arp_resolved(ip); // release anything parked on this next hop
}

void
FastPath::maybe_send_arp(uint32_t next_hop_ip)
{
    if (arp_pending_.count(next_hop_ip))
        return; // request already on the wire for this next hop
    arp_pending_[next_hop_ip] = true;
    ++stats_.arp_requests;

    net::EthHeader eth;
    eth.src = cfg_.mac;
    eth.dst = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
    eth.ethertype = net::kEtherTypeArp;

    net::ArpHeader arp;
    arp.oper = net::ArpHeader::kRequest;
    arp.sender_mac = cfg_.mac;
    arp.sender_ip = cfg_.ip;
    arp.target_ip = next_hop_ip;

    net::Packet pkt;
    pkt.data.resize(net::kEthHeaderLen + net::kArpLen);
    eth.encode(pkt.bytes());
    arp.encode(pkt.bytes() + net::kEthHeaderLen);
    emit(std::move(pkt));
}

void
FastPath::on_arp_resolved(uint32_t ip)
{
    // Only connections routing to this next hop were parked on it;
    // everyone else never noticed (per-next-hop isolation).
    for (auto& [id, c] : conns_)
        if (c->key_.remote_ip == ip)
            pump(*c);
}

void
FastPath::on_tcp(const net::ParsedPacket& pp, const net::Packet& pkt)
{
    ++stats_.segments_received;
    const net::TcpHeader& tcp = *pp.tcp;
    ConnKey key{pp.ipv4->src, tcp.sport, tcp.dport};
    Connection* c = find_by_key(key);

    if (!c) {
        // Passive open: SYN for a listening port.
        if ((tcp.flags & kTcpSyn) && !(tcp.flags & kTcpAck)) {
            auto lit = listeners_.find(tcp.dport);
            if (lit != listeners_.end()) {
                Connection* nc = create_conn(lit->second, 0, key);
                if (!nc)
                    return;
                nc->cookie_ = nc->id_;
                nc->state_ = ConnState::SynRcvd;
                nc->rcv_nxt_ = tcp.seq + 1;
                // Learn the peer's MAC from the frame itself, the way
                // a real stack primes its neighbor table from traffic.
                if (pp.eth)
                    arp_cache_[key.remote_ip] = pp.eth->src;
                Connection::Segment synack;
                synack.seq = nc->snd_nxt_;
                synack.syn = true;
                nc->snd_nxt_ += 1;
                nc->backlog_.push_back(std::move(synack));
                pump(*nc);
                return;
            }
        }
        ++stats_.stray_segments;
        return;
    }

    if (tcp.flags & kTcpRst) {
        if (c->state_ != ConnState::Closed &&
            c->state_ != ConnState::Reset)
            reset_conn(*c);
        return;
    }

    switch (c->state_) {
    case ConnState::SynSent:
        if ((tcp.flags & kTcpSyn) && (tcp.flags & kTcpAck)) {
            c->rcv_nxt_ = tcp.seq + 1;
            handle_ack(*c, tcp.ack);
            bool syn_outstanding = false;
            for (const auto& s : c->unacked_)
                syn_outstanding |= s.syn;
            for (const auto& s : c->backlog_)
                syn_outstanding |= s.syn;
            if (c->state_ == ConnState::SynSent && !syn_outstanding) {
                // Our SYN is covered: handshake done.
                c->state_ = ConnState::Established;
                ++stats_.conns_opened;
                post_ctrl(*c, CtrlMsg::Type::Opened);
                send_pure_ack(*c);
                pump(*c);
            }
        }
        break;

    case ConnState::SynRcvd:
        if (tcp.flags & kTcpAck) {
            handle_ack(*c, tcp.ack);
            if (c->state_ == ConnState::SynRcvd &&
                c->unacked_.empty()) {
                // Our SYN-ACK is covered: connection established.
                c->state_ = ConnState::Established;
                ++stats_.conns_accepted;
                post_ctrl(*c, CtrlMsg::Type::Accepted);
            }
        }
        if (c->state_ == ConnState::Established) {
            // The completing segment may already carry data (the pure
            // handshake ACK was lost and the first data segment both
            // completes and feeds the connection).
            if (pp.payload_len > 0)
                handle_data(*c, pp, pkt);
            if (tcp.flags & kTcpFin)
                handle_fin(*c, tcp.seq + uint32_t(pp.payload_len));
        }
        break;

    case ConnState::Established:
    case ConnState::FinSent:
        if (tcp.flags & kTcpSyn) {
            // Retransmitted SYN-ACK: our handshake ACK was lost.
            // Re-ACK so the peer can leave SynRcvd.
            send_pure_ack(*c);
            break;
        }
        if (tcp.flags & kTcpAck)
            handle_ack(*c, tcp.ack);
        if (pp.payload_len > 0)
            handle_data(*c, pp, pkt);
        if (tcp.flags & kTcpFin)
            handle_fin(*c, tcp.seq + uint32_t(pp.payload_len));
        break;

    case ConnState::Closed:
        // Time-wait: the peer retransmitted (our last ACK was lost);
        // re-ACK so it can finish.
        send_pure_ack(*c);
        break;

    case ConnState::Reset:
        break;
    }
}

void
FastPath::handle_ack(Connection& c, uint32_t ack)
{
    // Cumulative ACK: everything below `ack` is delivered.
    if (seq_le(ack, c.snd_una_))
        return; // duplicate or stale
    if (seq_lt(c.snd_nxt_, ack))
        ack = c.snd_nxt_; // never ack beyond what was ever queued
    c.snd_una_ = ack;
    c.retries_ = 0;
    while (!c.unacked_.empty() &&
           seq_le(c.unacked_.front().seq +
                      c.unacked_.front().seq_len(),
                  ack)) {
        c.bytes_acked_ += c.unacked_.front().payload.size();
        c.unacked_.pop_front();
    }
    if (c.fin_queued_ && seq_le(c.fin_seq_ + 1, ack))
        c.fin_acked_ = true;

    // Progress voids any armed timer; re-arm below if data remains.
    cancel_timer(c);
    report_tx_done(c);
    maybe_finish_close(c);
    pump(c);
}

void
FastPath::handle_data(Connection& c, const net::ParsedPacket& pp,
                      const net::Packet& pkt)
{
    uint32_t seq = pp.tcp->seq;
    uint32_t len = uint32_t(pp.payload_len);
    if (seq == c.rcv_nxt_) {
        c.rcv_nxt_ += len;
        deliver_data(c, pkt.bytes() + pp.payload_offset, len);
        send_pure_ack(c);
    } else if (seq_lt(seq, c.rcv_nxt_)) {
        // Retransmit of delivered data: re-ACK so the sender advances.
        ++c.dup_segments_;
        ++stats_.dup_segments;
        send_pure_ack(c);
    } else {
        // Hole before this segment: go-back-N receivers drop and send
        // a duplicate ACK for the missing byte.
        ++c.ooo_segments_;
        ++stats_.ooo_segments;
        send_pure_ack(c);
    }
}

void
FastPath::handle_fin(Connection& c, uint32_t fin_seq)
{
    if (fin_seq == c.rcv_nxt_) {
        c.rcv_nxt_ += 1;
        c.peer_fin_rcvd_ = true;
        send_pure_ack(c);
        if (c.state_ == ConnState::Established &&
            c.auto_close_peer_fin_) {
            // Passive close: our FIN follows once queued data drains.
            queue_fin(c);
        }
        maybe_finish_close(c);
    } else if (seq_lt(fin_seq, c.rcv_nxt_)) {
        ++c.dup_segments_;
        ++stats_.dup_segments;
        send_pure_ack(c);
    } else {
        ++c.ooo_segments_;
        ++stats_.ooo_segments;
        send_pure_ack(c);
    }
}

// ---------------------------------------------------------------------
// RX-ring delivery
// ---------------------------------------------------------------------

void
FastPath::deliver_data(Connection& c, const uint8_t* data, size_t len)
{
    c.bytes_delivered_ += len;
    if (c.app_ == kNoApp)
        return; // ring-less consumer (wrapper mode): counted only
    ParkedRx item;
    item.conn_id = c.id_;
    item.type = kDescData;
    item.bytes.assign(data, data + len);
    park_or_post(c.app_, std::move(item));
}

void
FastPath::report_tx_done(Connection& c)
{
    if (c.app_ == kNoApp) {
        c.tx_records_.clear();
        return;
    }
    // Coalesce plain records into one aggregate bump, but flush the
    // pending aggregate and emit a dedicated completion whenever a
    // tagged record retires, so the tag's position in the delivery
    // order is exact.
    auto emit_bump = [&](uint32_t bytes, uint32_t tag, bool tagged) {
        ParkedRx item;
        item.conn_id = c.id_;
        item.type = kDescTxDone;
        item.len = bytes;
        item.tag = tag;
        item.tagged = tagged;
        park_or_post(c.app_, std::move(item));
    };
    uint32_t bytes = 0;
    while (!c.tx_records_.empty() &&
           seq_le(c.tx_records_.front().end_seq, c.snd_una_)) {
        const Connection::TxRecord& rec = c.tx_records_.front();
        if (rec.tagged) {
            if (bytes)
                emit_bump(bytes, 0, false);
            bytes = 0;
            emit_bump(rec.bytes, rec.tag, true);
        } else {
            bytes += rec.bytes;
        }
        c.tx_records_.pop_front();
    }
    if (bytes)
        emit_bump(bytes, 0, false);
}

void
FastPath::park_or_post(uint32_t app, ParkedRx&& item)
{
    AppContext& a = *apps_.at(app);
    // FIFO per app: once anything is parked, everything parks behind
    // it, or deliveries would reorder.
    if (!a.parked.empty() || !try_post_rx(app, item)) {
        ++stats_.rx_ring_stalls;
        a.parked.push_back(std::move(item));
    }
}

bool
FastPath::try_post_rx(uint32_t app, const ParkedRx& item)
{
    AppContext& a = *apps_.at(app);
    RingDesc d;
    d.opaque = item.conn_id;
    d.type = item.type;
    if (item.type == kDescData) {
        uint32_t slot = a.rx.next_slot();
        d.addr = uint64_t(slot) * cfg_.slot_bytes;
        d.len = uint32_t(item.bytes.size());
        if (!a.rx.post(d))
            return false;
        std::memcpy(a.rx_arena.data() + d.addr, item.bytes.data(),
                    item.bytes.size());
        ++stats_.rx_descs;
    } else {
        d.len = item.len;
        if (item.tagged) {
            d.tag = item.tag;
            d.flags = kDescFlagTxTag;
        }
        if (!a.rx.post(d))
            return false;
        ++stats_.tx_done_descs;
        if (item.tagged)
            ++stats_.tagged_tx_done_descs;
    }
    notify_app(app);
    return true;
}

void
FastPath::rx_doorbell(uint32_t app)
{
    flush_parked(app);
}

void
FastPath::flush_parked(uint32_t app)
{
    AppContext& a = *apps_.at(app);
    while (!a.parked.empty() && try_post_rx(app, a.parked.front()))
        a.parked.pop_front();
}

} // namespace fld::driver
