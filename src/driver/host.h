/**
 * @file
 * Host CPU model.
 *
 * Cores are serial servers with per-packet/per-byte processing costs
 * and rare OS-interference delays. This is the substitution for the
 * paper's Haswell/CentOS hosts: absolute costs are calibrated against
 * numbers the paper reports (see HostConfig comments), and the
 * experiments depend on the *mechanisms* (single-core bottlenecks,
 * tail jitter), not on the exact constants.
 */
#ifndef FLD_DRIVER_HOST_H
#define FLD_DRIVER_HOST_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "util/rng.h"

namespace fld::driver {

struct HostConfig
{
    uint32_t cores = 16;

    /**
     * DPDK-style driver cost per packet on one side (rx or tx).
     * Calibrated so a single-core testpmd echo forwards ~9.6 Mpps on
     * the IMC mix (§8.1.1): rx + tx ~ 104 ns/packet.
     */
    sim::TimePs rx_packet_cost = sim::nanoseconds(52);
    sim::TimePs tx_packet_cost = sim::nanoseconds(52);

    /** Copy/checksum cost per byte (software checksum paths). */
    sim::TimePs per_byte_cost = 0;

    /**
     * OS interference: with probability jitter_prob a work item is
     * delayed by jitter_min plus an exponential tail. Calibrated to
     * Table 6's CPU 99.9th percentile (11.18 us vs a 2.34 us median).
     */
    double jitter_prob = 0.0015;
    sim::TimePs jitter_min = sim::microseconds(4);
    sim::TimePs jitter_mean_extra = sim::microseconds(3);

    uint64_t seed = 12345;
};

/** A host with @c cores serial cores. */
class HostNode
{
  public:
    HostNode(std::string name, sim::EventQueue& eq, HostConfig cfg = {});

    const HostConfig& config() const { return cfg_; }
    uint32_t cores() const { return cfg_.cores; }

    /**
     * Run @p cost of work on @p core, then call @p fn. Work on one
     * core is strictly serial; OS jitter may inflate the latency.
     * The callable goes straight into the event queue's node pool
     * (no std::function wrapper, no heap allocation on the hot path).
     */
    template <typename F>
    void run_on_core(uint32_t core, sim::TimePs cost, F&& fn)
    {
        eq_.schedule_at(core_start(core, cost),
                        std::forward<F>(fn));
    }

    /** When the core becomes free (>= now when busy). */
    sim::TimePs core_free_at(uint32_t core) const
    {
        return busy_until_[core];
    }

    /** Busy time accumulated per core (utilization accounting). */
    sim::TimePs core_busy_time(uint32_t core) const
    {
        return busy_time_[core];
    }

    /** Deterministic processing cost of a packet of @p bytes. */
    sim::TimePs packet_cost(size_t bytes, bool tx) const
    {
        return (tx ? cfg_.tx_packet_cost : cfg_.rx_packet_cost) +
               sim::TimePs(bytes) * cfg_.per_byte_cost;
    }

    const std::string& name() const { return name_; }

  private:
    /** Book the serial-core time (plus OS jitter) for one work item;
     *  returns the completion timestamp the callback fires at. */
    sim::TimePs core_start(uint32_t core, sim::TimePs cost);

    std::string name_;
    sim::EventQueue& eq_;
    HostConfig cfg_;
    std::vector<sim::TimePs> busy_until_;
    std::vector<sim::TimePs> busy_time_;
    Rng rng_;
};

} // namespace fld::driver

#endif // FLD_DRIVER_HOST_H
