#include "driver/cpu_driver.h"

#include <cstring>

#include "sim/trace.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace fld::driver {

namespace {
constexpr uint32_t kTxSlotBytes = 2048; ///< per-WQE payload slot
} // namespace

CpuDriver::CpuDriver(std::string name, sim::EventQueue& eq,
                     pcie::PcieFabric& fabric, pcie::PortId host_port,
                     pcie::MemoryEndpoint& hostmem, uint64_t arena_base,
                     uint64_t arena_size, nic::NicDevice& nic,
                     uint64_t nic_bar_base, HostNode& host,
                     nic::VportId vport, CpuDriverConfig cfg,
                     uint64_t mem_dma_base)
    : name_(std::move(name)), eq_(eq), fabric_(fabric),
      host_port_(host_port), hostmem_(hostmem),
      arena_next_(arena_base), arena_end_(arena_base + arena_size),
      dma_base_(mem_dma_base), nic_(nic),
      nic_bar_base_(nic_bar_base), host_(host), vport_(vport),
      cfg_(cfg)
{
    // One shared completion queue, polled by the driver.
    uint64_t cq_ring =
        alloc(uint64_t(cfg_.cq_entries) * nic::kCqeStride);
    cqn_ = nic_.create_cq({dma_base_ + cq_ring, cfg_.cq_entries});
    hostmem_.add_watch(
        cq_ring, uint64_t(cfg_.cq_entries) * nic::kCqeStride,
        [this](uint64_t addr, size_t len) {
            if (len != nic::kCqeStride)
                return;
            uint8_t buf[nic::kCqeStride];
            hostmem_.bar_read(addr, buf, nic::kCqeStride);
            handle_cqe(nic::Cqe::decode(buf));
        });

    queues_.resize(cfg_.num_queues);
    for (uint32_t q = 0; q < cfg_.num_queues; ++q) {
        Queue& qu = queues_[q];
        qu.core = cfg_.first_core + q;

        qu.sq_ring = alloc(uint64_t(cfg_.sq_entries) * nic::kWqeStride);
        qu.sqn = nic_.create_sq({dma_base_ + qu.sq_ring,
                                 cfg_.sq_entries, cqn_, vport_, 0.0});
        qu.data_arena =
            alloc(uint64_t(cfg_.sq_entries) * kTxSlotBytes, 4096);

        qu.rq_ring =
            alloc(uint64_t(cfg_.rq_entries) * nic::kRxDescStride);
        qu.rqn = nic_.create_rq(
            {dma_base_ + qu.rq_ring, cfg_.rq_entries, cqn_});

        // Post the receive buffers. Ring slot i permanently maps to
        // buffer i % rx_buffers; the driver recycles in order.
        uint32_t buf_bytes = uint32_t(cfg_.rx_strides)
                             << cfg_.rx_stride_shift;
        for (uint32_t i = 0; i < cfg_.rx_buffers; ++i)
            qu.rx_buffers.push_back(alloc(buf_bytes, 4096));
        for (uint32_t i = 0; i < cfg_.rq_entries; ++i) {
            nic::RxDesc d;
            d.addr = dma_base_ + qu.rx_buffers[i % cfg_.rx_buffers];
            d.byte_count = buf_bytes;
            d.stride_count = cfg_.rx_strides;
            d.stride_shift = cfg_.rx_stride_shift;
            uint8_t enc[nic::kRxDescStride];
            d.encode(enc);
            std::memcpy(
                hostmem_.raw(qu.rq_ring +
                                 uint64_t(i) * nic::kRxDescStride,
                             nic::kRxDescStride),
                enc, nic::kRxDescStride);
        }
        qu.rq_pi = cfg_.rx_buffers;
        qu.rq_pi_published = qu.rq_pi;
        uint8_t db[4];
        store_le32(db, qu.rq_pi);
        fabric_.write(host_port_,
                      nic_bar_base_ + nic::NicDevice::kRqDbBase +
                          uint64_t(qu.rqn) * 8,
                      db, sizeof db);
    }
}

uint64_t
CpuDriver::alloc(uint64_t size, uint64_t align)
{
    arena_next_ = (arena_next_ + align - 1) & ~(align - 1);
    uint64_t addr = arena_next_;
    arena_next_ += size;
    if (arena_next_ > arena_end_)
        fatal("%s: host arena exhausted", name_.c_str());
    return addr;
}

std::vector<uint32_t>
CpuDriver::all_rqns() const
{
    std::vector<uint32_t> out;
    for (const auto& q : queues_)
        out.push_back(q.rqn);
    return out;
}

bool
CpuDriver::send(uint32_t q, net::Packet&& frame)
{
    Queue& qu = queues_[q];
    if (qu.tx_outstanding.size() >= cfg_.sq_entries - 1) {
        stats_.tx_backpressured++;
        return false;
    }
    if (frame.size() > kTxSlotBytes)
        fatal("%s: frame larger than tx slot", name_.c_str());

    uint16_t wqe_index = uint16_t(qu.sq_pi);
    uint32_t slot = qu.sq_pi % cfg_.sq_entries;
    qu.sq_pi++;
    qu.unsignaled++;
    bool signal = qu.unsignaled >= cfg_.signal_interval ||
                  qu.tx_outstanding.empty();
    if (signal)
        qu.unsignaled = 0;
    qu.tx_outstanding.push_back(wqe_index);

    stats_.tx_packets++;
    stats_.tx_bytes += frame.size();

    // Trace correlation: tag fresh packets at their origin.
    if (frame.meta.corr == 0) {
        if (auto* tr = sim::Tracer::active())
            frame.meta.corr = tr->next_corr();
    }

    // The driver's per-packet CPU work (descriptor write + doorbell).
    host_.run_on_core(
        qu.core, host_.packet_cost(frame.size(), /*tx=*/true),
        [this, q, slot, wqe_index, signal,
         frame = std::move(frame)]() mutable {
            Queue& qu2 = queues_[q];
            uint64_t data = qu2.data_arena +
                            uint64_t(slot) * kTxSlotBytes;
            // Intentional copy: stages the frame into DMA-visible
            // host memory, the data movement a real driver performs.
            std::memcpy(hostmem_.raw(data, frame.size()),
                        frame.bytes(), frame.size());

            nic::Wqe wqe;
            wqe.opcode = nic::WqeOpcode::EthSend;
            wqe.signaled = signal;
            wqe.wqe_index = wqe_index;
            wqe.addr = dma_base_ + data;
            wqe.byte_count = uint32_t(frame.size());
            wqe.flow_tag = frame.meta.flow_tag;
            wqe.next_table = frame.meta.next_table;
            wqe.corr = frame.meta.corr;
            uint8_t enc[nic::kWqeStride];
            wqe.encode(enc);
            std::memcpy(hostmem_.raw(qu2.sq_ring +
                                         uint64_t(slot) *
                                             nic::kWqeStride,
                                     nic::kWqeStride),
                        enc, nic::kWqeStride);
            // The doorbell must only advertise WQEs already visible
            // in memory; ring writes retire in order on this core.
            qu2.sq_published++;
            // WQE-by-MMIO for lone posts (latency optimization, §6).
            bool lone = cfg_.wqe_by_mmio &&
                        qu2.tx_outstanding.size() == 1 &&
                        qu2.sq_published == qu2.sq_pi;
            ring_sq_doorbell(q, lone ? enc : nullptr);
        });
    return true;
}

void
CpuDriver::ring_sq_doorbell(uint32_t q, const uint8_t* inline_wqe)
{
    Queue& qu = queues_[q];
    if (qu.db_inflight) {
        qu.db_dirty = true;
        return;
    }
    qu.db_inflight = true;
    uint8_t db[4 + nic::kWqeStride];
    size_t db_len = inline_wqe ? 4 + nic::kWqeStride : 4;
    store_le32(db, qu.sq_published);
    if (inline_wqe)
        std::memcpy(db + 4, inline_wqe, nic::kWqeStride);
    fabric_.write(host_port_,
                  nic_bar_base_ + nic::NicDevice::kSqDbBase +
                      uint64_t(qu.sqn) * 8,
                  db, db_len, [this, q] {
                      Queue& qu2 = queues_[q];
                      qu2.db_inflight = false;
                      if (qu2.db_dirty) {
                          qu2.db_dirty = false;
                          ring_sq_doorbell(q);
                      }
                  });
}

void
CpuDriver::handle_cqe(const nic::Cqe& cqe)
{
    if (cqe.opcode == nic::CqeOpcode::TxOk) {
        for (uint32_t q = 0; q < queues_.size(); ++q) {
            if (queues_[q].sqn != cqe.qpn)
                continue;
            Queue& qu = queues_[q];
            while (!qu.tx_outstanding.empty()) {
                int16_t delta =
                    int16_t(cqe.wqe_counter - qu.tx_outstanding.front());
                if (delta < 0)
                    break;
                qu.tx_outstanding.pop_front();
                if (delta == 0)
                    break;
            }
            return;
        }
        return;
    }
    if (cqe.opcode == nic::CqeOpcode::Rx) {
        for (uint32_t q = 0; q < queues_.size(); ++q) {
            if (queues_[q].rqn == cqe.qpn) {
                handle_rx(q, cqe);
                return;
            }
        }
    }
}

void
CpuDriver::handle_rx(uint32_t q, const nic::Cqe& cqe)
{
    Queue& qu = queues_[q];
    uint64_t buf = qu.rx_buffers[cqe.rq_wqe_index % cfg_.rx_buffers];
    uint64_t addr =
        buf + (uint64_t(cqe.stride_index) << cfg_.rx_stride_shift);

    net::Packet pkt;
    pkt.data.resize(cqe.byte_count);
    hostmem_.bar_read(addr, pkt.bytes(), cqe.byte_count);
    pkt.meta.flow_tag = cqe.flow_tag;
    pkt.meta.rss_hash = cqe.rss_hash;
    pkt.meta.l3_csum_ok = cqe.flags & nic::kCqeL3Ok;
    pkt.meta.l4_csum_ok = cqe.flags & nic::kCqeL4Ok;
    pkt.meta.tunneled = cqe.flags & nic::kCqeTunneled;
    pkt.meta.queue_id = uint16_t(q);
    pkt.meta.corr = cqe.corr;

    // In-order buffer recycling: the NIC moved past older buffers.
    static_assert(sizeof(cqe.rq_wqe_index) == 2, "wrap math");
    uint16_t last = uint16_t(qu.rq_pi - cfg_.rx_buffers);
    uint16_t delta = uint16_t(cqe.rq_wqe_index - last);
    if (delta > 0 && delta < 0x8000) {
        qu.rq_pi += delta;
        uint8_t db[4];
        store_le32(db, qu.rq_pi);
        fabric_.write(host_port_,
                      nic_bar_base_ + nic::NicDevice::kRqDbBase +
                          uint64_t(qu.rqn) * 8,
                      db, sizeof db);
    }

    // Overload shedding: bounded queueing toward the application.
    if (host_.core_free_at(qu.core) >
        eq_.now() + cfg_.max_app_backlog) {
        stats_.rx_overload_dropped++;
        return;
    }

    stats_.rx_packets++;
    stats_.rx_bytes += pkt.size();

    // Driver poll loop: per-packet CPU cost before the app sees it.
    host_.run_on_core(qu.core,
                      host_.packet_cost(pkt.size(), /*tx=*/false),
                      [this, q, pkt = std::move(pkt)]() mutable {
                          if (rx_handler_)
                              rx_handler_(q, std::move(pkt));
                      });
}

} // namespace fld::driver
