#include "model/area.h"

namespace fld::model {

const char*
support_str(Support s)
{
    switch (s) {
      case Support::Yes: return "yes";
      case Support::HostOnly: return "host-NIC only";
      case Support::No: return "no";
      default: return "N/A";
    }
}

const std::vector<ArchRow>&
table1_rows()
{
    static const std::vector<ArchRow> rows = {
        {"CPU-mediated", "VN2F [16]", "10", 5.7, 1.1, 233, 0,
         Support::Yes, Support::Yes, Support::NA},
        {"Accelerator-hosted", "Corundum [33]", "25", 66.7, 71.7, 239,
         20, Support::Yes, Support::No, Support::No},
        {"Accelerator-hosted", "Corundum [33]", "100", 62.4, 76.8, 331,
         20, Support::Yes, Support::No, Support::No},
        {"Accelerator-hosted", "StRoM [103]", "10", 92, 115, 181, 0,
         Support::Yes, Support::No, Support::Yes},
        {"Accelerator-hosted", "StRoM [103]", "100", 122, 214, 402, 0,
         Support::Yes, Support::No, Support::Yes},
        {"BITW", "NICA [28]", "40", 232, 299, 584, 0, Support::Yes,
         Support::HostOnly, Support::HostOnly},
        {"BITW", "Innova-1 shell [28]", "40", 169, 212, 152, 0,
         Support::Yes, Support::HostOnly, Support::HostOnly},
        {"FlexDriver", "FLD (this work)", "100", 62, 89, 79, 44,
         Support::Yes, Support::Yes, Support::Yes},
    };
    return rows;
}

const std::vector<ModuleArea>&
table5_rows()
{
    static const std::vector<ModuleArea> rows = {
        {"FLD", 250, 50, 66, 35, 44, 11},
        {"PCIe core", 250, 12, 23, 44, 0, 0},
        {"ZUC", 200, 38, 37, 242, 0, 6},
        {"IP defrag.", 250, 17, 16, 984, 64, 2},
        {"IoT auth.", 200, 118, 138, 293, 0, 8},
    };
    return rows;
}

const std::vector<SoftwareLoc>&
table4_rows()
{
    static const std::vector<SoftwareLoc> rows = {
        {"FLD runtime library", 3753},
        {"FLD kernel driver", 1137},
        {"FLD-E control-plane", 1554},
        {"FLD-R control-plane", 1510},
        {"FLD-R client library", 754},
        {"ZUC DPDK driver", 732},
    };
    return rows;
}

} // namespace fld::model
