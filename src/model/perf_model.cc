#include "model/perf_model.h"

#include <algorithm>

#include "nic/descriptors.h"

namespace fld::model {

double
eth_goodput_gbps(double eth_gbps, uint32_t frame_bytes)
{
    return eth_gbps * double(frame_bytes) / double(frame_bytes + 20);
}

PcieCost
echo_pcie_cost(const PerfModelParams& p, uint32_t frame_bytes)
{
    const pcie::TlpParams& tlp = p.tlp;
    PcieCost c;

    // ---- receive path (wire -> NIC -> FLD) ----
    // Packet data DMA into FLD RX SRAM.
    c.to_fld += double(tlp.write_wire_bytes(frame_bytes));
    // RX completion (64 B CQE per packet with MPRQ).
    c.to_fld += double(tlp.write_wire_bytes(nic::kCqeStride));
    // RX buffer recycle doorbell, one per MPRQ buffer.
    c.from_fld += double(tlp.write_wire_bytes(4)) /
                  double(p.rx_pkts_per_buffer);

    // ---- transmit path (FLD -> NIC -> wire) ----
    // Doorbell MMIO (coalesced over db_batch packets).
    c.from_fld += double(tlp.write_wire_bytes(4)) / double(p.db_batch);
    // Descriptor ring read: request toward FLD, WQE completions back,
    // amortized over the fetch batch.
    uint64_t batch_bytes = uint64_t(p.wqe_batch) * nic::kWqeStride;
    c.to_fld += double(tlp.read_req_wire_bytes(batch_bytes)) /
                double(p.wqe_batch);
    c.from_fld += double(tlp.read_cpl_wire_bytes(batch_bytes)) /
                  double(p.wqe_batch);
    // Payload gather: request toward FLD, data back.
    c.to_fld += double(tlp.read_req_wire_bytes(frame_bytes));
    c.from_fld += double(tlp.read_cpl_wire_bytes(frame_bytes));
    // TX completion (selective signalling).
    c.to_fld += double(tlp.write_wire_bytes(nic::kCqeStride)) /
                double(p.cqe_interval);
    return c;
}

double
fld_pcie_bound_gbps(const PerfModelParams& p, uint32_t frame_bytes)
{
    PcieCost c = echo_pcie_cost(p, frame_bytes);
    double worst = std::max(c.to_fld, c.from_fld);
    return p.pcie_gbps * double(frame_bytes) / worst;
}

double
fld_expected_gbps(const PerfModelParams& p, uint32_t frame_bytes)
{
    return std::min(fld_pcie_bound_gbps(p, frame_bytes),
                    eth_goodput_gbps(p.eth_gbps, frame_bytes));
}

double
hostmem_accel_bound_gbps(const PerfModelParams& p, uint32_t frame_bytes)
{
    const pcie::TlpParams& tlp = p.tlp;
    // Toward host memory: the NIC's packet-data and CQE writes, the
    // accelerator's result write, and the read-request TLPs.
    double into_host =
        double(tlp.write_wire_bytes(frame_bytes)) +        // NIC rx
        double(tlp.write_wire_bytes(nic::kCqeStride)) +    // rx CQE
        double(tlp.write_wire_bytes(frame_bytes)) +        // accel tx
        double(tlp.read_req_wire_bytes(frame_bytes)) * 2 + // both reads
        double(tlp.read_req_wire_bytes(
            uint64_t(p.wqe_batch) * nic::kWqeStride)) /
            double(p.wqe_batch);
    // From host memory: the accelerator's read of the received packet
    // and the NIC's gather of the result + descriptors.
    double from_host =
        double(tlp.read_cpl_wire_bytes(frame_bytes)) * 2 +
        double(tlp.read_cpl_wire_bytes(
            uint64_t(p.wqe_batch) * nic::kWqeStride)) /
            double(p.wqe_batch) +
        double(tlp.write_wire_bytes(nic::kCqeStride)) /
            double(p.cqe_interval);
    double worst = std::max(into_host, from_host);
    return std::min(p.pcie_gbps * double(frame_bytes) / worst,
                    eth_goodput_gbps(p.eth_gbps, frame_bytes));
}

double
zuc_expected_gbps(const PerfModelParams& p, uint32_t request_bytes,
                  uint32_t app_header_bytes, uint32_t rdma_mtu)
{
    // Wire cost per message: app header + payload split into MTU
    // segments, each with Ethernet + RoCE-style headers + IFG.
    uint32_t msg = request_bytes + app_header_bytes;
    uint32_t segments = std::max(1u, (msg + rdma_mtu - 1) / rdma_mtu);
    double per_seg_hdr = 14.0 /*eth*/ + 20.0 /*transport*/ +
                         20.0 /*preamble+IFG*/;
    double wire_per_msg = double(msg) + double(segments) * per_seg_hdr;
    // ACK in the reverse direction shares the link with the opposite
    // data stream; requests and responses are symmetric, so each
    // direction carries one message stream plus the other's ACKs.
    double ack_bytes = (14.0 + 20.0 + 20.0) /
                       16.0 /* coalesced */ * segments;
    double eth_bound = p.eth_gbps * double(request_bytes) /
                       (wire_per_msg + ack_bytes);

    // PCIe side: the FLD link moves the message twice (in and out)
    // with descriptor/completion overheads similar to the echo path.
    PcieCost c = echo_pcie_cost(p, msg);
    double pcie_bound = p.pcie_gbps * double(request_bytes) /
                        std::max(c.to_fld, c.from_fld);
    return std::min(eth_bound, pcie_bound);
}

} // namespace fld::model
