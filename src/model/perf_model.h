/**
 * @file
 * FLD performance model (§8.1): per-packet PCIe overhead accounting
 * and the derived throughput upper bounds of Figure 7a, plus the
 * model lines of Figures 7b and 8a.
 *
 * For every packet FLD exchanges with the NIC, control traffic rides
 * the PCIe link alongside the payload: descriptor reads (request +
 * completion TLPs), completion-queue writes, doorbells, and TLP
 * headers on the data itself. The model sums wire bytes per link
 * direction and bounds throughput by the most-loaded direction.
 */
#ifndef FLD_MODEL_PERF_MODEL_H
#define FLD_MODEL_PERF_MODEL_H

#include <cstdint>

#include "pcie/tlp.h"

namespace fld::model {

struct PerfModelParams
{
    pcie::TlpParams tlp;
    double pcie_gbps = 50.0;   ///< per-direction PCIe data rate
    double eth_gbps = 25.0;    ///< Ethernet port rate
    uint32_t wqe_batch = 8;    ///< WQEs fetched per ring read
    uint32_t cqe_interval = 16;///< selective completion signalling
    uint32_t db_batch = 8;     ///< doorbells coalesced over N packets
    uint32_t rx_pkts_per_buffer = 16; ///< MPRQ recycle amortization
};

/** Ethernet line rate seen by a packet of @p frame_bytes (20 B
 *  preamble+IFG overhead per frame). */
double eth_goodput_gbps(double eth_gbps, uint32_t frame_bytes);

/** PCIe wire bytes per packet in each direction for the echo path. */
struct PcieCost
{
    double to_fld = 0;   ///< NIC -> FLD direction
    double from_fld = 0; ///< FLD -> NIC direction
};
PcieCost echo_pcie_cost(const PerfModelParams& p, uint32_t frame_bytes);

/**
 * Expected FLD-E echo throughput (Gbps of frame bytes) for a given
 * frame size: the PCIe bound in the worse direction, also capped by
 * the Ethernet port rate.
 */
double fld_expected_gbps(const PerfModelParams& p, uint32_t frame_bytes);

/** PCIe-only bound (no Ethernet cap), the "PCIe" lines of Fig. 7a. */
double fld_pcie_bound_gbps(const PerfModelParams& p,
                           uint32_t frame_bytes);

/**
 * Counterfactual bound for §4.2's rejected design: the accelerator's
 * rings and data buffers live in *host memory* instead of behind the
 * FLD BAR. Every packet then crosses the host PCIe link twice in each
 * direction (NIC <-> host memory, host memory <-> accelerator), so
 * the host link carries roughly double the data of the FLD design —
 * and competes with every other device using it.
 */
double hostmem_accel_bound_gbps(const PerfModelParams& p,
                                uint32_t frame_bytes);

/**
 * FLD-R (RDMA) goodput bound for the ZUC request/response pattern of
 * Figure 8a: @p request_bytes of plaintext plus @p app_header_bytes
 * application header per message, RoCE+transport headers per MTU
 * segment on the wire, responses mirroring requests.
 */
double zuc_expected_gbps(const PerfModelParams& p,
                         uint32_t request_bytes,
                         uint32_t app_header_bytes, uint32_t rdma_mtu);

} // namespace fld::model

#endif // FLD_MODEL_PERF_MODEL_H
