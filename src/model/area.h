/**
 * @file
 * FPGA area/feature data for Tables 1 and 5.
 *
 * Area numbers cannot be re-measured without synthesis hardware, so
 * the paper-reported values are recorded here as data and reprinted
 * by the reproduction benches alongside what our model *can* measure:
 * the on-die memory budget of the instantiated FLD configuration.
 */
#ifndef FLD_MODEL_AREA_H
#define FLD_MODEL_AREA_H

#include <cstdint>
#include <string>
#include <vector>

namespace fld::model {

/** Feature support levels used by Table 1. */
enum class Support : uint8_t {
    Yes,      ///< supported
    HostOnly, ///< supported only between host and NIC (BITW)
    No,
    NA,
};

const char* support_str(Support s);

/** One row of Table 1. */
struct ArchRow
{
    std::string category;
    std::string solution;
    std::string gbps;
    double luts_k = 0; ///< thousands
    double ffs_k = 0;
    int bram = 0;
    int uram = 0;
    Support stateless;
    Support tunneling;
    Support transport;
};

/** Table 1 as published (plus the FLD row). */
const std::vector<ArchRow>& table1_rows();

/** One row of Table 5 (hardware utilization + LOC). */
struct ModuleArea
{
    std::string module;
    int clock_mhz = 0;
    double luts_k = 0;
    double ffs_k = 0;
    int bram = 0;
    int uram = 0;
    int loc_k = 0; ///< thousands of lines of HDL
};

const std::vector<ModuleArea>& table5_rows();

/** Table 4: software lines of code, as published. */
struct SoftwareLoc
{
    std::string component;
    int loc = 0;
};
const std::vector<SoftwareLoc>& table4_rows();

} // namespace fld::model

#endif // FLD_MODEL_AREA_H
