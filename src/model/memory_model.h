/**
 * @file
 * NIC-driver memory model (§4.3, §5.2.1): the formulas of Tables 2/3
 * and the scaling study of Figure 4, implemented exactly as printed.
 *
 * Mirrors the authors' published model repository
 * (github.com/acsl-technion/flexdriver-model), which this reproduction
 * re-derives from the paper text.
 */
#ifndef FLD_MODEL_MEMORY_MODEL_H
#define FLD_MODEL_MEMORY_MODEL_H

#include <cstdint>

namespace fld::model {

/** Analysis parameters (Table 2a defaults). */
struct MemoryParams
{
    double bandwidth_gbps = 100.0;  ///< B
    uint32_t min_packet = 256;      ///< M_min (bytes)
    uint32_t max_packet = 16 * 1024;///< M_max (bytes)
    double lifetime_rx_us = 5.0;    ///< L_rx
    double lifetime_tx_us = 25.0;   ///< L_tx
    uint32_t num_queues = 512;      ///< N_q (transmit queues)

    // Table 2b: descriptor sizes.
    uint32_t sw_txdesc = 64;
    uint32_t sw_rxdesc = 16;
    uint32_t sw_cqe = 64;
    uint32_t fld_txdesc = 8;
    double fld_cqe = 15.0;
    uint32_t pi_size = 4;
};

/** Quantities derived per Table 2a. */
struct DerivedParams
{
    double packet_rate_mpps = 0; ///< R = B / (M_min + 20 B)
    uint32_t n_txdesc = 0;       ///< ceil(R * L_tx)
    uint32_t n_rxdesc = 0;       ///< ceil(R * L_rx)
    double s_txbdp = 0;          ///< B * L_tx (bytes)
    double s_rxbdp = 0;          ///< B * L_rx (bytes)
};

DerivedParams derive(const MemoryParams& p);

/** One column of Table 3 (bytes). */
struct MemoryBreakdown
{
    double txq = 0;    ///< S_txq: transmit rings
    double txdata = 0; ///< S_txdata: transmit buffers (+ xlt for FLD)
    double rxdata = 0; ///< S_rxdata: receive buffers
    double cq = 0;     ///< S_cq: completion queues
    double srq = 0;    ///< S_srq: receive ring (0 for FLD: host mem)
    double pi = 0;     ///< S_pitot: producer indices
    double total = 0;
};

/** Conventional software driver memory (Table 3, "Software"). */
MemoryBreakdown software_memory(const MemoryParams& p);

/**
 * FLD memory after the §5.2 optimizations (Table 3, "FLD").
 * Translation-table sizes: the cuckoo ring translation is
 * 2 x f(N_txdesc) slots of 31 bits (15.5 KiB in the example); the
 * data translation is anchored to the prototype's measured 33 KiB at
 * the example BDP and scales linearly with it.
 */
MemoryBreakdown fld_memory(const MemoryParams& p);

// ---------------------------------------------------------------------
// Flow-scale extension: predicted on-die cost of the sharded flow
// directory (cuckoo flow translation + packed flow state + per-tenant
// stats + heavy-hitter sketch) at a given flow-table size. The
// simulated FLD registers what it actually instantiates in its
// MemBudget; conformance tests and bench_flow_scale reconcile the two
// and fail when they diverge beyond a tolerance.
// ---------------------------------------------------------------------

/** Packed hardware bytes per flow-state record: 8 B key tag + 2 B
 *  tenant + 6 B packet counter + 8 B byte counter. Must agree with
 *  fld::core::FlowDirectory's accounting. */
constexpr uint32_t kFlowStateBytes = 24;

/** Packed hardware bytes per tenant-stats record (four counters). */
constexpr uint32_t kTenantStateBytes = 32;

/**
 * Resolved flow-directory geometry. All fields are explicit: the
 * facade resolves its auto-sizing rules (shard count, sketch width)
 * first and hands the result here, so the model never duplicates
 * policy — it only prices geometry.
 */
struct FlowScaleParams
{
    uint64_t flow_capacity = 4096; ///< max concurrent flows
    uint32_t shards = 1;           ///< independent cuckoo shards
    uint64_t shard_capacity = 0;   ///< per-shard entries (incl. slack)
    uint32_t tenants = 64;
    uint32_t cuckoo_banks = 4;     ///< paper §5.2 geometry
    uint32_t cuckoo_stash = 4;
    uint32_t sketch_width = 0;     ///< 0 = sketch disabled
    uint32_t sketch_depth = 4;
    uint32_t sketch_topk = 32;
};

/** One Table-3-style column for the flow directory (bytes). */
struct FlowScaleBreakdown
{
    double cuckoo = 0;       ///< sharded flow-translation tables
    double flow_state = 0;   ///< packed per-flow records
    double tenant_stats = 0; ///< per-tenant counters
    double sketch = 0;       ///< count-min rows + top-k table
    double total = 0;
};

/**
 * Predicted flow-directory memory: per shard, a load-factor-1/2
 * cuckoo table (2 x shard_capacity slots of 4 B + an 8 B/entry
 * stash) plus shard_capacity packed flow records; kTenantStateBytes
 * per tenant; and the sketch's counters + candidate table.
 */
FlowScaleBreakdown flow_directory_memory(const FlowScaleParams& p);

} // namespace fld::model

#endif // FLD_MODEL_MEMORY_MODEL_H
