#include "model/memory_model.h"

#include <cmath>

#include "util/bitops.h"

namespace fld::model {

namespace {
/** f(n) from Table 3: round allocations to a larger power of two. */
double
f_pow2(double n)
{
    return double(round_up_pow2(uint64_t(std::ceil(n))));
}
} // namespace

DerivedParams
derive(const MemoryParams& p)
{
    DerivedParams d;
    // R = B / (M_min + 20 B): bits/s over bits/packet.
    d.packet_rate_mpps = p.bandwidth_gbps * 1000.0 /
                         (double(p.min_packet + 20) * 8.0);
    d.n_txdesc = uint32_t(
        std::ceil(d.packet_rate_mpps * p.lifetime_tx_us));
    d.n_rxdesc = uint32_t(
        std::ceil(d.packet_rate_mpps * p.lifetime_rx_us));
    // S = B * L: Gbps * us = 125 bytes per unit.
    d.s_txbdp = p.bandwidth_gbps * p.lifetime_tx_us * 125.0;
    d.s_rxbdp = p.bandwidth_gbps * p.lifetime_rx_us * 125.0;
    return d;
}

MemoryBreakdown
software_memory(const MemoryParams& p)
{
    DerivedParams d = derive(p);
    MemoryBreakdown m;
    m.txq = double(p.num_queues) * f_pow2(d.n_txdesc) * p.sw_txdesc;
    m.txdata = double(p.max_packet) * d.n_txdesc;
    m.rxdata = double(p.max_packet) * d.n_rxdesc;
    m.cq = (f_pow2(d.n_txdesc) + f_pow2(d.n_rxdesc)) * p.sw_cqe;
    m.srq = f_pow2(d.n_rxdesc) * p.sw_rxdesc;
    m.pi = double(p.num_queues + 1) * p.pi_size;
    m.total = m.txq + m.txdata + m.rxdata + m.cq + m.srq + m.pi;
    return m;
}

MemoryBreakdown
fld_memory(const MemoryParams& p)
{
    DerivedParams d = derive(p);
    MemoryBreakdown m;

    // Ring translation (cuckoo, §5.2): table at load factor 1/2 is
    // 2 x f(N_txdesc) slots of 31 bits -> f(N) * 7.75 bytes.
    double xlt_tx = f_pow2(d.n_txdesc) * 7.75;
    m.txq = f_pow2(d.n_txdesc) * p.fld_txdesc + xlt_tx;

    // Data translation: anchored to the prototype's 33 KiB at the
    // Table 3 example BDP (305 KiB), scaling with the BDP.
    const double example_bdp = 100.0 * 25.0 * 125.0; // 305 KiB
    double xlt_data = 33.0 * 1024.0 * (d.s_txbdp / example_bdp);
    m.txdata = 2.0 * d.s_txbdp + xlt_data;

    m.rxdata = 2.0 * d.s_rxbdp;
    m.cq = (f_pow2(d.n_txdesc) + f_pow2(d.n_rxdesc)) * p.fld_cqe;
    m.srq = 0; // receive ring lives in host memory (§5.2)
    m.pi = double(p.num_queues + 1) * p.pi_size;
    m.total = m.txq + m.txdata + m.rxdata + m.cq + m.srq + m.pi;
    return m;
}

FlowScaleBreakdown
flow_directory_memory(const FlowScaleParams& p)
{
    FlowScaleBreakdown m;
    double shard_cap = double(p.shard_capacity);
    if (shard_cap <= 0 && p.shards > 0)
        shard_cap = std::ceil(double(p.flow_capacity) / p.shards);

    // Load factor 1/2: 2x capacity slots at 4 B packed, plus the
    // displacement stash (8 B entries, as in CuckooTable).
    m.cuckoo = double(p.shards) *
               (2.0 * shard_cap * 4.0 + double(p.cuckoo_stash) * 8.0);
    m.flow_state =
        double(p.shards) * shard_cap * double(kFlowStateBytes);
    m.tenant_stats = double(p.tenants) * double(kTenantStateBytes);
    if (p.sketch_width > 0) {
        m.sketch = double(p.sketch_depth) * double(p.sketch_width) *
                       4.0 +
                   double(p.sketch_topk) * 16.0;
    }
    m.total = m.cuckoo + m.flow_state + m.tenant_stats + m.sketch;
    return m;
}

} // namespace fld::model
