#include "sim/fuzz.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "sim/time.h"
#include "util/rng.h"

namespace fld::sim {

const char*
to_string(FuzzMode mode)
{
    switch (mode) {
    case FuzzMode::EthEcho:
        return "eth-echo";
    case FuzzMode::RdmaEcho:
        return "rdma-echo";
    case FuzzMode::ConnServe:
        return "conn-serve";
    case FuzzMode::RpcServe:
        return "rpc-serve";
    }
    return "?";
}

// ---------------------------------------------------------------------
// Scenario dump
// ---------------------------------------------------------------------

std::string
FuzzScenario::to_string() const
{
    std::ostringstream os;
    os << "seed = " << seed << "\n";
    os << "mode = " << sim::to_string(workload.mode) << "\n";
    os << "packets = " << workload.packets << "\n";
    os << "bytes = " << workload.bytes << "\n";
    os << "imc_mix = " << (workload.imc_mix ? 1 : 0) << "\n";
    os << "flows = " << workload.flows << "\n";
    os << "window = " << workload.window << "\n";
    os << "offered_gbps = " << workload.offered_gbps << "\n";
    os << "echo_queues = " << echo_queues << "\n";
    os << "rx_buffers = " << rx_buffers << "\n";
    os << "rx_strides = " << rx_strides << "\n";
    os << "rx_stride_shift = " << rx_stride_shift << "\n";
    os << "mtu = " << mtu << "\n";
    os << "cqe_compression = " << (cqe_compression ? 1 : 0) << "\n";
    os << "coalesce_ns = " << coalesce_ns << "\n";
    os << "vxlan = " << (vxlan ? 1 : 0) << "\n";
    os << "vni = " << vni << "\n";
    os << "shaper_gbps = " << shaper_gbps << "\n";
    os << "signal_interval = " << signal_interval << "\n";
    os << "wqe_by_mmio = " << (wqe_by_mmio ? 1 : 0) << "\n";
    os << "fetch_inflight = " << fetch_inflight << "\n";
    os << "fault_seed = " << faults.seed << "\n";
    os << "wire_drop_prob = " << faults.wire.drop_prob << "\n";
    os << "wire_corrupt_prob = " << faults.wire.corrupt_prob << "\n";
    os << "wire_duplicate_prob = " << faults.wire.duplicate_prob << "\n";
    os << "wire_reorder_prob = " << faults.wire.reorder_prob << "\n";
    os << "pcie_read_delay_prob = " << faults.pcie.read_delay_prob << "\n";
    os << "pcie_read_stall_prob = " << faults.pcie.read_stall_prob << "\n";
    os << "pcie_doorbell_jitter_prob = " << faults.pcie.doorbell_jitter_prob
       << "\n";
    os << "accel_stall_prob = " << faults.accel.stall_prob << "\n";
    os << "conn_connections = " << conn.connections << "\n";
    os << "conn_requests = " << conn.requests << "\n";
    os << "conn_request_bytes = " << conn.request_bytes << "\n";
    os << "conn_closed_loop = " << (conn.closed_loop ? 1 : 0) << "\n";
    os << "conn_churn_cycles = " << conn.churn_cycles << "\n";
    os << "conn_rto_us = " << conn.rto_us << "\n";
    os << "conn_fault_target_port = " << conn.fault_target_port << "\n";
    os << "rpc_connections = " << rpc.connections << "\n";
    os << "rpc_requests = " << rpc.requests << "\n";
    os << "rpc_payload_min = " << rpc.payload_min << "\n";
    os << "rpc_payload_max = " << rpc.payload_max << "\n";
    os << "rpc_methods_mask = " << rpc.methods_mask << "\n";
    os << "rpc_workers = " << rpc.workers << "\n";
    os << "rpc_think_us = " << rpc.think_us << "\n";
    os << "rpc_chunk_bytes = " << rpc.chunk_bytes << "\n";
    os << "pipeline_enabled = " << (pipeline.enabled ? 1 : 0) << "\n";
    os << "pipeline_program_seed = " << pipeline.program_seed << "\n";
    os << "pipeline_tables = " << pipeline.tables << "\n";
    os << "pipeline_entries = " << pipeline.entries << "\n";
    os << "pipeline_use_nat = " << (pipeline.use_nat ? 1 : 0) << "\n";
    os << "pipeline_use_vip = " << (pipeline.use_vip ? 1 : 0) << "\n";
    os << "pipeline_use_acl = " << (pipeline.use_acl ? 1 : 0) << "\n";
    return os.str();
}

std::string
FuzzScenario::summary() const
{
    std::ostringstream os;
    if (workload.mode == FuzzMode::RpcServe) {
        os << "rpc-serve conns=" << rpc.connections
           << " reqs=" << rpc.requests << " payload=" << rpc.payload_min
           << ".." << rpc.payload_max << "B methods=0x" << std::hex
           << rpc.methods_mask << std::dec << " workers=" << rpc.workers
           << " think=" << rpc.think_us << "us";
        if (rpc.chunk_bytes)
            os << " chunk=" << rpc.chunk_bytes;
        if (conn.fault_target_port)
            os << " target=" << conn.fault_target_port;
        os << (has_faults() ? " faulty" : " fault-free");
        return os.str();
    }
    if (workload.mode == FuzzMode::ConnServe) {
        os << "conn-serve conns=" << conn.connections
           << " reqs=" << conn.requests << "x" << conn.request_bytes
           << "B" << (conn.closed_loop ? "" : " open-loop");
        if (conn.churn_cycles)
            os << " churn=" << conn.churn_cycles;
        os << " rto=" << conn.rto_us << "us";
        if (conn.fault_target_port)
            os << " target=" << conn.fault_target_port;
        os << (has_faults() ? " faulty" : " fault-free");
        return os.str();
    }
    os << sim::to_string(workload.mode) << " pkts=" << workload.packets
       << " bytes=" << workload.bytes << (workload.imc_mix ? "(imc)" : "")
       << " flows=" << workload.flows;
    if (workload.window > 0)
        os << " win=" << workload.window;
    else
        os << " open@" << workload.offered_gbps << "G";
    os << " q=" << echo_queues;
    if (rx_buffers)
        os << " mprq=" << rx_buffers << "x" << rx_strides << "<<"
           << rx_stride_shift;
    if (cqe_compression)
        os << " cqe-comp";
    if (vxlan)
        os << " vxlan=" << vni;
    if (shaper_gbps > 0)
        os << " shape=" << shaper_gbps << "G";
    if (pipeline.enabled) {
        os << " pipe=" << pipeline.tables << "x" << pipeline.entries;
        if (pipeline.use_nat)
            os << "+nat";
        if (pipeline.use_vip)
            os << "+vip";
        if (pipeline.use_acl)
            os << "+acl";
    }
    os << (has_faults() ? " faulty" : " fault-free");
    return os.str();
}

// ---------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------

namespace {

/** Small counts are much better at isolating bugs, so weight them. */
uint32_t
draw_packet_count(Rng& rng)
{
    switch (rng.uniform(4)) {
    case 0:
        return uint32_t(rng.range(1, 8));
    case 1:
        return uint32_t(rng.range(9, 32));
    case 2:
        return uint32_t(rng.range(33, 96));
    default:
        return uint32_t(rng.range(97, 200));
    }
}

} // namespace

FuzzScenario
ScenarioFuzzer::generate(uint64_t seed) const
{
    // All knobs are drawn in one fixed order from one RNG; adding a
    // knob must append draws, never reorder them, or every historical
    // failing seed changes meaning.
    Rng rng(seed);
    FuzzScenario s;
    s.seed = seed;

    // ---- workload ----------------------------------------------------
    s.workload.mode =
        rng.chance(0.30) ? FuzzMode::RdmaEcho : FuzzMode::EthEcho;
    s.workload.packets = draw_packet_count(rng);

    // ---- geometry / NIC knobs (drawn for both modes to keep the
    // draw sequence mode-independent; RDMA ignores most of them) ------
    static const uint32_t kMtus[] = {512, 1024, 1500};
    s.mtu = kMtus[rng.uniform(3)];

    // The IMC mixture reaches full-MTU frames, so it only composes
    // with the standard 1500-byte MTU.
    bool want_imc = rng.chance(0.25);
    if (want_imc && s.mtu == 1500) {
        s.workload.imc_mix = true;
        s.workload.bytes = 0; // sizes drawn per-packet from the mix
    } else {
        s.workload.bytes = uint32_t(rng.range(64, s.mtu));
    }
    s.workload.flows = uint32_t(rng.range(1, 16));
    if (rng.chance(0.25)) {
        s.workload.window = 0; // open loop
        s.workload.offered_gbps = 1.0 + rng.uniform_double() * 24.0;
    } else {
        s.workload.window = uint32_t(rng.range(1, 32));
        s.workload.offered_gbps = 0.0;
    }

    s.echo_queues = uint32_t(rng.range(1, 4));
    if (rng.chance(0.5)) {
        // Randomize MPRQ geometry. Strides smaller than the MTU are
        // deliberately in range — a full-size frame then spans several
        // contiguous strides, which is the very feature MPRQ exists
        // for (and where stride-accounting bugs hide). Only the whole
        // buffer must hold a max-size frame.
        s.rx_stride_shift = uint16_t(rng.range(9, 12));
        static const uint16_t kStrides[] = {8, 16, 32, 64};
        s.rx_strides = kStrides[rng.uniform(4)];
        while (uint32_t(s.rx_strides) << s.rx_stride_shift < s.mtu + 64)
            s.rx_strides *= 2;
        s.rx_buffers = uint32_t(rng.range(8, 64));
        // Stay inside the testbed's 32 MiB driver arenas: cap each
        // queue's MPRQ footprint at 4 MiB (up to 4 echo queues plus
        // rings must fit). Pure clamping — consumes no extra draws.
        const uint64_t per_queue_cap = 4ull << 20;
        while (s.rx_buffers > 8 &&
               uint64_t(s.rx_buffers) * s.rx_strides *
                       (1ull << s.rx_stride_shift) >
                   per_queue_cap)
            s.rx_buffers /= 2;
    }

    s.cqe_compression = rng.chance(0.30);
    s.coalesce_ns = uint32_t(rng.range(100, 800));
    if (rng.chance(0.25)) {
        s.vxlan = true;
        s.vni = uint32_t(rng.range(1, 0xffffff));
    }
    if (rng.chance(0.30))
        s.shaper_gbps = 1.0 + rng.uniform_double() * 20.0;
    s.signal_interval = uint32_t(rng.range(1, 32));
    s.wqe_by_mmio = rng.chance(0.7);
    s.fetch_inflight = uint32_t(rng.range(2, 16));

    // ---- faults ------------------------------------------------------
    // Half the scenarios stay fault-free so the byte-identical
    // differential oracle retains full power; the other half draw
    // small per-class probabilities (kept low so closed-loop runs
    // finish within the step budget even with go-back-N recovery).
    s.faults.seed = rng.next() | 1;
    if (rng.chance(0.5)) {
        if (rng.chance(0.5))
            s.faults.wire.drop_prob = 0.005 + rng.uniform_double() * 0.045;
        if (rng.chance(0.3))
            s.faults.wire.corrupt_prob =
                0.005 + rng.uniform_double() * 0.025;
        if (rng.chance(0.3))
            s.faults.wire.duplicate_prob =
                0.005 + rng.uniform_double() * 0.045;
        if (rng.chance(0.3)) {
            s.faults.wire.reorder_prob =
                0.005 + rng.uniform_double() * 0.045;
            s.faults.wire.reorder_delay_max =
                microseconds(rng.range(1, 5));
        }
        if (rng.chance(0.3))
            s.faults.pcie.read_delay_prob =
                0.01 + rng.uniform_double() * 0.09;
        if (rng.chance(0.15)) {
            s.faults.pcie.read_stall_prob =
                0.002 + rng.uniform_double() * 0.008;
            s.faults.pcie.read_stall_time =
                microseconds(rng.range(5, 20));
        }
        if (rng.chance(0.3))
            s.faults.pcie.doorbell_jitter_prob =
                0.01 + rng.uniform_double() * 0.09;
        if (rng.chance(0.3)) {
            s.faults.accel.stall_prob =
                0.01 + rng.uniform_double() * 0.04;
            s.faults.accel.stall_time = microseconds(rng.range(1, 5));
        }
    }

    // RDMA echo: the FLD-R client drives fixed-size messages over one
    // QP; flows/windows/vxlan/echo geometry do not apply.
    if (s.workload.mode == FuzzMode::RdmaEcho) {
        s.workload.imc_mix = false;
        if (s.workload.bytes == 0)
            s.workload.bytes = 256;
        s.workload.bytes = std::min(s.workload.bytes, 1024u);
        s.workload.flows = 1;
        if (s.workload.window == 0) {
            s.workload.window = 8;
            s.workload.offered_gbps = 0.0;
        }
        s.workload.window = std::min(s.workload.window, 16u);
        s.vxlan = false;
        s.shaper_gbps = 0.0;
        // Accelerator stalls apply to the AFU-side accel units, which
        // the FLD-R echo scenario does not instantiate.
        s.faults.accel = {};
    }

    // ---- connection workload -----------------------------------------
    // Drawn after every pre-existing knob (ordering note at the top),
    // and drawn for every seed: eth/rdma scenarios carry valid conn
    // fields too, which is what lets `fld_fuzz --conn` force-serve any
    // seed's connection shape without perturbing the other draws.
    bool conn_serve = rng.chance(0.30);
    s.conn.connections = uint32_t(rng.range(1, 48));
    s.conn.requests = uint32_t(rng.range(1, 6));
    s.conn.request_bytes = uint32_t(rng.range(16, 1024));
    s.conn.closed_loop = rng.chance(0.7);
    s.conn.churn_cycles = rng.chance(0.25) ? 1 : 0;
    s.conn.rto_us = rng.chance(0.25) ? 500 : 200;
    // Under faults, half the time concentrate every wire fault on one
    // flow (AppEmu ports start at 20000): the per-flow isolation
    // oracle — neighbors must see zero retransmissions — only has
    // teeth when the faults are targeted.
    if (rng.chance(0.5))
        s.conn.fault_target_port =
            uint16_t(20000 + rng.uniform(s.conn.connections));
    if (conn_serve) {
        s.workload.mode = FuzzMode::ConnServe;
        // The TCP stack owns segmentation, pacing and loop shape; the
        // echo workload fields and eSwitch/offload knobs do not apply.
        s.workload.imc_mix = false;
        s.workload.flows = 1;
        s.vxlan = false;
        s.shaper_gbps = 0.0;
    }

    // ---- RPC workload ------------------------------------------------
    // Appended after every pre-existing draw (ordering note at the
    // top), and again drawn for every seed so `fld_fuzz --rpc` can
    // force-serve any seed's RPC shape.
    bool rpc_serve = rng.chance(0.25);
    s.rpc.connections = uint32_t(rng.range(1, 32));
    s.rpc.requests = uint32_t(rng.range(1, 6));
    s.rpc.payload_min = uint32_t(rng.range(1, 64));
    s.rpc.payload_max =
        s.rpc.payload_min + uint32_t(rng.range(0, 960));
    s.rpc.methods_mask = uint32_t(rng.range(1, 15));
    s.rpc.workers = uint32_t(rng.range(1, 8));
    s.rpc.think_us = rng.chance(0.5) ? uint32_t(rng.range(1, 10)) : 0;
    s.rpc.chunk_bytes =
        rng.chance(0.4) ? uint32_t(rng.range(16, 256)) : 0;
    if (rpc_serve) {
        s.workload.mode = FuzzMode::RpcServe;
        // Same knob neutralization as ConnServe: TCP owns the loop.
        // The fault-concentration port stays in the AppEmu range here;
        // the runner remaps it onto the RPC client range so seeds
        // forced to RpcServe by `fld_fuzz --rpc` behave identically.
        s.workload.imc_mix = false;
        s.workload.flows = 1;
        s.vxlan = false;
        s.shaper_gbps = 0.0;
    }

    // ---- pipeline program --------------------------------------------
    // Appended after every pre-existing draw (ordering note at the
    // top), and drawn for every seed so `fld_fuzz --pipeline` can
    // force the compiled-pipeline dimension onto any seed. Effective
    // only on EthEcho scenarios: the decoration chain splices into the
    // echo steering rules, which the TCP/RDMA modes do not use.
    bool pipe_on = rng.chance(0.30);
    s.pipeline.program_seed = rng.next() | 1;
    s.pipeline.tables = uint32_t(rng.range(1, 4));
    s.pipeline.entries = uint32_t(rng.range(1, 4));
    s.pipeline.use_nat = rng.chance(0.5);
    s.pipeline.use_vip = rng.chance(0.5);
    s.pipeline.use_acl = rng.chance(0.5);
    s.pipeline.enabled = pipe_on && s.workload.mode == FuzzMode::EthEcho;

    return s;
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

namespace {

/** Candidate mutation: returns false when it would be a no-op. */
using Mutation = std::function<bool(FuzzScenario&)>;

void
clear_wire_faults(FuzzScenario& s)
{
    s.faults.wire = {};
}

} // namespace

ShrinkResult
ScenarioShrinker::shrink(const FuzzScenario& failing)
{
    ShrinkResult res;
    res.scenario = failing;

    auto try_mutation = [&](const Mutation& mut) -> bool {
        if (res.predicate_runs >= max_runs_)
            return false;
        FuzzScenario candidate = res.scenario;
        if (!mut(candidate))
            return false; // no-op, don't burn budget
        ++res.predicate_runs;
        if (!still_fails_(candidate))
            return false;
        res.scenario = candidate;
        ++res.accepted_mutations;
        return true;
    };

    const FuzzScenario defaults;

    // Packet-count reduction dominates replay cost, so run it to a
    // fixpoint first: try 1, 2, 4, then successive halvings.
    auto shrink_packets = [&] {
        bool any = false;
        for (uint32_t target : {1u, 2u, 4u}) {
            if (res.scenario.workload.packets > target &&
                try_mutation([&](FuzzScenario& s) {
                    s.workload.packets = target;
                    return true;
                })) {
                any = true;
                break;
            }
        }
        while (res.scenario.workload.packets > 1 &&
               try_mutation([&](FuzzScenario& s) {
                   s.workload.packets = std::max(1u, s.workload.packets / 2);
                   return true;
               }))
            any = true;
        while (res.scenario.workload.packets > 1 &&
               try_mutation([&](FuzzScenario& s) {
                   s.workload.packets -= 1;
                   return true;
               }))
            any = true;
        return any;
    };

    std::vector<Mutation> passes = {
        // Fewer flows, simplest loop shape.
        [](FuzzScenario& s) {
            if (s.workload.flows == 1)
                return false;
            s.workload.flows = 1;
            return true;
        },
        [](FuzzScenario& s) {
            if (s.workload.window == 1 && s.workload.offered_gbps == 0)
                return false;
            s.workload.window = 1;
            s.workload.offered_gbps = 0.0;
            return true;
        },
        // Canonicalize the open-loop rate to line rate. Not smaller,
        // but simpler — and back-to-back frames tighten timing races,
        // which usually lets the packet count shrink further.
        [](FuzzScenario& s) {
            if (s.workload.window != 0 ||
                s.workload.offered_gbps == 25.0)
                return false;
            s.workload.offered_gbps = 25.0;
            return true;
        },
        // Fixed full-MTU frames: drops the size mixture while keeping
        // multi-stride MPRQ and segmentation behavior reachable.
        [](FuzzScenario& s) {
            if (!s.workload.imc_mix && s.workload.bytes == s.mtu)
                return false;
            s.workload.imc_mix = false;
            s.workload.bytes = s.mtu;
            return true;
        },
        // Minimal frame: fixed 64B, no size mixture.
        [](FuzzScenario& s) {
            if (!s.workload.imc_mix &&
                s.workload.bytes == 64)
                return false;
            s.workload.imc_mix = false;
            s.workload.bytes = 64;
            return true;
        },
        // Remove fault classes one at a time, most disruptive first.
        [](FuzzScenario& s) {
            if (!s.faults.wire.enabled())
                return false;
            clear_wire_faults(s);
            return true;
        },
        [](FuzzScenario& s) {
            if (!s.faults.pcie.enabled())
                return false;
            s.faults.pcie = {};
            return true;
        },
        [](FuzzScenario& s) {
            if (!s.faults.accel.enabled())
                return false;
            s.faults.accel = {};
            return true;
        },
        // Individual wire fault knobs (when the whole class must stay).
        [](FuzzScenario& s) {
            if (s.faults.wire.drop_prob == 0)
                return false;
            s.faults.wire.drop_prob = 0;
            return true;
        },
        [](FuzzScenario& s) {
            if (s.faults.wire.corrupt_prob == 0)
                return false;
            s.faults.wire.corrupt_prob = 0;
            return true;
        },
        [](FuzzScenario& s) {
            if (s.faults.wire.duplicate_prob == 0)
                return false;
            s.faults.wire.duplicate_prob = 0;
            return true;
        },
        [](FuzzScenario& s) {
            if (s.faults.wire.reorder_prob == 0)
                return false;
            s.faults.wire.reorder_prob = 0;
            return true;
        },
        // Knobs back to defaults, one group at a time.
        [&defaults](FuzzScenario& s) {
            if (!s.vxlan)
                return false;
            s.vxlan = defaults.vxlan;
            s.vni = defaults.vni;
            return true;
        },
        [&defaults](FuzzScenario& s) {
            if (s.shaper_gbps == 0)
                return false;
            s.shaper_gbps = defaults.shaper_gbps;
            return true;
        },
        [&defaults](FuzzScenario& s) {
            if (!s.cqe_compression && s.coalesce_ns == defaults.coalesce_ns)
                return false;
            s.cqe_compression = defaults.cqe_compression;
            s.coalesce_ns = defaults.coalesce_ns;
            return true;
        },
        [&defaults](FuzzScenario& s) {
            if (s.rx_buffers == 0 && s.rx_strides == 0 &&
                s.rx_stride_shift == 0)
                return false;
            s.rx_buffers = defaults.rx_buffers;
            s.rx_strides = defaults.rx_strides;
            s.rx_stride_shift = defaults.rx_stride_shift;
            return true;
        },
        [&defaults](FuzzScenario& s) {
            if (s.echo_queues == 1)
                return false;
            s.echo_queues = defaults.echo_queues;
            return true;
        },
        [&defaults](FuzzScenario& s) {
            if (s.mtu == defaults.mtu)
                return false;
            s.mtu = defaults.mtu;
            s.workload.bytes = std::min(s.workload.bytes, s.mtu);
            return true;
        },
        [&defaults](FuzzScenario& s) {
            if (s.signal_interval == defaults.signal_interval &&
                s.wqe_by_mmio == defaults.wqe_by_mmio &&
                s.fetch_inflight == defaults.fetch_inflight)
                return false;
            s.signal_interval = defaults.signal_interval;
            s.wqe_by_mmio = defaults.wqe_by_mmio;
            s.fetch_inflight = defaults.fetch_inflight;
            return true;
        },
        // Connection-workload reductions (ConnServe scenarios only;
        // halvings reach a fixpoint through the outer loop).
        [](FuzzScenario& s) {
            if (s.workload.mode != FuzzMode::ConnServe ||
                s.conn.connections <= 1)
                return false;
            s.conn.connections = std::max(1u, s.conn.connections / 2);
            return true;
        },
        [](FuzzScenario& s) {
            if (s.workload.mode != FuzzMode::ConnServe ||
                s.conn.requests <= 1)
                return false;
            s.conn.requests = 1;
            return true;
        },
        [](FuzzScenario& s) {
            if (s.workload.mode != FuzzMode::ConnServe ||
                s.conn.request_bytes == 64)
                return false;
            s.conn.request_bytes = 64;
            return true;
        },
        [](FuzzScenario& s) {
            if (s.workload.mode != FuzzMode::ConnServe ||
                s.conn.churn_cycles == 0)
                return false;
            s.conn.churn_cycles = 0;
            return true;
        },
        [](FuzzScenario& s) {
            if (s.workload.mode != FuzzMode::ConnServe ||
                s.conn.closed_loop)
                return false;
            s.conn.closed_loop = true;
            return true;
        },
        [](FuzzScenario& s) {
            if (s.workload.mode != FuzzMode::ConnServe ||
                s.conn.fault_target_port == 0)
                return false;
            s.conn.fault_target_port = 0;
            return true;
        },
        // RPC-workload reductions (RpcServe scenarios only).
        [](FuzzScenario& s) {
            if (s.workload.mode != FuzzMode::RpcServe ||
                s.rpc.connections <= 1)
                return false;
            s.rpc.connections = std::max(1u, s.rpc.connections / 2);
            return true;
        },
        [](FuzzScenario& s) {
            if (s.workload.mode != FuzzMode::RpcServe ||
                s.rpc.requests <= 1)
                return false;
            s.rpc.requests = 1;
            return true;
        },
        // Fixed minimal payloads first, then echo-only methods: the
        // accel-backed handlers (zuc/defrag/busy) are the most likely
        // suspects, so peel them off one step at a time.
        [](FuzzScenario& s) {
            if (s.workload.mode != FuzzMode::RpcServe ||
                (s.rpc.payload_min == 16 && s.rpc.payload_max == 16))
                return false;
            s.rpc.payload_min = 16;
            s.rpc.payload_max = 16;
            return true;
        },
        [](FuzzScenario& s) {
            if (s.workload.mode != FuzzMode::RpcServe ||
                s.rpc.methods_mask == 0x1)
                return false;
            s.rpc.methods_mask = 0x1; // echo only
            return true;
        },
        [](FuzzScenario& s) {
            if (s.workload.mode != FuzzMode::RpcServe ||
                s.rpc.chunk_bytes == 0)
                return false;
            s.rpc.chunk_bytes = 0;
            return true;
        },
        [](FuzzScenario& s) {
            if (s.workload.mode != FuzzMode::RpcServe ||
                s.rpc.think_us == 0)
                return false;
            s.rpc.think_us = 0;
            return true;
        },
        [](FuzzScenario& s) {
            if (s.workload.mode != FuzzMode::RpcServe ||
                s.rpc.workers <= 1)
                return false;
            s.rpc.workers = 1;
            return true;
        },
        [](FuzzScenario& s) {
            if (s.workload.mode != FuzzMode::RpcServe ||
                s.conn.fault_target_port == 0)
                return false;
            s.conn.fault_target_port = 0;
            return true;
        },
        // Pipeline-program reductions: drop the whole dimension first
        // (the failure may not need the compiled engine at all), then
        // peel decoration features and shorten the chain.
        [](FuzzScenario& s) {
            if (!s.pipeline.enabled)
                return false;
            s.pipeline.enabled = false;
            return true;
        },
        [](FuzzScenario& s) {
            if (!s.pipeline.enabled || !s.pipeline.use_nat)
                return false;
            s.pipeline.use_nat = false;
            return true;
        },
        [](FuzzScenario& s) {
            if (!s.pipeline.enabled || !s.pipeline.use_vip)
                return false;
            s.pipeline.use_vip = false;
            return true;
        },
        [](FuzzScenario& s) {
            if (!s.pipeline.enabled || !s.pipeline.use_acl)
                return false;
            s.pipeline.use_acl = false;
            return true;
        },
        [](FuzzScenario& s) {
            if (!s.pipeline.enabled || s.pipeline.tables <= 1)
                return false;
            s.pipeline.tables = 1;
            return true;
        },
        [](FuzzScenario& s) {
            if (!s.pipeline.enabled || s.pipeline.entries <= 1)
                return false;
            s.pipeline.entries = 1;
            return true;
        },
    };

    // Run all passes to a global fixpoint (a later pass succeeding can
    // re-enable an earlier one, e.g. dropping faults lets the packet
    // count shrink further).
    bool progress = true;
    while (progress && res.predicate_runs < max_runs_) {
        progress = false;
        if (shrink_packets())
            progress = true;
        for (const auto& pass : passes)
            if (try_mutation(pass))
                progress = true;
    }
    return res;
}

} // namespace fld::sim
