#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace fld::sim {

void
EventQueue::heap_push(HeapEntry e)
{
    heap_.push_back(e);
    size_t i = heap_.size() - 1;
    while (i > 0) {
        size_t parent = (i - 1) / 2;
        if (!fires_before(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

EventQueue::HeapEntry
EventQueue::heap_pop()
{
    HeapEntry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    size_t n = heap_.size();
    size_t i = 0;
    for (;;) {
        size_t left = 2 * i + 1;
        if (left >= n)
            break;
        size_t best = left;
        size_t right = left + 1;
        if (right < n && fires_before(heap_[right], heap_[left]))
            best = right;
        if (!fires_before(heap_[best], heap_[i]))
            break;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
    return top;
}

void
EventQueue::schedule_at(TimePs when, Callback cb)
{
    assert(when >= now_ && "scheduling into the past");
    if (when < now_)
        when = now_; // clamp: runs this tick, after same-tick events
    uint64_t seq = next_seq_++;
    uint32_t idx;
    if (!free_nodes_.empty()) {
        idx = free_nodes_.back();
        free_nodes_.pop_back();
        pool_[idx].cb = std::move(cb);
    } else {
        idx = uint32_t(pool_.size());
        pool_.push_back(Node{std::move(cb)});
    }
    heap_push(HeapEntry{when, seq, idx});
}

EventQueue::Callback
EventQueue::take_next()
{
    HeapEntry top = heap_pop();
    now_ = top.when;
    // Move the callback out before invoking: a re-entrant schedule_at
    // may grow the pool, so nothing may hold a Node reference across
    // the call. The node is released first so same-tick re-scheduling
    // can reuse it immediately.
    Callback cb = std::move(pool_[top.node].cb);
    free_nodes_.push_back(top.node);
    return cb;
}

uint64_t
EventQueue::run()
{
    uint64_t executed = 0;
    while (!heap_.empty()) {
        Callback cb = take_next();
        cb();
        ++executed;
    }
    executed_total_ += executed;
    return executed;
}

uint64_t
EventQueue::run_until(TimePs deadline)
{
    uint64_t executed = 0;
    while (!heap_.empty() && heap_.front().when <= deadline) {
        Callback cb = take_next();
        cb();
        ++executed;
    }
    if (now_ < deadline)
        now_ = deadline;
    executed_total_ += executed;
    return executed;
}

void
EventQueue::clear()
{
    for (const HeapEntry& e : heap_) {
        pool_[e.node].cb.reset();
        free_nodes_.push_back(e.node);
    }
    heap_.clear();
}

} // namespace fld::sim
