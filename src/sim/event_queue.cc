#include "sim/event_queue.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

namespace fld::sim {

namespace {

std::atomic<EventQueue::Engine> g_default_engine{[] {
    const char* env = std::getenv("FLD_SIM_ENGINE");
    if (env && std::strcmp(env, "heap") == 0)
        return EventQueue::Engine::Heap;
    return EventQueue::Engine::Wheel;
}()};

} // namespace

EventQueue::Engine
EventQueue::default_engine()
{
    return g_default_engine.load(std::memory_order_relaxed);
}

EventQueue::Engine
EventQueue::set_default_engine(Engine e)
{
    return g_default_engine.exchange(e, std::memory_order_relaxed);
}

EventQueue::EventQueue(Engine engine) : engine_(engine)
{
    if (engine_ == Engine::Wheel) {
        for (Level& lv : levels_)
            lv.slots.assign(kSlots, {kNil, kNil});
    }
}

EventQueue::~EventQueue() = default;

uint32_t
EventQueue::alloc_node()
{
    if (!free_nodes_.empty()) {
        uint32_t idx = free_nodes_.back();
        free_nodes_.pop_back();
        return idx;
    }
    if ((node_count_ & (kChunkSize - 1)) == 0)
        chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
    return node_count_++;
}

uint32_t
EventQueue::make_node(Callback cb)
{
    uint32_t idx = alloc_node();
    node(idx).cb = std::move(cb);
    return idx;
}

void
EventQueue::place_node(TimePs when, uint32_t idx)
{
    assert(when >= now_ && "scheduling into the past");
    if (when < now_)
        when = now_; // clamp: runs this tick, after same-tick events
    Node& nd = node(idx);
    nd.when = when;
    nd.seq = next_seq_++;
    ++pending_;
    if (engine_ == Engine::Heap) {
        heap_push(HeapEntry{when, nd.seq, idx});
        return;
    }
    // A time inside the bucket currently being drained (including a
    // past time just clamped to now) merges into the drain list by
    // position, so it still runs after every previously scheduled
    // same-tick event and before any later-tick one.
    if (drain_active() && when < drain_end_) {
        drain_insert(when, nd.seq, idx);
        return;
    }
    file_node(when, idx);
}

void
EventQueue::drain_insert(TimePs when, uint64_t seq, uint32_t idx)
{
    // seq is the largest outstanding, so ordering within equal when is
    // by position alone: insert after every entry with when' <= when.
    auto it = std::upper_bound(
        drain_.begin() + long(drain_pos_), drain_.end(), when,
        [](TimePs w, const Ready& r) { return w < r.when; });
    drain_.insert(it, Ready{when, seq, idx});
}

void
EventQueue::append_slot(Level& lv, uint32_t slot, uint32_t idx)
{
    Node& nd = node(idx);
    nd.next = kNil;
    auto& [head, tail] = lv.slots[slot];
    if (tail == kNil)
        head = idx;
    else
        node(tail).next = idx;
    tail = idx;
    lv.words[slot >> 6] |= uint64_t(1) << (slot & 63);
    lv.summary |= uint64_t(1) << (slot >> 6);
}

void
EventQueue::file_node(TimePs when, uint32_t idx)
{
    // Clamped or cursor-lagging times (run_until may leave now()
    // behind the wheel cursor) file at the cursor's own bucket; the
    // stored when still orders the drain, so nothing reorders.
    TimePs pos = when < wheel_pos_ ? wheel_pos_ : when;
    if (memo_valid_) {
        TimePs key =
            pos >> (kGranularityShift + memo_level_ * kSlotBits);
        if (key == memo_key_) {
            append_slot(levels_[memo_level_], memo_slot_, idx);
            return;
        }
    }
    uint64_t x = (pos ^ wheel_pos_) >> kGranularityShift;
    unsigned level = 0;
    if (x != 0) {
        unsigned msb = 63u - unsigned(__builtin_clzll(x));
        level = msb / kSlotBits;
    }
    if (level >= kLevels) {
        node(idx).next = kNil;
        overflow_.push_back(idx);
        ++wheel_stats_.overflow_filed;
        return;
    }
    uint32_t slot = slot_of(pos, level);
    append_slot(levels_[level], slot, idx);
    memo_valid_ = true;
    memo_level_ = level;
    memo_slot_ = slot;
    memo_key_ = pos >> (kGranularityShift + level * kSlotBits);
}

namespace {

/** First set slot index >= from, or kNotFound. */
constexpr uint32_t kNotFound = 0xffffffffu;

} // namespace

static uint32_t
find_from(const std::array<uint64_t, EventQueue::kSlots / 64>& words,
          uint64_t summary, uint32_t from)
{
    uint32_t w = from >> 6;
    uint64_t word = words[w] & (~uint64_t(0) << (from & 63));
    if (word)
        return (w << 6) + uint32_t(__builtin_ctzll(word));
    if (w + 1 >= EventQueue::kSlots / 64)
        return kNotFound;
    uint64_t rest = summary & (~uint64_t(0) << (w + 1));
    if (!rest)
        return kNotFound;
    w = uint32_t(__builtin_ctzll(rest));
    return (w << 6) + uint32_t(__builtin_ctzll(words[w]));
}

bool
EventQueue::advance()
{
    drain_.clear();
    drain_pos_ = 0;
    memo_valid_ = false;
    for (;;) {
        uint32_t s0 =
            find_from(levels_[0].words, levels_[0].summary,
                      slot_of(wheel_pos_, 0));
        if (s0 != kNotFound) {
            fill_drain(s0);
            return true;
        }
        unsigned k = 1;
        for (; k < kLevels; ++k) {
            uint32_t from = slot_of(wheel_pos_, k) + 1;
            uint32_t sk =
                from >= kSlots
                    ? kNotFound
                    : find_from(levels_[k].words, levels_[k].summary,
                                from);
            if (sk != kNotFound) {
                cascade(k, sk);
                break;
            }
        }
        if (k == kLevels && !refile_overflow())
            return false;
    }
}

void
EventQueue::fill_drain(uint32_t slot)
{
    Level& lv = levels_[0];
    auto [head, tail] = lv.slots[slot];
    lv.slots[slot] = {kNil, kNil};
    lv.words[slot >> 6] &= ~(uint64_t(1) << (slot & 63));
    if (lv.words[slot >> 6] == 0)
        lv.summary &= ~(uint64_t(1) << (slot >> 6));
    (void)tail;

    bool sorted = true;
    TimePs prev_when = 0;
    for (uint32_t idx = head; idx != kNil; idx = node(idx).next) {
        Node& nd = node(idx);
        sorted &= nd.when >= prev_when;
        prev_when = nd.when;
        drain_.push_back(Ready{nd.when, nd.seq, idx});
    }
    // The chain is already in seq order (appends and cascades both
    // preserve it), so non-decreasing whens mean the chain is already
    // in exact total order — the common case (most buckets hold one
    // timestamp). Otherwise: seq is unique, so an unstable sort keyed
    // on {when, seq} yields the exact total order — and std::sort,
    // unlike std::stable_sort, never allocates a merge buffer (this
    // runs once per drained bucket, the engine's hottest loop).
    if (!sorted)
        std::sort(drain_.begin(), drain_.end(),
                  [](const Ready& a, const Ready& b) {
                      return a.when != b.when ? a.when < b.when
                                              : a.seq < b.seq;
                  });

    constexpr unsigned span = kGranularityShift + kSlotBits;
    TimePs base = (wheel_pos_ >> span) << span;
    TimePs start = base + (TimePs(slot) << kGranularityShift);
    if (wheel_pos_ < start)
        wheel_pos_ = start;
    drain_end_ = start + (TimePs(1) << kGranularityShift);

    ++wheel_stats_.bucket_drains;
    wheel_stats_.drained_events += drain_.size();
    if (drain_.size() > wheel_stats_.max_bucket)
        wheel_stats_.max_bucket = drain_.size();
}

void
EventQueue::cascade(unsigned level, uint32_t slot)
{
    memo_valid_ = false;
    Level& lv = levels_[level];
    auto [head, tail] = lv.slots[slot];
    lv.slots[slot] = {kNil, kNil};
    lv.words[slot >> 6] &= ~(uint64_t(1) << (slot & 63));
    if (lv.words[slot >> 6] == 0)
        lv.summary &= ~(uint64_t(1) << (slot >> 6));
    (void)tail;

    const unsigned shift = kGranularityShift + level * kSlotBits;
    TimePs base = (wheel_pos_ >> (shift + kSlotBits))
                  << (shift + kSlotBits);
    wheel_pos_ = base + (TimePs(slot) << shift);

    ++wheel_stats_.cascades;
    // Re-file in chain (= seq) order; every event lands at a strictly
    // lower level because it shares this slot's prefix with the new
    // cursor.
    uint32_t idx = head;
    while (idx != kNil) {
        uint32_t next = node(idx).next;
        ++wheel_stats_.cascaded_events;
        file_node(node(idx).when, idx);
        idx = next;
    }
}

bool
EventQueue::refile_overflow()
{
    if (overflow_.empty())
        return false;
    memo_valid_ = false;
    TimePs min_when = node(overflow_[0]).when;
    for (uint32_t idx : overflow_)
        min_when = std::min(min_when, node(idx).when);
    wheel_pos_ = min_when; // monotonic: beyond every drained horizon
    std::vector<uint32_t> keep;
    for (uint32_t idx : overflow_) {
        if ((node(idx).when >> kHorizonShift) ==
            (min_when >> kHorizonShift)) {
            ++wheel_stats_.overflow_refiled;
            file_node(node(idx).when, idx);
        } else {
            keep.push_back(idx);
        }
    }
    overflow_.swap(keep);
    return true;
}

void
EventQueue::schedule_batch(TimePs when, Callback* cbs, size_t n)
{
    if (n == 0)
        return;
    assert(when >= now_ && "scheduling into the past");
    if (when < now_)
        when = now_;
    if (engine_ == Engine::Heap ||
        (drain_active() && when < drain_end_)) {
        for (size_t i = 0; i < n; ++i)
            place_node(when, make_node(std::move(cbs[i])));
        return;
    }
    // One wheel touch for the whole run: resolve the bucket via the
    // first node's filing, then append the rest to the memoized slot.
    place_node(when, make_node(std::move(cbs[0])));
    for (size_t i = 1; i < n; ++i)
        place_node(when, make_node(std::move(cbs[i])));
}

void
EventQueue::heap_push(HeapEntry e)
{
    heap_.push_back(e);
    size_t i = heap_.size() - 1;
    while (i > 0) {
        size_t parent = (i - 1) / 2;
        if (!fires_before(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

EventQueue::HeapEntry
EventQueue::heap_pop()
{
    HeapEntry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    size_t n = heap_.size();
    size_t i = 0;
    for (;;) {
        size_t left = 2 * i + 1;
        if (left >= n)
            break;
        size_t best = left;
        size_t right = left + 1;
        if (right < n && fires_before(heap_[right], heap_[left]))
            best = right;
        if (!fires_before(heap_[best], heap_[i]))
            break;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
    return top;
}

uint64_t
EventQueue::run_wheel(bool bounded, TimePs deadline)
{
    uint64_t executed = 0;
    for (;;) {
        if (!drain_active()) {
            if (pending_ == 0 || !advance())
                break;
        }
        const Ready r = drain_[drain_pos_];
        if (bounded && r.when > deadline)
            break;
        ++drain_pos_;
        --pending_;
        now_ = r.when;
        Node& nd = node(r.node);
        nd.cb.invoke_and_dispose();
        free_nodes_.push_back(r.node);
        ++executed;
        ++executed_total_;
    }
    if (!drain_active()) {
        drain_.clear();
        drain_pos_ = 0;
    }
    return executed;
}

uint64_t
EventQueue::run_heap(bool bounded, TimePs deadline)
{
    uint64_t executed = 0;
    while (!heap_.empty()) {
        if (bounded && heap_.front().when > deadline)
            break;
        HeapEntry top = heap_pop();
        --pending_;
        now_ = top.when;
        Node& nd = node(top.node);
        nd.cb.invoke_and_dispose();
        free_nodes_.push_back(top.node);
        ++executed;
        ++executed_total_;
    }
    return executed;
}

uint64_t
EventQueue::run()
{
    return engine_ == Engine::Wheel ? run_wheel(false, 0)
                                    : run_heap(false, 0);
}

uint64_t
EventQueue::run_until(TimePs deadline)
{
    uint64_t executed = engine_ == Engine::Wheel
                            ? run_wheel(true, deadline)
                            : run_heap(true, deadline);
    if (now_ < deadline)
        now_ = deadline;
    return executed;
}

void
EventQueue::clear()
{
    if (engine_ == Engine::Heap) {
        for (const HeapEntry& e : heap_)
            release_node(e.node);
        heap_.clear();
        pending_ = 0;
        return;
    }
    for (Level& lv : levels_) {
        if (lv.summary == 0)
            continue;
        for (uint32_t w = 0; w < kSlots / 64; ++w) {
            uint64_t word = lv.words[w];
            while (word) {
                uint32_t slot =
                    (w << 6) + uint32_t(__builtin_ctzll(word));
                word &= word - 1;
                uint32_t idx = lv.slots[slot].first;
                while (idx != kNil) {
                    uint32_t next = node(idx).next;
                    release_node(idx);
                    idx = next;
                }
                lv.slots[slot] = {kNil, kNil};
            }
            lv.words[w] = 0;
        }
        lv.summary = 0;
    }
    for (size_t i = drain_pos_; i < drain_.size(); ++i)
        release_node(drain_[i].node);
    drain_.clear();
    drain_pos_ = 0;
    for (uint32_t idx : overflow_)
        release_node(idx);
    overflow_.clear();
    memo_valid_ = false;
    pending_ = 0;
}

} // namespace fld::sim
