#include "sim/event_queue.h"

#include "util/logging.h"

namespace fld::sim {

void
EventQueue::schedule_at(TimePs when, Callback cb)
{
    if (when < now_)
        panic("scheduling into the past: %llu < %llu",
              (unsigned long long)when, (unsigned long long)now_);
    heap_.push(Event{when, next_seq_++, std::move(cb)});
}

uint64_t
EventQueue::run()
{
    uint64_t executed = 0;
    while (!heap_.empty()) {
        // Copying the callback out before pop keeps re-entrant
        // scheduling from invalidating the event being executed.
        Event ev = heap_.top();
        heap_.pop();
        now_ = ev.when;
        ev.cb();
        ++executed;
    }
    return executed;
}

uint64_t
EventQueue::run_until(TimePs deadline)
{
    uint64_t executed = 0;
    while (!heap_.empty() && heap_.top().when <= deadline) {
        Event ev = heap_.top();
        heap_.pop();
        now_ = ev.when;
        ev.cb();
        ++executed;
    }
    if (now_ < deadline)
        now_ = deadline;
    return executed;
}

void
EventQueue::clear()
{
    heap_ = {};
}

} // namespace fld::sim
