#include "sim/churn.h"

#include <cmath>

namespace fld::sim {

namespace {
/** splitmix64 finalizer: serial -> well-mixed 64-bit flow key. */
uint64_t
mix(uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}
} // namespace

ChurnGen::ChurnGen(ChurnConfig cfg) : cfg_(cfg), rng_(cfg.seed)
{
    if (cfg_.tenants == 0)
        cfg_.tenants = 1;
    if (cfg_.flows_per_tenant == 0)
        cfg_.flows_per_tenant = 1;
    if (cfg_.max_bytes < cfg_.min_bytes)
        cfg_.max_bytes = cfg_.min_bytes;
    live_.reserve(target_population());
}

ChurnEvent
ChurnGen::open_new()
{
    uint64_t serial = next_serial_++;
    // Round-robin tenants during the ramp so every tenant reaches its
    // quota; afterwards replacements keep the assignment uniform.
    uint16_t tenant = uint16_t(serial % cfg_.tenants);
    uint64_t key = mix(serial + (cfg_.seed << 17) + 0x51ull);
    live_.push_back({key, tenant});
    return {now_, ChurnOp::Open, key, tenant, 0, false};
}

size_t
ChurnGen::pick_live()
{
    // Approximate Zipf: rank = N * u^(1+skew) concentrates picks on
    // low ranks; flows keep their slot index for their lifetime so
    // low-index (old) flows become the elephants.
    double u = rng_.uniform_double();
    double r = std::pow(u, 1.0 + cfg_.skew);
    size_t idx = size_t(r * double(live_.size()));
    return idx < live_.size() ? idx : live_.size() - 1;
}

ChurnEvent
ChurnGen::next()
{
    now_ += cfg_.spacing;
    if (!ramped_) {
        ChurnEvent ev = open_new();
        if (live_.size() >= target_population())
            ramped_ = true;
        return ev;
    }

    // Steady phase: optional faults first, then the regular mix.
    if (cfg_.dup_open_prob > 0 && rng_.chance(cfg_.dup_open_prob) &&
        !live_.empty()) {
        const LiveFlow& f = live_[pick_live()];
        return {now_, ChurnOp::Open, f.key, f.tenant, 0, true};
    }
    if (cfg_.stray_close_prob > 0 &&
        rng_.chance(cfg_.stray_close_prob)) {
        // A key no open_new() ever produced (different salt).
        uint64_t key = mix(rng_.next()) | (1ull << 63);
        return {now_, ChurnOp::Close, key, 0, 0, true};
    }

    if (!rng_.chance(cfg_.packet_fraction) || live_.empty()) {
        if (close_next_ && !live_.empty()) {
            close_next_ = false;
            size_t idx = rng_.uniform(live_.size());
            ChurnEvent ev{now_, ChurnOp::Close, live_[idx].key,
                          live_[idx].tenant, 0, false};
            live_[idx] = live_.back();
            live_.pop_back();
            return ev;
        }
        close_next_ = true;
        return open_new();
    }

    const LiveFlow& f = live_[pick_live()];
    uint32_t bytes = uint32_t(
        rng_.range(cfg_.min_bytes, cfg_.max_bytes));
    return {now_, ChurnOp::Packet, f.key, f.tenant, bytes, false};
}

} // namespace fld::sim
