/**
 * @file
 * Simulator-throughput telemetry: how fast the discrete-event engine
 * itself runs, as opposed to what the simulated hardware achieves.
 *
 * A SimPerfSample pairs a wall-clock measurement around eq.run() with
 * the engine's lifetime counters (EventQueue::executed_total) and a
 * caller-supplied packet count, yielding events/sec, packets/sec and
 * the sim-time/wall-time ratio. SimPerfReport serializes samples as
 * JSON (BENCH_SIM_PERF.json) so CI can archive the numbers per commit
 * and regressions in simulator speed show up as a diffable artifact.
 *
 * Wall-clock time never feeds back into the simulation — telemetry is
 * observation only, so traced/golden runs stay bit-identical.
 */
#ifndef FLD_SIM_SIM_PERF_H
#define FLD_SIM_SIM_PERF_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace fld::sim {

struct SimPerfSample
{
    std::string name;      ///< e.g. "fld_echo_remote_256B"
    double wall_sec = 0;   ///< host seconds spent inside the run
    uint64_t events = 0;   ///< engine events executed during the run
    uint64_t packets = 0;  ///< packets delivered during the run
    TimePs sim_time = 0;   ///< simulated time the run advanced
    /** Wheel-engine telemetry for the run: bucket occupancy and
     *  cascade counts (all zero under Engine::Heap). Capture with
     *  take_wheel_stats(). */
    EventQueue::WheelStats wheel;

    /** Diff @p eq's lifetime wheel stats against @p start_of_run. */
    void take_wheel_stats(const EventQueue& eq,
                          const EventQueue::WheelStats& start_of_run)
    {
        const EventQueue::WheelStats& end = eq.wheel_stats();
        wheel.bucket_drains =
            end.bucket_drains - start_of_run.bucket_drains;
        wheel.drained_events =
            end.drained_events - start_of_run.drained_events;
        wheel.max_bucket = end.max_bucket;
        wheel.cascades = end.cascades - start_of_run.cascades;
        wheel.cascaded_events =
            end.cascaded_events - start_of_run.cascaded_events;
        wheel.overflow_filed =
            end.overflow_filed - start_of_run.overflow_filed;
        wheel.overflow_refiled =
            end.overflow_refiled - start_of_run.overflow_refiled;
    }

    double events_per_sec() const
    {
        return wall_sec > 0 ? double(events) / wall_sec : 0;
    }
    double packets_per_sec() const
    {
        return wall_sec > 0 ? double(packets) / wall_sec : 0;
    }
    /** Simulated seconds per wall second (>1 = faster than real time). */
    double sim_time_ratio() const
    {
        return wall_sec > 0 ? to_sec(sim_time) / wall_sec : 0;
    }
};

class SimPerfReport
{
  public:
    void add(SimPerfSample s) { samples_.push_back(std::move(s)); }
    const std::vector<SimPerfSample>& samples() const
    {
        return samples_;
    }

    /** The BENCH_SIM_PERF.json schema: {"samples": [{...}, ...]}. */
    std::string to_json() const;
    /** Write to_json() to @p path. Returns false on I/O error. */
    bool write_json(const std::string& path) const;

  private:
    std::vector<SimPerfSample> samples_;
};

} // namespace fld::sim

#endif // FLD_SIM_SIM_PERF_H
