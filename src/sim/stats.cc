#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/strings.h"

namespace fld::sim {

void
Histogram::add(double sample)
{
    samples_.push_back(sample);
    sum_ += sample;
    sum_sq_ += sample * sample;
    sorted_valid_ = false;
}

double
Histogram::mean() const
{
    return samples_.empty() ? 0.0 : sum_ / double(samples_.size());
}

double
Histogram::min() const
{
    ensure_sorted();
    return sorted_.empty() ? 0.0 : sorted_.front();
}

double
Histogram::max() const
{
    ensure_sorted();
    return sorted_.empty() ? 0.0 : sorted_.back();
}

double
Histogram::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    double n = double(samples_.size());
    double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
    return var > 0 ? std::sqrt(var) : 0.0;
}

double
Histogram::percentile(double pct) const
{
    ensure_sorted();
    if (sorted_.empty())
        return std::numeric_limits<double>::quiet_NaN();
    if (sorted_.size() == 1)
        return sorted_.front();
    double rank = pct / 100.0 * double(sorted_.size() - 1);
    size_t lo = size_t(rank);
    if (lo + 1 >= sorted_.size())
        return sorted_.back();
    double frac = rank - double(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double
Histogram::p(double q) const
{
    q = std::clamp(q, 0.0, 1.0);
    return percentile(q * 100.0);
}

void
Histogram::clear()
{
    samples_.clear();
    sorted_.clear();
    sorted_valid_ = false;
    sum_ = sum_sq_ = 0;
}

std::string
Histogram::summary() const
{
    return strfmt("n=%zu mean=%.3f p50=%.3f p99=%.3f p99.9=%.3f max=%.3f",
                  count(), mean(), percentile(50), percentile(99),
                  percentile(99.9), max());
}

std::string
FaultCounters::summary() const
{
    return strfmt("wire: frames=%llu drop=%llu corrupt=%llu dup=%llu "
                  "reorder=%llu | pcie: rd_delay=%llu rd_stall=%llu "
                  "db_jitter=%llu | accel: stall=%llu",
                  (unsigned long long)wire_frames,
                  (unsigned long long)wire_drops,
                  (unsigned long long)wire_corruptions,
                  (unsigned long long)wire_duplicates,
                  (unsigned long long)wire_reorders,
                  (unsigned long long)pcie_read_delays,
                  (unsigned long long)pcie_read_stalls,
                  (unsigned long long)pcie_doorbell_jitters,
                  (unsigned long long)accel_stalls);
}

std::string
ConservationLedger::check() const
{
    if (rx + accounted_losses + in_flight < tx)
        return strfmt("conservation violated: %llu frames vanished "
                      "unaccounted (%s)",
                      (unsigned long long)(tx - rx - accounted_losses -
                                           in_flight),
                      summary().c_str());
    if (rx > tx + duplicates)
        return strfmt("conservation violated: %llu frames conjured from "
                      "nothing (%s)",
                      (unsigned long long)(rx - tx - duplicates),
                      summary().c_str());
    return "";
}

std::string
ConservationLedger::summary() const
{
    return strfmt("tx=%llu rx=%llu losses=%llu dup=%llu inflight=%llu",
                  (unsigned long long)tx, (unsigned long long)rx,
                  (unsigned long long)accounted_losses,
                  (unsigned long long)duplicates,
                  (unsigned long long)in_flight);
}

void
Histogram::ensure_sorted() const
{
    if (!sorted_valid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sorted_valid_ = true;
    }
}

} // namespace fld::sim
