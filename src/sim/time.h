/**
 * @file
 * Simulated time base.
 *
 * Simulation time is measured in integer picoseconds. At the link rates
 * the model uses (10/25/40/50/100/400 Gbps) byte serialization delays
 * are exact integers of picoseconds, which keeps runs bit-reproducible.
 */
#ifndef FLD_SIM_TIME_H
#define FLD_SIM_TIME_H

#include <cstdint>

namespace fld::sim {

/** Simulated time in picoseconds. */
using TimePs = uint64_t;

constexpr TimePs kPsPerNs = 1000;
constexpr TimePs kPsPerUs = 1000 * 1000;
constexpr TimePs kPsPerMs = 1000ull * 1000 * 1000;
constexpr TimePs kPsPerSec = 1000ull * 1000 * 1000 * 1000;

constexpr TimePs nanoseconds(double ns) { return TimePs(ns * kPsPerNs); }
constexpr TimePs microseconds(double us) { return TimePs(us * kPsPerUs); }
constexpr TimePs milliseconds(double ms) { return TimePs(ms * kPsPerMs); }
constexpr TimePs seconds(double s) { return TimePs(s * kPsPerSec); }

constexpr double to_ns(TimePs t) { return double(t) / kPsPerNs; }
constexpr double to_us(TimePs t) { return double(t) / kPsPerUs; }
constexpr double to_ms(TimePs t) { return double(t) / kPsPerMs; }
constexpr double to_sec(TimePs t) { return double(t) / kPsPerSec; }

/** Serialization time of @p bytes at @p gbps (bits per ns == Gbps). */
constexpr TimePs serialize_time(uint64_t bytes, double gbps)
{
    // bytes * 8 bits / (gbps bits/ns) in ps = bytes * 8000 / gbps.
    return TimePs(double(bytes) * 8000.0 / gbps + 0.5);
}

/** Throughput in Gbps given bytes moved over elapsed time. */
constexpr double gbps_of(uint64_t bytes, TimePs elapsed)
{
    return elapsed == 0 ? 0.0 : double(bytes) * 8000.0 / double(elapsed);
}

} // namespace fld::sim

#endif // FLD_SIM_TIME_H
