/**
 * @file
 * Token-bucket rate limiter.
 *
 * Used by the NIC model's traffic shaper (the paper's IoT isolation
 * experiment relies on NIC maximum-bandwidth shaping, §5.4/§8.2.3) and
 * by workload generators that emit at a fixed offered load.
 */
#ifndef FLD_SIM_TOKEN_BUCKET_H
#define FLD_SIM_TOKEN_BUCKET_H

#include <cstdint>

#include "sim/time.h"

namespace fld::sim {

class TokenBucket
{
  public:
    /**
     * @param rate_gbps Sustained rate in Gbps (0 = unlimited).
     * @param burst_bytes Bucket depth; bounds burstiness.
     */
    TokenBucket(double rate_gbps, uint64_t burst_bytes)
        : rate_gbps_(rate_gbps), burst_(burst_bytes),
          tokens_(double(burst_bytes))
    {}

    double rate_gbps() const { return rate_gbps_; }
    void set_rate(double gbps) { rate_gbps_ = gbps; }

    /** True if @p bytes may pass now; consumes tokens when true. */
    bool try_consume(TimePs now, uint64_t bytes);

    /**
     * Earliest time at which @p bytes worth of tokens will be
     * available (== @p now when they already are).
     */
    TimePs ready_time(TimePs now, uint64_t bytes);

  private:
    void refill(TimePs now);

    double rate_gbps_;
    uint64_t burst_;
    double tokens_;
    TimePs last_refill_ = 0;
};

} // namespace fld::sim

#endif // FLD_SIM_TOKEN_BUCKET_H
