/**
 * @file
 * Move-only callable wrappers with small-buffer optimization.
 *
 * MoveFunction<R(Args...)> is the tree's replacement for std::function
 * on hot paths: unlike std::function it never copies the stored
 * callable, so events and completion handlers carrying packet payloads
 * move through the scheduler and the PCIe fabric without duplicating
 * their bytes; and callables whose captures fit the inline budget are
 * stored in place, so an ordinary datapath hop performs no heap
 * allocation at all. Oversized callables fall back to a single heap
 * cell.
 *
 * InlineCallback (= MoveFunction<void()>) is the event queue's
 * callback type; the PCIe fabric and host-core run queues use the
 * parameterized signatures for their DMA completion handlers.
 */
#ifndef FLD_SIM_INLINE_CALLBACK_H
#define FLD_SIM_INLINE_CALLBACK_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace fld::sim {

template <typename Sig>
class MoveFunction;

template <typename R, typename... Args>
class MoveFunction<R(Args...)>
{
  public:
    /**
     * Inline capture budget. The largest common datapath capture is a
     * moved net::Packet (vector + 40 B of metadata, 64 B total) plus a
     * this-pointer and a couple of scalars; 112 B covers all of the
     * tree's hot-path hops with room to spare.
     */
    static constexpr size_t kInlineBytes = 112;

    MoveFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, MoveFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
    MoveFunction(F&& fn) // NOLINT: implicit, like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            new (storage_) Fn(std::forward<F>(fn));
            ops_ = &kInlineOps<Fn>;
        } else {
            new (storage_) Fn*(new Fn(std::forward<F>(fn)));
            ops_ = &kHeapOps<Fn>;
        }
    }

    MoveFunction(MoveFunction&& other) noexcept { move_from(other); }

    MoveFunction& operator=(MoveFunction&& other) noexcept
    {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    MoveFunction(const MoveFunction&) = delete;
    MoveFunction& operator=(const MoveFunction&) = delete;

    ~MoveFunction() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    R operator()(Args... args)
    {
        return ops_->invoke(storage_, std::forward<Args>(args)...);
    }

    /**
     * Invoke, then destroy the stored callable, leaving *this empty —
     * one indirect call instead of two. The event queue's drain loop
     * executes nodes in place with this, so a popped event never pays
     * a separate destructor dispatch (and a re-entrant reset() of the
     * same node during the call stays harmless: ops_ is cleared before
     * the callable runs).
     */
    R invoke_and_dispose(Args... args)
    {
        const Ops* ops = ops_;
        ops_ = nullptr;
        return ops->invoke_destroy(storage_,
                                   std::forward<Args>(args)...);
    }

    /** Destroy the stored callable (no-op when empty). */
    void reset()
    {
        if (ops_) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        R (*invoke)(void*, Args&&...);
        void (*destroy)(void*);
        /** Move-construct into @p dst, then destroy @p src. */
        void (*relocate)(void* dst, void* src);
        /** invoke() then destroy() fused (storage left destroyed). */
        R (*invoke_destroy)(void*, Args&&...);
    };

    template <typename Fn>
    static constexpr Ops kInlineOps = {
        [](void* p, Args&&... args) -> R {
            return (*static_cast<Fn*>(p))(std::forward<Args>(args)...);
        },
        [](void* p) { static_cast<Fn*>(p)->~Fn(); },
        [](void* dst, void* src) {
            new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
        },
        [](void* p, Args&&... args) -> R {
            // In place: the caller guarantees the storage outlives the
            // call (the event queue recycles a node only after this
            // returns), so the callable never pays a relocation.
            Fn* fn = static_cast<Fn*>(p);
            struct Destroy
            {
                Fn* fn;
                ~Destroy() { fn->~Fn(); }
            } destroy_guard{fn};
            return (*fn)(std::forward<Args>(args)...);
        },
    };

    template <typename Fn>
    static constexpr Ops kHeapOps = {
        [](void* p, Args&&... args) -> R {
            return (**static_cast<Fn**>(p))(
                std::forward<Args>(args)...);
        },
        [](void* p) { delete *static_cast<Fn**>(p); },
        [](void* dst, void* src) {
            new (dst) Fn*(*static_cast<Fn**>(src));
        },
        [](void* p, Args&&... args) -> R {
            Fn* fn = *static_cast<Fn**>(p);
            struct Free
            {
                Fn* fn;
                ~Free() { delete fn; }
            } free_guard{fn};
            return (*fn)(std::forward<Args>(args)...);
        },
    };

    void move_from(MoveFunction& other) noexcept
    {
        ops_ = other.ops_;
        if (ops_)
            ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const Ops* ops_ = nullptr;
};

/** The event queue's callback type. */
using InlineCallback = MoveFunction<void()>;

} // namespace fld::sim

#endif // FLD_SIM_INLINE_CALLBACK_H
