/**
 * @file
 * Move-only callable wrapper with small-buffer optimization — the
 * event queue's callback type.
 *
 * Unlike std::function it never copies the stored callable, so events
 * carrying packet payloads move through the scheduler without
 * duplicating their bytes; and callables whose captures fit the
 * inline budget are stored in place, so scheduling an ordinary
 * datapath hop performs no heap allocation at all. Oversized
 * callables fall back to a single heap cell.
 */
#ifndef FLD_SIM_INLINE_CALLBACK_H
#define FLD_SIM_INLINE_CALLBACK_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace fld::sim {

class InlineCallback
{
  public:
    /**
     * Inline capture budget. The largest common datapath capture is a
     * moved net::Packet (vector + 40 B of metadata, 64 B total) plus a
     * this-pointer and a couple of scalars; 112 B covers all of the
     * tree's hot-path hops with room to spare.
     */
    static constexpr size_t kInlineBytes = 112;

    InlineCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    InlineCallback(F&& fn) // NOLINT: implicit, like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            new (storage_) Fn(std::forward<F>(fn));
            ops_ = &kInlineOps<Fn>;
        } else {
            new (storage_) Fn*(new Fn(std::forward<F>(fn)));
            ops_ = &kHeapOps<Fn>;
        }
    }

    InlineCallback(InlineCallback&& other) noexcept
    {
        move_from(other);
    }

    InlineCallback& operator=(InlineCallback&& other) noexcept
    {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    InlineCallback(const InlineCallback&) = delete;
    InlineCallback& operator=(const InlineCallback&) = delete;

    ~InlineCallback() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void operator()() { ops_->invoke(storage_); }

    /** Destroy the stored callable (no-op when empty). */
    void reset()
    {
        if (ops_) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void*);
        void (*destroy)(void*);
        /** Move-construct into @p dst, then destroy @p src. */
        void (*relocate)(void* dst, void* src);
    };

    template <typename Fn>
    static constexpr Ops kInlineOps = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* p) { static_cast<Fn*>(p)->~Fn(); },
        [](void* dst, void* src) {
            new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
        },
    };

    template <typename Fn>
    static constexpr Ops kHeapOps = {
        [](void* p) { (**static_cast<Fn**>(p))(); },
        [](void* p) { delete *static_cast<Fn**>(p); },
        [](void* dst, void* src) {
            new (dst) Fn*(*static_cast<Fn**>(src));
        },
    };

    void move_from(InlineCallback& other) noexcept
    {
        ops_ = other.ops_;
        if (ops_)
            ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const Ops* ops_ = nullptr;
};

} // namespace fld::sim

#endif // FLD_SIM_INLINE_CALLBACK_H
