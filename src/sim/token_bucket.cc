#include "sim/token_bucket.h"

#include <algorithm>

namespace fld::sim {

void
TokenBucket::refill(TimePs now)
{
    if (now <= last_refill_)
        return;
    // rate_gbps bits/ns == rate_gbps/8000 bytes/ps.
    double earned = double(now - last_refill_) * rate_gbps_ / 8000.0;
    tokens_ = std::min(double(burst_), tokens_ + earned);
    last_refill_ = now;
}

bool
TokenBucket::try_consume(TimePs now, uint64_t bytes)
{
    if (rate_gbps_ <= 0.0)
        return true; // unlimited
    refill(now);
    if (tokens_ < double(bytes))
        return false;
    tokens_ -= double(bytes);
    return true;
}

TimePs
TokenBucket::ready_time(TimePs now, uint64_t bytes)
{
    if (rate_gbps_ <= 0.0)
        return now;
    refill(now);
    if (tokens_ >= double(bytes))
        return now;
    double deficit = double(bytes) - tokens_;
    TimePs wait = TimePs(deficit * 8000.0 / rate_gbps_) + 1;
    return now + wait;
}

} // namespace fld::sim
