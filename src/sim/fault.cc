#include "sim/fault.h"

namespace fld::sim {

/*
 * Draw order is part of the reproducible contract: each frame draws
 * at most one verdict chain (drop, then corrupt, then duplicate, then
 * reorder), and every draw is skipped when its probability is zero.
 * That way a config that only sets drop_prob consumes exactly one
 * draw per frame regardless of the other knobs' defaults.
 */
WireFault
FaultPlan::next_wire_fault(const WireFaultConfig& cfg)
{
    counters_.wire_frames++;
    if (chance(cfg.drop_prob)) {
        counters_.wire_drops++;
        return WireFault::Drop;
    }
    if (chance(cfg.corrupt_prob)) {
        counters_.wire_corruptions++;
        return WireFault::Corrupt;
    }
    if (chance(cfg.duplicate_prob)) {
        counters_.wire_duplicates++;
        return WireFault::Duplicate;
    }
    if (chance(cfg.reorder_prob)) {
        counters_.wire_reorders++;
        return WireFault::Reorder;
    }
    return WireFault::None;
}

TimePs
FaultPlan::next_reorder_delay(const WireFaultConfig& cfg)
{
    return uniform_delay(cfg.reorder_delay_max);
}

void
FaultPlan::corrupt_bytes(uint8_t* data, size_t len)
{
    if (len == 0)
        return;
    uint64_t bit = rng_.uniform(uint64_t(len) * 8);
    data[bit / 8] ^= uint8_t(1u << (bit % 8));
}

TimePs
FaultPlan::next_read_completion_delay(const PcieFaultConfig& cfg)
{
    // Stalls dominate: a stalled completion is already late, so the
    // short-jitter draw is skipped for it.
    if (chance(cfg.read_stall_prob)) {
        counters_.pcie_read_stalls++;
        return cfg.read_stall_time;
    }
    if (chance(cfg.read_delay_prob)) {
        counters_.pcie_read_delays++;
        return uniform_delay(cfg.read_delay_max);
    }
    return 0;
}

TimePs
FaultPlan::next_doorbell_jitter(const PcieFaultConfig& cfg, size_t len)
{
    if (len > cfg.doorbell_max_bytes)
        return 0;
    if (!chance(cfg.doorbell_jitter_prob))
        return 0;
    counters_.pcie_doorbell_jitters++;
    return uniform_delay(cfg.doorbell_jitter_max);
}

TimePs
FaultPlan::next_accel_stall(const AccelFaultConfig& cfg)
{
    if (!chance(cfg.stall_prob))
        return 0;
    counters_.accel_stalls++;
    return cfg.stall_time;
}

TimePs
FaultPlan::uniform_delay(TimePs max)
{
    return max <= 1 ? 1 : 1 + rng_.uniform(max);
}

} // namespace fld::sim
