/**
 * @file
 * Differential scenario fuzzing: seed -> scenario generation and
 * greedy failure shrinking.
 *
 * The hand-written experiments in apps/scenarios.cc only visit a few
 * curated points of the configuration space; the paper's equivalence
 * claim — an unmodified ConnectX-5 interface behaves identically
 * whether the hardware FLD or the CPU driver is in charge (§3) — is
 * worth checking *everywhere*. This layer provides the pieces that do
 * not depend on the testbed:
 *
 *  - FuzzScenario: a plain-data description of one randomized run
 *    (queue/RSS/MPRQ geometry, offload knobs, VXLAN, shaping, the
 *    workload shape, and a sim::FaultConfig). Everything needed to
 *    reproduce a run is in this struct plus the code revision.
 *  - ScenarioFuzzer: a pure function from a 64-bit seed to a
 *    FuzzScenario, so a failure report is just one number.
 *  - ScenarioShrinker: greedy minimization of a failing scenario
 *    against a caller-supplied "does it still fail?" predicate —
 *    fewer packets, fewer flows, fault classes removed one at a time,
 *    knobs reset to defaults.
 *
 * The testbed-facing half (materializing a FuzzScenario into Testbed
 * configs and judging the oracles) lives in apps/fuzz_runner.h; the
 * CLI in tools/fld_fuzz.cc ties the two together.
 */
#ifndef FLD_SIM_FUZZ_H
#define FLD_SIM_FUZZ_H

#include <cstdint>
#include <functional>
#include <string>

#include "sim/fault.h"

namespace fld::sim {

/** Which datapath the scenario drives. */
enum class FuzzMode : uint8_t {
    EthEcho,  ///< FLD-E echo AFU vs CPU testpmd echo (differential)
    RdmaEcho, ///< FLD-R echo over the RC transport (exactly-once)
    ConnServe,///< host fast path TCP workload, FLD- vs CPU-served
    RpcServe, ///< RPC tier over the fast path, FLD- vs CPU-served
};

const char* to_string(FuzzMode mode);

/** Traffic shape offered to the scenario under test. */
struct FuzzWorkload
{
    FuzzMode mode = FuzzMode::EthEcho;
    /** Frames (EthEcho) or messages (RdmaEcho) to send in total. */
    uint32_t packets = 32;
    /** Frame size incl. headers (EthEcho) / message bytes (RdmaEcho). */
    uint32_t bytes = 256;
    /** Draw EthEcho frame sizes from the IMC-2010 mixture instead. */
    bool imc_mix = false;
    /** Distinct UDP flows (source ports); RSS spreads them. */
    uint32_t flows = 1;
    /** Closed-loop outstanding window; 0 selects open loop. */
    uint32_t window = 8;
    /** Open-loop offered rate (only used when window == 0). */
    double offered_gbps = 0.0;
};

/**
 * Connection-workload shape for FuzzMode::ConnServe scenarios: an
 * AppEmu client opens TCP connections through the host fast path to a
 * server stack that is either FLD-served or CPU-served (the
 * differential pair), sends patterned requests on each and closes.
 * Every generated scenario carries valid conn fields regardless of
 * mode, so `fld_fuzz --conn` can force-serve any seed.
 */
struct ConnWorkload
{
    uint32_t connections = 8;
    uint32_t requests = 4;       ///< requests per connection
    uint32_t request_bytes = 256;
    bool closed_loop = true;     ///< wait for acks between requests
    uint32_t churn_cycles = 0;   ///< close/reopen rounds per slot
    uint32_t rto_us = 200;       ///< per-connection retransmit timeout
    /** When non-zero, wire faults hit only this client port's flow
     *  (maps onto FastPathHarnessConfig::fault_target_port). */
    uint16_t fault_target_port = 0;
};

/**
 * RPC-workload shape for FuzzMode::RpcServe scenarios: RpcClientPool
 * opens TCP connections to an RpcServer behind the host fast path and
 * runs closed-loop length-prefixed requests against the accel-backed
 * method set (see apps/rpc_service.h). Like ConnWorkload, every
 * generated scenario carries valid rpc fields regardless of mode so
 * `fld_fuzz --rpc` can force-serve any seed.
 */
struct RpcWorkload
{
    uint32_t connections = 8;
    uint32_t requests = 4;     ///< requests per connection
    uint32_t payload_min = 64;
    uint32_t payload_max = 512;
    /** Bit i enables RPC method id i (echo/zuc/defrag/busy). */
    uint32_t methods_mask = 0xf;
    uint32_t workers = 8;      ///< dispatcher worker bank width
    uint32_t think_us = 5;     ///< mean exponential think time
    /** Client-side TX descriptor chunking (0 = whole slots). */
    uint32_t chunk_bytes = 0;
};

/**
 * Random pipeline-program shape for the programmable match-action
 * pipeline (nic/pipeline.h). When enabled on an EthEcho scenario the
 * runner compiles the installed steering rules into the flat program,
 * splices a behavior-preserving decoration chain in front of them
 * (extra tables with masked/ternary entries, counters, tags, identity
 * NAT, single-backend VIP select, never-matching ACL denies, miss →
 * default goto) seeded from program_seed, and serves both the FLD and
 * the CPU run through the compiled engine — so the four differential
 * oracles judge random programs end to end. Like conn/rpc, every
 * generated scenario carries valid pipeline fields so `fld_fuzz
 * --pipeline` can force the dimension onto any seed.
 */
struct PipelineFuzz
{
    bool enabled = false;
    uint64_t program_seed = 1;
    uint32_t tables = 2;  ///< decoration chain length (1..4)
    uint32_t entries = 2; ///< entries per decoration table (1..4)
    bool use_nat = false; ///< identity dst-NAT decorations
    bool use_vip = false; ///< single-backend VIP decorations
    bool use_acl = false; ///< ACL denies on unused ports
};

/**
 * One randomized run, fully described. Field defaults are the
 * testbed defaults, so a default-constructed scenario reproduces the
 * calibrated fault-free setup and `reset to defaults` shrink passes
 * are literal assignments.
 */
struct FuzzScenario
{
    uint64_t seed = 0; ///< the seed that generated this scenario

    FuzzWorkload workload;
    ConnWorkload conn; ///< used when workload.mode == ConnServe
    RpcWorkload rpc;   ///< used when workload.mode == RpcServe
    PipelineFuzz pipeline; ///< effective on EthEcho scenarios

    // -- receiver geometry ---------------------------------------------
    uint32_t echo_queues = 1;    ///< CPU echo server RSS width
    uint32_t rx_buffers = 0;     ///< MPRQ buffers per RQ (0 = default)
    uint16_t rx_strides = 0;     ///< strides per MPRQ buffer (0 = default)
    uint16_t rx_stride_shift = 0;///< log2 stride bytes (0 = default)

    // -- NIC / driver knobs --------------------------------------------
    uint32_t mtu = 1500;          ///< max frame size the workload uses
    bool cqe_compression = false; ///< mini-CQE receive compression
    uint32_t coalesce_ns = 400;   ///< CQE coalescing window
    bool vxlan = false;           ///< generator tunnels; eSwitch decaps
    uint32_t vni = 0;
    double shaper_gbps = 0.0;     ///< generator SQ max-rate (0 = off)
    uint32_t signal_interval = 0; ///< TX signalling (0 = default)
    bool wqe_by_mmio = true;      ///< inline lone WQEs in doorbells
    uint32_t fetch_inflight = 0;  ///< descriptor reads in flight (0 = dflt)

    // -- fault schedule -------------------------------------------------
    FaultConfig faults; ///< all-zero = perfect world

    bool has_faults() const { return faults.enabled(); }
    /** Faults that can lose a frame outright (drop/corrupt). */
    bool has_lossy_faults() const
    {
        return faults.wire.drop_prob > 0 || faults.wire.corrupt_prob > 0;
    }

    /** Human-readable, replayable dump (one `key = value` per line). */
    std::string to_string() const;
    /** One-line summary for progress output. */
    std::string summary() const;
};

/** Deterministic seed -> scenario mapping. */
class ScenarioFuzzer
{
  public:
    /**
     * Generate the scenario for @p seed. Pure: the same seed always
     * yields the same scenario. Roughly half the scenarios are
     * fault-free (where the byte-identical differential oracle has
     * full power); the rest layer small fault probabilities on top.
     */
    FuzzScenario generate(uint64_t seed) const;
};

/**
 * Predicate handed to the shrinker: true when the (mutated) scenario
 * still exhibits the failure being minimized.
 */
using ScenarioPredicate = std::function<bool(const FuzzScenario&)>;

struct ShrinkResult
{
    FuzzScenario scenario; ///< the minimized failing scenario
    uint32_t predicate_runs = 0;
    uint32_t accepted_mutations = 0;
};

/**
 * Greedy shrinking: repeatedly propose simplifications (smaller
 * packet counts first, then fewer flows, single-window, minimal
 * sizes, individual fault classes removed, knobs reset to defaults)
 * and keep each one iff the predicate still fails, until a fixpoint
 * or the run budget is exhausted.
 */
class ScenarioShrinker
{
  public:
    explicit ScenarioShrinker(ScenarioPredicate still_fails,
                              uint32_t max_predicate_runs = 300)
        : still_fails_(std::move(still_fails)),
          max_runs_(max_predicate_runs)
    {}

    ShrinkResult shrink(const FuzzScenario& failing);

  private:
    ScenarioPredicate still_fails_;
    uint32_t max_runs_;
};

/**
 * FNV-1a 64-bit — the stable content hash used for delivered-stream
 * digests and run transcripts (std::hash is implementation-defined,
 * which would break cross-build replay comparison).
 */
constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x00000100000001b3ull;

inline uint64_t
fnv1a64(const void* data, size_t len, uint64_t h = kFnvBasis)
{
    const uint8_t* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

inline uint64_t
fnv1a64_str(const std::string& s, uint64_t h = kFnvBasis)
{
    return fnv1a64(s.data(), s.size(), h);
}

} // namespace fld::sim

#endif // FLD_SIM_FUZZ_H
