#include "sim/trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "util/logging.h"

namespace fld::sim {

const char*
to_string(TraceEventKind kind)
{
    switch (kind) {
    case TraceEventKind::DoorbellWrite: return "DoorbellWrite";
    case TraceEventKind::WqeFetch:      return "WqeFetch";
    case TraceEventKind::PayloadRead:   return "PayloadRead";
    case TraceEventKind::PayloadWrite:  return "PayloadWrite";
    case TraceEventKind::WireTx:        return "WireTx";
    case TraceEventKind::WireRx:        return "WireRx";
    case TraceEventKind::CqeWrite:      return "CqeWrite";
    case TraceEventKind::Retransmit:    return "Retransmit";
    case TraceEventKind::FaultInject:   return "FaultInject";
    case TraceEventKind::Tunnel:        return "Tunnel";
    }
    return "?";
}

Tracer::~Tracer()
{
    uninstall();
}

void
Tracer::install()
{
    if (detail::active_tracer != nullptr && detail::active_tracer != this)
        panic("a Tracer is already installed");
    detail::active_tracer = this;
}

void
Tracer::uninstall()
{
    if (detail::active_tracer == this)
        detail::active_tracer = nullptr;
}

void
Tracer::emit(TimePs time, TraceEventKind kind, const std::string& actor,
             const char* detail, uint64_t corr, uint32_t queue,
             uint32_t index, uint32_t count, uint64_t bytes)
{
    TraceEvent ev;
    ev.time = time;
    ev.kind = kind;
    ev.actor = actor;
    ev.detail = detail;
    ev.corr = corr;
    ev.queue = queue;
    ev.index = index;
    ev.count = count;
    ev.bytes = bytes;
    events_.push_back(std::move(ev));
}

namespace {

std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

bool
Tracer::write_chrome_json(const std::string& path) const
{
    std::ofstream f(path);
    if (!f)
        return false;

    // One synthetic "thread" per actor, in order of first appearance, so
    // Perfetto groups each component's events on its own track.
    std::map<std::string, int> tids;
    for (const TraceEvent& ev : events_)
        if (!tids.count(ev.actor))
            tids.emplace(ev.actor, int(tids.size()) + 1);

    f << "{\"traceEvents\":[\n";
    f << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"fld-sim\"}}";
    for (const auto& [actor, tid] : tids) {
        f << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
          << tid << ",\"args\":{\"name\":\"" << json_escape(actor)
          << "\"}}";
    }
    char buf[512];
    for (const TraceEvent& ev : events_) {
        // Chrome trace timestamps are microseconds; ours are picoseconds.
        double ts = double(ev.time) / 1e6;
        std::snprintf(
            buf, sizeof(buf),
            ",\n{\"name\":\"%s %s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
            "\"tid\":%d,\"ts\":%.6f,\"args\":{\"corr\":%" PRIu64
            ",\"queue\":%u,\"index\":%u,\"count\":%u,\"bytes\":%" PRIu64
            "}}",
            to_string(ev.kind), ev.detail, tids.at(ev.actor), ts, ev.corr,
            ev.queue, ev.index, ev.count, ev.bytes);
        f << buf;
    }
    f << "\n]}\n";
    return bool(f);
}

std::string
Tracer::digest() const
{
    // Renumber correlation ids by order of first appearance so two runs
    // that allocate different raw ids but behave identically digest the
    // same.  Timestamps are excluded on purpose.
    std::map<uint64_t, uint64_t> renum;
    renum[0] = 0;
    std::ostringstream out;
    for (const TraceEvent& ev : events_) {
        auto [it, fresh] = renum.emplace(ev.corr, renum.size());
        (void)fresh;
        out << to_string(ev.kind) << ' ' << ev.actor << ' ' << ev.detail
            << " corr=" << it->second << " q=" << ev.queue
            << " idx=" << ev.index << " n=" << ev.count
            << " bytes=" << ev.bytes << '\n';
    }
    return out.str();
}

std::vector<std::vector<TraceEventKind>>
Tracer::causal_skeletons(const std::string& detail_filter) const
{
    std::map<uint64_t, size_t> slot;
    std::vector<std::vector<TraceEventKind>> out;
    for (const TraceEvent& ev : events_) {
        if (ev.corr == 0)
            continue;
        switch (ev.kind) {
        case TraceEventKind::PayloadRead:
        case TraceEventKind::PayloadWrite:
        case TraceEventKind::WireTx:
        case TraceEventKind::WireRx:
            break;
        default:
            continue;
        }
        bool is_wire = ev.kind == TraceEventKind::WireTx ||
                       ev.kind == TraceEventKind::WireRx;
        if (!detail_filter.empty() && !is_wire &&
            detail_filter != ev.detail)
            continue;
        auto [it, fresh] = slot.emplace(ev.corr, out.size());
        if (fresh)
            out.emplace_back();
        out[it->second].push_back(ev.kind);
    }
    return out;
}

namespace {

std::string
describe(const TraceEvent& ev)
{
    std::ostringstream out;
    out << "t=" << ev.time << " " << to_string(ev.kind) << " " << ev.actor
        << " " << ev.detail << " corr=" << ev.corr << " q=" << ev.queue
        << " idx=" << ev.index << " n=" << ev.count
        << " bytes=" << ev.bytes;
    return out.str();
}

/// Producer indices are free-running uint32 counters; compare with wrap.
bool
index_le(uint32_t a, uint32_t b)
{
    return int32_t(a - b) <= 0;
}

} // namespace

std::vector<std::string>
TraceChecker::check(const std::vector<TraceEvent>& events)
{
    std::vector<std::string> violations;
    auto fail = [&](const TraceEvent& ev, const std::string& why) {
        violations.push_back(why + " at [" + describe(ev) + "]");
    };

    // Invariant 2 state: highest producer index advertised per
    // (actor, ring class, queue).
    std::map<std::tuple<std::string, std::string, uint32_t>, uint32_t>
        advertised;
    // Invariant 3 state, per correlation id.
    std::map<uint64_t, uint64_t> wire_tx, wire_rx, wire_dup, rx_cqe;
    // Invariant 4 state: payload byte counts per correlation id.
    std::map<uint64_t, std::vector<uint64_t>> payload_bytes;
    std::set<uint64_t> rdma_corr, tunnel_corr;
    // Invariant 5 state: TxOk completions seen, keyed by WQE identity
    // (ring slot + corr). A forwarder keeps the rx corr when echoing,
    // so a wire-duplicated frame yields two WQEs sharing one corr —
    // distinct ring slots, not duplicate completions.
    std::set<std::tuple<std::string, uint32_t, uint32_t, uint64_t>>
        txok_seen;

    TimePs prev_time = 0;
    for (const TraceEvent& ev : events) {
        // 1. Monotonic time.
        if (ev.time < prev_time)
            fail(ev, "time went backwards");
        prev_time = ev.time;

        const std::string detail = ev.detail;
        switch (ev.kind) {
        case TraceEventKind::DoorbellWrite: {
            if (ev.bytes != 4 && ev.bytes != 68)
                fail(ev, "doorbell must be 4 B or 4+64 B inline");
            std::string ring = (detail == "rq") ? "rq" : "sq";
            auto key = std::make_tuple(ev.actor, ring, ev.queue);
            auto it = advertised.find(key);
            if (it == advertised.end())
                advertised.emplace(key, ev.index);
            else if (!index_le(ev.index, it->second))
                it->second = ev.index; // ignore stale (jittered) doorbells
            break;
        }
        case TraceEventKind::WqeFetch: {
            uint64_t stride = (detail == "rq") ? 16 : 64;
            if (ev.bytes != uint64_t(ev.count) * stride)
                fail(ev, "descriptor fetch bytes != count * stride");
            auto key = std::make_tuple(ev.actor, detail, ev.queue);
            auto it = advertised.find(key);
            if (it == advertised.end())
                fail(ev, "descriptor fetch before any doorbell");
            else if (!index_le(ev.index + ev.count, it->second))
                fail(ev, "descriptor fetch beyond doorbell producer index");
            break;
        }
        case TraceEventKind::PayloadRead:
        case TraceEventKind::PayloadWrite:
            if (ev.corr != 0) {
                payload_bytes[ev.corr].push_back(ev.bytes);
                if (detail == "rdma")
                    rdma_corr.insert(ev.corr);
            }
            break;
        case TraceEventKind::WireTx:
            if (ev.corr != 0) {
                wire_tx[ev.corr]++;
                payload_bytes[ev.corr].push_back(ev.bytes);
            }
            break;
        case TraceEventKind::WireRx:
            if (ev.corr != 0) {
                wire_rx[ev.corr]++;
                payload_bytes[ev.corr].push_back(ev.bytes);
            }
            break;
        case TraceEventKind::CqeWrite: {
            uint64_t want = (detail == "RxMini") ? 16 : 64;
            if (ev.bytes != want)
                fail(ev, "CQE bytes do not match title/mini format");
            if ((detail == "Rx" || detail == "RxMini") && ev.corr != 0 &&
                wire_tx.count(ev.corr)) {
                // 3. This packet crossed the wire: its Rx completion must
                // be preceded by a matching wire arrival.
                rx_cqe[ev.corr]++;
                if (rx_cqe[ev.corr] > wire_rx[ev.corr])
                    fail(ev, "Rx CQE without a preceding wire arrival");
            }
            if (detail == "TxOk" && ev.corr != 0) {
                // 5. Exactly-once completion per WQE.
                auto key = std::make_tuple(ev.actor, ev.queue, ev.index,
                                           ev.corr);
                if (!txok_seen.insert(key).second)
                    fail(ev, "duplicate TxOk CQE for the same WQE");
            }
            break;
        }
        case TraceEventKind::FaultInject:
            if (detail == "dup" && ev.corr != 0)
                wire_dup[ev.corr]++;
            break;
        case TraceEventKind::Tunnel:
            if (ev.corr != 0)
                tunnel_corr.insert(ev.corr);
            break;
        case TraceEventKind::Retransmit:
            break;
        }
    }

    // 3 (end of trace). A frame cannot arrive more often than it was sent.
    for (const auto& [corr, rx] : wire_rx) {
        uint64_t tx = wire_tx.count(corr) ? wire_tx.at(corr) : 0;
        uint64_t dup = wire_dup.count(corr) ? wire_dup.at(corr) : 0;
        if (rx > tx + dup) {
            std::ostringstream out;
            out << "corr " << corr << " arrived " << rx
                << " times but was sent only " << tx << "+" << dup
                << " (tx+dup) times";
            violations.push_back(out.str());
        }
    }

    // 4 (end of trace). Ethernet frames keep one byte count across
    // PayloadRead -> WireTx -> WireRx -> PayloadWrite.  RDMA messages are
    // segmented and carry transport headers, and tunneled frames gain or
    // lose the VXLAN outer headers at the eSwitch, so both are exempt.
    for (const auto& [corr, sizes] : payload_bytes) {
        if (rdma_corr.count(corr) || tunnel_corr.count(corr))
            continue;
        for (uint64_t b : sizes) {
            if (b != sizes.front()) {
                std::ostringstream out;
                out << "corr " << corr
                    << " changed payload size mid-flight (" << sizes.front()
                    << " vs " << b << " bytes)";
                violations.push_back(out.str());
                break;
            }
        }
    }

    return violations;
}

} // namespace fld::sim
