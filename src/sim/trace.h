#pragma once
///
/// \file trace.h
/// Packet-lifecycle tracing: a structured event recorder for the simulated
/// datapath plus an invariant checker over recorded traces.
///
/// Design goals:
///  - Zero overhead when disabled.  Components guard every emission with
///    `if (auto* tr = sim::Tracer::active())`; when no tracer is installed
///    this is a single load + branch and no correlation ids are assigned,
///    so untraced runs are bit-identical to a build without tracing.
///  - Time-agnostic.  The tracer never owns a clock; callers pass their own
///    `EventQueue::now()` so one tracer can span several components.
///  - Correlation.  Each packet/WQE carries a `corr` id (threaded through
///    PacketMeta, Wqe/Cqe descriptor bytes and StreamMeta) so every event a
///    packet causes — doorbell, fetch, DMA, wire hop, CQE — can be joined
///    back together.  corr == 0 means "untraced".
///

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace fld::sim {

/// What happened.  One enumerator per observable datapath transaction.
enum class TraceEventKind : uint8_t {
    DoorbellWrite, ///< MMIO doorbell hits the NIC BAR (4 B or 4+64 B inline)
    WqeFetch,      ///< NIC DMA-reads SQ WQEs or RQ descriptors from host/FLD
    PayloadRead,   ///< NIC DMA-reads a packet payload for transmit
    PayloadWrite,  ///< NIC DMA-writes a received payload to a buffer
    WireTx,        ///< frame leaves a NIC port onto the Ethernet link
    WireRx,        ///< frame arrives at the far NIC port
    CqeWrite,      ///< NIC DMA-writes a completion (title or mini CQE)
    Retransmit,    ///< RDMA RC go-back-N retransmission fires
    FaultInject,   ///< injected fault fired (drop/corrupt/dup/reorder/...)
    Tunnel,        ///< eSwitch VXLAN encap/decap changed the frame size
};

const char* to_string(TraceEventKind kind);

class Tracer;
namespace detail {
/// The per-thread active-tracer slot. constinit + inline keeps the
/// hot-path `Tracer::active()` check a direct TLS load (no dynamic-
/// initialization wrapper, which UBSan also objects to for extern
/// thread_local members).
inline constinit thread_local Tracer* active_tracer = nullptr;
} // namespace detail

/// A single recorded transaction.
struct TraceEvent {
    TimePs time = 0;            ///< simulation time of the transaction
    TraceEventKind kind = TraceEventKind::DoorbellWrite;
    std::string actor;          ///< emitting component, e.g. "client_nic"
    const char* detail = "";    ///< kind-specific tag: "sq", "rq", "eth", ...
    uint64_t corr = 0;          ///< packet/WQE correlation id (0 = none)
    uint32_t queue = 0;         ///< SQ/RQ/QP number the event belongs to
    uint32_t index = 0;         ///< descriptor index / producer counter / PSN
    uint32_t count = 1;         ///< descriptors (or frames) in this event
    uint64_t bytes = 0;         ///< bytes moved by the transaction
};

///
/// Structured event recorder.  Install at most one per thread; components
/// discover it through the thread-local `active()` pointer.  The slot
/// being thread-local is what lets parallel sweep workers each trace
/// their own testbed without cross-talk.
///
class Tracer {
public:
    Tracer() = default;
    ~Tracer();

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /// The currently installed tracer, or nullptr when tracing is off.
    static Tracer* active() { return detail::active_tracer; }

    /// Make this tracer the calling thread's active one.  Panics if
    /// another tracer is already installed on this thread.
    void install();

    /// Detach this tracer (no-op if it is not the active one).  Recorded
    /// events survive and can still be exported/checked.
    void uninstall();

    /// Next fresh correlation id (1-based; 0 is reserved for "untraced").
    uint64_t next_corr() { return ++last_corr_; }

    /// Record one event.  `time` is the caller's EventQueue::now().
    void emit(TimePs time, TraceEventKind kind, const std::string& actor,
              const char* detail, uint64_t corr = 0, uint32_t queue = 0,
              uint32_t index = 0, uint32_t count = 1, uint64_t bytes = 0);

    const std::vector<TraceEvent>& events() const { return events_; }
    void clear() { events_.clear(); }

    /// Export in Chrome trace-event JSON ("traceEvents" array of instant
    /// events), loadable by Perfetto / chrome://tracing.  Returns false on
    /// I/O error.
    bool write_chrome_json(const std::string& path) const;

    ///
    /// Deterministic digest of the causal content of the trace: one line
    /// per event with kind/actor/detail/queue/index/count/bytes and the
    /// correlation id renumbered by order of first appearance.  Timestamps
    /// are deliberately excluded, so the digest is stable across runs whose
    /// timing differs but whose causal behaviour is identical.
    ///
    std::string digest() const;

    ///
    /// Per-correlation-id causal skeleton: for every corr != 0, the ordered
    /// list of datapath kinds (PayloadRead/PayloadWrite/WireTx/WireRx) it
    /// experienced.  `detail_filter`, when non-empty, keeps only events
    /// whose detail matches (e.g. "eth").  Used to compare FLD vs CPU
    /// driver runs, whose doorbell/CQE cadence legitimately differs but
    /// whose per-packet payload movement must not.
    ///
    std::vector<std::vector<TraceEventKind>>
    causal_skeletons(const std::string& detail_filter = "") const;

private:
    std::vector<TraceEvent> events_;
    uint64_t last_corr_ = 0;
};

///
/// Validates causal and byte-accounting invariants over a recorded trace.
/// Returns a list of human-readable violations; empty means the trace is
/// consistent with the Fig-7 PCIe accounting model and the causal rules.
///
/// Invariants:
///  1. Time is monotonically non-decreasing.
///  2. No descriptor fetch before its doorbell: per (actor, sq|rq, queue),
///     every WqeFetch must lie below the highest producer index advertised
///     by a preceding DoorbellWrite (indices compared with uint32 wrap).
///  3. Wire causality per correlation id: an Rx CQE for corr c requires a
///     preceding WireRx for c (count-based, applied to corrs that actually
///     crossed the wire); and WireRx(c) <= WireTx(c) + duplications(c).
///  4. Byte accounting matches the Fig-7 overhead model: doorbells are 4 B
///     (or 4+64 B inline), SQ fetches are count*64 B, RQ fetches are
///     count*16 B, title CQEs 64 B, mini CQEs 16 B; and for Ethernet corrs
///     the payload byte count is identical across PayloadRead, WireTx,
///     WireRx and PayloadWrite.
///  5. Exactly-once completion: at most one TxOk CQE per (actor, queue,
///     WQE) even under loss/duplication faults.
///
class TraceChecker {
public:
    std::vector<std::string> check(const std::vector<TraceEvent>& events);
};

} // namespace fld::sim
