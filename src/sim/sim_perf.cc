#include "sim/sim_perf.h"

#include <fstream>

#include "util/strings.h"

namespace fld::sim {

std::string
SimPerfReport::to_json() const
{
    std::string out = "{\n  \"samples\": [";
    bool first = true;
    for (const SimPerfSample& s : samples_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += strfmt(
            "    {\"name\": \"%s\", \"wall_sec\": %.6f, "
            "\"events\": %llu, \"packets\": %llu, "
            "\"sim_sec\": %.9f, \"events_per_sec\": %.0f, "
            "\"packets_per_sec\": %.0f, \"sim_time_ratio\": %.6f, "
            "\"bucket_drains\": %llu, \"avg_bucket\": %.3f, "
            "\"max_bucket\": %llu, \"cascades\": %llu, "
            "\"cascaded_events\": %llu, \"overflow_filed\": %llu}",
            s.name.c_str(), s.wall_sec,
            (unsigned long long)s.events,
            (unsigned long long)s.packets, to_sec(s.sim_time),
            s.events_per_sec(), s.packets_per_sec(),
            s.sim_time_ratio(),
            (unsigned long long)s.wheel.bucket_drains,
            s.wheel.avg_bucket_occupancy(),
            (unsigned long long)s.wheel.max_bucket,
            (unsigned long long)s.wheel.cascades,
            (unsigned long long)s.wheel.cascaded_events,
            (unsigned long long)s.wheel.overflow_filed);
    }
    out += "\n  ]\n}\n";
    return out;
}

bool
SimPerfReport::write_json(const std::string& path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << to_json();
    return bool(f);
}

} // namespace fld::sim
