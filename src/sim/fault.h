/**
 * @file
 * Deterministic fault injection for the simulated substrate.
 *
 * The paper's reliability story rests on mechanisms — the NIC's RC
 * go-back-N retransmission (§5), control-plane error recovery (§5.3),
 * bounded accelerator queues (§5.5) — that a perfect-world simulation
 * never exercises. A FaultPlan is a seeded source of fault decisions
 * that the substrate's components consult at well-defined points:
 *
 *  - the Ethernet wire (nic/wire): per-frame loss, corruption
 *    (dropped by the receiving MAC's FCS check), duplication and
 *    reordering;
 *  - the PCIe fabric (pcie/fabric): delayed or stalled read
 *    completions and doorbell-write delivery jitter;
 *  - accelerators (accel): transient per-unit back-pressure stalls.
 *
 * All knobs default to "off" (probability 0). A FaultPlan with
 * default configs draws *nothing* from its RNG, so attaching one is
 * bit-identical to not attaching one — calibrated benches are never
 * perturbed. Decisions are drawn from one explicitly seeded Rng in
 * event-execution order, which the deterministic event queue makes
 * reproducible run-to-run: the same seed yields the same faults.
 */
#ifndef FLD_SIM_FAULT_H
#define FLD_SIM_FAULT_H

#include <cstdint>

#include "sim/stats.h"
#include "sim/time.h"
#include "util/rng.h"

namespace fld::sim {

/** Per-frame Ethernet wire faults (applied by EthernetLink). */
struct WireFaultConfig
{
    double drop_prob = 0.0;      ///< frame vanishes on the wire
    double corrupt_prob = 0.0;   ///< payload flips; receiver FCS drops
    double duplicate_prob = 0.0; ///< frame delivered twice
    double reorder_prob = 0.0;   ///< frame held back, lands late
    /** Extra delay of a reordered frame, uniform in [1, max]. */
    TimePs reorder_delay_max = microseconds(5);

    bool enabled() const
    {
        return drop_prob > 0 || corrupt_prob > 0 || duplicate_prob > 0 ||
               reorder_prob > 0;
    }
};

/** PCIe fabric faults (applied by PcieFabric). */
struct PcieFaultConfig
{
    /** Split-completion jitter: extra delay uniform in [1, max]. */
    double read_delay_prob = 0.0;
    TimePs read_delay_max = microseconds(2);
    /** Rare long stalls (e.g. a congested switch or retried TLP). */
    double read_stall_prob = 0.0;
    TimePs read_stall_time = microseconds(20);
    /** Doorbell-write delivery jitter, uniform in [1, max]. Applies
     *  to posted writes of at most doorbell_max_bytes (MMIO-sized). */
    double doorbell_jitter_prob = 0.0;
    TimePs doorbell_jitter_max = microseconds(1);
    uint32_t doorbell_max_bytes = 8;

    bool enabled() const
    {
        return read_delay_prob > 0 || read_stall_prob > 0 ||
               doorbell_jitter_prob > 0;
    }
};

/** Transient accelerator back-pressure (applied by accel::Accelerator). */
struct AccelFaultConfig
{
    /** Per-packet chance the chosen unit stalls before service. */
    double stall_prob = 0.0;
    TimePs stall_time = microseconds(5);

    bool enabled() const { return stall_prob > 0; }
};

/** Everything a testbed needs to describe its fault scenario. */
struct FaultConfig
{
    uint64_t seed = 1;
    WireFaultConfig wire;
    PcieFaultConfig pcie;
    AccelFaultConfig accel;

    bool enabled() const
    {
        return wire.enabled() || pcie.enabled() || accel.enabled();
    }
};

/** Wire-level verdict for one frame. */
enum class WireFault : uint8_t {
    None,
    Drop,      ///< never delivered
    Corrupt,   ///< delivered bytes damaged; receiver MAC discards
    Duplicate, ///< delivered twice
    Reorder,   ///< delivered with extra delay
};

/**
 * One seeded decision stream shared by every fault source of a
 * testbed. Components hold a non-owning pointer and pass their own
 * config on each query; a null plan or an all-zero config short-
 * circuits without touching the RNG.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(uint64_t seed) : rng_(seed) {}
    explicit FaultPlan(const FaultConfig& cfg)
        : rng_(cfg.seed), cfg_(cfg)
    {}

    /** The config this plan was built from (wiring convenience). */
    const FaultConfig& config() const { return cfg_; }

    // ---- wire -------------------------------------------------------
    /** Draw the fate of one frame. Counters are bumped here. */
    WireFault next_wire_fault(const WireFaultConfig& cfg);
    /** Extra delivery delay for a Reorder verdict. */
    TimePs next_reorder_delay(const WireFaultConfig& cfg);
    /** Flip one random bit of a corrupted frame in place. */
    void corrupt_bytes(uint8_t* data, size_t len);

    // ---- pcie -------------------------------------------------------
    /** Extra read-completion delay (0 = fault-free). */
    TimePs next_read_completion_delay(const PcieFaultConfig& cfg);
    /** Extra doorbell delivery delay for a write of @p len bytes. */
    TimePs next_doorbell_jitter(const PcieFaultConfig& cfg, size_t len);

    // ---- accel ------------------------------------------------------
    /** Extra unit busy time before serving a packet (0 = none). */
    TimePs next_accel_stall(const AccelFaultConfig& cfg);

    const FaultCounters& counters() const { return counters_; }

  private:
    /** Bernoulli draw that skips the RNG entirely at p == 0. */
    bool chance(double p) { return p > 0 && rng_.chance(p); }
    /** Uniform in [1, max] (max >= 1). */
    TimePs uniform_delay(TimePs max);

    Rng rng_;
    FaultConfig cfg_;
    FaultCounters counters_;
};

} // namespace fld::sim

#endif // FLD_SIM_FAULT_H
