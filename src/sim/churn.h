/**
 * @file
 * Many-tenant flow-churn scenario generator.
 *
 * Scaling the control plane to 10^6 flows is only credible under the
 * traffic that stresses it: hundreds of tenants opening and closing
 * thousands of flows while packets keep arriving on the survivors.
 * ChurnGen produces that stream deterministically — a ramp phase that
 * opens flows up to the target population, then a steady phase mixing
 * packet arrivals (Zipf-skewed across live flows, so heavy hitters
 * exist by construction) with open/close churn and, optionally,
 * control-plane faults (duplicate opens, stray closes).
 *
 * The same generator feeds unit tests, the fuzzer (fld_fuzz --churn)
 * and bench_flow_scale, so all three agree on what "churn" means.
 */
#ifndef FLD_SIM_CHURN_H
#define FLD_SIM_CHURN_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "util/rng.h"

namespace fld::sim {

enum class ChurnOp : uint8_t
{
    Open,  ///< open_flow(key, tenant)
    Close, ///< close_flow(key)
    Packet ///< record(key, bytes)
};

struct ChurnEvent
{
    TimePs time = 0;
    ChurnOp op = ChurnOp::Open;
    uint64_t key = 0;
    uint16_t tenant = 0;
    uint32_t bytes = 0;  ///< packet size (Packet only)
    bool fault = false;  ///< injected duplicate-open / stray-close
};

struct ChurnConfig
{
    uint32_t tenants = 64;
    /** Steady-state live flows per tenant (population =
     *  tenants x flows_per_tenant). */
    uint32_t flows_per_tenant = 256;
    /** Fraction of steady-phase events that are packets; the rest
     *  split evenly between closes and replacement opens. */
    double packet_fraction = 0.8;
    uint32_t min_bytes = 64;
    uint32_t max_bytes = 1500;
    /** Zipf-style skew for picking the flow a packet lands on:
     *  0 = uniform, larger = heavier head. */
    double skew = 1.2;
    /** Simulated gap between consecutive events. */
    TimePs spacing = 100 * kPsPerNs;
    /** Fault injection probabilities (per steady-phase event). */
    double dup_open_prob = 0.0;
    double stray_close_prob = 0.0;
    uint64_t seed = 1;
};

class ChurnGen
{
  public:
    struct LiveFlow
    {
        uint64_t key;
        uint16_t tenant;
    };

    explicit ChurnGen(ChurnConfig cfg);

    /** Next event in the deterministic stream. */
    ChurnEvent next();

    /** True once the initial population has been fully opened. */
    bool ramp_done() const { return ramped_; }

    /** Flows the generator believes are live. */
    size_t live() const { return live_.size(); }
    /** The live set itself (benches sample it for lookup timing). */
    const std::vector<LiveFlow>& live_flows() const { return live_; }

    uint64_t target_population() const
    {
        return uint64_t(cfg_.tenants) * cfg_.flows_per_tenant;
    }

    const ChurnConfig& config() const { return cfg_; }

  private:
    ChurnEvent open_new();
    size_t pick_live();

    ChurnConfig cfg_;
    fld::Rng rng_;
    std::vector<LiveFlow> live_;
    uint64_t next_serial_ = 0;
    TimePs now_ = 0;
    bool ramped_ = false;
    bool close_next_ = false; ///< alternate close/open in churn slots
};

} // namespace fld::sim

#endif // FLD_SIM_CHURN_H
