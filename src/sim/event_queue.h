/**
 * @file
 * Discrete-event simulation engine.
 *
 * A single EventQueue drives a whole simulated testbed (hosts, NICs,
 * PCIe fabric, FLD, accelerators). Events scheduled for the same tick
 * execute in scheduling order (a monotonic sequence number breaks ties),
 * which keeps runs deterministic.
 */
#ifndef FLD_SIM_EVENT_QUEUE_H
#define FLD_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace fld::sim {

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    TimePs now() const { return now_; }

    /** Schedule @p cb to run at absolute time @p when (>= now). */
    void schedule_at(TimePs when, Callback cb);

    /** Schedule @p cb to run @p delay after the current time. */
    void schedule_in(TimePs delay, Callback cb)
    {
        schedule_at(now_ + delay, std::move(cb));
    }

    /** Run events until the queue drains. Returns events executed. */
    uint64_t run();

    /**
     * Run events with timestamp <= @p deadline, then set now to the
     * deadline. Returns events executed.
     */
    uint64_t run_until(TimePs deadline);

    /** Number of pending events. */
    size_t pending() const { return heap_.size(); }

    /** Drop all pending events (used between experiment phases). */
    void clear();

  private:
    struct Event
    {
        TimePs when;
        uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool operator()(const Event& a, const Event& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    TimePs now_ = 0;
    uint64_t next_seq_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

} // namespace fld::sim

#endif // FLD_SIM_EVENT_QUEUE_H
