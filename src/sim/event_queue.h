/**
 * @file
 * Discrete-event simulation engine.
 *
 * A single EventQueue drives a whole simulated testbed (hosts, NICs,
 * PCIe fabric, FLD, accelerators). Events scheduled for the same tick
 * execute in scheduling order (a monotonic sequence number breaks ties),
 * which keeps runs deterministic.
 *
 * Hot-path design: callbacks are move-only InlineCallbacks (no
 * std::function, no per-event copy of captured packet payloads) stored
 * in a chunked, address-stable node pool and executed *in place* — a
 * popped event pays one fused invoke-and-destroy dispatch, never a
 * relocation. Ordering comes from a hierarchical timing wheel
 * (calendar queue) instead of a binary heap: near-future events land
 * in power-of-two buckets of fixed picosecond granularity in O(1),
 * far timers (RTO, time-wait, shapers) live in coarser overflow
 * levels and cascade down as the clock approaches, and the drain loop
 * empties a whole bucket at a time without re-reading the wheel
 * cursor. Scheduling and popping are O(1) amortized — no O(log n)
 * sifts — and steady-state operation performs zero heap allocations
 * once the pool has warmed up.
 *
 * The old binary-heap engine is retained behind Engine::Heap for
 * differential testing: both engines execute the identical total
 * order {when, seq}, so golden traces, same-seed rerun hashes and
 * fuzz oracle verdicts are bit-identical across engines (enforced by
 * tests/integration/wheel_heap_diff_test.cc).
 */
#ifndef FLD_SIM_EVENT_QUEUE_H
#define FLD_SIM_EVENT_QUEUE_H

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/time.h"

namespace fld::sim {

class EventQueue
{
  public:
    using Callback = InlineCallback;

    /** Ordering engine. Wheel is the production engine; Heap is the
     *  legacy binary heap, kept for differential testing (identical
     *  execution order, only the data structure differs). */
    enum class Engine
    {
        Wheel,
        Heap,
    };

    /**
     * Engine used by default-constructed queues. Starts as Wheel, or
     * whatever the FLD_SIM_ENGINE environment variable names ("heap"
     * or "wheel") — handy for A/B runs of any bench or test binary
     * without a rebuild.
     */
    static Engine default_engine();
    /** Override the process-wide default (tests; returns previous). */
    static Engine set_default_engine(Engine e);

    EventQueue() : EventQueue(default_engine()) {}
    explicit EventQueue(Engine engine);
    ~EventQueue();

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    Engine engine() const { return engine_; }

    /** Current simulated time. */
    TimePs now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when. Scheduling into
     * the past would reorder already-executed history; @p when is
     * clamped to now() (with a debug assert, so tests catch the
     * offending component) and the event runs this tick, after all
     * previously scheduled same-tick events — including when the
     * clamp lands inside the bucket currently being drained.
     */
    void schedule_at(TimePs when, Callback cb)
    {
        place_node(when, make_node(std::move(cb)));
    }

    /**
     * Same, constructing the callable directly in its pool node —
     * saves one relocation of the captures per scheduled event. This
     * is the overload lambda call sites resolve to.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Callback>>>
    void schedule_at(TimePs when, F&& fn)
    {
        uint32_t idx = alloc_node();
        ::new (static_cast<void*>(&node(idx).cb))
            Callback(std::forward<F>(fn));
        place_node(when, idx);
    }

    /** Schedule @p cb to run @p delay after the current time. */
    template <typename F>
    void schedule_in(TimePs delay, F&& fn)
    {
        schedule_at(now_ + delay, std::forward<F>(fn));
    }

    /**
     * Burst batching: append a run of callbacks for the same @p when
     * with a single wheel lookup. Equivalent to calling schedule_at
     * once per element in order (same seq assignment, same execution
     * order); hot producers that emit trains of same-timestamp events
     * (mini-CQE trains, DMA chunk fans, doorbell coalescing) pay one
     * bucket resolution for the whole run.
     */
    void schedule_batch(TimePs when, Callback* cbs, size_t n);

    /** Variadic burst: schedule_burst(when, f1, f2, ...). */
    template <typename F0, typename... Fs>
    void schedule_burst(TimePs when, F0&& f0, Fs&&... fns)
    {
        if constexpr (sizeof...(Fs) == 0) {
            schedule_at(when, std::forward<F0>(f0));
        } else {
            Callback cbs[1 + sizeof...(Fs)] = {
                Callback(std::forward<F0>(f0)),
                Callback(std::forward<Fs>(fns))...};
            schedule_batch(when, cbs, 1 + sizeof...(Fs));
        }
    }

    /** Run events until the queue drains. Returns events executed. */
    uint64_t run();

    /**
     * Run events with timestamp <= @p deadline, then set now to the
     * deadline. Returns events executed.
     */
    uint64_t run_until(TimePs deadline);

    /** Number of pending events. O(1) across wheel buckets, cascade
     *  levels, the in-flight drain list and the overflow file. */
    size_t pending() const { return pending_; }

    /** Drop all pending events (used between experiment phases).
     *  Safe mid-drain and mid-cascade: remaining drained entries and
     *  every chained bucket are released, counters stay exact. */
    void clear();

    /**
     * Lifetime telemetry (events/sec reporting): events executed and
     * scheduled since construction. Both survive clear(), and both
     * are exact at any point — including from inside a callback.
     */
    uint64_t executed_total() const { return executed_total_; }
    uint64_t scheduled_total() const { return next_seq_; }

    /** Wheel-engine telemetry (all zero under Engine::Heap). */
    struct WheelStats
    {
        uint64_t bucket_drains = 0;   ///< buckets pulled into the drain list
        uint64_t drained_events = 0;  ///< events those buckets held
        uint64_t max_bucket = 0;      ///< largest single bucket seen
        uint64_t cascades = 0;        ///< upper-level slots re-filed down
        uint64_t cascaded_events = 0; ///< events moved by those cascades
        uint64_t overflow_filed = 0;  ///< events beyond the top horizon
        uint64_t overflow_refiled = 0;///< overflow events re-filed in

        /** Mean events per drained bucket (batching effectiveness). */
        double avg_bucket_occupancy() const
        {
            return bucket_drains
                       ? double(drained_events) / double(bucket_drains)
                       : 0.0;
        }
    };
    const WheelStats& wheel_stats() const { return wheel_stats_; }

    /**
     * Wheel geometry (exposed for tests and telemetry): level-0
     * buckets are 2^kGranularityShift ps wide; each of the kLevels
     * levels has kSlots slots and is kSlotBits coarser than the one
     * below; events beyond the top-level horizon live in an overflow
     * file that re-files as the clock approaches.
     */
    static constexpr unsigned kGranularityShift = 12; // 4.096 ns buckets
    static constexpr unsigned kSlotBits = 12;
    static constexpr uint32_t kSlots = 1u << kSlotBits; // 4096 per level
    static constexpr unsigned kLevels = 4;
    /** First timestamp past the top level's reach (now + ~13 days). */
    static constexpr unsigned kHorizonShift =
        kGranularityShift + kLevels * kSlotBits;

  private:
    static constexpr uint32_t kNil = 0xffffffffu;
    static constexpr uint32_t kChunkShift = 8;
    static constexpr uint32_t kChunkSize = 1u << kChunkShift;

    /** Pooled event body. Chunked storage keeps addresses stable, so
     *  a draining callback runs in place while re-entrant scheduling
     *  grows the pool underneath it. */
    struct Node
    {
        Callback cb;
        TimePs when = 0;
        uint64_t seq = 0;
        uint32_t next = kNil; ///< intrusive bucket-chain link
    };

    /** Heap entry (Engine::Heap): ordering fields only. */
    struct HeapEntry
    {
        TimePs when;
        uint64_t seq;
        uint32_t node;
    };

    /** Drain-list entry: one event of the bucket being executed. */
    struct Ready
    {
        TimePs when;
        uint64_t seq;
        uint32_t node;
    };

    /** One wheel level: slot chains plus a two-tier occupancy bitmap
     *  (word bitmap + one summary word) for O(1) next-slot search. */
    struct Level
    {
        std::vector<std::pair<uint32_t, uint32_t>> slots; // head, tail
        std::array<uint64_t, kSlots / 64> words{};
        uint64_t summary = 0;
    };

    static bool fires_before(const HeapEntry& a, const HeapEntry& b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    Node& node(uint32_t idx)
    {
        return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
    }
    uint32_t alloc_node();
    uint32_t make_node(Callback cb);
    void release_node(uint32_t idx)
    {
        node(idx).cb.reset();
        free_nodes_.push_back(idx);
    }

    /** Assign seq, clamp past times, route to heap/drain/wheel. */
    void place_node(TimePs when, uint32_t idx);
    void file_node(TimePs when, uint32_t idx);
    void drain_insert(TimePs when, uint64_t seq, uint32_t idx);
    void append_slot(Level& lv, uint32_t slot, uint32_t idx);

    /** Advance the wheel to the next non-empty bucket and pull it
     *  into the drain list (cascading upper levels and re-filing
     *  overflow as needed). Returns false when nothing is pending. */
    bool advance();
    void fill_drain(uint32_t slot);
    void cascade(unsigned level, uint32_t slot);
    bool refile_overflow();

    bool drain_active() const { return drain_pos_ < drain_.size(); }
    uint32_t slot_of(TimePs t, unsigned level) const
    {
        return uint32_t(
            (t >> (kGranularityShift + level * kSlotBits)) &
            (kSlots - 1));
    }

    void heap_push(HeapEntry e);
    HeapEntry heap_pop();

    uint64_t run_wheel(bool bounded, TimePs deadline);
    uint64_t run_heap(bool bounded, TimePs deadline);

    Engine engine_;
    TimePs now_ = 0;
    uint64_t next_seq_ = 0;
    uint64_t executed_total_ = 0;
    size_t pending_ = 0;

    // Node pool.
    std::vector<std::unique_ptr<Node[]>> chunks_;
    uint32_t node_count_ = 0;
    std::vector<uint32_t> free_nodes_;

    // Wheel engine.
    std::array<Level, kLevels> levels_;
    /** Wheel cursor: start of the region the wheel's slot indexing is
     *  relative to. Monotonic; may run ahead of now() when run_until
     *  pre-locates a bucket past its deadline (ordering stays exact —
     *  earlier late arrivals merge into the drain list by position). */
    TimePs wheel_pos_ = 0;
    std::vector<Ready> drain_;
    size_t drain_pos_ = 0;
    TimePs drain_end_ = 0; ///< exclusive end of the drained bucket
    std::vector<uint32_t> overflow_;
    WheelStats wheel_stats_;

    // Last-bucket memo: consecutive schedules into the same bucket
    // (wire trains, DMA chunk fans) skip level resolution entirely.
    bool memo_valid_ = false;
    unsigned memo_level_ = 0;
    uint32_t memo_slot_ = 0;
    TimePs memo_key_ = 0;

    // Heap engine.
    std::vector<HeapEntry> heap_;
};

} // namespace fld::sim

#endif // FLD_SIM_EVENT_QUEUE_H
