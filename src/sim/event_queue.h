/**
 * @file
 * Discrete-event simulation engine.
 *
 * A single EventQueue drives a whole simulated testbed (hosts, NICs,
 * PCIe fabric, FLD, accelerators). Events scheduled for the same tick
 * execute in scheduling order (a monotonic sequence number breaks ties),
 * which keeps runs deterministic.
 *
 * Hot-path design: callbacks are move-only InlineCallbacks (no
 * std::function, no per-event copy of captured packet payloads) stored
 * in a recycled node pool, while the ordering heap holds only small
 * {when, seq, node} entries — so sift operations shuffle 24-byte
 * records, never callables. Steady-state scheduling performs zero heap
 * allocations once the pool has warmed up.
 */
#ifndef FLD_SIM_EVENT_QUEUE_H
#define FLD_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/time.h"

namespace fld::sim {

class EventQueue
{
  public:
    using Callback = InlineCallback;

    /** Current simulated time. */
    TimePs now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when. Scheduling into
     * the past would reorder already-executed history; @p when is
     * clamped to now() (with a debug assert, so tests catch the
     * offending component) and the event runs this tick, after all
     * previously scheduled same-tick events.
     */
    void schedule_at(TimePs when, Callback cb);

    /** Schedule @p cb to run @p delay after the current time. */
    void schedule_in(TimePs delay, Callback cb)
    {
        schedule_at(now_ + delay, std::move(cb));
    }

    /** Run events until the queue drains. Returns events executed. */
    uint64_t run();

    /**
     * Run events with timestamp <= @p deadline, then set now to the
     * deadline. Returns events executed.
     */
    uint64_t run_until(TimePs deadline);

    /** Number of pending events. */
    size_t pending() const { return heap_.size(); }

    /** Drop all pending events (used between experiment phases). */
    void clear();

    /**
     * Lifetime telemetry (events/sec reporting): events executed and
     * scheduled since construction. Both survive clear().
     */
    uint64_t executed_total() const { return executed_total_; }
    uint64_t scheduled_total() const { return next_seq_; }

  private:
    /** Pooled event body; nodes are recycled through free_nodes_. */
    struct Node
    {
        Callback cb;
    };
    /** Heap entry: everything ordering needs, nothing it doesn't. */
    struct HeapEntry
    {
        TimePs when;
        uint64_t seq;
        uint32_t node;
    };

    static bool fires_before(const HeapEntry& a, const HeapEntry& b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void heap_push(HeapEntry e);
    HeapEntry heap_pop();
    /** Pop the next event, set now_, release its node, return its cb. */
    Callback take_next();

    TimePs now_ = 0;
    uint64_t next_seq_ = 0;
    uint64_t executed_total_ = 0;
    std::vector<Node> pool_;
    std::vector<uint32_t> free_nodes_;
    std::vector<HeapEntry> heap_;
};

} // namespace fld::sim

#endif // FLD_SIM_EVENT_QUEUE_H
