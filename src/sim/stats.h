/**
 * @file
 * Measurement primitives: sample histograms with percentile extraction
 * and windowed byte/packet rate meters.
 */
#ifndef FLD_SIM_STATS_H
#define FLD_SIM_STATS_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace fld::sim {

/**
 * Collects raw samples and reports order statistics.
 *
 * The evaluation's latency tables (e.g., Table 6) need exact
 * mean/median/99th/99.9th percentiles, so samples are retained verbatim
 * rather than bucketed.
 */
class Histogram
{
  public:
    void add(double sample);

    size_t count() const { return samples_.size(); }
    double mean() const;
    double min() const;
    double max() const;
    double stddev() const;

    /**
     * Percentile in [0, 100]; linear interpolation between samples.
     * Returns quiet NaN when the histogram holds no samples — an
     * empty distribution has no percentiles, and NaN propagates
     * loudly instead of masquerading as a zero-latency measurement.
     */
    double percentile(double pct) const;
    double median() const { return percentile(50.0); }

    /**
     * Quantile for arbitrary q in [0, 1] (q is clamped), e.g. p(0.999)
     * for the 99.9th percentile. Same interpolation and empty-set NaN
     * semantics as percentile(); the two agree exactly at
     * p(q) == percentile(100 * q).
     */
    double p(double q) const;

    void clear();

    /** "mean=... p50=... p99=... p99.9=..." summary string. */
    std::string summary() const;

  private:
    void ensure_sorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_ = false;
    double sum_ = 0;
    double sum_sq_ = 0;
};

/**
 * Per-fault-source event counters, filled in by sim::FaultPlan as
 * injection decisions are drawn. Reliability tests assert recovery
 * behaviour (retransmits, deliveries) against these exact counts.
 */
struct FaultCounters
{
    // Ethernet wire (per frame).
    uint64_t wire_frames = 0;     ///< frames that consulted the plan
    uint64_t wire_drops = 0;
    uint64_t wire_corruptions = 0;
    uint64_t wire_duplicates = 0;
    uint64_t wire_reorders = 0;
    // PCIe fabric.
    uint64_t pcie_read_delays = 0;
    uint64_t pcie_read_stalls = 0;
    uint64_t pcie_doorbell_jitters = 0;
    // Accelerator units.
    uint64_t accel_stalls = 0;

    uint64_t wire_faults() const
    {
        return wire_drops + wire_corruptions + wire_duplicates +
               wire_reorders;
    }
    uint64_t total() const
    {
        return wire_faults() + pcie_read_delays + pcie_read_stalls +
               pcie_doorbell_jitters + accel_stalls;
    }

    /** "wire: drop=... corrupt=... | pcie: ... | accel: ..." line. */
    std::string summary() const;
};

/**
 * Packet-conservation ledger for one end-to-end run: every frame a
 * sender handed to the datapath must be delivered, sitting in flight,
 * or accounted for by a named loss counter. The fuzzer's fourth
 * oracle sums both NICs' drop counters, the fault plan's wire losses
 * and the drivers'/AFU's overload drops into `accounted_losses` and
 * asserts the inequalities below; in a fault-free, drop-free run they
 * collapse to the exact identity rx == tx.
 */
struct ConservationLedger
{
    uint64_t tx = 0;               ///< frames the sender(s) emitted
    uint64_t rx = 0;               ///< frames delivered to the sink(s)
    uint64_t accounted_losses = 0; ///< sum of every named drop counter
    uint64_t duplicates = 0;       ///< wire duplications (can inflate rx)
    uint64_t in_flight = 0;        ///< still queued when the run ended

    /**
     * Check tx = rx + drops + in-flight, as inequalities that stay
     * valid when retransmission re-injects frames: nothing may vanish
     * unaccounted (rx + losses + in_flight >= tx) and nothing may be
     * conjured (rx <= tx + duplicates). Returns a human-readable
     * violation description, or an empty string when conserved.
     */
    std::string check() const;

    /** "tx=... rx=... losses=... dup=... inflight=..." line. */
    std::string summary() const;
};

/** Accumulates bytes/packets over simulated time and reports rates. */
class RateMeter
{
  public:
    void record(TimePs now, uint64_t bytes)
    {
        if (count_ == 0)
            first_ = now;
        last_ = now;
        bytes_ += bytes;
        ++count_;
    }

    uint64_t bytes() const { return bytes_; }
    uint64_t packets() const { return count_; }

    /** Average goodput between an explicit start/end window. */
    double gbps(TimePs start, TimePs end) const
    {
        return end > start ? gbps_of(bytes_, end - start) : 0.0;
    }

    /** Average goodput over the observed first..last record window. */
    double gbps() const { return gbps(first_, last_); }

    /** Packet rate in Mpps over an explicit window. */
    double mpps(TimePs start, TimePs end) const
    {
        if (end <= start)
            return 0.0;
        return double(count_) / to_us(end - start);
    }

    void clear()
    {
        bytes_ = count_ = 0;
        first_ = last_ = 0;
    }

  private:
    uint64_t bytes_ = 0;
    uint64_t count_ = 0;
    TimePs first_ = 0;
    TimePs last_ = 0;
};

} // namespace fld::sim

#endif // FLD_SIM_STATS_H
