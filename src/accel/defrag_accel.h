/**
 * @file
 * IP defragmentation inline accelerator (§7, §8.2.2).
 *
 * An FLD-E AFU that intervenes mid-pipeline: the NIC decapsulates
 * VXLAN and steers fragments here via the acceleration action; the
 * AFU reassembles datagrams and transmits them back tagged with the
 * resume table, so downstream NIC offloads (RSS, checksum) operate on
 * whole packets again.
 */
#ifndef FLD_ACCEL_DEFRAG_ACCEL_H
#define FLD_ACCEL_DEFRAG_ACCEL_H

#include "accel/accelerator.h"
#include "net/ip_reassembly.h"

namespace fld::accel {

class DefragAccelerator : public Accelerator
{
  public:
    /** Pipeline model: wire-speed streaming reassembly (Table 5's
     *  defrag AFU runs at 250 MHz with URAM reassembly buffers). */
    static UnitModel default_model()
    {
        UnitModel m;
        m.units = 1;
        m.setup_time = sim::nanoseconds(60);
        m.unit_gbps = 100.0; // wide datapath; PCIe is the bottleneck
        m.queue_depth = 256;
        return m;
    }

    DefragAccelerator(sim::EventQueue& eq, core::FlexDriver& fld,
                      uint32_t tx_queue = 0,
                      UnitModel model = default_model(),
                      size_t max_contexts = 4096)
        : Accelerator("ip-defrag", eq, fld, model),
          tx_queue_(tx_queue), reasm_(max_contexts)
    {}

    const net::ReassemblyStats& reassembly_stats() const
    {
        return reasm_.stats();
    }

  protected:
    void process(core::StreamPacket&& pkt) override
    {
        net::Packet frame(std::move(pkt.data));
        frame.meta.flow_tag = pkt.meta.context_id;
        reasm_.tick(sim::to_us(eq_.now()));

        auto done = reasm_.push(frame);
        if (!done)
            return; // datagram incomplete; nothing to emit yet

        core::StreamPacket out;
        out.data = std::move(done->data);
        out.meta.context_id = pkt.meta.context_id;
        out.meta.next_table = pkt.meta.next_table;
        send(tx_queue_, std::move(out));
    }

  private:
    uint32_t tx_queue_;
    net::IpReassembler reasm_;
};

} // namespace fld::accel

#endif // FLD_ACCEL_DEFRAG_ACCEL_H
