#include "accel/iot_auth.h"

namespace fld::accel {

void
IotAuthAccelerator::process(core::StreamPacket&& pkt)
{
    net::Packet frame(std::move(pkt.data));

    // Packet layout: Eth/IPv4/UDP carrying a CoAP message whose
    // payload is a compact-serialized JWT.
    net::ParsedPacket pp = net::parse(frame);
    if (!pp.udp || pp.payload_len == 0) {
        auth_stats_.malformed++;
        stats_.dropped_invalid++;
        return;
    }
    auto coap = net::CoapMessage::decode(
        frame.bytes() + pp.payload_offset, pp.payload_len);
    if (!coap || coap->payload.empty()) {
        auth_stats_.malformed++;
        stats_.dropped_invalid++;
        return;
    }

    uint32_t tenant = pkt.meta.context_id;
    if (tenant >= keys_.size() || keys_[tenant].empty()) {
        auth_stats_.unknown_tenant++;
        stats_.dropped_invalid++;
        return;
    }

    std::string token(coap->payload.begin(), coap->payload.end());
    auto result = net::jwt_verify_hs256(token, keys_[tenant]);
    if (!result.valid) {
        auth_stats_.invalid_signature++;
        stats_.dropped_invalid++;
        return; // DDoS protection: invalid tokens never reach the host
    }
    auth_stats_.valid++;

    core::StreamPacket out;
    out.data = std::move(frame.data);
    out.meta.context_id = tenant;
    out.meta.next_table = pkt.meta.next_table;
    send(tx_queue_, std::move(out));
}

} // namespace fld::accel
