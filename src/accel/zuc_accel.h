/**
 * @file
 * Disaggregated LTE (ZUC) cipher accelerator (§7).
 *
 * An FLD-R AFU: clients send cryptographic requests over RDMA SENDs;
 * the accelerator runs the real 128-EEA3/128-EIA3 algorithms on the
 * payload and responds. Eight ZUC modules sit behind a load-balancing
 * front end, each modeled at the paper's per-module rate (~4.76 Gbps
 * on 512 B messages).
 */
#ifndef FLD_ACCEL_ZUC_ACCEL_H
#define FLD_ACCEL_ZUC_ACCEL_H

#include <deque>
#include <map>
#include <vector>

#include "accel/accelerator.h"
#include "accel/zuc_protocol.h"

namespace fld::accel {

class ZucAccelerator : public Accelerator
{
  public:
    /** Default unit model: 8 modules; setup + rate calibrated so one
     *  module sustains ~4.76 Gbps on 512 B requests (§7). */
    static UnitModel default_model()
    {
        UnitModel m;
        m.units = 8;
        m.setup_time = sim::nanoseconds(100);
        m.unit_gbps = 5.4;
        m.queue_depth = 64;
        return m;
    }

    ZucAccelerator(sim::EventQueue& eq, core::FlexDriver& fld,
                   uint32_t tx_queue = 0,
                   UnitModel model = default_model())
        : Accelerator("zuc", eq, fld, model), tx_queue_(tx_queue)
    {}

    uint64_t requests_served() const { return served_; }

    /**
     * On-FPGA key storage (the paper's §8.2.1 future-work item):
     * cache up to @p entries recently-seen keys; requests whose key
     * hits the cache skip the LFSR key-initialization portion of the
     * per-request setup.
     */
    void enable_key_cache(size_t entries,
                          sim::TimePs key_setup = sim::nanoseconds(60))
    {
        key_cache_entries_ = entries;
        key_setup_ = key_setup;
    }
    uint64_t key_cache_hits() const { return key_hits_; }
    uint64_t key_cache_misses() const { return key_misses_; }

  protected:
    sim::TimePs service_time_for(const core::StreamPacket& pkt)
        override;

  protected:
    void process(core::StreamPacket&& pkt) override;

  private:
    void serve(uint32_t msg_id, std::vector<uint8_t>&& msg);

    struct Partial
    {
        std::vector<uint8_t> data;
        uint32_t received = 0;
        uint32_t total = 0;
        bool total_known = false; ///< last packet arrived
    };

    uint32_t tx_queue_;
    std::map<uint32_t, Partial> partial_;
    uint64_t served_ = 0;
    // LRU key cache (future-work extension).
    size_t key_cache_entries_ = 0;
    sim::TimePs key_setup_ = 0;
    std::deque<crypto::Zuc::Key> key_cache_;
    uint64_t key_hits_ = 0;
    uint64_t key_misses_ = 0;
};

} // namespace fld::accel

#endif // FLD_ACCEL_ZUC_ACCEL_H
