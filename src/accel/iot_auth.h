/**
 * @file
 * IoT cryptographic-token authentication offload (§7, §8.2.3).
 *
 * A DDoS-protection FLD-E AFU serving several tenants: the NIC tags
 * each flow with its tenant's context ID and shapes tenant bandwidth;
 * the AFU extracts a JSON Web Token from CoAP messages, verifies its
 * HMAC-SHA256 signature against a per-tenant key (a plain linear key
 * table indexed by the tag — the NIC did the flow classification),
 * drops invalid packets and forwards valid ones back into the NIC
 * pipeline for delivery to the server application.
 */
#ifndef FLD_ACCEL_IOT_AUTH_H
#define FLD_ACCEL_IOT_AUTH_H

#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "net/coap.h"
#include "net/headers.h"
#include "net/jwt.h"

namespace fld::accel {

struct IotAuthStats
{
    uint64_t valid = 0;
    uint64_t invalid_signature = 0;
    uint64_t malformed = 0;
    uint64_t unknown_tenant = 0;
};

class IotAuthAccelerator : public Accelerator
{
  public:
    /** 8 processing units supporting ~20 Mpps of 256 B packets (§7):
     *  per-unit service ~ 8/20 Mpps = 400 ns/packet at 256 B. */
    static UnitModel default_model()
    {
        UnitModel m;
        m.units = 8;
        m.setup_time = sim::nanoseconds(250);
        m.unit_gbps = 14.0; // ~146 ns for the 256 B hash portion
        m.queue_depth = 64;
        return m;
    }

    IotAuthAccelerator(sim::EventQueue& eq, core::FlexDriver& fld,
                       uint32_t tx_queue = 0,
                       UnitModel model = default_model())
        : Accelerator("iot-auth", eq, fld, model), tx_queue_(tx_queue)
    {}

    /** Install tenant @p context_id's HMAC key (linear key table). */
    void set_tenant_key(uint32_t context_id, std::string key)
    {
        if (context_id >= keys_.size())
            keys_.resize(context_id + 1);
        keys_[context_id] = std::move(key);
    }

    const IotAuthStats& auth_stats() const { return auth_stats_; }

  protected:
    void process(core::StreamPacket&& pkt) override;

  private:
    uint32_t tx_queue_;
    std::vector<std::string> keys_;
    IotAuthStats auth_stats_;
};

} // namespace fld::accel

#endif // FLD_ACCEL_IOT_AUTH_H
