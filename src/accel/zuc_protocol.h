/**
 * @file
 * Wire protocol of the disaggregated ZUC cipher accelerator (§7).
 *
 * Requests and responses travel as RDMA SEND messages with a 64 B
 * header carrying the cryptographic key, IV material and metadata,
 * followed by the payload — matching the paper's request/response
 * format. Shared between the AFU and the client-side cryptodev-style
 * driver.
 */
#ifndef FLD_ACCEL_ZUC_PROTOCOL_H
#define FLD_ACCEL_ZUC_PROTOCOL_H

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "crypto/zuc.h"
#include "util/bitops.h"

namespace fld::accel {

constexpr size_t kZucHeaderLen = 64;

enum class ZucOp : uint8_t {
    Eea3Crypt = 0, ///< confidentiality: en/decrypt payload
    Eia3Mac = 1,   ///< integrity: compute 32-bit MAC
};

enum class ZucStatus : uint8_t {
    Ok = 0,
    BadRequest = 1,
};

/** 64 B request/response header. */
struct ZucHeader
{
    ZucOp op = ZucOp::Eea3Crypt;
    ZucStatus status = ZucStatus::Ok; ///< meaningful in responses
    uint8_t direction = 0;
    uint8_t bearer = 0;
    uint32_t count = 0;
    crypto::Zuc::Key key{};
    crypto::Zuc::Iv iv{};  ///< reserved (EEA3/EIA3 derive their own)
    uint32_t length_bits = 0;
    uint32_t mac = 0;      ///< EIA3 result in responses

    void encode(uint8_t out[kZucHeaderLen]) const
    {
        std::memset(out, 0, kZucHeaderLen);
        out[0] = uint8_t(op);
        out[1] = uint8_t(status);
        out[2] = direction;
        out[3] = bearer;
        store_le32(out + 4, count);
        std::memcpy(out + 8, key.data(), key.size());
        std::memcpy(out + 24, iv.data(), iv.size());
        store_le32(out + 40, length_bits);
        store_le32(out + 44, mac);
    }

    static ZucHeader decode(const uint8_t in[kZucHeaderLen])
    {
        ZucHeader h;
        h.op = ZucOp(in[0]);
        h.status = ZucStatus(in[1]);
        h.direction = in[2];
        h.bearer = in[3];
        h.count = load_le32(in + 4);
        std::memcpy(h.key.data(), in + 8, h.key.size());
        std::memcpy(h.iv.data(), in + 24, h.iv.size());
        h.length_bits = load_le32(in + 40);
        h.mac = load_le32(in + 44);
        return h;
    }
};

/** Assemble a request message: header + payload. */
inline std::vector<uint8_t>
zuc_request(const ZucHeader& hdr, const std::vector<uint8_t>& payload)
{
    std::vector<uint8_t> msg(kZucHeaderLen + payload.size());
    hdr.encode(msg.data());
    std::copy(payload.begin(), payload.end(),
              msg.begin() + kZucHeaderLen);
    return msg;
}

/** Split a message into header + payload view; nullopt if too short. */
inline std::optional<std::pair<ZucHeader, std::vector<uint8_t>>>
zuc_parse(const std::vector<uint8_t>& msg)
{
    if (msg.size() < kZucHeaderLen)
        return std::nullopt;
    ZucHeader hdr = ZucHeader::decode(msg.data());
    std::vector<uint8_t> payload(msg.begin() + kZucHeaderLen,
                                 msg.end());
    return std::make_pair(hdr, std::move(payload));
}

} // namespace fld::accel

#endif // FLD_ACCEL_ZUC_PROTOCOL_H
