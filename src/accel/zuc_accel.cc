#include "accel/zuc_accel.h"

#include <algorithm>

#include "crypto/zuc.h"

namespace fld::accel {

sim::TimePs
ZucAccelerator::service_time_for(const core::StreamPacket& pkt)
{
    sim::TimePs t = model_.service_time(pkt.size());
    if (key_cache_entries_ == 0)
        return t;
    // Only the first packet of a request carries the 64 B header.
    if (pkt.meta.msg_offset != 0 || pkt.size() < kZucHeaderLen)
        return t;
    ZucHeader hdr = ZucHeader::decode(pkt.data.data());
    auto it = std::find(key_cache_.begin(), key_cache_.end(), hdr.key);
    if (it != key_cache_.end()) {
        key_hits_++;
        key_cache_.erase(it);
        key_cache_.push_front(hdr.key); // LRU bump
        return t > key_setup_ ? t - key_setup_ : 0;
    }
    key_misses_++;
    key_cache_.push_front(hdr.key);
    if (key_cache_.size() > key_cache_entries_)
        key_cache_.pop_back();
    return t;
}

void
ZucAccelerator::process(core::StreamPacket&& pkt)
{
    // FLD-R delivers per-packet completions; the processing units may
    // finish them out of order, so completion is by byte count, not
    // by seeing the last packet.
    Partial& msg = partial_[pkt.meta.msg_id];
    if (msg.data.size() < pkt.meta.msg_offset + pkt.size())
        msg.data.resize(pkt.meta.msg_offset + pkt.size());
    std::copy(pkt.data.begin(), pkt.data.end(),
              msg.data.begin() + pkt.meta.msg_offset);
    msg.received += uint32_t(pkt.size());
    if (pkt.meta.msg_last) {
        msg.total = pkt.meta.msg_offset + uint32_t(pkt.size());
        msg.total_known = true;
    }
    if (!msg.total_known || msg.received < msg.total)
        return;

    std::vector<uint8_t> whole = std::move(msg.data);
    partial_.erase(pkt.meta.msg_id);
    serve(pkt.meta.msg_id, std::move(whole));
}

void
ZucAccelerator::serve(uint32_t msg_id, std::vector<uint8_t>&& msg)
{
    auto parsed = zuc_parse(msg);
    core::StreamPacket out;
    out.meta.msg_id = msg_id;

    if (!parsed) {
        stats_.dropped_invalid++;
        ZucHeader err;
        err.status = ZucStatus::BadRequest;
        out.data = zuc_request(err, {});
        send(tx_queue_, std::move(out));
        return;
    }
    auto& [hdr, payload] = *parsed;
    size_t max_bits = payload.size() * 8;
    if (hdr.length_bits == 0 || hdr.length_bits > max_bits)
        hdr.length_bits = uint32_t(max_bits);

    ZucHeader resp = hdr;
    resp.status = ZucStatus::Ok;
    switch (hdr.op) {
      case ZucOp::Eea3Crypt:
        crypto::eea3_crypt(hdr.key, hdr.count, hdr.bearer,
                           hdr.direction, payload.data(),
                           hdr.length_bits);
        break;
      case ZucOp::Eia3Mac:
        resp.mac = crypto::eia3_mac(hdr.key, hdr.count, hdr.bearer,
                                    hdr.direction, payload.data(),
                                    hdr.length_bits);
        payload.clear(); // MAC-only response carries no payload
        break;
      default:
        resp.status = ZucStatus::BadRequest;
        payload.clear();
        break;
    }

    served_++;
    out.data = zuc_request(resp, payload);
    send(tx_queue_, std::move(out));
}

} // namespace fld::accel
