/**
 * @file
 * Echo AFU: sends back everything it receives (§8.1's FLD-E/FLD-R
 * microbenchmark accelerator).
 *
 * FLD-E: echoes each frame, preserving the resume metadata so echoed
 * packets re-enter the NIC pipeline at the right table.
 * FLD-R: MPRQ delivers per-packet completions (§6); the echo collects
 * them and responds once per message.
 */
#ifndef FLD_ACCEL_ECHO_H
#define FLD_ACCEL_ECHO_H

#include <map>
#include <vector>

#include "accel/accelerator.h"

namespace fld::accel {

class EchoAccelerator : public Accelerator
{
  public:
    /** Echo is a trivial streaming AFU: a few 250 MHz cycles per
     *  packet across two pipeline lanes — never the bottleneck. */
    static UnitModel default_model()
    {
        UnitModel m;
        m.units = 2;
        m.setup_time = sim::nanoseconds(20);
        m.unit_gbps = 100.0;
        m.queue_depth = 512;
        return m;
    }

    EchoAccelerator(sim::EventQueue& eq, core::FlexDriver& fld,
                    uint32_t tx_queue = 0,
                    UnitModel model = default_model())
        : Accelerator("echo", eq, fld, model), tx_queue_(tx_queue)
    {}

  protected:
    void process(core::StreamPacket&& pkt) override
    {
        if (!pkt.meta.is_rdma) {
            core::StreamPacket out;
            out.data = std::move(pkt.data);
            out.meta.context_id = pkt.meta.context_id;
            out.meta.next_table = pkt.meta.next_table;
            out.meta.corr = pkt.meta.corr;
            send(tx_queue_, std::move(out));
            return;
        }
        // Incremental message assembly from per-packet completions.
        // Units may retire packets out of order: complete on byte
        // count, not on the last-packet flag alone.
        Partial& msg = rdma_messages_[pkt.meta.msg_id];
        if (msg.data.size() < pkt.meta.msg_offset + pkt.size())
            msg.data.resize(pkt.meta.msg_offset + pkt.size());
        std::copy(pkt.data.begin(), pkt.data.end(),
                  msg.data.begin() + pkt.meta.msg_offset);
        msg.received += uint32_t(pkt.size());
        if (pkt.meta.msg_last) {
            msg.total = pkt.meta.msg_offset + uint32_t(pkt.size());
            msg.total_known = true;
        }
        if (!msg.total_known || msg.received < msg.total)
            return;

        core::StreamPacket out;
        out.data = std::move(msg.data);
        rdma_messages_.erase(pkt.meta.msg_id);
        out.meta.msg_id = pkt.meta.msg_id;
        send(tx_queue_, std::move(out));
    }

  private:
    struct Partial
    {
        std::vector<uint8_t> data;
        uint32_t received = 0;
        uint32_t total = 0;
        bool total_known = false;
    };

    uint32_t tx_queue_;
    std::map<uint32_t, Partial> rdma_messages_;
};

} // namespace fld::accel

#endif // FLD_ACCEL_ECHO_H
