/**
 * @file
 * Base class for accelerator functional units (AFUs) sitting behind
 * FLD's AXI-stream interface (§5.5).
 *
 * The timing model is a bank of parallel processing units, each a
 * serial server with a per-packet service time (setup + bytes/rate) —
 * matching how the paper describes its AFUs (e.g., 8 ZUC modules at
 * 4.76 Gbps each behind a load balancer). Per §5.5 the accelerator may
 * not backpressure FLD: when all unit queues exceed the configured
 * depth, packets are dropped and counted, which is exactly the
 * admission behaviour the IoT isolation experiment measures.
 */
#ifndef FLD_ACCEL_ACCELERATOR_H
#define FLD_ACCEL_ACCELERATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "fld/flexdriver.h"
#include "sim/event_queue.h"
#include "sim/fault.h"

namespace fld::accel {

/** Processing-bank parameters. */
struct UnitModel
{
    uint32_t units = 1;
    sim::TimePs setup_time = sim::nanoseconds(100); ///< per packet
    double unit_gbps = 0.0; ///< payload processing rate (0 = instant)
    uint32_t queue_depth = 64; ///< per-unit input queue (packets)

    sim::TimePs service_time(size_t bytes) const
    {
        sim::TimePs t = setup_time;
        if (unit_gbps > 0)
            t += sim::serialize_time(bytes, unit_gbps);
        return t;
    }
};

struct AccelStats
{
    uint64_t packets_in = 0;
    uint64_t bytes_in = 0;
    uint64_t packets_out = 0;
    uint64_t bytes_out = 0;
    uint64_t dropped_overload = 0; ///< all unit queues full
    uint64_t dropped_invalid = 0;  ///< workload-specific rejections
    uint64_t tx_failed = 0;        ///< FLD had no credits
};

class Accelerator
{
  public:
    Accelerator(std::string name, sim::EventQueue& eq,
                core::FlexDriver& fld, UnitModel model);
    virtual ~Accelerator() = default;

    const AccelStats& stats() const { return stats_; }
    const std::string& name() const { return name_; }

    /**
     * Feed a packet directly into the unit bank, bypassing FLD — for
     * unit tests and for composing AFUs in front of each other.
     */
    void inject(core::StreamPacket&& pkt) { on_rx(std::move(pkt)); }

    /**
     * Attach a fault plan: units occasionally stall (pipeline flush,
     * clock-domain hiccup) before serving a packet, inflating service
     * time. Backlog builds exactly as real transient back-pressure
     * would — and, past queue_depth, becomes drops, since §5.5 forbids
     * backpressuring FLD. Null plan / zero knobs = no behaviour change.
     */
    void set_fault_plan(sim::FaultPlan* plan,
                        const sim::AccelFaultConfig& cfg)
    {
        faults_ = plan;
        fault_cfg_ = cfg;
    }

  protected:
    /**
     * Workload logic: runs after a unit finishes the packet's service
     * time. Implementations transmit results with send().
     */
    virtual void process(core::StreamPacket&& pkt) = 0;

    /**
     * Per-packet service time; defaults to the unit model. Override
     * to model data-dependent costs (e.g., key-cache hits).
     */
    virtual sim::TimePs service_time_for(const core::StreamPacket& pkt)
    {
        return model().service_time(pkt.size());
    }

    const UnitModel& model() const { return model_; }

    /** Transmit through FLD, counting failures. */
    bool send(uint32_t queue, core::StreamPacket&& pkt);

    sim::EventQueue& eq_;
    core::FlexDriver& fld_;
    AccelStats stats_;

  private:
    void on_rx(core::StreamPacket&& pkt);

    std::string name_;

  protected:
    UnitModel model_;

  private:
    std::vector<sim::TimePs> unit_busy_until_;
    std::vector<uint32_t> unit_queued_;
    sim::FaultPlan* faults_ = nullptr;
    sim::AccelFaultConfig fault_cfg_;
};

} // namespace fld::accel

#endif // FLD_ACCEL_ACCELERATOR_H
