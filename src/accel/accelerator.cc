#include "accel/accelerator.h"

#include <algorithm>

#include "sim/trace.h"

namespace fld::accel {

Accelerator::Accelerator(std::string name, sim::EventQueue& eq,
                         core::FlexDriver& fld, UnitModel model)
    : eq_(eq), fld_(fld), name_(std::move(name)), model_(model),
      unit_busy_until_(model.units, 0), unit_queued_(model.units, 0)
{
    fld_.set_rx_handler(
        [this](core::StreamPacket&& pkt) { on_rx(std::move(pkt)); });
}

void
Accelerator::on_rx(core::StreamPacket&& pkt)
{
    stats_.packets_in++;
    stats_.bytes_in += pkt.size();

    // Front-end load balancer: pick the least-loaded unit.
    uint32_t best = 0;
    for (uint32_t u = 1; u < unit_busy_until_.size(); ++u) {
        if (unit_busy_until_[u] < unit_busy_until_[best])
            best = u;
    }
    if (unit_queued_[best] >= model_.queue_depth) {
        // No backpressure toward FLD is allowed (§5.5): drop.
        stats_.dropped_overload++;
        return;
    }

    sim::TimePs start = std::max(eq_.now(), unit_busy_until_[best]);
    if (faults_ && fault_cfg_.enabled()) {
        sim::TimePs stall = faults_->next_accel_stall(fault_cfg_);
        if (stall > 0) {
            if (auto* tr = sim::Tracer::active())
                tr->emit(eq_.now(), sim::TraceEventKind::FaultInject,
                         name_, "stall", pkt.meta.corr, best, 0, 1,
                         pkt.size());
        }
        start += stall;
    }
    sim::TimePs done = start + service_time_for(pkt);
    unit_busy_until_[best] = done;
    unit_queued_[best]++;
    eq_.schedule_at(done, [this, best, pkt = std::move(pkt)]() mutable {
        unit_queued_[best]--;
        process(std::move(pkt));
    });
}

bool
Accelerator::send(uint32_t queue, core::StreamPacket&& pkt)
{
    size_t bytes = pkt.size();
    if (!fld_.tx(queue, std::move(pkt))) {
        stats_.tx_failed++;
        return false;
    }
    stats_.packets_out++;
    stats_.bytes_out += bytes;
    return true;
}

} // namespace fld::accel
