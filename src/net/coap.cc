#include "net/coap.h"

#include "util/bitops.h"

namespace fld::net {

namespace {
/** Encode a CoAP option delta/length nibble with extended bytes. */
void
encode_ext(std::vector<uint8_t>& out, size_t pos_nibble_high,
           uint32_t value)
{
    // Caller writes the nibble; this helper appends extension bytes.
    if (value >= 269) {
        uint16_t ext = uint16_t(value - 269);
        out.push_back(uint8_t(ext >> 8));
        out.push_back(uint8_t(ext));
    } else if (value >= 13) {
        out.push_back(uint8_t(value - 13));
    }
    (void)pos_nibble_high;
}

uint8_t
nibble_of(uint32_t value)
{
    if (value >= 269)
        return 14;
    if (value >= 13)
        return 13;
    return uint8_t(value);
}
} // namespace

std::vector<uint8_t>
CoapMessage::encode() const
{
    std::vector<uint8_t> out;
    out.push_back(uint8_t(0x40 | (uint8_t(type) << 4) |
                          (token.size() & 0x0f)));
    out.push_back(code);
    out.push_back(uint8_t(message_id >> 8));
    out.push_back(uint8_t(message_id));
    out.insert(out.end(), token.begin(), token.end());

    uint16_t prev_opt = 0;
    for (const std::string& seg : uri_path) {
        uint32_t delta = kCoapOptionUriPath - prev_opt;
        uint32_t len = uint32_t(seg.size());
        out.push_back(uint8_t(nibble_of(delta) << 4 | nibble_of(len)));
        encode_ext(out, 0, delta);
        encode_ext(out, 0, len);
        out.insert(out.end(), seg.begin(), seg.end());
        prev_opt = kCoapOptionUriPath;
    }

    if (!payload.empty()) {
        out.push_back(0xff); // payload marker
        out.insert(out.end(), payload.begin(), payload.end());
    }
    return out;
}

namespace {
std::optional<uint32_t>
decode_ext(const uint8_t* data, size_t len, size_t& pos, uint8_t nibble)
{
    if (nibble < 13)
        return nibble;
    if (nibble == 13) {
        if (pos >= len)
            return std::nullopt;
        return 13u + data[pos++];
    }
    if (nibble == 14) {
        if (pos + 2 > len)
            return std::nullopt;
        uint32_t v = 269u + (uint32_t(data[pos]) << 8 | data[pos + 1]);
        pos += 2;
        return v;
    }
    return std::nullopt; // 15 is reserved
}
} // namespace

std::optional<CoapMessage>
CoapMessage::decode(const uint8_t* data, size_t len)
{
    if (len < 4)
        return std::nullopt;
    uint8_t ver = data[0] >> 6;
    if (ver != 1)
        return std::nullopt;

    CoapMessage msg;
    msg.type = CoapType((data[0] >> 4) & 3);
    uint8_t tkl = data[0] & 0x0f;
    if (tkl > 8)
        return std::nullopt;
    msg.code = data[1];
    msg.message_id = uint16_t(data[2]) << 8 | data[3];

    size_t pos = 4;
    if (pos + tkl > len)
        return std::nullopt;
    msg.token.assign(data + pos, data + pos + tkl);
    pos += tkl;

    uint32_t opt = 0;
    while (pos < len) {
        if (data[pos] == 0xff) {
            ++pos;
            if (pos >= len)
                return std::nullopt; // marker with empty payload
            msg.payload.assign(data + pos, data + len);
            break;
        }
        uint8_t byte = data[pos++];
        auto delta = decode_ext(data, len, pos, byte >> 4);
        auto olen = decode_ext(data, len, pos, byte & 0x0f);
        if (!delta || !olen || pos + *olen > len)
            return std::nullopt;
        opt += *delta;
        if (opt == kCoapOptionUriPath) {
            msg.uri_path.emplace_back(
                reinterpret_cast<const char*>(data + pos), *olen);
        }
        pos += *olen;
    }
    return msg;
}

} // namespace fld::net
