/**
 * @file
 * Minimal CoAP (RFC 7252) message codec.
 *
 * The IoT token-authentication accelerator (§7) extracts a JSON Web
 * Token from CoAP-encoded messages. This codec implements the subset
 * needed for that workload: the fixed header, token, Uri-Path options,
 * and payload.
 */
#ifndef FLD_NET_COAP_H
#define FLD_NET_COAP_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fld::net {

enum class CoapType : uint8_t { Confirmable = 0, NonConfirmable = 1,
                                Ack = 2, Reset = 3 };

constexpr uint8_t kCoapCodePost = 0x02; // 0.02 POST
constexpr uint8_t kCoapCodeContent = 0x45; // 2.05 Content
constexpr uint16_t kCoapOptionUriPath = 11;

/** A decoded CoAP message (subset). */
struct CoapMessage
{
    CoapType type = CoapType::NonConfirmable;
    uint8_t code = kCoapCodePost;
    uint16_t message_id = 0;
    std::vector<uint8_t> token;      ///< CoAP token (0-8 bytes)
    std::vector<std::string> uri_path;
    std::vector<uint8_t> payload;

    /** Serialize to wire bytes. */
    std::vector<uint8_t> encode() const;

    /** Parse from wire bytes; nullopt on malformed input. */
    static std::optional<CoapMessage> decode(const uint8_t* data,
                                             size_t len);
};

} // namespace fld::net

#endif // FLD_NET_COAP_H
