#include "net/headers.h"

#include <algorithm>
#include <cstring>

#include "net/checksum.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace fld::net {

void
EthHeader::encode(uint8_t* out) const
{
    std::memcpy(out, dst.data(), 6);
    std::memcpy(out + 6, src.data(), 6);
    store_be16(out + 12, ethertype);
}

EthHeader
EthHeader::decode(const uint8_t* in)
{
    EthHeader h;
    std::memcpy(h.dst.data(), in, 6);
    std::memcpy(h.src.data(), in + 6, 6);
    h.ethertype = load_be16(in + 12);
    return h;
}

void
Ipv4Header::encode(uint8_t* out, bool fill_checksum) const
{
    out[0] = 0x45; // version 4, IHL 5
    out[1] = tos;
    store_be16(out + 2, total_len);
    store_be16(out + 4, id);
    uint16_t frag = frag_offset & 0x1fff;
    if (dont_fragment)
        frag |= 0x4000;
    if (more_fragments)
        frag |= 0x2000;
    store_be16(out + 6, frag);
    out[8] = ttl;
    out[9] = proto;
    store_be16(out + 10, 0);
    store_be32(out + 12, src);
    store_be32(out + 16, dst);
    if (fill_checksum)
        store_be16(out + 10, ipv4_header_checksum(out, kIpv4HeaderLen));
    else
        store_be16(out + 10, checksum);
}

Ipv4Header
Ipv4Header::decode(const uint8_t* in)
{
    Ipv4Header h;
    h.tos = in[1];
    h.total_len = load_be16(in + 2);
    h.id = load_be16(in + 4);
    uint16_t frag = load_be16(in + 6);
    h.dont_fragment = frag & 0x4000;
    h.more_fragments = frag & 0x2000;
    h.frag_offset = frag & 0x1fff;
    h.ttl = in[8];
    h.proto = in[9];
    h.checksum = load_be16(in + 10);
    h.src = load_be32(in + 12);
    h.dst = load_be32(in + 16);
    return h;
}

void
UdpHeader::encode(uint8_t* out) const
{
    store_be16(out, sport);
    store_be16(out + 2, dport);
    store_be16(out + 4, length);
    store_be16(out + 6, checksum);
}

UdpHeader
UdpHeader::decode(const uint8_t* in)
{
    UdpHeader h;
    h.sport = load_be16(in);
    h.dport = load_be16(in + 2);
    h.length = load_be16(in + 4);
    h.checksum = load_be16(in + 6);
    return h;
}

void
TcpHeader::encode(uint8_t* out) const
{
    store_be16(out, sport);
    store_be16(out + 2, dport);
    store_be32(out + 4, seq);
    store_be32(out + 8, ack);
    out[12] = 5 << 4; // data offset: 5 words
    out[13] = flags;
    store_be16(out + 14, window);
    store_be16(out + 16, checksum);
    store_be16(out + 18, 0); // urgent pointer
}

TcpHeader
TcpHeader::decode(const uint8_t* in)
{
    TcpHeader h;
    h.sport = load_be16(in);
    h.dport = load_be16(in + 2);
    h.seq = load_be32(in + 4);
    h.ack = load_be32(in + 8);
    h.flags = in[13];
    h.window = load_be16(in + 14);
    h.checksum = load_be16(in + 16);
    return h;
}

void
VxlanHeader::encode(uint8_t* out) const
{
    out[0] = 0x08; // VNI-valid flag
    out[1] = out[2] = out[3] = 0;
    store_be32(out + 4, vni << 8);
}

VxlanHeader
VxlanHeader::decode(const uint8_t* in)
{
    VxlanHeader h;
    h.vni = load_be32(in + 4) >> 8;
    return h;
}

void
ArpHeader::encode(uint8_t* out) const
{
    store_be16(out, 1);                  // htype: Ethernet
    store_be16(out + 2, kEtherTypeIpv4); // ptype: IPv4
    out[4] = 6;                          // hlen
    out[5] = 4;                          // plen
    store_be16(out + 6, oper);
    std::memcpy(out + 8, sender_mac.data(), 6);
    store_be32(out + 14, sender_ip);
    std::memcpy(out + 18, target_mac.data(), 6);
    store_be32(out + 24, target_ip);
}

std::optional<ArpHeader>
ArpHeader::decode(const uint8_t* in, size_t len)
{
    if (len < kArpLen)
        return std::nullopt;
    if (load_be16(in) != 1 || load_be16(in + 2) != kEtherTypeIpv4 ||
        in[4] != 6 || in[5] != 4)
        return std::nullopt;
    ArpHeader h;
    h.oper = load_be16(in + 6);
    std::memcpy(h.sender_mac.data(), in + 8, 6);
    h.sender_ip = load_be32(in + 14);
    std::memcpy(h.target_mac.data(), in + 18, 6);
    h.target_ip = load_be32(in + 24);
    return h;
}

ParsedPacket
parse_at(const Packet& pkt, size_t offset)
{
    ParsedPacket out;
    const uint8_t* p = pkt.bytes();
    size_t len = pkt.size();

    if (offset + kEthHeaderLen > len)
        return out;
    out.eth = EthHeader::decode(p + offset);
    size_t pos = offset + kEthHeaderLen;
    if (out.eth->ethertype != kEtherTypeIpv4) {
        out.payload_offset = pos;
        out.payload_len = len - pos;
        return out;
    }

    if (pos + kIpv4HeaderLen > len)
        return out;
    out.l3_offset = pos;
    out.ipv4 = Ipv4Header::decode(p + pos);
    size_t ihl = (p[pos] & 0x0f) * 4;
    size_t ip_payload = std::min<size_t>(out.ipv4->total_len, len - pos);
    ip_payload = ip_payload >= ihl ? ip_payload - ihl : 0;
    pos += ihl;
    out.l4_offset = pos;

    // Non-first fragments carry no L4 header.
    if (out.ipv4->frag_offset != 0) {
        out.payload_offset = pos;
        out.payload_len = ip_payload;
        return out;
    }

    if (out.ipv4->proto == kIpProtoUdp && pos + kUdpHeaderLen <= len) {
        out.udp = UdpHeader::decode(p + pos);
        out.payload_offset = pos + kUdpHeaderLen;
        out.payload_len = ip_payload >= kUdpHeaderLen
                              ? ip_payload - kUdpHeaderLen : 0;
        if (out.udp->dport == kVxlanPort &&
            out.payload_offset + kVxlanHeaderLen <= len) {
            out.vxlan = VxlanHeader::decode(p + out.payload_offset);
        }
    } else if (out.ipv4->proto == kIpProtoTcp &&
               pos + kTcpHeaderLen <= len) {
        out.tcp = TcpHeader::decode(p + pos);
        size_t doff = (p[pos + 12] >> 4) * 4;
        out.payload_offset = pos + doff;
        out.payload_len = ip_payload >= doff ? ip_payload - doff : 0;
    } else {
        out.payload_offset = pos;
        out.payload_len = ip_payload;
    }
    return out;
}

ParsedPacket
parse(const Packet& pkt)
{
    return parse_at(pkt, 0);
}

PacketBuilder&
PacketBuilder::eth(const MacAddr& src, const MacAddr& dst)
{
    EthHeader h;
    h.src = src;
    h.dst = dst;
    eth_ = h;
    return *this;
}

PacketBuilder&
PacketBuilder::ipv4(uint32_t src, uint32_t dst, uint8_t proto,
                    uint16_t id, uint8_t ttl)
{
    Ipv4Header h;
    h.src = src;
    h.dst = dst;
    h.proto = proto;
    h.id = id;
    h.ttl = ttl;
    ip_ = h;
    return *this;
}

PacketBuilder&
PacketBuilder::udp(uint16_t sport, uint16_t dport)
{
    UdpHeader h;
    h.sport = sport;
    h.dport = dport;
    udp_ = h;
    return *this;
}

PacketBuilder&
PacketBuilder::tcp(uint16_t sport, uint16_t dport, uint32_t seq,
                   uint32_t ack, uint8_t flags)
{
    TcpHeader h;
    h.sport = sport;
    h.dport = dport;
    h.seq = seq;
    h.ack = ack;
    h.flags = flags;
    tcp_ = h;
    return *this;
}

PacketBuilder&
PacketBuilder::payload(const uint8_t* data, size_t len)
{
    payload_.assign(data, data + len);
    return *this;
}

Packet
PacketBuilder::build() const
{
    if (!eth_ || !ip_)
        panic("PacketBuilder needs at least eth+ipv4");
    if (udp_ && tcp_)
        panic("PacketBuilder: both udp and tcp set");

    size_t l4_hdr = udp_ ? kUdpHeaderLen : (tcp_ ? kTcpHeaderLen : 0);
    size_t l4_len = l4_hdr + payload_.size();
    size_t total = kEthHeaderLen + kIpv4HeaderLen + l4_len;

    Packet pkt;
    pkt.data.resize(total);
    uint8_t* p = pkt.bytes();

    EthHeader eh = *eth_;
    eh.encode(p);

    Ipv4Header ih = *ip_;
    ih.total_len = uint16_t(kIpv4HeaderLen + l4_len);
    if (udp_)
        ih.proto = kIpProtoUdp;
    else if (tcp_)
        ih.proto = kIpProtoTcp;
    ih.encode(p + kEthHeaderLen, true);

    uint8_t* l4 = p + kEthHeaderLen + kIpv4HeaderLen;
    if (udp_) {
        UdpHeader uh = *udp_;
        uh.length = uint16_t(l4_len);
        uh.checksum = 0;
        uh.encode(l4);
        if (!payload_.empty())
            std::memcpy(l4 + kUdpHeaderLen, payload_.data(),
                        payload_.size());
        uint16_t c =
            l4_checksum(ih.src, ih.dst, kIpProtoUdp, l4, l4_len);
        store_be16(l4 + 6, c);
    } else if (tcp_) {
        TcpHeader th = *tcp_;
        th.checksum = 0;
        th.encode(l4);
        if (!payload_.empty())
            std::memcpy(l4 + kTcpHeaderLen, payload_.data(),
                        payload_.size());
        uint16_t c =
            l4_checksum(ih.src, ih.dst, kIpProtoTcp, l4, l4_len);
        store_be16(l4 + 16, c);
    } else if (!payload_.empty()) {
        std::memcpy(l4, payload_.data(), payload_.size());
    }
    return pkt;
}

Packet
vxlan_encapsulate(const Packet& inner, uint32_t vni, uint32_t outer_src_ip,
                  uint32_t outer_dst_ip, const MacAddr& outer_src_mac,
                  const MacAddr& outer_dst_mac)
{
    std::vector<uint8_t> vx(kVxlanHeaderLen + inner.size());
    VxlanHeader vh;
    vh.vni = vni;
    vh.encode(vx.data());
    std::memcpy(vx.data() + kVxlanHeaderLen, inner.bytes(), inner.size());

    Packet outer = PacketBuilder()
                       .eth(outer_src_mac, outer_dst_mac)
                       .ipv4(outer_src_ip, outer_dst_ip, kIpProtoUdp)
                       .udp(0xbeef, kVxlanPort)
                       .payload(vx)
                       .build();
    outer.meta = inner.meta;
    return outer;
}

std::optional<Packet>
vxlan_decapsulate(const Packet& outer)
{
    ParsedPacket pp = parse(outer);
    if (!pp.udp || pp.udp->dport != kVxlanPort || !pp.vxlan)
        return std::nullopt;
    size_t inner_off = pp.payload_offset + kVxlanHeaderLen;
    if (inner_off > outer.size())
        return std::nullopt;

    Packet inner;
    // Intentional copy: decap takes the outer frame by const ref
    // (callers may still need it, e.g. to re-encap or count bytes).
    inner.data.assign(outer.bytes() + inner_off,
                      outer.bytes() + outer.size());
    inner.meta = outer.meta;
    inner.meta.tunneled = true;
    inner.meta.vni = pp.vxlan->vni;
    return inner;
}

} // namespace fld::net
