#include "net/checksum.h"

#include "util/bitops.h"

namespace fld::net {

uint32_t
checksum_partial(const uint8_t* data, size_t len, uint32_t acc)
{
    size_t i = 0;
    for (; i + 1 < len; i += 2)
        acc += load_be16(data + i);
    if (i < len)
        acc += uint32_t(data[i]) << 8; // odd trailing byte, zero-padded
    return acc;
}

uint16_t
checksum_fold(uint32_t acc)
{
    while (acc >> 16)
        acc = (acc & 0xffff) + (acc >> 16);
    return uint16_t(~acc);
}

uint16_t
internet_checksum(const uint8_t* data, size_t len)
{
    return checksum_fold(checksum_partial(data, len, 0));
}

uint16_t
ipv4_header_checksum(const uint8_t* hdr, size_t ihl_bytes)
{
    return internet_checksum(hdr, ihl_bytes);
}

uint16_t
l4_checksum(uint32_t src_ip, uint32_t dst_ip, uint8_t proto,
            const uint8_t* l4, size_t l4_len)
{
    uint32_t acc = 0;
    acc += src_ip >> 16;
    acc += src_ip & 0xffff;
    acc += dst_ip >> 16;
    acc += dst_ip & 0xffff;
    acc += proto;
    acc += uint32_t(l4_len);
    acc = checksum_partial(l4, l4_len, acc);
    uint16_t c = checksum_fold(acc);
    // Per RFC 768 a computed zero UDP checksum is transmitted as 0xffff.
    return c == 0 ? 0xffff : c;
}

} // namespace fld::net
