/**
 * @file
 * JSON Web Token (RFC 7519) with HMAC-SHA256 (HS256) signatures.
 *
 * The IoT authentication offload validates the HMAC-SHA256 signature of
 * a JWT carried in each CoAP message and drops packets with invalid
 * signatures (§7). Only HS256 compact serialization is supported;
 * claims are treated as opaque payload.
 */
#ifndef FLD_NET_JWT_H
#define FLD_NET_JWT_H

#include <optional>
#include <string>

namespace fld::net {

/** Create a compact-serialized HS256 JWT over @p claims_json. */
std::string jwt_sign_hs256(const std::string& claims_json,
                           const std::string& key);

/** Result of verifying a token. */
struct JwtVerifyResult
{
    bool valid = false;
    std::string claims_json; ///< decoded payload when valid
};

/**
 * Verify a compact HS256 JWT. Checks structure, the fixed HS256
 * header, and the HMAC-SHA256 signature (constant-time comparison).
 */
JwtVerifyResult jwt_verify_hs256(const std::string& token,
                                 const std::string& key);

} // namespace fld::net

#endif // FLD_NET_JWT_H
