/**
 * @file
 * Protocol header codecs: Ethernet, IPv4, UDP, TCP, VXLAN.
 *
 * Headers are encoded to/decoded from real network-order bytes so that
 * checksum offloads, RSS hashing, and defragmentation operate on
 * faithful wire formats.
 */
#ifndef FLD_NET_HEADERS_H
#define FLD_NET_HEADERS_H

#include <array>
#include <cstdint>
#include <optional>

#include "net/packet.h"

namespace fld::net {

using MacAddr = std::array<uint8_t, 6>;

constexpr uint16_t kEtherTypeIpv4 = 0x0800;
constexpr uint16_t kEtherTypeArp = 0x0806;

constexpr uint8_t kIpProtoTcp = 6;
constexpr uint8_t kIpProtoUdp = 17;

constexpr uint16_t kVxlanPort = 4789;
constexpr uint16_t kCoapPort = 5683;

constexpr size_t kEthHeaderLen = 14;
constexpr size_t kIpv4HeaderLen = 20; // without options
constexpr size_t kUdpHeaderLen = 8;
constexpr size_t kTcpHeaderLen = 20; // without options
constexpr size_t kVxlanHeaderLen = 8;

/** Ethernet II header. */
struct EthHeader
{
    MacAddr dst{};
    MacAddr src{};
    uint16_t ethertype = kEtherTypeIpv4;

    void encode(uint8_t* out) const;
    static EthHeader decode(const uint8_t* in);
};

/** IPv4 header (no options). */
struct Ipv4Header
{
    uint8_t tos = 0;
    uint16_t total_len = 0;
    uint16_t id = 0;
    bool dont_fragment = false;
    bool more_fragments = false;
    uint16_t frag_offset = 0; ///< in 8-byte units
    uint8_t ttl = 64;
    uint8_t proto = kIpProtoUdp;
    uint16_t checksum = 0;
    uint32_t src = 0;
    uint32_t dst = 0;

    bool is_fragment() const { return more_fragments || frag_offset != 0; }

    /** Encode; when @p fill_checksum, compute the header checksum. */
    void encode(uint8_t* out, bool fill_checksum = true) const;
    static Ipv4Header decode(const uint8_t* in);
};

/** UDP header. */
struct UdpHeader
{
    uint16_t sport = 0;
    uint16_t dport = 0;
    uint16_t length = 0;
    uint16_t checksum = 0;

    void encode(uint8_t* out) const;
    static UdpHeader decode(const uint8_t* in);
};

/** TCP header (no options). */
struct TcpHeader
{
    uint16_t sport = 0;
    uint16_t dport = 0;
    uint32_t seq = 0;
    uint32_t ack = 0;
    uint8_t flags = 0; ///< FIN=1 SYN=2 RST=4 PSH=8 ACK=16
    uint16_t window = 0xffff;
    uint16_t checksum = 0;

    void encode(uint8_t* out) const;
    static TcpHeader decode(const uint8_t* in);
};

/** VXLAN header (RFC 7348). */
struct VxlanHeader
{
    uint32_t vni = 0;

    void encode(uint8_t* out) const;
    static VxlanHeader decode(const uint8_t* in);
};

constexpr size_t kArpLen = 28; ///< Ethernet/IPv4 ARP body

/** ARP for IPv4 over Ethernet (RFC 826), carried after an Ethernet
 *  header with ethertype kEtherTypeArp. */
struct ArpHeader
{
    static constexpr uint16_t kRequest = 1;
    static constexpr uint16_t kReply = 2;

    uint16_t oper = kRequest;
    MacAddr sender_mac{};
    uint32_t sender_ip = 0;
    MacAddr target_mac{}; ///< all-zero in requests
    uint32_t target_ip = 0;

    void encode(uint8_t* out) const;
    /** Empty when htype/ptype/hlen/plen are not Ethernet/IPv4. */
    static std::optional<ArpHeader> decode(const uint8_t* in, size_t len);
};

/**
 * Parsed view of a packet: header copies plus payload offsets.
 * Parse failures leave the corresponding optional empty.
 */
struct ParsedPacket
{
    std::optional<EthHeader> eth;
    std::optional<Ipv4Header> ipv4;
    std::optional<UdpHeader> udp;
    std::optional<TcpHeader> tcp;
    std::optional<VxlanHeader> vxlan;

    size_t l3_offset = 0;      ///< start of IPv4 header
    size_t l4_offset = 0;      ///< start of UDP/TCP header
    size_t payload_offset = 0; ///< start of L4 payload
    size_t payload_len = 0;

    bool is_ip_fragment() const
    {
        return ipv4 && ipv4->is_fragment();
    }
};

/**
 * Parse Ethernet/IPv4/{UDP,TCP}. Does not look inside VXLAN; use
 * parse_inner() on the decapsulated bytes for that. For IP fragments
 * with non-zero offset, L4 headers are not parsed (they are only
 * present in the first fragment).
 */
ParsedPacket parse(const Packet& pkt);

/** Parse starting directly at an inner Ethernet header. */
ParsedPacket parse_at(const Packet& pkt, size_t offset);

/**
 * Convenience builder assembling Ethernet/IPv4/{UDP,TCP}/payload
 * packets with correct lengths and checksums.
 */
class PacketBuilder
{
  public:
    PacketBuilder& eth(const MacAddr& src, const MacAddr& dst);
    PacketBuilder& ipv4(uint32_t src, uint32_t dst, uint8_t proto,
                        uint16_t id = 0, uint8_t ttl = 64);
    PacketBuilder& udp(uint16_t sport, uint16_t dport);
    PacketBuilder& tcp(uint16_t sport, uint16_t dport, uint32_t seq,
                       uint32_t ack, uint8_t flags);
    PacketBuilder& payload(const uint8_t* data, size_t len);
    PacketBuilder& payload(const std::vector<uint8_t>& data)
    {
        return payload(data.data(), data.size());
    }

    /** Assemble bytes, fix lengths, compute checksums. */
    Packet build() const;

  private:
    std::optional<EthHeader> eth_;
    std::optional<Ipv4Header> ip_;
    std::optional<UdpHeader> udp_;
    std::optional<TcpHeader> tcp_;
    std::vector<uint8_t> payload_;
};

/**
 * Encapsulate @p inner (a full Ethernet frame) in
 * outer-Eth/IPv4/UDP/VXLAN. @p decapsulate reverses it, returning the
 * inner frame (meta.tunneled/vni set).
 */
Packet vxlan_encapsulate(const Packet& inner, uint32_t vni,
                         uint32_t outer_src_ip, uint32_t outer_dst_ip,
                         const MacAddr& outer_src_mac,
                         const MacAddr& outer_dst_mac);
std::optional<Packet> vxlan_decapsulate(const Packet& outer);

/** Build an IPv4 address from dotted components. */
constexpr uint32_t ipv4_addr(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
{
    return uint32_t(a) << 24 | uint32_t(b) << 16 | uint32_t(c) << 8 | d;
}

} // namespace fld::net

#endif // FLD_NET_HEADERS_H
