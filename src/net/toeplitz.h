/**
 * @file
 * Toeplitz hash used by receive-side scaling (RSS).
 *
 * The NIC model hashes the IPv4 5-tuple with the standard Microsoft
 * RSS key to select a receive queue / host core. The defragmentation
 * experiment (§8.2.2) hinges on this hash being unavailable for IP
 * fragments, which collapses traffic onto a single core.
 */
#ifndef FLD_NET_TOEPLITZ_H
#define FLD_NET_TOEPLITZ_H

#include <array>
#include <cstdint>
#include <cstddef>

namespace fld::net {

constexpr size_t kRssKeyLen = 40;
using RssKey = std::array<uint8_t, kRssKeyLen>;

/** The de-facto standard Microsoft RSS hash key. */
const RssKey& default_rss_key();

/** Toeplitz hash over an arbitrary input byte string. */
uint32_t toeplitz_hash(const RssKey& key, const uint8_t* input,
                       size_t len);

/** Toeplitz over the IPv4 4-tuple (src, dst, sport, dport). */
uint32_t toeplitz_ipv4(const RssKey& key, uint32_t src_ip, uint32_t dst_ip,
                       uint16_t sport, uint16_t dport);

} // namespace fld::net

#endif // FLD_NET_TOEPLITZ_H
