#include "net/ip_reassembly.h"

#include <algorithm>
#include <cstring>

#include "net/checksum.h"
#include "util/bitops.h"

namespace fld::net {

std::vector<Packet>
ip_fragment(const Packet& pkt, size_t mtu)
{
    ParsedPacket pp = parse(pkt);
    if (!pp.ipv4 || pp.ipv4->total_len <= mtu)
        return {pkt};

    const uint8_t* p = pkt.bytes();
    size_t ihl = (p[pp.l3_offset] & 0x0f) * 4;
    size_t ip_payload_len = pp.ipv4->total_len - ihl;
    const uint8_t* ip_payload = p + pp.l3_offset + ihl;

    // Per-fragment payload: largest 8-byte multiple fitting the MTU.
    size_t max_payload = (mtu - ihl) & ~size_t(7);

    std::vector<Packet> out;
    size_t off = 0;
    while (off < ip_payload_len) {
        size_t chunk = std::min(max_payload, ip_payload_len - off);
        bool last = off + chunk >= ip_payload_len;

        Packet frag;
        frag.data.resize(kEthHeaderLen + ihl + chunk);
        frag.meta = pkt.meta;
        uint8_t* q = frag.bytes();
        std::memcpy(q, p, kEthHeaderLen + ihl); // clone L2+L3 headers

        Ipv4Header ih = *pp.ipv4;
        ih.total_len = uint16_t(ihl + chunk);
        ih.more_fragments = !last || pp.ipv4->more_fragments;
        ih.frag_offset = uint16_t(pp.ipv4->frag_offset + off / 8);
        ih.encode(q + kEthHeaderLen, true);

        std::memcpy(q + kEthHeaderLen + ihl, ip_payload + off, chunk);
        out.push_back(std::move(frag));
        off += chunk;
    }
    return out;
}

std::optional<Packet>
IpReassembler::push(const Packet& pkt)
{
    ParsedPacket pp = parse(pkt);
    if (!pp.ipv4) {
        ++stats_.invalid;
        return pkt;
    }
    if (!pp.ipv4->is_fragment())
        return pkt;

    ++stats_.fragments_in;
    const uint8_t* p = pkt.bytes();
    size_t ihl = (p[pp.l3_offset] & 0x0f) * 4;
    size_t frag_payload = pp.ipv4->total_len >= ihl
                              ? pp.ipv4->total_len - ihl : 0;
    if (pp.l3_offset + ihl + frag_payload > pkt.size()) {
        ++stats_.invalid;
        return std::nullopt;
    }

    Key key{pp.ipv4->src, pp.ipv4->dst, pp.ipv4->id, pp.ipv4->proto};
    auto it = contexts_.find(key);
    if (it == contexts_.end()) {
        if (contexts_.size() >= max_contexts_)
            evict_oldest();
        Context ctx;
        ctx.created = now_;
        it = contexts_.emplace(key, std::move(ctx)).first;
    }
    Context& ctx = it->second;

    if (ctx.l2l3.empty() && pp.ipv4->frag_offset == 0) {
        // Keep the first fragment's headers as the rebuild template.
        ctx.l2l3.assign(p, p + pp.l3_offset + ihl);
    }

    size_t start = size_t(pp.ipv4->frag_offset) * 8;
    size_t end = start + frag_payload;
    if (end > ctx.payload.size()) {
        ctx.payload.resize(end);
        ctx.present.resize(end, false);
    }
    bool overlapped = false;
    for (size_t i = 0; i < frag_payload; ++i) {
        if (ctx.present[start + i]) {
            overlapped = true;
            continue; // first writer wins
        }
        ctx.payload[start + i] = p[pp.l3_offset + ihl + i];
        ctx.present[start + i] = true;
        ++ctx.received;
    }
    if (overlapped)
        ++stats_.overlaps; // one count per overlapping fragment

    if (!pp.ipv4->more_fragments)
        ctx.total_len = end;

    stats_.contexts_active = contexts_.size();
    auto done = maybe_complete(key, ctx);
    if (done) {
        contexts_.erase(key);
        stats_.contexts_active = contexts_.size();
        ++stats_.packets_out;
    }
    return done;
}

std::optional<Packet>
IpReassembler::maybe_complete(const Key&, Context& ctx)
{
    if (ctx.total_len == 0 || ctx.received < ctx.total_len ||
        ctx.l2l3.empty()) {
        return std::nullopt;
    }
    for (size_t i = 0; i < ctx.total_len; ++i) {
        if (!ctx.present[i])
            return std::nullopt;
    }

    size_t ihl = ctx.l2l3.size() - kEthHeaderLen;
    Packet out;
    out.data.resize(ctx.l2l3.size() + ctx.total_len);
    std::memcpy(out.bytes(), ctx.l2l3.data(), ctx.l2l3.size());
    std::memcpy(out.bytes() + ctx.l2l3.size(), ctx.payload.data(),
                ctx.total_len);

    // Rewrite the IP header: no fragment bits, full length, new csum.
    Ipv4Header ih = Ipv4Header::decode(out.bytes() + kEthHeaderLen);
    ih.total_len = uint16_t(ihl + ctx.total_len);
    ih.more_fragments = false;
    ih.frag_offset = 0;
    ih.encode(out.bytes() + kEthHeaderLen, true);
    return out;
}

void
IpReassembler::evict_oldest()
{
    if (contexts_.empty())
        return;
    auto oldest = contexts_.begin();
    for (auto it = contexts_.begin(); it != contexts_.end(); ++it) {
        if (it->second.created < oldest->second.created)
            oldest = it;
    }
    contexts_.erase(oldest);
    ++stats_.timeouts;
}

void
IpReassembler::expire(uint64_t now_tick, uint64_t max_age)
{
    for (auto it = contexts_.begin(); it != contexts_.end();) {
        if (now_tick - it->second.created > max_age) {
            it = contexts_.erase(it);
            ++stats_.timeouts;
        } else {
            ++it;
        }
    }
    stats_.contexts_active = contexts_.size();
}

} // namespace fld::net
