/**
 * @file
 * Internet checksum (RFC 1071) and the IPv4/UDP/TCP applications of it.
 * These are the checksums the NIC model's stateless offloads compute
 * and validate.
 */
#ifndef FLD_NET_CHECKSUM_H
#define FLD_NET_CHECKSUM_H

#include <cstdint>
#include <cstddef>

namespace fld::net {

/** One's-complement sum accumulator over a byte range. */
uint32_t checksum_partial(const uint8_t* data, size_t len, uint32_t acc);

/** Fold a partial accumulator into a final 16-bit checksum. */
uint16_t checksum_fold(uint32_t acc);

/** RFC 1071 checksum over a byte range. */
uint16_t internet_checksum(const uint8_t* data, size_t len);

/** IPv4 header checksum over @p ihl_bytes of header (checksum zeroed). */
uint16_t ipv4_header_checksum(const uint8_t* hdr, size_t ihl_bytes);

/**
 * UDP/TCP checksum with the IPv4 pseudo-header.
 * @p l4 points at the L4 header; @p l4_len covers header + payload.
 * The checksum field inside the header must be zero.
 */
uint16_t l4_checksum(uint32_t src_ip, uint32_t dst_ip, uint8_t proto,
                     const uint8_t* l4, size_t l4_len);

} // namespace fld::net

#endif // FLD_NET_CHECKSUM_H
