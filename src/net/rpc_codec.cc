#include "net/rpc_codec.h"

#include <cstring>

#include "util/logging.h"

namespace fld::rpc {

namespace {

void
put_u16(std::vector<uint8_t>& v, uint16_t x)
{
    v.push_back(uint8_t(x));
    v.push_back(uint8_t(x >> 8));
}

void
put_u32(std::vector<uint8_t>& v, uint32_t x)
{
    for (int i = 0; i < 4; ++i)
        v.push_back(uint8_t(x >> (8 * i)));
}

void
put_u64(std::vector<uint8_t>& v, uint64_t x)
{
    for (int i = 0; i < 8; ++i)
        v.push_back(uint8_t(x >> (8 * i)));
}

uint16_t
get_u16(const uint8_t* p)
{
    return uint16_t(p[0]) | uint16_t(p[1]) << 8;
}

uint32_t
get_u32(const uint8_t* p)
{
    uint32_t x = 0;
    for (int i = 0; i < 4; ++i)
        x |= uint32_t(p[i]) << (8 * i);
    return x;
}

uint64_t
get_u64(const uint8_t* p)
{
    uint64_t x = 0;
    for (int i = 0; i < 8; ++i)
        x |= uint64_t(p[i]) << (8 * i);
    return x;
}

} // namespace

uint32_t
frame_checksum(const uint8_t* data, size_t len)
{
    uint32_t h = 0x811c9dc5u; // FNV-1a 32-bit offset basis
    for (size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= 0x01000193u;
    }
    return h;
}

void
append_frame(std::vector<uint8_t>& out, uint8_t method,
             uint64_t request_id, const uint8_t* payload,
             size_t payload_len)
{
    size_t header_at = out.size();
    out.reserve(out.size() + kHeaderBytes + payload_len);
    put_u16(out, kFrameMagic);
    out.push_back(kFrameVersion);
    out.push_back(method);
    put_u32(out, uint32_t(payload_len));
    put_u64(out, request_id);
    put_u32(out, frame_checksum(payload, payload_len));
    put_u32(out, frame_checksum(out.data() + header_at, 20));
    out.insert(out.end(), payload, payload + payload_len);
}

std::vector<uint8_t>
encode_frame(uint8_t method, uint64_t request_id,
             const uint8_t* payload, size_t payload_len)
{
    std::vector<uint8_t> out;
    append_frame(out, method, request_id, payload, payload_len);
    return out;
}

std::vector<uint8_t>
encode_frame(const Frame& f)
{
    return encode_frame(f.method, f.request_id, f.payload.data(),
                        f.payload.size());
}

const char*
to_string(DecodeError e)
{
    switch (e) {
    case DecodeError::None:
        return "none";
    case DecodeError::BadMagic:
        return "bad-magic";
    case DecodeError::BadVersion:
        return "bad-version";
    case DecodeError::BadHeaderChecksum:
        return "bad-header-checksum";
    case DecodeError::Oversize:
        return "oversize-payload";
    case DecodeError::BadPayloadChecksum:
        return "bad-payload-checksum";
    }
    return "?";
}

bool
FrameDecoder::feed(const uint8_t* data, size_t len)
{
    bytes_fed_ += len;
    if (error())
        return false; // sticky: poisoned streams never resync
    buf_.insert(buf_.end(), data, data + len);
    parse();
    return !error();
}

bool
FrameDecoder::next(Frame* out)
{
    if (ready_.empty())
        return false;
    *out = std::move(ready_.front());
    ready_.pop_front();
    return true;
}

void
FrameDecoder::reset()
{
    buf_.clear();
    off_ = 0;
    ready_.clear();
    err_ = DecodeError::None;
}

void
FrameDecoder::parse()
{
    for (;;) {
        size_t avail = buf_.size() - off_;
        if (avail < kHeaderBytes)
            break;
        const uint8_t* h = buf_.data() + off_;
        if (get_u16(h) != kFrameMagic) {
            err_ = DecodeError::BadMagic;
            break;
        }
        if (h[2] != kFrameVersion) {
            err_ = DecodeError::BadVersion;
            break;
        }
        // The header checksum covers the length prefix, so a flipped
        // length is rejected here instead of silently re-framing the
        // stream at a garbage offset.
        if (frame_checksum(h, 20) != get_u32(h + 20)) {
            err_ = DecodeError::BadHeaderChecksum;
            break;
        }
        uint32_t plen = get_u32(h + 4);
        if (plen > max_payload_) {
            err_ = DecodeError::Oversize;
            break;
        }
        if (avail < kHeaderBytes + plen)
            break; // frame incomplete; wait for more bytes
        const uint8_t* payload = h + kHeaderBytes;
        if (frame_checksum(payload, plen) != get_u32(h + 16)) {
            err_ = DecodeError::BadPayloadChecksum;
            break;
        }
        Frame f;
        f.method = h[3];
        f.request_id = get_u64(h + 8);
        f.payload.assign(payload, payload + plen);
        ready_.push_back(std::move(f));
        ++frames_decoded_;
        off_ += kHeaderBytes + plen;
    }
    if (error()) {
        buf_.clear();
        off_ = 0;
        return;
    }
    // Compact lazily so long-lived streams stay O(bytes), not O(n^2).
    if (off_ > 0 && (off_ >= buf_.size() || off_ > 64 * 1024)) {
        buf_.erase(buf_.begin(), buf_.begin() + ptrdiff_t(off_));
        off_ = 0;
    }
}

} // namespace fld::rpc
