/**
 * @file
 * IPv4 fragmentation and reassembly.
 *
 * The same reassembly engine backs both the FLD IP-defragmentation
 * accelerator (§7) and the software (CPU baseline) defragmentation
 * path of the §8.2.2 experiment.
 */
#ifndef FLD_NET_IP_REASSEMBLY_H
#define FLD_NET_IP_REASSEMBLY_H

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/headers.h"
#include "net/packet.h"

namespace fld::net {

/**
 * Fragment an Ethernet/IPv4 frame so that no fragment's IP length
 * exceeds @p mtu. Returns {pkt} unchanged when it already fits.
 * Fragment payload sizes are multiples of 8 bytes as required.
 */
std::vector<Packet> ip_fragment(const Packet& pkt, size_t mtu);

/** Statistics exposed by the reassembler. */
struct ReassemblyStats
{
    uint64_t fragments_in = 0;
    uint64_t packets_out = 0;
    uint64_t timeouts = 0;
    uint64_t overlaps = 0;
    uint64_t invalid = 0;
    size_t contexts_active = 0;
};

/**
 * IPv4 reassembly engine keyed by (src, dst, proto, id).
 *
 * Fragments may arrive out of order. Overlapping ranges are accepted
 * (first writer wins) and counted. Contexts are bounded; when
 * @p max_contexts is exceeded the oldest context is evicted, modeling
 * the limited reassembly memory of the FPGA accelerator.
 */
class IpReassembler
{
  public:
    explicit IpReassembler(size_t max_contexts = 1024)
        : max_contexts_(max_contexts)
    {}

    /**
     * Feed one frame. Non-fragments are returned as-is. A fragment
     * that completes its datagram returns the rebuilt frame (correct
     * total_len/offset/checksum); otherwise nullopt.
     */
    std::optional<Packet> push(const Packet& pkt);

    /** Drop contexts older than @p max_age given the current tick. */
    void expire(uint64_t now_tick, uint64_t max_age);

    const ReassemblyStats& stats() const { return stats_; }

    /** Advance the logical clock used for eviction ordering. */
    void tick(uint64_t now) { now_ = now; }

  private:
    struct Key
    {
        uint32_t src, dst;
        uint16_t id;
        uint8_t proto;
        bool operator<(const Key& o) const
        {
            if (src != o.src)
                return src < o.src;
            if (dst != o.dst)
                return dst < o.dst;
            if (id != o.id)
                return id < o.id;
            return proto < o.proto;
        }
    };
    struct Context
    {
        std::vector<uint8_t> payload; // reassembled IP payload bytes
        std::vector<bool> present;    // byte-granularity coverage
        size_t total_len = 0;         // set once the last fragment arrives
        size_t received = 0;
        std::vector<uint8_t> l2l3;    // Ethernet + IP header template
        uint64_t created = 0;
    };

    std::optional<Packet> maybe_complete(const Key& key, Context& ctx);
    void evict_oldest();

    size_t max_contexts_;
    std::map<Key, Context> contexts_;
    ReassemblyStats stats_;
    uint64_t now_ = 0;
};

} // namespace fld::net

#endif // FLD_NET_IP_REASSEMBLY_H
