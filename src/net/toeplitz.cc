#include "net/toeplitz.h"

#include "util/bitops.h"

namespace fld::net {

const RssKey&
default_rss_key()
{
    // Verbatim from the Microsoft RSS specification; also the default
    // key of mlx5, ixgbe and most other drivers.
    static const RssKey key = {
        0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
        0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
        0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
        0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
    };
    return key;
}

uint32_t
toeplitz_hash(const RssKey& key, const uint8_t* input, size_t len)
{
    uint32_t result = 0;
    // Sliding 32-bit window over the key, one bit per input bit.
    uint32_t window = load_be32(key.data());
    size_t key_bit = 32;
    for (size_t i = 0; i < len; ++i) {
        uint8_t byte = input[i];
        for (int b = 7; b >= 0; --b) {
            if ((byte >> b) & 1)
                result ^= window;
            // Shift the window left by one, pulling in the next key bit.
            uint8_t next = key_bit < kRssKeyLen * 8
                               ? (key[key_bit / 8] >> (7 - key_bit % 8)) & 1
                               : 0;
            window = window << 1 | next;
            ++key_bit;
        }
    }
    return result;
}

uint32_t
toeplitz_ipv4(const RssKey& key, uint32_t src_ip, uint32_t dst_ip,
              uint16_t sport, uint16_t dport)
{
    uint8_t input[12];
    store_be32(input, src_ip);
    store_be32(input + 4, dst_ip);
    store_be16(input + 8, sport);
    store_be16(input + 10, dport);
    return toeplitz_hash(key, input, sizeof(input));
}

} // namespace fld::net
