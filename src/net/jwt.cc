#include "net/jwt.h"

#include <algorithm>

#include "crypto/base64.h"
#include "crypto/sha256.h"
#include "util/strings.h"

namespace fld::net {

namespace {
const char kHs256Header[] = R"({"alg":"HS256","typ":"JWT"})";
} // namespace

std::string
jwt_sign_hs256(const std::string& claims_json, const std::string& key)
{
    std::string signing_input =
        crypto::base64url_encode(std::string(kHs256Header)) + "." +
        crypto::base64url_encode(claims_json);
    auto mac = crypto::hmac_sha256(key, signing_input);
    return signing_input + "." +
           crypto::base64url_encode(mac.data(), mac.size());
}

JwtVerifyResult
jwt_verify_hs256(const std::string& token, const std::string& key)
{
    JwtVerifyResult result;
    auto parts = split(token, '.');
    if (parts.size() != 3)
        return result;

    auto header = crypto::base64url_decode(parts[0]);
    auto payload = crypto::base64url_decode(parts[1]);
    auto sig = crypto::base64url_decode(parts[2]);
    if (!header || !payload || !sig || sig->size() != 32)
        return result;

    std::string header_str(header->begin(), header->end());
    if (header_str != kHs256Header)
        return result;

    std::string signing_input = parts[0] + "." + parts[1];
    auto expect = crypto::hmac_sha256(key, signing_input);
    crypto::Sha256Digest got;
    std::copy(sig->begin(), sig->end(), got.begin());
    if (!crypto::digest_equal(expect, got))
        return result;

    result.valid = true;
    result.claims_json.assign(payload->begin(), payload->end());
    return result;
}

} // namespace fld::net
