/**
 * @file
 * Packet representation used across the simulated testbed.
 *
 * Packets carry real bytes: the accelerators perform actual
 * cryptography and reassembly on payloads, so the simulation is
 * functionally faithful, not just timing-faithful.
 */
#ifndef FLD_NET_PACKET_H
#define FLD_NET_PACKET_H

#include <cstdint>
#include <vector>

namespace fld::net {

/** Per-packet sideband metadata carried through NIC/FLD pipelines. */
struct PacketMeta
{
    uint32_t flow_tag = 0;    ///< NIC match-action tag (tenant/context ID)
    uint16_t queue_id = 0;    ///< destination/origin queue
    uint32_t rss_hash = 0;    ///< receive-side-scaling hash, if computed
    bool l3_csum_ok = false;  ///< NIC checksum-offload verdicts
    bool l4_csum_ok = false;
    bool tunneled = false;    ///< arrived inside a (decapsulated) tunnel
    uint32_t vni = 0;         ///< VXLAN network id when tunneled
    uint32_t next_table = 0;  ///< FLD-E: match-action table to resume at
    uint64_t client_cookie = 0; ///< opaque end-to-end correlation id
    uint64_t corr = 0;        ///< trace correlation id (0 = untraced)
};

/** A network packet: raw bytes plus simulation metadata. */
struct Packet
{
    std::vector<uint8_t> data;
    PacketMeta meta;

    Packet() = default;
    explicit Packet(std::vector<uint8_t> bytes) : data(std::move(bytes)) {}

    size_t size() const { return data.size(); }
    uint8_t* bytes() { return data.data(); }
    const uint8_t* bytes() const { return data.data(); }
};

} // namespace fld::net

#endif // FLD_NET_PACKET_H
