/**
 * @file
 * RPC framing codec for the host fast path application tier.
 *
 * Frames travel over the per-connection TCP byte stream, which the
 * fast path slices at MSS boundaries and the app tier slices again at
 * ring-descriptor boundaries — so the decoder must reassemble frames
 * from arbitrary fragmentation and must never desynchronise: any
 * corruption of the length prefix (or any other header byte) is
 * detected by a header checksum and turns the stream into a sticky,
 * deterministic error state instead of a misaligned re-parse.
 *
 * Wire format (little-endian, 24-byte header then payload):
 *
 *   off  size  field
 *     0     2  magic        0xF1D0
 *     2     1  version      1
 *     3     1  method       dispatcher method id
 *     4     4  payload_len  bytes following the header
 *     8     8  request_id   echoed verbatim in the response frame
 *    16     4  payload_csum FNV-1a over the payload, truncated to 32b
 *    20     4  header_csum  FNV-1a over header bytes [0, 20)
 */
#ifndef FLD_NET_RPC_CODEC_H
#define FLD_NET_RPC_CODEC_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace fld::rpc {

constexpr uint16_t kFrameMagic = 0xF1D0;
constexpr uint8_t kFrameVersion = 1;
constexpr size_t kHeaderBytes = 24;

/** Upper bound a decoder will accept for payload_len by default. */
constexpr uint32_t kDefaultMaxPayload = 64 * 1024;

struct Frame
{
    uint8_t method = 0;
    uint64_t request_id = 0;
    std::vector<uint8_t> payload;
};

/** 32-bit FNV-1a, the checksum both header and payload fields use. */
uint32_t frame_checksum(const uint8_t* data, size_t len);

/** Serialise one frame (header + payload) onto `out`. */
void append_frame(std::vector<uint8_t>& out, uint8_t method,
                  uint64_t request_id, const uint8_t* payload,
                  size_t payload_len);

std::vector<uint8_t> encode_frame(uint8_t method, uint64_t request_id,
                                  const uint8_t* payload,
                                  size_t payload_len);
std::vector<uint8_t> encode_frame(const Frame& f);

enum class DecodeError : uint8_t
{
    None = 0,
    BadMagic,
    BadVersion,
    BadHeaderChecksum, ///< flipped length prefix lands here
    Oversize,          ///< payload_len above the configured bound
    BadPayloadChecksum,
};

const char* to_string(DecodeError e);

/**
 * Streaming frame reassembler. feed() accepts byte runs fragmented at
 * any boundary (MSS segments, ring descriptors, single bytes); next()
 * pops completed frames in order. The first malformed header or
 * payload poisons the decoder: error() becomes true, every buffered
 * and future byte is discarded, and no further frame is ever emitted
 * — the deterministic-rejection contract the property tests pin.
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(uint32_t max_payload = kDefaultMaxPayload)
        : max_payload_(max_payload)
    {
    }

    /** Returns false once the decoder is in the error state. */
    bool feed(const uint8_t* data, size_t len);

    /** Pop the next completed frame, if any. */
    bool next(Frame* out);

    bool error() const { return err_ != DecodeError::None; }
    DecodeError error_code() const { return err_; }

    size_t buffered() const { return buf_.size() - off_; }
    size_t pending_frames() const { return ready_.size(); }
    uint64_t frames_decoded() const { return frames_decoded_; }
    uint64_t bytes_fed() const { return bytes_fed_; }

    /** Forget buffered bytes, queued frames and any error state. */
    void reset();

  private:
    void parse();

    uint32_t max_payload_;
    std::vector<uint8_t> buf_;
    size_t off_ = 0; ///< parse cursor into buf_ (compacted lazily)
    std::deque<Frame> ready_;
    DecodeError err_ = DecodeError::None;
    uint64_t frames_decoded_ = 0;
    uint64_t bytes_fed_ = 0;
};

} // namespace fld::rpc

#endif // FLD_NET_RPC_CODEC_H
