#include "apps/fuzz_sweep.h"

#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace fld::apps {

namespace {

constexpr uint64_t kNoFailure = std::numeric_limits<uint64_t>::max();

struct SweepState
{
    std::atomic<uint64_t> next_index{0};
    /** Lowest failing seed *index* seen so far; kNoFailure if clean.
     *  Workers stop claiming indices at or above this. */
    std::atomic<uint64_t> min_fail_index{kNoFailure};
    std::atomic<uint64_t> ran{0};
    std::mutex mu; ///< guards the three fields below + on_result
    uint64_t done = 0;
    sim::FuzzScenario failing_scenario;
    FuzzVerdict failing_verdict;
};

} // namespace

SweepResult
run_sweep(const SweepOptions& opt)
{
    SweepState st;
    const unsigned jobs = opt.jobs < 1 ? 1 : opt.jobs;
    const auto start = std::chrono::steady_clock::now();
    auto out_of_budget = [&] {
        if (opt.budget_sec <= 0)
            return false;
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count() >= opt.budget_sec;
    };

    auto worker = [&] {
        // Per-worker generator + runner: private testbeds, RNGs and
        // (thread-local) tracer. Nothing here is shared.
        sim::ScenarioFuzzer fuzzer;
        FuzzRunner runner(opt.run);
        for (;;) {
            uint64_t i =
                st.next_index.fetch_add(1, std::memory_order_relaxed);
            if (opt.budget_sec > 0) {
                if (out_of_budget())
                    return;
            } else if (i >= opt.seeds) {
                return;
            }
            // A lower seed already failed: anything we could find at
            // or above it cannot change the merged verdict.
            if (i >= st.min_fail_index.load(std::memory_order_acquire))
                return;

            uint64_t seed = opt.seed0 + i;
            sim::FuzzScenario s = fuzzer.generate(seed);
            FuzzVerdict v = opt.run_override ? opt.run_override(s)
                                             : runner.run(s);
            st.ran.fetch_add(1, std::memory_order_relaxed);

            if (!v.ok) {
                // Keep the lowest failing index; ties are impossible
                // (each index is claimed exactly once).
                uint64_t prev = st.min_fail_index.load(
                    std::memory_order_acquire);
                while (i < prev &&
                       !st.min_fail_index.compare_exchange_weak(
                           prev, i, std::memory_order_acq_rel)) {
                }
                if (i < prev || prev == kNoFailure) {
                    std::lock_guard<std::mutex> lock(st.mu);
                    if (i <= st.min_fail_index.load(
                                 std::memory_order_acquire)) {
                        st.failing_scenario = s;
                        st.failing_verdict = v;
                    }
                }
            }
            if (opt.on_result) {
                std::lock_guard<std::mutex> lock(st.mu);
                opt.on_result(++st.done, seed, s, v);
            }
        }
    };

    if (jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (auto& th : pool)
            th.join();
    }

    SweepResult r;
    r.ran = st.ran.load();
    uint64_t fail = st.min_fail_index.load();
    if (fail != kNoFailure) {
        r.found_failure = true;
        r.failing_seed = opt.seed0 + fail;
        r.failing_scenario = st.failing_scenario;
        r.failing_verdict = st.failing_verdict;
    }
    return r;
}

} // namespace fld::apps
