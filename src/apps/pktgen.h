/**
 * @file
 * testpmd-like packet generator / echo-measurement application.
 *
 * Drives a CpuDriver queue: open-loop at an offered rate or
 * closed-loop with a fixed window, fixed packet sizes or the IMC-2010
 * datacenter mixture, and measures delivered throughput plus — when
 * the far end echoes — round-trip latency (Table 6, Figures 7b/7c).
 */
#ifndef FLD_APPS_PKTGEN_H
#define FLD_APPS_PKTGEN_H

#include <cstdint>
#include <functional>
#include <map>

#include "driver/cpu_driver.h"
#include "net/headers.h"
#include "sim/stats.h"
#include "util/rng.h"

namespace fld::apps {

struct PktGenConfig
{
    /** Ethernet frame size (including headers); >= 64. */
    size_t frame_size = 64;
    /** Use the IMC-2010 size mixture instead of a fixed size. */
    bool imc_mix = false;
    /** Number of distinct UDP flows (source ports). */
    uint32_t flows = 1;
    /** Offered load; 0 means closed loop. */
    double offered_gbps = 0.0;
    /** Closed-loop window (outstanding packets). */
    uint32_t window = 64;
    /** Expect echoes and measure RTT. */
    bool measure_rtt = false;

    /** Hard budget on generated packets; 0 = unlimited (time-bound
     *  only). The differential fuzzer needs both runs of a scenario to
     *  emit exactly the same request stream, which a pure time bound
     *  cannot guarantee when RTTs differ between the two datapaths. */
    uint64_t max_packets = 0;
    /** Fill payload bytes past the cookie/timestamp header with a
     *  cookie-derived pattern and verify echoed payloads against it
     *  (corruption detection end to end). */
    bool pattern_payload = false;
    /** Track a per-flow FNV-1a digest of delivered payloads (send
     *  timestamps masked), for byte-identical stream comparison. */
    bool flow_digests = false;
    /** VXLAN-encapsulate generated frames; the device under test is
     *  expected to decapsulate (eSwitch offload) so echoes come back
     *  as the inner frame. */
    bool vxlan = false;
    uint32_t vni = 0;
    uint32_t vxlan_src_ip = net::ipv4_addr(192, 168, 0, 2);
    uint32_t vxlan_dst_ip = net::ipv4_addr(192, 168, 0, 1);

    net::MacAddr src_mac{2, 0, 0, 0, 0, 0xc1};
    net::MacAddr dst_mac{2, 0, 0, 0, 0, 0x51};
    uint32_t src_ip = net::ipv4_addr(10, 0, 0, 2);
    uint32_t dst_ip = net::ipv4_addr(10, 0, 0, 1);
    uint16_t base_sport = 40000;
    uint16_t dport = 9000;
    uint64_t seed = 7;
};

/**
 * The IMC-2010 datacenter packet-size mixture [9], approximated as a
 * small empirical distribution: packet counts are dominated by small
 * (<200 B) and full-MTU packets. Used for the mixed-size Mpps
 * comparison of §8.1.1 (12.7 Mpps FLD-E vs 9.6 Mpps CPU testpmd).
 */
size_t imc_frame_size(Rng& rng);

class PacketGen
{
  public:
    PacketGen(sim::EventQueue& eq, driver::CpuDriver& driver,
              uint32_t queue, PktGenConfig cfg = {});

    /**
     * Generate for @p duration; samples taken after @p warmup count
     * toward the reported meters/histogram.
     */
    void start(sim::TimePs warmup, sim::TimePs duration);

    /** Measured delivered (received-back) traffic. */
    const sim::RateMeter& rx_meter() const { return rx_meter_; }
    const sim::RateMeter& tx_meter() const { return tx_meter_; }
    /** RTT in microseconds (measure_rtt mode). */
    const sim::Histogram& rtt_us() const { return rtt_us_; }

    uint64_t tx_count() const { return tx_count_; }
    uint64_t rx_count() const { return rx_count_; }
    /** Echoes whose payload failed pattern verification. */
    uint64_t bad_payload() const { return bad_payload_; }
    /** flow id (cookie % flows) -> running FNV-1a stream digest. */
    const std::map<uint32_t, uint64_t>& flow_digests() const
    {
        return flow_digests_;
    }
    sim::TimePs measure_start() const { return measure_start_; }
    sim::TimePs measure_end() const { return last_rx_; }

  private:
    void send_one();
    void schedule_next_open_loop();
    void on_rx(net::Packet&& pkt);
    net::Packet make_packet();

    sim::EventQueue& eq_;
    driver::CpuDriver& driver_;
    uint32_t queue_;
    PktGenConfig cfg_;
    Rng rng_;

    bool running_ = false;
    sim::TimePs measure_start_ = 0;
    sim::TimePs end_time_ = 0;
    sim::TimePs last_rx_ = 0;
    uint64_t next_cookie_ = 1;
    uint64_t tx_count_ = 0;
    uint64_t rx_count_ = 0;
    uint64_t bad_payload_ = 0;
    std::map<uint32_t, uint64_t> flow_digests_;
    sim::RateMeter rx_meter_;
    sim::RateMeter tx_meter_;
    sim::Histogram rtt_us_;
};

} // namespace fld::apps

#endif // FLD_APPS_PKTGEN_H
