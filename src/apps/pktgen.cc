#include "apps/pktgen.h"

#include <algorithm>

#include "sim/fuzz.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace fld::apps {

namespace {

/** Deterministic filler for payload byte @p i of packet @p cookie. */
inline uint8_t
pattern_byte(uint64_t cookie, size_t i)
{
    return uint8_t((cookie * 131u) ^ (i * 7u));
}

} // namespace

size_t
imc_frame_size(Rng& rng)
{
    // Empirical approximation of Benson et al. [9]: bimodal packet
    // sizes — a heavy mass of small control/ACK packets and a second
    // mode at full MTU. Count-weighted average ~220 B, consistent
    // with the §8.1.1 packet-rate numbers.
    double u = rng.uniform_double();
    if (u < 0.66)
        return 64;
    if (u < 0.76)
        return 128;
    if (u < 0.86)
        return 256;
    if (u < 0.91)
        return 512;
    if (u < 0.95)
        return 1024;
    return 1500;
}

PacketGen::PacketGen(sim::EventQueue& eq, driver::CpuDriver& driver,
                     uint32_t queue, PktGenConfig cfg)
    : eq_(eq), driver_(driver), queue_(queue), cfg_(cfg),
      rng_(cfg.seed)
{
    driver_.set_rx_handler([this](uint32_t, net::Packet&& pkt) {
        on_rx(std::move(pkt));
    });
}

net::Packet
PacketGen::make_packet()
{
    size_t frame =
        cfg_.imc_mix ? imc_frame_size(rng_) : cfg_.frame_size;
    frame = std::max<size_t>(frame, 64);
    size_t payload = frame - net::kEthHeaderLen - net::kIpv4HeaderLen -
                     net::kUdpHeaderLen;

    std::vector<uint8_t> body(payload, 0);
    // Cookie + send timestamp for RTT matching.
    uint64_t cookie = next_cookie_++;
    if (payload >= 16) {
        store_le64(body.data(), cookie);
        store_le64(body.data() + 8, eq_.now());
        if (cfg_.pattern_payload)
            for (size_t i = 16; i < payload; ++i)
                body[i] = pattern_byte(cookie, i);
    }

    uint16_t sport =
        uint16_t(cfg_.base_sport + cookie % std::max(1u, cfg_.flows));
    net::Packet pkt = net::PacketBuilder()
                          .eth(cfg_.src_mac, cfg_.dst_mac)
                          .ipv4(cfg_.src_ip, cfg_.dst_ip,
                                net::kIpProtoUdp)
                          .udp(sport, cfg_.dport)
                          .payload(body)
                          .build();
    if (cfg_.vxlan)
        pkt = net::vxlan_encapsulate(pkt, cfg_.vni, cfg_.vxlan_src_ip,
                                     cfg_.vxlan_dst_ip, cfg_.src_mac,
                                     cfg_.dst_mac);
    return pkt;
}

void
PacketGen::start(sim::TimePs warmup, sim::TimePs duration)
{
    running_ = true;
    measure_start_ = eq_.now() + warmup;
    end_time_ = eq_.now() + duration;

    if (cfg_.offered_gbps > 0) {
        schedule_next_open_loop();
    } else {
        for (uint32_t i = 0; i < cfg_.window; ++i)
            send_one();
    }
}

void
PacketGen::send_one()
{
    if (!running_ || eq_.now() >= end_time_) {
        running_ = false;
        return;
    }
    if (cfg_.max_packets && tx_count_ >= cfg_.max_packets)
        return;
    net::Packet pkt = make_packet();
    size_t bytes = pkt.size();
    if (driver_.send(queue_, std::move(pkt))) {
        ++tx_count_;
        if (eq_.now() >= measure_start_)
            tx_meter_.record(eq_.now(), bytes);
    }
}

void
PacketGen::schedule_next_open_loop()
{
    if (!running_ || eq_.now() >= end_time_ ||
        (cfg_.max_packets && tx_count_ >= cfg_.max_packets)) {
        running_ = false;
        return;
    }
    net::Packet pkt = make_packet();
    size_t bytes = pkt.size();
    // Pace by serialized size at the offered rate (wire framing incl).
    sim::TimePs gap =
        sim::serialize_time(bytes + nic::kEthWireOverhead,
                            cfg_.offered_gbps);
    if (driver_.send(queue_, std::move(pkt))) {
        ++tx_count_;
        if (eq_.now() >= measure_start_)
            tx_meter_.record(eq_.now(), bytes);
    }
    eq_.schedule_in(gap, [this] { schedule_next_open_loop(); });
}

void
PacketGen::on_rx(net::Packet&& pkt)
{
    ++rx_count_;
    last_rx_ = eq_.now();
    if (eq_.now() >= measure_start_ && eq_.now() <= end_time_)
        rx_meter_.record(eq_.now(), pkt.size());

    if (cfg_.measure_rtt || cfg_.pattern_payload || cfg_.flow_digests) {
        net::ParsedPacket pp = net::parse(pkt);
        if (pp.payload_len >= 16) {
            const uint8_t* p = pkt.bytes() + pp.payload_offset;
            uint64_t cookie = load_le64(p);
            sim::TimePs sent = load_le64(p + 8);
            if (cfg_.measure_rtt && sent <= eq_.now() &&
                eq_.now() >= measure_start_ && eq_.now() <= end_time_) {
                rtt_us_.add(sim::to_us(eq_.now() - sent));
            }
            if (cfg_.pattern_payload) {
                for (size_t i = 16; i < pp.payload_len; ++i)
                    if (p[i] != pattern_byte(cookie, i)) {
                        ++bad_payload_;
                        break;
                    }
            }
            if (cfg_.flow_digests) {
                // Per-flow delivered-payload digest. Two timing
                // artifacts must not affect it: the send timestamp
                // (bytes 8..15) is masked, and per-packet hashes are
                // combined with wrapping addition because a flow
                // sprayed over several SQs can legitimately arrive
                // reordered (large frames serialize longer). Addition
                // is order-blind but still duplicate-sensitive.
                uint32_t flow =
                    uint32_t(cookie % std::max(1u, cfg_.flows));
                uint64_t h = sim::fnv1a64(p, 8);
                uint64_t zero = 0;
                h = sim::fnv1a64(&zero, 8, h);
                h = sim::fnv1a64(p + 16, pp.payload_len - 16, h);
                flow_digests_[flow] += h;
            }
        }
    }
    // Closed loop: every response triggers the next request.
    if (cfg_.offered_gbps <= 0 && running_)
        send_one();
}

} // namespace fld::apps
