/**
 * @file
 * dpdk-test-crypto-perf-style client for the disaggregated ZUC
 * accelerator (§8.2.1), built on the FLD-R client library path: a
 * cryptodev-like API posting requests over RDMA and collecting
 * responses, measuring goodput and latency-vs-load (Figures 8a/8b).
 */
#ifndef FLD_APPS_CRYPTO_PERF_H
#define FLD_APPS_CRYPTO_PERF_H

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "accel/zuc_protocol.h"
#include "driver/rdma_client.h"
#include "sim/stats.h"
#include "util/rng.h"

namespace fld::apps {

struct CryptoPerfConfig
{
    size_t request_payload = 512; ///< plaintext bytes per request
    uint32_t window = 32;         ///< outstanding requests
    double offered_gbps = 0.0;    ///< 0 = closed loop
    accel::ZucOp op = accel::ZucOp::Eea3Crypt;
    bool verify = false; ///< decrypt locally and check round trip
    uint64_t seed = 11;
};

class CryptoPerfClient
{
  public:
    CryptoPerfClient(sim::EventQueue& eq, driver::RdmaClient& client,
                     CryptoPerfConfig cfg = {});

    void start(sim::TimePs warmup, sim::TimePs duration);

    /** Goodput counted as request payload bytes per second. */
    const sim::RateMeter& response_meter() const { return meter_; }
    const sim::Histogram& latency_us() const { return latency_us_; }
    uint64_t responses() const { return responses_; }
    uint64_t verified_ok() const { return verified_ok_; }
    uint64_t verified_bad() const { return verified_bad_; }
    sim::TimePs measure_start() const { return measure_start_; }
    sim::TimePs last_response() const { return last_response_; }

  private:
    void send_one();
    void schedule_next_open_loop();
    void on_response(uint32_t msg_id, std::vector<uint8_t>&& msg);

    sim::EventQueue& eq_;
    driver::RdmaClient& client_;
    CryptoPerfConfig cfg_;
    Rng rng_;
    crypto::Zuc::Key key_{};

    bool running_ = false;
    sim::TimePs measure_start_ = 0;
    sim::TimePs end_time_ = 0;
    sim::TimePs last_response_ = 0;
    uint32_t next_id_ = 1;
    uint64_t responses_ = 0;
    uint64_t verified_ok_ = 0;
    uint64_t verified_bad_ = 0;
    std::map<uint32_t, std::pair<sim::TimePs, std::vector<uint8_t>>>
        inflight_; ///< msg_id -> (send time, original plaintext)
    sim::RateMeter meter_;
    sim::Histogram latency_us_;
};

} // namespace fld::apps

#endif // FLD_APPS_CRYPTO_PERF_H
