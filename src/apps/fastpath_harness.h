/**
 * @file
 * End-to-end harness for the host fast path: the same AppEmu client
 * workload served by a server-side FastPath stack that is either
 * FLD-driven (the stack lives behind the FLD AXI stream as an AFU,
 * frames never touch the server CPU driver) or CPU-driven (the stack
 * sits on a conventional CpuDriver on the server host's vPort).
 *
 * The harness assembles a remote Testbed (client node, 25 GbE wire,
 * server node), runs the workload to quiescence and folds the result
 * into a FastPathReport: per-flow byte digests from both ends, an
 * exactly-once/lifecycle verdict, a frame ConservationLedger, trace
 * violations (optional) and a deterministic state hash. Two runs of
 * the same config must produce bit-identical hashes; FLD-driven and
 * CPU-driven runs of the same workload must produce identical per-flow
 * digest maps (the differential oracle — frame timing differs, bytes
 * delivered may not).
 */
#ifndef FLD_APPS_FASTPATH_HARNESS_H
#define FLD_APPS_FASTPATH_HARNESS_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "apps/app_emu.h"
#include "apps/testbed.h"
#include "driver/cpu_driver.h"
#include "driver/fastpath.h"

namespace fld::apps {

/**
 * AFU bridging FLD's AXI stream into a FastPath TCP stack — the
 * paper's "accelerator with its own network driver" shape: the full
 * transport endpoint lives on the FPGA side of the PCIe boundary.
 *
 * RX: stream packets become raw frames into FastPath::on_rx after the
 * unit bank's service time. TX: the stack's egress hook wraps frames
 * in stream packets carrying the steering metadata (context/resume
 * table) captured from the first received packet; send() returning
 * false (FLD out of credits) propagates as driver backpressure, which
 * the stack absorbs with its retry backlog.
 */
class HostStackAfu : public accel::Accelerator
{
  public:
    /** Transport hot path on FPGA: fast, deep queues (the stack, not
     *  the AFU bank, is the flow-control point). */
    static accel::UnitModel default_model()
    {
        accel::UnitModel m;
        m.units = 2;
        m.setup_time = sim::nanoseconds(40);
        m.unit_gbps = 100.0;
        m.queue_depth = 4096;
        return m;
    }

    HostStackAfu(sim::EventQueue& eq, core::FlexDriver& fld,
                 driver::FastPath& fp, uint32_t tx_queue = 0,
                 accel::UnitModel model = default_model());

  protected:
    void process(core::StreamPacket&& pkt) override;

  private:
    bool transmit(net::Packet& frame);

    driver::FastPath& fp_;
    uint32_t tx_queue_;
    core::StreamMeta meta_;   ///< steering template from first RX
    bool meta_valid_ = false;
};

/** Which driver serves the server-side stack. */
enum class FastPathMode { Fld, Cpu };

struct FastPathHarnessConfig
{
    FastPathMode mode = FastPathMode::Fld;
    AppEmuConfig app;   ///< client workload (remote ip/port filled in)
    SinkAppConfig sink;
    driver::ConnConfig conn; ///< TCP knobs for both stacks
    uint32_t slot_bytes = 2048;
    TestbedConfig tb;   ///< fault knobs ride in tb.nic.wire_faults etc.
    /** When non-zero, wire faults hit only frames of this client
     *  port's flow (see EthernetLink::set_fault_filter). */
    uint16_t fault_target_port = 0;
    /** Record a causal trace and run TraceChecker over it. */
    bool trace = false;
    /** Pre-seed both ARP caches (default); clear to exercise ARP
     *  resolution across the testbed. */
    bool preseed_arp = true;
    uint32_t fld_rx_buffers = 16;
};

/** One flow's byte-stream summary, from either end. */
struct FlowDigest
{
    uint64_t bytes = 0;
    uint64_t digest = 0;
    bool opened = false;
    bool closed = false;
    bool reset = false;
};

struct FastPathReport
{
    bool ok = false;
    std::vector<std::string> violations;

    /** Keyed by client local port (unique per incarnation). */
    std::map<uint16_t, FlowDigest> client_flows;
    std::map<uint16_t, FlowDigest> server_flows;

    /** FNV over the per-flow digest maps: the differential oracle
     *  value (identical across FLD and CPU modes). */
    uint64_t flow_hash = 0;
    /** flow_hash + every counter below: the bit-identical-rerun
     *  oracle value (identical across same-config runs). */
    uint64_t state_hash = 0;

    sim::ConservationLedger ledger;
    sim::FaultCounters faults;
    std::vector<std::string> trace_violations;

    driver::FastPathStats client_stats;
    driver::FastPathStats server_stats;
    uint32_t opened = 0;
    uint32_t accepted = 0;
    uint32_t closed = 0;
    uint32_t resets = 0;
    uint64_t client_bytes = 0; ///< sum of client sent bytes
    uint64_t server_bytes = 0; ///< sum of server delivered bytes
    bool client_quiesced = false;
    bool server_quiesced = false;
    sim::TimePs end_time = 0;
    /** Engine events the traffic phase executed and the host seconds
     *  it took — simulator-throughput telemetry (observation only;
     *  wall time never feeds back into the simulation). */
    uint64_t events = 0;
    double run_wall_sec = 0;

    std::string summary() const;
};

/** Build the testbed, run the workload to quiescence, fold oracles. */
FastPathReport run_fastpath_scenario(const FastPathHarnessConfig& cfg);

} // namespace fld::apps

#endif // FLD_APPS_FASTPATH_HARNESS_H
