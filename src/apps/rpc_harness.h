/**
 * @file
 * End-to-end RPC-serving harness: RpcClientPool on the client node,
 * RpcServer behind the host fast path on the server node — FLD-driven
 * (stack as AFU behind the AXI stream) or CPU-driven — over the same
 * remote Testbed run_fastpath_scenario uses.
 *
 * Oracles folded into the report:
 *  - shadow conformance: every response equals rpc_execute(request)
 *    (checked in the client, unconditionally);
 *  - lifecycle/exactly-once: all requests answered exactly once and
 *    all connections closed cleanly (fault-free runs);
 *  - differential: the per-request digest map (request_id -> response
 *    FNV) must be identical between FLD- and CPU-served runs;
 *  - rerun determinism: state_hash (digests + counters + latency
 *    fold + end time) must be bit-identical across same-config runs;
 *  - conservation ledger, stack quiescence, optional TraceChecker.
 *
 * The report carries the SLO measurements bench_rpc serves: p50/p99/
 * p99.9 request latency, completed request rate, and goodput.
 */
#ifndef FLD_APPS_RPC_HARNESS_H
#define FLD_APPS_RPC_HARNESS_H

#include <map>
#include <string>
#include <vector>

#include "apps/fastpath_harness.h" // FastPathMode, HostStackAfu
#include "apps/rpc_client.h"
#include "apps/rpc_service.h"
#include "apps/testbed.h"

namespace fld::apps {

struct RpcHarnessConfig
{
    FastPathMode mode = FastPathMode::Fld;
    RpcClientConfig client; ///< remote ip/port filled in by the harness
    RpcServerConfig server;
    driver::ConnConfig conn; ///< TCP knobs for both stacks
    uint32_t slot_bytes = 2048;
    TestbedConfig tb; ///< fault knobs ride in tb.nic.wire_faults etc.
    /** When non-zero, wire faults hit only this client port's flow. */
    uint16_t fault_target_port = 0;
    bool trace = false;
    bool preseed_arp = true;
    uint32_t fld_rx_buffers = 16;
};

struct RpcReport
{
    bool ok = false;
    std::vector<std::string> violations;

    /** request_id -> response digest: the differential oracle value
     *  (identical across FLD and CPU modes, fault-free). */
    std::map<uint64_t, uint64_t> digests;
    uint64_t digest_hash = 0;
    /** digest_hash + all counters + the latency fold: the
     *  bit-identical-rerun oracle value. */
    uint64_t state_hash = 0;

    // SLO measurements.
    sim::Histogram latency; ///< per-request latency, microseconds
    double p50_us = 0, p99_us = 0, p999_us = 0, mean_us = 0;
    double req_per_sec = 0;  ///< completed requests / simulated second
    double goodput_gbps = 0; ///< response payload bits / simulated sec
    sim::TimePs end_time = 0;

    RpcClientStats client_app;
    RpcServerStats server_app;
    RpcDispatchStats dispatch;
    driver::FastPathStats client_stats;
    driver::FastPathStats server_stats;
    sim::ConservationLedger ledger;
    sim::FaultCounters faults;
    std::vector<std::string> trace_violations;
    bool client_quiesced = false;
    bool server_quiesced = false;

    std::string summary() const;
};

/** Build the testbed, serve the workload to quiescence, fold oracles. */
RpcReport run_rpc_scenario(const RpcHarnessConfig& cfg);

} // namespace fld::apps

#endif // FLD_APPS_RPC_HARNESS_H
