/**
 * @file
 * Drives a FlowDirectory with a ChurnGen event stream and judges the
 * control-plane oracles.
 *
 * The harness is the control-plane analogue of FuzzRunner: a
 * deterministic scenario (hundreds of tenants x thousands of flows,
 * open/close churn, optional faults) is applied to the directory
 * while the harness cross-checks:
 *
 *  (a) shadow equivalence: an exact std::unordered_map oracle must
 *      agree with the sharded cuckoo directory on every live flow's
 *      tenant, packet and byte counts;
 *  (b) fault rejection: injected duplicate opens and stray closes
 *      must be refused, never corrupt state;
 *  (c) stat conservation: per-tenant open-flow counts sum to the
 *      directory size, opens == closes + live;
 *  (d) budget liveness: a MemBudget tracked through churn (provisioned
 *      structures via scoped registrations + a per-flow active-state
 *      category) must land exactly on size x kFlowStateBytes with zero
 *      underflows, and the provisioned bytes must reconcile with
 *      model::flow_directory_memory.
 *
 * Optional per-tenant token-bucket shaping (the paper's §5.4 isolation
 * mechanism) gates packet accounting so fairness under churn can be
 * asserted from the per-tenant stats.
 */
#ifndef FLD_APPS_CHURN_HARNESS_H
#define FLD_APPS_CHURN_HARNESS_H

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fld/flow_directory.h"
#include "sim/churn.h"
#include "sim/token_bucket.h"

namespace fld::apps {

struct ChurnHarnessConfig
{
    sim::ChurnConfig churn;
    /** Directory geometry. flow_capacity 0 = auto: 9/8 of the churn
     *  target population, rounded up to a power of two. */
    core::FlowDirectoryConfig directory{.flow_capacity = 0};
    /** Mirror every operation into an exact oracle (oracle a).
     *  Disable for the 10^6-flow bench points where the oracle's
     *  memory would dwarf the structure under test. */
    bool shadow_oracle = true;
    /** Per-tenant shaping rate (0 = shaping off). */
    double tenant_rate_gbps = 0.0;
    uint64_t tenant_burst_bytes = 16 * 1024;
    double model_tolerance = 0.05;
};

struct ChurnReport
{
    uint64_t events = 0;
    uint64_t opens = 0;
    uint64_t closes = 0;
    uint64_t packets = 0;
    uint64_t accepted_bytes = 0;
    uint64_t shaped_drops = 0;    ///< packets gated by tenant shaping
    uint64_t rejects = 0;         ///< non-fault opens the directory refused
    uint64_t faults_injected = 0;
    size_t final_live = 0;
    sim::TimePs end_time = 0;
    uint64_t state_hash = 0; ///< FNV over directory + tenant stats
    std::vector<std::string> violations;

    bool ok() const { return violations.empty(); }
};

class ChurnHarness
{
  public:
    explicit ChurnHarness(ChurnHarnessConfig cfg);

    /** Open the initial population (no-op once ramped). */
    void ramp();

    /** Process @p n steady-phase events. */
    void step(uint64_t n);

    /** Judge all oracles; callable repeatedly. */
    ChurnReport report();

    /** ramp() + step(n) + report(). */
    ChurnReport run(uint64_t steady_events);

    const core::FlowDirectory& directory() const { return dir_; }
    const core::MemBudget& budget() const { return budget_; }
    const sim::ChurnGen& gen() const { return gen_; }

  private:
    void apply(const sim::ChurnEvent& ev);

    struct ShadowFlow
    {
        uint16_t tenant = 0;
        uint64_t packets = 0;
        uint64_t bytes = 0;
    };

    ChurnHarnessConfig cfg_;
    sim::ChurnGen gen_;
    /** Declared before dir_: the directory's scoped registrations
     *  must release into a still-alive budget on destruction. */
    core::MemBudget budget_;
    core::FlowDirectory dir_;
    std::unordered_map<uint64_t, ShadowFlow> shadow_;
    /** Keys the directory refused to open; later closes/packets for
     *  them are expected misses, not violations. */
    std::unordered_set<uint64_t> rejected_keys_;
    std::vector<sim::TokenBucket> shapers_; ///< one per tenant
    ChurnReport tally_;
};

} // namespace fld::apps

#endif // FLD_APPS_CHURN_HARNESS_H
