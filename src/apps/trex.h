/**
 * @file
 * TRex-like multi-tenant traffic generator for the IoT token
 * authentication experiment (§8.2.3): per-tenant flows of CoAP
 * messages carrying signed (or deliberately bogus) JWTs at fixed
 * offered rates.
 */
#ifndef FLD_APPS_TREX_H
#define FLD_APPS_TREX_H

#include <cstdint>
#include <string>
#include <vector>

#include "driver/cpu_driver.h"
#include "net/headers.h"
#include "sim/stats.h"
#include "util/rng.h"

namespace fld::apps {

struct TenantFlow
{
    uint32_t tenant_id = 1;
    double offered_gbps = 1.0;
    size_t frame_size = 256;
    std::string jwt_key = "tenant-key";
    bool valid_tokens = true; ///< false = wrong signature (attack)
    uint16_t sport = 50000;
    uint16_t dport = net::kCoapPort;
    uint32_t src_ip = net::ipv4_addr(10, 0, 0, 2);
};

struct TrexConfig
{
    std::vector<TenantFlow> flows;
    net::MacAddr src_mac{2, 0, 0, 0, 0, 0xc1};
    net::MacAddr dst_mac{2, 0, 0, 0, 0, 0x51};
    uint32_t dst_ip = net::ipv4_addr(10, 0, 0, 1);
    uint64_t seed = 31;
};

class TrexGen
{
  public:
    TrexGen(sim::EventQueue& eq, driver::CpuDriver& driver,
            TrexConfig cfg);

    void start(sim::TimePs duration);

    uint64_t sent(size_t flow) const { return sent_[flow]; }

    /** Pre-built CoAP/JWT frame for a flow (exposed for tests). */
    net::Packet make_frame(size_t flow);

  private:
    void send_flow(size_t flow);

    sim::EventQueue& eq_;
    driver::CpuDriver& driver_;
    TrexConfig cfg_;
    Rng rng_;
    sim::TimePs end_time_ = 0;
    std::vector<uint64_t> sent_;
    std::vector<uint16_t> msg_id_;
};

} // namespace fld::apps

#endif // FLD_APPS_TREX_H
