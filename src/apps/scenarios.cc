#include "apps/scenarios.h"

#include "util/logging.h"

namespace fld::apps {

namespace {

/** Tables used by the scenarios' match-action pipelines. */
constexpr uint32_t kResumeTable = 5;   ///< post-acceleration resume
constexpr uint32_t kInnerTable = 2;    ///< after VXLAN decap

driver::CpuDriverConfig
gen_driver_cfg(uint32_t queues = 1)
{
    driver::CpuDriverConfig cfg;
    cfg.num_queues = queues;
    return cfg;
}

/** Per-role driver config derived from an EchoOptions template. */
driver::CpuDriverConfig
echo_driver_cfg(const EchoOptions& opt, uint32_t queues)
{
    driver::CpuDriverConfig cfg = opt.driver_base;
    cfg.num_queues = queues;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// FLD-E echo
// ---------------------------------------------------------------------

namespace {
/** Load-generator hosts run DPDK on isolated cores: tiny residual
 *  jitter compared to a kernel-managed core (Table 6's CPU tail comes
 *  from the echo *server*, not the measuring client). */
void
isolate_client_cores(TestbedConfig& cfg)
{
    cfg.client_host.jitter_prob = 0.0005;
    cfg.client_host.jitter_min = sim::microseconds(1);
    cfg.client_host.jitter_mean_extra = sim::nanoseconds(500);
    // Burst-amortized DPDK generator: ~20 ns/packet per side.
    cfg.client_host.rx_packet_cost = sim::nanoseconds(20);
    cfg.client_host.tx_packet_cost = sim::nanoseconds(20);
}
} // namespace

std::unique_ptr<EchoScenario>
make_fld_echo(bool remote, PktGenConfig gen_cfg, TestbedConfig tb_cfg,
              const EchoOptions& opt)
{
    auto s = std::make_unique<EchoScenario>();
    s->remote = remote;
    tb_cfg.remote = remote;
    isolate_client_cores(tb_cfg);
    s->tb = std::make_unique<Testbed>(tb_cfg);
    Testbed& tb = *s->tb;

    // FLD-E queue and echo AFU on the server.
    s->q0 = tb.rt->create_eth_queue(tb.fld_vport, 0, /*rx_buffers=*/16);
    s->echo = std::make_unique<accel::EchoAccelerator>(tb.eq, *tb.fld,
                                                       0);
    if (tb.fault_plan)
        s->echo->set_fault_plan(tb.fault_plan.get(),
                                tb.cfg.accel_faults);

    if (remote) {
        // Generator on the client node.
        // Two queues: tx on core 0, echoes received on core 1 (real
        // testpmd generators split IO across lcores).
        s->gen_driver = std::make_unique<driver::CpuDriver>(
            "client.testpmd", tb.eq, tb.fabric, tb.client_host_port,
            tb.client_mem, tb.client_arena(32 << 20), 32 << 20,
            *tb.client_nic, Testbed::kClientNicBar, tb.client_host,
            tb.client_app_vport, echo_driver_cfg(opt, 2),
            Testbed::kClientMemBase);
        tb.install_client_forwarding();
        uint32_t tir =
            tb.client_nic->create_tir({{s->gen_driver->rqn(1)}});
        tb.client_nic->set_vport_default_tir(tb.client_app_vport, tir);

        // Server: wire traffic -> FLD queue; FLD egress -> wire.
        if (opt.vxlan) {
            nic::FlowMatch vx;
            vx.in_vport = nic::kUplinkVport;
            vx.dport = net::kVxlanPort;
            tb.server_nic->add_rule(0, 20, vx,
                                    {nic::vxlan_decap(),
                                     nic::fwd_queue(s->q0.rqn)});
        }
        nic::FlowMatch from_wire;
        from_wire.in_vport = nic::kUplinkVport;
        tb.server_nic->add_rule(0, 0, from_wire,
                                {nic::fwd_queue(s->q0.rqn)});
        tb.route_vport_to_uplink(*tb.server_nic, tb.fld_vport);
    } else {
        // Local: generator on the server host's vPort; the embedded
        // switch loops traffic between the two vPorts (§8, "Setup").
        // Two queues: tx core and rx core, like a real testpmd.
        s->gen_driver = std::make_unique<driver::CpuDriver>(
            "server.testpmd", tb.eq, tb.fabric, tb.server_host_port,
            tb.server_mem, tb.server_arena(32 << 20), 32 << 20,
            *tb.server_nic, Testbed::kServerNicBar, tb.server_host,
            tb.server_app_vport, echo_driver_cfg(opt, 2));
        uint32_t tir =
            tb.server_nic->create_tir({{s->gen_driver->rqn(1)}});
        tb.server_nic->set_vport_default_tir(tb.server_app_vport, tir);

        if (opt.vxlan) {
            nic::FlowMatch vx;
            vx.in_vport = tb.server_app_vport;
            vx.dport = net::kVxlanPort;
            tb.server_nic->add_rule(0, 20, vx,
                                    {nic::vxlan_decap(),
                                     nic::fwd_queue(s->q0.rqn)});
        }
        nic::FlowMatch from_gen;
        from_gen.in_vport = tb.server_app_vport;
        tb.server_nic->add_rule(0, 0, from_gen,
                                {nic::fwd_queue(s->q0.rqn)});
        nic::FlowMatch from_fld;
        from_fld.in_vport = tb.fld_vport;
        tb.server_nic->add_rule(
            0, 0, from_fld, {nic::fwd_vport(tb.server_app_vport)});
    }

    s->gen = std::make_unique<PacketGen>(tb.eq, *s->gen_driver, 0,
                                         gen_cfg);
    tb.eq.run(); // settle descriptor prefetch before traffic starts
    return s;
}

std::unique_ptr<CpuEchoScenario>
make_cpu_echo(bool remote, PktGenConfig gen_cfg, TestbedConfig tb_cfg,
              const EchoOptions& opt)
{
    auto s = std::make_unique<CpuEchoScenario>();
    tb_cfg.remote = remote;
    isolate_client_cores(tb_cfg);
    s->tb = std::make_unique<Testbed>(tb_cfg);
    Testbed& tb = *s->tb;

    // Echo (testpmd) on the server host.
    s->echo_driver = std::make_unique<driver::CpuDriver>(
        "server.testpmd", tb.eq, tb.fabric, tb.server_host_port,
        tb.server_mem, tb.server_arena(32 << 20), 32 << 20,
        *tb.server_nic, Testbed::kServerNicBar, tb.server_host,
        tb.server_app_vport,
        echo_driver_cfg(opt, std::max(1u, opt.echo_queues)));
    uint32_t stir =
        tb.server_nic->create_tir({s->echo_driver->all_rqns()});
    tb.server_nic->set_vport_default_tir(tb.server_app_vport, stir);
    s->echo_driver->set_rx_handler(
        [s_ptr = s.get()](uint32_t q, net::Packet&& pkt) {
            s_ptr->echoed++;
            s_ptr->echo_driver->send(q, std::move(pkt));
        });

    if (remote) {
        s->gen_driver = std::make_unique<driver::CpuDriver>(
            "client.testpmd", tb.eq, tb.fabric, tb.client_host_port,
            tb.client_mem, tb.client_arena(32 << 20), 32 << 20,
            *tb.client_nic, Testbed::kClientNicBar, tb.client_host,
            tb.client_app_vport, echo_driver_cfg(opt, 2),
            Testbed::kClientMemBase);
        tb.install_client_forwarding();
        uint32_t ctir =
            tb.client_nic->create_tir({{s->gen_driver->rqn(1)}});
        tb.client_nic->set_vport_default_tir(tb.client_app_vport, ctir);

        if (opt.vxlan) {
            nic::FlowMatch vx;
            vx.in_vport = nic::kUplinkVport;
            vx.dport = net::kVxlanPort;
            tb.server_nic->add_rule(
                0, 20, vx,
                {nic::vxlan_decap(),
                 nic::fwd_vport(tb.server_app_vport)});
        }
        tb.route_uplink_to_vport(*tb.server_nic, tb.server_app_vport);
        tb.route_vport_to_uplink(*tb.server_nic, tb.server_app_vport);
        s->gen = std::make_unique<PacketGen>(tb.eq, *s->gen_driver, 0,
                                             gen_cfg);
    } else {
        // Local CPU echo: generator and echo on different host vPorts
        // of the same NIC would need a second host vPort driver; use
        // client==server host generator through loopback.
        nic::VportId gen_vport = tb.server_nic->add_vport();
        s->gen_driver = std::make_unique<driver::CpuDriver>(
            "server.gen", tb.eq, tb.fabric, tb.server_host_port,
            tb.server_mem, tb.server_arena(32 << 20), 32 << 20,
            *tb.server_nic, Testbed::kServerNicBar, tb.server_host,
            gen_vport,
            [] {
                driver::CpuDriverConfig c;
                c.num_queues = 1;
                c.first_core = 8; // keep generator off the echo cores
                return c;
            }());
        uint32_t gtir =
            tb.server_nic->create_tir({s->gen_driver->all_rqns()});
        tb.server_nic->set_vport_default_tir(gen_vport, gtir);

        if (opt.vxlan) {
            nic::FlowMatch vx;
            vx.in_vport = gen_vport;
            vx.dport = net::kVxlanPort;
            tb.server_nic->add_rule(
                0, 20, vx,
                {nic::vxlan_decap(),
                 nic::fwd_vport(tb.server_app_vport)});
        }
        nic::FlowMatch from_gen;
        from_gen.in_vport = gen_vport;
        tb.server_nic->add_rule(
            0, 0, from_gen, {nic::fwd_vport(tb.server_app_vport)});
        nic::FlowMatch from_echo;
        from_echo.in_vport = tb.server_app_vport;
        tb.server_nic->add_rule(0, 0, from_echo,
                                {nic::fwd_vport(gen_vport)});
        s->gen = std::make_unique<PacketGen>(tb.eq, *s->gen_driver, 0,
                                             gen_cfg);
    }
    tb.eq.run();
    return s;
}

// ---------------------------------------------------------------------
// FLD-R scenarios
// ---------------------------------------------------------------------

namespace {
std::unique_ptr<FldrScenario>
make_fldr_base(bool remote, TestbedConfig tb_cfg)
{
    auto s = std::make_unique<FldrScenario>();
    tb_cfg.remote = remote;
    s->tb = std::make_unique<Testbed>(tb_cfg);
    Testbed& tb = *s->tb;

    s->qp = tb.rt->create_fld_qp(tb.fld_vport, 0, /*rx_buffers=*/16);

    driver::RdmaClientConfig ccfg;
    if (remote) {
        s->client = std::make_unique<driver::RdmaClient>(
            "client.rdma", tb.eq, tb.fabric, tb.client_host_port,
            tb.client_mem, tb.client_arena(96 << 20), 96 << 20,
            *tb.client_nic, Testbed::kClientNicBar, tb.client_host,
            tb.client_app_vport, ccfg, Testbed::kClientMemBase);
        tb.install_client_forwarding();
        // RoCE plumbing on the server.
        tb.route_vport_to_uplink(*tb.server_nic, tb.fld_vport);
        tb.route_uplink_to_vport(*tb.server_nic, tb.fld_vport);
        s->client->connect(s->qp.qpn, kClientMac, kServerMac);
        tb.rt->connect_qp(s->qp, s->client->qpn(), kServerMac,
                          kClientMac);
    } else {
        // Local: client QP on the server host, loopback via eSwitch.
        s->client = std::make_unique<driver::RdmaClient>(
            "server.rdma", tb.eq, tb.fabric, tb.server_host_port,
            tb.server_mem, tb.server_arena(96 << 20), 96 << 20,
            *tb.server_nic, Testbed::kServerNicBar, tb.server_host,
            tb.server_app_vport, ccfg);
        nic::FlowMatch from_host;
        from_host.in_vport = tb.server_app_vport;
        s->tb->server_nic->add_rule(0, 0, from_host,
                                    {nic::fwd_vport(tb.fld_vport)});
        nic::FlowMatch from_fld;
        from_fld.in_vport = tb.fld_vport;
        s->tb->server_nic->add_rule(
            0, 0, from_fld, {nic::fwd_vport(tb.server_app_vport)});
        s->client->connect(s->qp.qpn, kClientMac, kServerMac);
        tb.rt->connect_qp(s->qp, s->client->qpn(), kServerMac,
                          kClientMac);
    }
    return s;
}
} // namespace

std::unique_ptr<FldrScenario>
make_fldr_echo(bool remote, TestbedConfig tb_cfg)
{
    auto s = make_fldr_base(remote, tb_cfg);
    s->afu = std::make_unique<accel::EchoAccelerator>(
        s->tb->eq, *s->tb->fld, 0);
    if (s->tb->fault_plan)
        s->afu->set_fault_plan(s->tb->fault_plan.get(),
                               s->tb->cfg.accel_faults);
    s->tb->eq.run();
    return s;
}

std::unique_ptr<FldrScenario>
make_fldr_zuc(bool remote, TestbedConfig tb_cfg)
{
    auto s = make_fldr_base(remote, tb_cfg);
    s->afu = std::make_unique<accel::ZucAccelerator>(s->tb->eq,
                                                     *s->tb->fld, 0);
    if (s->tb->fault_plan)
        s->afu->set_fault_plan(s->tb->fault_plan.get(),
                               s->tb->cfg.accel_faults);
    s->tb->eq.run();
    return s;
}

// ---------------------------------------------------------------------
// IP defragmentation
// ---------------------------------------------------------------------

std::unique_ptr<DefragScenario>
make_defrag(const DefragOptions& opt, TestbedConfig tb_cfg)
{
    auto s = std::make_unique<DefragScenario>();
    tb_cfg.remote = true;
    s->tb = std::make_unique<Testbed>(tb_cfg);
    Testbed& tb = *s->tb;

    // Receiver application: multi-queue driver, one core per queue,
    // kernel-stack receive model on top.
    driver::CpuDriverConfig rcfg;
    rcfg.num_queues = opt.rx_queues;
    rcfg.sq_entries = 256; // receive-dominated application
    rcfg.rq_entries = 128;
    rcfg.rx_buffers = 32;
    s->server_driver = std::make_unique<driver::CpuDriver>(
        "server.app", tb.eq, tb.fabric, tb.server_host_port,
        tb.server_mem, tb.server_arena(96 << 20), 96 << 20,
        *tb.server_nic, Testbed::kServerNicBar, tb.server_host,
        tb.server_app_vport, rcfg);
    driver::SwStackConfig scfg;
    scfg.software_defrag = !opt.hw_defrag;
    s->stack = std::make_unique<driver::SoftwareReceiveStack>(
        tb.eq, tb.server_host, *s->server_driver, scfg);
    uint32_t app_tir =
        tb.server_nic->create_tir({s->server_driver->all_rqns()});

    // Sender on the client node.
    s->sender_driver = std::make_unique<driver::CpuDriver>(
        "client.iperf", tb.eq, tb.fabric, tb.client_host_port,
        tb.client_mem, tb.client_arena(64 << 20), 64 << 20,
        *tb.client_nic, Testbed::kClientNicBar, tb.client_host,
        tb.client_app_vport, gen_driver_cfg(4),
        Testbed::kClientMemBase);
    tb.install_client_forwarding();

    IperfConfig icfg;
    icfg.fragment = opt.fragmented;
    icfg.route_mtu = opt.fragmented ? 1450 : 1500;
    icfg.vxlan = opt.vxlan;
    s->iperf = std::make_unique<IperfSender>(tb.eq, tb.client_host,
                                             *s->sender_driver, icfg);

    // Server steering (table 0 = FDB):
    //  - VXLAN traffic: decapsulate first (NIC offload), continue in
    //    the inner table;
    //  - fragments: acceleration action -> defrag AFU, resume at the
    //    RSS table;
    //  - everything else: straight to RSS.
    if (opt.vxlan) {
        nic::FlowMatch vx;
        vx.in_vport = nic::kUplinkVport;
        vx.dport = net::kVxlanPort;
        tb.server_nic->add_rule(0, 20, vx,
                                {nic::vxlan_decap(),
                                 nic::goto_table(kInnerTable)});
    }
    uint32_t entry_table = opt.vxlan ? kInnerTable : 0;
    if (opt.hw_defrag) {
        s->q0 =
            tb.rt->create_eth_queue(tb.fld_vport, 0, /*rx_buffers=*/16);
        s->defrag = std::make_unique<accel::DefragAccelerator>(
            tb.eq, *tb.fld, 0);
        if (tb.fault_plan)
            s->defrag->set_fault_plan(tb.fault_plan.get(),
                                      tb.cfg.accel_faults);
        nic::FlowMatch frag;
        if (!opt.vxlan)
            frag.in_vport = nic::kUplinkVport;
        frag.is_fragment = true;
        tb.server_nic->add_rule(
            entry_table, 10, frag,
            {nic::send_to_accel(s->q0.rqn, kResumeTable)});
    }
    nic::FlowMatch rest;
    if (!opt.vxlan)
        rest.in_vport = nic::kUplinkVport;
    tb.server_nic->add_rule(entry_table, 0, rest,
                            {nic::fwd_tir(app_tir)});
    // Resume table: defragmented packets re-enter here for RSS.
    tb.server_nic->add_rule(kResumeTable, 0, {},
                            {nic::fwd_tir(app_tir)});

    tb.eq.run();
    return s;
}

// ---------------------------------------------------------------------
// IoT authentication
// ---------------------------------------------------------------------

std::unique_ptr<IotScenario>
make_iot(const IotOptions& opt, TestbedConfig tb_cfg)
{
    auto s = std::make_unique<IotScenario>();
    tb_cfg.remote = true;
    s->tb = std::make_unique<Testbed>(tb_cfg);
    Testbed& tb = *s->tb;

    // FLD-E queue + authentication AFU sized to the acceptance
    // capacity the experiment configures (12 Gbps).
    s->q0 = tb.rt->create_eth_queue(tb.fld_vport, 0, /*rx_buffers=*/16);
    accel::UnitModel model = accel::IotAuthAccelerator::default_model();
    if (opt.accel_capacity_gbps > 0) {
        model.units = 8;
        model.setup_time = 0;
        model.unit_gbps = opt.accel_capacity_gbps / model.units;
        model.queue_depth = 16;
    }
    s->auth = std::make_unique<accel::IotAuthAccelerator>(
        tb.eq, *tb.fld, 0, model);
    if (tb.fault_plan)
        s->auth->set_fault_plan(tb.fault_plan.get(),
                                tb.cfg.accel_faults);

    // Server application behind the AFU.
    driver::CpuDriverConfig rcfg;
    rcfg.num_queues = 4;
    s->server_driver = std::make_unique<driver::CpuDriver>(
        "server.app", tb.eq, tb.fabric, tb.server_host_port,
        tb.server_mem, tb.server_arena(64 << 20), 64 << 20,
        *tb.server_nic, Testbed::kServerNicBar, tb.server_host,
        tb.server_app_vport, rcfg);
    uint32_t app_tir =
        tb.server_nic->create_tir({s->server_driver->all_rqns()});
    s->server_driver->set_rx_handler(
        [s_ptr = s.get()](uint32_t, net::Packet&& pkt) {
            s_ptr->accepted_bytes[pkt.meta.flow_tag] += pkt.size();
            s_ptr->accepted_meter[pkt.meta.flow_tag].record(
                s_ptr->tb->eq.now(), pkt.size());
        });

    // Client: TRex generator.
    s->gen_driver = std::make_unique<driver::CpuDriver>(
        "client.trex", tb.eq, tb.fabric, tb.client_host_port,
        tb.client_mem, tb.client_arena(64 << 20), 64 << 20,
        *tb.client_nic, Testbed::kClientNicBar, tb.client_host,
        tb.client_app_vport, gen_driver_cfg(2),
        Testbed::kClientMemBase);
    tb.install_client_forwarding();

    TrexConfig tcfg;
    tcfg.flows = opt.tenants;
    s->trex = std::make_unique<TrexGen>(tb.eq, *s->gen_driver, tcfg);

    // Server steering: classify tenants by source IP, tag them, meter
    // when shaping is on, and send to the AFU; valid packets resume at
    // the delivery table.
    for (size_t i = 0; i < opt.tenants.size(); ++i) {
        const TenantFlow& t = opt.tenants[i];
        s->auth->set_tenant_key(t.tenant_id, t.jwt_key);

        std::vector<nic::Action> actions;
        actions.push_back(nic::set_tag(t.tenant_id));
        if (opt.tenant_rate_cap_gbps > 0) {
            uint32_t meter_id = uint32_t(100 + i);
            tb.server_nic->set_meter(meter_id, opt.tenant_rate_cap_gbps,
                                     64 * 1024);
            actions.push_back(nic::meter(meter_id));
        }
        actions.push_back(nic::send_to_accel(s->q0.rqn, kResumeTable));

        nic::FlowMatch m;
        m.in_vport = nic::kUplinkVport;
        m.src_ip = t.src_ip;
        m.sport = t.sport;
        tb.server_nic->add_rule(0, 10, m, std::move(actions));
    }
    tb.server_nic->add_rule(kResumeTable, 0, {},
                            {nic::fwd_tir(app_tir)});
    tb.route_vport_to_uplink(*tb.server_nic, tb.fld_vport, -1);

    tb.eq.run();
    return s;
}

} // namespace fld::apps
