#include "apps/iperf.h"

#include "nic/config.h"

namespace fld::apps {

IperfSender::IperfSender(sim::EventQueue& eq, driver::HostNode& host,
                         driver::CpuDriver& driver, IperfConfig cfg)
    : eq_(eq), host_(host), driver_(driver), cfg_(cfg), rng_(cfg.seed)
{}

void
IperfSender::start(sim::TimePs duration)
{
    end_time_ = eq_.now() + duration;
    send_next();
}

void
IperfSender::send_next()
{
    if (eq_.now() >= end_time_)
        return;

    uint32_t flow = next_flow_++ % cfg_.flows;
    size_t payload = cfg_.datagram_bytes - net::kIpv4HeaderLen -
                     net::kUdpHeaderLen;
    std::vector<uint8_t> body(payload);
    for (size_t i = 0; i < std::min<size_t>(payload, 32); ++i)
        body[i] = uint8_t(rng_.next());

    net::Packet datagram =
        net::PacketBuilder()
            .eth(cfg_.src_mac, cfg_.dst_mac)
            .ipv4(cfg_.src_ip, cfg_.dst_ip, net::kIpProtoUdp,
                  next_ip_id_++)
            .udp(uint16_t(cfg_.base_sport + flow), cfg_.dport)
            .payload(body)
            .build();

    // Sender-side kernel work: fragmentation and tunneling run in
    // software on the flow's core.
    sim::TimePs cost = cfg_.send_cost;
    std::vector<net::Packet> frames;
    if (cfg_.fragment && datagram.size() - net::kEthHeaderLen >
                             cfg_.route_mtu) {
        frames = net::ip_fragment(datagram, cfg_.route_mtu);
        cost += cfg_.fragment_cost;
    } else {
        frames.push_back(std::move(datagram));
    }
    if (cfg_.vxlan) {
        for (auto& f : frames) {
            f = net::vxlan_encapsulate(f, cfg_.vni, cfg_.outer_src_ip,
                                       cfg_.outer_dst_ip, cfg_.src_mac,
                                       cfg_.dst_mac);
        }
        cost += cfg_.vxlan_cost;
    }

    uint32_t core = flow % host_.cores();
    uint64_t wire_bytes = 0;
    for (const auto& f : frames)
        wire_bytes += f.size() + nic::kEthWireOverhead;

    ++datagrams_;
    frames_ += frames.size();
    host_.run_on_core(core, cost,
                      [this, frames = std::move(frames),
                       flow]() mutable {
                          uint32_t q = flow % driver_.num_queues();
                          for (auto& f : frames)
                              driver_.send(q, std::move(f));
                      });

    // Offered-load pacing over the aggregate.
    sim::TimePs gap = sim::serialize_time(wire_bytes, cfg_.offered_gbps);
    eq_.schedule_in(gap, [this] { send_next(); });
}

} // namespace fld::apps
