/**
 * @file
 * Closed-loop RPC clients over the host fast path.
 *
 * RpcClientPool opens N connections (staggered), then runs each as a
 * classic closed-loop client: draw a method and payload from a
 * per-connection seeded Rng, think for a seeded exponential interval,
 * send the request, wait for the response, repeat; close after the
 * configured request count. Offered load is swept by (connections x
 * think time).
 *
 * Every response is verified against the shadow oracle rpc_execute()
 * — the pool recomputes the expected payload for each request it sent
 * and counts any divergence as a conformance violation. Per-request
 * response digests (request_id -> FNV of the response payload) feed
 * the FLD-vs-CPU differential oracle, and request latencies
 * (build-to-decode, including ring backpressure) feed the SLO
 * histogram.
 *
 * Request frames are deliberately split across multiple TX
 * descriptors (tx_chunk_bytes) so the codec's fragmentation handling
 * is exercised on the wire path, not just in unit tests.
 */
#ifndef FLD_APPS_RPC_CLIENT_H
#define FLD_APPS_RPC_CLIENT_H

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "driver/fastpath.h"
#include "net/rpc_codec.h"
#include "sim/stats.h"
#include "util/rng.h"

namespace fld::apps {

struct RpcClientConfig
{
    uint32_t connections = 8;
    uint32_t requests_per_conn = 4;
    uint32_t payload_min = 64;
    uint32_t payload_max = 512;
    /** Bit i enables method id i (see rpc_service.h). */
    uint32_t methods_mask = 0xf;
    /** Mean of the exponential think time between a response and the
     *  next request (0 = back-to-back). */
    sim::TimePs think_mean = sim::microseconds(5);
    uint64_t seed = 1;

    uint32_t open_batch = 32;
    sim::TimePs open_interval = sim::microseconds(10);

    uint16_t base_port = 21000;
    uint32_t remote_ip = 0;
    uint16_t remote_port = 7100;
    uint32_t tx_ring_entries = 128;
    uint32_t rx_ring_entries = 256;
    /** Split each request across descriptors of at most this many
     *  bytes (0 = whole slots). */
    uint32_t tx_chunk_bytes = 0;
};

struct RpcClientStats
{
    uint32_t opened = 0;
    uint32_t closed = 0;
    uint32_t aborted = 0;      ///< reset before finishing
    uint64_t requests_sent = 0;
    uint64_t responses = 0;    ///< completed request/response pairs
    uint64_t request_bytes = 0;
    uint64_t response_bytes = 0;
    uint64_t conformance_errors = 0; ///< response != shadow oracle
    uint64_t protocol_errors = 0;    ///< wrong/unexpected request_id
    uint64_t decode_errors = 0;
    uint64_t tx_ring_full = 0;
    uint64_t per_method[8] = {};
};

class RpcClientPool
{
  public:
    RpcClientPool(sim::EventQueue& eq, driver::FastPath& fp,
                  RpcClientConfig cfg);

    void start();
    /** Every connection reached a terminal state. */
    bool done() const { return done_count_ == cfg_.connections; }

    const RpcClientStats& stats() const { return stats_; }
    /** request_id -> FNV digest of the response payload. */
    const std::map<uint64_t, uint64_t>& digests() const
    {
        return digests_;
    }
    /** Request latency samples in microseconds. */
    const sim::Histogram& latency() const { return latency_; }
    /** FNV fold of every latency (in ps) in completion order — the
     *  bit-identical-rerun check for the timing dimension. */
    uint64_t latency_fold() const { return latency_fold_; }
    const std::vector<std::string>& errors() const { return errors_; }
    uint32_t app_id() const { return app_; }

  private:
    struct Slot
    {
        uint32_t conn_id = driver::FastPath::kNoConn;
        uint16_t port = 0;
        Rng rng{1};
        rpc::FrameDecoder decoder;
        uint32_t requests_done = 0;
        uint32_t next_seq = 1;
        bool opened = false;
        bool terminal = false;
        bool waiting = false; ///< request outstanding
        // Outstanding request (for the shadow oracle).
        uint64_t req_id = 0;
        uint8_t req_method = 0;
        std::vector<uint8_t> req_payload;
        sim::TimePs t0 = 0;
        // Encoded request bytes not yet posted (TX ring was full).
        std::vector<uint8_t> pending_out;
        size_t pending_off = 0;
        bool error_counted = false;
    };

    void open_next_batch();
    void on_notify();
    void service();
    void handle_ctrl(const driver::CtrlMsg& m);
    void schedule_next_request(uint32_t slot_index);
    void build_request(uint32_t slot_index);
    /** Post queued request bytes; true when fully posted. */
    bool pump_slot(uint32_t slot_index, bool& posted_any);
    void pump_pending();
    void on_response(uint32_t slot_index, rpc::Frame&& f);
    void finish_slot(uint32_t slot_index, bool aborted);

    sim::EventQueue& eq_;
    driver::FastPath& fp_;
    RpcClientConfig cfg_;
    uint32_t app_ = 0;

    std::vector<Slot> slots_;
    std::map<uint32_t, uint32_t> by_conn_;
    std::deque<uint32_t> pending_slots_; ///< blocked on a full TX ring
    uint32_t opens_issued_ = 0;
    uint32_t done_count_ = 0;
    bool service_pending_ = false;

    std::map<uint64_t, uint64_t> digests_;
    sim::Histogram latency_;
    uint64_t latency_fold_ = 0; ///< seeded to kFnvBasis in the ctor
    std::vector<std::string> errors_;
    RpcClientStats stats_;
};

/** Build a kRpcDefrag request payload: @p datum_len bytes of rng
 *  pattern split into shuffled [off][len][bytes] chunk records. */
std::vector<uint8_t> build_defrag_payload(Rng& rng,
                                          uint32_t datum_len);

} // namespace fld::apps

#endif // FLD_APPS_RPC_CLIENT_H
