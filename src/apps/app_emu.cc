#include "apps/app_emu.h"

#include <algorithm>

#include "sim/fuzz.h" // fnv1a64
#include "util/logging.h"

namespace fld::apps {

// ---------------------------------------------------------------------
// AppEmu (client)
// ---------------------------------------------------------------------

AppEmu::AppEmu(sim::EventQueue& eq, driver::FastPath& fp,
               AppEmuConfig cfg)
    : eq_(eq), fp_(fp), cfg_(cfg)
{
    cfg_.request_bytes =
        std::min(cfg_.request_bytes, fp_.slot_bytes());
    if (cfg_.request_bytes == 0)
        cfg_.request_bytes = 1;
    app_ = fp_.register_app(cfg_.tx_ring_entries, cfg_.rx_ring_entries,
                            [this] { on_notify(); });
    slots_.resize(cfg_.connections);
    send_queued_.assign(cfg_.connections, 0);
    total_incarnations_ = cfg_.connections * (cfg_.churn_cycles + 1);
    outcomes_.reserve(total_incarnations_);
}

uint16_t
AppEmu::port_for(uint32_t slot_index, uint32_t incarnation) const
{
    // Each incarnation gets a fresh port: the previous one may still
    // hold the old 4-tuple in time-wait.
    return uint16_t(cfg_.base_port +
                    incarnation * cfg_.connections + slot_index);
}

void
AppEmu::start()
{
    open_next_batch();
    if (!cfg_.closed_loop && !open_loop_timer_) {
        open_loop_timer_ = true;
        eq_.schedule_in(cfg_.send_interval, [this] { pacing_tick(); });
    }
}

void
AppEmu::pacing_tick()
{
    open_loop_timer_ = false;
    pump_sends();
    // Keep pacing until every incarnation reached a terminal state
    // (the final closes need no ticks, but the tick count is bounded
    // by run length, so simplicity wins).
    if (done_count_ < total_incarnations_ && !open_loop_timer_) {
        open_loop_timer_ = true;
        eq_.schedule_in(cfg_.send_interval, [this] { pacing_tick(); });
    }
}

void
AppEmu::open_slot(uint32_t slot_index, uint32_t incarnation)
{
    Slot& s = slots_[slot_index];
    s.incarnation = incarnation;
    s.requests_posted = 0;
    s.inflight_bytes = 0;
    s.opened = false;
    s.finished = false;
    s.outcome_index = uint32_t(outcomes_.size());

    ConnOutcome out;
    out.slot = slot_index;
    out.incarnation = incarnation;
    out.local_port = port_for(slot_index, incarnation);
    outcomes_.push_back(out);

    s.conn_id = fp_.open(app_, slot_index, cfg_.remote_ip,
                         cfg_.remote_port, out.local_port);
    if (s.conn_id == driver::FastPath::kNoConn) {
        // 4-tuple still busy (previous incarnation lingering): count
        // the incarnation as failed rather than hanging the run.
        outcomes_[s.outcome_index].reset = true;
        s.finished = true;
        ++done_count_;
        if (incarnation < cfg_.churn_cycles)
            eq_.schedule_in(cfg_.reopen_delay, [this, slot_index,
                                                incarnation] {
                open_slot(slot_index, incarnation + 1);
            });
        return;
    }
    by_conn_[s.conn_id] = slot_index;
}

void
AppEmu::open_next_batch()
{
    uint32_t n = 0;
    while (opens_issued_ < cfg_.connections && n < cfg_.open_batch) {
        open_slot(opens_issued_, 0);
        ++opens_issued_;
        ++n;
    }
    if (opens_issued_ < cfg_.connections)
        eq_.schedule_in(cfg_.open_interval,
                        [this] { open_next_batch(); });
}

void
AppEmu::on_notify()
{
    // Never touch rings from inside the stack's callback; batch all
    // work into one event on the queue (naturally coalescing several
    // notifies into one service pass).
    if (service_pending_)
        return;
    service_pending_ = true;
    eq_.schedule_in(0, [this] {
        service_pending_ = false;
        service();
    });
}

void
AppEmu::service()
{
    std::vector<uint32_t> touched;
    while (auto m = fp_.poll_ctrl(app_)) {
        handle_ctrl(*m);
        auto it = by_conn_.find(m->conn_id);
        if (it != by_conn_.end())
            touched.push_back(it->second);
    }

    // Drain TxDone completions.
    driver::DescRing& rx = fp_.rx_ring(app_);
    bool drained = false;
    while (!rx.empty()) {
        driver::RingDesc d;
        uint32_t ring_slot = rx.pop(&d);
        if (d.type == driver::kDescTxDone) {
            auto it = by_conn_.find(uint32_t(d.opaque));
            if (it != by_conn_.end()) {
                Slot& s = slots_[it->second];
                s.inflight_bytes -= std::min<uint64_t>(
                    s.inflight_bytes, d.len);
                outcomes_[s.outcome_index].acked_bytes += d.len;
                touched.push_back(it->second);
            }
        }
        rx.release(ring_slot);
        drained = true;
    }
    if (drained)
        fp_.rx_doorbell(app_);

    // Closed loop: only touched slots can have become sendable; a
    // full TX ring parks them on the send queue until the next pass.
    if (cfg_.closed_loop) {
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()),
                      touched.end());
        for (uint32_t si : touched) {
            enqueue_send(si);
            maybe_close(si);
        }
        if (drain_send_queue()) {
            ++doorbells_;
            fp_.doorbell(app_);
        }
    } else {
        for (uint32_t si : touched)
            maybe_close(si);
    }
}

void
AppEmu::enqueue_send(uint32_t slot_index)
{
    Slot& s = slots_[slot_index];
    if (send_queued_[slot_index] || !s.opened || s.finished ||
        s.inflight_bytes != 0 ||
        s.requests_posted >= cfg_.requests_per_conn)
        return;
    send_queued_[slot_index] = 1;
    send_queue_.push_back(slot_index);
}

bool
AppEmu::drain_send_queue()
{
    bool posted = false;
    while (!send_queue_.empty()) {
        if (fp_.tx_ring(app_).full())
            break; // keep the rest queued for the next TxDone drain
        uint32_t si = send_queue_.front();
        send_queue_.pop_front();
        send_queued_[si] = 0;
        Slot& s = slots_[si];
        // Re-validate: the slot may have finished or been reset while
        // it sat on the queue.
        if (s.opened && !s.finished && s.inflight_bytes == 0 &&
            s.requests_posted < cfg_.requests_per_conn)
            posted |= post_request(si);
    }
    return posted;
}

void
AppEmu::handle_ctrl(const driver::CtrlMsg& m)
{
    auto it = by_conn_.find(m.conn_id);
    if (it == by_conn_.end())
        return;
    Slot& s = slots_[it->second];
    ConnOutcome& out = outcomes_[s.outcome_index];
    switch (m.type) {
    case driver::CtrlMsg::Type::Opened:
        s.opened = true;
        out.opened = true;
        break;
    case driver::CtrlMsg::Type::Closed:
    case driver::CtrlMsg::Type::Reset: {
        if (m.type == driver::CtrlMsg::Type::Closed)
            out.closed = true;
        else
            out.reset = true;
        ++done_count_;
        uint32_t slot_index = it->second;
        uint32_t inc = s.incarnation;
        by_conn_.erase(it);
        s.finished = true;
        if (inc < cfg_.churn_cycles)
            eq_.schedule_in(cfg_.reopen_delay,
                            [this, slot_index, inc] {
                                open_slot(slot_index, inc + 1);
                            });
        break;
    }
    case driver::CtrlMsg::Type::Accepted:
        break; // clients never listen
    }
}

bool
AppEmu::post_request(uint32_t slot_index)
{
    Slot& s = slots_[slot_index];
    driver::DescRing& tx = fp_.tx_ring(app_);
    if (tx.full()) {
        ++tx_ring_full_;
        return false;
    }
    uint32_t len = cfg_.request_bytes;
    uint32_t ring_slot = tx.next_slot();
    uint64_t addr = uint64_t(ring_slot) * fp_.slot_bytes();
    uint8_t* buf = fp_.tx_arena(app_) + addr;
    ConnOutcome& out = outcomes_[s.outcome_index];
    for (uint32_t j = 0; j < len; ++j)
        buf[j] = pattern_byte(slot_index, s.incarnation,
                              s.requests_posted, j);

    driver::RingDesc d;
    d.opaque = s.conn_id;
    d.addr = addr;
    d.len = len;
    d.flags = driver::kDescFlagPush;
    d.type = driver::kDescData;
    if (!tx.post(d)) {
        ++tx_ring_full_;
        return false;
    }
    out.sent_digest =
        sim::fnv1a64(buf, len,
                     out.sent_digest ? out.sent_digest
                                     : sim::kFnvBasis);
    out.sent_bytes += len;
    s.inflight_bytes += len;
    ++s.requests_posted;
    return true;
}

void
AppEmu::pump_sends()
{
    // Open loop: one request per sendable slot per pacing tick.
    bool posted = false;
    for (uint32_t si = 0; si < slots_.size(); ++si) {
        Slot& s = slots_[si];
        if (s.opened && !s.finished &&
            s.requests_posted < cfg_.requests_per_conn)
            posted |= post_request(si);
        maybe_close(si);
    }
    if (posted) {
        ++doorbells_;
        fp_.doorbell(app_);
    }
}

void
AppEmu::maybe_close(uint32_t slot_index)
{
    Slot& s = slots_[slot_index];
    if (s.opened && !s.finished &&
        s.requests_posted == cfg_.requests_per_conn &&
        s.inflight_bytes == 0)
        fp_.close(s.conn_id); // Closed ctrl finishes the incarnation
}

// ---------------------------------------------------------------------
// SinkApp (server)
// ---------------------------------------------------------------------

SinkApp::SinkApp(sim::EventQueue& eq, driver::FastPath& fp,
                 SinkAppConfig cfg)
    : eq_(eq), fp_(fp), cfg_(cfg)
{
    app_ = fp_.register_app(cfg_.tx_ring_entries, cfg_.rx_ring_entries,
                            [this] { on_notify(); });
    fp_.listen(cfg_.listen_port, app_);
}

void
SinkApp::on_notify()
{
    if (drain_pending_)
        return;
    drain_pending_ = true;
    eq_.schedule_in(cfg_.drain_delay, [this] {
        drain_pending_ = false;
        drain();
    });
}

void
SinkApp::drain()
{
    // Slow path first so data descriptors always find their flow.
    while (auto m = fp_.poll_ctrl(app_)) {
        switch (m->type) {
        case driver::CtrlMsg::Type::Accepted: {
            conn_port_[m->conn_id] = m->key.remote_port;
            SinkFlow& f = flows_[m->key.remote_port];
            f.key = m->key;
            ++accepted_;
            break;
        }
        case driver::CtrlMsg::Type::Closed: {
            auto it = conn_port_.find(m->conn_id);
            if (it != conn_port_.end())
                flows_[it->second].closed = true;
            ++closed_;
            break;
        }
        case driver::CtrlMsg::Type::Reset: {
            auto it = conn_port_.find(m->conn_id);
            if (it != conn_port_.end())
                flows_[it->second].reset = true;
            ++resets_;
            break;
        }
        case driver::CtrlMsg::Type::Opened:
            break; // sinks never open actively
        }
    }

    driver::DescRing& rx = fp_.rx_ring(app_);
    bool drained = false;
    while (!rx.empty()) {
        driver::RingDesc d;
        uint32_t ring_slot = rx.pop(&d);
        if (d.type == driver::kDescData) {
            auto it = conn_port_.find(uint32_t(d.opaque));
            if (it != conn_port_.end()) {
                SinkFlow& f = flows_[it->second];
                const uint8_t* bytes = fp_.rx_arena(app_) + d.addr;
                f.digest = sim::fnv1a64(
                    bytes, d.len,
                    f.digest ? f.digest : sim::kFnvBasis);
                f.bytes += d.len;
            }
        }
        rx.release(ring_slot);
        drained = true;
    }
    if (drained)
        fp_.rx_doorbell(app_);
}

} // namespace fld::apps
