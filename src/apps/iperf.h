/**
 * @file
 * iperf-like multi-flow bulk sender for the IP-defragmentation
 * experiment (§8.2.2).
 *
 * Substitution note (DESIGN.md): the paper runs 60 iperf TCP flows;
 * full TCP congestion control is immaterial here because goodput is
 * pinned by either the wire or the receiver/sender processing
 * bottlenecks, which this open-loop sender with per-datagram sender
 * CPU costs reproduces. Fragmentation (route MTU) and VXLAN
 * encapsulation happen in sender software, exactly as in the paper's
 * setup — which is why the sender becomes the bottleneck in the
 * tunneled configuration.
 */
#ifndef FLD_APPS_IPERF_H
#define FLD_APPS_IPERF_H

#include <cstdint>

#include "driver/cpu_driver.h"
#include "net/headers.h"
#include "net/ip_reassembly.h"
#include "sim/stats.h"
#include "util/rng.h"

namespace fld::apps {

struct IperfConfig
{
    uint32_t flows = 60;
    /** L3 datagram size before fragmentation (paper: 1500 B IP). */
    size_t datagram_bytes = 1500;
    /** Route MTU; datagrams above it are fragmented in software. */
    size_t route_mtu = 1500;
    bool fragment = false;
    bool vxlan = false;
    uint32_t vni = 0x1234;
    double offered_gbps = 25.0;

    /** Sender-side kernel costs per original datagram; calibrated so
     *  plain sends saturate 25 GbE while software fragmentation +
     *  VXLAN tunneling caps the sender near the paper's ~17 Gbps. */
    sim::TimePs send_cost = sim::nanoseconds(350);
    sim::TimePs fragment_cost = sim::nanoseconds(800);
    sim::TimePs vxlan_cost = sim::microseconds(8.0);

    net::MacAddr src_mac{2, 0, 0, 0, 0, 0xc1};
    net::MacAddr dst_mac{2, 0, 0, 0, 0, 0x51};
    uint32_t src_ip = net::ipv4_addr(10, 0, 0, 2);
    uint32_t dst_ip = net::ipv4_addr(10, 0, 0, 1);
    uint32_t outer_src_ip = net::ipv4_addr(192, 168, 0, 2);
    uint32_t outer_dst_ip = net::ipv4_addr(192, 168, 0, 1);
    uint16_t base_sport = 42000;
    uint16_t dport = 5201;
    uint64_t seed = 23;
};

class IperfSender
{
  public:
    IperfSender(sim::EventQueue& eq, driver::HostNode& host,
                driver::CpuDriver& driver, IperfConfig cfg = {});

    void start(sim::TimePs duration);

    uint64_t datagrams_sent() const { return datagrams_; }
    uint64_t frames_sent() const { return frames_; }

  private:
    void send_next();

    sim::EventQueue& eq_;
    driver::HostNode& host_;
    driver::CpuDriver& driver_;
    IperfConfig cfg_;
    Rng rng_;
    sim::TimePs end_time_ = 0;
    uint32_t next_flow_ = 0;
    uint16_t next_ip_id_ = 1;
    uint64_t datagrams_ = 0;
    uint64_t frames_ = 0;
};

} // namespace fld::apps

#endif // FLD_APPS_IPERF_H
