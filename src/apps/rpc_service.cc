#include "apps/rpc_service.h"

#include <algorithm>
#include <cstring>

#include "crypto/zuc.h"
#include "sim/fuzz.h" // fnv1a64
#include "util/logging.h"

namespace fld::apps {

// ---------------------------------------------------------------------
// Reference transform
// ---------------------------------------------------------------------

const char*
rpc_method_name(uint8_t method)
{
    switch (method) {
    case kRpcEcho:
        return "echo";
    case kRpcZuc:
        return "zuc";
    case kRpcDefrag:
        return "defrag";
    case kRpcBusy:
        return "busy";
    }
    return "?";
}

namespace {

/** Cipher parameters are a pure function of the request id. */
crypto::Zuc::Key
zuc_key_for(uint64_t request_id)
{
    crypto::Zuc::Key key;
    for (size_t i = 0; i < key.size(); ++i)
        key[i] = uint8_t((request_id >> (8 * (i & 7))) + i * 0x9e);
    return key;
}

std::vector<uint8_t>
defrag_reassemble(const uint8_t* payload, size_t len)
{
    // Chunk records: [u16 offset][u16 len][len bytes], little-endian,
    // in any order; a trailing partial record is ignored. Gaps stay
    // zero, overlaps overwrite — deterministic either way.
    size_t extent = 0;
    for (size_t pos = 0; pos + 4 <= len;) {
        uint32_t off = uint32_t(payload[pos]) |
                       uint32_t(payload[pos + 1]) << 8;
        uint32_t clen = uint32_t(payload[pos + 2]) |
                        uint32_t(payload[pos + 3]) << 8;
        if (pos + 4 + clen > len)
            break;
        extent = std::max(extent, size_t(off) + clen);
        pos += 4 + clen;
    }
    std::vector<uint8_t> out(extent, 0);
    for (size_t pos = 0; pos + 4 <= len;) {
        uint32_t off = uint32_t(payload[pos]) |
                       uint32_t(payload[pos + 1]) << 8;
        uint32_t clen = uint32_t(payload[pos + 2]) |
                        uint32_t(payload[pos + 3]) << 8;
        if (pos + 4 + clen > len)
            break;
        std::memcpy(out.data() + off, payload + pos + 4, clen);
        pos += 4 + clen;
    }
    return out;
}

} // namespace

std::vector<uint8_t>
rpc_execute(uint8_t method, uint64_t request_id, const uint8_t* payload,
            size_t len)
{
    switch (method) {
    case kRpcEcho:
        return std::vector<uint8_t>(payload, payload + len);
    case kRpcZuc: {
        std::vector<uint8_t> buf(payload, payload + len);
        crypto::eea3_crypt(zuc_key_for(request_id),
                           uint32_t(request_id),
                           uint8_t((request_id >> 32) & 0x1f),
                           uint8_t((request_id >> 37) & 1), buf.data(),
                           len * 8);
        return buf;
    }
    case kRpcDefrag:
        return defrag_reassemble(payload, len);
    case kRpcBusy: {
        // Digest + length: a small fixed-size receipt.
        uint64_t d = sim::fnv1a64(payload, len);
        std::vector<uint8_t> out(12);
        for (int i = 0; i < 8; ++i)
            out[size_t(i)] = uint8_t(d >> (8 * i));
        for (int i = 0; i < 4; ++i)
            out[size_t(8 + i)] = uint8_t(uint32_t(len) >> (8 * i));
        return out;
    }
    }
    return {};
}

// ---------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------

sim::TimePs
RpcHandlerModel::service_time(size_t bytes) const
{
    sim::TimePs t = setup_time;
    if (gbps > 0)
        t += sim::serialize_time(bytes, gbps);
    return t;
}

RpcDispatcher::RpcDispatcher(sim::EventQueue& eq, RpcServiceConfig cfg)
    : eq_(eq), cfg_(cfg),
      worker_free_(std::max(1u, cfg.workers), sim::TimePs(0))
{
}

const RpcHandlerModel&
RpcDispatcher::model_for(uint8_t method) const
{
    switch (method) {
    case kRpcZuc:
        return cfg_.zuc;
    case kRpcDefrag:
        return cfg_.defrag;
    case kRpcBusy:
        return cfg_.busy;
    default:
        return cfg_.echo;
    }
}

bool
RpcDispatcher::dispatch(rpc::Frame&& request, Completion done)
{
    if (request.method >= kRpcMethodCount ||
        request.payload.size() > cfg_.max_payload) {
        ++stats_.rejected;
        return false;
    }
    ++stats_.dispatched;
    ++stats_.per_method[request.method];

    // Earliest-free worker, ties to the lowest index: deterministic
    // and order-preserving for a single queue of arrivals.
    size_t w = 0;
    for (size_t i = 1; i < worker_free_.size(); ++i)
        if (worker_free_[i] < worker_free_[w])
            w = i;
    sim::TimePs start = std::max(eq_.now(), worker_free_[w]);
    sim::TimePs cost =
        model_for(request.method).service_time(request.payload.size());
    worker_free_[w] = start + cost;
    stats_.busy_time += cost;
    ++inflight_;

    eq_.schedule_at(
        start + cost,
        [this, req = std::move(request), done = std::move(done)] {
            rpc::Frame resp;
            resp.method = req.method;
            resp.request_id = req.request_id;
            resp.payload = rpc_execute(req.method, req.request_id,
                                       req.payload.data(),
                                       req.payload.size());
            --inflight_;
            ++stats_.completed;
            done(std::move(resp));
        });
    return true;
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

RpcServer::RpcServer(sim::EventQueue& eq, driver::FastPath& fp,
                     RpcServerConfig cfg)
    : eq_(eq), fp_(fp), cfg_(cfg), disp_(eq, cfg.service)
{
    app_ = fp_.register_app(cfg_.tx_ring_entries, cfg_.rx_ring_entries,
                            [this] { on_notify(); });
    fp_.listen(cfg_.listen_port, app_);
}

bool
RpcServer::idle() const
{
    if (!disp_.idle())
        return false;
    for (const auto& [id, c] : conns_)
        if (!c.gone && !c.out.empty())
            return false;
    return true;
}

void
RpcServer::on_notify()
{
    if (service_pending_)
        return;
    service_pending_ = true;
    eq_.schedule_in(0, [this] {
        service_pending_ = false;
        service();
    });
}

void
RpcServer::service()
{
    drain_ctrl();
    drain_rx();
    pump_tx();
}

void
RpcServer::drain_ctrl()
{
    while (auto m = fp_.poll_ctrl(app_)) {
        switch (m->type) {
        case driver::CtrlMsg::Type::Accepted:
            ++stats_.accepted;
            conns_[m->conn_id]; // default-construct per-conn state
            break;
        case driver::CtrlMsg::Type::Closed:
        case driver::CtrlMsg::Type::Reset: {
            if (m->type == driver::CtrlMsg::Type::Closed)
                ++stats_.closed;
            else
                ++stats_.resets;
            auto it = conns_.find(m->conn_id);
            if (it != conns_.end()) {
                it->second.gone = true;
                it->second.out.clear();
                it->second.out_head_off = 0;
            }
            break;
        }
        case driver::CtrlMsg::Type::Opened:
            break; // server never opens actively
        }
    }
}

void
RpcServer::drain_rx()
{
    driver::DescRing& rx = fp_.rx_ring(app_);
    const uint8_t* arena = fp_.rx_arena(app_);
    bool released = false;
    while (!rx.empty()) {
        driver::RingDesc d;
        uint32_t slot = rx.pop(&d);
        if (d.type == driver::kDescData) {
            auto it = conns_.find(uint32_t(d.opaque));
            if (it != conns_.end() && !it->second.gone) {
                Conn& c = it->second;
                if (!c.decoder.feed(arena + d.addr, d.len) &&
                    !c.error_counted) {
                    // Poisoned stream: count once, then ignore the
                    // connection's bytes forever (sticky decoder).
                    ++stats_.decode_errors;
                    c.error_counted = true;
                }
                rpc::Frame f;
                while (c.decoder.next(&f))
                    on_request(uint32_t(d.opaque), std::move(f));
            }
        } else if (d.type == driver::kDescTxDone &&
                   (d.flags & driver::kDescFlagTxTag)) {
            ++stats_.responses_acked;
        }
        rx.release(slot);
        released = true;
    }
    if (released)
        fp_.rx_doorbell(app_); // freed slots: unpark deliveries
}

void
RpcServer::on_request(uint32_t conn_id, rpc::Frame&& f)
{
    ++stats_.requests;
    disp_.dispatch(std::move(f), [this, conn_id](rpc::Frame&& resp) {
        auto it = conns_.find(conn_id);
        if (it == conns_.end() || it->second.gone)
            return; // connection died while the handler ran
        it->second.out.push_back(rpc::encode_frame(resp));
        if (!ready_flag_.count(conn_id)) {
            ready_flag_[conn_id] = 1;
            send_ready_.push_back(conn_id);
        }
        pump_tx(); // completion runs from a handler event, not notify
    });
}

void
RpcServer::pump_tx()
{
    driver::DescRing& ring = fp_.tx_ring(app_);
    uint8_t* arena = fp_.tx_arena(app_);
    const uint32_t slot_bytes = fp_.slot_bytes();
    const uint32_t chunk_max =
        cfg_.tx_chunk_bytes
            ? std::min(cfg_.tx_chunk_bytes, slot_bytes)
            : slot_bytes;
    bool posted = false;

    while (!send_ready_.empty()) {
        uint32_t id = send_ready_.front();
        auto it = conns_.find(id);
        if (it == conns_.end() || it->second.gone ||
            it->second.out.empty()) {
            ready_flag_.erase(id);
            send_ready_.pop_front();
            continue;
        }
        Conn& c = it->second;
        const std::vector<uint8_t>& resp = c.out.front();
        uint32_t remaining = uint32_t(resp.size() - c.out_head_off);
        uint32_t chunk = std::min(remaining, chunk_max);

        driver::RingDesc d;
        d.type = driver::kDescData;
        d.opaque = id;
        d.len = chunk;
        d.addr = uint64_t(ring.next_slot()) * slot_bytes;
        bool last = chunk == remaining;
        if (last) {
            // Tag the final descriptor: its TxDone confirms the whole
            // response was acknowledged end-to-end.
            d.flags = driver::kDescFlagPush | driver::kDescFlagTxTag;
            d.tag = ++response_seq_;
        }
        if (!ring.post(d)) {
            // Consume what is queued (slots free immediately: the
            // stack copies payloads at the doorbell) and retry once.
            if (posted) {
                fp_.doorbell(app_);
                posted = false;
                d.addr = uint64_t(ring.next_slot()) * slot_bytes;
            }
            if (!ring.post(d)) {
                ++stats_.tx_ring_full;
                if (!retry_armed_) {
                    retry_armed_ = true;
                    eq_.schedule_in(sim::microseconds(1), [this] {
                        retry_armed_ = false;
                        pump_tx();
                    });
                }
                break;
            }
        }
        // Fill the arena only after the slot is ours: a failed post
        // means the slot may still back an unconsumed descriptor.
        std::memcpy(arena + d.addr, resp.data() + c.out_head_off,
                    chunk);
        posted = true;
        c.out_head_off += chunk;
        if (last) {
            c.out.pop_front();
            c.out_head_off = 0;
            ++stats_.responses;
            // Rotate for round-robin fairness across connections.
            send_ready_.pop_front();
            if (!c.out.empty())
                send_ready_.push_back(id);
            else
                ready_flag_.erase(id);
        }
    }
    if (posted)
        fp_.doorbell(app_);
}

} // namespace fld::apps
