/**
 * @file
 * Materializes a sim::FuzzScenario into real testbeds and judges the
 * four fuzzing oracles.
 *
 * An Ethernet scenario is run twice over the identical workload — once
 * with the echo behind the hardware FLD, once with a testpmd-style CPU
 * echo — and the runner checks:
 *
 *  (a) differential equivalence: the two runs deliver the same per-flow
 *      multiset of payloads, byte-identical up to ordering (multi-SQ
 *      spraying legitimately reorders within a flow). Only judged when
 *      the scenario is fault-free and neither run shed load, since
 *      drops are timing-dependent and legitimately differ;
 *  (b) zero TraceChecker causal-invariant violations in either run;
 *  (c) exactly-once delivery (RDMA scenarios: the RC transport must
 *      deliver every message once, bytes intact, even under loss);
 *  (d) conservation: tx = rx + accounted drops + in-flight, via the
 *      sim::ConservationLedger over NIC/driver/AFU/fault counters.
 *
 * A ConnServe scenario likewise runs twice — the same AppEmu TCP
 * workload against an FLD-served and a CPU-served host fast path
 * (apps::run_fastpath_scenario) — and folds the harness's lifecycle /
 * exactly-once / conservation verdicts into the same four-oracle
 * frame, with per-flow digest equality as the differential check.
 *
 * An RpcServe scenario runs the RPC tier (apps::run_rpc_scenario)
 * FLD- and CPU-served over the identical seeded request streams; the
 * differential check diffs per-connection folds of the per-request
 * response digests, and the harness's shadow-oracle conformance /
 * lifecycle / conservation verdicts fold in like ConnServe's.
 *
 * End-to-end payload integrity (pattern verification) is checked
 * unconditionally — corrupted frames must be FCS-dropped, never
 * delivered damaged.
 */
#ifndef FLD_APPS_FUZZ_RUNNER_H
#define FLD_APPS_FUZZ_RUNNER_H

#include <map>
#include <string>
#include <vector>

#include "apps/pktgen.h"
#include "apps/scenarios.h"
#include "apps/testbed.h"
#include "sim/fuzz.h"
#include "sim/stats.h"

namespace fld::apps {

struct FuzzRunOptions
{
    /** Base testbed configuration the scenario's knobs are applied on
     *  top of (benches share their calibrated defaults through this). */
    TestbedConfig base_tb;
    /** Base generator configuration (addressing, ports). */
    PktGenConfig base_gen;
    /** Record + check packet-lifecycle traces (oracle b). Uses the
     *  thread-local Tracer slot, so at most one FuzzRunner may have
     *  this enabled per thread at a time (one per sweep worker). */
    bool check_trace = true;
    /** Generator send-phase bound; the budgeted packet count is the
     *  real stop condition, this only caps pathological stalls. */
    sim::TimePs run_duration = sim::milliseconds(50);
};

/** Everything observable from one materialized run. */
struct FuzzRunDigest
{
    std::string label;           ///< "fld" / "cpu" / "rdma"
    uint64_t tx = 0;
    uint64_t rx = 0;
    uint64_t bad_payload = 0;    ///< delivered-with-wrong-bytes count
    uint64_t duplicate_msgs = 0; ///< RDMA: messages delivered twice+
    uint64_t missing_msgs = 0;   ///< RDMA: messages never delivered
    uint64_t drops = 0;          ///< sum of all named drop counters
    std::map<uint32_t, uint64_t> flow_digests;
    sim::FaultCounters faults;
    sim::ConservationLedger ledger;
    /** Oracle violations the materialized harness judged itself
     *  (ConnServe: the fastpath harness's lifecycle/exactly-once/
     *  conservation verdicts); folded into the FuzzVerdict. */
    std::vector<std::string> violations;
    std::vector<std::string> trace_violations;
    uint64_t trace_hash = 0; ///< FNV of the causal trace digest
    sim::TimePs end_time = 0;

    /** Deterministic multi-line transcript block. */
    std::string to_string() const;
};

struct FuzzVerdict
{
    bool ok = true;
    std::vector<std::string> violations;
    /** Full deterministic transcript: scenario dump + per-run digests
     *  + verdict. Bit-identical across replays of the same seed. */
    std::string transcript;
    uint64_t transcript_hash = 0;
};

class FuzzRunner
{
  public:
    explicit FuzzRunner(FuzzRunOptions opt = {}) : opt_(std::move(opt))
    {}

    /** Materialize, run (twice for Ethernet), judge all oracles. */
    FuzzVerdict run(const sim::FuzzScenario& scenario);

  private:
    FuzzRunDigest run_eth(const sim::FuzzScenario& s, bool fld_path);
    FuzzRunDigest run_rdma(const sim::FuzzScenario& s);
    FuzzRunDigest run_conn(const sim::FuzzScenario& s, bool fld_mode);
    FuzzRunDigest run_rpc(const sim::FuzzScenario& s, bool fld_mode);

    PktGenConfig gen_config(const sim::FuzzScenario& s) const;
    TestbedConfig tb_config(const sim::FuzzScenario& s) const;
    EchoOptions echo_options(const sim::FuzzScenario& s) const;

    FuzzRunOptions opt_;
};

} // namespace fld::apps

#endif // FLD_APPS_FUZZ_RUNNER_H
