#include "apps/rpc_harness.h"

#include <sstream>

#include "net/headers.h"
#include "sim/fuzz.h" // fnv1a64
#include "sim/trace.h"
#include "util/strings.h"

namespace fld::apps {

namespace {

constexpr uint32_t kServerIp = net::ipv4_addr(10, 0, 0, 1);
constexpr uint32_t kClientIp = net::ipv4_addr(10, 0, 0, 2);

uint64_t
fold(uint64_t h, uint64_t v)
{
    uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = uint8_t(v >> (8 * i));
    return sim::fnv1a64(b, sizeof b, h);
}

uint64_t
nic_drops(const nic::NicStats& st)
{
    return st.drops_no_buffer + st.drops_rule + st.drops_meter +
           st.drops_no_rule;
}

driver::CpuDriverConfig
one_queue_cfg()
{
    driver::CpuDriverConfig cfg;
    cfg.num_queues = 1;
    // Same tuning as run_fastpath_scenario: poll-mode endpoints with
    // deep rings so connection storms queue instead of shedding.
    cfg.max_app_backlog = sim::microseconds(500);
    return cfg;
}

bool
frame_matches_port(const net::Packet& pkt, uint16_t port)
{
    net::ParsedPacket pp = net::parse(pkt);
    if (!pp.tcp)
        return false;
    return pp.tcp->sport == port || pp.tcp->dport == port;
}

} // namespace

std::string
RpcReport::summary() const
{
    std::ostringstream os;
    os << (ok ? "OK" : "FAIL") << " opened=" << client_app.opened
       << " closed=" << client_app.closed
       << " aborted=" << client_app.aborted
       << " requests=" << client_app.requests_sent
       << " responses=" << client_app.responses << "\n";
    os << "server: requests=" << server_app.requests
       << " responses=" << server_app.responses
       << " acked=" << server_app.responses_acked
       << " decode_errors=" << server_app.decode_errors << "\n";
    os << strfmt("latency us: p50=%.2f p99=%.2f p99.9=%.2f mean=%.2f "
                 "n=%zu\n",
                 p50_us, p99_us, p999_us, mean_us, latency.count());
    os << strfmt("rate: %.0f req/s, %.4f Gbps goodput\n", req_per_sec,
                 goodput_gbps);
    os << "conservation: " << ledger.summary() << "\n";
    os << "faults: " << faults.summary() << "\n";
    os << strfmt("digest_hash = %016llx\n",
                 (unsigned long long)digest_hash);
    os << strfmt("state_hash  = %016llx\n",
                 (unsigned long long)state_hash);
    os << "end_time_ps = " << end_time << "\n";
    for (const auto& v : violations)
        os << "violation: " << v << "\n";
    for (const auto& v : trace_violations)
        os << "trace: " << v << "\n";
    return os.str();
}

RpcReport
run_rpc_scenario(const RpcHarnessConfig& cfg)
{
    TestbedConfig tb_cfg = cfg.tb;
    tb_cfg.remote = true;
    // Client node modeled as a pinned load generator, same
    // calibration as the fast-path harness: the server is under test.
    tb_cfg.client_host.jitter_prob = 0.0005;
    tb_cfg.client_host.jitter_min = sim::microseconds(1);
    tb_cfg.client_host.jitter_mean_extra = sim::nanoseconds(500);
    tb_cfg.client_host.rx_packet_cost = sim::nanoseconds(20);
    tb_cfg.client_host.tx_packet_cost = sim::nanoseconds(20);
    Testbed tb(tb_cfg);

    sim::Tracer tracer;
    if (cfg.trace)
        tracer.install();

    // ----- client node: CpuDriver + FastPath + RpcClientPool ---------
    driver::CpuDriver client_drv(
        "client.app", tb.eq, tb.fabric, tb.client_host_port,
        tb.client_mem, tb.client_arena(32 << 20), 32 << 20,
        *tb.client_nic, Testbed::kClientNicBar, tb.client_host,
        tb.client_app_vport, one_queue_cfg(), Testbed::kClientMemBase);
    tb.install_client_forwarding();
    uint32_t ctir = tb.client_nic->create_tir({{client_drv.rqn(0)}});
    tb.client_nic->set_vport_default_tir(tb.client_app_vport, ctir);

    driver::FastPathConfig client_fp_cfg;
    client_fp_cfg.mac = kClientMac;
    client_fp_cfg.ip = kClientIp;
    client_fp_cfg.conn = cfg.conn;
    client_fp_cfg.slot_bytes = cfg.slot_bytes;
    driver::FastPath client_fp(tb.eq, client_fp_cfg);
    client_fp.set_tx([&](net::Packet&& f) {
        return client_drv.send(0, std::move(f));
    });
    client_drv.set_rx_handler([&](uint32_t, net::Packet&& f) {
        client_fp.on_rx(std::move(f));
    });

    RpcClientConfig client_cfg = cfg.client;
    client_cfg.remote_ip = kServerIp;
    client_cfg.remote_port = cfg.server.listen_port;
    RpcClientPool pool(tb.eq, client_fp, client_cfg);

    // ----- server node: FLD-driven or CPU-driven stack ---------------
    driver::FastPathConfig server_fp_cfg;
    server_fp_cfg.mac = kServerMac;
    server_fp_cfg.ip = kServerIp;
    server_fp_cfg.conn = cfg.conn;
    server_fp_cfg.slot_bytes = cfg.slot_bytes;
    driver::FastPath server_fp(tb.eq, server_fp_cfg);

    std::unique_ptr<HostStackAfu> afu;
    std::unique_ptr<driver::CpuDriver> server_drv;
    if (cfg.mode == FastPathMode::Fld) {
        auto q0 = tb.rt->create_eth_queue(tb.fld_vport, 0,
                                          cfg.fld_rx_buffers);
        afu = std::make_unique<HostStackAfu>(tb.eq, *tb.fld, server_fp,
                                             0);
        if (tb.fault_plan)
            afu->set_fault_plan(tb.fault_plan.get(),
                                tb.cfg.accel_faults);
        nic::FlowMatch from_wire;
        from_wire.in_vport = nic::kUplinkVport;
        tb.server_nic->add_rule(0, 0, from_wire,
                                {nic::fwd_queue(q0.rqn)});
        tb.route_vport_to_uplink(*tb.server_nic, tb.fld_vport);
    } else {
        server_drv = std::make_unique<driver::CpuDriver>(
            "server.app", tb.eq, tb.fabric, tb.server_host_port,
            tb.server_mem, tb.server_arena(32 << 20), 32 << 20,
            *tb.server_nic, Testbed::kServerNicBar, tb.server_host,
            tb.server_app_vport, one_queue_cfg());
        uint32_t stir =
            tb.server_nic->create_tir({{server_drv->rqn(0)}});
        tb.server_nic->set_vport_default_tir(tb.server_app_vport,
                                             stir);
        tb.route_uplink_to_vport(*tb.server_nic, tb.server_app_vport);
        tb.route_vport_to_uplink(*tb.server_nic, tb.server_app_vport);
        server_fp.set_tx([&](net::Packet&& f) {
            return server_drv->send(0, std::move(f));
        });
        server_drv->set_rx_handler([&](uint32_t, net::Packet&& f) {
            server_fp.on_rx(std::move(f));
        });
    }
    RpcServer server(tb.eq, server_fp, cfg.server);

    if (cfg.preseed_arp) {
        client_fp.add_arp_entry(kServerIp, kServerMac);
        server_fp.add_arp_entry(kClientIp, kClientMac);
    }
    if (cfg.fault_target_port && tb.wire)
        tb.wire->set_fault_filter(
            [port = cfg.fault_target_port](const net::Packet& p) {
                return frame_matches_port(p, port);
            });

    tb.eq.run(); // settle descriptor prefetch before traffic
    pool.start();
    tb.eq.run();

    if (cfg.trace)
        tracer.uninstall();

    // ----- fold the run into the report ------------------------------
    RpcReport r;
    r.end_time = tb.eq.now();
    r.client_app = pool.stats();
    r.server_app = server.stats();
    r.dispatch = server.dispatcher().stats();
    r.client_stats = client_fp.stats();
    r.server_stats = server_fp.stats();
    r.client_quiesced = client_fp.quiesced();
    r.server_quiesced = server_fp.quiesced();
    r.digests = pool.digests();
    r.latency = pool.latency();
    r.p50_us = r.latency.percentile(50);
    r.p99_us = r.latency.percentile(99);
    r.p999_us = r.latency.p(0.999);
    r.mean_us = r.latency.mean();
    double sim_sec = double(r.end_time) * 1e-12;
    if (sim_sec > 0) {
        r.req_per_sec = double(r.client_app.responses) / sim_sec;
        r.goodput_gbps =
            double(r.client_app.response_bytes) * 8.0 / sim_sec / 1e9;
    }

    const bool faulty = tb.fault_plan != nullptr;

    // Shadow conformance and stream integrity hold unconditionally:
    // TCP delivers byte streams intact or resets, never corrupted.
    for (const std::string& e : pool.errors())
        r.violations.push_back("client: " + e);
    if (r.client_app.conformance_errors)
        r.violations.push_back(
            strfmt("%llu responses diverged from the shadow oracle",
                   (unsigned long long)r.client_app.conformance_errors));
    if (r.client_app.protocol_errors)
        r.violations.push_back(strfmt(
            "%llu protocol errors (unexpected request ids)",
            (unsigned long long)r.client_app.protocol_errors));
    if (r.client_app.decode_errors || r.server_app.decode_errors)
        r.violations.push_back(strfmt(
            "poisoned frame streams (client=%llu server=%llu)",
            (unsigned long long)r.client_app.decode_errors,
            (unsigned long long)r.server_app.decode_errors));
    if (r.dispatch.rejected)
        r.violations.push_back(
            strfmt("dispatcher rejected %llu requests",
                   (unsigned long long)r.dispatch.rejected));
    if (!pool.done())
        r.violations.push_back("client workload did not finish");

    // Lifecycle: fault-free runs finish everything, exactly once.
    if (!faulty) {
        if (r.client_app.aborted)
            r.violations.push_back(strfmt(
                "%u connections aborted without faults",
                r.client_app.aborted));
        uint64_t expect = uint64_t(cfg.client.connections) *
                          cfg.client.requests_per_conn;
        if (r.client_app.responses != expect)
            r.violations.push_back(strfmt(
                "completed %llu / %llu requests",
                (unsigned long long)r.client_app.responses,
                (unsigned long long)expect));
        if (r.server_app.accepted != r.client_app.opened)
            r.violations.push_back(strfmt(
                "server accepted %u != client opened %u",
                r.server_app.accepted, r.client_app.opened));
        if (r.server_app.responses != r.server_app.requests)
            r.violations.push_back(strfmt(
                "server answered %llu of %llu requests",
                (unsigned long long)r.server_app.responses,
                (unsigned long long)r.server_app.requests));
        if (r.server_app.responses_acked != r.server_app.responses)
            r.violations.push_back(strfmt(
                "only %llu of %llu responses saw a tagged TxDone",
                (unsigned long long)r.server_app.responses_acked,
                (unsigned long long)r.server_app.responses));
    } else {
        // Even under faults a served response is answered once; the
        // digest map can only shrink (aborted conns), never disagree.
        if (r.client_app.responses > r.client_app.requests_sent)
            r.violations.push_back("more responses than requests");
    }

    if (!r.client_quiesced)
        r.violations.push_back("client stack not quiesced");
    if (!r.server_quiesced)
        r.violations.push_back("server stack not quiesced");

    // Frame-conservation ledger.
    if (tb.fault_plan)
        r.faults = tb.fault_plan->counters();
    r.ledger.tx = r.client_stats.frames_tx + r.server_stats.frames_tx;
    r.ledger.rx = r.client_stats.frames_rx + r.server_stats.frames_rx;
    r.ledger.duplicates = r.faults.wire_duplicates;
    r.ledger.accounted_losses =
        r.faults.wire_drops + r.faults.wire_corruptions +
        nic_drops(tb.server_nic->stats()) +
        nic_drops(tb.client_nic->stats()) +
        client_drv.stats().rx_overload_dropped;
    if (afu)
        r.ledger.accounted_losses += afu->stats().dropped_overload +
                                     afu->stats().dropped_invalid;
    if (server_drv)
        r.ledger.accounted_losses +=
            server_drv->stats().rx_overload_dropped;
    if (std::string lv = r.ledger.check(); !lv.empty())
        r.violations.push_back("conservation: " + lv);

    if (cfg.trace) {
        sim::TraceChecker checker;
        r.trace_violations = checker.check(tracer.events());
    }

    // Digest hash: the per-request response digests, in id order.
    uint64_t h = sim::kFnvBasis;
    for (const auto& [id, digest] : r.digests) {
        h = fold(h, id);
        h = fold(h, digest);
    }
    r.digest_hash = h;

    // State hash: every observable counter and the exact latency
    // sequence folded in — same-config reruns match bit-for-bit.
    h = fold(h, pool.latency_fold());
    for (const driver::FastPathStats* st :
         {&r.client_stats, &r.server_stats}) {
        h = fold(h, st->frames_tx);
        h = fold(h, st->frames_rx);
        h = fold(h, st->segments_sent);
        h = fold(h, st->segments_received);
        h = fold(h, st->retransmits);
        h = fold(h, st->pure_acks_sent);
        h = fold(h, st->tx_descs);
        h = fold(h, st->rx_descs);
        h = fold(h, st->tx_done_descs);
        h = fold(h, st->tagged_tx_done_descs);
        h = fold(h, st->rx_ring_stalls);
        h = fold(h, st->driver_backpressure);
    }
    h = fold(h, r.client_app.opened);
    h = fold(h, r.client_app.closed);
    h = fold(h, r.client_app.aborted);
    h = fold(h, r.client_app.requests_sent);
    h = fold(h, r.client_app.responses);
    h = fold(h, r.server_app.requests);
    h = fold(h, r.server_app.responses);
    h = fold(h, r.server_app.responses_acked);
    h = fold(h, r.dispatch.dispatched);
    h = fold(h, uint64_t(r.dispatch.busy_time));
    h = fold(h, r.faults.total());
    h = fold(h, r.ledger.tx);
    h = fold(h, r.ledger.rx);
    h = fold(h, uint64_t(r.end_time));
    r.state_hash = h;

    r.ok = r.violations.empty() && r.trace_violations.empty();
    return r;
}

} // namespace fld::apps
