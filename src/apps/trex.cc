#include "apps/trex.h"

#include "net/coap.h"
#include "net/jwt.h"
#include "nic/config.h"
#include "util/strings.h"

namespace fld::apps {

TrexGen::TrexGen(sim::EventQueue& eq, driver::CpuDriver& driver,
                 TrexConfig cfg)
    : eq_(eq), driver_(driver), cfg_(std::move(cfg)), rng_(cfg_.seed),
      sent_(cfg_.flows.size(), 0), msg_id_(cfg_.flows.size(), 0)
{}

net::Packet
TrexGen::make_frame(size_t flow)
{
    const TenantFlow& f = cfg_.flows[flow];

    std::string claims =
        strfmt(R"({"sub":"device-%u","seq":%u})", f.tenant_id,
               msg_id_[flow]);
    std::string key = f.valid_tokens ? f.jwt_key
                                     : f.jwt_key + "-wrong";
    std::string token = net::jwt_sign_hs256(claims, key);

    net::CoapMessage msg;
    msg.type = net::CoapType::NonConfirmable;
    msg.code = net::kCoapCodePost;
    msg.message_id = msg_id_[flow]++;
    msg.uri_path = {"iot", "ingest"};
    msg.payload.assign(token.begin(), token.end());
    std::vector<uint8_t> coap = msg.encode();

    net::Packet pkt = net::PacketBuilder()
                          .eth(cfg_.src_mac, cfg_.dst_mac)
                          .ipv4(f.src_ip, cfg_.dst_ip,
                                net::kIpProtoUdp)
                          .udp(f.sport, f.dport)
                          .payload(coap)
                          .build();
    // Pad to the flow's frame size so offered Gbps is exact.
    if (pkt.size() < f.frame_size) {
        // Rebuild with padded CoAP payload (padding after the token
        // is ignored by the token parser? No — pad the UDP payload
        // *before* encoding would corrupt CoAP). Instead pad the JWT
        // claims: simplest is to extend the frame with trailing bytes
        // at L2, which real generators do with UDP padding; keep the
        // UDP length authoritative.
        pkt.data.resize(f.frame_size, 0);
    }
    return pkt;
}

void
TrexGen::start(sim::TimePs duration)
{
    end_time_ = eq_.now() + duration;
    for (size_t i = 0; i < cfg_.flows.size(); ++i)
        send_flow(i);
}

void
TrexGen::send_flow(size_t flow)
{
    if (eq_.now() >= end_time_)
        return;
    net::Packet pkt = make_frame(flow);
    uint64_t wire = pkt.size() + nic::kEthWireOverhead;
    driver_.send(uint32_t(flow % driver_.num_queues()),
                 std::move(pkt));
    ++sent_[flow];

    sim::TimePs gap =
        sim::serialize_time(wire, cfg_.flows[flow].offered_gbps);
    eq_.schedule_in(gap, [this, flow] { send_flow(flow); });
}

} // namespace fld::apps
