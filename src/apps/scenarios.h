/**
 * @file
 * Ready-made experiment scenarios assembling Testbed + steering +
 * accelerators + workloads exactly as §8 describes. Shared by the
 * reproduction benches, the examples, and the integration tests.
 */
#ifndef FLD_APPS_SCENARIOS_H
#define FLD_APPS_SCENARIOS_H

#include <memory>

#include "accel/defrag_accel.h"
#include "accel/echo.h"
#include "accel/iot_auth.h"
#include "accel/zuc_accel.h"
#include "apps/crypto_perf.h"
#include "apps/iperf.h"
#include "apps/pktgen.h"
#include "apps/testbed.h"
#include "apps/trex.h"
#include "driver/rdma_client.h"
#include "driver/sw_stack.h"

namespace fld::apps {

// ---------------------------------------------------------------------
// FLD-E echo (§8.1.1): load generator <-> FLD echo accelerator.
// ---------------------------------------------------------------------

struct EchoScenario
{
    std::unique_ptr<Testbed> tb;
    std::unique_ptr<driver::CpuDriver> gen_driver;
    std::unique_ptr<PacketGen> gen;
    std::unique_ptr<accel::EchoAccelerator> echo;
    runtime::FldRuntime::EthQueue q0;
    bool remote = true;
};

/**
 * Knobs the scenario fuzzer randomizes on top of the stock echo
 * setups. Defaults reproduce the historical behaviour exactly.
 */
struct EchoOptions
{
    /** CPU echo server RSS width (make_cpu_echo only). */
    uint32_t echo_queues = 1;
    /** Generator sends VXLAN-tunneled frames; an eSwitch rule
     *  decapsulates them in front of the echo (NIC offload), so
     *  echoes return as the inner frame. */
    bool vxlan = false;
    /** Template for the generator/echo CpuDriver configs — MPRQ
     *  geometry, signalling, doorbell style. num_queues/first_core
     *  are still assigned per role by the scenario. */
    driver::CpuDriverConfig driver_base;
};

/**
 * Remote: testpmd-like generator on the client node, echo AFU behind
 * FLD on the server, 25 GbE wire between them.
 * Local: generator on the server host's vPort, eSwitch loopback
 * between the generator vPort and the FLD vPort (50 Gbps PCIe bound).
 */
std::unique_ptr<EchoScenario> make_fld_echo(bool remote,
                                            PktGenConfig gen_cfg = {},
                                            TestbedConfig tb_cfg = {},
                                            const EchoOptions& opt = {});

/** CPU baseline: the echo runs in testpmd on the server host. */
struct CpuEchoScenario
{
    std::unique_ptr<Testbed> tb;
    std::unique_ptr<driver::CpuDriver> gen_driver;  ///< client side
    std::unique_ptr<driver::CpuDriver> echo_driver; ///< server side
    std::unique_ptr<PacketGen> gen;
    uint64_t echoed = 0;
};

std::unique_ptr<CpuEchoScenario>
make_cpu_echo(bool remote, PktGenConfig gen_cfg = {},
              TestbedConfig tb_cfg = {},
              const EchoOptions& opt = {});

// ---------------------------------------------------------------------
// FLD-R (§8.1.2 echo, §8.2.1 ZUC): RDMA client <-> FLD-R accelerator.
// ---------------------------------------------------------------------

struct FldrScenario
{
    std::unique_ptr<Testbed> tb;
    std::unique_ptr<driver::RdmaClient> client;
    std::unique_ptr<accel::Accelerator> afu;
    runtime::FldRuntime::FldQp qp;
};

/**
 * Build an FLD-R scenario with the given AFU factory. @p local places
 * the client QP on the server host (same-NIC loopback).
 */
std::unique_ptr<FldrScenario> make_fldr_echo(bool remote,
                                             TestbedConfig tb_cfg = {});
std::unique_ptr<FldrScenario> make_fldr_zuc(bool remote,
                                            TestbedConfig tb_cfg = {});

// ---------------------------------------------------------------------
// IP defragmentation (§8.2.2).
// ---------------------------------------------------------------------

struct DefragScenario
{
    std::unique_ptr<Testbed> tb;
    std::unique_ptr<driver::CpuDriver> sender_driver; ///< client
    std::unique_ptr<IperfSender> iperf;
    std::unique_ptr<driver::CpuDriver> server_driver; ///< receiver app
    std::unique_ptr<driver::SoftwareReceiveStack> stack;
    std::unique_ptr<accel::DefragAccelerator> defrag;
    runtime::FldRuntime::EthQueue q0;
};

struct DefragOptions
{
    bool fragmented = false;   ///< route MTU below packet size
    bool vxlan = false;        ///< tunnel + pre-fragmentation
    bool hw_defrag = false;    ///< steer fragments through the AFU
    uint32_t rx_queues = 16;   ///< receiver RSS width (one core each)
};

std::unique_ptr<DefragScenario>
make_defrag(const DefragOptions& opt, TestbedConfig tb_cfg = {});

// ---------------------------------------------------------------------
// IoT token authentication (§8.2.3).
// ---------------------------------------------------------------------

struct IotScenario
{
    std::unique_ptr<Testbed> tb;
    std::unique_ptr<driver::CpuDriver> gen_driver; ///< client (TRex)
    std::unique_ptr<TrexGen> trex;
    std::unique_ptr<driver::CpuDriver> server_driver;
    std::unique_ptr<accel::IotAuthAccelerator> auth;
    runtime::FldRuntime::EthQueue q0;
    /** Per-tenant bytes accepted (delivered to the server app). */
    std::map<uint32_t, uint64_t> accepted_bytes;
    std::map<uint32_t, sim::RateMeter> accepted_meter;
};

struct IotOptions
{
    std::vector<TenantFlow> tenants;
    /** Per-tenant NIC max-bandwidth shaping; 0 = no shaping (§8.2.3). */
    double tenant_rate_cap_gbps = 0.0;
    /** Accelerator acceptance capacity (12 Gbps in the paper). */
    double accel_capacity_gbps = 12.0;
};

std::unique_ptr<IotScenario> make_iot(const IotOptions& opt,
                                      TestbedConfig tb_cfg = {});

} // namespace fld::apps

#endif // FLD_APPS_SCENARIOS_H
