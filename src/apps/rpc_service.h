/**
 * @file
 * RPC application tier, server side: a method dispatcher with a
 * handler cost model, and an RpcServer that serves rpc:: frames over
 * the host fast path's ring ABI.
 *
 * The dispatcher is the "accelerator as a service" shape RPCAcc
 * argues for: each method id maps to a handler with real compute (the
 * ZUC cipher and the defrag reassembler reused as handlers, plus a
 * synthetic fixed-cost busy handler) and a UnitModel-style cost
 * (setup time + serialization at the handler's bandwidth) charged on
 * a bank of serial workers. Handler *semantics* are a pure function
 * of (method, request_id, request payload) — rpc_execute — so any
 * observer can recompute the expected response: the client verifies
 * every response against it (shadow oracle), and the dispatcher
 * conformance tests pin it against independent per-method
 * implementations.
 */
#ifndef FLD_APPS_RPC_SERVICE_H
#define FLD_APPS_RPC_SERVICE_H

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "driver/fastpath.h"
#include "net/rpc_codec.h"
#include "sim/event_queue.h"

namespace fld::apps {

// ---------------------------------------------------------------------
// Methods and the reference transform
// ---------------------------------------------------------------------

/** Method ids (rpc::Frame::method). */
constexpr uint8_t kRpcEcho = 0;   ///< response = request payload
constexpr uint8_t kRpcZuc = 1;    ///< 128-EEA3 over the payload
constexpr uint8_t kRpcDefrag = 2; ///< reassemble chunked payload
constexpr uint8_t kRpcBusy = 3;   ///< fixed-cost digest handler
constexpr uint8_t kRpcMethodCount = 4;

const char* rpc_method_name(uint8_t method);

/**
 * Reference semantics of every method: the response payload for a
 * given request. Pure and deterministic — the shadow oracle.
 *
 * kRpcZuc derives the cipher key/count/bearer from request_id, so two
 * requests with equal payloads but different ids produce different
 * ciphertexts. kRpcDefrag parses the payload as chunk records
 * [u16 offset][u16 len][len bytes] (any order, duplicates overwrite)
 * and returns the reassembled datum. kRpcBusy returns the payload's
 * FNV-1a digest plus its length (12 bytes).
 */
std::vector<uint8_t> rpc_execute(uint8_t method, uint64_t request_id,
                                 const uint8_t* payload, size_t len);

// ---------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------

/** Per-method compute cost: setup plus serialization at gbps. */
struct RpcHandlerModel
{
    sim::TimePs setup_time = 0;
    double gbps = 0; ///< 0 = setup time only

    sim::TimePs service_time(size_t bytes) const;
};

struct RpcServiceConfig
{
    /** Serial handler units; requests queue on the earliest-free
     *  one (deterministic: ties break to the lowest index). */
    uint32_t workers = 8;
    /** Echo is driver-limited, not compute-limited. */
    RpcHandlerModel echo{sim::nanoseconds(50), 100.0};
    /** ZUC cipher unit (same figures as ZucAccelerator). */
    RpcHandlerModel zuc{sim::nanoseconds(100), 5.4};
    /** Defrag engine (same figures as DefragAccelerator). */
    RpcHandlerModel defrag{sim::nanoseconds(60), 100.0};
    /** Synthetic busy-cost handler: pure setup time. */
    RpcHandlerModel busy{sim::microseconds(2), 0.0};

    uint32_t max_payload = 16 * 1024;
};

struct RpcDispatchStats
{
    uint64_t dispatched = 0;
    uint64_t completed = 0;
    uint64_t rejected = 0; ///< unknown method or oversize payload
    uint64_t per_method[kRpcMethodCount] = {};
    sim::TimePs busy_time = 0; ///< summed handler occupancy
};

/**
 * Routes request frames to handler workers and emits response frames
 * after the handler's modeled compute time.
 */
class RpcDispatcher
{
  public:
    using Completion = std::function<void(rpc::Frame&& response)>;

    RpcDispatcher(sim::EventQueue& eq, RpcServiceConfig cfg);

    /**
     * Queue a request. The completion fires from a scheduled event
     * once a worker has run the handler. Returns false (no
     * completion will fire) for unknown methods or oversize payloads.
     */
    bool dispatch(rpc::Frame&& request, Completion done);

    bool idle() const { return inflight_ == 0; }
    const RpcDispatchStats& stats() const { return stats_; }
    const RpcServiceConfig& config() const { return cfg_; }

  private:
    const RpcHandlerModel& model_for(uint8_t method) const;

    sim::EventQueue& eq_;
    RpcServiceConfig cfg_;
    std::vector<sim::TimePs> worker_free_;
    uint32_t inflight_ = 0;
    RpcDispatchStats stats_;
};

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

struct RpcServerConfig
{
    uint16_t listen_port = 7100;
    uint32_t tx_ring_entries = 256;
    uint32_t rx_ring_entries = 512;
    /** Split responses into TX descriptors of at most this many
     *  bytes (0 = whole slots), exercising descriptor fragmentation
     *  on the response path too. */
    uint32_t tx_chunk_bytes = 0;
    RpcServiceConfig service;
};

struct RpcServerStats
{
    uint32_t accepted = 0;
    uint32_t closed = 0;
    uint32_t resets = 0;
    uint64_t requests = 0;       ///< frames decoded off RX rings
    uint64_t responses = 0;      ///< response frames fully posted
    uint64_t responses_acked = 0;///< tagged TxDone seen end-to-end
    uint64_t decode_errors = 0;  ///< connections with poisoned streams
    uint64_t tx_ring_full = 0;
};

/**
 * The serving application: accepts fast-path connections, reassembles
 * request frames from RX descriptors (per-connection FrameDecoder),
 * dispatches them, and streams response frames back through the TX
 * ring — tagging the final descriptor of every response so the tagged
 * TxDone completion confirms end-to-end delivery. All ring work runs
 * from scheduled events, never from inside the stack's notify.
 */
class RpcServer
{
  public:
    RpcServer(sim::EventQueue& eq, driver::FastPath& fp,
              RpcServerConfig cfg);

    const RpcServerStats& stats() const { return stats_; }
    const RpcDispatcher& dispatcher() const { return disp_; }
    uint32_t app_id() const { return app_; }
    /** No queued responses and no handler in flight. */
    bool idle() const;

  private:
    struct Conn
    {
        rpc::FrameDecoder decoder;
        std::deque<std::vector<uint8_t>> out; ///< encoded responses
        size_t out_head_off = 0; ///< bytes of out.front() already sent
        bool error_counted = false;
        bool gone = false; ///< Closed/Reset seen; drop queued output
    };

    void on_notify();
    void service();
    void drain_ctrl();
    void drain_rx();
    void on_request(uint32_t conn_id, rpc::Frame&& f);
    void pump_tx();

    sim::EventQueue& eq_;
    driver::FastPath& fp_;
    RpcServerConfig cfg_;
    RpcDispatcher disp_;
    uint32_t app_ = 0;

    std::map<uint32_t, Conn> conns_;
    /** Connections with queued output, FIFO, no duplicates. */
    std::deque<uint32_t> send_ready_;
    std::map<uint32_t, char> ready_flag_;
    bool service_pending_ = false;
    bool retry_armed_ = false;
    uint32_t response_seq_ = 0; ///< tags for tagged TxDone completions
    RpcServerStats stats_;
};

} // namespace fld::apps

#endif // FLD_APPS_RPC_SERVICE_H
