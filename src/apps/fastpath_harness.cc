#include "apps/fastpath_harness.h"

#include <chrono>
#include <sstream>

#include "net/headers.h"
#include "sim/fuzz.h" // fnv1a64
#include "sim/trace.h"
#include "util/strings.h"

namespace fld::apps {

namespace {

constexpr uint32_t kServerIp = net::ipv4_addr(10, 0, 0, 1);
constexpr uint32_t kClientIp = net::ipv4_addr(10, 0, 0, 2);

uint64_t
fold(uint64_t h, uint64_t v)
{
    uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = uint8_t(v >> (8 * i));
    return sim::fnv1a64(b, sizeof b, h);
}

uint64_t
nic_drops(const nic::NicStats& st)
{
    return st.drops_no_buffer + st.drops_rule + st.drops_meter +
           st.drops_no_rule;
}

driver::CpuDriverConfig
one_queue_cfg()
{
    driver::CpuDriverConfig cfg;
    cfg.num_queues = 1;
    // Poll-mode endpoints with deep rings: connection storms (10k
    // handshakes in flight) queue instead of tripping the kernel-ish
    // 20 us overload bound, which would shed SYN-ACKs and melt into a
    // retransmit storm.
    cfg.max_app_backlog = sim::microseconds(500);
    return cfg;
}

/** True when the frame belongs to the targeted client port's flow. */
bool
frame_matches_port(const net::Packet& pkt, uint16_t port)
{
    net::ParsedPacket pp = net::parse(pkt);
    if (!pp.tcp)
        return false;
    return pp.tcp->sport == port || pp.tcp->dport == port;
}

} // namespace

// ---------------------------------------------------------------------
// HostStackAfu
// ---------------------------------------------------------------------

HostStackAfu::HostStackAfu(sim::EventQueue& eq, core::FlexDriver& fld,
                           driver::FastPath& fp, uint32_t tx_queue,
                           accel::UnitModel model)
    : Accelerator("hoststack", eq, fld, model), fp_(fp),
      tx_queue_(tx_queue)
{
    fp_.set_tx([this](net::Packet&& f) { return transmit(f); });
}

void
HostStackAfu::process(core::StreamPacket&& pkt)
{
    if (!meta_valid_) {
        // All frames of this stack arrive on one FLD-E queue; its
        // steering metadata is the template for everything we emit.
        meta_ = pkt.meta;
        meta_valid_ = true;
    }
    net::Packet frame(std::move(pkt.data));
    frame.meta.l3_csum_ok = pkt.meta.l3_csum_ok;
    frame.meta.l4_csum_ok = pkt.meta.l4_csum_ok;
    frame.meta.corr = pkt.meta.corr;
    fp_.on_rx(std::move(frame));
}

bool
HostStackAfu::transmit(net::Packet& frame)
{
    core::StreamPacket out;
    // Copy, don't move: when FLD refuses (no credits) the stack keeps
    // the frame in its retry backlog, so it must stay intact here.
    out.data = frame.data;
    out.meta.context_id = meta_.context_id;
    out.meta.next_table = meta_.next_table;
    if (auto* tr = sim::Tracer::active())
        out.meta.corr = tr->next_corr();
    return send(tx_queue_, std::move(out));
}

// ---------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------

std::string
FastPathReport::summary() const
{
    std::ostringstream os;
    os << (ok ? "OK" : "FAIL") << " opened=" << opened
       << " accepted=" << accepted << " closed=" << closed
       << " resets=" << resets << "\n";
    os << "client: bytes=" << client_bytes
       << " frames_tx=" << client_stats.frames_tx
       << " frames_rx=" << client_stats.frames_rx
       << " retx=" << client_stats.retransmits
       << " quiesced=" << client_quiesced << "\n";
    os << "server: bytes=" << server_bytes
       << " frames_tx=" << server_stats.frames_tx
       << " frames_rx=" << server_stats.frames_rx
       << " retx=" << server_stats.retransmits
       << " quiesced=" << server_quiesced << "\n";
    os << "conservation: " << ledger.summary() << "\n";
    os << "faults: " << faults.summary() << "\n";
    os << "flow_hash = "
       << strfmt("%016llx", (unsigned long long)flow_hash) << "\n";
    os << "state_hash = "
       << strfmt("%016llx", (unsigned long long)state_hash) << "\n";
    os << "end_time_ps = " << end_time << "\n";
    for (const auto& v : violations)
        os << "violation: " << v << "\n";
    for (const auto& v : trace_violations)
        os << "trace: " << v << "\n";
    return os.str();
}

// ---------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------

FastPathReport
run_fastpath_scenario(const FastPathHarnessConfig& cfg)
{
    TestbedConfig tb_cfg = cfg.tb;
    tb_cfg.remote = true;
    // The measuring client is a DPDK-style generator on isolated
    // cores (same calibration the echo scenarios use): ~20 ns/packet
    // and negligible jitter, so the server side is what's under test.
    tb_cfg.client_host.jitter_prob = 0.0005;
    tb_cfg.client_host.jitter_min = sim::microseconds(1);
    tb_cfg.client_host.jitter_mean_extra = sim::nanoseconds(500);
    tb_cfg.client_host.rx_packet_cost = sim::nanoseconds(20);
    tb_cfg.client_host.tx_packet_cost = sim::nanoseconds(20);
    Testbed tb(tb_cfg);

    sim::Tracer tracer;
    if (cfg.trace)
        tracer.install();

    // ----- client node: CpuDriver + FastPath + AppEmu ------------
    driver::CpuDriver client_drv(
        "client.app", tb.eq, tb.fabric, tb.client_host_port,
        tb.client_mem, tb.client_arena(32 << 20), 32 << 20,
        *tb.client_nic, Testbed::kClientNicBar, tb.client_host,
        tb.client_app_vport, one_queue_cfg(), Testbed::kClientMemBase);
    tb.install_client_forwarding();
    uint32_t ctir = tb.client_nic->create_tir({{client_drv.rqn(0)}});
    tb.client_nic->set_vport_default_tir(tb.client_app_vport, ctir);

    driver::FastPathConfig client_fp_cfg;
    client_fp_cfg.mac = kClientMac;
    client_fp_cfg.ip = kClientIp;
    client_fp_cfg.conn = cfg.conn;
    client_fp_cfg.slot_bytes = cfg.slot_bytes;
    driver::FastPath client_fp(tb.eq, client_fp_cfg);
    client_fp.set_tx([&](net::Packet&& f) {
        return client_drv.send(0, std::move(f));
    });
    client_drv.set_rx_handler([&](uint32_t, net::Packet&& f) {
        client_fp.on_rx(std::move(f));
    });

    AppEmuConfig app_cfg = cfg.app;
    app_cfg.remote_ip = kServerIp;
    app_cfg.remote_port = cfg.sink.listen_port;
    AppEmu app(tb.eq, client_fp, app_cfg);

    // ----- server node: FLD-driven or CPU-driven stack -----------
    driver::FastPathConfig server_fp_cfg;
    server_fp_cfg.mac = kServerMac;
    server_fp_cfg.ip = kServerIp;
    server_fp_cfg.conn = cfg.conn;
    server_fp_cfg.slot_bytes = cfg.slot_bytes;
    driver::FastPath server_fp(tb.eq, server_fp_cfg);

    std::unique_ptr<HostStackAfu> afu;
    std::unique_ptr<driver::CpuDriver> server_drv;
    if (cfg.mode == FastPathMode::Fld) {
        auto q0 = tb.rt->create_eth_queue(tb.fld_vport, 0,
                                          cfg.fld_rx_buffers);
        afu = std::make_unique<HostStackAfu>(tb.eq, *tb.fld,
                                             server_fp, 0);
        if (tb.fault_plan)
            afu->set_fault_plan(tb.fault_plan.get(),
                                tb.cfg.accel_faults);
        nic::FlowMatch from_wire;
        from_wire.in_vport = nic::kUplinkVport;
        tb.server_nic->add_rule(0, 0, from_wire,
                                {nic::fwd_queue(q0.rqn)});
        tb.route_vport_to_uplink(*tb.server_nic, tb.fld_vport);
    } else {
        server_drv = std::make_unique<driver::CpuDriver>(
            "server.app", tb.eq, tb.fabric, tb.server_host_port,
            tb.server_mem, tb.server_arena(32 << 20), 32 << 20,
            *tb.server_nic, Testbed::kServerNicBar, tb.server_host,
            tb.server_app_vport, one_queue_cfg());
        uint32_t stir =
            tb.server_nic->create_tir({{server_drv->rqn(0)}});
        tb.server_nic->set_vport_default_tir(tb.server_app_vport,
                                             stir);
        tb.route_uplink_to_vport(*tb.server_nic, tb.server_app_vport);
        tb.route_vport_to_uplink(*tb.server_nic, tb.server_app_vport);
        server_fp.set_tx([&](net::Packet&& f) {
            return server_drv->send(0, std::move(f));
        });
        server_drv->set_rx_handler([&](uint32_t, net::Packet&& f) {
            server_fp.on_rx(std::move(f));
        });
    }
    SinkApp sink(tb.eq, server_fp, cfg.sink);

    if (cfg.preseed_arp) {
        client_fp.add_arp_entry(kServerIp, kServerMac);
        server_fp.add_arp_entry(kClientIp, kClientMac);
    }
    if (cfg.fault_target_port && tb.wire)
        tb.wire->set_fault_filter(
            [port = cfg.fault_target_port](const net::Packet& p) {
                return frame_matches_port(p, port);
            });

    tb.eq.run(); // settle descriptor prefetch before traffic
    uint64_t traffic_events0 = tb.eq.executed_total();
    auto traffic_wall0 = std::chrono::steady_clock::now();
    app.start();
    tb.eq.run();
    double traffic_wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              traffic_wall0)
                              .count();

    if (cfg.trace)
        tracer.uninstall();

    // ----- fold the run into the report --------------------------
    FastPathReport r;
    r.end_time = tb.eq.now();
    r.events = tb.eq.executed_total() - traffic_events0;
    r.run_wall_sec = traffic_wall;
    r.client_stats = client_fp.stats();
    r.server_stats = server_fp.stats();
    r.opened = r.client_stats.conns_opened;
    r.accepted = sink.accepted();
    r.closed = sink.closed();
    r.resets = sink.resets();
    r.client_quiesced = client_fp.quiesced();
    r.server_quiesced = server_fp.quiesced();

    for (const ConnOutcome& out : app.outcomes()) {
        FlowDigest f;
        f.bytes = out.sent_bytes;
        f.digest = out.sent_digest;
        f.opened = out.opened;
        f.closed = out.closed;
        f.reset = out.reset;
        r.client_flows[out.local_port] = f;
        r.client_bytes += out.sent_bytes;
    }
    for (const auto& [port, flow] : sink.flows()) {
        FlowDigest f;
        f.bytes = flow.bytes;
        f.digest = flow.digest;
        f.opened = true;
        f.closed = flow.closed;
        f.reset = flow.reset;
        r.server_flows[port] = f;
        r.server_bytes += flow.bytes;
    }

    // Lifecycle / exactly-once oracle.
    const bool faulty = tb.fault_plan != nullptr;
    if (!app.done())
        r.violations.push_back("client workload did not finish");
    for (const ConnOutcome& out : app.outcomes()) {
        std::string who = strfmt("conn slot=%u inc=%u port=%u",
                                 out.slot, out.incarnation,
                                 out.local_port);
        if (!out.closed && !out.reset) {
            r.violations.push_back(who + ": no terminal state");
            continue;
        }
        if (!faulty && out.reset) {
            r.violations.push_back(who + ": reset without faults");
            continue;
        }
        if (out.closed && !out.reset) {
            // A clean close means every byte was acked, and go-back-N
            // exactly-once means the server saw the same stream.
            if (!out.opened)
                r.violations.push_back(who + ": closed but not opened");
            if (out.acked_bytes != out.sent_bytes)
                r.violations.push_back(strfmt(
                    "%s: acked %llu != sent %llu", who.c_str(),
                    (unsigned long long)out.acked_bytes,
                    (unsigned long long)out.sent_bytes));
            auto it = r.server_flows.find(out.local_port);
            if (it == r.server_flows.end()) {
                if (out.sent_bytes)
                    r.violations.push_back(who + ": no server flow");
            } else if (it->second.bytes != out.sent_bytes ||
                       it->second.digest != out.sent_digest) {
                r.violations.push_back(strfmt(
                    "%s: server saw %llu bytes digest %016llx, "
                    "client sent %llu bytes digest %016llx",
                    who.c_str(), (unsigned long long)it->second.bytes,
                    (unsigned long long)it->second.digest,
                    (unsigned long long)out.sent_bytes,
                    (unsigned long long)out.sent_digest));
            }
        } else {
            // Reset mid-stream: the server may hold a prefix, never
            // more than was sent (duplicates must not inflate it).
            auto it = r.server_flows.find(out.local_port);
            if (it != r.server_flows.end() &&
                it->second.bytes > out.sent_bytes)
                r.violations.push_back(strfmt(
                    "%s: server delivered %llu > sent %llu",
                    who.c_str(), (unsigned long long)it->second.bytes,
                    (unsigned long long)out.sent_bytes));
        }
    }
    if (!faulty) {
        uint32_t opened_outcomes = 0;
        for (const ConnOutcome& out : app.outcomes())
            opened_outcomes += out.opened;
        if (r.accepted != opened_outcomes)
            r.violations.push_back(strfmt(
                "server accepted %u != client opened %u", r.accepted,
                opened_outcomes));
    }

    // Descriptor-leak oracle: both stacks fully drained.
    if (!r.client_quiesced)
        r.violations.push_back("client stack not quiesced");
    if (!r.server_quiesced)
        r.violations.push_back("server stack not quiesced");

    // Frame-conservation ledger.
    if (tb.fault_plan)
        r.faults = tb.fault_plan->counters();
    r.ledger.tx = r.client_stats.frames_tx + r.server_stats.frames_tx;
    r.ledger.rx = r.client_stats.frames_rx + r.server_stats.frames_rx;
    r.ledger.duplicates = r.faults.wire_duplicates;
    r.ledger.accounted_losses =
        r.faults.wire_drops + r.faults.wire_corruptions +
        nic_drops(tb.server_nic->stats()) +
        nic_drops(tb.client_nic->stats()) +
        client_drv.stats().rx_overload_dropped;
    if (afu)
        r.ledger.accounted_losses += afu->stats().dropped_overload +
                                     afu->stats().dropped_invalid;
    if (server_drv)
        r.ledger.accounted_losses +=
            server_drv->stats().rx_overload_dropped;
    if (std::string lv = r.ledger.check(); !lv.empty())
        r.violations.push_back("conservation: " + lv);

    if (cfg.trace) {
        sim::TraceChecker checker;
        r.trace_violations = checker.check(tracer.events());
    }

    // Flow hash: per-flow digests from both ends, in port order.
    uint64_t h = sim::kFnvBasis;
    for (const auto& [port, f] : r.client_flows) {
        h = fold(h, port);
        h = fold(h, f.bytes);
        h = fold(h, f.digest);
        h = fold(h, uint64_t(f.opened) | uint64_t(f.closed) << 1 |
                        uint64_t(f.reset) << 2);
    }
    for (const auto& [port, f] : r.server_flows) {
        h = fold(h, port);
        h = fold(h, f.bytes);
        h = fold(h, f.digest);
        h = fold(h, uint64_t(f.closed) | uint64_t(f.reset) << 1);
    }
    r.flow_hash = h;

    // State hash: every observable counter folded in — two runs of
    // the same config must reproduce this bit-for-bit.
    for (const driver::FastPathStats* st :
         {&r.client_stats, &r.server_stats}) {
        h = fold(h, st->frames_tx);
        h = fold(h, st->frames_rx);
        h = fold(h, st->segments_sent);
        h = fold(h, st->segments_received);
        h = fold(h, st->retransmits);
        h = fold(h, st->pure_acks_sent);
        h = fold(h, st->dup_segments);
        h = fold(h, st->ooo_segments);
        h = fold(h, st->tx_descs);
        h = fold(h, st->rx_descs);
        h = fold(h, st->tx_done_descs);
        h = fold(h, st->rx_ring_stalls);
        h = fold(h, st->driver_backpressure);
    }
    h = fold(h, r.opened);
    h = fold(h, r.accepted);
    h = fold(h, r.closed);
    h = fold(h, r.resets);
    h = fold(h, r.faults.total());
    h = fold(h, r.ledger.tx);
    h = fold(h, r.ledger.rx);
    h = fold(h, uint64_t(r.end_time));
    r.state_hash = h;

    r.ok = r.violations.empty() && r.trace_violations.empty();
    return r;
}

} // namespace fld::apps
