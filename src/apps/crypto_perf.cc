#include "apps/crypto_perf.h"

#include "nic/config.h"

namespace fld::apps {

CryptoPerfClient::CryptoPerfClient(sim::EventQueue& eq,
                                   driver::RdmaClient& client,
                                   CryptoPerfConfig cfg)
    : eq_(eq), client_(client), cfg_(cfg), rng_(cfg.seed)
{
    for (auto& b : key_)
        b = uint8_t(rng_.next());
    client_.set_msg_handler(
        [this](uint32_t id, std::vector<uint8_t>&& msg) {
            on_response(id, std::move(msg));
        });
}

void
CryptoPerfClient::start(sim::TimePs warmup, sim::TimePs duration)
{
    running_ = true;
    measure_start_ = eq_.now() + warmup;
    end_time_ = eq_.now() + duration;
    if (cfg_.offered_gbps > 0) {
        schedule_next_open_loop();
    } else {
        for (uint32_t i = 0; i < cfg_.window; ++i)
            send_one();
    }
}

void
CryptoPerfClient::send_one()
{
    if (!running_ || eq_.now() >= end_time_) {
        running_ = false;
        return;
    }
    std::vector<uint8_t> plaintext(cfg_.request_payload);
    for (auto& b : plaintext)
        b = uint8_t(rng_.next());

    accel::ZucHeader hdr;
    hdr.op = cfg_.op;
    hdr.key = key_;
    hdr.count = next_id_;
    hdr.bearer = 3;
    hdr.direction = 0;
    hdr.length_bits = uint32_t(plaintext.size() * 8);

    uint32_t id = next_id_++;
    if (cfg_.verify)
        inflight_[id] = {eq_.now(), plaintext};
    else
        inflight_[id] = {eq_.now(), {}};
    client_.post_send(accel::zuc_request(hdr, plaintext), id);
}

void
CryptoPerfClient::schedule_next_open_loop()
{
    if (!running_ || eq_.now() >= end_time_) {
        running_ = false;
        return;
    }
    send_one();
    uint64_t msg_bytes = accel::kZucHeaderLen + cfg_.request_payload;
    sim::TimePs gap = sim::serialize_time(msg_bytes, cfg_.offered_gbps);
    eq_.schedule_in(gap, [this] { schedule_next_open_loop(); });
}

void
CryptoPerfClient::on_response(uint32_t msg_id,
                              std::vector<uint8_t>&& msg)
{
    auto it = inflight_.find(msg_id);
    if (it == inflight_.end())
        return;
    auto [sent_at, plaintext] = std::move(it->second);
    inflight_.erase(it);

    ++responses_;
    last_response_ = eq_.now();
    if (eq_.now() >= measure_start_ && eq_.now() <= end_time_) {
        meter_.record(eq_.now(), cfg_.request_payload);
        latency_us_.add(sim::to_us(eq_.now() - sent_at));
    }

    if (cfg_.verify && cfg_.op == accel::ZucOp::Eea3Crypt) {
        auto parsed = accel::zuc_parse(msg);
        if (parsed && parsed->first.status == accel::ZucStatus::Ok) {
            auto cipher = parsed->second;
            crypto::eea3_crypt(key_, parsed->first.count,
                               parsed->first.bearer,
                               parsed->first.direction, cipher.data(),
                               cipher.size() * 8);
            if (cipher == plaintext)
                ++verified_ok_;
            else
                ++verified_bad_;
        } else {
            ++verified_bad_;
        }
    }

    if (cfg_.offered_gbps <= 0 && running_)
        send_one();
}

} // namespace fld::apps
