/**
 * @file
 * Parallel seed-sweep executor for the scenario fuzzer.
 *
 * Shards a contiguous seed range across a worker thread pool. Each
 * worker owns a private ScenarioFuzzer + FuzzRunner (and thus its own
 * testbeds, RNGs and thread-local Tracer), so workers share nothing
 * but the seed counter and the merged result.
 *
 * Determinism contract: for a fixed seed range, the sweep's verdict is
 * identical for any --jobs value. Each seed's run is a pure function
 * of the seed; workers claim seed indices from an atomic counter and
 * report failures by *lowest index*, which is exactly the seed a
 * serial sweep would have stopped at. Workers stop claiming indices
 * above the lowest failure seen so far, so a parallel sweep does not
 * burn time past the answer. Only wall-clock ordering of progress
 * callbacks varies with jobs; verdicts, transcripts and artifacts do
 * not. Budget-bounded sweeps (budget_sec > 0) are the documented
 * exception: how many seeds fit in the budget is inherently
 * timing-dependent, so only per-seed results (not the count) are
 * stable.
 */
#ifndef FLD_APPS_FUZZ_SWEEP_H
#define FLD_APPS_FUZZ_SWEEP_H

#include <cstdint>
#include <functional>

#include "apps/fuzz_runner.h"
#include "sim/fuzz.h"

namespace fld::apps {

struct SweepOptions
{
    uint64_t seed0 = 1;
    uint64_t seeds = 100;
    /** > 0: stop claiming new seeds after this many wall-clock
     *  seconds instead of after `seeds` (soak mode). */
    double budget_sec = 0;
    /** Worker threads; clamped to at least 1. */
    unsigned jobs = 1;
    /** Per-worker runner configuration (each worker constructs its
     *  own FuzzRunner from this). */
    FuzzRunOptions run;
    /** Called under a mutex after every completed seed, in completion
     *  order (which varies with jobs; seed identity does not).
     *  `done` is the number of seeds completed so far. */
    std::function<void(uint64_t done, uint64_t seed,
                       const sim::FuzzScenario&, const FuzzVerdict&)>
        on_result;
    /** Test seam: when set, used instead of FuzzRunner::run so merge
     *  logic can be exercised with synthetic failures. Must be
     *  thread-safe and a pure function of the scenario. */
    std::function<FuzzVerdict(const sim::FuzzScenario&)> run_override;
};

struct SweepResult
{
    /** Seeds actually run (may exceed the failing index: workers past
     *  it finish their current seed before stopping). */
    uint64_t ran = 0;
    bool found_failure = false;
    /** Lowest failing seed — identical to the seed a serial sweep
     *  stops at. Valid only when found_failure. */
    uint64_t failing_seed = 0;
    sim::FuzzScenario failing_scenario;
    FuzzVerdict failing_verdict;
};

/** Run the sweep. Blocks until all workers have joined. */
SweepResult run_sweep(const SweepOptions& opt);

} // namespace fld::apps

#endif // FLD_APPS_FUZZ_SWEEP_H
