#include "apps/rpc_client.h"

#include <algorithm>
#include <cstring>

#include "apps/rpc_service.h" // rpc_execute (shadow oracle), method ids
#include "sim/fuzz.h"         // fnv1a64
#include "util/logging.h"
#include "util/strings.h"

namespace fld::apps {

namespace {

uint64_t
fold_u64(uint64_t h, uint64_t v)
{
    uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = uint8_t(v >> (8 * i));
    return sim::fnv1a64(b, sizeof b, h);
}

} // namespace

std::vector<uint8_t>
build_defrag_payload(Rng& rng, uint32_t datum_len)
{
    std::vector<uint8_t> datum(datum_len);
    for (auto& b : datum)
        b = uint8_t(rng.next());
    // Slice into chunks of 1..255 bytes, then rotate the record order
    // so the handler sees out-of-order offsets.
    struct Rec
    {
        uint16_t off, len;
    };
    std::vector<Rec> recs;
    for (uint32_t off = 0; off < datum_len;) {
        uint32_t len = std::min<uint32_t>(
            datum_len - off, 1 + uint32_t(rng.uniform(255)));
        recs.push_back({uint16_t(off), uint16_t(len)});
        off += len;
    }
    size_t rot = recs.empty() ? 0 : rng.uniform(uint64_t(recs.size()));
    std::rotate(recs.begin(), recs.begin() + ptrdiff_t(rot),
                recs.end());
    std::vector<uint8_t> out;
    out.reserve(datum_len + recs.size() * 4);
    for (const Rec& r : recs) {
        out.push_back(uint8_t(r.off));
        out.push_back(uint8_t(r.off >> 8));
        out.push_back(uint8_t(r.len));
        out.push_back(uint8_t(r.len >> 8));
        out.insert(out.end(), datum.begin() + r.off,
                   datum.begin() + r.off + r.len);
    }
    return out;
}

RpcClientPool::RpcClientPool(sim::EventQueue& eq, driver::FastPath& fp,
                             RpcClientConfig cfg)
    : eq_(eq), fp_(fp), cfg_(cfg), latency_fold_(sim::kFnvBasis)
{
    app_ = fp_.register_app(cfg_.tx_ring_entries, cfg_.rx_ring_entries,
                            [this] { on_notify(); });
    slots_.resize(cfg_.connections);
    for (uint32_t i = 0; i < cfg_.connections; ++i) {
        slots_[i].port = uint16_t(cfg_.base_port + i);
        // Per-slot stream: draw order is fixed by the slot's own
        // serial request loop, so the sequence is identical across
        // FLD- and CPU-served runs regardless of timing.
        slots_[i].rng.reseed(cfg_.seed * 0x9e3779b97f4a7c15ull +
                             i * 0xbf58476d1ce4e5b9ull + 1);
    }
}

void
RpcClientPool::start()
{
    open_next_batch();
}

void
RpcClientPool::open_next_batch()
{
    uint32_t batch = std::max(1u, cfg_.open_batch);
    for (uint32_t n = 0; n < batch && opens_issued_ < cfg_.connections;
         ++n) {
        uint32_t i = opens_issued_++;
        Slot& s = slots_[i];
        s.conn_id = fp_.open(app_, i, cfg_.remote_ip, cfg_.remote_port,
                             s.port);
        if (s.conn_id == driver::FastPath::kNoConn) {
            errors_.push_back(strfmt("slot %u: open() refused", i));
            finish_slot(i, /*aborted=*/true);
            continue;
        }
        by_conn_[s.conn_id] = i;
    }
    if (opens_issued_ < cfg_.connections)
        eq_.schedule_in(cfg_.open_interval,
                        [this] { open_next_batch(); });
}

void
RpcClientPool::on_notify()
{
    if (service_pending_)
        return;
    service_pending_ = true;
    eq_.schedule_in(0, [this] {
        service_pending_ = false;
        service();
    });
}

void
RpcClientPool::service()
{
    while (auto m = fp_.poll_ctrl(app_))
        handle_ctrl(*m);

    // Drain the RX ring: response bytes and TxDone bumps.
    driver::DescRing& rx = fp_.rx_ring(app_);
    const uint8_t* arena = fp_.rx_arena(app_);
    bool released = false;
    while (!rx.empty()) {
        driver::RingDesc d;
        uint32_t slot = rx.pop(&d);
        if (d.type == driver::kDescData) {
            auto it = by_conn_.find(uint32_t(d.opaque));
            if (it != by_conn_.end()) {
                Slot& s = slots_[it->second];
                if (!s.decoder.feed(arena + d.addr, d.len) &&
                    !s.error_counted) {
                    ++stats_.decode_errors;
                    s.error_counted = true;
                    errors_.push_back(strfmt(
                        "slot %u: response stream poisoned (%s)",
                        it->second,
                        rpc::to_string(s.decoder.error_code())));
                }
                rpc::Frame f;
                while (s.decoder.next(&f))
                    on_response(it->second, std::move(f));
            }
        }
        rx.release(slot);
        released = true;
    }
    if (released)
        fp_.rx_doorbell(app_);

    pump_pending();
}

void
RpcClientPool::handle_ctrl(const driver::CtrlMsg& m)
{
    auto it = by_conn_.find(m.conn_id);
    if (it == by_conn_.end())
        return;
    uint32_t i = it->second;
    Slot& s = slots_[i];
    switch (m.type) {
    case driver::CtrlMsg::Type::Opened:
        ++stats_.opened;
        s.opened = true;
        schedule_next_request(i);
        break;
    case driver::CtrlMsg::Type::Closed:
        if (!s.terminal) {
            ++stats_.closed;
            finish_slot(i, /*aborted=*/false);
        }
        break;
    case driver::CtrlMsg::Type::Reset:
        if (!s.terminal)
            finish_slot(i, /*aborted=*/true);
        break;
    case driver::CtrlMsg::Type::Accepted:
        break; // clients never listen
    }
}

void
RpcClientPool::schedule_next_request(uint32_t slot_index)
{
    Slot& s = slots_[slot_index];
    if (s.terminal)
        return;
    if (s.requests_done >= cfg_.requests_per_conn) {
        fp_.close(s.conn_id);
        return;
    }
    sim::TimePs think = 0;
    if (cfg_.think_mean > 0)
        think = sim::TimePs(
            s.rng.exponential(double(cfg_.think_mean)));
    eq_.schedule_in(think,
                    [this, slot_index] { build_request(slot_index); });
}

void
RpcClientPool::build_request(uint32_t slot_index)
{
    Slot& s = slots_[slot_index];
    if (s.terminal)
        return;

    // Draw the method from the enabled set, then the payload.
    std::vector<uint8_t> enabled;
    for (uint8_t m = 0; m < kRpcMethodCount; ++m)
        if (cfg_.methods_mask & (1u << m))
            enabled.push_back(m);
    uint8_t method =
        enabled.empty() ? kRpcEcho
                        : enabled[s.rng.uniform(enabled.size())];
    uint32_t len = cfg_.payload_min;
    if (cfg_.payload_max > cfg_.payload_min)
        len = uint32_t(
            s.rng.range(cfg_.payload_min, cfg_.payload_max));
    std::vector<uint8_t> payload;
    if (method == kRpcDefrag) {
        payload = build_defrag_payload(s.rng, len);
    } else {
        payload.resize(len);
        for (auto& b : payload)
            b = uint8_t(s.rng.next());
    }

    s.req_id = uint64_t(s.port) << 32 | s.next_seq++;
    s.req_method = method;
    s.req_payload = std::move(payload);
    s.waiting = true;
    s.t0 = eq_.now(); // latency includes ring/backpressure time
    s.pending_out = rpc::encode_frame(method, s.req_id,
                                      s.req_payload.data(),
                                      s.req_payload.size());
    s.pending_off = 0;
    ++stats_.requests_sent;
    ++stats_.per_method[method & 7];
    stats_.request_bytes += s.req_payload.size();

    bool posted = false;
    if (!pump_slot(slot_index, posted))
        pending_slots_.push_back(slot_index);
    if (posted)
        fp_.doorbell(app_);
}

bool
RpcClientPool::pump_slot(uint32_t slot_index, bool& posted_any)
{
    Slot& s = slots_[slot_index];
    if (s.terminal) {
        s.pending_out.clear();
        s.pending_off = 0;
        return true;
    }
    driver::DescRing& ring = fp_.tx_ring(app_);
    uint8_t* arena = fp_.tx_arena(app_);
    const uint32_t slot_bytes = fp_.slot_bytes();
    const uint32_t chunk_max =
        cfg_.tx_chunk_bytes
            ? std::min(cfg_.tx_chunk_bytes, slot_bytes)
            : slot_bytes;

    while (s.pending_off < s.pending_out.size()) {
        uint32_t remaining =
            uint32_t(s.pending_out.size() - s.pending_off);
        uint32_t chunk = std::min(remaining, chunk_max);
        driver::RingDesc d;
        d.type = driver::kDescData;
        d.opaque = s.conn_id;
        d.len = chunk;
        d.addr = uint64_t(ring.next_slot()) * slot_bytes;
        if (chunk == remaining)
            d.flags = driver::kDescFlagPush;
        if (!ring.post(d)) {
            if (posted_any) {
                fp_.doorbell(app_);
                posted_any = false;
                d.addr = uint64_t(ring.next_slot()) * slot_bytes;
            }
            if (!ring.post(d)) {
                ++stats_.tx_ring_full;
                return false; // retried from the next service()
            }
        }
        std::memcpy(arena + d.addr,
                    s.pending_out.data() + s.pending_off, chunk);
        posted_any = true;
        s.pending_off += chunk;
    }
    s.pending_out.clear();
    s.pending_off = 0;
    return true;
}

void
RpcClientPool::pump_pending()
{
    bool posted = false;
    size_t n = pending_slots_.size();
    for (size_t k = 0; k < n; ++k) {
        uint32_t i = pending_slots_.front();
        pending_slots_.pop_front();
        if (!pump_slot(i, posted))
            pending_slots_.push_back(i);
    }
    if (posted)
        fp_.doorbell(app_);
}

void
RpcClientPool::on_response(uint32_t slot_index, rpc::Frame&& f)
{
    Slot& s = slots_[slot_index];
    if (!s.waiting || f.request_id != s.req_id) {
        ++stats_.protocol_errors;
        errors_.push_back(strfmt(
            "slot %u: unexpected response id %016llx (waiting=%d)",
            slot_index, (unsigned long long)f.request_id,
            int(s.waiting)));
        return;
    }
    s.waiting = false;

    // Shadow oracle: the response must equal the reference transform
    // of the request we actually sent — unconditionally, faults or
    // not (TCP either delivers the stream intact or resets).
    std::vector<uint8_t> expect =
        rpc_execute(s.req_method, s.req_id, s.req_payload.data(),
                    s.req_payload.size());
    if (f.payload != expect) {
        ++stats_.conformance_errors;
        errors_.push_back(strfmt(
            "slot %u req %016llx (%s): response diverges from "
            "shadow oracle (%zu vs %zu bytes)",
            slot_index, (unsigned long long)s.req_id,
            rpc_method_name(s.req_method), f.payload.size(),
            expect.size()));
    }

    sim::TimePs lat = eq_.now() - s.t0;
    latency_.add(sim::to_us(lat));
    latency_fold_ = fold_u64(latency_fold_, uint64_t(lat));
    digests_[s.req_id] =
        sim::fnv1a64(f.payload.data(), f.payload.size());
    ++stats_.responses;
    stats_.response_bytes += f.payload.size();
    ++s.requests_done;
    schedule_next_request(slot_index);
}

void
RpcClientPool::finish_slot(uint32_t slot_index, bool aborted)
{
    Slot& s = slots_[slot_index];
    if (s.terminal)
        return;
    s.terminal = true;
    s.waiting = false;
    s.pending_out.clear();
    s.pending_off = 0;
    if (aborted)
        ++stats_.aborted;
    ++done_count_;
}

} // namespace fld::apps
