#include "apps/churn_harness.h"

#include "util/bitops.h"
#include "util/strings.h"

namespace fld::apps {

namespace {

constexpr const char* kActiveCat = "flow active state (24 B/flow)";
constexpr size_t kMaxViolations = 32;

core::FlowDirectoryConfig
resolve_directory(const ChurnHarnessConfig& cfg)
{
    core::FlowDirectoryConfig d = cfg.directory;
    if (d.flow_capacity == 0) {
        uint64_t target = uint64_t(cfg.churn.tenants) *
                          cfg.churn.flows_per_tenant;
        // Headroom over the steady population: churn overshoots by a
        // flow or two, and rejects are a violation, not a shrug.
        d.flow_capacity = round_up_pow2(target + target / 8 + 16);
    }
    if (d.tenants < cfg.churn.tenants)
        d.tenants = cfg.churn.tenants;
    return d;
}

uint64_t
fnv1a(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

ChurnHarness::ChurnHarness(ChurnHarnessConfig cfg)
    : cfg_(cfg), gen_(cfg.churn), dir_(resolve_directory(cfg))
{
    dir_.attach_budget(budget_);
    if (cfg_.tenant_rate_gbps > 0) {
        shapers_.assign(cfg_.churn.tenants,
                        sim::TokenBucket(cfg_.tenant_rate_gbps,
                                         cfg_.tenant_burst_bytes));
    }
    if (cfg_.shadow_oracle)
        shadow_.reserve(gen_.target_population());
}

void
ChurnHarness::apply(const sim::ChurnEvent& ev)
{
    tally_.events++;
    tally_.end_time = ev.time;
    auto violate = [&](std::string why) {
        if (tally_.violations.size() < kMaxViolations)
            tally_.violations.push_back(std::move(why));
    };

    switch (ev.op) {
    case sim::ChurnOp::Open: {
        if (ev.fault) {
            tally_.faults_injected++;
            if (dir_.open_flow(ev.key, ev.tenant))
                violate(strfmt("duplicate open of key %llx was "
                               "accepted",
                               (unsigned long long)ev.key));
            return;
        }
        if (dir_.open_flow(ev.key, ev.tenant)) {
            tally_.opens++;
            budget_.add(kActiveCat,
                        core::FlowDirectory::kFlowStateBytes);
            if (cfg_.shadow_oracle)
                shadow_.emplace(ev.key, ShadowFlow{ev.tenant});
        } else {
            tally_.rejects++;
            rejected_keys_.insert(ev.key);
        }
        return;
    }
    case sim::ChurnOp::Close: {
        if (ev.fault) {
            tally_.faults_injected++;
            if (dir_.close_flow(ev.key))
                violate(strfmt("stray close of key %llx was accepted",
                               (unsigned long long)ev.key));
            return;
        }
        if (rejected_keys_.erase(ev.key)) {
            if (dir_.close_flow(ev.key))
                violate("close of a rejected-open key succeeded");
            return;
        }
        if (!dir_.close_flow(ev.key)) {
            violate(strfmt("close of live key %llx failed",
                           (unsigned long long)ev.key));
            return;
        }
        tally_.closes++;
        if (!budget_.sub(kActiveCat,
                         core::FlowDirectory::kFlowStateBytes))
            violate("active-state budget underflowed on close");
        if (cfg_.shadow_oracle)
            shadow_.erase(ev.key);
        return;
    }
    case sim::ChurnOp::Packet: {
        if (rejected_keys_.count(ev.key))
            return;
        if (!shapers_.empty() &&
            !shapers_[ev.tenant % shapers_.size()].try_consume(
                ev.time, ev.bytes)) {
            tally_.shaped_drops++;
            return;
        }
        if (!dir_.record(ev.key, ev.bytes)) {
            violate(strfmt("record on live key %llx failed",
                           (unsigned long long)ev.key));
            return;
        }
        tally_.packets++;
        tally_.accepted_bytes += ev.bytes;
        if (cfg_.shadow_oracle) {
            ShadowFlow& sf = shadow_[ev.key];
            sf.packets++;
            sf.bytes += ev.bytes;
        }
        return;
    }
    }
}

void
ChurnHarness::ramp()
{
    while (!gen_.ramp_done())
        apply(gen_.next());
}

void
ChurnHarness::step(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        apply(gen_.next());
}

ChurnReport
ChurnHarness::report()
{
    ChurnReport r = tally_;
    r.final_live = dir_.size();
    auto violate = [&](std::string why) {
        if (r.violations.size() < kMaxViolations)
            r.violations.push_back(std::move(why));
    };

    // (c) Stat conservation.
    uint64_t open_sum = 0;
    for (const auto& ts : dir_.tenants())
        open_sum += ts.flows_open;
    if (open_sum != dir_.size())
        violate(strfmt("tenant open-flow sum %llu != directory size "
                       "%zu",
                       (unsigned long long)open_sum, dir_.size()));
    const auto& ds = dir_.stats();
    if (ds.opens != ds.closes + dir_.size())
        violate("opens != closes + live");

    // (a) Shadow equivalence.
    if (cfg_.shadow_oracle) {
        if (shadow_.size() != dir_.size())
            violate(strfmt("shadow size %zu != directory size %zu",
                           shadow_.size(), dir_.size()));
        for (const auto& [key, sf] : shadow_) {
            auto info = dir_.find(key);
            if (!info) {
                violate(strfmt("flow %llx lost by directory",
                               (unsigned long long)key));
                continue;
            }
            if (info->tenant != sf.tenant ||
                info->packets != sf.packets ||
                info->bytes != sf.bytes) {
                violate(strfmt("flow %llx diverged from shadow "
                               "(pkts %llu/%llu bytes %llu/%llu)",
                               (unsigned long long)key,
                               (unsigned long long)info->packets,
                               (unsigned long long)sf.packets,
                               (unsigned long long)info->bytes,
                               (unsigned long long)sf.bytes));
            }
            if (r.violations.size() >= kMaxViolations)
                break;
        }
    }

    // (d) Budget liveness + model reconciliation.
    uint64_t want_active =
        uint64_t(dir_.size()) * core::FlowDirectory::kFlowStateBytes;
    if (budget_.of(kActiveCat) != want_active)
        violate(strfmt("active-state budget %llu != live flows x 24 "
                       "= %llu",
                       (unsigned long long)budget_.of(kActiveCat),
                       (unsigned long long)want_active));
    if (budget_.underflows() != 0)
        violate("budget underflowed during churn");
    if (budget_.total() != dir_.memory_bytes() + want_active)
        violate("budget total != provisioned + active bytes");
    if (std::string why = dir_.reconcile_with_model(
            cfg_.model_tolerance);
        !why.empty())
        violate(std::move(why));

    // Deterministic digest over everything externally observable.
    uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a(h, dir_.size());
    h = fnv1a(h, ds.opens);
    h = fnv1a(h, ds.closes);
    h = fnv1a(h, ds.packets);
    h = fnv1a(h, ds.bytes);
    for (const auto& ts : dir_.tenants()) {
        h = fnv1a(h, ts.flows_open);
        h = fnv1a(h, ts.packets);
        h = fnv1a(h, ts.bytes);
    }
    r.state_hash = h;
    return r;
}

ChurnReport
ChurnHarness::run(uint64_t steady_events)
{
    ramp();
    step(steady_events);
    return report();
}

} // namespace fld::apps
