/**
 * @file
 * Application emulation over the host fast path's ring ABI.
 *
 * AppEmu plays the client: it opens N connections through the
 * slow path (staggered in batches so SYN bursts don't swamp small
 * driver rings), streams a deterministic byte pattern through the TX
 * descriptor ring — closed-loop (next request waits for the previous
 * one's TxDone completion) or open-loop (fixed pacing, ring
 * backpressure permitting) — then closes, optionally reopening each
 * connection for several churn incarnations.
 *
 * SinkApp plays the server: it listens for passive opens, drains the
 * RX ring (optionally with a per-wakeup delay to model a slow
 * application and exercise ring backpressure), and keeps a per-flow
 * FNV digest of delivered bytes. Client-side sent digests vs
 * server-side delivered digests are the exactly-once oracle, and the
 * same digests compared across FLD-driven and CPU-driven runs are the
 * differential oracle.
 *
 * Both apps do all ring work from scheduled events (never from inside
 * the stack's notify callback) so stack code never re-enters itself.
 */
#ifndef FLD_APPS_APP_EMU_H
#define FLD_APPS_APP_EMU_H

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "driver/fastpath.h"
#include "sim/event_queue.h"

namespace fld::apps {

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

struct AppEmuConfig
{
    uint32_t connections = 8;
    /** Application writes per connection incarnation. */
    uint32_t requests_per_conn = 4;
    /** Bytes per write (clamped to the fast path's slot size). */
    uint32_t request_bytes = 512;
    /** Closed loop: next request waits for the previous TxDone.
     *  Open loop: requests go out on a fixed cadence. */
    bool closed_loop = true;
    sim::TimePs send_interval = sim::microseconds(2); ///< open loop
    /** Stagger opens: this many per interval. */
    uint32_t open_batch = 32;
    sim::TimePs open_interval = sim::microseconds(10);
    /** Extra open/close incarnations per connection slot. */
    uint32_t churn_cycles = 0;
    sim::TimePs reopen_delay = sim::microseconds(50);

    uint16_t base_port = 20000;
    uint32_t remote_ip = 0;
    uint16_t remote_port = 7000;
    uint32_t tx_ring_entries = 64;
    uint32_t rx_ring_entries = 64;
};

/** Outcome of one connection incarnation. */
struct ConnOutcome
{
    uint16_t local_port = 0;
    uint32_t slot = 0;
    uint32_t incarnation = 0;
    uint64_t sent_bytes = 0;
    uint64_t acked_bytes = 0; ///< confirmed by TxDone completions
    uint64_t sent_digest = 0; ///< FNV over the bytes, in write order
    bool opened = false;
    bool closed = false;
    bool reset = false;
};

class AppEmu
{
  public:
    AppEmu(sim::EventQueue& eq, driver::FastPath& fp,
           AppEmuConfig cfg);

    /** Kick off the staggered opens. */
    void start();

    /** All incarnations reached a terminal state (closed or reset). */
    bool done() const { return done_count_ == total_incarnations_; }

    const std::vector<ConnOutcome>& outcomes() const
    {
        return outcomes_;
    }
    uint64_t doorbells() const { return doorbells_; }
    uint64_t tx_ring_full() const { return tx_ring_full_; }
    uint32_t app_id() const { return app_; }

    /** Deterministic payload byte for (slot, incarnation, req, j). */
    static uint8_t pattern_byte(uint32_t slot, uint32_t inc,
                                uint32_t req, uint32_t j)
    {
        return uint8_t((slot * 131) ^ (inc * 53) ^ (req * 29) ^
                       (j * 7));
    }

  private:
    /** Live state of one connection slot's current incarnation. */
    struct Slot
    {
        uint32_t conn_id = driver::FastPath::kNoConn;
        uint32_t incarnation = 0;
        uint32_t outcome_index = 0;
        uint32_t requests_posted = 0;
        uint64_t inflight_bytes = 0; ///< posted, TxDone not yet seen
        bool opened = false;
        bool finished = false; ///< all requests posted and acked
    };

    void open_next_batch();
    void pacing_tick();
    void on_notify();
    void service();
    void handle_ctrl(const driver::CtrlMsg& m);
    void pump_sends();
    void enqueue_send(uint32_t slot_index);
    bool drain_send_queue();
    bool post_request(uint32_t slot_index);
    void maybe_close(uint32_t slot_index);
    void open_slot(uint32_t slot_index, uint32_t incarnation);
    uint16_t port_for(uint32_t slot_index, uint32_t incarnation) const;

    sim::EventQueue& eq_;
    driver::FastPath& fp_;
    AppEmuConfig cfg_;
    uint32_t app_ = 0;

    std::vector<Slot> slots_;
    std::map<uint32_t, uint32_t> by_conn_; ///< conn_id -> slot index
    /** Closed loop: slots wanting to send, in FIFO order. A full TX
     *  ring leaves them queued; the next TxDone drain retries. */
    std::deque<uint32_t> send_queue_;
    std::vector<char> send_queued_;
    std::vector<ConnOutcome> outcomes_;

    uint32_t opens_issued_ = 0; ///< first-incarnation opens kicked off
    uint32_t done_count_ = 0;
    uint32_t total_incarnations_ = 0;
    bool service_pending_ = false;
    bool open_loop_timer_ = false;
    uint64_t doorbells_ = 0;
    uint64_t tx_ring_full_ = 0;
};

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

struct SinkAppConfig
{
    uint16_t listen_port = 7000;
    uint32_t tx_ring_entries = 8;
    uint32_t rx_ring_entries = 256;
    /** Delay between notify and ring drain: models a slow app and
     *  forces RX-ring parking when deliveries outpace it. */
    sim::TimePs drain_delay = 0;
};

/** Per-flow record on the server side, keyed by the peer's port. */
struct SinkFlow
{
    driver::ConnKey key;
    uint64_t bytes = 0;
    uint64_t digest = 0; ///< FNV over delivered bytes, in order
    bool closed = false;
    bool reset = false;
};

class SinkApp
{
  public:
    SinkApp(sim::EventQueue& eq, driver::FastPath& fp,
            SinkAppConfig cfg);

    /** Flows by peer (client) port — unique per incarnation. */
    const std::map<uint16_t, SinkFlow>& flows() const
    {
        return flows_;
    }
    uint32_t accepted() const { return accepted_; }
    uint32_t closed() const { return closed_; }
    uint32_t resets() const { return resets_; }
    uint32_t app_id() const { return app_; }

  private:
    void on_notify();
    void drain();

    sim::EventQueue& eq_;
    driver::FastPath& fp_;
    SinkAppConfig cfg_;
    uint32_t app_ = 0;

    std::map<uint32_t, uint16_t> conn_port_; ///< conn_id -> peer port
    std::map<uint16_t, SinkFlow> flows_;
    uint32_t accepted_ = 0;
    uint32_t closed_ = 0;
    uint32_t resets_ = 0;
    bool drain_pending_ = false;
};

} // namespace fld::apps

#endif // FLD_APPS_APP_EMU_H
