/**
 * @file
 * Full-system testbed assembly mirroring the paper's evaluation setups
 * (§8, "Setup"): a server node with an Innova-2-like NIC + FLD, and —
 * for remote experiments — a client node with its own NIC connected
 * back-to-back over a 25 GbE wire. Local experiments instead run a
 * load generator on the server host and loop traffic between vPorts
 * through the embedded switch, bounded by the 50 Gbps PCIe link.
 */
#ifndef FLD_APPS_TESTBED_H
#define FLD_APPS_TESTBED_H

#include <memory>

#include "driver/host.h"
#include "fld/flexdriver.h"
#include "nic/nic.h"
#include "nic/wire.h"
#include "pcie/endpoint.h"
#include "pcie/fabric.h"
#include "runtime/fld_runtime.h"
#include "sim/event_queue.h"
#include "sim/fault.h"

namespace fld::apps {

struct TestbedConfig
{
    bool remote = true; ///< attach the client node + 25 GbE wire
    nic::NicConfig nic;
    core::FldConfig fld;
    driver::HostConfig server_host;
    driver::HostConfig client_host;
    double pcie_gbps = 50.0; ///< PCIe Gen3 x8 per direction
    /** The NIC ASIC's port into its integrated PCIe switch: wide
     *  enough to feed both the host and the FPGA 50 Gbps links. */
    double nic_internal_gbps = 110.0;
    sim::TimePs pcie_latency = sim::nanoseconds(100);

    /** TLP sizing plus opt-in PCIe fault knobs (tlp.faults). */
    pcie::TlpParams tlp;
    /** Seed for the testbed-wide fault plan (unused with no faults). */
    uint64_t fault_seed = 1;
    /** Opt-in accelerator back-pressure faults; scenarios attach the
     *  plan to the AFUs they build. */
    sim::AccelFaultConfig accel_faults;

    /** All fault knobs (wire + PCIe + accel) gathered into one view. */
    sim::FaultConfig fault_config() const
    {
        sim::FaultConfig fc;
        fc.seed = fault_seed;
        fc.wire = nic.wire_faults;
        fc.pcie = tlp.faults;
        fc.accel = accel_faults;
        return fc;
    }
};

/** Well-known MACs of the two nodes. */
constexpr net::MacAddr kServerMac = {0x02, 0, 0, 0, 0, 0x51};
constexpr net::MacAddr kClientMac = {0x02, 0, 0, 0, 0, 0xc1};

class Testbed
{
  public:
    // Fabric address map.
    static constexpr uint64_t kServerMemBase = 0x0000'0000;
    static constexpr uint64_t kClientMemBase = 0x2000'0000;
    static constexpr uint64_t kServerNicBar = 0x4000'0000;
    static constexpr uint64_t kClientNicBar = 0x5000'0000;
    static constexpr uint64_t kFldBar = 0x8000'0000;
    static constexpr uint64_t kMemBytes = 256 << 20;

    explicit Testbed(TestbedConfig cfg = {});

    sim::EventQueue eq;
    pcie::PcieFabric fabric{eq};
    TestbedConfig cfg;

    /** Created only when any fault knob is set (null otherwise, so a
     *  default testbed stays bit-identical to pre-fault builds). */
    std::unique_ptr<sim::FaultPlan> fault_plan;

    // Server node (Innova-2: ConnectX-5-like NIC + FLD on one card).
    pcie::MemoryEndpoint server_mem{"server.mem", kMemBytes};
    pcie::PortId server_host_port;
    driver::HostNode server_host;
    std::unique_ptr<nic::NicDevice> server_nic;
    std::unique_ptr<core::FlexDriver> fld;
    std::unique_ptr<runtime::FldRuntime> rt;
    nic::VportId fld_vport = 0;
    nic::VportId server_app_vport = 0; ///< host CPU's vPort

    // Client node (ConnectX-4-like NIC), remote setups only.
    pcie::MemoryEndpoint client_mem{"client.mem", kMemBytes};
    pcie::PortId client_host_port = pcie::kInvalidPort;
    driver::HostNode client_host;
    std::unique_ptr<nic::NicDevice> client_nic;
    std::unique_ptr<nic::EthernetLink> wire;
    nic::VportId client_app_vport = 0;

    /**
     * Host-memory bump allocators for driver arenas. Offsets are
     * relative to the node's memory endpoint; add kServerMemBase /
     * kClientMemBase when handing addresses to a DMA engine.
     */
    uint64_t server_arena(uint64_t size);
    uint64_t client_arena(uint64_t size);

    /** Default FDB plumbing used by most experiments:
     *  - client NIC: app vport <-> uplink both ways;
     *  - server NIC: FLD vport -> uplink (remote) and uplink handling
     *    left to the experiment (steering rules differ per scenario).
     */
    void install_client_forwarding();
    void route_vport_to_uplink(nic::NicDevice& nic, nic::VportId v,
                               int priority = 0);
    void route_uplink_to_vport(nic::NicDevice& nic, nic::VportId v,
                               int priority = 0);

  private:
    uint64_t server_arena_next_;
    uint64_t client_arena_next_;
};

} // namespace fld::apps

#endif // FLD_APPS_TESTBED_H
