#include "apps/testbed.h"

namespace fld::apps {

Testbed::Testbed(TestbedConfig cfg_in)
    : fabric(eq, cfg_in.tlp), cfg(cfg_in),
      server_host("server", eq, cfg_in.server_host),
      client_host("client", eq, cfg_in.client_host),
      server_arena_next_(0x1000), client_arena_next_(0x1000)
{
    // --- server node ---
    server_host_port = fabric.add_port("server.host.pcie",
                                       cfg.pcie_gbps, cfg.pcie_latency);
    fabric.attach(server_host_port, &server_mem, kServerMemBase,
                  kMemBytes);

    pcie::PortId snic_port = fabric.add_port(
        "server.nic.pcie", cfg.nic_internal_gbps, cfg.pcie_latency);
    server_nic = std::make_unique<nic::NicDevice>(
        "server.nic", eq, fabric, snic_port, cfg.nic);
    fabric.attach(snic_port, server_nic.get(), kServerNicBar,
                  nic::NicDevice::kBarSize);

    pcie::PortId fld_port =
        fabric.add_port("fld.pcie", cfg.pcie_gbps, cfg.pcie_latency);
    fld = std::make_unique<core::FlexDriver>(
        "fld", eq, fabric, fld_port, kFldBar, kServerNicBar, cfg.fld);
    fabric.attach(fld_port, fld.get(), kFldBar,
                  core::FlexDriver::kBarSize);

    rt = std::make_unique<runtime::FldRuntime>(
        *server_nic, *fld, server_mem, server_arena(64 << 20),
        64 << 20);

    fld_vport = server_nic->add_vport();
    server_app_vport = server_nic->add_vport();

    // --- client node ---
    if (cfg.remote) {
        client_host_port = fabric.add_port(
            "client.host.pcie", cfg.pcie_gbps, cfg.pcie_latency);
        fabric.attach(client_host_port, &client_mem, kClientMemBase,
                      kMemBytes);

        pcie::PortId cnic_port = fabric.add_port(
            "client.nic.pcie", cfg.nic_internal_gbps,
            cfg.pcie_latency);
        client_nic = std::make_unique<nic::NicDevice>(
            "client.nic", eq, fabric, cnic_port, cfg.nic);
        fabric.attach(cnic_port, client_nic.get(), kClientNicBar,
                      nic::NicDevice::kBarSize);
        client_app_vport = client_nic->add_vport();

        wire = std::make_unique<nic::EthernetLink>(
            eq, server_nic->uplink(), client_nic->uplink(),
            cfg.nic.port_gbps, cfg.nic.wire_latency);
    }

    // --- fault plan (opt-in) ---
    // One seeded plan serves every fault site so a single
    // TestbedConfig seed reproduces the whole run. Left null when all
    // knobs are zero: no RNG exists, and timing is bit-identical.
    sim::FaultConfig fc = cfg.fault_config();
    if (fc.enabled()) {
        fault_plan = std::make_unique<sim::FaultPlan>(fc);
        fabric.set_fault_plan(fault_plan.get());
        if (wire)
            wire->set_fault_plan(fault_plan.get(), fc.wire);
    }
}

uint64_t
Testbed::server_arena(uint64_t size)
{
    uint64_t addr = (server_arena_next_ + 4095) & ~uint64_t(4095);
    server_arena_next_ = addr + size;
    return addr;
}

uint64_t
Testbed::client_arena(uint64_t size)
{
    uint64_t addr = (client_arena_next_ + 4095) & ~uint64_t(4095);
    client_arena_next_ = addr + size;
    return addr;
}

void
Testbed::route_vport_to_uplink(nic::NicDevice& nic, nic::VportId v,
                               int priority)
{
    nic::FlowMatch m;
    m.in_vport = v;
    nic.add_rule(0, priority, m, {nic::fwd_vport(nic::kUplinkVport)});
}

void
Testbed::route_uplink_to_vport(nic::NicDevice& nic, nic::VportId v,
                               int priority)
{
    nic::FlowMatch m;
    m.in_vport = nic::kUplinkVport;
    nic.add_rule(0, priority, m, {nic::fwd_vport(v)});
}

void
Testbed::install_client_forwarding()
{
    if (!client_nic)
        return;
    route_vport_to_uplink(*client_nic, client_app_vport);
    route_uplink_to_vport(*client_nic, client_app_vport);
}

} // namespace fld::apps
