#include "apps/fuzz_runner.h"

#include <algorithm>
#include <sstream>

#include "apps/fastpath_harness.h"
#include "apps/rpc_harness.h"
#include "nic/pipeline.h"
#include "sim/trace.h"
#include "util/rng.h"
#include "util/strings.h"

namespace fld::apps {

namespace {

/** Id-derived message payload (shared idiom with the fault tests). */
std::vector<uint8_t>
payload_for(uint32_t id, size_t bytes)
{
    std::vector<uint8_t> p(bytes);
    for (size_t i = 0; i < bytes; ++i)
        p[i] = uint8_t((id * 131u) ^ (i * 7u));
    return p;
}

uint64_t
nic_drops(const nic::NicStats& st)
{
    return st.drops_no_buffer + st.drops_rule + st.drops_meter +
           st.drops_no_rule + st.drops_acl;
}

/**
 * Materialize the scenario's random pipeline program on the echo
 * server's NIC: compile the installed steering rules into the flat
 * program, then splice a behavior-preserving decoration chain in
 * front of them, seeded from pipeline.program_seed.
 *
 * The splice entry (table 0, priority above every scenario rule)
 * catches untagged packets, tags and counts them, and jumps into a
 * chain of decoration tables. Chain entries use masked/ternary keys
 * around the workload's ports, bump counters, retag, optionally apply
 * an identity dst-NAT or a single-backend VIP select (net no-ops that
 * still exercise the rewrite datapath end to end), and always fall
 * through — by entry goto or by the table's miss defaults — until the
 * last table jumps back to table 0, where the now-nonzero tag skips
 * the splice and the original rules deliver. ACL denies sit on a port
 * the workload never uses. Identical programs are installed for the
 * FLD and CPU runs, so the differential oracles judge the compiled
 * engine end to end.
 */
void
install_pipeline_decorations(nic::NicDevice& dev,
                             const sim::FuzzScenario& s,
                             const PktGenConfig& g)
{
    using namespace fld::nic;
    Rng rng(s.pipeline.program_seed);
    PipelineConfig cfg = Pipeline::config_from(dev.flows());

    constexpr uint32_t kBaseTable = 200; // clear of scenario tables
    constexpr uint32_t kTagBase = 0x9A0000;
    constexpr uint32_t kCtrBase = 9000;
    constexpr uint32_t kVipPool = 77;
    constexpr uint16_t kAclPort = 7; // never used by the workload
    const uint32_t ntab = std::clamp(s.pipeline.tables, 1u, 4u);
    const uint32_t nent = std::clamp(s.pipeline.entries, 1u, 4u);
    // NAT/VIP decorations match the request direction by destination
    // ip, which on VXLAN scenarios would hit the outer header before
    // decap; keep them to plain scenarios.
    const bool nat_ok = s.pipeline.use_nat && !s.vxlan;
    const bool vip_ok = s.pipeline.use_vip && !s.vxlan;

    PipelineTableConfig* t0 = nullptr;
    for (PipelineTableConfig& t : cfg.tables)
        if (t.id == 0)
            t0 = &t;
    if (!t0) {
        cfg.tables.push_back(PipelineTableConfig{});
        t0 = &cfg.tables.back();
    }
    PipelineEntryConfig splice;
    splice.priority = 1000;
    splice.key.flow_tag = ternary_exact(0); // untagged packets only
    splice.actions = {set_tag(kTagBase), count_action(kCtrBase),
                      goto_table(kBaseTable)};
    t0->entries.push_back(std::move(splice));

    bool vip_used = false;
    for (uint32_t i = 0; i < ntab; ++i) {
        PipelineTableConfig t;
        t.id = kBaseTable + i;
        const uint32_t next = i + 1 < ntab ? kBaseTable + i + 1 : 0;
        t.default_actions = {goto_table(next)};
        for (uint32_t e = 0; e < nent; ++e) {
            PipelineEntryConfig en;
            en.priority = int(rng.range(0, 100));
            switch (rng.uniform(4)) {
            case 0:
                break; // wildcard
            case 1: {
                static const uint32_t kMasks[] = {0xffff, 0xfff0,
                                                  0xff00};
                en.key.dport =
                    ternary_masked(g.dport, kMasks[rng.uniform(3)]);
                break;
            }
            case 2:
                // Covers the whole base_sport..base_sport+63 flow
                // range; echo-direction packets (swapped ports) miss.
                en.key.sport = ternary_masked(g.base_sport, 0xffc0);
                break;
            default:
                en.key.ethertype = ternary_exact(0x0800);
                break;
            }
            en.actions.push_back(
                count_action(kCtrBase + 1 + i * 8 + e));
            if (rng.chance(0.5))
                en.actions.push_back(set_tag(kTagBase + 1 + i * 8 + e));
            if (nat_ok && rng.chance(0.5)) {
                // Identity NAT: pin the key to the request direction,
                // then rewrite to the very same destination.
                en.key.dst_ip = ternary_exact(g.dst_ip);
                if (rng.chance(0.5)) {
                    en.key.dport = ternary_exact(g.dport);
                    en.actions.push_back(nat_dst(g.dst_ip, g.dport));
                } else {
                    en.actions.push_back(nat_dst(g.dst_ip));
                }
            } else if (vip_ok && rng.chance(0.5)) {
                // Single-backend VIP: the pool holds only the real
                // destination, so the select is a net no-op.
                en.key.dst_ip = ternary_exact(g.dst_ip);
                en.actions.push_back(vip_select(kVipPool));
                vip_used = true;
            }
            en.actions.push_back(goto_table(next));
            t.entries.push_back(std::move(en));
        }
        if (s.pipeline.use_acl && rng.chance(0.5)) {
            PipelineEntryConfig deny;
            deny.priority = 500; // above every chain entry
            deny.key.dport = ternary_exact(kAclPort);
            deny.actions = {acl_deny(i)};
            t.entries.push_back(std::move(deny));
        }
        cfg.tables.push_back(std::move(t));
    }
    if (vip_used)
        cfg.pools.push_back(VipPoolConfig{kVipPool, {g.dst_ip}});

    dev.set_pipeline_program(std::move(cfg));
}

void
fill_fault_counters(const Testbed& tb, FuzzRunDigest& d)
{
    if (tb.fault_plan)
        d.faults = tb.fault_plan->counters();
}

} // namespace

std::string
FuzzRunDigest::to_string() const
{
    std::ostringstream os;
    os << "--- run " << label << " ---\n";
    os << "tx = " << tx << "\n";
    os << "rx = " << rx << "\n";
    os << "bad_payload = " << bad_payload << "\n";
    if (duplicate_msgs || missing_msgs)
        os << "duplicate_msgs = " << duplicate_msgs
           << "\nmissing_msgs = " << missing_msgs << "\n";
    os << "drops = " << drops << "\n";
    for (const auto& [flow, digest] : flow_digests)
        os << "flow " << flow << " digest = " << strfmt("%016llx",
                          (unsigned long long)digest)
           << "\n";
    os << "conservation: " << ledger.summary() << "\n";
    os << "faults: " << faults.summary() << "\n";
    if (!violations.empty()) {
        os << "harness_violations = " << violations.size() << "\n";
        for (const std::string& v : violations)
            os << "  " << v << "\n";
    }
    os << "trace_violations = " << trace_violations.size() << "\n";
    os << "trace_hash = "
       << strfmt("%016llx", (unsigned long long)trace_hash) << "\n";
    os << "end_time_ps = " << end_time << "\n";
    return os.str();
}

PktGenConfig
FuzzRunner::gen_config(const sim::FuzzScenario& s) const
{
    PktGenConfig g = opt_.base_gen;
    g.imc_mix = s.workload.imc_mix;
    g.frame_size =
        std::clamp<size_t>(s.workload.bytes, 64, std::max(64u, s.mtu));
    g.flows = std::max(1u, s.workload.flows);
    if (s.workload.window == 0) {
        g.window = 0;
        g.offered_gbps = s.workload.offered_gbps;
    } else {
        g.window = s.workload.window;
        g.offered_gbps = 0.0;
    }
    g.max_packets = s.workload.packets;
    g.pattern_payload = true;
    g.flow_digests = true;
    g.measure_rtt = false;
    g.vxlan = s.vxlan;
    g.vni = s.vni;
    // Same generator seed for both runs of a scenario: the request
    // streams must be identical for the differential comparison.
    g.seed = s.seed ^ 0x9e3779b97f4a7c15ull;
    return g;
}

TestbedConfig
FuzzRunner::tb_config(const sim::FuzzScenario& s) const
{
    TestbedConfig tb = opt_.base_tb;
    tb.nic.cqe_compression = s.cqe_compression;
    tb.nic.cqe_coalesce_window = sim::nanoseconds(double(s.coalesce_ns));
    if (s.fetch_inflight)
        tb.nic.max_fetches_inflight = s.fetch_inflight;
    tb.nic.wire_faults = s.faults.wire;
    tb.tlp.faults = s.faults.pcie;
    tb.accel_faults = s.faults.accel;
    tb.fault_seed = s.faults.seed;
    return tb;
}

EchoOptions
FuzzRunner::echo_options(const sim::FuzzScenario& s) const
{
    EchoOptions opt;
    opt.echo_queues = std::max(1u, s.echo_queues);
    opt.vxlan = s.vxlan;
    if (s.rx_buffers)
        opt.driver_base.rx_buffers = s.rx_buffers;
    if (s.rx_strides)
        opt.driver_base.rx_strides = s.rx_strides;
    if (s.rx_stride_shift)
        opt.driver_base.rx_stride_shift = s.rx_stride_shift;
    if (s.signal_interval)
        opt.driver_base.signal_interval = s.signal_interval;
    opt.driver_base.wqe_by_mmio = s.wqe_by_mmio;
    return opt;
}

FuzzRunDigest
FuzzRunner::run_eth(const sim::FuzzScenario& s, bool fld_path)
{
    FuzzRunDigest d;
    d.label = fld_path ? "fld" : "cpu";

    sim::Tracer tracer;
    if (opt_.check_trace)
        tracer.install(); // before construction: capture setup too

    PktGenConfig g = gen_config(s);
    TestbedConfig tbc = tb_config(s);
    EchoOptions eopt = echo_options(s);
    // Pipeline dimension: both NICs steer through the compiled
    // program; the server additionally gets the random decoration
    // chain spliced in front of its rules (below).
    if (s.pipeline.enabled)
        tbc.nic.use_compiled_pipeline = true;

    auto drive = [&](Testbed& tb, PacketGen& gen,
                     driver::CpuDriver& gen_driver) {
        if (s.pipeline.enabled)
            install_pipeline_decorations(*tb.server_nic, s, g);
        if (s.shaper_gbps > 0)
            tb.client_nic->set_sq_rate(gen_driver.sqn(0),
                                       s.shaper_gbps);
        gen.start(0, opt_.run_duration);
        tb.eq.run();

        d.tx = gen.tx_count();
        d.rx = gen.rx_count();
        d.bad_payload = gen.bad_payload();
        d.flow_digests = gen.flow_digests();
        d.end_time = tb.eq.now();
        fill_fault_counters(tb, d);
    };

    uint64_t shed = 0; // load shed outside the NIC drop counters
    if (fld_path) {
        auto s2 = make_fld_echo(true, g, tbc, eopt);
        drive(*s2->tb, *s2->gen, *s2->gen_driver);
        d.drops = nic_drops(s2->tb->server_nic->stats()) +
                  nic_drops(s2->tb->client_nic->stats());
        shed = s2->gen_driver->stats().rx_overload_dropped +
               s2->echo->stats().dropped_overload +
               s2->echo->stats().dropped_invalid +
               s2->echo->stats().tx_failed;
    } else {
        auto s2 = make_cpu_echo(true, g, tbc, eopt);
        drive(*s2->tb, *s2->gen, *s2->gen_driver);
        d.drops = nic_drops(s2->tb->server_nic->stats()) +
                  nic_drops(s2->tb->client_nic->stats());
        shed = s2->gen_driver->stats().rx_overload_dropped +
               s2->echo_driver->stats().rx_overload_dropped +
               s2->echo_driver->stats().tx_backpressured;
    }
    d.drops += shed;

    // Conservation from the generator's perspective: a request and its
    // echo each cross the datapath, so any one of the named drop
    // counters (or a wire fault) accounts for one missing echo.
    d.ledger.tx = d.tx;
    d.ledger.rx = d.rx;
    d.ledger.accounted_losses =
        d.faults.wire_drops + d.faults.wire_corruptions + d.drops;
    d.ledger.duplicates = d.faults.wire_duplicates;

    if (opt_.check_trace) {
        tracer.uninstall();
        sim::TraceChecker checker;
        d.trace_violations = checker.check(tracer.events());
        d.trace_hash = sim::fnv1a64_str(tracer.digest());
    }
    return d;
}

FuzzRunDigest
FuzzRunner::run_rdma(const sim::FuzzScenario& s)
{
    FuzzRunDigest d;
    d.label = "rdma";

    sim::Tracer tracer;
    if (opt_.check_trace)
        tracer.install();

    auto s2 = make_fldr_echo(true, tb_config(s));
    Testbed& tb = *s2->tb;

    const uint32_t total = s.workload.packets;
    const size_t bytes = std::max<size_t>(16, s.workload.bytes);
    const uint32_t window = std::max(1u, s.workload.window);

    std::map<uint32_t, uint32_t> copies;
    uint32_t next = 1;
    auto post_next = [&] {
        if (next <= total &&
            s2->client->post_send(payload_for(next, bytes), next))
            ++next;
    };
    s2->client->set_msg_handler(
        [&](uint32_t id, std::vector<uint8_t>&& msg) {
            copies[id]++;
            if (msg != payload_for(id, bytes))
                d.bad_payload++;
            post_next();
        });
    for (uint32_t i = 0; i < window && i < total; ++i)
        post_next();
    tb.eq.run();

    d.tx = s2->client->messages_sent();
    d.rx = s2->client->messages_received();
    d.end_time = tb.eq.now();
    fill_fault_counters(tb, d);
    for (uint32_t id = 1; id <= total; ++id) {
        auto it = copies.find(id);
        if (it == copies.end())
            d.missing_msgs++;
        else if (it->second > 1)
            d.duplicate_msgs += it->second - 1;
    }
    d.drops = nic_drops(tb.server_nic->stats()) +
              nic_drops(tb.client_nic->stats());

    // The RC transport owes exactly-once delivery regardless of wire
    // faults, so the ledger demands the exact identity: rx == tx.
    d.ledger.tx = d.tx;
    d.ledger.rx = d.rx;

    if (opt_.check_trace) {
        tracer.uninstall();
        sim::TraceChecker checker;
        d.trace_violations = checker.check(tracer.events());
        d.trace_hash = sim::fnv1a64_str(tracer.digest());
    }
    return d;
}

FuzzRunDigest
FuzzRunner::run_conn(const sim::FuzzScenario& s, bool fld_mode)
{
    FuzzRunDigest d;
    d.label = fld_mode ? "conn-fld" : "conn-cpu";

    FastPathHarnessConfig cfg;
    cfg.mode = fld_mode ? FastPathMode::Fld : FastPathMode::Cpu;
    cfg.app.connections = std::max(1u, s.conn.connections);
    cfg.app.requests_per_conn = std::max(1u, s.conn.requests);
    cfg.app.request_bytes = std::max(1u, s.conn.request_bytes);
    cfg.app.closed_loop = s.conn.closed_loop;
    cfg.app.churn_cycles = s.conn.churn_cycles;
    // Rings sized so the slowest drawn shape (48 conns sharing one
    // app) backpressures through AppEmu's retry queue, not deadlock.
    cfg.app.tx_ring_entries = 128;
    cfg.app.rx_ring_entries = 512;
    cfg.sink.rx_ring_entries = 512;
    cfg.conn.rto =
        sim::microseconds(double(s.conn.rto_us ? s.conn.rto_us : 200));
    cfg.tb = opt_.base_tb;
    cfg.tb.nic.wire_faults = s.faults.wire;
    cfg.tb.tlp.faults = s.faults.pcie;
    cfg.tb.accel_faults = s.faults.accel;
    cfg.tb.fault_seed = s.faults.seed;
    cfg.fault_target_port = s.conn.fault_target_port;
    cfg.trace = opt_.check_trace;

    FastPathReport r = run_fastpath_scenario(cfg);
    d.tx = r.client_bytes;
    d.rx = r.server_bytes;
    // Lost frames gate the differential the same way echo drops do:
    // under loss the two modes legitimately diverge in timing.
    d.drops = r.faults.wire_drops + r.faults.wire_corruptions;
    for (const auto& [port, fd] : r.server_flows)
        d.flow_digests[port] = fd.digest;
    d.faults = r.faults;
    d.ledger = r.ledger;
    d.violations = r.violations;
    d.trace_violations = r.trace_violations;
    d.end_time = r.end_time;
    return d;
}

FuzzRunDigest
FuzzRunner::run_rpc(const sim::FuzzScenario& s, bool fld_mode)
{
    FuzzRunDigest d;
    d.label = fld_mode ? "rpc-fld" : "rpc-cpu";

    RpcHarnessConfig cfg;
    cfg.mode = fld_mode ? FastPathMode::Fld : FastPathMode::Cpu;
    cfg.client.connections = std::max(1u, s.rpc.connections);
    cfg.client.requests_per_conn = std::max(1u, s.rpc.requests);
    cfg.client.payload_min = std::max(1u, s.rpc.payload_min);
    cfg.client.payload_max =
        std::max(cfg.client.payload_min, s.rpc.payload_max);
    cfg.client.methods_mask = s.rpc.methods_mask ? s.rpc.methods_mask
                                                 : 0x1;
    cfg.client.think_mean =
        sim::microseconds(double(s.rpc.think_us));
    cfg.client.tx_chunk_bytes = s.rpc.chunk_bytes;
    // Same client seed for both runs: the request streams must be
    // identical for the differential comparison.
    cfg.client.seed = s.seed ^ 0xa5a5a5a5deadbeefull;
    cfg.server.service.workers = std::max(1u, s.rpc.workers);
    cfg.conn.rto =
        sim::microseconds(double(s.conn.rto_us ? s.conn.rto_us : 200));
    cfg.tb = opt_.base_tb;
    cfg.tb.nic.wire_faults = s.faults.wire;
    cfg.tb.tlp.faults = s.faults.pcie;
    cfg.tb.accel_faults = s.faults.accel;
    cfg.tb.fault_seed = s.faults.seed;
    // The fault-concentration port is drawn for the AppEmu range
    // (20000+); remap it onto the RPC client range (base_port 21000)
    // keeping the targeted/untargeted split. Deterministic per seed.
    cfg.fault_target_port = s.conn.fault_target_port
        ? uint16_t(21000 + (s.conn.fault_target_port - 20000) %
                               cfg.client.connections)
        : 0;
    cfg.trace = opt_.check_trace;

    RpcReport r = run_rpc_scenario(cfg);
    d.tx = r.client_app.requests_sent;
    d.rx = r.client_app.responses;
    // Lost frames gate the differential like echo drops: under loss
    // the two modes legitimately diverge (resets, missing responses).
    d.drops = r.faults.wire_drops + r.faults.wire_corruptions;
    // Fold the per-request response digests per connection (the high
    // half of a request_id is the client port) so the existing
    // per-flow differential machinery diffs them FLD vs CPU.
    for (const auto& [id, digest] : r.digests) {
        uint32_t port = uint32_t(id >> 32);
        uint64_t& h = d.flow_digests[port];
        if (h == 0)
            h = sim::kFnvBasis;
        uint8_t b[16];
        for (int i = 0; i < 8; ++i) {
            b[i] = uint8_t(id >> (8 * i));
            b[8 + i] = uint8_t(digest >> (8 * i));
        }
        h = sim::fnv1a64(b, sizeof b, h);
    }
    d.faults = r.faults;
    d.ledger = r.ledger;
    d.violations = r.violations;
    d.trace_violations = r.trace_violations;
    d.end_time = r.end_time;
    return d;
}

FuzzVerdict
FuzzRunner::run(const sim::FuzzScenario& scenario)
{
    FuzzVerdict v;
    std::vector<FuzzRunDigest> runs;

    if (scenario.workload.mode == sim::FuzzMode::RdmaEcho) {
        runs.push_back(run_rdma(scenario));
    } else if (scenario.workload.mode == sim::FuzzMode::ConnServe) {
        runs.push_back(run_conn(scenario, /*fld_mode=*/true));
        runs.push_back(run_conn(scenario, /*fld_mode=*/false));
    } else if (scenario.workload.mode == sim::FuzzMode::RpcServe) {
        runs.push_back(run_rpc(scenario, /*fld_mode=*/true));
        runs.push_back(run_rpc(scenario, /*fld_mode=*/false));
    } else {
        runs.push_back(run_eth(scenario, /*fld_path=*/true));
        runs.push_back(run_eth(scenario, /*fld_path=*/false));
    }

    auto fail = [&](std::string why) {
        v.ok = false;
        v.violations.push_back(std::move(why));
    };

    for (const FuzzRunDigest& d : runs) {
        // Payload integrity holds unconditionally: corrupted frames
        // are FCS-dropped on the wire, never delivered damaged.
        if (d.bad_payload)
            fail(strfmt("[%s] %llu deliveries with corrupted payload",
                        d.label.c_str(),
                        (unsigned long long)d.bad_payload));
        for (const std::string& h : d.violations)
            fail(strfmt("[%s] %s", d.label.c_str(), h.c_str()));
        for (const std::string& t : d.trace_violations)
            fail(strfmt("[%s] trace: %s", d.label.c_str(), t.c_str()));
        std::string c = d.ledger.check();
        if (!c.empty())
            fail(strfmt("[%s] %s", d.label.c_str(), c.c_str()));
        if (d.duplicate_msgs)
            fail(strfmt("[%s] %llu duplicate message deliveries",
                        d.label.c_str(),
                        (unsigned long long)d.duplicate_msgs));
        if (d.missing_msgs)
            fail(strfmt("[%s] %llu messages never delivered",
                        d.label.c_str(),
                        (unsigned long long)d.missing_msgs));
    }

    // Differential equivalence, judged only when timing-dependent load
    // shedding cannot legitimately desynchronize the two runs.
    if (runs.size() == 2) {
        const FuzzRunDigest& fld = runs[0];
        const FuzzRunDigest& cpu = runs[1];
        bool clean = !scenario.has_faults() && fld.drops == 0 &&
                     cpu.drops == 0;
        if (clean) {
            if (fld.tx != cpu.tx)
                fail(strfmt("differential: tx mismatch fld=%llu "
                            "cpu=%llu",
                            (unsigned long long)fld.tx,
                            (unsigned long long)cpu.tx));
            if (fld.rx != cpu.rx)
                fail(strfmt("differential: rx mismatch fld=%llu "
                            "cpu=%llu",
                            (unsigned long long)fld.rx,
                            (unsigned long long)cpu.rx));
            if (fld.rx != fld.tx)
                fail(strfmt("fault-free %s run lost deliveries: "
                            "tx=%llu rx=%llu",
                            fld.label.c_str(),
                            (unsigned long long)fld.tx,
                            (unsigned long long)fld.rx));
            if (fld.flow_digests != cpu.flow_digests)
                fail("differential: per-flow delivered payload streams "
                     "differ between FLD and CPU runs");
        }
    }

    std::ostringstream os;
    os << "=== scenario ===\n"
       << scenario.to_string() << "# " << scenario.summary() << "\n";
    for (const FuzzRunDigest& d : runs)
        os << d.to_string();
    os << "--- verdict ---\n";
    if (v.ok) {
        os << "ok\n";
    } else {
        for (const std::string& why : v.violations)
            os << "violation: " << why << "\n";
    }
    v.transcript = os.str();
    v.transcript_hash = sim::fnv1a64_str(v.transcript);
    return v;
}

} // namespace fld::apps
