#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace fld {

std::string
strfmt(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(n, '\0');
    std::vsnprintf(out.data(), n + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
format_bytes(double bytes)
{
    static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int u = 0;
    while (bytes >= 1024.0 && u < 4) {
        bytes /= 1024.0;
        ++u;
    }
    if (bytes == double(int64_t(bytes)))
        return strfmt("%.0f %s", bytes, units[u]);
    if (bytes < 10)
        return strfmt("%.2f %s", bytes, units[u]);
    return strfmt("%.1f %s", bytes, units[u]);
}

std::string
format_gbps(double gbps)
{
    if (gbps >= 100 || gbps == double(int64_t(gbps)))
        return strfmt("%.0f Gbps", gbps);
    return strfmt("%.2f Gbps", gbps);
}

std::string
format_ratio(double ratio)
{
    if (ratio >= 100)
        return strfmt("x%.0f", ratio);
    return strfmt("x%.1f", ratio);
}

std::vector<std::string>
split(const std::string& s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
hex(const uint8_t* data, size_t len)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(len * 2);
    for (size_t i = 0; i < len; ++i) {
        out.push_back(digits[data[i] >> 4]);
        out.push_back(digits[data[i] & 0xf]);
    }
    return out;
}

} // namespace fld
