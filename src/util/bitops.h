/**
 * @file
 * Small bit-manipulation helpers used throughout the FlexDriver model.
 */
#ifndef FLD_UTIL_BITOPS_H
#define FLD_UTIL_BITOPS_H

#include <cassert>
#include <cstdint>
#include <type_traits>

namespace fld {

/** Rotate a 32-bit word left by @p n bits (n in [0, 31]). */
constexpr uint32_t rotl32(uint32_t x, unsigned n)
{
    return (x << n) | (x >> ((32 - n) & 31));
}

/** Rotate a 64-bit word left by @p n bits (n in [0, 63]). */
constexpr uint64_t rotl64(uint64_t x, unsigned n)
{
    return (x << n) | (x >> ((64 - n) & 63));
}

/** True iff @p x is a power of two (0 is not). */
constexpr bool is_pow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Integer division rounding up. @p b must be non-zero. */
template <typename T>
constexpr T ceil_div(T a, T b)
{
    static_assert(std::is_integral_v<T>);
    return (a + b - 1) / b;
}

/** Round @p x up to the next multiple of @p align (align must be pow2). */
constexpr uint64_t align_up(uint64_t x, uint64_t align)
{
    return (x + align - 1) & ~(align - 1);
}

/** Round @p x up to the next power of two. round_up_pow2(0) == 1. */
constexpr uint64_t round_up_pow2(uint64_t x)
{
    if (x <= 1)
        return 1;
    return uint64_t(1) << (64 - __builtin_clzll(x - 1));
}

/** Base-2 logarithm of a power of two. */
constexpr unsigned log2_exact(uint64_t x)
{
    return 63 - __builtin_clzll(x);
}

/** Extract bits [lo, lo+len) from @p x. */
constexpr uint64_t bits(uint64_t x, unsigned lo, unsigned len)
{
    return (x >> lo) & ((len >= 64) ? ~uint64_t(0)
                                    : ((uint64_t(1) << len) - 1));
}

/** Load a little-endian 16/32/64-bit value from a byte pointer. */
inline uint16_t load_le16(const uint8_t* p)
{
    return uint16_t(p[0]) | uint16_t(p[1]) << 8;
}
inline uint32_t load_le32(const uint8_t* p)
{
    return uint32_t(p[0]) | uint32_t(p[1]) << 8 | uint32_t(p[2]) << 16 |
           uint32_t(p[3]) << 24;
}
inline uint64_t load_le64(const uint8_t* p)
{
    return uint64_t(load_le32(p)) | uint64_t(load_le32(p + 4)) << 32;
}

/** Store a little-endian 16/32/64-bit value to a byte pointer. */
inline void store_le16(uint8_t* p, uint16_t v)
{
    p[0] = uint8_t(v);
    p[1] = uint8_t(v >> 8);
}
inline void store_le32(uint8_t* p, uint32_t v)
{
    p[0] = uint8_t(v);
    p[1] = uint8_t(v >> 8);
    p[2] = uint8_t(v >> 16);
    p[3] = uint8_t(v >> 24);
}
inline void store_le64(uint8_t* p, uint64_t v)
{
    store_le32(p, uint32_t(v));
    store_le32(p + 4, uint32_t(v >> 32));
}

/** Load a big-endian (network order) 16/32-bit value. */
inline uint16_t load_be16(const uint8_t* p)
{
    return uint16_t(p[0]) << 8 | uint16_t(p[1]);
}
inline uint32_t load_be32(const uint8_t* p)
{
    return uint32_t(p[0]) << 24 | uint32_t(p[1]) << 16 |
           uint32_t(p[2]) << 8 | uint32_t(p[3]);
}

/** Store a big-endian (network order) 16/32-bit value. */
inline void store_be16(uint8_t* p, uint16_t v)
{
    p[0] = uint8_t(v >> 8);
    p[1] = uint8_t(v);
}
inline void store_be32(uint8_t* p, uint32_t v)
{
    p[0] = uint8_t(v >> 24);
    p[1] = uint8_t(v >> 16);
    p[2] = uint8_t(v >> 8);
    p[3] = uint8_t(v);
}

} // namespace fld

#endif // FLD_UTIL_BITOPS_H
