/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Simulations must be reproducible run-to-run, so all stochastic
 * behaviour (packet sizes, jitter, flow selection) draws from an
 * explicitly seeded Rng instance; there is no global hidden state.
 */
#ifndef FLD_UTIL_RNG_H
#define FLD_UTIL_RNG_H

#include <cstdint>

namespace fld {

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed via splitmix64. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) (bound > 0). */
    uint64_t uniform(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t range(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform_double();

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform_double() < p; }

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

  private:
    uint64_t s_[4];
};

} // namespace fld

#endif // FLD_UTIL_RNG_H
