#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace fld {

namespace {
LogLevel g_level = LogLevel::Warn;

const char*
level_name(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Trace: return "TRACE";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      default: return "?";
    }
}
} // namespace

LogLevel
log_level()
{
    return g_level;
}

void
set_log_level(LogLevel lvl)
{
    g_level = lvl;
}

void
log_emit(LogLevel lvl, const char* tag, const char* fmt, ...)
{
    std::fprintf(stderr, "[%s] %s: ", level_name(lvl), tag);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
}

void
fatal(const char* fmt, ...)
{
    std::fprintf(stderr, "fatal: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    std::exit(1);
}

void
panic(const char* fmt, ...)
{
    std::fprintf(stderr, "panic: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    std::abort();
}

} // namespace fld
