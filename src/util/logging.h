/**
 * @file
 * Minimal leveled logging for the FlexDriver simulation.
 *
 * Follows the gem5 convention of separating user errors (fatal) from
 * internal invariant violations (panic).
 */
#ifndef FLD_UTIL_LOGGING_H
#define FLD_UTIL_LOGGING_H

#include <cstdarg>
#include <string>

namespace fld {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

/** Global log threshold; messages below it are suppressed. */
LogLevel log_level();
void set_log_level(LogLevel lvl);

/** printf-style log emission; prefer the macros below. */
void log_emit(LogLevel lvl, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Terminate due to a user/configuration error (exit(1)).
 * Mirrors gem5's fatal(): the simulation cannot continue but the
 * simulator itself is not broken.
 */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate due to an internal invariant violation (abort()).
 * Mirrors gem5's panic(): this should never happen regardless of input.
 */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace fld

#define FLD_LOG(lvl, tag, ...)                                            \
    do {                                                                  \
        if (lvl >= ::fld::log_level())                                    \
            ::fld::log_emit(lvl, tag, __VA_ARGS__);                       \
    } while (0)

#define FLD_TRACE(tag, ...) FLD_LOG(::fld::LogLevel::Trace, tag, __VA_ARGS__)
#define FLD_DEBUG(tag, ...) FLD_LOG(::fld::LogLevel::Debug, tag, __VA_ARGS__)
#define FLD_INFO(tag, ...) FLD_LOG(::fld::LogLevel::Info, tag, __VA_ARGS__)
#define FLD_WARN(tag, ...) FLD_LOG(::fld::LogLevel::Warn, tag, __VA_ARGS__)
#define FLD_ERROR(tag, ...) FLD_LOG(::fld::LogLevel::Error, tag, __VA_ARGS__)

#endif // FLD_UTIL_LOGGING_H
