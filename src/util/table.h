/**
 * @file
 * Plain-text table rendering used by the paper-reproduction benches.
 *
 * Every bench prints the same rows/series the paper reports; TextTable
 * keeps their output aligned and uniform.
 */
#ifndef FLD_UTIL_TABLE_H
#define FLD_UTIL_TABLE_H

#include <string>
#include <vector>

namespace fld {

/** Column-aligned text table with an optional header row. */
class TextTable
{
  public:
    /** Set the header row; column count is inferred from it. */
    void header(std::vector<std::string> cells);

    /** Append a data row (may be shorter than the header). */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void separator();

    /** Render with two-space column gaps and a rule under the header. */
    std::string render() const;

    /** Render directly to stdout. */
    void print() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool is_separator = false;
    };
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

} // namespace fld

#endif // FLD_UTIL_TABLE_H
