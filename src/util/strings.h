/**
 * @file
 * String formatting helpers shared by benches and reports.
 */
#ifndef FLD_UTIL_STRINGS_H
#define FLD_UTIL_STRINGS_H

#include <cstdint>
#include <string>
#include <vector>

namespace fld {

/** printf-style std::string formatting. */
std::string strfmt(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format a byte count using binary units ("64 MiB", "832.7 KiB"). */
std::string format_bytes(double bytes);

/** Format a bit rate ("25 Gbps", "3.2 Gbps"). */
std::string format_gbps(double gbps);

/** Format a ratio for shrink columns ("x105", "x28.2"). */
std::string format_ratio(double ratio);

/** Split @p s on @p sep (no empty-token suppression). */
std::vector<std::string> split(const std::string& s, char sep);

/** Hex dump of a byte range, for debugging and tests. */
std::string hex(const uint8_t* data, size_t len);

} // namespace fld

#endif // FLD_UTIL_STRINGS_H
