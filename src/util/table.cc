#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace fld {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back({std::move(cells), false});
}

void
TextTable::separator()
{
    rows_.push_back({{}, true});
}

std::string
TextTable::render() const
{
    size_t ncols = header_.size();
    for (const auto& r : rows_)
        ncols = std::max(ncols, r.cells.size());

    std::vector<size_t> width(ncols, 0);
    auto measure = [&](const std::vector<std::string>& cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    measure(header_);
    for (const auto& r : rows_)
        measure(r.cells);

    size_t total = 0;
    for (size_t w : width)
        total += w + 2;
    total = total >= 2 ? total - 2 : 0;

    std::string out;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            out += cells[i];
            if (i + 1 < cells.size())
                out.append(width[i] - cells[i].size() + 2, ' ');
        }
        out += '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        out.append(total, '-');
        out += '\n';
    }
    for (const auto& r : rows_) {
        if (r.is_separator) {
            out.append(total, '-');
            out += '\n';
        } else {
            emit(r.cells);
        }
    }
    return out;
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace fld
