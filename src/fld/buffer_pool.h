/**
 * @file
 * FLD transmit data buffer: shared physical SRAM behind per-queue
 * virtual windows (§5.2, "Address Translation").
 *
 * The NIC's gather entry needs a virtually contiguous payload, but the
 * shared physical buffer hands out scattered 256 B chunks. A per-chunk
 * translation table maps each queue's virtual window onto physical
 * chunks, which is what lets different queues share one small buffer
 * with bounded fragmentation (S_txdata = 2 x BDP + S_xltData in
 * Table 3 instead of max-packet x descriptors).
 */
#ifndef FLD_FLD_BUFFER_POOL_H
#define FLD_FLD_BUFFER_POOL_H

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace fld::core {

class TxBufferPool
{
  public:
    static constexpr uint32_t kChunkBytes = 256;

    /**
     * @param phys_bytes   Physical SRAM capacity (shared by all queues).
     * @param queues       Number of transmit queues.
     * @param vwindow_bytes Virtual window per queue (power of two).
     */
    TxBufferPool(uint32_t phys_bytes, uint32_t queues,
                 uint32_t vwindow_bytes);

    /**
     * Allocate @p len bytes for queue @p q. Returns the virtual byte
     * offset inside q's window, or nullopt when out of space. The
     * allocation is virtually contiguous (never wraps the window).
     */
    std::optional<uint64_t> alloc(uint32_t q, uint32_t len);

    /** Release queue @p q's oldest outstanding allocation (FIFO). */
    void free_oldest(uint32_t q);

    /** Translate a virtual byte offset to a physical byte offset. */
    std::optional<uint32_t> translate(uint32_t q, uint64_t voff) const;

    /** Copy @p len bytes into the buffer at (q, voff). */
    void write(uint32_t q, uint64_t voff, const uint8_t* src,
               uint32_t len);

    /** Copy @p len bytes out of the buffer at (q, voff). */
    void read(uint32_t q, uint64_t voff, uint8_t* dst,
              uint32_t len) const;

    uint32_t free_chunks() const { return uint32_t(free_list_.size()); }
    uint32_t free_bytes() const { return free_chunks() * kChunkBytes; }

    /** Bytes a queue can still allocate (window + physical bound). */
    uint32_t available(uint32_t q) const;

    /** On-die bytes: physical data + translation table. */
    size_t memory_bytes() const { return data_.size() + xlt_bytes(); }
    size_t xlt_bytes() const;

  private:
    struct Alloc
    {
        uint64_t voff;
        uint32_t len;
        uint32_t chunks;
    };
    struct QueueState
    {
        uint64_t next_voff = 0; ///< monotone; wraps via padding
        uint64_t outstanding_bytes = 0;
        std::deque<Alloc> allocs;
        std::vector<uint32_t> xlt; ///< vchunk -> phys chunk
    };

    uint32_t vwindow_;
    uint32_t window_chunks_;
    std::vector<uint8_t> data_;
    std::vector<uint32_t> free_list_;
    std::vector<QueueState> queues_;
};

} // namespace fld::core

#endif // FLD_FLD_BUFFER_POOL_H
