/**
 * @file
 * 4-bank cuckoo hash table with a small stash (§5.2).
 *
 * FLD virtualizes the per-queue transmit descriptor rings: the NIC
 * reads a queue's virtual ring address, and this table maps
 * (queue, ring slot) to a slot in one small shared descriptor pool.
 * The paper's design: 4 banks at load factor 1/2 (the table is sized
 * at twice the pool capacity, guaranteeing insertion convergence), a
 * 4-entry stash absorbing displaced entries, and a stall signal when
 * the stash fills up.
 */
#ifndef FLD_FLD_CUCKOO_H
#define FLD_FLD_CUCKOO_H

#include <cstdint>
#include <optional>
#include <vector>

namespace fld::core {

class CuckooTable
{
  public:
    struct Stats
    {
        uint64_t inserts = 0;
        uint64_t displacements = 0; ///< entries moved between banks
        uint64_t stash_inserts = 0; ///< entries that visited the stash
        uint64_t stalls = 0;        ///< rejected inserts (stash full)
        size_t stash_peak = 0;
    };

    /**
     * @param capacity  Max entries stored (pool size). Table slots are
     *                  2x capacity per the paper's load factor 1/2.
     * @param banks     Number of hash banks (paper: 4).
     * @param stash_size Displacement stash entries (paper: 4).
     */
    explicit CuckooTable(size_t capacity, unsigned banks = 4,
                         size_t stash_size = 4,
                         uint64_t seed = 0x5bd1e995);

    /**
     * Insert key -> value. Returns false and leaves the table
     * unchanged when the stash is full (hardware would stall the
     * producer until a completion releases an entry).
     */
    bool insert(uint64_t key, uint32_t value);

    /** Constant-time lookup across banks + stash. */
    std::optional<uint32_t> lookup(uint64_t key) const;

    /** Remove an entry; drains the stash opportunistically. */
    bool erase(uint64_t key);

    size_t size() const { return size_; }
    size_t capacity() const { return capacity_; }
    bool full() const { return size_ >= capacity_; }

    /** On-die bytes this table occupies (for the memory budget). */
    size_t memory_bytes() const;

    const Stats& stats() const { return stats_; }

  private:
    struct Slot
    {
        bool valid = false;
        uint64_t key = 0;
        uint32_t value = 0;
    };

    size_t bank_index(unsigned bank, uint64_t key) const;
    void drain_stash();

    size_t capacity_;
    unsigned banks_;
    size_t slots_per_bank_;
    std::vector<Slot> table_; ///< banks_ x slots_per_bank_
    std::vector<Slot> stash_;
    size_t stash_size_;
    uint64_t seed_;
    size_t size_ = 0;
    Stats stats_;
};

} // namespace fld::core

#endif // FLD_FLD_CUCKOO_H
