#include "fld/sketch.h"

#include <algorithm>
#include <limits>

#include "util/bitops.h"
#include "util/logging.h"

namespace fld::core {

namespace {
/** splitmix64 finalizer — same mixer the cuckoo banks use. */
uint64_t
mix(uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x00000100000001b3ull;
} // namespace

HeavyHitterSketch::HeavyHitterSketch(SketchConfig cfg) : cfg_(cfg)
{
    if (cfg_.width == 0 || cfg_.depth == 0)
        fatal("HeavyHitterSketch: width and depth must be positive");
    if (!is_pow2(cfg_.width))
        fatal("HeavyHitterSketch: width must be a power of two");
    rows_.assign(size_t(cfg_.depth) * cfg_.width, 0);
    top_.reserve(cfg_.topk);
}

size_t
HeavyHitterSketch::cell(uint32_t row, uint64_t key) const
{
    uint64_t h =
        mix(key + cfg_.seed + uint64_t(row) * 0x9e3779b97f4a7c15ull);
    return size_t(row) * cfg_.width + size_t(h & (cfg_.width - 1));
}

void
HeavyHitterSketch::update(uint64_t key, uint64_t weight)
{
    constexpr uint32_t kSat = std::numeric_limits<uint32_t>::max();
    uint64_t est = std::numeric_limits<uint64_t>::max();
    for (uint32_t r = 0; r < cfg_.depth; ++r) {
        uint32_t& c = rows_[cell(r, key)];
        // Saturating 32-bit counters, as hardware would implement.
        uint64_t next = uint64_t(c) + weight;
        c = next > kSat ? kSat : uint32_t(next);
        est = std::min<uint64_t>(est, c);
    }
    total_weight_ += weight;
    ++updates_;

    // Tail flows (estimate below the candidate floor) exit O(1) here;
    // only potential heavy hitters pay the O(k) table walk.
    if (cfg_.topk == 0)
        return;
    if (top_.size() == cfg_.topk && est <= top_min_) {
        // Still need to refresh an entry we already track.
        for (TopEntry& e : top_) {
            if (e.key == key) {
                e.estimate = est;
                return;
            }
        }
        return;
    }
    offer_candidate(key, est);
}

void
HeavyHitterSketch::offer_candidate(uint64_t key, uint64_t est)
{
    TopEntry* min_entry = nullptr;
    for (TopEntry& e : top_) {
        if (e.key == key) {
            e.estimate = est;
            if (top_.size() == cfg_.topk) {
                top_min_ = est;
                for (const TopEntry& t : top_)
                    top_min_ = std::min(top_min_, t.estimate);
            }
            return;
        }
        if (!min_entry || e.estimate < min_entry->estimate)
            min_entry = &e;
    }
    if (top_.size() < cfg_.topk) {
        top_.push_back({key, est});
        if (top_.size() == cfg_.topk) {
            top_min_ = top_.front().estimate;
            for (const TopEntry& t : top_)
                top_min_ = std::min(top_min_, t.estimate);
        }
        return;
    }
    // Evict the lightest candidate (classic count-min + heap scheme).
    *min_entry = {key, est};
    top_min_ = top_.front().estimate;
    for (const TopEntry& t : top_)
        top_min_ = std::min(top_min_, t.estimate);
}

uint64_t
HeavyHitterSketch::estimate(uint64_t key) const
{
    uint64_t est = std::numeric_limits<uint64_t>::max();
    for (uint32_t r = 0; r < cfg_.depth; ++r)
        est = std::min<uint64_t>(est, rows_[cell(r, key)]);
    return est;
}

std::vector<HeavyHitterSketch::TopEntry>
HeavyHitterSketch::top() const
{
    std::vector<TopEntry> out = top_;
    std::sort(out.begin(), out.end(),
              [](const TopEntry& a, const TopEntry& b) {
                  return a.estimate != b.estimate
                             ? a.estimate > b.estimate
                             : a.key < b.key;
              });
    return out;
}

void
HeavyHitterSketch::clear()
{
    std::fill(rows_.begin(), rows_.end(), 0u);
    top_.clear();
    top_min_ = 0;
    total_weight_ = 0;
    updates_ = 0;
}

size_t
HeavyHitterSketch::memory_bytes() const
{
    return size_t(cfg_.depth) * cfg_.width * 4 +
           size_t(cfg_.topk) * 16;
}

uint64_t
HeavyHitterSketch::state_hash() const
{
    uint64_t h = kFnvBasis;
    auto feed = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= kFnvPrime;
        }
    };
    for (uint32_t c : rows_)
        feed(c);
    for (const TopEntry& e : top()) { // sorted: order-independent
        feed(e.key);
        feed(e.estimate);
    }
    return h;
}

} // namespace fld::core
