#include "fld/mem_budget.h"

namespace fld::core {

void
MemBudget::add(const std::string& category, uint64_t bytes)
{
    for (auto& [name, total] : items_) {
        if (name == category) {
            total += bytes;
            return;
        }
    }
    items_.emplace_back(category, bytes);
}

uint64_t
MemBudget::total() const
{
    uint64_t sum = 0;
    for (const auto& [name, bytes] : items_)
        sum += bytes;
    return sum;
}

uint64_t
MemBudget::of(const std::string& category) const
{
    for (const auto& [name, bytes] : items_) {
        if (name == category)
            return bytes;
    }
    return 0;
}

} // namespace fld::core
