#include "fld/mem_budget.h"

#include "util/logging.h"

namespace fld::core {

void
MemBudget::add(const std::string& category, uint64_t bytes)
{
    for (auto& [name, total] : items_) {
        if (name == category) {
            total += bytes;
            return;
        }
    }
    items_.emplace_back(category, bytes);
}

bool
MemBudget::sub(const std::string& category, uint64_t bytes)
{
    for (auto& [name, total] : items_) {
        if (name != category)
            continue;
        if (bytes > total) {
            FLD_WARN("fld",
                     "MemBudget: releasing %llu B from '%s' which "
                     "holds only %llu B",
                     (unsigned long long)bytes, category.c_str(),
                     (unsigned long long)total);
            total = 0;
            ++underflows_;
            return false;
        }
        total -= bytes;
        return true;
    }
    FLD_WARN("fld", "MemBudget: release from unknown category '%s'",
             category.c_str());
    ++underflows_;
    return false;
}

MemBudget::~MemBudget()
{
    // Detach handles that outlive this budget so their destructors
    // (and explicit release() calls) become no-ops.
    for (Scoped* s : live_scoped_) {
        s->budget_ = nullptr;
        s->bytes_ = 0;
    }
}

void
MemBudget::unenroll(Scoped* s)
{
    for (size_t i = 0; i < live_scoped_.size(); ++i) {
        if (live_scoped_[i] == s) {
            live_scoped_[i] = live_scoped_.back();
            live_scoped_.pop_back();
            return;
        }
    }
}

void
MemBudget::reenroll(Scoped* from, Scoped* to)
{
    for (Scoped*& s : live_scoped_) {
        if (s == from) {
            s = to;
            return;
        }
    }
}

uint64_t
MemBudget::total() const
{
    uint64_t sum = 0;
    for (const auto& [name, bytes] : items_)
        sum += bytes;
    return sum;
}

uint64_t
MemBudget::of(const std::string& category) const
{
    for (const auto& [name, bytes] : items_) {
        if (name == category)
            return bytes;
    }
    return 0;
}

} // namespace fld::core
