/**
 * @file
 * Bounded-memory heavy-hitter flow telemetry: a count-min sketch with
 * a small exact top-k table.
 *
 * Production NICs want per-flow byte telemetry for millions of flows,
 * but exact counters would blow the on-die SRAM budget the paper
 * fights for (Table 3). Following the FPGA sketch-acceleration line
 * of work (PAPERS.md), the sketch trades a bounded overestimate for a
 * fixed footprint: depth hash rows of width saturating counters
 * (count-min: estimates never underestimate, overestimate bounded by
 * 2*total/width with probability 1-2^-depth) plus a k-entry candidate
 * table that tracks the current heavy hitters exactly enough to
 * report them.
 *
 * Everything is deterministic: row hashes derive from an explicit
 * seed, so the same update stream always produces bit-identical
 * sketch state (state_hash() pins this in tests).
 */
#ifndef FLD_FLD_SKETCH_H
#define FLD_FLD_SKETCH_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fld::core {

struct SketchConfig
{
    uint32_t width = 4096; ///< counters per row (power of two)
    uint32_t depth = 4;    ///< independent hash rows
    uint32_t topk = 32;    ///< exact heavy-hitter candidate entries
    uint64_t seed = 0x5bd1e995;
};

class HeavyHitterSketch
{
  public:
    struct TopEntry
    {
        uint64_t key = 0;
        uint64_t estimate = 0; ///< count-min estimate when last touched
    };

    explicit HeavyHitterSketch(SketchConfig cfg = {});

    /** Account @p weight (bytes or packets) to @p key. O(depth + k
     *  only when the key is a heavy-hitter candidate). */
    void update(uint64_t key, uint64_t weight);

    /** Count-min point query: never underestimates the true total. */
    uint64_t estimate(uint64_t key) const;

    /** Current heavy-hitter candidates, heaviest first. */
    std::vector<TopEntry> top() const;

    /** Sum of all weights ever accounted. */
    uint64_t total_weight() const { return total_weight_; }
    uint64_t updates() const { return updates_; }

    void clear();

    /**
     * On-die bytes: width x depth counters at 4 B each (32-bit
     * saturating in hardware) plus top-k entries at 16 B (8 B key +
     * 8 B running estimate). Mirrored by
     * model::flow_directory_memory().
     */
    size_t memory_bytes() const;

    /** FNV over rows + top-k: bit-identical state <=> equal hash. */
    uint64_t state_hash() const;

    const SketchConfig& config() const { return cfg_; }

  private:
    size_t cell(uint32_t row, uint64_t key) const;
    void offer_candidate(uint64_t key, uint64_t est);

    SketchConfig cfg_;
    std::vector<uint32_t> rows_; ///< depth x width, row-major
    std::vector<TopEntry> top_;  ///< unordered candidate table
    uint64_t top_min_ = 0;       ///< smallest estimate in top_ (cached)
    uint64_t total_weight_ = 0;
    uint64_t updates_ = 0;
};

} // namespace fld::core

#endif // FLD_FLD_SKETCH_H
