#include "fld/flexdriver.h"

#include <algorithm>
#include <cstring>

#include "sim/trace.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace fld::core {

FlexDriver::FlexDriver(std::string name, sim::EventQueue& eq,
                       pcie::PcieFabric& fabric, pcie::PortId port,
                       uint64_t bar_base, uint64_t nic_bar_base,
                       FldConfig cfg)
    : name_(std::move(name)), eq_(eq), fabric_(fabric), port_(port),
      bar_base_(bar_base), nic_bar_base_(nic_bar_base), cfg_(cfg),
      txq_(cfg.num_tx_queues),
      desc_pool_(cfg.tx_desc_pool),
      tx_xlt_(cfg.tx_desc_pool),
      tx_buf_(cfg.tx_buffer_bytes, cfg.num_tx_queues,
              cfg.tx_vwindow_bytes),
      rx_sram_(cfg.rx_buffer_bytes)
{
    desc_free_.reserve(cfg.tx_desc_pool);
    for (uint32_t i = 0; i < cfg.tx_desc_pool; ++i)
        desc_free_.push_back(cfg.tx_desc_pool - 1 - i);

    // On-die memory accounting (the Table 3 story, instantiated).
    budget_.add("tx descriptor pool (8 B compressed)",
                uint64_t(cfg.tx_desc_pool) * 8);
    budget_.add("tx ring translation (cuckoo)", tx_xlt_.memory_bytes());
    budget_.add("tx data buffer", cfg.tx_buffer_bytes);
    budget_.add("tx data translation", tx_buf_.xlt_bytes());
    budget_.add("rx data buffer", cfg.rx_buffer_bytes);
    budget_.add("cq storage (15 B compressed)",
                uint64_t(cfg.cq_entries) * 2 * 15);
    budget_.add("producer indices",
                uint64_t(cfg.num_tx_queues + 1) * 4);

    if (cfg.flow_capacity > 0) {
        flows_ = std::make_unique<FlowDirectory>(FlowDirectoryConfig{
            .flow_capacity = cfg.flow_capacity,
            .shards = cfg.flow_shards,
            .tenants = cfg.flow_tenants,
            .sketch_enabled = cfg.flow_sketch});
        flows_->attach_budget(budget_);
    }
}

/** Datapath flow accounting: learn flows from the traffic itself.
 *  The flow key folds the steering context (flow_tag / completion
 *  key) with a per-direction salt so TX and RX flows stay distinct;
 *  the tenant is the context id, as FLD-E tags are the multi-tenancy
 *  handle (§5.4). */
void
FlexDriver::note_flow(uint64_t key, uint32_t tenant_hint,
                      uint32_t bytes)
{
    if (!flows_)
        return;
    flows_->record_auto(key, uint16_t(tenant_hint % cfg_.flow_tenants),
                        bytes);
}

uint64_t
FlexDriver::read_processing_ps() const
{
    // On-the-fly WQE synthesis: a handful of FPGA cycles.
    return uint64_t(double(cfg_.pipeline_cycles) * 1000.0 /
                    cfg_.clock_mhz) * 1000;
}

// ---------------------------------------------------------------------
// Control-plane binding
// ---------------------------------------------------------------------

void
FlexDriver::bind_tx_queue(uint32_t q, uint32_t nic_sqn,
                          uint32_t completion_key, bool is_rdma)
{
    if (q >= txq_.size())
        fatal("bind_tx_queue: bad queue %u", q);
    txq_[q].nic_sqn = nic_sqn;
    txq_[q].completion_key = completion_key;
    txq_[q].is_rdma = is_rdma;
    txq_[q].bound = true;
}

void
FlexDriver::bind_rx_queue(uint32_t completion_key, uint32_t nic_rqn,
                          bool is_rdma, uint32_t buffer_count,
                          uint32_t initial_pi)
{
    RxBinding b;
    b.nic_rqn = nic_rqn;
    b.is_rdma = is_rdma;
    b.buffer_count = buffer_count;
    b.sram_base = rx_sram_alloc_;
    b.pi = initial_pi;
    uint64_t need =
        uint64_t(buffer_count) * rx_buffer_bytes_per_buffer();
    if (rx_sram_alloc_ + need > rx_sram_.size())
        fatal("bind_rx_queue: rx SRAM exhausted");
    rx_sram_alloc_ += need;
    rx_[completion_key] = b;
    issue_rx_doorbell(completion_key);
}

uint64_t
FlexDriver::tx_ring_addr(uint32_t q) const
{
    return bar_base_ + kTxRingRegion +
           uint64_t(q) * cfg_.tx_ring_entries * nic::kWqeStride;
}

uint64_t
FlexDriver::tx_cq_addr() const
{
    return bar_base_ + kCqRegion;
}

uint64_t
FlexDriver::rx_cq_addr() const
{
    return bar_base_ + kCqRegion +
           uint64_t(cfg_.cq_entries) * nic::kCqeStride;
}

uint64_t
FlexDriver::rx_buffer_addr(uint32_t rx_key, uint32_t buffer_index) const
{
    auto it = rx_.find(rx_key);
    if (it == rx_.end())
        fatal("rx_buffer_addr: unknown rx binding %u", rx_key);
    return bar_base_ + kRxDataRegion + it->second.sram_base +
           uint64_t(buffer_index) * rx_buffer_bytes_per_buffer();
}

void
FlexDriver::report(FldError::Type type, uint32_t queue)
{
    if (errors_)
        errors_(FldError{type, queue});
}

// ---------------------------------------------------------------------
// Accelerator-facing transmit
// ---------------------------------------------------------------------

TxCredits
FlexDriver::tx_credits(uint32_t q) const
{
    if (q >= txq_.size())
        return {};
    TxCredits c;
    uint32_t ring_free =
        cfg_.tx_ring_entries - uint32_t(txq_[q].outstanding.size());
    c.descriptors =
        std::min<uint32_t>(uint32_t(desc_free_.size()), ring_free);
    if (tx_xlt_.full())
        c.descriptors = 0;
    c.buffer_bytes = tx_buf_.available(q);
    return c;
}

bool
FlexDriver::tx(uint32_t q, StreamPacket&& pkt)
{
    if (q >= txq_.size() || !txq_[q].bound) {
        report(FldError::Type::BadQueue, q);
        return false;
    }
    TxQueue& txq = txq_[q];
    uint32_t len = uint32_t(pkt.size());

    if (desc_free_.empty() ||
        txq.outstanding.size() >= cfg_.tx_ring_entries) {
        stats_.tx_rejected++;
        report(FldError::Type::TxNoCredits, q);
        return false;
    }
    uint32_t slot = txq.pi % cfg_.tx_ring_entries;
    uint64_t key = uint64_t(q) << 32 | slot;
    uint32_t pool_idx = desc_free_.back();
    if (!tx_xlt_.insert(key, pool_idx)) {
        // Stash full: hardware would stall; we reject and report.
        stats_.tx_rejected++;
        report(FldError::Type::CuckooStall, q);
        return false;
    }
    auto voff = tx_buf_.alloc(q, len);
    if (!voff) {
        tx_xlt_.erase(key);
        stats_.tx_rejected++;
        report(FldError::Type::TxNoCredits, q);
        return false;
    }
    desc_free_.pop_back();

    tx_buf_.write(q, *voff, pkt.data.data(), len);

    CompressedTxDesc& d = desc_pool_[pool_idx];
    d.valid = true;
    d.is_nop = false;
    d.voff = uint32_t(*voff);
    d.len = len;
    d.wqe_index = uint16_t(txq.pi);
    d.msg_id = pkt.meta.msg_id;
    d.flow_tag = pkt.meta.context_id;
    d.next_table = pkt.meta.next_table;
    // Trace correlation: tag fresh packets at their origin so every
    // downstream transaction (fetch, DMA, wire, CQE) can be joined.
    if (pkt.meta.corr == 0) {
        if (auto* tr = sim::Tracer::active())
            pkt.meta.corr = tr->next_corr();
    }
    d.corr = pkt.meta.corr;
    // Selective completion signalling: completions both free on-die
    // state and return credits, so sign periodically and when the
    // queue would otherwise go quiet.
    txq.unsignaled++;
    bool signal = txq.unsignaled >= cfg_.signal_interval ||
                  txq.outstanding.empty();
    d.signaled = signal;
    if (signal)
        txq.unsignaled = 0;

    txq.outstanding.push_back(pool_idx);
    txq.pi++;
    stats_.tx_packets++;
    stats_.tx_bytes += len;
    note_flow(uint64_t(d.flow_tag) << 16 | q, d.flow_tag, len);

    issue_tx_doorbell(q);
    return true;
}

void
FlexDriver::issue_tx_doorbell(uint32_t q)
{
    TxQueue& txq = txq_[q];
    if (txq.doorbell_inflight) {
        txq.doorbell_dirty = true; // coalesce
        return;
    }
    txq.doorbell_inflight = true;
    stats_.doorbells++;

    // WQE-by-MMIO for lone posts (latency optimization, §6): carry
    // the synthesized WQE inside the doorbell write.
    bool lone = cfg_.wqe_by_mmio && txq.outstanding.size() == 1;
    uint8_t db[4 + nic::kWqeStride];
    size_t db_len = lone ? 4 + nic::kWqeStride : 4;
    store_le32(db, txq.pi);
    if (lone) {
        uint32_t slot = (txq.pi - 1) % cfg_.tx_ring_entries;
        synthesize_wqe(q, slot, db + 4);
    }
    uint64_t addr = nic_bar_base_ + 0 /*kSqDbBase*/ + txq.nic_sqn * 8;
    fabric_.write(port_, addr, db, db_len, [this, q] {
        TxQueue& t = txq_[q];
        t.doorbell_inflight = false;
        if (t.doorbell_dirty) {
            t.doorbell_dirty = false;
            issue_tx_doorbell(q);
        }
    });
}

void
FlexDriver::issue_rx_doorbell(uint32_t rx_key)
{
    auto it = rx_.find(rx_key);
    if (it == rx_.end())
        return;
    RxBinding& b = it->second;
    if (b.doorbell_inflight) {
        b.doorbell_dirty = true;
        return;
    }
    b.doorbell_inflight = true;
    stats_.doorbells++;

    uint8_t db[4];
    store_le32(db, b.pi);
    uint64_t addr = nic_bar_base_ + 0x10000 /*kRqDbBase*/ +
                    uint64_t(b.nic_rqn) * 8;
    fabric_.write(port_, addr, db, sizeof db, [this, rx_key] {
        auto it2 = rx_.find(rx_key);
        if (it2 == rx_.end())
            return;
        RxBinding& b2 = it2->second;
        b2.doorbell_inflight = false;
        if (b2.doorbell_dirty) {
            b2.doorbell_dirty = false;
            issue_rx_doorbell(rx_key);
        }
    });
}

// ---------------------------------------------------------------------
// BAR: the NIC's view of FLD
// ---------------------------------------------------------------------

void
FlexDriver::synthesize_wqe(uint32_t q, uint32_t slot, uint8_t* out)
{
    std::memset(out, 0, nic::kWqeStride);
    uint64_t key = uint64_t(q) << 32 | slot;
    auto pool_idx = tx_xlt_.lookup(key);
    if (!pool_idx)
        return; // NOP WQE — NIC should never read unposted slots
    const CompressedTxDesc& d = desc_pool_[*pool_idx];
    if (!d.valid)
        return;
    stats_.wqe_reads++;

    nic::Wqe wqe;
    if (d.is_nop) {
        wqe.opcode = nic::WqeOpcode::Nop;
        wqe.signaled = true;
        wqe.wqe_index = d.wqe_index;
        wqe.qpn = txq_[q].nic_sqn;
        wqe.encode(out);
        return;
    }
    wqe.opcode = txq_[q].is_rdma ? nic::WqeOpcode::RdmaSend
                                 : nic::WqeOpcode::EthSend;
    wqe.signaled = d.signaled;
    wqe.wqe_index = d.wqe_index;
    wqe.qpn = txq_[q].nic_sqn;
    wqe.addr = bar_base_ + kTxDataRegion +
               uint64_t(q) * cfg_.tx_vwindow_bytes + d.voff;
    wqe.byte_count = d.len;
    wqe.msg_id = d.msg_id;
    wqe.flow_tag = d.flow_tag;
    wqe.next_table = d.next_table;
    wqe.corr = d.corr;
    wqe.encode(out);
}

void
FlexDriver::bar_read(uint64_t addr, uint8_t* out, size_t len)
{
    if (addr >= kCqRegion) {
        std::memset(out, 0, len);
        return;
    }
    if (addr >= kRxDataRegion) {
        uint64_t off = addr - kRxDataRegion;
        if (off + len > rx_sram_.size()) {
            std::memset(out, 0, len);
            return;
        }
        std::memcpy(out, rx_sram_.data() + off, len);
        return;
    }
    if (addr >= kTxDataRegion) {
        // Payload gather: translate virtual window bytes chunk-wise.
        uint64_t off = addr - kTxDataRegion;
        uint32_t q = uint32_t(off / cfg_.tx_vwindow_bytes);
        uint64_t voff = off % cfg_.tx_vwindow_bytes;
        if (q >= txq_.size()) {
            std::memset(out, 0, len);
            return;
        }
        tx_buf_.read(q, voff, out, uint32_t(len));
        return;
    }
    // Transmit descriptor ring region: synthesize WQEs on-the-fly.
    uint64_t ring_bytes =
        uint64_t(cfg_.tx_ring_entries) * nic::kWqeStride;
    for (size_t done = 0; done < len; done += nic::kWqeStride) {
        uint64_t a = addr + done;
        uint32_t q = uint32_t(a / ring_bytes);
        uint32_t slot = uint32_t((a % ring_bytes) / nic::kWqeStride);
        if (q >= txq_.size()) {
            std::memset(out + done, 0,
                        std::min<size_t>(nic::kWqeStride, len - done));
            continue;
        }
        uint8_t tmp[nic::kWqeStride];
        synthesize_wqe(q, slot, tmp);
        std::memcpy(out + done, tmp,
                    std::min<size_t>(nic::kWqeStride, len - done));
    }
}

void
FlexDriver::bar_write(uint64_t addr, const uint8_t* data, size_t len)
{
    if (addr >= kCqRegion) {
        bool block_sized =
            len >= nic::kCqeStride &&
            (len - nic::kCqeStride) % nic::kMiniCqeStride == 0;
        if (!block_sized) {
            FLD_WARN("fld", "%s: unexpected CQ write of %zu bytes",
                     name_.c_str(), len);
            return;
        }
        nic::Cqe cqe = nic::Cqe::decode(data);
        stats_.cqes++;
        uint64_t off = addr - kCqRegion;
        bool is_rx_cq =
            off >= uint64_t(cfg_.cq_entries) * nic::kCqeStride;
        if (cqe.opcode == nic::CqeOpcode::Error) {
            report(FldError::Type::NicError, cqe.qpn);
            return;
        }
        rx_burst_.clear();
        if (is_rx_cq)
            handle_rx_cqe(cqe);
        else
            handle_tx_cqe(cqe);

        // Mini-CQE block: expand the compressed entries, inheriting
        // qpn/opcode/rss from the title completion.
        size_t minis = (len - nic::kCqeStride) / nic::kMiniCqeStride;
        for (size_t i = 0; i < minis; ++i) {
            nic::MiniCqe mini = nic::MiniCqe::decode(
                data + nic::kCqeStride + i * nic::kMiniCqeStride);
            nic::Cqe expanded = cqe;
            expanded.byte_count = mini.byte_count;
            expanded.stride_index = mini.stride_index;
            expanded.rq_wqe_index = mini.rq_wqe_index;
            expanded.flags = mini.flags;
            expanded.flow_tag = mini.flow_tag;
            expanded.msg_id = 0;
            expanded.msg_offset = 0;
            // A 16 B mini cannot carry the 64-bit trace id, and the
            // title's id belongs to a different packet: mark untraced.
            expanded.corr = 0;
            stats_.cqes++;
            if (is_rx_cq)
                handle_rx_cqe(expanded);
            else
                handle_tx_cqe(expanded);
        }
        // The whole train leaves the FLD together: one wheel touch
        // schedules every delivery this block produced.
        if (!rx_burst_.empty()) {
            eq_.schedule_batch(eq_.now() + read_processing_ps(),
                               rx_burst_.data(), rx_burst_.size());
            rx_burst_.clear();
        }
        return;
    }
    if (addr >= kRxDataRegion) {
        uint64_t off = addr - kRxDataRegion;
        if (off + len > rx_sram_.size()) {
            FLD_WARN("fld", "rx DMA beyond SRAM");
            return;
        }
        std::memcpy(rx_sram_.data() + off, data, len);
        return;
    }
    FLD_WARN("fld", "%s: unexpected BAR write at 0x%llx", name_.c_str(),
             (unsigned long long)addr);
}

// ---------------------------------------------------------------------
// Completion handling
// ---------------------------------------------------------------------

void
FlexDriver::handle_tx_cqe(const nic::Cqe& cqe)
{
    // Locate the queue by completion key: bindings are few, scan is
    // fine (a real design keeps a small CAM here).
    for (uint32_t q = 0; q < txq_.size(); ++q) {
        TxQueue& txq = txq_[q];
        if (!txq.bound || txq.completion_key != cqe.qpn)
            continue;

        // Selective signalling: everything up to wqe_counter is done.
        uint32_t freed_descs = 0;
        uint32_t freed_bytes = 0;
        while (!txq.outstanding.empty()) {
            uint32_t pool_idx = txq.outstanding.front();
            CompressedTxDesc& d = desc_pool_[pool_idx];
            int16_t delta = int16_t(cqe.wqe_counter - d.wqe_index);
            if (delta < 0)
                break;
            txq.outstanding.pop_front();
            uint64_t key = uint64_t(q) << 32 |
                           (d.wqe_index % cfg_.tx_ring_entries);
            tx_xlt_.erase(key);
            if (!d.is_nop) {
                tx_buf_.free_oldest(q);
                freed_bytes += d.len;
            }
            d.valid = false;
            desc_free_.push_back(pool_idx);
            freed_descs++;
            if (delta == 0)
                break;
        }
        // Drain: if unsignaled descriptors remain with no signaled one
        // behind them, their buffers would be held forever. Post a
        // signaled NOP to flush the tail (drivers do the same).
        bool any_signaled = false;
        for (uint32_t idx : txq.outstanding)
            any_signaled |= desc_pool_[idx].signaled;
        if (!txq.outstanding.empty() && !any_signaled)
            post_drain_nop(q);

        if (freed_descs && credit_handler_)
            credit_handler_(q, freed_descs, freed_bytes);
        return;
    }
}

void
FlexDriver::post_drain_nop(uint32_t q)
{
    TxQueue& txq = txq_[q];
    if (desc_free_.empty() ||
        txq.outstanding.size() >= cfg_.tx_ring_entries) {
        return; // a later completion will retry
    }
    uint32_t slot = txq.pi % cfg_.tx_ring_entries;
    uint64_t key = uint64_t(q) << 32 | slot;
    uint32_t pool_idx = desc_free_.back();
    if (!tx_xlt_.insert(key, pool_idx))
        return;
    desc_free_.pop_back();

    CompressedTxDesc& d = desc_pool_[pool_idx];
    d.valid = true;
    d.is_nop = true;
    d.signaled = true;
    d.voff = 0;
    d.len = 0;
    d.wqe_index = uint16_t(txq.pi);
    d.msg_id = 0;
    txq.outstanding.push_back(pool_idx);
    txq.pi++;
    txq.unsignaled = 0;
    issue_tx_doorbell(q);
}

void
FlexDriver::handle_rx_cqe(const nic::Cqe& cqe)
{
    auto it = rx_.find(cqe.qpn);
    if (it == rx_.end()) {
        FLD_WARN("fld", "rx CQE for unknown key %u", cqe.qpn);
        return;
    }
    RxBinding& b = it->second;

    // In-order buffer recycling (§5.2): the NIC walked past every
    // buffer older than the one this CQE lands in, so recycle them by
    // bumping the producer index — the host-memory ring descriptors
    // themselves are never touched.
    if (b.any_seen && cqe.rq_wqe_index != uint16_t(b.last_buffer)) {
        uint16_t delta = uint16_t(cqe.rq_wqe_index) -
                         uint16_t(b.last_buffer);
        b.pi += delta;
        b.recycled_ci += delta;
        stats_.buffers_recycled += delta;
        issue_rx_doorbell(cqe.qpn);
    }
    b.last_buffer = cqe.rq_wqe_index;
    b.any_seen = true;

    // Assemble the stream packet from RX SRAM.
    uint32_t buffer_index = cqe.rq_wqe_index % b.buffer_count;
    uint64_t base = b.sram_base +
                    uint64_t(buffer_index) * rx_buffer_bytes_per_buffer() +
                    (uint64_t(cqe.stride_index) << cfg_.rx_stride_shift);
    if (base + cqe.byte_count > rx_sram_.size()) {
        FLD_WARN("fld", "rx CQE points outside SRAM");
        return;
    }

    StreamPacket pkt;
    // Intentional copy: models the FLD pulling the frame out of RX
    // SRAM into the accelerator stream; the SRAM slot is recycled.
    pkt.data.assign(rx_sram_.begin() + long(base),
                    rx_sram_.begin() + long(base + cqe.byte_count));
    pkt.meta.queue = cqe.qpn;
    pkt.meta.context_id = cqe.flow_tag;
    pkt.meta.rss_hash = cqe.rss_hash;
    pkt.meta.l3_csum_ok = cqe.flags & nic::kCqeL3Ok;
    pkt.meta.l4_csum_ok = cqe.flags & nic::kCqeL4Ok;
    pkt.meta.ip_fragment = cqe.flags & nic::kCqeIpFrag;
    pkt.meta.tunneled = cqe.flags & nic::kCqeTunneled;
    pkt.meta.is_rdma = b.is_rdma;
    pkt.meta.corr = cqe.corr;
    if (b.is_rdma) {
        pkt.meta.msg_id = cqe.msg_id;
        pkt.meta.msg_offset = cqe.msg_offset;
        pkt.meta.msg_last = cqe.flags & nic::kCqeRdmaLast;
        if (pkt.meta.msg_last)
            pkt.meta.msg_len = cqe.msg_offset + cqe.byte_count;
    } else {
        pkt.meta.next_table = cqe.msg_offset;
    }

    stats_.rx_packets++;
    stats_.rx_bytes += pkt.size();
    note_flow((1ull << 63) | uint64_t(cqe.flow_tag) << 32 |
                  cqe.rss_hash,
              cqe.flow_tag, uint32_t(pkt.size()));

    if (rx_handler_) {
        // Collected by bar_write into one schedule_batch: every
        // delivery of this CQE block fires at the same tick.
        rx_burst_.emplace_back([this, pkt = std::move(pkt)]() mutable {
            rx_handler_(std::move(pkt));
        });
    }
}

} // namespace fld::core
