#include "fld/flow_directory.h"

#include <algorithm>
#include <cmath>

#include "model/memory_model.h"
#include "util/bitops.h"
#include "util/logging.h"
#include "util/strings.h"

namespace fld::core {

namespace {
/** splitmix64 finalizer (same family as the cuckoo bank hashes, but
 *  salted differently so shard choice and bank choice are
 *  independent). */
uint64_t
mix(uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

constexpr uint64_t kShardSalt = 0xabcdef1234567890ull;

/** One cuckoo shard per 16k flows keeps eviction chains short while
 *  bounding the mux a hardware sharder would need. */
constexpr uint64_t kFlowsPerShard = 16 * 1024;
constexpr uint32_t kMaxShards = 256;
} // namespace

FlowDirectory::Shard::Shard(uint64_t capacity, uint64_t seed)
    : xlt(capacity, /*banks=*/4, /*stash_size=*/4, seed)
{
    pool.resize(capacity);
    free_list.reserve(capacity);
    for (uint64_t i = 0; i < capacity; ++i)
        free_list.push_back(uint32_t(capacity - 1 - i));
}

FlowDirectory::FlowDirectory(FlowDirectoryConfig cfg) : cfg_(cfg)
{
    if (cfg_.flow_capacity == 0)
        fatal("FlowDirectory: flow_capacity must be positive");
    if (cfg_.shards == 0) {
        cfg_.shards = uint32_t(std::min<uint64_t>(
            kMaxShards,
            round_up_pow2(std::max<uint64_t>(
                1, cfg_.flow_capacity / kFlowsPerShard))));
    } else if (!is_pow2(cfg_.shards)) {
        fatal("FlowDirectory: shards must be a power of two");
    }
    if (cfg_.tenants == 0)
        cfg_.tenants = 1;
    // 12.5% per-shard slack: hash imbalance across shards must not
    // reject flows before the nominal capacity is reached.
    shard_capacity_ =
        ceil_div<uint64_t>(cfg_.flow_capacity * 9, 8 * cfg_.shards);
    if (cfg_.sketch.width == 0) {
        cfg_.sketch.width = uint32_t(round_up_pow2(
            std::max<uint64_t>(1024, cfg_.flow_capacity / 16)));
    }
    cfg_.sketch.seed = cfg_.seed ^ 0x5ce7c5u;

    shards_.reserve(cfg_.shards);
    for (uint32_t s = 0; s < cfg_.shards; ++s)
        shards_.emplace_back(shard_capacity_,
                             cfg_.seed + uint64_t(s) *
                                             0x9e3779b97f4a7c15ull);
    tenants_.resize(cfg_.tenants);
    sketch_ = HeavyHitterSketch(
        cfg_.sketch_enabled
            ? cfg_.sketch
            : SketchConfig{.width = 1, .depth = 1, .topk = 0});
}

uint32_t
FlowDirectory::shard_of(uint64_t key) const
{
    return uint32_t(mix(key ^ (cfg_.seed + kShardSalt)) &
                    (cfg_.shards - 1));
}

size_t
FlowDirectory::shard_size(uint32_t s) const
{
    return shards_[s].xlt.size();
}

const CuckooTable&
FlowDirectory::shard_table(uint32_t s) const
{
    return shards_[s].xlt;
}

FlowDirectory::TenantStats&
FlowDirectory::tenant_slot(uint16_t t)
{
    return tenants_[t % cfg_.tenants];
}

const FlowDirectory::TenantStats&
FlowDirectory::tenant(uint16_t t) const
{
    return tenants_[t % cfg_.tenants];
}

bool
FlowDirectory::open_flow(uint64_t key, uint16_t tenant)
{
    Shard& sh = shards_[shard_of(key)];
    TenantStats& ts = tenant_slot(tenant);
    if (sh.xlt.lookup(key)) {
        stats_.duplicate_opens++;
        ts.rejects++;
        return false;
    }
    if (sh.free_list.empty()) {
        stats_.rejected_full++;
        ts.rejects++;
        return false;
    }
    uint32_t slot = sh.free_list.back();
    if (!sh.xlt.insert(key, slot)) {
        // Stash stall: hardware back-pressures the opener.
        stats_.rejected_stall++;
        ts.rejects++;
        return false;
    }
    sh.free_list.pop_back();
    sh.pool[slot] = FlowSlot{key, uint16_t(tenant % cfg_.tenants), 0, 0};
    ++size_;
    stats_.opens++;
    ts.flows_open++;
    ts.flows_opened++;
    return true;
}

bool
FlowDirectory::close_flow(uint64_t key)
{
    Shard& sh = shards_[shard_of(key)];
    auto slot = sh.xlt.lookup(key);
    if (!slot) {
        stats_.unknown_closes++;
        return false;
    }
    sh.xlt.erase(key);
    TenantStats& ts = tenants_[sh.pool[*slot].tenant];
    ts.flows_open--;
    ts.flows_closed++;
    sh.free_list.push_back(*slot);
    --size_;
    stats_.closes++;
    return true;
}

bool
FlowDirectory::record(uint64_t key, uint32_t bytes)
{
    Shard& sh = shards_[shard_of(key)];
    auto slot = sh.xlt.lookup(key);
    stats_.lookups++;
    if (!slot)
        return false;
    FlowSlot& f = sh.pool[*slot];
    f.packets++;
    f.bytes += bytes;
    TenantStats& ts = tenants_[f.tenant];
    ts.packets++;
    ts.bytes += bytes;
    stats_.packets++;
    stats_.bytes += bytes;
    if (cfg_.sketch_enabled)
        sketch_.update(key, bytes);
    return true;
}

bool
FlowDirectory::record_auto(uint64_t key, uint16_t tenant,
                           uint32_t bytes)
{
    if (record(key, bytes))
        return true;
    if (!open_flow(key, tenant))
        return false;
    stats_.auto_opens++;
    return record(key, bytes);
}

std::optional<FlowDirectory::FlowInfo>
FlowDirectory::find(uint64_t key) const
{
    const Shard& sh = shards_[shard_of(key)];
    auto slot = sh.xlt.lookup(key);
    if (!slot)
        return std::nullopt;
    const FlowSlot& f = sh.pool[*slot];
    return FlowInfo{f.key, f.tenant, f.packets, f.bytes};
}

size_t
FlowDirectory::memory_bytes() const
{
    size_t xlt = 0;
    for (const Shard& sh : shards_)
        xlt += sh.xlt.memory_bytes();
    size_t state =
        size_t(cfg_.shards) * shard_capacity_ * kFlowStateBytes;
    size_t tenants = tenants_.size() * kTenantStateBytes;
    size_t sketch = cfg_.sketch_enabled ? sketch_.memory_bytes() : 0;
    return xlt + state + tenants + sketch;
}

void
FlowDirectory::attach_budget(MemBudget& budget)
{
    budget_regs_.clear(); // releases a previous attachment
    size_t xlt = 0;
    for (const Shard& sh : shards_)
        xlt += sh.xlt.memory_bytes();
    budget_regs_.push_back(
        budget.scoped("flow xlt (cuckoo, sharded)", xlt));
    budget_regs_.push_back(budget.scoped(
        "flow state pool (24 B/flow)",
        uint64_t(cfg_.shards) * shard_capacity_ * kFlowStateBytes));
    budget_regs_.push_back(
        budget.scoped("flow tenant stats (32 B/tenant)",
                      uint64_t(tenants_.size()) * kTenantStateBytes));
    if (cfg_.sketch_enabled) {
        budget_regs_.push_back(budget.scoped(
            "flow heavy-hitter sketch", sketch_.memory_bytes()));
    }
}

std::string
FlowDirectory::reconcile_with_model(double tolerance) const
{
    model::FlowScaleParams p;
    p.flow_capacity = cfg_.flow_capacity;
    p.shards = cfg_.shards;
    p.shard_capacity = shard_capacity_;
    p.tenants = cfg_.tenants;
    if (cfg_.sketch_enabled) {
        p.sketch_width = cfg_.sketch.width;
        p.sketch_depth = cfg_.sketch.depth;
        p.sketch_topk = cfg_.sketch.topk;
    }
    model::FlowScaleBreakdown m = model::flow_directory_memory(p);

    size_t xlt = 0;
    for (const Shard& sh : shards_)
        xlt += sh.xlt.memory_bytes();
    double state =
        double(cfg_.shards) * double(shard_capacity_) * kFlowStateBytes;
    double tenants = double(tenants_.size()) * kTenantStateBytes;
    double sketch =
        cfg_.sketch_enabled ? double(sketch_.memory_bytes()) : 0.0;

    auto diverges = [&](const char* what, double actual,
                        double predicted) -> std::string {
        double base = std::max(predicted, 1.0);
        double rel = std::abs(actual - predicted) / base;
        if (rel <= tolerance)
            return {};
        return strfmt("flow directory %s: instantiated %.0f B vs "
                      "model %.0f B (%.1f%% > %.1f%% tolerance)",
                      what, actual, predicted, rel * 100.0,
                      tolerance * 100.0);
    };
    std::string why;
    if (!(why = diverges("cuckoo xlt", double(xlt), m.cuckoo)).empty())
        return why;
    if (!(why = diverges("flow state", state, m.flow_state)).empty())
        return why;
    if (!(why = diverges("tenant stats", tenants, m.tenant_stats))
             .empty())
        return why;
    if (!(why = diverges("sketch", sketch, m.sketch)).empty())
        return why;
    return diverges("total", double(memory_bytes()), m.total);
}

} // namespace fld::core
