/**
 * @file
 * On-chip memory budget accounting.
 *
 * Every FLD-internal structure registers its byte cost here so tests
 * can assert the design stays within the prototype FPGA's capacity
 * (XCKU15P: ~10.05 MiB of BRAM+URAM, §4.3) and benches can print the
 * Table 3 breakdown from the *actual* instantiated configuration.
 *
 * Registration is symmetric: add() when a structure is instantiated
 * (or a flow opens), sub() when it is torn down (or the flow closes),
 * so a budget tracked under churn reflects the *resident* state, not
 * a high-water mark. Scoped wraps an add/sub pair in RAII for
 * structures with block lifetime.
 */
#ifndef FLD_FLD_MEM_BUDGET_H
#define FLD_FLD_MEM_BUDGET_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fld::core {

/** XCKU15P on-chip memory capacity in bytes (§4.3: 10.05 MiB). */
constexpr uint64_t kXcku15pBytes = uint64_t(10.05 * 1024 * 1024);

class MemBudget
{
  public:
    /** Register @p bytes under @p category (accumulates). */
    void add(const std::string& category, uint64_t bytes);

    /**
     * Release @p bytes from @p category. Returns false (and guards:
     * clamps the category at zero, bumps underflows()) when the
     * category is unknown or holds fewer than @p bytes — releasing
     * more than was registered is an accounting bug, never a crash.
     */
    bool sub(const std::string& category, uint64_t bytes);

    uint64_t total() const;
    uint64_t of(const std::string& category) const;

    /** Release attempts that exceeded the registered amount. */
    uint64_t underflows() const { return underflows_; }

    /** (category, bytes) in registration order. */
    const std::vector<std::pair<std::string, uint64_t>>& items() const
    {
        return items_;
    }

    bool fits_on_chip() const { return total() <= kXcku15pBytes; }

    MemBudget() = default;
    /** Live Scoped handles point into this object, so it is pinned. */
    MemBudget(const MemBudget&) = delete;
    MemBudget& operator=(const MemBudget&) = delete;
    ~MemBudget();

    /**
     * RAII registration: add() on construction, sub() on destruction.
     * Move-only, so a structure can hold one per budget category and
     * its teardown releases the bytes automatically.
     *
     * Lifetimes may end in either order: the budget enrolls every live
     * Scoped and detaches them when it is destroyed first, so a Scoped
     * outliving its budget destructs as a no-op instead of releasing
     * into freed memory (declaration order between a budget and the
     * structures registered in it is not a correctness concern).
     */
    class Scoped
    {
      public:
        Scoped() = default;
        Scoped(MemBudget& budget, std::string category, uint64_t bytes)
            : budget_(&budget), category_(std::move(category)),
              bytes_(bytes)
        {
            budget_->add(category_, bytes_);
            budget_->enroll(this);
        }
        ~Scoped() { release(); }

        Scoped(Scoped&& o) noexcept
            : budget_(o.budget_), category_(std::move(o.category_)),
              bytes_(o.bytes_)
        {
            o.budget_ = nullptr;
            o.bytes_ = 0;
            if (budget_)
                budget_->reenroll(&o, this);
        }
        Scoped& operator=(Scoped&& o) noexcept
        {
            if (this != &o) {
                release();
                budget_ = o.budget_;
                category_ = std::move(o.category_);
                bytes_ = o.bytes_;
                o.budget_ = nullptr;
                o.bytes_ = 0;
                if (budget_)
                    budget_->reenroll(&o, this);
            }
            return *this;
        }
        Scoped(const Scoped&) = delete;
        Scoped& operator=(const Scoped&) = delete;

        uint64_t bytes() const { return bytes_; }
        const std::string& category() const { return category_; }

        /** Early release (idempotent). */
        void release()
        {
            if (budget_) {
                if (bytes_)
                    budget_->sub(category_, bytes_);
                budget_->unenroll(this);
            }
            budget_ = nullptr;
            bytes_ = 0;
        }

      private:
        friend class MemBudget;
        MemBudget* budget_ = nullptr;
        std::string category_;
        uint64_t bytes_ = 0;
    };

    /** Convenience: make a Scoped registration against this budget. */
    Scoped scoped(std::string category, uint64_t bytes)
    {
        return Scoped(*this, std::move(category), bytes);
    }

  private:
    void enroll(Scoped* s) { live_scoped_.push_back(s); }
    void unenroll(Scoped* s);
    void reenroll(Scoped* from, Scoped* to);

    std::vector<std::pair<std::string, uint64_t>> items_;
    std::vector<Scoped*> live_scoped_;
    uint64_t underflows_ = 0;
};

} // namespace fld::core

#endif // FLD_FLD_MEM_BUDGET_H
