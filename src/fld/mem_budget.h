/**
 * @file
 * On-chip memory budget accounting.
 *
 * Every FLD-internal structure registers its byte cost here so tests
 * can assert the design stays within the prototype FPGA's capacity
 * (XCKU15P: ~10.05 MiB of BRAM+URAM, §4.3) and benches can print the
 * Table 3 breakdown from the *actual* instantiated configuration.
 */
#ifndef FLD_FLD_MEM_BUDGET_H
#define FLD_FLD_MEM_BUDGET_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fld::core {

/** XCKU15P on-chip memory capacity in bytes (§4.3: 10.05 MiB). */
constexpr uint64_t kXcku15pBytes = uint64_t(10.05 * 1024 * 1024);

class MemBudget
{
  public:
    /** Register @p bytes under @p category (accumulates). */
    void add(const std::string& category, uint64_t bytes);

    uint64_t total() const;
    uint64_t of(const std::string& category) const;

    /** (category, bytes) in registration order. */
    const std::vector<std::pair<std::string, uint64_t>>& items() const
    {
        return items_;
    }

    bool fits_on_chip() const { return total() <= kXcku15pBytes; }

  private:
    std::vector<std::pair<std::string, uint64_t>> items_;
};

} // namespace fld::core

#endif // FLD_FLD_MEM_BUDGET_H
