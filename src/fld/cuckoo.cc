#include "fld/cuckoo.h"

#include <algorithm>

#include "util/bitops.h"
#include "util/logging.h"

namespace fld::core {

namespace {
/** Per-bank hash: splitmix64 finalizer over key mixed with bank salt. */
uint64_t
mix(uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}
} // namespace

CuckooTable::CuckooTable(size_t capacity, unsigned banks,
                         size_t stash_size, uint64_t seed)
    : capacity_(capacity), banks_(banks), stash_size_(stash_size),
      seed_(seed)
{
    if (capacity == 0 || banks == 0)
        fatal("CuckooTable: capacity and banks must be positive");
    // Load factor 1/2: 2x capacity slots, split across banks.
    slots_per_bank_ = std::max<size_t>(1, 2 * capacity / banks);
    table_.resize(size_t(banks_) * slots_per_bank_);
    stash_.reserve(stash_size_);
}

size_t
CuckooTable::bank_index(unsigned bank, uint64_t key) const
{
    uint64_t h = mix(key + seed_ + uint64_t(bank) * 0x9e3779b97f4a7c15ull);
    return size_t(bank) * slots_per_bank_ + size_t(h % slots_per_bank_);
}

std::optional<uint32_t>
CuckooTable::lookup(uint64_t key) const
{
    for (unsigned b = 0; b < banks_; ++b) {
        const Slot& s = table_[bank_index(b, key)];
        if (s.valid && s.key == key)
            return s.value;
    }
    for (const Slot& s : stash_) {
        if (s.valid && s.key == key)
            return s.value;
    }
    return std::nullopt;
}

bool
CuckooTable::insert(uint64_t key, uint32_t value)
{
    if (lookup(key))
        fatal("CuckooTable: duplicate key insert");

    // Fast path: any empty bank slot.
    for (unsigned b = 0; b < banks_; ++b) {
        Slot& s = table_[bank_index(b, key)];
        if (!s.valid) {
            stats_.inserts++;
            s = {true, key, value};
            ++size_;
            drain_stash();
            return true;
        }
    }

    // All banks collide: evicting needs stash space; hardware stalls
    // the producer until a release drains some.
    if (stash_.size() >= stash_size_) {
        stats_.stalls++;
        return false;
    }
    stats_.inserts++;

    // Evict the bank-0 victim to the stash, place the new entry, then
    // let the stash try to re-home the victim.
    Slot& victim_slot = table_[bank_index(0, key)];
    stash_.push_back(victim_slot);
    stats_.stash_inserts++;
    stats_.stash_peak = std::max(stats_.stash_peak, stash_.size());
    victim_slot = {true, key, value};
    ++size_;
    drain_stash();
    return true;
}

void
CuckooTable::drain_stash()
{
    for (size_t i = 0; i < stash_.size();) {
        bool placed = false;
        for (unsigned b = 0; b < banks_; ++b) {
            Slot& s = table_[bank_index(b, stash_[i].key)];
            if (!s.valid) {
                s = stash_[i];
                stash_.erase(stash_.begin() + long(i));
                stats_.displacements++;
                placed = true;
                break;
            }
        }
        if (!placed)
            ++i;
    }
}

bool
CuckooTable::erase(uint64_t key)
{
    for (unsigned b = 0; b < banks_; ++b) {
        Slot& s = table_[bank_index(b, key)];
        if (s.valid && s.key == key) {
            s.valid = false;
            --size_;
            drain_stash();
            return true;
        }
    }
    for (size_t i = 0; i < stash_.size(); ++i) {
        if (stash_[i].valid && stash_[i].key == key) {
            stash_.erase(stash_.begin() + long(i));
            --size_;
            return true;
        }
    }
    return false;
}

size_t
CuckooTable::memory_bytes() const
{
    // Hardware cost per slot: ~26-bit key tag + value bits + valid,
    // packed to 4 bytes (the paper reports 15.5 KiB for 4096 slots,
    // i.e. just under 4 B per slot).
    return table_.size() * 4 + stash_size_ * 8;
}

} // namespace fld::core
