/**
 * @file
 * FlexDriver (FLD): the paper's contribution — an on-accelerator
 * hardware module implementing the NIC data-plane driver (§5).
 *
 * FLD exposes a PCIe BAR the NIC DMAs against. The trick (§5.2) is
 * that nothing behind that BAR is stored in the NIC's format:
 *
 *  - Transmit descriptor rings are *virtual*. A 4-bank cuckoo table
 *    maps (queue, ring slot) into one shared pool of 8 B compressed
 *    descriptors; the 64 B vendor WQE is synthesized on-the-fly when
 *    the NIC's read arrives.
 *  - Transmit data lives in a small shared physical buffer behind
 *    per-queue virtual windows with chunk-granular translation.
 *  - Completions are stored compressed (15 B) after conversion from
 *    the 64 B wire CQE.
 *  - The receive descriptor ring lives in *host* memory and is never
 *    modified: FLD recycles buffers in posting order, so recycling is
 *    just a producer-index doorbell.
 *
 * The accelerator side is a pair of AXI4-Stream-like channels with
 * per-queue transmit credits (§5.5).
 */
#ifndef FLD_FLD_FLEXDRIVER_H
#define FLD_FLD_FLEXDRIVER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fld/axi.h"
#include "fld/buffer_pool.h"
#include "fld/cuckoo.h"
#include "fld/flow_directory.h"
#include "fld/mem_budget.h"
#include "nic/descriptors.h"
#include "pcie/fabric.h"
#include "sim/event_queue.h"

namespace fld::core {

/** FLD instantiation parameters. Defaults mirror the prototype (§6):
 *  two transmit queues, 4096-descriptor pool, 256 KiB buffers. */
struct FldConfig
{
    uint32_t num_tx_queues = 2;
    uint32_t tx_desc_pool = 4096;
    uint32_t tx_ring_entries = 2048;  ///< virtual ring slots per queue
    uint32_t tx_buffer_bytes = 256 * 1024;
    uint32_t tx_vwindow_bytes = 256 * 1024; ///< virtual window per queue
    uint32_t rx_buffer_bytes = 256 * 1024;
    uint32_t rx_stride_shift = 11;    ///< 2 KiB MPRQ strides
    uint32_t rx_strides_per_buffer = 8;
    uint32_t cq_entries = 1024;       ///< per CQ (one TX, one RX)
    uint32_t signal_interval = 16;    ///< selective completion period
    bool wqe_by_mmio = true;          ///< inline lone WQEs in doorbells
    double clock_mhz = 250.0;         ///< FPGA clock (§6, Table 5)
    uint32_t pipeline_cycles = 50;    ///< packet-processing latency (250 MHz FPGA)
    /** Flow-directory control plane (0 = disabled, the prototype
     *  default: flow state is the runtime's business unless the
     *  deployment asks FLD to track it on-die). */
    uint64_t flow_capacity = 0;
    uint32_t flow_shards = 0;   ///< 0 = auto (see FlowDirectoryConfig)
    uint32_t flow_tenants = 64;
    bool flow_sketch = true;    ///< heavy-hitter telemetry
};

/** Errors FLD reports to the control plane (§5.3, error handling). */
struct FldError
{
    enum class Type {
        TxNoCredits,   ///< accelerator sent without credits
        CuckooStall,   ///< descriptor insert stalled (stash full)
        NicError,      ///< error CQE from the NIC
        BadQueue,
    };
    Type type;
    uint32_t queue = 0;
};

struct FldStats
{
    uint64_t tx_packets = 0;
    uint64_t tx_bytes = 0;
    uint64_t rx_packets = 0;
    uint64_t rx_bytes = 0;
    uint64_t tx_rejected = 0;  ///< no credits
    uint64_t doorbells = 0;
    uint64_t wqe_reads = 0;    ///< descriptor slots synthesized
    uint64_t cqes = 0;
    uint64_t buffers_recycled = 0;
};

class FlexDriver : public pcie::PcieEndpoint
{
  public:
    // BAR regions (BAR-relative).
    static constexpr uint64_t kTxRingRegion = 0x0000'0000;
    static constexpr uint64_t kTxDataRegion = 0x1000'0000;
    static constexpr uint64_t kRxDataRegion = 0x2000'0000;
    static constexpr uint64_t kCqRegion = 0x3000'0000;
    static constexpr uint64_t kBarSize = 0x4000'0000;

    /**
     * @param bar_base Fabric address the BAR is attached at (FLD puts
     *        absolute payload addresses into the WQEs it synthesizes).
     * @param nic_bar_base Fabric address of the NIC BAR (doorbells).
     */
    FlexDriver(std::string name, sim::EventQueue& eq,
               pcie::PcieFabric& fabric, pcie::PortId port,
               uint64_t bar_base, uint64_t nic_bar_base,
               FldConfig cfg = {});

    // -- control-plane binding (performed by the FLD runtime, §5.3) --

    /**
     * Bind FLD tx queue @p q to NIC send queue @p nic_sqn.
     * @p completion_key is the qpn field TX CQEs carry (the sqn for
     * Ethernet queues, the QP number for RDMA queues).
     */
    void bind_tx_queue(uint32_t q, uint32_t nic_sqn,
                       uint32_t completion_key, bool is_rdma);

    /**
     * Bind a NIC receive queue to FLD. @p completion_key is the qpn
     * field RX CQEs will carry (the rqn for Ethernet, the QP number
     * for RDMA). @p buffer_count buffers of the configured geometry
     * are carved out of the RX SRAM; the control plane must have
     * posted matching descriptors into the host-memory ring.
     */
    void bind_rx_queue(uint32_t completion_key, uint32_t nic_rqn,
                       bool is_rdma, uint32_t buffer_count,
                       uint32_t initial_pi);

    /** Ring-layout helpers for the control plane. */
    uint64_t tx_ring_addr(uint32_t q) const;
    uint64_t tx_cq_addr() const;
    uint64_t rx_cq_addr() const;
    uint64_t rx_buffer_addr(uint32_t rx_key, uint32_t buffer_index) const;
    uint32_t rx_buffer_bytes_per_buffer() const
    {
        return cfg_.rx_strides_per_buffer << cfg_.rx_stride_shift;
    }

    // -- accelerator-facing AXI-stream interface (§5.5) --

    void set_rx_handler(StreamRxHandler fn) { rx_handler_ = std::move(fn); }
    void set_credit_handler(CreditHandler fn)
    {
        credit_handler_ = std::move(fn);
    }

    /**
     * Transmit a packet on FLD queue @p q. Returns false (and reports
     * TxNoCredits) when descriptors or buffer space are exhausted —
     * well-behaved accelerators check credits first.
     */
    bool tx(uint32_t q, StreamPacket&& pkt);

    /** Current per-queue transmit credits. */
    TxCredits tx_credits(uint32_t q) const;

    using ErrorHandler = std::function<void(const FldError&)>;
    void set_error_handler(ErrorHandler fn) { errors_ = std::move(fn); }

    const FldStats& stats() const { return stats_; }
    const FldConfig& config() const { return cfg_; }
    const MemBudget& mem_budget() const { return budget_; }
    const CuckooTable& tx_xlt() const { return tx_xlt_; }
    /** On-die flow directory; null unless cfg.flow_capacity > 0. */
    const FlowDirectory* flow_directory() const { return flows_.get(); }

    // -- PcieEndpoint --
    void bar_write(uint64_t addr, const uint8_t* data,
                   size_t len) override;
    void bar_read(uint64_t addr, uint8_t* out, size_t len) override;
    std::string ep_name() const override { return name_; }
    uint64_t read_processing_ps() const override;

  private:
    /** Compressed transmit descriptor: 8 B of on-die state (§5.2). */
    struct CompressedTxDesc
    {
        uint32_t voff = 0;      ///< virtual offset in the queue window
        uint32_t len = 0;
        uint16_t wqe_index = 0; ///< producer index (mod 2^16)
        bool signaled = false;
        bool is_nop = false;    ///< drain NOP: no payload, no buffer
        uint32_t msg_id = 0;
        uint32_t flow_tag = 0;  ///< FLD-E context id (§5.4)
        uint32_t next_table = 0;///< FLD-E resume table (§5.3)
        uint64_t corr = 0;      ///< trace correlation id (0 = untraced)
        bool valid = false;
    };
    struct TxQueue
    {
        uint32_t nic_sqn = 0;        ///< doorbell target
        uint32_t completion_key = 0; ///< qpn field in TX CQEs
        bool is_rdma = false;
        bool bound = false;
        uint32_t pi = 0; ///< producer index (absolute)
        std::deque<uint32_t> outstanding; ///< pool indices, FIFO
        uint32_t unsignaled = 0;
        bool doorbell_inflight = false;
        bool doorbell_dirty = false;
    };
    struct RxBinding
    {
        uint32_t nic_rqn = 0;
        bool is_rdma = false;
        uint32_t buffer_count = 0;
        uint64_t sram_base = 0; ///< offset into rx SRAM
        uint32_t pi = 0;
        uint32_t recycled_ci = 0;    ///< buffers returned to the NIC
        uint32_t last_buffer = 0;    ///< latest rq_wqe_index observed
        bool any_seen = false;
        bool doorbell_inflight = false;
        bool doorbell_dirty = false;
    };

    void synthesize_wqe(uint32_t q, uint32_t slot, uint8_t* out);
    void post_drain_nop(uint32_t q);
    void handle_tx_cqe(const nic::Cqe& cqe);
    void handle_rx_cqe(const nic::Cqe& cqe);
    void issue_tx_doorbell(uint32_t q);
    void issue_rx_doorbell(uint32_t rx_key);
    void report(FldError::Type type, uint32_t queue);

    std::string name_;
    sim::EventQueue& eq_;
    pcie::PcieFabric& fabric_;
    pcie::PortId port_;
    uint64_t bar_base_;
    uint64_t nic_bar_base_;
    FldConfig cfg_;

    std::vector<TxQueue> txq_;
    std::vector<CompressedTxDesc> desc_pool_;
    std::vector<uint32_t> desc_free_;
    CuckooTable tx_xlt_;
    TxBufferPool tx_buf_;
    std::vector<uint8_t> rx_sram_;
    uint64_t rx_sram_alloc_ = 0;
    std::map<uint32_t, RxBinding> rx_; ///< by completion key

    void note_flow(uint64_t key, uint32_t tenant_hint, uint32_t bytes);

    StreamRxHandler rx_handler_;
    /** Deliveries of the CQE block currently being expanded: a
     *  compressed block's mini-CQE train all leaves the FLD at the
     *  same tick, so bar_write collects the callbacks here and issues
     *  them as one schedule_batch (one wheel touch per train). */
    std::vector<sim::EventQueue::Callback> rx_burst_;
    CreditHandler credit_handler_;
    ErrorHandler errors_;
    FldStats stats_;
    MemBudget budget_;
    std::unique_ptr<FlowDirectory> flows_;
};

} // namespace fld::core

#endif // FLD_FLD_FLEXDRIVER_H
