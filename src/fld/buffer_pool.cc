#include "fld/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "util/bitops.h"
#include "util/logging.h"

namespace fld::core {

TxBufferPool::TxBufferPool(uint32_t phys_bytes, uint32_t queues,
                           uint32_t vwindow_bytes)
    : vwindow_(vwindow_bytes),
      window_chunks_(vwindow_bytes / kChunkBytes)
{
    if (!is_pow2(vwindow_bytes) || vwindow_bytes % kChunkBytes != 0)
        fatal("TxBufferPool: bad virtual window size");
    uint32_t phys_chunks = phys_bytes / kChunkBytes;
    data_.resize(size_t(phys_chunks) * kChunkBytes);
    free_list_.reserve(phys_chunks);
    // LIFO free list; order does not matter for correctness.
    for (uint32_t c = 0; c < phys_chunks; ++c)
        free_list_.push_back(phys_chunks - 1 - c);
    queues_.resize(queues);
    for (auto& q : queues_)
        q.xlt.assign(window_chunks_, ~0u);
}

std::optional<uint64_t>
TxBufferPool::alloc(uint32_t q, uint32_t len)
{
    if (q >= queues_.size() || len == 0 || len > vwindow_)
        return std::nullopt;
    QueueState& qs = queues_[q];
    uint32_t chunks = uint32_t(ceil_div<uint64_t>(len, kChunkBytes));
    if (free_list_.size() < chunks)
        return std::nullopt;

    // Virtually contiguous: if the allocation would cross the window
    // end, pad to the window start (bounded fragmentation).
    uint64_t voff = qs.next_voff;
    uint64_t in_window = voff % vwindow_;
    uint64_t padding = 0;
    if (in_window + len > vwindow_)
        padding = vwindow_ - in_window;

    // The window must not overrun the oldest outstanding allocation.
    if (qs.outstanding_bytes + padding + uint64_t(chunks) * kChunkBytes >
        vwindow_) {
        return std::nullopt;
    }
    if (padding > 0) {
        // Record the pad as a zero-chunk allocation so frees stay FIFO.
        qs.allocs.push_back({voff, uint32_t(padding), 0});
        qs.outstanding_bytes += padding;
        voff += padding;
    }

    uint64_t vchunk0 = (voff % vwindow_) / kChunkBytes;
    for (uint32_t c = 0; c < chunks; ++c) {
        uint32_t phys = free_list_.back();
        free_list_.pop_back();
        qs.xlt[(vchunk0 + c) % window_chunks_] = phys;
    }
    qs.allocs.push_back({voff, len, chunks});
    qs.outstanding_bytes += uint64_t(chunks) * kChunkBytes;
    qs.next_voff = voff + uint64_t(chunks) * kChunkBytes;
    return voff % vwindow_;
}

void
TxBufferPool::free_oldest(uint32_t q)
{
    QueueState& qs = queues_[q];
    // Drop leading pads along with the real allocation.
    while (!qs.allocs.empty() && qs.allocs.front().chunks == 0) {
        qs.outstanding_bytes -= qs.allocs.front().len;
        qs.allocs.pop_front();
    }
    if (qs.allocs.empty())
        return;
    Alloc a = qs.allocs.front();
    qs.allocs.pop_front();
    uint64_t vchunk0 = (a.voff % vwindow_) / kChunkBytes;
    for (uint32_t c = 0; c < a.chunks; ++c) {
        uint32_t idx = uint32_t((vchunk0 + c) % window_chunks_);
        free_list_.push_back(qs.xlt[idx]);
        qs.xlt[idx] = ~0u;
    }
    qs.outstanding_bytes -= uint64_t(a.chunks) * kChunkBytes;
}

std::optional<uint32_t>
TxBufferPool::translate(uint32_t q, uint64_t voff) const
{
    if (q >= queues_.size() || voff >= vwindow_)
        return std::nullopt;
    uint32_t phys_chunk = queues_[q].xlt[voff / kChunkBytes];
    if (phys_chunk == ~0u)
        return std::nullopt;
    return phys_chunk * kChunkBytes + uint32_t(voff % kChunkBytes);
}

void
TxBufferPool::write(uint32_t q, uint64_t voff, const uint8_t* src,
                    uint32_t len)
{
    uint32_t done = 0;
    while (done < len) {
        auto phys = translate(q, voff + done);
        if (!phys)
            panic("TxBufferPool::write: unmapped virtual offset");
        uint32_t in_chunk = (voff + done) % kChunkBytes;
        uint32_t take = std::min(len - done, kChunkBytes - in_chunk);
        std::memcpy(data_.data() + *phys, src + done, take);
        done += take;
    }
}

void
TxBufferPool::read(uint32_t q, uint64_t voff, uint8_t* dst,
                   uint32_t len) const
{
    uint32_t done = 0;
    while (done < len) {
        auto phys = translate(q, voff + done);
        if (!phys)
            panic("TxBufferPool::read: unmapped voff=%llu len=%u q=%u",
                  (unsigned long long)(voff + done), len, q);
        uint32_t in_chunk = (voff + done) % kChunkBytes;
        uint32_t take = std::min(len - done, kChunkBytes - in_chunk);
        std::memcpy(dst + done, data_.data() + *phys, take);
        done += take;
    }
}

uint32_t
TxBufferPool::available(uint32_t q) const
{
    if (q >= queues_.size())
        return 0;
    uint64_t window_left = vwindow_ - queues_[q].outstanding_bytes;
    return uint32_t(std::min<uint64_t>(window_left, free_bytes()));
}

size_t
TxBufferPool::xlt_bytes() const
{
    // 4 B per virtual chunk per queue.
    return size_t(queues_.size()) * window_chunks_ * 4;
}

} // namespace fld::core
