/**
 * @file
 * The FLD <-> accelerator interface (§5.5).
 *
 * Two AXI4-Stream-like channels carry packets with sideband metadata.
 * Receive: the accelerator may NOT backpressure FLD (it must meet line
 * rate, flow-control at the application layer, or drop). Transmit:
 * FLD exposes per-queue credits over its descriptor pool and data
 * buffer so accelerators can allocate resources across queues.
 */
#ifndef FLD_FLD_AXI_H
#define FLD_FLD_AXI_H

#include <cstdint>
#include <functional>
#include <vector>

namespace fld::core {

/** Sideband metadata accompanying each streamed packet. */
struct StreamMeta
{
    uint32_t queue = 0;      ///< FLD queue index
    uint32_t context_id = 0; ///< NIC flow tag (tenant/VM identity, §5.4)
    uint32_t next_table = 0; ///< FLD-E: table to resume after accel
    uint32_t rss_hash = 0;
    bool l3_csum_ok = false; ///< NIC offload verdicts, from the CQE
    bool l4_csum_ok = false;
    bool ip_fragment = false;
    bool tunneled = false;
    // RDMA (FLD-R) message framing, from per-packet MPRQ completions:
    uint32_t msg_id = 0;
    uint32_t msg_offset = 0;
    uint32_t msg_len = 0;
    bool msg_last = false;
    bool is_rdma = false;
    uint64_t corr = 0;       ///< trace correlation id (0 = untraced)
};

/** A packet on the stream interface. */
struct StreamPacket
{
    std::vector<uint8_t> data;
    StreamMeta meta;

    size_t size() const { return data.size(); }
};

/** Per-queue transmit credit snapshot. */
struct TxCredits
{
    uint32_t descriptors = 0; ///< WQE slots available
    uint32_t buffer_bytes = 0;
};

/** Receive-side handler type (no backpressure allowed). */
using StreamRxHandler = std::function<void(StreamPacket&&)>;

/** Credit-return notification: (queue, descs freed, bytes freed). */
using CreditHandler =
    std::function<void(uint32_t queue, uint32_t descs, uint32_t bytes)>;

} // namespace fld::core

#endif // FLD_FLD_AXI_H
