/**
 * @file
 * FlowDirectory: the FLD control plane's flow-state store, scaled to
 * 10^6 concurrent flows.
 *
 * The paper's Table 3 shows the *driver* state fitting on-die via
 * compression; a production FLD additionally tracks per-flow and
 * per-tenant state (steering context, stats, telemetry) for very
 * large flow counts under constant open/close churn. This facade
 * packages that state the same way §5.2 packages descriptors:
 *
 *  - Sharded translation: flow keys hash to one of N independent
 *    4-bank cuckoo shards (load factor 1/2, small stash), each
 *    backed by its own packed flow-record pool. Shards bound the
 *    eviction work per insert and are the unit a hardware design
 *    would pipeline; per-shard capacity carries 12.5% slack so hash
 *    imbalance does not reject flows before nominal capacity.
 *  - O(1) incremental stats: every open/close/record updates the
 *    flow record, its tenant's counters and the directory totals in
 *    constant time — no scans, ever, at any size.
 *  - Bounded-memory telemetry: an optional count-min + top-k
 *    heavy-hitter sketch (fld/sketch.h) absorbs per-flow byte
 *    accounting that would otherwise need unbounded exact counters.
 *  - Budget discipline: every structure registers its packed
 *    hardware cost in a MemBudget (released on teardown via scoped
 *    registrations), and reconcile_with_model() cross-checks the
 *    instantiated bytes against model::flow_directory_memory — the
 *    SRAM-budget claim, validated at every size point.
 */
#ifndef FLD_FLD_FLOW_DIRECTORY_H
#define FLD_FLD_FLOW_DIRECTORY_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fld/cuckoo.h"
#include "fld/mem_budget.h"
#include "fld/sketch.h"

namespace fld::core {

struct FlowDirectoryConfig
{
    /** Nominal max concurrent flows across all shards. */
    uint64_t flow_capacity = 4096;
    /** Cuckoo shards; 0 = auto (one per 16k flows, power of two,
     *  capped at 256). */
    uint32_t shards = 0;
    /** Tenant id space (tenant ids are taken mod this). */
    uint32_t tenants = 64;
    bool sketch_enabled = true;
    /** Sketch geometry; width 0 = auto (capacity/16, >= 1024, pow2). */
    SketchConfig sketch{.width = 0};
    uint64_t seed = 0x5bd1e995;
};

class FlowDirectory
{
  public:
    /** Packed hardware bytes per flow record / tenant record — must
     *  agree with model::kFlowStateBytes / kTenantStateBytes. */
    static constexpr uint32_t kFlowStateBytes = 24;
    static constexpr uint32_t kTenantStateBytes = 32;

    struct FlowInfo
    {
        uint64_t key = 0;
        uint16_t tenant = 0;
        uint64_t packets = 0;
        uint64_t bytes = 0;
    };

    struct TenantStats
    {
        uint64_t flows_open = 0;   ///< currently open
        uint64_t flows_opened = 0; ///< lifetime opens
        uint64_t flows_closed = 0;
        uint64_t packets = 0;
        uint64_t bytes = 0;
        uint64_t rejects = 0; ///< opens refused (full/stall)
    };

    struct Stats
    {
        uint64_t opens = 0;
        uint64_t closes = 0;
        uint64_t auto_opens = 0;      ///< record_auto first-sight opens
        uint64_t duplicate_opens = 0; ///< open of an existing key
        uint64_t unknown_closes = 0;  ///< close of an absent key
        uint64_t rejected_full = 0;   ///< shard pool exhausted
        uint64_t rejected_stall = 0;  ///< cuckoo stash stall
        uint64_t packets = 0;
        uint64_t bytes = 0;
        uint64_t lookups = 0;
    };

    explicit FlowDirectory(FlowDirectoryConfig cfg = {});

    /** Open a flow. False (and a tenant reject) when the key exists
     *  or the owning shard is out of capacity / stash-stalled. */
    bool open_flow(uint64_t key, uint16_t tenant);

    /** Close a flow; false when the key is not open. */
    bool close_flow(uint64_t key);

    /** Account one packet of @p bytes to an open flow. O(1). False
     *  when the flow is unknown. */
    bool record(uint64_t key, uint32_t bytes);

    /** record() that opens the flow on first sight (datapath-style
     *  learning). False only when the open itself is rejected. */
    bool record_auto(uint64_t key, uint16_t tenant, uint32_t bytes);

    std::optional<FlowInfo> find(uint64_t key) const;

    size_t size() const { return size_; }
    uint64_t capacity() const { return cfg_.flow_capacity; }
    /** Resolved configuration (shards/sketch width filled in). */
    const FlowDirectoryConfig& config() const { return cfg_; }
    uint32_t shard_of(uint64_t key) const;
    /** Open flows currently living in shard @p s (tests/telemetry). */
    size_t shard_size(uint32_t s) const;
    uint64_t shard_capacity() const { return shard_capacity_; }
    const CuckooTable& shard_table(uint32_t s) const;

    const TenantStats& tenant(uint16_t t) const;
    const std::vector<TenantStats>& tenants() const { return tenants_; }

    const HeavyHitterSketch* sketch() const
    {
        return cfg_.sketch_enabled ? &sketch_ : nullptr;
    }

    const Stats& stats() const { return stats_; }

    /** Provisioned on-die bytes (all shards + tenants + sketch). */
    size_t memory_bytes() const;
    /** Packed bytes of the currently *open* flow records. */
    size_t active_state_bytes() const { return size_ * kFlowStateBytes; }

    /**
     * Register the provisioned structures in @p budget under the
     * "flow ..." categories. Scoped: destroying (or re-attaching)
     * the directory releases the bytes, so budgets tracked across
     * churn stay a live gauge.
     */
    void attach_budget(MemBudget& budget);

    /**
     * Cross-check the instantiated bytes against the analytical
     * model at this directory's resolved geometry. Returns an empty
     * string when every category and the total agree within
     * @p tolerance (fractional, e.g. 0.05), else a description of
     * the first divergence.
     */
    std::string reconcile_with_model(double tolerance = 0.05) const;

  private:
    struct FlowSlot
    {
        uint64_t key = 0;
        uint16_t tenant = 0;
        uint64_t packets = 0;
        uint64_t bytes = 0;
    };
    struct Shard
    {
        CuckooTable xlt;
        std::vector<FlowSlot> pool;
        std::vector<uint32_t> free_list;
        explicit Shard(uint64_t capacity, uint64_t seed);
    };

    TenantStats& tenant_slot(uint16_t t);

    FlowDirectoryConfig cfg_;
    uint64_t shard_capacity_ = 0;
    std::vector<Shard> shards_;
    std::vector<TenantStats> tenants_;
    HeavyHitterSketch sketch_;
    size_t size_ = 0;
    Stats stats_;
    std::vector<MemBudget::Scoped> budget_regs_;
};

} // namespace fld::core

#endif // FLD_FLD_FLOW_DIRECTORY_H
