/**
 * @file
 * Match-action flow tables (the NIC's embedded-switch steering engine).
 *
 * Models the ConnectX eSwitch / rte_flow pipeline of §2.3: numbered
 * tables hold prioritized rules; each rule matches packet fields and
 * applies an action list (tag, encap/decap, count, forward, goto).
 * FLD-E extends the action set with SendToAccel + next-table resume
 * (§5.3), which is exactly how inline acceleration re-enters the
 * pipeline mid-way.
 */
#ifndef FLD_NIC_FLOW_TABLE_H
#define FLD_NIC_FLOW_TABLE_H

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/headers.h"
#include "net/packet.h"

namespace fld::nic {

/** Logical switch port ids. Convention: 0 is the wire uplink. */
using VportId = uint16_t;
constexpr VportId kUplinkVport = 0;

/** Fields a rule may match on; unset fields are wildcards. */
struct FlowMatch
{
    std::optional<VportId> in_vport;
    std::optional<uint16_t> ethertype;
    std::optional<uint8_t> ip_proto;
    std::optional<uint32_t> src_ip;
    std::optional<uint32_t> dst_ip;
    std::optional<uint16_t> sport;
    std::optional<uint16_t> dport;
    std::optional<bool> is_fragment;
    std::optional<uint32_t> vni;     ///< matches decapsulated VXLAN id
    std::optional<uint32_t> flow_tag;///< matches a previously set tag
};

/** Action kinds (applied in rule order until a terminal one). */
enum class ActionType : uint8_t {
    SetTag,       ///< tag packet with context/tenant id
    Count,        ///< bump a named counter
    VxlanDecap,   ///< strip outer Eth/IP/UDP/VXLAN
    VxlanEncap,   ///< add outer headers (params in action)
    Meter,        ///< pass through a named token-bucket rate limiter
    Goto,         ///< continue matching at another table
    ForwardVport, ///< terminal: deliver to a vport's RX pipeline
    ForwardTir,   ///< terminal: deliver to an RSS group (TIR)
    ForwardQueue, ///< terminal: deliver to a specific RQ
    SendToAccel,  ///< terminal: FLD-E acceleration action
    Drop,         ///< terminal
    // Programmable-pipeline extensions (nic/pipeline.h). The fixed
    // interpreter executes them too, so rules installed via add_rule
    // behave identically under both engines.
    AclDeny,      ///< terminal: policy drop, counted separately
    NatRewrite,   ///< rewrite IPv4 addrs/ports (flags in arg0)
    VipSelect,    ///< pick a VIP pool backend, rewrite dst ip
};

struct Action
{
    ActionType type;
    uint32_t arg0 = 0; ///< tag / table / vport / tir / rqn / meter id
    uint32_t arg1 = 0; ///< SendToAccel: next_table; VxlanEncap: vni
    uint32_t arg2 = 0; ///< VxlanEncap: outer src ip
    uint32_t arg3 = 0; ///< VxlanEncap: outer dst ip
};

/** Convenience constructors for common actions. */
Action set_tag(uint32_t tag);
Action count_action(uint32_t counter_id);
Action vxlan_decap();
Action vxlan_encap(uint32_t vni, uint32_t src_ip, uint32_t dst_ip);
Action meter(uint32_t meter_id);
Action goto_table(uint32_t table);
Action fwd_vport(VportId vport);
Action fwd_tir(uint32_t tir);
Action fwd_queue(uint32_t rqn);
Action send_to_accel(uint32_t rqn, uint32_t next_table);
Action drop_action();
Action acl_deny(uint32_t acl_id);
/** Destination NAT: rewrite dst ip (and optionally dst port). */
Action nat_dst(uint32_t new_dst_ip);
Action nat_dst(uint32_t new_dst_ip, uint16_t new_dport);
/** Source NAT: rewrite src ip (and optionally src port). */
Action nat_src(uint32_t new_src_ip);
Action nat_src(uint32_t new_src_ip, uint16_t new_sport);
/** VIP load balancing: rewrite dst ip to a backend of @p pool_id. */
Action vip_select(uint32_t pool_id);

/** A rule installed in a table. */
struct FlowRule
{
    uint64_t id = 0;
    int priority = 0; ///< higher wins
    FlowMatch match;
    std::vector<Action> actions;
    uint64_t hits = 0;
    uint64_t hit_bytes = 0;
};

/** Pre-extracted packet fields the matcher tests against. */
struct FlowFields
{
    VportId in_vport = kUplinkVport;
    uint16_t ethertype = 0;
    uint8_t ip_proto = 0;
    uint32_t src_ip = 0;
    uint32_t dst_ip = 0;
    uint16_t sport = 0;
    uint16_t dport = 0;
    bool is_fragment = false;
    bool has_l4 = false;
    uint32_t vni = 0;
    bool tunneled = false;
    uint32_t flow_tag = 0;

    /** Extract fields from a packet entering at @p vport. */
    static FlowFields of(const net::Packet& pkt, VportId vport);
};

/** A set of numbered tables with prioritized rules. */
class FlowTables
{
  public:
    /** Install a rule; returns its id. */
    uint64_t add_rule(uint32_t table, int priority, FlowMatch match,
                      std::vector<Action> actions);

    /** Remove by id; returns false when absent. */
    bool remove_rule(uint64_t id);

    /** Highest-priority matching rule in @p table, or null. */
    FlowRule* lookup(uint32_t table, const FlowFields& fields);

    /** Rule hit counters (Count actions accumulate here too). O(1):
     *  steering counters are bumped per packet at line rate. */
    uint64_t counter(uint32_t counter_id) const;
    void bump_counter(uint32_t counter_id, uint64_t bytes);

    /** Per-tag steering stats, bumped whenever a SetTag action fires
     *  (tags are the eSwitch's tenant/context handles, so this is the
     *  per-tenant view of the steering pipeline). */
    struct TagStats
    {
        uint64_t packets = 0;
        uint64_t bytes = 0;
    };
    void note_tag(uint32_t tag, uint64_t bytes);
    /** Stats for @p tag (zeroes when the tag was never set). */
    TagStats tag_stats(uint32_t tag) const;
    const std::unordered_map<uint32_t, TagStats>& tags() const
    {
        return tag_stats_;
    }

    size_t rule_count() const;

    /** All tables with their priority-sorted rules (read-only view;
     *  the pipeline compiler consumes this to build the default
     *  program). */
    const std::map<uint32_t, std::vector<FlowRule>>& all_tables() const
    {
        return tables_;
    }

  private:
    static bool matches(const FlowMatch& m, const FlowFields& f);

    std::map<uint32_t, std::vector<FlowRule>> tables_;
    std::unordered_map<uint32_t, uint64_t> counters_;
    std::unordered_map<uint32_t, TagStats> tag_stats_;
    uint64_t next_id_ = 1;
};

} // namespace fld::nic

#endif // FLD_NIC_FLOW_TABLE_H
