/**
 * @file
 * Programmable multi-table match-action pipeline (ROADMAP item 4).
 *
 * The fixed eSwitch of flow_table.h models §2.3's steering engine with
 * optional-field exact matches interpreted straight out of a
 * map-of-vectors. This file adds the programmable generalization in
 * the spirit of hXDP's on-NIC packet programs and Stratum's pipeline
 * processor: a declarative `PipelineConfig` — numbered tables of
 * prioritized entries with masked/ternary keys over the parsed field
 * vector, per-table default action lists, and VIP pools — compiled
 * into a flat, allocation-free executable form (`Pipeline`).
 *
 * Contract with the fixed engine: `Pipeline::config_from(FlowTables)`
 * expresses the currently installed rules as the *default program*,
 * and a compiled lookup over that program returns exactly the rule the
 * fixed `FlowTables::lookup` would (same priority order, same
 * tie-break by installation order, same optional-field semantics —
 * a present-with-zero match only accepts zero, and port matches
 * require a parsed L4 header). `NicDevice` routes receive steering
 * through the compiled program when `NicConfig::use_compiled_pipeline`
 * is set; with the flag off the legacy interpreter runs unchanged and
 * golden traces stay bit-identical.
 *
 * The action set is shared with the fixed engine (`nic::Action`) and
 * grows three programmable-only kinds: ACL deny, NAT header rewrite,
 * and VIP load-balancer backend select.
 */
#ifndef FLD_NIC_PIPELINE_H
#define FLD_NIC_PIPELINE_H

#include <cstdint>
#include <map>
#include <vector>

#include "nic/flow_table.h"

namespace fld::nic {

// ---------------------------------------------------------------------
// Declarative program description
// ---------------------------------------------------------------------

/** One ternary key component: packet field & mask must equal value.
 *  mask == 0 is a wildcard; mask == ~0u an exact match. The compiler
 *  normalizes value to value & mask. */
struct TernaryField
{
    uint32_t value = 0;
    uint32_t mask = 0;
};

/** Exact-match component (mask all ones). */
TernaryField ternary_exact(uint32_t value);
/** Masked component (compile normalizes value &= mask). */
TernaryField ternary_masked(uint32_t value, uint32_t mask);

/**
 * Ternary key over the parsed field vector. Field extraction is the
 * parser stage: FlowFields::of pulls eth/IPv4/TCP-UDP/VXLAN headers
 * plus metadata (vport, tag). Semantics mirror FlowMatch: sport/dport
 * components with a non-zero mask additionally require a parsed L4
 * header (fragments never match a ported key).
 */
struct PipelineKey
{
    TernaryField in_vport;
    TernaryField ethertype;
    TernaryField ip_proto;
    TernaryField src_ip;
    TernaryField dst_ip;
    TernaryField sport;
    TernaryField dport;
    TernaryField is_fragment; ///< field value is 0/1
    TernaryField vni;
    TernaryField flow_tag;
};

/** One prioritized entry of a table. */
struct PipelineEntryConfig
{
    int priority = 0; ///< higher wins; ties break by config order
    PipelineKey key;
    std::vector<Action> actions;
    /** Source FlowRule id for config_from programs (0 otherwise);
     *  kept so Drop events report the same rule id as the fixed
     *  engine. */
    uint64_t rule_id = 0;
};

struct PipelineTableConfig
{
    uint32_t id = 0;
    std::vector<PipelineEntryConfig> entries;
    /** Executed on table miss. Empty = miss drops (fixed-engine
     *  behaviour: drops_no_rule). */
    std::vector<Action> default_actions;
};

/** VIP load-balancer pool referenced by VipSelect actions. */
struct VipPoolConfig
{
    uint32_t id = 0;
    std::vector<uint32_t> backends; ///< backend IPv4 addresses
};

struct PipelineConfig
{
    std::vector<PipelineTableConfig> tables;
    std::vector<VipPoolConfig> pools;
};

// ---------------------------------------------------------------------
// Compiled form
// ---------------------------------------------------------------------

/** A compiled entry: flat key + a span into the action vector. */
struct CompiledEntry
{
    PipelineKey key;
    int priority = 0;
    uint32_t cfg_index = 0; ///< insertion order within its table
    uint32_t action_begin = 0;
    uint32_t action_count = 0;
    uint64_t rule_id = 0; ///< source FlowRule id (config_from programs)
    uint64_t hits = 0;
    uint64_t hit_bytes = 0;
};

/** Outcome of the standalone reference executor (tests/properties). */
struct PipelineExecResult
{
    enum class Kind : uint8_t {
        Miss,          ///< table miss with no default actions
        NoTerminal,    ///< action list ended without terminal or goto
        DepthExceeded, ///< goto chain ran past kMaxDepth tables
        Drop,
        AclDeny,
        Queue,
        Tir,
        Vport,
        Accel,
    };
    Kind kind = Kind::Miss;
    uint32_t dest = 0;       ///< rqn / tir / vport / acl id
    uint32_t next_table = 0; ///< Accel: resume table
    uint32_t final_tag = 0;  ///< flow tag after execution
    uint32_t tables_visited = 0;

    /** True when the packet reached a delivery destination. */
    bool delivered() const
    {
        return kind == Kind::Queue || kind == Kind::Tir ||
               kind == Kind::Vport || kind == Kind::Accel;
    }
};

/**
 * The compiled program: entries and actions in contiguous vectors,
 * tables as spans, priorities pre-sorted at compile time so the match
 * loop is a straight masked scan with no allocation, no optional
 * unwrapping and no map hops.
 */
class Pipeline
{
  public:
    /** Matches the fixed interpreter's goto-depth limit. */
    static constexpr int kMaxDepth = 16;

    Pipeline() = default;
    explicit Pipeline(const PipelineConfig& cfg) { compile(cfg); }

    /** Compile a declarative config, replacing any previous program.
     *  Entries are grouped by table id (duplicate table blocks merge
     *  in config order) and sorted by descending priority, stable in
     *  config order — exactly FlowTables' dispatch order. */
    void compile(const PipelineConfig& cfg);

    /** Express the fixed engine's installed rules as a declarative
     *  program (the default program). */
    static PipelineConfig config_from(const FlowTables& flows);

    /** Highest-priority matching entry of @p table, or null. Does not
     *  bump hit counters — callers account hits explicitly, so control
     *  plane peeks stay invisible. */
    CompiledEntry* lookup(uint32_t table, const FlowFields& f);

    /** Action span of a matched entry. */
    const Action* actions(const CompiledEntry& e) const
    {
        return actions_.data() + e.action_begin;
    }

    /** Default-action span of @p table (count 0 when absent). */
    void default_actions(uint32_t table, const Action*& acts,
                         size_t& count) const;

    bool has_table(uint32_t table) const;
    size_t table_count() const { return tables_.size(); }
    size_t entry_count() const { return entries_.size(); }

    /** Backends of a VIP pool (null when the pool is unknown). */
    const std::vector<uint32_t>* vip_pool(uint32_t pool_id) const;

    /**
     * Standalone reference executor over extracted fields: walks the
     * program exactly like NicDevice::run_pipeline walks actions
     * (goto continues the entry's remaining actions, missing terminal
     * drops) but mutates only the field vector — packet-body actions
     * (decap/encap/meter) are field-level no-ops here. Used by the
     * property battery and the shadow-matcher tests; the NIC datapath
     * does not call this.
     *
     * @p bytes feeds Count actions and hit accounting.
     */
    PipelineExecResult execute(FlowFields f, uint32_t start_table = 0,
                               uint64_t bytes = 1);

    /** Count-action accumulator of the standalone executor. */
    uint64_t counter(uint32_t counter_id) const;

    /** True when @p key accepts @p f (parser-aware ternary match). */
    static bool key_matches(const PipelineKey& key, const FlowFields& f);

  private:
    struct CompiledTable
    {
        uint32_t id = 0;
        uint32_t entry_begin = 0;
        uint32_t entry_count = 0;
        uint32_t default_begin = 0;
        uint32_t default_count = 0;
    };

    const CompiledTable* find_table(uint32_t id) const;

    std::vector<CompiledTable> tables_; ///< sorted by id
    std::vector<CompiledEntry> entries_;
    std::vector<Action> actions_;
    std::map<uint32_t, std::vector<uint32_t>> pools_;
    std::map<uint32_t, uint64_t> counters_;
};

/** Deterministic VIP backend choice shared by the NIC datapath and the
 *  standalone executor: Toeplitz flow hash over the 4-tuple, modulo
 *  the pool size. Precondition: backends non-empty. */
uint32_t select_vip_backend(const std::vector<uint32_t>& backends,
                            const FlowFields& f);

/** Apply a NatRewrite action to extracted fields (no packet body). */
void nat_apply_fields(FlowFields& f, const Action& act);

/** NAT flag bits carried in Action::arg0 (see nat_dst/nat_src). */
constexpr uint32_t kNatDstIp = 1u << 0;   ///< arg1 = new dst ip
constexpr uint32_t kNatDstPort = 1u << 1; ///< arg2 & 0xffff = new dport
constexpr uint32_t kNatSrcIp = 1u << 2;   ///< arg3 = new src ip
constexpr uint32_t kNatSrcPort = 1u << 3; ///< arg2 >> 16 = new sport

} // namespace fld::nic

#endif // FLD_NIC_PIPELINE_H
