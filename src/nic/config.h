/**
 * @file
 * NIC model configuration and calibration constants.
 *
 * Every timing constant that cannot be derived from first principles
 * is collected here with a comment citing the paper/testbed value it
 * is calibrated against. The experiment *shapes* come from mechanisms;
 * these constants only anchor absolute scales.
 */
#ifndef FLD_NIC_CONFIG_H
#define FLD_NIC_CONFIG_H

#include <cstdint>

#include "sim/fault.h"
#include "sim/time.h"

namespace fld::nic {

/** Per-frame Ethernet wire overhead: preamble(8) + IFG(12) bytes.
 *  Matches the paper's packet-rate formula R = B / (M_min + 20 B). */
constexpr uint32_t kEthWireOverhead = 20;

/** Descriptor strides of the vendor (ConnectX-like) interface
 *  (Table 2b, "Software" column). */
constexpr uint32_t kWqeStride = 64;   ///< transmit descriptor size
constexpr uint32_t kRxDescStride = 16;///< receive descriptor size
constexpr uint32_t kCqeStride = 64;   ///< completion queue entry size

struct NicConfig
{
    /** Ethernet port rate (25 Gbps per Innova-2 port). */
    double port_gbps = 25.0;

    /** One-way wire propagation (back-to-back cable + PHY). */
    sim::TimePs wire_latency = sim::nanoseconds(120);

    /** Ingress/egress packet-processing latency of the NIC ASIC
     *  pipeline. Calibrated so a CPU echo RTT lands near Table 6's
     *  2.36 us mean. */
    sim::TimePs pipeline_latency = sim::nanoseconds(150);

    /** Delay between a doorbell arriving and the WQE fetch issuing. */
    sim::TimePs doorbell_latency = sim::nanoseconds(25);

    /** WQEs fetched per descriptor-ring read (cache-line batching). */
    uint32_t wqe_fetch_batch = 8;

    /** Concurrent outstanding ring reads per queue (DMA pipelining). */
    uint32_t max_fetches_inflight = 16;

    /** RX descriptors fetched per ring read. */
    uint32_t rx_desc_fetch_batch = 8;

    /** RoCE-like transport MTU (1024 B in the paper's remote setup). */
    uint32_t rdma_mtu = 1024;

    /** Go-back-N retransmission timeout. */
    sim::TimePs rdma_retransmit_timeout = sim::microseconds(50);

    /** ACK coalescing: ack every N packets and on message end. */
    uint32_t rdma_ack_every = 16;

    /** Max outstanding (unacked) data bytes per RC QP. */
    uint32_t rdma_window_bytes = 256 * 1024;

    /**
     * Receive CQE compression ("mini-CQEs"). §8.1 lists this among
     * the NIC optimizations that could further improve small-packet
     * rates but were not enabled in the paper's experiments; it is
     * off by default here too and studied in bench_ablation.
     * When on, up to 1+7 receive completions of one CQ coalesce into
     * a single PCIe write: a full 64 B title CQE followed by 16 B
     * mini entries.
     */
    bool cqe_compression = false;
    sim::TimePs cqe_coalesce_window = sim::nanoseconds(400);

    /**
     * Route receive steering through the programmable match-action
     * pipeline (nic/pipeline.h): the installed rules are compiled into
     * a flat program (plus any explicit program set via
     * NicDevice::set_pipeline_program) and the compiled lookup
     * replaces the fixed eSwitch interpreter. Off by default; with the
     * flag off the legacy path runs unchanged and golden traces stay
     * bit-identical.
     */
    bool use_compiled_pipeline = false;

    /**
     * Opt-in Ethernet wire fault knobs (loss/corruption/duplication/
     * reorder); active only when the testbed attaches a
     * sim::FaultPlan to the link. All-zero defaults leave the wire
     * perfect and the simulation bit-identical.
     */
    sim::WireFaultConfig wire_faults;
};

} // namespace fld::nic

#endif // FLD_NIC_CONFIG_H
