/**
 * @file
 * The ConnectX-like NIC model.
 *
 * An *unmodified commodity NIC* as seen over PCIe: descriptor rings in
 * fabric memory (host DRAM or FLD BAR — the NIC does not care, which
 * is the paper's core architectural point), MMIO doorbells, DMA
 * engines, an embedded switch with match-action steering, RSS,
 * checksum and VXLAN offloads, a hardware RC (RoCE-like) transport,
 * and per-queue/per-flow traffic shaping.
 *
 * Both the CPU baseline driver and FLD drive this same device; they
 * differ only in where their rings and buffers live and who rings the
 * doorbells.
 */
#ifndef FLD_NIC_NIC_H
#define FLD_NIC_NIC_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "net/toeplitz.h"
#include "nic/config.h"
#include "nic/descriptors.h"
#include "nic/flow_table.h"
#include "nic/pipeline.h"
#include "nic/wire.h"
#include "pcie/fabric.h"
#include "sim/event_queue.h"
#include "sim/token_bucket.h"

namespace fld::nic {

/** Completion queue configuration. */
struct CqConfig
{
    uint64_t ring_addr = 0; ///< fabric address of the CQE ring
    uint32_t entries = 0;   ///< power of two
    /** Consumer opts in to mini-CQE compression (it must know how to
     *  expand blocks); also requires NicConfig::cqe_compression. */
    bool allow_compression = false;
};

/** Send queue configuration (Ethernet or the SQ half of an RDMA QP). */
struct SqConfig
{
    uint64_t ring_addr = 0;
    uint32_t entries = 0;
    uint32_t cqn = 0;
    VportId vport = kUplinkVport;
    double rate_limit_gbps = 0.0; ///< 0 = unlimited (ETS max-rate)
};

/** Receive queue configuration (descriptors define MPRQ geometry). */
struct RqConfig
{
    uint64_t ring_addr = 0;
    uint32_t entries = 0;
    uint32_t cqn = 0;
};

/** RSS group (TIR): spreads flows over receive queues. */
struct TirConfig
{
    std::vector<uint32_t> rqns;
};

/** RDMA RC queue pair: pairs an SQ and an RQ on a vport. */
struct QpConfig
{
    uint32_t sqn = 0;
    uint32_t rqn = 0;
    VportId vport = kUplinkVport;
};

/** Peer binding established at connection time. */
struct QpPeer
{
    uint32_t remote_qpn = 0;
    net::MacAddr local_mac{};
    net::MacAddr remote_mac{};
};

/** Asynchronous events reported to the control plane (§5.3). */
struct NicEvent
{
    enum class Type {
        RqNoBuffer,   ///< packet dropped: receive queue empty
        QpRetransmit, ///< RC timeout fired
        QpFatal,      ///< unrecoverable QP error
        RuleDrop,     ///< packet hit an explicit Drop rule
        AclDeny,      ///< packet denied by an ACL action
    };
    Type type;
    uint32_t id = 0; ///< rqn / qpn / rule id
};

/** Aggregate datapath statistics. */
struct NicStats
{
    uint64_t tx_packets = 0;
    uint64_t tx_bytes = 0;
    uint64_t rx_packets = 0; ///< delivered into RQs
    uint64_t rx_bytes = 0;
    uint64_t wire_rx_packets = 0;
    uint64_t drops_no_buffer = 0;
    uint64_t drops_rule = 0;
    uint64_t drops_meter = 0;
    uint64_t drops_no_rule = 0;
    uint64_t drops_acl = 0; ///< AclDeny action hits
    uint64_t rdma_retransmits = 0;
    uint64_t rdma_acks = 0;
    uint64_t rdma_dup_psn = 0;    ///< duplicate data packets re-ACKed
    uint64_t rdma_out_of_order = 0; ///< future-PSN packets dropped
};

class NicDevice : public pcie::PcieEndpoint
{
  public:
    /** BAR layout: SQ doorbells, then RQ doorbells (8 B stride). */
    static constexpr uint64_t kSqDbBase = 0x0000;
    static constexpr uint64_t kRqDbBase = 0x10000;
    static constexpr uint64_t kBarSize = 0x20000;

    NicDevice(std::string name, sim::EventQueue& eq,
              pcie::PcieFabric& fabric, pcie::PortId dma_port,
              NicConfig cfg = {});

    // ------------------------------------------------------------------
    // Control plane (runs in software; zero simulated time, matching
    // the paper's host-resident control plane).
    // ------------------------------------------------------------------
    uint32_t create_cq(const CqConfig& cfg);
    uint32_t create_sq(const SqConfig& cfg);
    uint32_t create_rq(const RqConfig& cfg);
    uint32_t create_tir(const TirConfig& cfg);
    uint32_t create_qp(const QpConfig& cfg);
    void connect_qp(uint32_t qpn, const QpPeer& peer);

    /** Allocate a new vPort (0 is the wire uplink). */
    VportId add_vport();

    /** Match-action pipeline management (rte_flow-like). */
    uint64_t add_rule(uint32_t table, int priority, FlowMatch match,
                      std::vector<Action> actions);
    bool remove_rule(uint64_t id);
    FlowTables& flows() { return flows_; }

    /** Configure a named meter used by Meter actions (policer). */
    void set_meter(uint32_t meter_id, double gbps, uint64_t burst_bytes);

    /**
     * Programmable pipeline (NicConfig::use_compiled_pipeline).
     * Without an explicit program the compiled program is derived from
     * the installed rules (Pipeline::config_from) and lazily recompiled
     * after add_rule/remove_rule, so both engines serve the same
     * ruleset. set_pipeline_program installs an explicit program with
     * masked/ternary keys the rule API cannot express; rule changes no
     * longer affect steering until clear_pipeline_program. Pools
     * referenced by VipSelect actions come from the program and/or
     * set_vip_pool.
     */
    void set_pipeline_program(PipelineConfig cfg);
    void clear_pipeline_program();
    /** Register a VIP pool for VipSelect actions (both engines). */
    void set_vip_pool(uint32_t pool_id, std::vector<uint32_t> backends);
    /** The compiled program currently steering (compiles if dirty). */
    const Pipeline& pipeline();

    /** Change an SQ's max-rate shaping after creation. */
    void set_sq_rate(uint32_t sqn, double gbps);

    /** Late-bind an RQ's descriptor-ring address (control plane). */
    void set_rq_ring_addr(uint32_t rqn, uint64_t addr);

    /** Default delivery for a vport when no rx rule matches. */
    void set_vport_default_tir(VportId vport, uint32_t tir);
    /** First match-action table packets entering a vport hit. */
    void set_vport_rx_table(VportId vport, uint32_t table);

    using EventHandler = std::function<void(const NicEvent&)>;
    void set_event_handler(EventHandler fn) { events_ = std::move(fn); }

    /**
     * Fault injection (testing/§5.3 error handling): transition a QP
     * into the error state. In-flight and future sends complete with
     * error CQEs; recovery is the control plane's job, as in Verbs.
     */
    void inject_qp_error(uint32_t qpn);

    /**
     * Observation hook for tests/fuzzing: called at RQ-delivery entry
     * with the chosen rqn and the packet as steered (post-decap, pre
     * buffer accounting), before any no-buffer drop decision. Unset by
     * default and never on the hot path cost model — purely a probe.
     */
    using RxDeliveryProbe =
        std::function<void(uint32_t rqn, const net::Packet&)>;
    void set_rx_delivery_probe(RxDeliveryProbe fn)
    {
        rx_probe_ = std::move(fn);
    }

    NetPort& uplink() { return uplink_; }
    const NicStats& stats() const { return stats_; }
    const NicConfig& config() const { return cfg_; }
    pcie::PortId dma_port() const { return dma_port_; }

    // ------------------------------------------------------------------
    // PcieEndpoint: the NIC's own BAR (doorbells).
    // ------------------------------------------------------------------
    void bar_write(uint64_t addr, const uint8_t* data,
                   size_t len) override;
    void bar_read(uint64_t addr, uint8_t* out, size_t len) override;
    std::string ep_name() const override { return name_; }

  private:
    // ---- send path ----
    struct SqState
    {
        SqConfig cfg;
        uint32_t pi = 0;       ///< producer index (doorbell writes it)
        uint32_t fetch_ci = 0; ///< next WQE to fetch
        uint32_t fetches_inflight = 0; ///< pipelined ring reads
        sim::TokenBucket shaper{0.0, 1 << 20};
        sim::TimePs shaper_free_at = 0;
        bool is_rdma = false;  ///< set when adopted by a QP
        uint32_t qpn = 0;
        // In-order retirement: payload gathers pipeline freely, but
        // WQEs execute (send + complete) strictly in ring order.
        uint64_t next_exec_seq = 0;
        uint64_t next_retire_seq = 0;
        std::map<uint64_t, std::pair<Wqe, std::vector<uint8_t>>> ready;
    };
    // ---- receive path ----
    struct RqState
    {
        RqConfig cfg;
        uint32_t pi = 0;       ///< descriptors posted by the driver
        uint32_t fetch_ci = 0; ///< next descriptor to fetch
        uint32_t fetches_inflight = 0;
        std::deque<std::pair<uint32_t, RxDesc>> ready; ///< (index, desc)
        std::optional<RxDesc> current;
        uint32_t current_index = 0;
        uint32_t stride_used = 0;
    };
    struct CqState
    {
        CqConfig cfg;
        uint32_t pi = 0;
        // CQE compression (mini-CQEs): receive completions coalesce
        // into one PCIe write within a short window.
        std::vector<Cqe> pending;
        uint32_t block_start_slot = 0;
        uint64_t flush_generation = 0;
    };
    struct TxMsg ///< RC sender bookkeeping for one message (or frame)
    {
        Wqe wqe;
        uint32_t first_psn = 0;
        uint32_t last_psn = 0;
        uint32_t len = 0;
        std::vector<uint8_t> payload; ///< kept for retransmission
    };
    struct QpState
    {
        QpConfig cfg;
        QpPeer peer;
        bool connected = false;
        bool in_error = false;
        // sender
        uint32_t next_psn = 0;
        uint32_t acked_psn = 0; ///< first unacked PSN
        std::deque<TxMsg> inflight;
        uint64_t inflight_bytes = 0;
        std::deque<std::pair<Wqe, std::vector<uint8_t>>> pending;
        uint64_t timer_generation = 0;
        // receiver
        uint32_t expected_psn = 0;
        uint32_t pkts_since_ack = 0;
        uint32_t cur_msg_id = 0;
        uint32_t cur_msg_len = 0;
        uint32_t cur_msg_off = 0;
    };

    // send machinery
    void doorbell_sq(uint32_t sqn, uint32_t pi);
    void doorbell_sq_inline(uint32_t sqn, uint32_t pi, const Wqe& wqe);
    void maybe_fetch_wqes(uint32_t sqn);
    void execute_wqe(uint32_t sqn, Wqe wqe);
    void retire_ready_wqes(uint32_t sqn);
    void eth_send(uint32_t sqn, const Wqe& wqe,
                  std::vector<uint8_t> payload);
    void rdma_send(uint32_t qpn, const Wqe& wqe,
                   std::vector<uint8_t> payload);
    void sq_complete(uint32_t sqn, const Wqe& wqe);
    void shaped_egress(uint32_t sqn, net::Packet&& pkt);

    // receive machinery
    void doorbell_rq(uint32_t rqn, uint32_t pi);
    void maybe_fetch_rx_descs(uint32_t rqn);
    void wire_receive(net::Packet&& pkt);
    /** Returns false when the packet was dropped for lack of buffers. */
    bool deliver_to_rq(uint32_t rqn, net::Packet&& pkt,
                       std::optional<Cqe> rdma_info = {});
    void deliver_to_tir(uint32_t tir, net::Packet&& pkt);
    void deliver_to_vport(VportId vport, net::Packet&& pkt);

    // pipeline
    void run_pipeline(net::Packet&& pkt, VportId in_vport,
                      uint32_t start_table);
    void offload_rx_checks(net::Packet& pkt);
    /** Recompile the flows-derived program when rules changed. */
    void ensure_pipeline_compiled();
    /** Would run_pipeline find work in @p table for @p fields? Used by
     *  vport delivery to decide rule steering vs the default TIR. */
    bool rx_table_matches(uint32_t table, const FlowFields& fields);
    /** Rewrite IPv4 addrs/ports per a NatRewrite-shaped action and fix
     *  the IP header + L4 checksums; no-op on non-IPv4 packets. */
    static void nat_rewrite_packet(net::Packet& pkt, const Action& act);

    // rdma
    void rdma_rx(VportId vport, net::Packet&& pkt);
    void rdma_handle_ack(QpState& qp, uint32_t acked_psn);
    void rdma_send_ack(QpState& qp);
    void arm_retransmit_timer(uint32_t qpn);
    void retransmit(uint32_t qpn);
    void transmit_segments(uint32_t qpn, const TxMsg& msg);

    // completions
    void write_cqe(uint32_t cqn, Cqe cqe);
    void flush_cq(uint32_t cqn);

    void emit(NicEvent::Type type, uint32_t id);

    std::string name_;
    sim::EventQueue& eq_;
    pcie::PcieFabric& fabric_;
    pcie::PortId dma_port_;
    NicConfig cfg_;

    NetPort uplink_;
    FlowTables flows_;
    Pipeline pipeline_;
    bool pipeline_dirty_ = true;   ///< flows changed since compile
    bool explicit_program_ = false;///< set_pipeline_program active
    std::map<uint32_t, std::vector<uint32_t>> vip_pools_;
    NicStats stats_;
    EventHandler events_;
    RxDeliveryProbe rx_probe_;

    std::map<uint32_t, SqState> sqs_;
    std::map<uint32_t, RqState> rqs_;
    std::map<uint32_t, CqState> cqs_;
    std::map<uint32_t, TirConfig> tirs_;
    std::map<uint32_t, QpState> qps_;
    std::map<uint32_t, sim::TokenBucket> meters_;
    std::map<VportId, uint32_t> vport_default_tir_;
    std::map<VportId, uint32_t> vport_rx_table_;
    VportId next_vport_ = 1;
    uint32_t next_id_ = 1;
};

} // namespace fld::nic

#endif // FLD_NIC_NIC_H
