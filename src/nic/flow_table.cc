#include "nic/flow_table.h"

#include <algorithm>

namespace fld::nic {

Action
set_tag(uint32_t tag)
{
    return {ActionType::SetTag, tag, 0, 0, 0};
}

Action
count_action(uint32_t counter_id)
{
    return {ActionType::Count, counter_id, 0, 0, 0};
}

Action
vxlan_decap()
{
    return {ActionType::VxlanDecap, 0, 0, 0, 0};
}

Action
vxlan_encap(uint32_t vni, uint32_t src_ip, uint32_t dst_ip)
{
    return {ActionType::VxlanEncap, 0, vni, src_ip, dst_ip};
}

Action
meter(uint32_t meter_id)
{
    return {ActionType::Meter, meter_id, 0, 0, 0};
}

Action
goto_table(uint32_t table)
{
    return {ActionType::Goto, table, 0, 0, 0};
}

Action
fwd_vport(VportId vport)
{
    return {ActionType::ForwardVport, vport, 0, 0, 0};
}

Action
fwd_tir(uint32_t tir)
{
    return {ActionType::ForwardTir, tir, 0, 0, 0};
}

Action
fwd_queue(uint32_t rqn)
{
    return {ActionType::ForwardQueue, rqn, 0, 0, 0};
}

Action
send_to_accel(uint32_t rqn, uint32_t next_table)
{
    return {ActionType::SendToAccel, rqn, next_table, 0, 0};
}

Action
drop_action()
{
    return {ActionType::Drop, 0, 0, 0, 0};
}

Action
acl_deny(uint32_t acl_id)
{
    return {ActionType::AclDeny, acl_id, 0, 0, 0};
}

// NatRewrite packs its operands as: arg0 = flag bits (kNat* in
// pipeline.h), arg1 = dst ip, arg2 = dport | (sport << 16), arg3 =
// src ip. One action can carry a full src+dst rewrite.

Action
nat_dst(uint32_t new_dst_ip)
{
    return {ActionType::NatRewrite, 0x1, new_dst_ip, 0, 0};
}

Action
nat_dst(uint32_t new_dst_ip, uint16_t new_dport)
{
    return {ActionType::NatRewrite, 0x1 | 0x2, new_dst_ip, new_dport, 0};
}

Action
nat_src(uint32_t new_src_ip)
{
    return {ActionType::NatRewrite, 0x4, 0, 0, new_src_ip};
}

Action
nat_src(uint32_t new_src_ip, uint16_t new_sport)
{
    return {ActionType::NatRewrite, 0x4 | 0x8, 0,
            uint32_t(new_sport) << 16, new_src_ip};
}

Action
vip_select(uint32_t pool_id)
{
    return {ActionType::VipSelect, pool_id, 0, 0, 0};
}

FlowFields
FlowFields::of(const net::Packet& pkt, VportId vport)
{
    FlowFields f;
    f.in_vport = vport;
    f.flow_tag = pkt.meta.flow_tag;
    f.tunneled = pkt.meta.tunneled;
    f.vni = pkt.meta.vni;

    net::ParsedPacket pp = net::parse(pkt);
    if (pp.eth)
        f.ethertype = pp.eth->ethertype;
    if (pp.ipv4) {
        f.ip_proto = pp.ipv4->proto;
        f.src_ip = pp.ipv4->src;
        f.dst_ip = pp.ipv4->dst;
        f.is_fragment = pp.ipv4->is_fragment();
    }
    if (pp.udp) {
        f.sport = pp.udp->sport;
        f.dport = pp.udp->dport;
        f.has_l4 = true;
    } else if (pp.tcp) {
        f.sport = pp.tcp->sport;
        f.dport = pp.tcp->dport;
        f.has_l4 = true;
    }
    if (pp.vxlan) {
        f.vni = pp.vxlan->vni;
    }
    return f;
}

uint64_t
FlowTables::add_rule(uint32_t table, int priority, FlowMatch match,
                     std::vector<Action> actions)
{
    FlowRule rule;
    const uint64_t id = next_id_++;
    rule.id = id;
    rule.priority = priority;
    rule.match = std::move(match);
    rule.actions = std::move(actions);

    auto& rules = tables_[table];
    rules.push_back(std::move(rule));
    // Keep rules sorted by descending priority; stable for determinism.
    std::stable_sort(rules.begin(), rules.end(),
                     [](const FlowRule& a, const FlowRule& b) {
                         return a.priority > b.priority;
                     });
    return id;
}

bool
FlowTables::remove_rule(uint64_t id)
{
    for (auto& [table, rules] : tables_) {
        auto it = std::find_if(rules.begin(), rules.end(),
                               [&](const FlowRule& r) { return r.id == id; });
        if (it != rules.end()) {
            rules.erase(it);
            return true;
        }
    }
    return false;
}

bool
FlowTables::matches(const FlowMatch& m, const FlowFields& f)
{
    if (m.in_vport && *m.in_vport != f.in_vport)
        return false;
    if (m.ethertype && *m.ethertype != f.ethertype)
        return false;
    if (m.ip_proto && *m.ip_proto != f.ip_proto)
        return false;
    if (m.src_ip && *m.src_ip != f.src_ip)
        return false;
    if (m.dst_ip && *m.dst_ip != f.dst_ip)
        return false;
    if (m.sport && (!f.has_l4 || *m.sport != f.sport))
        return false;
    if (m.dport && (!f.has_l4 || *m.dport != f.dport))
        return false;
    if (m.is_fragment && *m.is_fragment != f.is_fragment)
        return false;
    if (m.vni && *m.vni != f.vni)
        return false;
    if (m.flow_tag && *m.flow_tag != f.flow_tag)
        return false;
    return true;
}

FlowRule*
FlowTables::lookup(uint32_t table, const FlowFields& fields)
{
    auto it = tables_.find(table);
    if (it == tables_.end())
        return nullptr;
    for (auto& rule : it->second) {
        if (matches(rule.match, fields))
            return &rule;
    }
    return nullptr;
}

uint64_t
FlowTables::counter(uint32_t counter_id) const
{
    auto it = counters_.find(counter_id);
    return it == counters_.end() ? 0 : it->second;
}

void
FlowTables::bump_counter(uint32_t counter_id, uint64_t bytes)
{
    counters_[counter_id] += bytes;
}

void
FlowTables::note_tag(uint32_t tag, uint64_t bytes)
{
    TagStats& ts = tag_stats_[tag];
    ts.packets++;
    ts.bytes += bytes;
}

FlowTables::TagStats
FlowTables::tag_stats(uint32_t tag) const
{
    auto it = tag_stats_.find(tag);
    return it == tag_stats_.end() ? TagStats{} : it->second;
}

size_t
FlowTables::rule_count() const
{
    size_t n = 0;
    for (const auto& [t, rules] : tables_)
        n += rules.size();
    return n;
}

} // namespace fld::nic
