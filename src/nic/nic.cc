#include "nic/nic.h"

#include <algorithm>
#include <cstring>

#include "net/checksum.h"
#include "sim/trace.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace fld::nic {

namespace {

/** Recompute IPv4 and L4 checksums in place (TX checksum offload). */
void
fix_checksums(net::Packet& pkt)
{
    net::ParsedPacket pp = net::parse(pkt);
    if (!pp.ipv4)
        return;
    uint8_t* p = pkt.bytes();
    size_t ihl = (p[pp.l3_offset] & 0x0f) * 4;
    // IPv4 header checksum.
    p[pp.l3_offset + 10] = 0;
    p[pp.l3_offset + 11] = 0;
    uint16_t hc = net::ipv4_header_checksum(p + pp.l3_offset, ihl);
    store_be16(p + pp.l3_offset + 10, hc);

    if (pp.ipv4->is_fragment())
        return; // L4 checksum spans the whole datagram; cannot fix here
    size_t l4_len = pp.ipv4->total_len - ihl;
    if (pp.l4_offset + l4_len > pkt.size())
        return;
    if (pp.udp) {
        store_be16(p + pp.l4_offset + 6, 0);
        uint16_t c = net::l4_checksum(pp.ipv4->src, pp.ipv4->dst,
                                      net::kIpProtoUdp, p + pp.l4_offset,
                                      l4_len);
        store_be16(p + pp.l4_offset + 6, c);
    } else if (pp.tcp) {
        store_be16(p + pp.l4_offset + 16, 0);
        uint16_t c = net::l4_checksum(pp.ipv4->src, pp.ipv4->dst,
                                      net::kIpProtoTcp, p + pp.l4_offset,
                                      l4_len);
        store_be16(p + pp.l4_offset + 16, c);
    }
}

} // namespace

NicDevice::NicDevice(std::string name, sim::EventQueue& eq,
                     pcie::PcieFabric& fabric, pcie::PortId dma_port,
                     NicConfig cfg)
    : name_(std::move(name)), eq_(eq), fabric_(fabric),
      dma_port_(dma_port), cfg_(cfg), uplink_(name_ + ".uplink")
{
    uplink_.set_rx_handler(
        [this](net::Packet&& pkt) { wire_receive(std::move(pkt)); });
}

// ---------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------

uint32_t
NicDevice::create_cq(const CqConfig& cfg)
{
    if (!is_pow2(cfg.entries))
        fatal("create_cq: entries must be a power of two");
    uint32_t cqn = next_id_++;
    cqs_[cqn] = CqState{cfg, 0};
    return cqn;
}

uint32_t
NicDevice::create_sq(const SqConfig& cfg)
{
    if (!is_pow2(cfg.entries))
        fatal("create_sq: entries must be a power of two");
    if (!cqs_.count(cfg.cqn))
        fatal("create_sq: unknown cqn %u", cfg.cqn);
    uint32_t sqn = next_id_++;
    SqState st;
    st.cfg = cfg;
    // Shaper burst: a couple of jumbo frames, as in hardware ETS.
    st.shaper = sim::TokenBucket(cfg.rate_limit_gbps, 4096);
    sqs_[sqn] = std::move(st);
    return sqn;
}

uint32_t
NicDevice::create_rq(const RqConfig& cfg)
{
    if (!is_pow2(cfg.entries))
        fatal("create_rq: entries must be a power of two");
    if (!cqs_.count(cfg.cqn))
        fatal("create_rq: unknown cqn %u", cfg.cqn);
    uint32_t rqn = next_id_++;
    rqs_[rqn] = RqState{cfg, 0, 0, 0, {}, {}, 0, 0};
    return rqn;
}

uint32_t
NicDevice::create_tir(const TirConfig& cfg)
{
    for (uint32_t rqn : cfg.rqns) {
        if (!rqs_.count(rqn))
            fatal("create_tir: unknown rqn %u", rqn);
    }
    uint32_t tir = next_id_++;
    tirs_[tir] = cfg;
    return tir;
}

uint32_t
NicDevice::create_qp(const QpConfig& cfg)
{
    if (!sqs_.count(cfg.sqn) || !rqs_.count(cfg.rqn))
        fatal("create_qp: unknown sqn/rqn");
    uint32_t qpn = next_id_++;
    QpState st;
    st.cfg = cfg;
    qps_[qpn] = std::move(st);
    sqs_[cfg.sqn].is_rdma = true;
    sqs_[cfg.sqn].qpn = qpn;
    return qpn;
}

void
NicDevice::connect_qp(uint32_t qpn, const QpPeer& peer)
{
    auto it = qps_.find(qpn);
    if (it == qps_.end())
        fatal("connect_qp: unknown qpn %u", qpn);
    it->second.peer = peer;
    it->second.connected = true;
}

VportId
NicDevice::add_vport()
{
    return next_vport_++;
}

uint64_t
NicDevice::add_rule(uint32_t table, int priority, FlowMatch match,
                    std::vector<Action> actions)
{
    pipeline_dirty_ = true;
    return flows_.add_rule(table, priority, std::move(match),
                           std::move(actions));
}

bool
NicDevice::remove_rule(uint64_t id)
{
    pipeline_dirty_ = true;
    return flows_.remove_rule(id);
}

void
NicDevice::set_pipeline_program(PipelineConfig cfg)
{
    for (const VipPoolConfig& p : cfg.pools)
        vip_pools_[p.id] = p.backends;
    pipeline_.compile(cfg);
    explicit_program_ = true;
    pipeline_dirty_ = false;
}

void
NicDevice::clear_pipeline_program()
{
    explicit_program_ = false;
    pipeline_dirty_ = true;
}

void
NicDevice::set_vip_pool(uint32_t pool_id, std::vector<uint32_t> backends)
{
    vip_pools_[pool_id] = std::move(backends);
}

const Pipeline&
NicDevice::pipeline()
{
    ensure_pipeline_compiled();
    return pipeline_;
}

void
NicDevice::ensure_pipeline_compiled()
{
    if (explicit_program_ || !pipeline_dirty_)
        return;
    pipeline_.compile(Pipeline::config_from(flows_));
    pipeline_dirty_ = false;
}

void
NicDevice::set_meter(uint32_t meter_id, double gbps, uint64_t burst_bytes)
{
    meters_.insert_or_assign(meter_id,
                             sim::TokenBucket(gbps, burst_bytes));
}

void
NicDevice::set_sq_rate(uint32_t sqn, double gbps)
{
    auto it = sqs_.find(sqn);
    if (it == sqs_.end())
        fatal("set_sq_rate: unknown sqn %u", sqn);
    it->second.shaper.set_rate(gbps);
    it->second.cfg.rate_limit_gbps = gbps;
}

void
NicDevice::set_rq_ring_addr(uint32_t rqn, uint64_t addr)
{
    auto it = rqs_.find(rqn);
    if (it == rqs_.end())
        fatal("set_rq_ring_addr: unknown rqn %u", rqn);
    it->second.cfg.ring_addr = addr;
}

void
NicDevice::set_vport_default_tir(VportId vport, uint32_t tir)
{
    vport_default_tir_[vport] = tir;
}

void
NicDevice::set_vport_rx_table(VportId vport, uint32_t table)
{
    vport_rx_table_[vport] = table;
}

void
NicDevice::emit(NicEvent::Type type, uint32_t id)
{
    if (events_)
        events_(NicEvent{type, id});
}

// ---------------------------------------------------------------------
// Doorbell BAR
// ---------------------------------------------------------------------

void
NicDevice::bar_write(uint64_t addr, const uint8_t* data, size_t len)
{
    // WQE-by-MMIO (BlueFlame-style, §6 "PCIe Optimizations"): a
    // doorbell carrying the WQE inline, saving the descriptor-fetch
    // round trip for latency-sensitive single posts.
    if (len == 4 + kWqeStride && addr < kRqDbBase) {
        uint32_t pi = load_le32(data);
        Wqe wqe = Wqe::decode(data + 4);
        uint32_t sqn = uint32_t((addr - kSqDbBase) / 8);
        if (auto* tr = sim::Tracer::active())
            tr->emit(eq_.now(), sim::TraceEventKind::DoorbellWrite, name_,
                     "sq_inline", wqe.corr, sqn, pi, 1, len);
        doorbell_sq_inline(sqn, pi, wqe);
        return;
    }
    if (len != 4) {
        FLD_WARN("nic", "%s: unexpected doorbell size %zu", name_.c_str(),
                 len);
        return;
    }
    uint32_t value = load_le32(data);
    if (addr >= kRqDbBase) {
        uint32_t rqn = uint32_t((addr - kRqDbBase) / 8);
        if (auto* tr = sim::Tracer::active())
            tr->emit(eq_.now(), sim::TraceEventKind::DoorbellWrite, name_,
                     "rq", 0, rqn, value, 1, len);
        doorbell_rq(rqn, value);
    } else {
        uint32_t sqn = uint32_t((addr - kSqDbBase) / 8);
        if (auto* tr = sim::Tracer::active())
            tr->emit(eq_.now(), sim::TraceEventKind::DoorbellWrite, name_,
                     "sq", 0, sqn, value, 1, len);
        doorbell_sq(sqn, value);
    }
}

void
NicDevice::doorbell_sq_inline(uint32_t sqn, uint32_t pi, const Wqe& wqe)
{
    auto it = sqs_.find(sqn);
    if (it == sqs_.end()) {
        FLD_WARN("nic", "inline doorbell for unknown sq %u", sqn);
        return;
    }
    SqState& sq = it->second;
    sq.pi = pi;
    // Use the inline WQE only when it is exactly the next one to
    // fetch; otherwise fall back to a normal ring fetch.
    if (pi == sq.fetch_ci + 1 && sq.fetches_inflight == 0) {
        sq.fetch_ci = pi;
        eq_.schedule_in(cfg_.doorbell_latency, [this, sqn, wqe] {
            execute_wqe(sqn, wqe);
        });
        return;
    }
    eq_.schedule_in(cfg_.doorbell_latency,
                    [this, sqn] { maybe_fetch_wqes(sqn); });
}

void
NicDevice::bar_read(uint64_t addr, uint8_t* out, size_t len)
{
    (void)addr;
    std::memset(out, 0, len);
}

// ---------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------

void
NicDevice::doorbell_sq(uint32_t sqn, uint32_t pi)
{
    auto it = sqs_.find(sqn);
    if (it == sqs_.end()) {
        FLD_WARN("nic", "doorbell for unknown sq %u", sqn);
        return;
    }
    it->second.pi = pi;
    eq_.schedule_in(cfg_.doorbell_latency,
                    [this, sqn] { maybe_fetch_wqes(sqn); });
}

void
NicDevice::maybe_fetch_wqes(uint32_t sqn)
{
    auto it = sqs_.find(sqn);
    if (it == sqs_.end())
        return;
    SqState& sq = it->second;
    // Pipelined descriptor DMA: several ring reads may be in flight;
    // completions arrive in issue order (FIFO per link), so WQEs
    // still execute in ring order.
    while (sq.fetches_inflight < cfg_.max_fetches_inflight &&
           sq.fetch_ci != sq.pi) {
        uint32_t slot = sq.fetch_ci % sq.cfg.entries;
        uint32_t n = std::min({cfg_.wqe_fetch_batch,
                               sq.pi - sq.fetch_ci,
                               sq.cfg.entries - slot});
        sq.fetches_inflight++;
        uint32_t first = sq.fetch_ci;
        sq.fetch_ci += n;
        uint64_t addr = sq.cfg.ring_addr + uint64_t(slot) * kWqeStride;
        if (auto* tr = sim::Tracer::active())
            tr->emit(eq_.now(), sim::TraceEventKind::WqeFetch, name_, "sq",
                     0, sqn, first, n, uint64_t(n) * kWqeStride);
        fabric_.read(
            dma_port_, addr, size_t(n) * kWqeStride,
            [this, sqn, n](std::vector<uint8_t> data) {
                auto it2 = sqs_.find(sqn);
                if (it2 == sqs_.end())
                    return;
                SqState& sq2 = it2->second;
                sq2.fetches_inflight--;
                for (uint32_t i = 0; i < n; ++i) {
                    Wqe wqe =
                        Wqe::decode(data.data() + i * kWqeStride);
                    execute_wqe(sqn, wqe);
                }
                maybe_fetch_wqes(sqn);
            });
    }
}

void
NicDevice::execute_wqe(uint32_t sqn, Wqe wqe)
{
    auto it = sqs_.find(sqn);
    if (it == sqs_.end())
        return;
    uint64_t seq = it->second.next_exec_seq++;

    if (wqe.opcode == WqeOpcode::Nop || wqe.byte_count == 0) {
        it->second.ready.emplace(seq,
                                 std::make_pair(wqe,
                                                std::vector<uint8_t>{}));
        retire_ready_wqes(sqn);
        return;
    }
    // Gather the payload from wherever the descriptor points (host
    // memory for the CPU driver, FLD BAR for accelerators). Gathers
    // pipeline; retirement stays in order.
    if (auto* tr = sim::Tracer::active())
        tr->emit(eq_.now(), sim::TraceEventKind::PayloadRead, name_,
                 it->second.is_rdma ? "rdma" : "eth", wqe.corr, sqn,
                 wqe.wqe_index, 1, wqe.byte_count);
    fabric_.read(dma_port_, wqe.addr, wqe.byte_count,
                 [this, sqn, seq, wqe](std::vector<uint8_t> payload) {
                     auto it2 = sqs_.find(sqn);
                     if (it2 == sqs_.end())
                         return;
                     it2->second.ready.emplace(
                         seq, std::make_pair(wqe, std::move(payload)));
                     retire_ready_wqes(sqn);
                 });
}

void
NicDevice::retire_ready_wqes(uint32_t sqn)
{
    auto it = sqs_.find(sqn);
    if (it == sqs_.end())
        return;
    SqState& sq = it->second;
    while (!sq.ready.empty() &&
           sq.ready.begin()->first == sq.next_retire_seq) {
        auto [wqe, payload] = std::move(sq.ready.begin()->second);
        sq.ready.erase(sq.ready.begin());
        sq.next_retire_seq++;
        if (wqe.opcode == WqeOpcode::Nop) {
            sq_complete(sqn, wqe);
        } else if (sq.is_rdma) {
            rdma_send(sq.qpn, wqe, std::move(payload));
        } else {
            eth_send(sqn, wqe, std::move(payload));
        }
    }
}

void
NicDevice::eth_send(uint32_t sqn, const Wqe& wqe,
                    std::vector<uint8_t> payload)
{
    net::Packet pkt(std::move(payload));
    pkt.meta.flow_tag = wqe.flow_tag;
    pkt.meta.next_table = wqe.next_table;
    pkt.meta.queue_id = uint16_t(sqn);
    pkt.meta.corr = wqe.corr;
    fix_checksums(pkt); // TX checksum offload

    stats_.tx_packets++;
    stats_.tx_bytes += pkt.size();
    shaped_egress(sqn, std::move(pkt));
    sq_complete(sqn, wqe);
}

void
NicDevice::sq_complete(uint32_t sqn, const Wqe& wqe)
{
    if (!wqe.signaled)
        return; // selective completion signalling
    auto it = sqs_.find(sqn);
    if (it == sqs_.end())
        return;
    Cqe cqe;
    cqe.opcode = CqeOpcode::TxOk;
    cqe.qpn = it->second.is_rdma ? it->second.qpn : sqn;
    cqe.wqe_counter = wqe.wqe_index;
    cqe.byte_count = wqe.byte_count;
    cqe.msg_id = wqe.msg_id;
    cqe.corr = wqe.corr;
    write_cqe(it->second.cfg.cqn, cqe);
}

void
NicDevice::shaped_egress(uint32_t sqn, net::Packet&& pkt)
{
    auto it = sqs_.find(sqn);
    if (it == sqs_.end())
        return;
    SqState& sq = it->second;
    VportId vport = sq.cfg.vport;
    uint32_t start_table = pkt.meta.next_table;

    sim::TimePs start = std::max(eq_.now(), sq.shaper_free_at);
    if (sq.cfg.rate_limit_gbps > 0.0) {
        start = sq.shaper.ready_time(start, pkt.size());
        sq.shaper.try_consume(start, pkt.size());
    }
    sq.shaper_free_at = start;

    sim::TimePs when = start + cfg_.pipeline_latency;
    eq_.schedule_at(when, [this, vport, start_table,
                           pkt = std::move(pkt)]() mutable {
        run_pipeline(std::move(pkt), vport, start_table);
    });
}

// ---------------------------------------------------------------------
// Match-action pipeline
// ---------------------------------------------------------------------

void
NicDevice::run_pipeline(net::Packet&& pkt, VportId in_vport,
                        uint32_t start_table)
{
    // Both steering engines share this action walker; they differ
    // only in how the matching action list is found. The fixed
    // interpreter scans the installed rules; the compiled program
    // (NicConfig::use_compiled_pipeline) runs a flat masked scan and
    // adds per-table default actions on a miss.
    const bool compiled = cfg_.use_compiled_pipeline;
    if (compiled)
        ensure_pipeline_compiled();

    uint32_t table = start_table;
    FlowFields fields = FlowFields::of(pkt, in_vport);

    for (int depth = 0; depth < Pipeline::kMaxDepth; ++depth) {
        const Action* acts = nullptr;
        size_t count = 0;
        uint64_t rule_id = 0;
        if (compiled) {
            CompiledEntry* entry = pipeline_.lookup(table, fields);
            if (entry) {
                entry->hits++;
                entry->hit_bytes += pkt.size();
                acts = pipeline_.actions(*entry);
                count = entry->action_count;
                rule_id = entry->rule_id;
            } else {
                pipeline_.default_actions(table, acts, count);
                if (count == 0) {
                    stats_.drops_no_rule++;
                    return;
                }
            }
        } else {
            FlowRule* rule = flows_.lookup(table, fields);
            if (!rule) {
                stats_.drops_no_rule++;
                return;
            }
            rule->hits++;
            rule->hit_bytes += pkt.size();
            acts = rule->actions.data();
            count = rule->actions.size();
            rule_id = rule->id;
        }

        for (size_t ai = 0; ai < count; ++ai) {
            const Action& act = acts[ai];
            switch (act.type) {
              case ActionType::SetTag:
                pkt.meta.flow_tag = act.arg0;
                fields.flow_tag = act.arg0;
                flows_.note_tag(act.arg0, pkt.size());
                break;
              case ActionType::Count:
                flows_.bump_counter(act.arg0, pkt.size());
                break;
              case ActionType::VxlanDecap: {
                auto inner = net::vxlan_decapsulate(pkt);
                if (!inner) {
                    stats_.drops_rule++;
                    return;
                }
                if (auto* tr = sim::Tracer::active())
                    tr->emit(eq_.now(), sim::TraceEventKind::Tunnel,
                             name_, "decap", pkt.meta.corr, 0, 0, 1,
                             inner->size());
                pkt = std::move(*inner);
                fields = FlowFields::of(pkt, in_vport);
                fields.flow_tag = pkt.meta.flow_tag;
                break;
              }
              case ActionType::VxlanEncap: {
                net::MacAddr outer_src{2, 0, 0, 0, 0, 1};
                net::MacAddr outer_dst{2, 0, 0, 0, 0, 2};
                pkt = net::vxlan_encapsulate(pkt, act.arg1, act.arg2,
                                             act.arg3, outer_src,
                                             outer_dst);
                if (auto* tr = sim::Tracer::active())
                    tr->emit(eq_.now(), sim::TraceEventKind::Tunnel,
                             name_, "encap", pkt.meta.corr, 0, 0, 1,
                             pkt.size());
                fields = FlowFields::of(pkt, in_vport);
                break;
              }
              case ActionType::Meter: {
                auto mit = meters_.find(act.arg0);
                if (mit != meters_.end() &&
                    !mit->second.try_consume(eq_.now(), pkt.size())) {
                    stats_.drops_meter++;
                    return;
                }
                break;
              }
              case ActionType::Goto:
                table = act.arg0;
                break; // continue outer loop
              case ActionType::ForwardVport:
                deliver_to_vport(VportId(act.arg0), std::move(pkt));
                return;
              case ActionType::ForwardTir:
                deliver_to_tir(act.arg0, std::move(pkt));
                return;
              case ActionType::ForwardQueue:
                offload_rx_checks(pkt);
                deliver_to_rq(act.arg0, std::move(pkt));
                return;
              case ActionType::SendToAccel:
                // FLD-E acceleration action: annotate with the table to
                // resume at, then deliver to the accelerator's RQ.
                pkt.meta.next_table = act.arg1;
                offload_rx_checks(pkt);
                deliver_to_rq(act.arg0, std::move(pkt));
                return;
              case ActionType::Drop:
                stats_.drops_rule++;
                emit(NicEvent::Type::RuleDrop, uint32_t(rule_id));
                return;
              case ActionType::AclDeny:
                stats_.drops_acl++;
                emit(NicEvent::Type::AclDeny, act.arg0);
                return;
              case ActionType::NatRewrite:
                nat_rewrite_packet(pkt, act);
                fields = FlowFields::of(pkt, in_vport);
                break;
              case ActionType::VipSelect: {
                auto pit = vip_pools_.find(act.arg0);
                if (pit == vip_pools_.end() || pit->second.empty()) {
                    stats_.drops_rule++;
                    emit(NicEvent::Type::RuleDrop, uint32_t(rule_id));
                    return;
                }
                Action nat = nat_dst(
                    select_vip_backend(pit->second, fields));
                nat_rewrite_packet(pkt, nat);
                fields = FlowFields::of(pkt, in_vport);
                break;
              }
            }
        }
        // If the action list ended without a terminal action and no
        // Goto changed the table, the packet is dropped.
        bool had_goto = false;
        for (size_t ai = 0; ai < count; ++ai)
            had_goto |= acts[ai].type == ActionType::Goto;
        if (!had_goto) {
            stats_.drops_no_rule++;
            return;
        }
    }
    panic("match-action pipeline loop exceeded depth limit");
}

void
NicDevice::nat_rewrite_packet(net::Packet& pkt, const Action& act)
{
    net::ParsedPacket pp = net::parse(pkt);
    if (!pp.ipv4)
        return;
    uint8_t* p = pkt.bytes();
    if (act.arg0 & kNatSrcIp)
        store_be32(p + pp.l3_offset + 12, act.arg3);
    if (act.arg0 & kNatDstIp)
        store_be32(p + pp.l3_offset + 16, act.arg1);
    if (!pp.ipv4->is_fragment() && (pp.udp || pp.tcp)) {
        if (act.arg0 & kNatSrcPort)
            store_be16(p + pp.l4_offset + 0, uint16_t(act.arg2 >> 16));
        if (act.arg0 & kNatDstPort)
            store_be16(p + pp.l4_offset + 2,
                       uint16_t(act.arg2 & 0xffff));
    }
    // The pseudo-header covers the rewritten addresses, so both
    // checksums go stale; refresh them like TX offload does.
    fix_checksums(pkt);
}

bool
NicDevice::rx_table_matches(uint32_t table, const FlowFields& fields)
{
    if (!cfg_.use_compiled_pipeline)
        return flows_.lookup(table, fields) != nullptr;
    ensure_pipeline_compiled();
    if (pipeline_.lookup(table, fields))
        return true;
    // A table whose miss path has default actions still steers.
    const Action* acts = nullptr;
    size_t count = 0;
    pipeline_.default_actions(table, acts, count);
    return count != 0;
}

void
NicDevice::deliver_to_vport(VportId vport, net::Packet&& pkt)
{
    if (vport == kUplinkVport) {
        uplink_.transmit(std::move(pkt));
        return;
    }
    // Hardware-transport packets are consumed by the RDMA engine.
    net::ParsedPacket pp = net::parse(pkt);
    if (pp.eth && pp.eth->ethertype == kEtherTypeRoce) {
        rdma_rx(vport, std::move(pkt));
        return;
    }
    auto tit = vport_rx_table_.find(vport);
    if (tit != vport_rx_table_.end()) {
        FlowFields fields = FlowFields::of(pkt, vport);
        if (rx_table_matches(tit->second, fields)) {
            run_pipeline(std::move(pkt), vport, tit->second);
            return;
        }
    }
    auto dit = vport_default_tir_.find(vport);
    if (dit != vport_default_tir_.end()) {
        deliver_to_tir(dit->second, std::move(pkt));
        return;
    }
    stats_.drops_no_rule++;
}

void
NicDevice::deliver_to_tir(uint32_t tir, net::Packet&& pkt)
{
    auto it = tirs_.find(tir);
    if (it == tirs_.end() || it->second.rqns.empty()) {
        stats_.drops_no_rule++;
        return;
    }
    const auto& rqns = it->second.rqns;

    // RSS: 4-tuple hash when L4 is visible; IP-pair hash otherwise.
    // IP fragments hide their ports, so *all* fragments between two
    // hosts collapse onto one queue — the §8.2.2 failure mode.
    FlowFields f = FlowFields::of(pkt, 0);
    uint32_t hash;
    if (f.has_l4 && !f.is_fragment) {
        hash = net::toeplitz_ipv4(net::default_rss_key(), f.src_ip,
                                  f.dst_ip, f.sport, f.dport);
    } else {
        uint8_t input[8];
        store_be32(input, f.src_ip);
        store_be32(input + 4, f.dst_ip);
        hash = net::toeplitz_hash(net::default_rss_key(), input, 8);
    }
    pkt.meta.rss_hash = hash;
    offload_rx_checks(pkt);
    deliver_to_rq(rqns[hash % rqns.size()], std::move(pkt));
}

void
NicDevice::offload_rx_checks(net::Packet& pkt)
{
    net::ParsedPacket pp = net::parse(pkt);
    pkt.meta.l3_csum_ok = false;
    pkt.meta.l4_csum_ok = false;
    if (!pp.ipv4)
        return;
    const uint8_t* p = pkt.bytes();
    size_t ihl = (p[pp.l3_offset] & 0x0f) * 4;
    pkt.meta.l3_csum_ok =
        net::internet_checksum(p + pp.l3_offset, ihl) == 0;
    if (pp.ipv4->is_fragment())
        return; // L4 checksum cannot be validated on fragments
    size_t l4_len = pp.ipv4->total_len >= ihl
                        ? size_t(pp.ipv4->total_len) - ihl : 0;
    if ((pp.udp || pp.tcp) && pp.l4_offset + l4_len <= pkt.size()) {
        uint32_t acc = 0;
        acc += pp.ipv4->src >> 16;
        acc += pp.ipv4->src & 0xffff;
        acc += pp.ipv4->dst >> 16;
        acc += pp.ipv4->dst & 0xffff;
        acc += pp.ipv4->proto;
        acc += uint32_t(l4_len);
        acc = net::checksum_partial(p + pp.l4_offset, l4_len, acc);
        pkt.meta.l4_csum_ok = net::checksum_fold(acc) == 0;
    }
}

// ---------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------

void
NicDevice::wire_receive(net::Packet&& pkt)
{
    stats_.wire_rx_packets++;
    eq_.schedule_in(cfg_.pipeline_latency,
                    [this, pkt = std::move(pkt)]() mutable {
                        run_pipeline(std::move(pkt), kUplinkVport, 0);
                    });
}

void
NicDevice::doorbell_rq(uint32_t rqn, uint32_t pi)
{
    auto it = rqs_.find(rqn);
    if (it == rqs_.end()) {
        FLD_WARN("nic", "doorbell for unknown rq %u", rqn);
        return;
    }
    it->second.pi = pi;
    eq_.schedule_in(cfg_.doorbell_latency,
                    [this, rqn] { maybe_fetch_rx_descs(rqn); });
}

void
NicDevice::maybe_fetch_rx_descs(uint32_t rqn)
{
    auto it = rqs_.find(rqn);
    if (it == rqs_.end())
        return;
    RqState& rq = it->second;
    while (rq.fetches_inflight < cfg_.max_fetches_inflight &&
           rq.fetch_ci != rq.pi &&
           rq.ready.size() < 2 * cfg_.rx_desc_fetch_batch) {
        uint32_t slot = rq.fetch_ci % rq.cfg.entries;
        uint32_t n = std::min({cfg_.rx_desc_fetch_batch,
                               rq.pi - rq.fetch_ci,
                               rq.cfg.entries - slot});
        rq.fetches_inflight++;
        uint32_t first_index = rq.fetch_ci;
        rq.fetch_ci += n;
        uint64_t addr =
            rq.cfg.ring_addr + uint64_t(slot) * kRxDescStride;
        if (auto* tr = sim::Tracer::active())
            tr->emit(eq_.now(), sim::TraceEventKind::WqeFetch, name_, "rq",
                     0, rqn, first_index, n, uint64_t(n) * kRxDescStride);
        fabric_.read(
            dma_port_, addr, size_t(n) * kRxDescStride,
            [this, rqn, n, first_index](std::vector<uint8_t> data) {
                auto it2 = rqs_.find(rqn);
                if (it2 == rqs_.end())
                    return;
                RqState& rq2 = it2->second;
                rq2.fetches_inflight--;
                for (uint32_t i = 0; i < n; ++i) {
                    RxDesc d = RxDesc::decode(data.data() +
                                              i * kRxDescStride);
                    rq2.ready.emplace_back(first_index + i, d);
                }
                maybe_fetch_rx_descs(rqn);
            });
    }
}

bool
NicDevice::deliver_to_rq(uint32_t rqn, net::Packet&& pkt,
                         std::optional<Cqe> rdma_info)
{
    if (rx_probe_)
        rx_probe_(rqn, pkt);
    auto it = rqs_.find(rqn);
    if (it == rqs_.end()) {
        stats_.drops_no_rule++;
        return false;
    }
    RqState& rq = it->second;

    // Find an MPRQ buffer with enough contiguous strides.
    for (;;) {
        if (!rq.current) {
            if (rq.ready.empty()) {
                stats_.drops_no_buffer++;
                emit(NicEvent::Type::RqNoBuffer, rqn);
                maybe_fetch_rx_descs(rqn);
                return false;
            }
            rq.current = rq.ready.front().second;
            rq.current_index = rq.ready.front().first;
            rq.ready.pop_front();
            rq.stride_used = 0;
            maybe_fetch_rx_descs(rqn);
        }
        const RxDesc& desc = *rq.current;
        uint32_t stride_size = 1u << desc.stride_shift;
        uint32_t needed =
            uint32_t(ceil_div<uint64_t>(std::max<size_t>(pkt.size(), 1),
                                        stride_size));
        if (needed > desc.stride_count) {
            // Packet can never fit this buffer geometry.
            stats_.drops_no_buffer++;
            emit(NicEvent::Type::RqNoBuffer, rqn);
            return false;
        }
        if (rq.stride_used + needed > desc.stride_count) {
            // MPRQ fragmentation: packets do not span buffers; the
            // remaining strides are wasted (bounded by half a buffer).
            rq.current.reset();
            continue;
        }

        uint64_t dst = desc.addr +
                       uint64_t(rq.stride_used) * stride_size;
        uint16_t stride_index = uint16_t(rq.stride_used);
        uint16_t wqe_index = uint16_t(rq.current_index);
        rq.stride_used += needed;
        if (rq.stride_used == desc.stride_count)
            rq.current.reset();

        Cqe cqe = rdma_info.value_or(Cqe{});
        if (!rdma_info)
            cqe.qpn = rqn; // Ethernet completions carry the rqn
        cqe.opcode = CqeOpcode::Rx;
        cqe.byte_count = uint32_t(pkt.size());
        cqe.rss_hash = pkt.meta.rss_hash;
        cqe.flow_tag = pkt.meta.flow_tag;
        cqe.stride_index = stride_index;
        cqe.rq_wqe_index = wqe_index;
        if (pkt.meta.l3_csum_ok)
            cqe.flags |= kCqeL3Ok;
        if (pkt.meta.l4_csum_ok)
            cqe.flags |= kCqeL4Ok;
        if (pkt.meta.tunneled)
            cqe.flags |= kCqeTunneled;
        {
            net::ParsedPacket pp = net::parse(pkt);
            if (pp.is_ip_fragment())
                cqe.flags |= kCqeIpFrag;
        }
        // FLD-E resume table rides in the unused msg_offset field for
        // Ethernet completions.
        if (!rdma_info)
            cqe.msg_offset = pkt.meta.next_table;
        cqe.corr = pkt.meta.corr;

        stats_.rx_packets++;
        stats_.rx_bytes += pkt.size();

        if (auto* tr = sim::Tracer::active())
            tr->emit(eq_.now(), sim::TraceEventKind::PayloadWrite, name_,
                     rdma_info ? "rdma" : "eth", pkt.meta.corr, rqn,
                     wqe_index, 1, pkt.size());
        uint32_t cqn = rq.cfg.cqn;
        fabric_.write(dma_port_, dst, std::move(pkt.data),
                      [this, cqn, cqe] { write_cqe(cqn, cqe); });
        return true;
    }
}

// ---------------------------------------------------------------------
// Completions
// ---------------------------------------------------------------------

void
NicDevice::write_cqe(uint32_t cqn, Cqe cqe)
{
    auto it = cqs_.find(cqn);
    if (it == cqs_.end())
        return;
    CqState& cq = it->second;

    // Mini-CQE compression (§8.1's unused optimization, modeled for
    // the ablation study): plain Ethernet receive completions of one
    // CQ coalesce into a single write. RDMA and FLD-E-annotated
    // completions carry fields minis cannot express, so they flush.
    bool compressible = cfg_.cqe_compression &&
                        cq.cfg.allow_compression &&
                        cqe.opcode == CqeOpcode::Rx &&
                        cqe.msg_id == 0 && cqe.msg_offset == 0;
    if (!compressible) {
        flush_cq(cqn);
        uint32_t slot = cq.pi % cq.cfg.entries;
        cqe.owner = uint8_t((cq.pi / cq.cfg.entries) & 1) ^ 1;
        cq.pi++;
        uint8_t bytes[kCqeStride];
        cqe.encode(bytes);
        if (auto* tr = sim::Tracer::active()) {
            const char* what = cqe.opcode == CqeOpcode::TxOk  ? "TxOk"
                               : cqe.opcode == CqeOpcode::Rx ? "Rx"
                                                             : "Error";
            tr->emit(eq_.now(), sim::TraceEventKind::CqeWrite, name_, what,
                     cqe.corr, cqe.qpn, cqe.wqe_counter, 1, kCqeStride);
        }
        fabric_.write(dma_port_,
                      cq.cfg.ring_addr + uint64_t(slot) * kCqeStride,
                      bytes, kCqeStride);
        return;
    }

    uint32_t slot = cq.pi % cq.cfg.entries;
    cqe.owner = uint8_t((cq.pi / cq.cfg.entries) & 1) ^ 1;
    cq.pi++;
    if (cq.pending.empty()) {
        cq.block_start_slot = slot;
        uint64_t gen = ++cq.flush_generation;
        eq_.schedule_in(cfg_.cqe_coalesce_window, [this, cqn, gen] {
            auto it2 = cqs_.find(cqn);
            if (it2 != cqs_.end() &&
                it2->second.flush_generation == gen) {
                flush_cq(cqn);
            }
        });
    }
    cq.pending.push_back(cqe);
    // Flush when the block is full or would wrap the ring.
    if (cq.pending.size() == 1 + kMaxMiniCqes ||
        cq.block_start_slot + cq.pending.size() >= cq.cfg.entries) {
        flush_cq(cqn);
    }
}

void
NicDevice::flush_cq(uint32_t cqn)
{
    auto it = cqs_.find(cqn);
    if (it == cqs_.end())
        return;
    CqState& cq = it->second;
    if (cq.pending.empty())
        return;
    cq.flush_generation++; // cancel the window timer

    size_t n = cq.pending.size();
    // Compressed blocks are bounded: a title CQE plus kMaxMiniCqes
    // minis, so the wire image fits on the stack.
    uint8_t bytes[kCqeStride + kMaxMiniCqes * kMiniCqeStride] = {};
    size_t bytes_len = kCqeStride + (n - 1) * kMiniCqeStride;
    Cqe title = cq.pending.front();
    title.encode(bytes);
    bytes[kCqeMiniCountOffset] = uint8_t(n - 1);
    if (auto* tr = sim::Tracer::active())
        tr->emit(eq_.now(), sim::TraceEventKind::CqeWrite, name_, "Rx",
                 title.corr, title.qpn, title.wqe_counter, 1, kCqeStride);
    for (size_t i = 1; i < n; ++i) {
        const Cqe& c = cq.pending[i];
        if (auto* tr = sim::Tracer::active())
            tr->emit(eq_.now(), sim::TraceEventKind::CqeWrite, name_,
                     "RxMini", c.corr, c.qpn, c.wqe_counter, 1,
                     kMiniCqeStride);
        MiniCqe mini;
        mini.byte_count = c.byte_count;
        mini.stride_index = c.stride_index;
        mini.rq_wqe_index = c.rq_wqe_index;
        mini.flags = c.flags;
        mini.flow_tag = c.flow_tag;
        mini.encode(bytes + kCqeStride + (i - 1) * kMiniCqeStride);
    }
    cq.pending.clear();
    fabric_.write(dma_port_,
                  cq.cfg.ring_addr +
                      uint64_t(cq.block_start_slot) * kCqeStride,
                  bytes, bytes_len);
}

// ---------------------------------------------------------------------
// RDMA RC transport
// ---------------------------------------------------------------------

void
NicDevice::inject_qp_error(uint32_t qpn)
{
    auto it = qps_.find(qpn);
    if (it == qps_.end())
        fatal("inject_qp_error: unknown qpn %u", qpn);
    QpState& qp = it->second;
    qp.in_error = true;
    qp.timer_generation++; // stop retransmissions
    emit(NicEvent::Type::QpFatal, qpn);
    // Flush in-flight work with error completions.
    while (!qp.inflight.empty()) {
        TxMsg msg = std::move(qp.inflight.front());
        qp.inflight.pop_front();
        qp.inflight_bytes -= msg.len;
        Cqe cqe;
        cqe.opcode = CqeOpcode::Error;
        cqe.qpn = qpn;
        cqe.wqe_counter = msg.wqe.wqe_index;
        cqe.msg_id = msg.wqe.msg_id;
        cqe.corr = msg.wqe.corr;
        auto sit = sqs_.find(qp.cfg.sqn);
        if (sit != sqs_.end())
            write_cqe(sit->second.cfg.cqn, cqe);
    }
    // Window-held messages flush with error completions too.
    while (!qp.pending.empty()) {
        auto [wqe, payload] = std::move(qp.pending.front());
        qp.pending.pop_front();
        Cqe cqe;
        cqe.opcode = CqeOpcode::Error;
        cqe.qpn = qpn;
        cqe.wqe_counter = wqe.wqe_index;
        cqe.msg_id = wqe.msg_id;
        cqe.corr = wqe.corr;
        auto sit = sqs_.find(qp.cfg.sqn);
        if (sit != sqs_.end())
            write_cqe(sit->second.cfg.cqn, cqe);
    }
}

void
NicDevice::rdma_send(uint32_t qpn, const Wqe& wqe,
                     std::vector<uint8_t> payload)
{
    auto it = qps_.find(qpn);
    if (it == qps_.end() || !it->second.connected) {
        emit(NicEvent::Type::QpFatal, qpn);
        return;
    }
    QpState& qp = it->second;
    if (qp.in_error) {
        // Error-state QP: complete immediately with an error CQE.
        Cqe cqe;
        cqe.opcode = CqeOpcode::Error;
        cqe.qpn = qpn;
        cqe.wqe_counter = wqe.wqe_index;
        cqe.msg_id = wqe.msg_id;
        cqe.corr = wqe.corr;
        auto sit = sqs_.find(qp.cfg.sqn);
        if (sit != sqs_.end())
            write_cqe(sit->second.cfg.cqn, cqe);
        return;
    }

    // Transmit window: hold new messages while too many bytes are
    // unacknowledged (hardware flow control; prevents GBN collapse
    // when the receiver is slow).
    if (qp.inflight_bytes >= cfg_.rdma_window_bytes) {
        qp.pending.emplace_back(wqe, std::move(payload));
        return;
    }

    uint32_t len = uint32_t(payload.size());
    uint32_t segments =
        std::max<uint32_t>(1, uint32_t(ceil_div<uint64_t>(
                                  len, cfg_.rdma_mtu)));
    TxMsg msg;
    msg.wqe = wqe;
    msg.first_psn = qp.next_psn;
    msg.last_psn = qp.next_psn + segments - 1;
    msg.len = len;
    msg.payload = std::move(payload);
    qp.next_psn += segments;

    bool was_idle = qp.inflight.empty();
    qp.inflight_bytes += len;
    qp.inflight.push_back(std::move(msg));
    transmit_segments(qpn, qp.inflight.back());
    if (was_idle)
        arm_retransmit_timer(qpn);
}

void
NicDevice::transmit_segments(uint32_t qpn, const TxMsg& msg)
{
    auto it = qps_.find(qpn);
    if (it == qps_.end())
        return;
    QpState& qp = it->second;
    uint32_t segments = msg.last_psn - msg.first_psn + 1;

    for (uint32_t s = 0; s < segments; ++s) {
        uint32_t off = s * cfg_.rdma_mtu;
        uint32_t chunk = std::min(cfg_.rdma_mtu, msg.len - off);
        if (msg.len == 0)
            chunk = 0;

        RdmaHeader hdr;
        if (segments == 1)
            hdr.opcode = RdmaOpcode::SendOnly;
        else if (s == 0)
            hdr.opcode = RdmaOpcode::SendFirst;
        else if (s == segments - 1)
            hdr.opcode = RdmaOpcode::SendLast;
        else
            hdr.opcode = RdmaOpcode::SendMiddle;
        hdr.dst_qpn = qp.peer.remote_qpn;
        hdr.psn = msg.first_psn + s;
        hdr.msg_len = msg.len;
        hdr.msg_id = msg.wqe.msg_id;

        net::Packet pkt;
        pkt.data.resize(net::kEthHeaderLen + kRdmaHeaderLen + chunk);
        net::EthHeader eth;
        eth.src = qp.peer.local_mac;
        eth.dst = qp.peer.remote_mac;
        eth.ethertype = kEtherTypeRoce;
        eth.encode(pkt.bytes());
        hdr.encode(pkt.bytes() + net::kEthHeaderLen);
        if (chunk > 0) {
            // Intentional copy: segments are cut from msg.payload,
            // which must stay intact for go-back-N retransmission.
            std::memcpy(pkt.bytes() + net::kEthHeaderLen +
                            kRdmaHeaderLen,
                        msg.payload.data() + off, chunk);
        }
        pkt.meta.flow_tag = msg.wqe.flow_tag;
        pkt.meta.corr = msg.wqe.corr;

        stats_.tx_packets++;
        stats_.tx_bytes += pkt.size();
        shaped_egress(qp.cfg.sqn, std::move(pkt));
    }
}

void
NicDevice::rdma_rx(VportId vport, net::Packet&& pkt)
{
    RdmaHeader hdr =
        RdmaHeader::decode(pkt.bytes() + net::kEthHeaderLen);
    auto it = qps_.find(hdr.dst_qpn);
    if (it == qps_.end()) {
        stats_.drops_no_rule++;
        return;
    }
    QpState& qp = it->second;
    (void)vport;

    if (qp.in_error)
        return;
    if (hdr.opcode == RdmaOpcode::Ack) {
        rdma_handle_ack(qp, hdr.psn);
        return;
    }

    // Strict in-order RC receive. A duplicate (below-window PSN) means
    // our ACK was lost or the sender's timer fired spuriously: it must
    // be re-ACKed, or a sender whose ACKs all got dropped would
    // retransmit delivered data forever. Future PSNs (a gap) are
    // dropped silently and recovered by the sender's go-back-N timer.
    if (hdr.psn != qp.expected_psn) {
        int32_t delta = int32_t(hdr.psn - qp.expected_psn);
        if (delta < 0) {
            stats_.rdma_dup_psn++;
            rdma_send_ack(qp);
        } else {
            stats_.rdma_out_of_order++;
        }
        return;
    }

    bool first = hdr.opcode == RdmaOpcode::SendFirst ||
                 hdr.opcode == RdmaOpcode::SendOnly;
    bool last = hdr.opcode == RdmaOpcode::SendLast ||
                hdr.opcode == RdmaOpcode::SendOnly;

    // Strip L2+RDMA headers in place on the moved frame: one memmove
    // within the existing buffer instead of a fresh allocation plus
    // payload copy per received segment.
    size_t payload_off = net::kEthHeaderLen + kRdmaHeaderLen;
    net::Packet payload = std::move(pkt);
    payload.data.erase(payload.data.begin(),
                       payload.data.begin() + long(payload_off));
    uint32_t payload_len = uint32_t(payload.size());

    Cqe info;
    info.qpn = hdr.dst_qpn;
    info.msg_id = first ? hdr.msg_id : qp.cur_msg_id;
    info.msg_offset = first ? 0 : qp.cur_msg_off;
    if (last)
        info.flags |= kCqeRdmaLast;

    // Receiver-not-ready: leave PSN state untouched and do not ACK,
    // so the sender's go-back-N timer retries the whole message.
    if (!deliver_to_rq(qp.cfg.rqn, std::move(payload), info))
        return;

    qp.expected_psn++;
    if (first) {
        qp.cur_msg_id = hdr.msg_id;
        qp.cur_msg_len = hdr.msg_len;
        qp.cur_msg_off = 0;
    }
    qp.cur_msg_off += payload_len;

    // ACK coalescing: ack at message end or every N packets.
    qp.pkts_since_ack++;
    if (last || qp.pkts_since_ack >= cfg_.rdma_ack_every)
        rdma_send_ack(qp);
}

void
NicDevice::rdma_send_ack(QpState& qp)
{
    qp.pkts_since_ack = 0;
    RdmaHeader hdr;
    hdr.opcode = RdmaOpcode::Ack;
    hdr.dst_qpn = qp.peer.remote_qpn;
    hdr.psn = qp.expected_psn; // cumulative: everything below is acked

    net::Packet pkt;
    pkt.data.resize(net::kEthHeaderLen + kRdmaHeaderLen);
    net::EthHeader eth;
    eth.src = qp.peer.local_mac;
    eth.dst = qp.peer.remote_mac;
    eth.ethertype = kEtherTypeRoce;
    eth.encode(pkt.bytes());
    hdr.encode(pkt.bytes() + net::kEthHeaderLen);

    stats_.rdma_acks++;
    run_pipeline(std::move(pkt), qp.cfg.vport, 0);
}

void
NicDevice::rdma_handle_ack(QpState& qp, uint32_t acked_psn)
{
    if (acked_psn <= qp.acked_psn)
        return; // stale
    qp.acked_psn = acked_psn;

    while (!qp.inflight.empty() &&
           qp.inflight.front().last_psn < acked_psn) {
        TxMsg msg = std::move(qp.inflight.front());
        qp.inflight.pop_front();
        qp.inflight_bytes -= msg.len;
        sq_complete(qp.cfg.sqn, msg.wqe);
    }
    // Progress resets the retransmit clock; window space may free
    // held messages.
    for (auto& [n, state] : qps_) {
        if (&state == &qp) {
            if (!qp.inflight.empty())
                arm_retransmit_timer(n);
            else
                qp.timer_generation++; // cancel
            while (!qp.pending.empty() &&
                   qp.inflight_bytes < cfg_.rdma_window_bytes) {
                auto [wqe, payload] = std::move(qp.pending.front());
                qp.pending.pop_front();
                rdma_send(n, wqe, std::move(payload));
            }
            break;
        }
    }
}

void
NicDevice::arm_retransmit_timer(uint32_t qpn)
{
    auto it = qps_.find(qpn);
    if (it == qps_.end())
        return;
    uint64_t gen = ++it->second.timer_generation;
    eq_.schedule_in(cfg_.rdma_retransmit_timeout, [this, qpn, gen] {
        auto it2 = qps_.find(qpn);
        if (it2 == qps_.end() || it2->second.timer_generation != gen ||
            it2->second.inflight.empty()) {
            return;
        }
        retransmit(qpn);
    });
}

void
NicDevice::retransmit(uint32_t qpn)
{
    auto it = qps_.find(qpn);
    if (it == qps_.end())
        return;
    QpState& qp = it->second;
    stats_.rdma_retransmits++;
    emit(NicEvent::Type::QpRetransmit, qpn);
    if (auto* tr = sim::Tracer::active())
        tr->emit(eq_.now(), sim::TraceEventKind::Retransmit, name_, "gbn",
                 0, qpn, qp.acked_psn, uint32_t(qp.inflight.size()), 0);
    // Go-back-N: resend every unacked message.
    for (const TxMsg& msg : qp.inflight)
        transmit_segments(qpn, msg);
    arm_retransmit_timer(qpn);
}

} // namespace fld::nic
