#include "nic/pipeline.h"

#include <algorithm>

#include "net/toeplitz.h"

namespace fld::nic {

TernaryField
ternary_exact(uint32_t value)
{
    return {value, 0xffffffffu};
}

TernaryField
ternary_masked(uint32_t value, uint32_t mask)
{
    return {value & mask, mask};
}

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

namespace {

void
normalize(TernaryField& t)
{
    t.value &= t.mask;
}

void
normalize_key(PipelineKey& k)
{
    normalize(k.in_vport);
    normalize(k.ethertype);
    normalize(k.ip_proto);
    normalize(k.src_ip);
    normalize(k.dst_ip);
    normalize(k.sport);
    normalize(k.dport);
    normalize(k.is_fragment);
    normalize(k.vni);
    normalize(k.flow_tag);
}

} // namespace

void
Pipeline::compile(const PipelineConfig& cfg)
{
    tables_.clear();
    entries_.clear();
    actions_.clear();
    pools_.clear();
    counters_.clear();

    // Group config blocks by table id, merging duplicate blocks in
    // config order so entry insertion order (the priority tie-break)
    // is well defined.
    std::map<uint32_t, std::vector<const PipelineTableConfig*>> by_id;
    for (const PipelineTableConfig& t : cfg.tables)
        by_id[t.id].push_back(&t);

    for (const auto& [id, blocks] : by_id) {
        CompiledTable ct;
        ct.id = id;
        ct.entry_begin = uint32_t(entries_.size());

        std::vector<CompiledEntry> staged;
        std::vector<const std::vector<Action>*> staged_actions;
        uint32_t cfg_index = 0;
        ct.default_begin = uint32_t(actions_.size());
        for (const PipelineTableConfig* block : blocks) {
            for (const PipelineEntryConfig& e : block->entries) {
                CompiledEntry ce;
                ce.key = e.key;
                normalize_key(ce.key);
                ce.priority = e.priority;
                ce.cfg_index = cfg_index++;
                ce.rule_id = e.rule_id;
                staged.push_back(ce);
                staged_actions.push_back(&e.actions);
            }
            for (const Action& a : block->default_actions)
                actions_.push_back(a);
        }
        ct.default_count = uint32_t(actions_.size()) - ct.default_begin;

        // Descending priority, stable in config order — exactly the
        // dispatch order FlowTables::add_rule maintains.
        std::vector<uint32_t> order(staged.size());
        for (uint32_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](uint32_t a, uint32_t b) {
                             return staged[a].priority >
                                    staged[b].priority;
                         });
        for (uint32_t idx : order) {
            CompiledEntry ce = staged[idx];
            ce.action_begin = uint32_t(actions_.size());
            ce.action_count = uint32_t(staged_actions[idx]->size());
            for (const Action& a : *staged_actions[idx])
                actions_.push_back(a);
            entries_.push_back(ce);
        }
        ct.entry_count = uint32_t(entries_.size()) - ct.entry_begin;
        tables_.push_back(ct);
    }

    for (const VipPoolConfig& p : cfg.pools)
        pools_[p.id] = p.backends;
}

PipelineConfig
Pipeline::config_from(const FlowTables& flows)
{
    PipelineConfig cfg;
    for (const auto& [id, rules] : flows.all_tables()) {
        PipelineTableConfig t;
        t.id = id;
        for (const FlowRule& r : rules) {
            PipelineEntryConfig e;
            e.priority = r.priority;
            e.rule_id = r.id;
            e.actions = r.actions;
            const FlowMatch& m = r.match;
            if (m.in_vport)
                e.key.in_vport = ternary_exact(*m.in_vport);
            if (m.ethertype)
                e.key.ethertype = ternary_exact(*m.ethertype);
            if (m.ip_proto)
                e.key.ip_proto = ternary_exact(*m.ip_proto);
            if (m.src_ip)
                e.key.src_ip = ternary_exact(*m.src_ip);
            if (m.dst_ip)
                e.key.dst_ip = ternary_exact(*m.dst_ip);
            if (m.sport)
                e.key.sport = ternary_exact(*m.sport);
            if (m.dport)
                e.key.dport = ternary_exact(*m.dport);
            if (m.is_fragment)
                e.key.is_fragment = ternary_exact(*m.is_fragment);
            if (m.vni)
                e.key.vni = ternary_exact(*m.vni);
            if (m.flow_tag)
                e.key.flow_tag = ternary_exact(*m.flow_tag);
            t.entries.push_back(std::move(e));
        }
        cfg.tables.push_back(std::move(t));
    }
    return cfg;
}

// ---------------------------------------------------------------------
// Match
// ---------------------------------------------------------------------

namespace {

inline bool
tmatch(const TernaryField& t, uint32_t v)
{
    return (v & t.mask) == t.value;
}

} // namespace

bool
Pipeline::key_matches(const PipelineKey& k, const FlowFields& f)
{
    if (!tmatch(k.in_vport, f.in_vport))
        return false;
    if (!tmatch(k.ethertype, f.ethertype))
        return false;
    if (!tmatch(k.ip_proto, f.ip_proto))
        return false;
    if (!tmatch(k.src_ip, f.src_ip))
        return false;
    if (!tmatch(k.dst_ip, f.dst_ip))
        return false;
    // Port keys additionally require a parsed L4 header, mirroring
    // FlowMatch (fragments hide their ports).
    if (k.sport.mask && (!f.has_l4 || !tmatch(k.sport, f.sport)))
        return false;
    if (k.dport.mask && (!f.has_l4 || !tmatch(k.dport, f.dport)))
        return false;
    if (!tmatch(k.is_fragment, f.is_fragment ? 1 : 0))
        return false;
    if (!tmatch(k.vni, f.vni))
        return false;
    if (!tmatch(k.flow_tag, f.flow_tag))
        return false;
    return true;
}

const Pipeline::CompiledTable*
Pipeline::find_table(uint32_t id) const
{
    auto it = std::lower_bound(tables_.begin(), tables_.end(), id,
                               [](const CompiledTable& t, uint32_t v) {
                                   return t.id < v;
                               });
    if (it == tables_.end() || it->id != id)
        return nullptr;
    return &*it;
}

CompiledEntry*
Pipeline::lookup(uint32_t table, const FlowFields& f)
{
    const CompiledTable* t = find_table(table);
    if (!t)
        return nullptr;
    CompiledEntry* e = entries_.data() + t->entry_begin;
    for (uint32_t i = 0; i < t->entry_count; ++i, ++e) {
        if (key_matches(e->key, f))
            return e;
    }
    return nullptr;
}

void
Pipeline::default_actions(uint32_t table, const Action*& acts,
                          size_t& count) const
{
    acts = nullptr;
    count = 0;
    const CompiledTable* t = find_table(table);
    if (!t || t->default_count == 0)
        return;
    acts = actions_.data() + t->default_begin;
    count = t->default_count;
}

bool
Pipeline::has_table(uint32_t table) const
{
    return find_table(table) != nullptr;
}

const std::vector<uint32_t>*
Pipeline::vip_pool(uint32_t pool_id) const
{
    auto it = pools_.find(pool_id);
    return it == pools_.end() ? nullptr : &it->second;
}

uint64_t
Pipeline::counter(uint32_t counter_id) const
{
    auto it = counters_.find(counter_id);
    return it == counters_.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------
// Standalone reference executor
// ---------------------------------------------------------------------

uint32_t
select_vip_backend(const std::vector<uint32_t>& backends,
                   const FlowFields& f)
{
    uint32_t hash = net::toeplitz_ipv4(net::default_rss_key(), f.src_ip,
                                       f.dst_ip, f.sport, f.dport);
    return backends[hash % backends.size()];
}

void
nat_apply_fields(FlowFields& f, const Action& act)
{
    if (act.arg0 & kNatDstIp)
        f.dst_ip = act.arg1;
    if (act.arg0 & kNatSrcIp)
        f.src_ip = act.arg3;
    if (f.has_l4) {
        if (act.arg0 & kNatDstPort)
            f.dport = uint16_t(act.arg2 & 0xffff);
        if (act.arg0 & kNatSrcPort)
            f.sport = uint16_t(act.arg2 >> 16);
    }
}

PipelineExecResult
Pipeline::execute(FlowFields f, uint32_t start_table, uint64_t bytes)
{
    PipelineExecResult r;
    uint32_t table = start_table;

    for (int depth = 0; depth < kMaxDepth; ++depth) {
        r.tables_visited++;
        const Action* acts = nullptr;
        size_t count = 0;
        CompiledEntry* e = lookup(table, f);
        if (e) {
            e->hits++;
            e->hit_bytes += bytes;
            acts = actions(*e);
            count = e->action_count;
        } else {
            default_actions(table, acts, count);
            if (count == 0) {
                r.kind = PipelineExecResult::Kind::Miss;
                r.final_tag = f.flow_tag;
                return r;
            }
        }

        bool had_goto = false;
        for (size_t i = 0; i < count; ++i) {
            const Action& act = acts[i];
            switch (act.type) {
              case ActionType::SetTag:
                f.flow_tag = act.arg0;
                break;
              case ActionType::Count:
                counters_[act.arg0] += bytes;
                break;
              case ActionType::VxlanDecap:
              case ActionType::VxlanEncap:
              case ActionType::Meter:
                // Packet-body / device-state actions: field-level
                // no-ops in the standalone executor.
                break;
              case ActionType::Goto:
                table = act.arg0;
                had_goto = true;
                break;
              case ActionType::ForwardVport:
                r.kind = PipelineExecResult::Kind::Vport;
                r.dest = act.arg0;
                r.final_tag = f.flow_tag;
                return r;
              case ActionType::ForwardTir:
                r.kind = PipelineExecResult::Kind::Tir;
                r.dest = act.arg0;
                r.final_tag = f.flow_tag;
                return r;
              case ActionType::ForwardQueue:
                r.kind = PipelineExecResult::Kind::Queue;
                r.dest = act.arg0;
                r.final_tag = f.flow_tag;
                return r;
              case ActionType::SendToAccel:
                r.kind = PipelineExecResult::Kind::Accel;
                r.dest = act.arg0;
                r.next_table = act.arg1;
                r.final_tag = f.flow_tag;
                return r;
              case ActionType::Drop:
                r.kind = PipelineExecResult::Kind::Drop;
                r.final_tag = f.flow_tag;
                return r;
              case ActionType::AclDeny:
                r.kind = PipelineExecResult::Kind::AclDeny;
                r.dest = act.arg0;
                r.final_tag = f.flow_tag;
                return r;
              case ActionType::NatRewrite:
                nat_apply_fields(f, act);
                break;
              case ActionType::VipSelect: {
                const std::vector<uint32_t>* pool = vip_pool(act.arg0);
                if (!pool || pool->empty()) {
                    r.kind = PipelineExecResult::Kind::Drop;
                    r.final_tag = f.flow_tag;
                    return r;
                }
                f.dst_ip = select_vip_backend(*pool, f);
                break;
              }
            }
        }
        if (!had_goto) {
            r.kind = PipelineExecResult::Kind::NoTerminal;
            r.final_tag = f.flow_tag;
            return r;
        }
    }
    r.kind = PipelineExecResult::Kind::DepthExceeded;
    r.final_tag = f.flow_tag;
    return r;
}

} // namespace fld::nic
