/**
 * @file
 * Vendor (ConnectX-like) descriptor wire formats.
 *
 * These are the *uncompressed* formats the NIC reads/writes over PCIe.
 * The CPU driver stores them verbatim in host memory (Table 2b,
 * "Software" column); FLD synthesizes them on-the-fly from compressed
 * internal state (§5.2) — which is exactly why both sides must agree
 * on a concrete byte layout.
 */
#ifndef FLD_NIC_DESCRIPTORS_H
#define FLD_NIC_DESCRIPTORS_H

#include <cstddef>
#include <cstdint>

#include "nic/config.h"

namespace fld::nic {

/** WQE opcodes. */
enum class WqeOpcode : uint8_t {
    Nop = 0,
    EthSend = 1,  ///< transmit an Ethernet frame
    RdmaSend = 2, ///< transmit an RDMA SEND message (may span packets)
};

/** Transmit work-queue entry (64 B stride on the wire). */
struct Wqe
{
    WqeOpcode opcode = WqeOpcode::Nop;
    bool signaled = false;     ///< request a CQE on completion
    uint16_t wqe_index = 0;    ///< producer's ring index (mod 2^16)
    uint32_t qpn = 0;          ///< owning SQ/QP number
    uint32_t flow_tag = 0;     ///< egress metadata tag (context ID)
    uint32_t next_table = 0;   ///< FLD-E: resume match-action table
    uint64_t addr = 0;         ///< payload fabric address
    uint32_t byte_count = 0;   ///< payload length
    uint32_t msg_id = 0;       ///< RDMA: message correlation id
    uint64_t corr = 0;         ///< trace correlation id (0 = untraced)

    void encode(uint8_t out[kWqeStride]) const;
    static Wqe decode(const uint8_t in[kWqeStride]);
};

/** Receive descriptor (16 B): one MPRQ buffer of N strides. */
struct RxDesc
{
    uint64_t addr = 0;         ///< buffer base fabric address
    uint32_t byte_count = 0;   ///< total buffer bytes
    uint16_t stride_count = 1; ///< MPRQ strides in this buffer
    uint16_t stride_shift = 11;///< log2(stride size); 2 KiB default

    void encode(uint8_t out[kRxDescStride]) const;
    static RxDesc decode(const uint8_t in[kRxDescStride]);
};

/** CQE opcodes. */
enum class CqeOpcode : uint8_t {
    TxOk = 0,
    Rx = 1,
    Error = 2,
};

/** CQE flags. */
constexpr uint8_t kCqeL3Ok = 1 << 0;
constexpr uint8_t kCqeL4Ok = 1 << 1;
constexpr uint8_t kCqeIpFrag = 1 << 2;
constexpr uint8_t kCqeTunneled = 1 << 3;
constexpr uint8_t kCqeRdmaLast = 1 << 4; ///< last packet of a message

/** Completion queue entry (64 B stride on the wire). */
struct Cqe
{
    CqeOpcode opcode = CqeOpcode::TxOk;
    uint8_t flags = 0;
    uint16_t wqe_counter = 0;  ///< completed WQE index / stride slot
    uint32_t qpn = 0;
    uint32_t byte_count = 0;
    uint32_t rss_hash = 0;
    uint32_t flow_tag = 0;
    uint16_t stride_index = 0; ///< MPRQ stride where data landed
    uint16_t rq_wqe_index = 0; ///< which MPRQ buffer
    uint32_t msg_id = 0;       ///< RDMA message id
    uint32_t msg_offset = 0;   ///< byte offset of this packet in message
    uint8_t owner = 0;         ///< phase/ownership bit for polling
    uint64_t corr = 0;         ///< trace correlation id (0 = untraced)

    void encode(uint8_t out[kCqeStride]) const;
    static Cqe decode(const uint8_t in[kCqeStride]);
};

/**
 * Mini-CQE (16 B): a compressed receive completion riding behind a
 * full "title" CQE in the same PCIe write. Fields not present here
 * (qpn, opcode, rss hash) are inherited from the title entry. The
 * title CQE's mini_count byte says how many follow.
 */
constexpr uint32_t kMiniCqeStride = 16;
constexpr size_t kCqeMiniCountOffset = 61;
constexpr uint32_t kMaxMiniCqes = 7;

struct MiniCqe
{
    uint32_t byte_count = 0;
    uint16_t stride_index = 0;
    uint16_t rq_wqe_index = 0;
    uint8_t flags = 0;
    uint32_t flow_tag = 0;

    void encode(uint8_t out[kMiniCqeStride]) const;
    static MiniCqe decode(const uint8_t in[kMiniCqeStride]);
};

/** RoCE-like transport header carried after the Ethernet header. */
enum class RdmaOpcode : uint8_t {
    SendOnly = 0,
    SendFirst = 1,
    SendMiddle = 2,
    SendLast = 3,
    Ack = 4,
};

constexpr uint16_t kEtherTypeRoce = 0x8915;
constexpr uint32_t kRdmaHeaderLen = 20;

struct RdmaHeader
{
    RdmaOpcode opcode = RdmaOpcode::SendOnly;
    uint8_t flags = 0;
    uint32_t dst_qpn = 0; ///< 24-bit in real BTH; 32 here
    uint32_t psn = 0;
    uint32_t msg_len = 0; ///< total message bytes (First/Only packets)
    uint32_t msg_id = 0;  ///< end-to-end message correlation id

    void encode(uint8_t out[kRdmaHeaderLen]) const;
    static RdmaHeader decode(const uint8_t in[kRdmaHeaderLen]);
};

} // namespace fld::nic

#endif // FLD_NIC_DESCRIPTORS_H
