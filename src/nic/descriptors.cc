#include "nic/descriptors.h"

#include <cstring>

#include "util/bitops.h"

namespace fld::nic {

void
Wqe::encode(uint8_t out[kWqeStride]) const
{
    std::memset(out, 0, kWqeStride);
    out[0] = uint8_t(opcode);
    out[1] = signaled ? 1 : 0;
    store_le16(out + 2, wqe_index);
    store_le32(out + 4, qpn);
    store_le32(out + 8, flow_tag);
    store_le32(out + 12, next_table);
    store_le64(out + 16, addr);
    store_le32(out + 24, byte_count);
    store_le32(out + 28, msg_id);
    store_le64(out + 32, corr);
}

Wqe
Wqe::decode(const uint8_t in[kWqeStride])
{
    Wqe w;
    w.opcode = WqeOpcode(in[0]);
    w.signaled = in[1] & 1;
    w.wqe_index = load_le16(in + 2);
    w.qpn = load_le32(in + 4);
    w.flow_tag = load_le32(in + 8);
    w.next_table = load_le32(in + 12);
    w.addr = load_le64(in + 16);
    w.byte_count = load_le32(in + 24);
    w.msg_id = load_le32(in + 28);
    w.corr = load_le64(in + 32);
    return w;
}

void
RxDesc::encode(uint8_t out[kRxDescStride]) const
{
    std::memset(out, 0, kRxDescStride);
    store_le64(out, addr);
    store_le32(out + 8, byte_count);
    store_le16(out + 12, stride_count);
    out[14] = uint8_t(stride_shift);
}

RxDesc
RxDesc::decode(const uint8_t in[kRxDescStride])
{
    RxDesc d;
    d.addr = load_le64(in);
    d.byte_count = load_le32(in + 8);
    d.stride_count = load_le16(in + 12);
    d.stride_shift = in[14];
    return d;
}

void
Cqe::encode(uint8_t out[kCqeStride]) const
{
    std::memset(out, 0, kCqeStride);
    out[0] = uint8_t(opcode);
    out[1] = flags;
    store_le16(out + 2, wqe_counter);
    store_le32(out + 4, qpn);
    store_le32(out + 8, byte_count);
    store_le32(out + 12, rss_hash);
    store_le32(out + 16, flow_tag);
    store_le16(out + 20, stride_index);
    store_le16(out + 22, rq_wqe_index);
    store_le32(out + 24, msg_id);
    store_le32(out + 28, msg_offset);
    store_le64(out + 32, corr);
    out[63] = owner; // last byte so a full-CQE write commits ownership
}

Cqe
Cqe::decode(const uint8_t in[kCqeStride])
{
    Cqe c;
    c.opcode = CqeOpcode(in[0]);
    c.flags = in[1];
    c.wqe_counter = load_le16(in + 2);
    c.qpn = load_le32(in + 4);
    c.byte_count = load_le32(in + 8);
    c.rss_hash = load_le32(in + 12);
    c.flow_tag = load_le32(in + 16);
    c.stride_index = load_le16(in + 20);
    c.rq_wqe_index = load_le16(in + 22);
    c.msg_id = load_le32(in + 24);
    c.msg_offset = load_le32(in + 28);
    c.corr = load_le64(in + 32);
    c.owner = in[63];
    return c;
}

void
MiniCqe::encode(uint8_t out[kMiniCqeStride]) const
{
    std::memset(out, 0, kMiniCqeStride);
    store_le32(out, byte_count);
    store_le16(out + 4, stride_index);
    store_le16(out + 6, rq_wqe_index);
    out[8] = flags;
    store_le32(out + 9, flow_tag);
}

MiniCqe
MiniCqe::decode(const uint8_t in[kMiniCqeStride])
{
    MiniCqe m;
    m.byte_count = load_le32(in);
    m.stride_index = load_le16(in + 4);
    m.rq_wqe_index = load_le16(in + 6);
    m.flags = in[8];
    m.flow_tag = load_le32(in + 9);
    return m;
}

void
RdmaHeader::encode(uint8_t out[kRdmaHeaderLen]) const
{
    out[0] = uint8_t(opcode);
    out[1] = flags;
    store_le16(out + 2, 0);
    store_le32(out + 4, dst_qpn);
    store_le32(out + 8, psn);
    store_le32(out + 12, msg_len);
    store_le32(out + 16, msg_id);
}

RdmaHeader
RdmaHeader::decode(const uint8_t in[kRdmaHeaderLen])
{
    RdmaHeader h;
    h.opcode = RdmaOpcode(in[0]);
    h.flags = in[1];
    h.dst_qpn = load_le32(in + 4);
    h.psn = load_le32(in + 8);
    h.msg_len = load_le32(in + 12);
    h.msg_id = load_le32(in + 16);
    return h;
}

} // namespace fld::nic
