#include "nic/wire.h"

#include <algorithm>

namespace fld::nic {

EthernetLink::EthernetLink(sim::EventQueue& eq, NetPort& a, NetPort& b,
                           double gbps, sim::TimePs latency)
    : eq_(eq), gbps_(gbps), latency_(latency)
{
    connect(a, b, busy_a_to_b_, meters_[0]);
    connect(b, a, busy_b_to_a_, meters_[1]);
}

void
EthernetLink::connect(NetPort& src, NetPort& dst, sim::TimePs& busy_until,
                      sim::RateMeter& meter)
{
    src.set_tx_hook([this, &dst, &busy_until,
                     &meter](net::Packet&& pkt) {
        uint64_t wire_bytes = pkt.size() + kEthWireOverhead;
        sim::TimePs start = std::max(eq_.now(), busy_until);
        busy_until = start + sim::serialize_time(wire_bytes, gbps_);
        meter.record(busy_until, pkt.size());
        eq_.schedule_at(busy_until + latency_,
                        [&dst, pkt = std::move(pkt)]() mutable {
                            dst.deliver(std::move(pkt));
                        });
    });
}

} // namespace fld::nic
