#include "nic/wire.h"

#include <algorithm>

#include "sim/trace.h"

namespace fld::nic {

EthernetLink::EthernetLink(sim::EventQueue& eq, NetPort& a, NetPort& b,
                           double gbps, sim::TimePs latency)
    : eq_(eq), gbps_(gbps), latency_(latency)
{
    connect(a, b, busy_a_to_b_, meters_[0]);
    connect(b, a, busy_b_to_a_, meters_[1]);
}

void
EthernetLink::deliver_at(sim::TimePs when, NetPort& dst,
                         net::Packet&& pkt)
{
    eq_.schedule_at(when, [this, &dst, pkt = std::move(pkt)]() mutable {
        if (auto* tr = sim::Tracer::active())
            tr->emit(eq_.now(), sim::TraceEventKind::WireRx, dst.name(),
                     "frame", pkt.meta.corr, pkt.meta.queue_id, 0, 1,
                     pkt.size());
        dst.deliver(std::move(pkt));
    });
}

void
EthernetLink::connect(NetPort& src, NetPort& dst, sim::TimePs& busy_until,
                      sim::RateMeter& meter)
{
    src.set_tx_hook([this, &src, &dst, &busy_until,
                     &meter](net::Packet&& pkt) {
        uint64_t wire_bytes = pkt.size() + kEthWireOverhead;
        sim::TimePs start = std::max(eq_.now(), busy_until);
        busy_until = start + sim::serialize_time(wire_bytes, gbps_);
        meter.record(busy_until, pkt.size());
        sim::TimePs arrival = busy_until + latency_;

        if (auto* tr = sim::Tracer::active())
            tr->emit(eq_.now(), sim::TraceEventKind::WireTx, src.name(),
                     "frame", pkt.meta.corr, pkt.meta.queue_id, 0, 1,
                     pkt.size());
        if (faults_ && fault_cfg_.enabled() &&
            (!fault_filter_ || fault_filter_(pkt))) {
            auto inject = [&](const char* what) {
                if (auto* tr = sim::Tracer::active())
                    tr->emit(eq_.now(), sim::TraceEventKind::FaultInject,
                             src.name(), what, pkt.meta.corr,
                             pkt.meta.queue_id, 0, 1, pkt.size());
            };
            switch (faults_->next_wire_fault(fault_cfg_)) {
              case sim::WireFault::Drop:
                inject("drop");
                return; // serialized, then lost on the wire
              case sim::WireFault::Corrupt:
                // Damage the frame; the receiving MAC's FCS check
                // discards it, so it never reaches the NIC pipeline.
                inject("corrupt");
                faults_->corrupt_bytes(pkt.bytes(), pkt.size());
                return;
              case sim::WireFault::Duplicate: {
                inject("dup");
                // Intentional copy: the fault emits two independent
                // frames on the wire, so each needs its own buffer.
                net::Packet copy = pkt;
                // The duplicate serializes right behind the original.
                busy_until +=
                    sim::serialize_time(wire_bytes, gbps_);
                deliver_at(busy_until + latency_, dst,
                           std::move(copy));
                break;
              }
              case sim::WireFault::Reorder:
                inject("reorder");
                arrival += faults_->next_reorder_delay(fault_cfg_);
                break;
              case sim::WireFault::None:
                break;
            }
        }
        deliver_at(arrival, dst, std::move(pkt));
    });
}

} // namespace fld::nic
