/**
 * @file
 * Ethernet wire model: ports and point-to-point links.
 *
 * A link serializes frames at the configured rate (plus the 20 B
 * preamble/IFG per-frame overhead the paper's packet-rate formula
 * uses) and delivers them after a propagation delay. The remote
 * experiments' 25 Gbps ceiling comes from here.
 */
#ifndef FLD_NIC_WIRE_H
#define FLD_NIC_WIRE_H

#include <functional>
#include <string>

#include "net/packet.h"
#include "nic/config.h"
#include "sim/event_queue.h"
#include "sim/fault.h"
#include "sim/stats.h"

namespace fld::nic {

/** One side of a link. The owner (a NIC) sends and receives frames. */
class NetPort
{
  public:
    using RxHandler = std::function<void(net::Packet&&)>;

    explicit NetPort(std::string name) : name_(std::move(name)) {}

    /** Install the frame-arrival callback (owned by the NIC). */
    void set_rx_handler(RxHandler fn) { rx_ = std::move(fn); }

    /** Deliver a frame into the owner. */
    void deliver(net::Packet&& pkt)
    {
        if (rx_)
            rx_(std::move(pkt));
    }

    /** Hook installed by the link when the port gets connected. */
    using TxHook = std::function<void(net::Packet&&)>;
    void set_tx_hook(TxHook fn) { tx_ = std::move(fn); }

    /** Send a frame toward the peer (drops when unconnected). */
    void transmit(net::Packet&& pkt)
    {
        if (tx_)
            tx_(std::move(pkt));
    }

    const std::string& name() const { return name_; }

  private:
    std::string name_;
    RxHandler rx_;
    TxHook tx_;
};

/** Full-duplex point-to-point Ethernet link. */
class EthernetLink
{
  public:
    EthernetLink(sim::EventQueue& eq, NetPort& a, NetPort& b,
                 double gbps, sim::TimePs latency);

    double gbps() const { return gbps_; }

    /** Frames/bytes carried per direction (a->b = 0, b->a = 1). */
    const sim::RateMeter& meter(int direction) const
    {
        return meters_[direction];
    }

    /**
     * Attach a fault plan (see sim/fault.h). Faulted frames still pay
     * serialization — loss happens *on* the wire, not before it — so
     * bandwidth accounting is unperturbed. NetPort-level behaviour:
     * corrupted frames are discarded at delivery, modeling the
     * receiving MAC's FCS check. A null plan or all-zero config
     * restores the fault-free wire bit-exactly.
     */
    void set_fault_plan(sim::FaultPlan* plan,
                        const sim::WireFaultConfig& cfg)
    {
        faults_ = plan;
        fault_cfg_ = cfg;
    }

    /**
     * Restrict faults to frames the predicate selects. Frames it
     * rejects never consult the fault plan, so they neither suffer
     * faults nor advance its RNG — targeting one flow leaves every
     * other flow's frames bit-identical to a filter-free run with the
     * same plan. A null filter (the default) faults all frames.
     */
    using FaultFilter = std::function<bool(const net::Packet&)>;
    void set_fault_filter(FaultFilter f) { fault_filter_ = std::move(f); }

  private:
    void connect(NetPort& src, NetPort& dst, sim::TimePs& busy_until,
                 sim::RateMeter& meter);
    void deliver_at(sim::TimePs when, NetPort& dst, net::Packet&& pkt);

    sim::EventQueue& eq_;
    double gbps_;
    sim::TimePs latency_;
    sim::TimePs busy_a_to_b_ = 0;
    sim::TimePs busy_b_to_a_ = 0;
    sim::RateMeter meters_[2];
    sim::FaultPlan* faults_ = nullptr;
    sim::WireFaultConfig fault_cfg_;
    FaultFilter fault_filter_;
};

} // namespace fld::nic

#endif // FLD_NIC_WIRE_H
