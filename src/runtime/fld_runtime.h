/**
 * @file
 * FLD runtime library: the software control plane (§5.3).
 *
 * Runs on the host CPU and binds FLD and the NIC together: it creates
 * NIC queues whose rings live behind the FLD BAR (or, for the receive
 * ring, in host memory), installs match-action rules, and exposes the
 * two high-level interfaces:
 *
 *  - FLD-E: raw Ethernet queues plus "send to accelerator" match-action
 *    actions with next-table resume semantics;
 *  - FLD-R: RDMA queue pairs whose data path belongs to the
 *    accelerator while connection setup stays in software.
 *
 * Control-plane work costs no simulated time (it is off the data
 * path), matching the paper's division of labor (§4.1).
 */
#ifndef FLD_RUNTIME_FLD_RUNTIME_H
#define FLD_RUNTIME_FLD_RUNTIME_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fld/flexdriver.h"
#include "nic/nic.h"
#include "pcie/endpoint.h"

namespace fld::runtime {

/** Events surfaced to control-plane applications (§5.3). */
struct RuntimeEvent
{
    enum class Source { Nic, Fld };
    Source source;
    std::string description;
};

class FldRuntime
{
  public:
    /**
     * @param host_arena_base / size: host-memory range the runtime may
     *        use for receive rings (and nothing else — FLD's design
     *        keeps all hot structures on-die or in the NIC).
     */
    FldRuntime(nic::NicDevice& nic, core::FlexDriver& fld,
               pcie::MemoryEndpoint& hostmem, uint64_t host_arena_base,
               uint64_t host_arena_size);

    /** An FLD-E Ethernet queue pair (one FLD tx queue + one NIC RQ). */
    struct EthQueue
    {
        uint32_t fld_queue = 0;
        uint32_t sqn = 0;
        uint32_t rqn = 0;
        uint32_t cqn_tx = 0;
        uint32_t cqn_rx = 0;
        nic::VportId vport = 0;
    };

    /**
     * Create an FLD-E queue on @p vport using FLD tx queue
     * @p fld_queue. @p rx_buffers MPRQ buffers (FLD geometry) are
     * carved from FLD RX SRAM with their ring in host memory.
     */
    EthQueue create_eth_queue(nic::VportId vport, uint32_t fld_queue,
                              uint32_t rx_buffers);

    /** An FLD-R queue pair. */
    struct FldQp
    {
        uint32_t fld_queue = 0;
        uint32_t qpn = 0;
        uint32_t sqn = 0;
        uint32_t rqn = 0;
        nic::VportId vport = 0;
    };

    /** Create an FLD-R QP whose data path belongs to the accelerator. */
    FldQp create_fld_qp(nic::VportId vport, uint32_t fld_queue,
                        uint32_t rx_buffers);

    /**
     * Connect an FLD-R QP to a remote endpoint — the control plane
     * acts as a standard RDMA connection manager while the data path
     * never touches the CPU.
     */
    void connect_qp(const FldQp& qp, uint32_t remote_qpn,
                    const net::MacAddr& local_mac,
                    const net::MacAddr& remote_mac);

    /**
     * FLD-E high-level abstraction: extend the match-action API with
     * an acceleration action. Packets matching @p match in @p table
     * are tagged with @p context_id, sent to the accelerator through
     * @p q, and — once the accelerator transmits them back — resume
     * NIC processing at @p next_table.
     */
    uint64_t add_accel_action(uint32_t table, int priority,
                              nic::FlowMatch match, const EthQueue& q,
                              uint32_t context_id, uint32_t next_table);

    using EventHandler = std::function<void(const RuntimeEvent&)>;
    void set_event_handler(EventHandler fn);

    nic::NicDevice& nic() { return nic_; }
    core::FlexDriver& fld() { return fld_; }

  private:
    uint64_t alloc_host(uint64_t size, uint64_t align = 64);
    /** Write an RX descriptor ring for FLD buffers into host memory. */
    uint64_t write_rx_ring(uint32_t rx_key, uint32_t entries,
                           uint32_t buffers);

    nic::NicDevice& nic_;
    core::FlexDriver& fld_;
    pcie::MemoryEndpoint& hostmem_;
    uint64_t arena_next_;
    uint64_t arena_end_;
    uint32_t tx_cqn_ = 0;
    uint32_t rx_cqn_ = 0;
    EventHandler events_;
};

} // namespace fld::runtime

#endif // FLD_RUNTIME_FLD_RUNTIME_H
