#include "runtime/fld_runtime.h"

#include <cstring>

#include "util/logging.h"
#include "util/strings.h"

namespace fld::runtime {

FldRuntime::FldRuntime(nic::NicDevice& nic, core::FlexDriver& fld,
                       pcie::MemoryEndpoint& hostmem,
                       uint64_t host_arena_base, uint64_t host_arena_size)
    : nic_(nic), fld_(fld), hostmem_(hostmem),
      arena_next_(host_arena_base),
      arena_end_(host_arena_base + host_arena_size)
{
    // One CQ for all transmit queues and one for receive (§4.3), both
    // rings living behind the FLD BAR where completions are stored
    // compressed.
    uint32_t entries = fld_.config().cq_entries;
    tx_cqn_ = nic_.create_cq({fld_.tx_cq_addr(), entries, false});
    // FLD expands mini-CQE blocks, so its receive CQ opts in (the
    // NIC-level switch still defaults off, matching the paper).
    rx_cqn_ = nic_.create_cq({fld_.rx_cq_addr(), entries, true});
}

void
FldRuntime::set_event_handler(EventHandler fn)
{
    events_ = std::move(fn);
    nic_.set_event_handler([this](const nic::NicEvent& e) {
        if (events_)
            events_({RuntimeEvent::Source::Nic,
                     strfmt("nic event type=%d id=%u", int(e.type),
                            e.id)});
    });
    fld_.set_error_handler([this](const core::FldError& e) {
        if (events_)
            events_({RuntimeEvent::Source::Fld,
                     strfmt("fld error type=%d queue=%u", int(e.type),
                            e.queue)});
    });
}

uint64_t
FldRuntime::alloc_host(uint64_t size, uint64_t align)
{
    arena_next_ = (arena_next_ + align - 1) & ~(align - 1);
    uint64_t addr = arena_next_;
    arena_next_ += size;
    if (arena_next_ > arena_end_)
        fatal("FldRuntime: host arena exhausted");
    return addr;
}

uint64_t
FldRuntime::write_rx_ring(uint32_t rx_key, uint32_t entries,
                          uint32_t buffers)
{
    uint64_t ring = alloc_host(uint64_t(entries) * nic::kRxDescStride);
    // Slot i permanently describes buffer i % buffers: FLD recycles
    // in order, so the descriptors are never rewritten (§5.2).
    for (uint32_t i = 0; i < entries; ++i) {
        nic::RxDesc d;
        d.addr = fld_.rx_buffer_addr(rx_key, i % buffers);
        d.byte_count = fld_.rx_buffer_bytes_per_buffer();
        d.stride_count =
            uint16_t(fld_.config().rx_strides_per_buffer);
        d.stride_shift = uint16_t(fld_.config().rx_stride_shift);
        uint8_t enc[nic::kRxDescStride];
        d.encode(enc);
        std::memcpy(hostmem_.raw(ring + uint64_t(i) *
                                            nic::kRxDescStride,
                                 nic::kRxDescStride),
                    enc, nic::kRxDescStride);
    }
    return ring;
}

FldRuntime::EthQueue
FldRuntime::create_eth_queue(nic::VportId vport, uint32_t fld_queue,
                             uint32_t rx_buffers)
{
    EthQueue q;
    q.fld_queue = fld_queue;
    q.vport = vport;
    q.cqn_tx = tx_cqn_;
    q.cqn_rx = rx_cqn_;

    nic::SqConfig sq;
    sq.ring_addr = fld_.tx_ring_addr(fld_queue);
    sq.entries = fld_.config().tx_ring_entries;
    sq.cqn = tx_cqn_;
    sq.vport = vport;
    q.sqn = nic_.create_sq(sq);

    // The RQ ring lives in host memory; data buffers live in FLD SRAM.
    uint32_t ring_entries = 64;
    while (ring_entries < 2 * rx_buffers)
        ring_entries *= 2;
    nic::RqConfig rq;
    rq.entries = ring_entries;
    rq.cqn = rx_cqn_;
    // Create the RQ first to learn its rqn (the CQE completion key),
    // then back-fill the ring address.
    rq.ring_addr = 0;
    q.rqn = nic_.create_rq(rq);

    // FLD must know the geometry before ring writing needs buffer
    // addresses.
    fld_.bind_tx_queue(fld_queue, q.sqn, q.sqn, /*is_rdma=*/false);
    // bind_rx_queue issues the initial doorbell; write the ring first.
    // We need the binding (for rx_buffer_addr) before writing ring
    // entries, so bind without doorbell is not available — instead,
    // bind, then write the ring, then re-doorbell is unnecessary
    // because the NIC only reads descriptors when traffic arrives
    // after the doorbell write has been delivered; the ring write is
    // a zero-time host-memory store happening at the same instant.
    fld_.bind_rx_queue(q.rqn, q.rqn, /*is_rdma=*/false, rx_buffers,
                       /*initial_pi=*/rx_buffers);
    uint64_t ring = write_rx_ring(q.rqn, ring_entries, rx_buffers);
    nic_.set_rq_ring_addr(q.rqn, ring);
    return q;
}

FldRuntime::FldQp
FldRuntime::create_fld_qp(nic::VportId vport, uint32_t fld_queue,
                          uint32_t rx_buffers)
{
    FldQp qp;
    qp.fld_queue = fld_queue;
    qp.vport = vport;

    nic::SqConfig sq;
    sq.ring_addr = fld_.tx_ring_addr(fld_queue);
    sq.entries = fld_.config().tx_ring_entries;
    sq.cqn = tx_cqn_;
    sq.vport = vport;
    qp.sqn = nic_.create_sq(sq);

    uint32_t ring_entries = 64;
    while (ring_entries < 2 * rx_buffers)
        ring_entries *= 2;
    nic::RqConfig rq;
    rq.entries = ring_entries;
    rq.cqn = rx_cqn_;
    rq.ring_addr = 0;
    qp.rqn = nic_.create_rq(rq);

    qp.qpn = nic_.create_qp({qp.sqn, qp.rqn, vport});

    fld_.bind_tx_queue(fld_queue, qp.sqn, qp.qpn, /*is_rdma=*/true);
    fld_.bind_rx_queue(qp.qpn, qp.rqn, /*is_rdma=*/true, rx_buffers,
                       rx_buffers);
    uint64_t ring = write_rx_ring(qp.qpn, ring_entries, rx_buffers);
    nic_.set_rq_ring_addr(qp.rqn, ring);
    return qp;
}

void
FldRuntime::connect_qp(const FldQp& qp, uint32_t remote_qpn,
                       const net::MacAddr& local_mac,
                       const net::MacAddr& remote_mac)
{
    nic_.connect_qp(qp.qpn, {remote_qpn, local_mac, remote_mac});
}

uint64_t
FldRuntime::add_accel_action(uint32_t table, int priority,
                             nic::FlowMatch match, const EthQueue& q,
                             uint32_t context_id, uint32_t next_table)
{
    std::vector<nic::Action> actions;
    if (context_id != 0)
        actions.push_back(nic::set_tag(context_id));
    actions.push_back(nic::send_to_accel(q.rqn, next_table));
    return nic_.add_rule(table, priority, std::move(match),
                         std::move(actions));
}

} // namespace fld::runtime
