/**
 * @file
 * Accelerator unit tests: unit-bank timing model, echo, ZUC protocol
 * correctness, IoT token validation, defrag reassembly — all via the
 * direct injection interface (no NIC in the loop).
 */
#include <gtest/gtest.h>

#include <numeric>

#include "accel/defrag_accel.h"
#include "accel/echo.h"
#include "accel/iot_auth.h"
#include "accel/zuc_accel.h"
#include "net/coap.h"
#include "net/ip_reassembly.h"
#include "net/jwt.h"
#include "pcie/fabric.h"

namespace fld::accel {
namespace {

/** Minimal FLD whose NIC side is a plain memory sink (doorbells land
 *  in memory; nothing reads the rings). Good enough for unit tests
 *  that only need the accelerator-facing interface. */
struct AccelRig
{
    sim::EventQueue eq;
    pcie::PcieFabric fabric{eq};
    pcie::MemoryEndpoint nic_stub{"nic-stub", 1 << 20};
    std::unique_ptr<core::FlexDriver> fld;
    std::vector<core::StreamPacket> tx_out; ///< what the AFU sent

    AccelRig()
    {
        pcie::PortId fld_port = fabric.add_port("fld", 50.0, 0);
        fld = std::make_unique<core::FlexDriver>(
            "fld", eq, fabric, fld_port, 0x8000'0000, 0x4000'0000);
        fabric.attach(fld_port, fld.get(), 0x8000'0000,
                      core::FlexDriver::kBarSize);
        pcie::PortId stub_port = fabric.add_port("stub", 50.0, 0);
        fabric.attach(stub_port, &nic_stub, 0x4000'0000, 1 << 20);
        fld->bind_tx_queue(0, 1, 1, false);
    }

    /** Capture AFU transmissions by reading FLD's tx ring state. */
    uint64_t fld_tx_count() const { return fld->stats().tx_packets; }
};

core::StreamPacket stream_of(std::vector<uint8_t> bytes)
{
    core::StreamPacket pkt;
    pkt.data = std::move(bytes);
    return pkt;
}

TEST(UnitModel, ServiceTimeFormula)
{
    UnitModel m;
    m.setup_time = sim::nanoseconds(100);
    m.unit_gbps = 8.0; // 1 B/ns
    EXPECT_EQ(m.service_time(1000),
              sim::nanoseconds(100) + sim::nanoseconds(1000));
    m.unit_gbps = 0;
    EXPECT_EQ(m.service_time(1000), sim::nanoseconds(100));
}

TEST(UnitModel, ZucDefaultSustainsPaperRate)
{
    // One module at ~4.76 Gbps on 512 B messages (§7).
    UnitModel m = ZucAccelerator::default_model();
    double gbps = sim::gbps_of(512, m.service_time(512 + 64));
    EXPECT_NEAR(gbps, 4.76, 0.5);
}

TEST(EchoAccel, EthEchoPreservesMetadata)
{
    AccelRig rig;
    EchoAccelerator echo(rig.eq, *rig.fld, 0, {});
    core::StreamPacket pkt = stream_of({1, 2, 3, 4});
    pkt.meta.context_id = 7;
    pkt.meta.next_table = 42;
    echo.inject(std::move(pkt));
    rig.eq.run();
    EXPECT_EQ(echo.stats().packets_in, 1u);
    EXPECT_EQ(echo.stats().packets_out, 1u);
    EXPECT_EQ(rig.fld_tx_count(), 1u);
}

TEST(EchoAccel, RdmaEchoWaitsForWholeMessage)
{
    AccelRig rig;
    EchoAccelerator echo(rig.eq, *rig.fld, 0, {});
    // Deliver last packet before the first (out-of-order units).
    core::StreamPacket last = stream_of(std::vector<uint8_t>(100, 2));
    last.meta.is_rdma = true;
    last.meta.msg_id = 9;
    last.meta.msg_offset = 1024;
    last.meta.msg_last = true;
    echo.inject(std::move(last));
    rig.eq.run();
    EXPECT_EQ(echo.stats().packets_out, 0u) << "must wait for bytes";

    core::StreamPacket first = stream_of(std::vector<uint8_t>(1024, 1));
    first.meta.is_rdma = true;
    first.meta.msg_id = 9;
    first.meta.msg_offset = 0;
    echo.inject(std::move(first));
    rig.eq.run();
    EXPECT_EQ(echo.stats().packets_out, 1u);
}

TEST(ZucAccel, ProducesCorrectCiphertext)
{
    AccelRig rig;
    ZucAccelerator zuc(rig.eq, *rig.fld, 0);

    ZucHeader hdr;
    hdr.op = ZucOp::Eea3Crypt;
    hdr.count = 0x1234;
    hdr.bearer = 5;
    hdr.direction = 1;
    for (size_t i = 0; i < hdr.key.size(); ++i)
        hdr.key[i] = uint8_t(i * 17);
    std::vector<uint8_t> plaintext(256);
    std::iota(plaintext.begin(), plaintext.end(), 0);
    hdr.length_bits = uint32_t(plaintext.size() * 8);

    core::StreamPacket req = stream_of(zuc_request(hdr, plaintext));
    req.meta.is_rdma = true;
    req.meta.msg_id = 1;
    req.meta.msg_last = true;
    zuc.inject(std::move(req));
    rig.eq.run();

    ASSERT_EQ(zuc.requests_served(), 1u);
    // Read the response payload out of FLD's tx buffer via the BAR,
    // exactly as the NIC would gather it.
    uint8_t wqe_raw[nic::kWqeStride];
    rig.fld->bar_read(core::FlexDriver::kTxRingRegion, wqe_raw,
                      nic::kWqeStride);
    nic::Wqe wqe = nic::Wqe::decode(wqe_raw);
    ASSERT_EQ(wqe.byte_count, kZucHeaderLen + plaintext.size());
    std::vector<uint8_t> resp(wqe.byte_count);
    rig.fld->bar_read(wqe.addr - 0x8000'0000, resp.data(),
                      resp.size());

    auto parsed = zuc_parse(resp);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->first.status, ZucStatus::Ok);
    // Reference ciphertext via the crypto library directly.
    std::vector<uint8_t> expect = plaintext;
    crypto::eea3_crypt(hdr.key, hdr.count, hdr.bearer, hdr.direction,
                       expect.data(), hdr.length_bits);
    EXPECT_EQ(parsed->second, expect);
}

TEST(ZucAccel, MacRequestReturnsMacOnly)
{
    AccelRig rig;
    ZucAccelerator zuc(rig.eq, *rig.fld, 0);

    ZucHeader hdr;
    hdr.op = ZucOp::Eia3Mac;
    hdr.count = 77;
    std::vector<uint8_t> data(128, 0x3c);
    hdr.length_bits = uint32_t(data.size() * 8);

    core::StreamPacket req = stream_of(zuc_request(hdr, data));
    req.meta.is_rdma = true;
    req.meta.msg_id = 2;
    req.meta.msg_last = true;
    zuc.inject(std::move(req));
    rig.eq.run();

    uint8_t wqe_raw[nic::kWqeStride];
    rig.fld->bar_read(core::FlexDriver::kTxRingRegion, wqe_raw,
                      nic::kWqeStride);
    nic::Wqe wqe = nic::Wqe::decode(wqe_raw);
    ASSERT_EQ(wqe.byte_count, kZucHeaderLen); // header only
    std::vector<uint8_t> resp(wqe.byte_count);
    rig.fld->bar_read(wqe.addr - 0x8000'0000, resp.data(), resp.size());
    ZucHeader out = ZucHeader::decode(resp.data());
    EXPECT_EQ(out.mac, crypto::eia3_mac(hdr.key, 77, 0, 0, data.data(),
                                        hdr.length_bits));
}

TEST(ZucAccel, MalformedRequestRejected)
{
    AccelRig rig;
    ZucAccelerator zuc(rig.eq, *rig.fld, 0);
    core::StreamPacket req = stream_of({1, 2, 3}); // < header size
    req.meta.is_rdma = true;
    req.meta.msg_id = 3;
    req.meta.msg_last = true;
    zuc.inject(std::move(req));
    rig.eq.run();
    EXPECT_EQ(zuc.stats().dropped_invalid, 1u);
    EXPECT_EQ(zuc.requests_served(), 0u);
}

net::Packet coap_jwt_frame(const std::string& key, bool valid)
{
    std::string token = net::jwt_sign_hs256(R"({"d":1})",
                                            valid ? key : key + "x");
    net::CoapMessage msg;
    msg.payload.assign(token.begin(), token.end());
    auto coap = msg.encode();
    return net::PacketBuilder()
        .eth({2, 0, 0, 0, 0, 1}, {2, 0, 0, 0, 0, 2})
        .ipv4(net::ipv4_addr(10, 0, 0, 2), net::ipv4_addr(10, 0, 0, 1),
              net::kIpProtoUdp)
        .udp(50000, net::kCoapPort)
        .payload(coap)
        .build();
}

TEST(IotAuth, ValidTokenForwardedInvalidDropped)
{
    AccelRig rig;
    IotAuthAccelerator auth(rig.eq, *rig.fld, 0);
    auth.set_tenant_key(3, "secret-3");

    core::StreamPacket ok = stream_of(coap_jwt_frame("secret-3",
                                                     true).data);
    ok.meta.context_id = 3;
    auth.inject(std::move(ok));
    core::StreamPacket bad = stream_of(coap_jwt_frame("secret-3",
                                                      false).data);
    bad.meta.context_id = 3;
    auth.inject(std::move(bad));
    rig.eq.run();

    EXPECT_EQ(auth.auth_stats().valid, 1u);
    EXPECT_EQ(auth.auth_stats().invalid_signature, 1u);
    EXPECT_EQ(auth.stats().packets_out, 1u);
}

TEST(IotAuth, UnknownTenantAndMalformedDropped)
{
    AccelRig rig;
    IotAuthAccelerator auth(rig.eq, *rig.fld, 0);
    auth.set_tenant_key(1, "k");

    core::StreamPacket unknown = stream_of(coap_jwt_frame("k",
                                                          true).data);
    unknown.meta.context_id = 99;
    auth.inject(std::move(unknown));

    core::StreamPacket garbage = stream_of({0xde, 0xad});
    garbage.meta.context_id = 1;
    auth.inject(std::move(garbage));
    rig.eq.run();

    EXPECT_EQ(auth.auth_stats().unknown_tenant, 1u);
    EXPECT_EQ(auth.auth_stats().malformed, 1u);
    EXPECT_EQ(auth.stats().packets_out, 0u);
}

TEST(DefragAccel, ReassemblesAndResumes)
{
    AccelRig rig;
    DefragAccelerator defrag(rig.eq, *rig.fld, 0);

    std::vector<uint8_t> payload(3000);
    std::iota(payload.begin(), payload.end(), 0);
    net::Packet datagram =
        net::PacketBuilder()
            .eth({2, 0, 0, 0, 0, 1}, {2, 0, 0, 0, 0, 2})
            .ipv4(1, 2, net::kIpProtoUdp, 55)
            .udp(7, 8)
            .payload(payload)
            .build();
    auto frags = net::ip_fragment(datagram, 1450);
    ASSERT_GE(frags.size(), 2u);

    for (auto& f : frags) {
        core::StreamPacket pkt = stream_of(std::move(f.data));
        pkt.meta.next_table = 5;
        defrag.inject(std::move(pkt));
    }
    rig.eq.run();

    EXPECT_EQ(defrag.stats().packets_out, 1u);
    EXPECT_EQ(defrag.reassembly_stats().packets_out, 1u);

    // The reassembled datagram in FLD's buffer matches the original.
    uint8_t wqe_raw[nic::kWqeStride];
    rig.fld->bar_read(core::FlexDriver::kTxRingRegion, wqe_raw,
                      nic::kWqeStride);
    nic::Wqe wqe = nic::Wqe::decode(wqe_raw);
    ASSERT_EQ(wqe.byte_count, datagram.size());
    std::vector<uint8_t> out(wqe.byte_count);
    rig.fld->bar_read(wqe.addr - 0x8000'0000, out.data(), out.size());
    EXPECT_EQ(out, datagram.data);
    EXPECT_EQ(wqe.next_table, 5u);
}

TEST(AccelBase, OverloadDropsWithoutBackpressure)
{
    AccelRig rig;
    UnitModel slow;
    slow.units = 1;
    slow.setup_time = sim::microseconds(100);
    slow.queue_depth = 4;
    EchoAccelerator echo(rig.eq, *rig.fld, 0, slow);

    for (int i = 0; i < 20; ++i)
        echo.inject(stream_of(std::vector<uint8_t>(64, uint8_t(i))));
    rig.eq.run();
    EXPECT_GT(echo.stats().dropped_overload, 0u);
    EXPECT_EQ(echo.stats().packets_in, 20u);
    EXPECT_LT(echo.stats().packets_out, 20u);
}

TEST(AccelBase, LoadBalancerUsesAllUnits)
{
    AccelRig rig;
    UnitModel m;
    m.units = 4;
    m.setup_time = sim::microseconds(1);
    EchoAccelerator echo(rig.eq, *rig.fld, 0, m);
    sim::TimePs start = rig.eq.now();
    for (int i = 0; i < 4; ++i)
        echo.inject(stream_of(std::vector<uint8_t>(64, 0)));
    rig.eq.run();
    // 4 units in parallel: all done after ~1 us, not 4 us.
    EXPECT_LT(rig.eq.now() - start, sim::microseconds(2));
    EXPECT_EQ(echo.stats().packets_out, 4u);
}

} // namespace
} // namespace fld::accel
