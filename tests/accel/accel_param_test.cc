/**
 * @file
 * Parameterized accelerator sweeps: ZUC request geometry against the
 * crypto library ground truth, defragmentation across MTUs and
 * interleavings, IoT multi-tenant isolation, and determinism of the
 * whole simulation.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "accel/defrag_accel.h"
#include "accel/iot_auth.h"
#include "accel/zuc_accel.h"
#include "apps/scenarios.h"
#include "net/ip_reassembly.h"

namespace fld::accel {
namespace {

/** FLD + memory-stub NIC rig (no timing dependencies). */
struct Rig
{
    sim::EventQueue eq;
    pcie::PcieFabric fabric{eq};
    pcie::MemoryEndpoint nic_stub{"nic-stub", 1 << 20};
    std::unique_ptr<core::FlexDriver> fld;

    Rig()
    {
        pcie::PortId fld_port = fabric.add_port("fld", 50.0, 0);
        fld = std::make_unique<core::FlexDriver>(
            "fld", eq, fabric, fld_port, 0x8000'0000, 0x4000'0000);
        fabric.attach(fld_port, fld.get(), 0x8000'0000,
                      core::FlexDriver::kBarSize);
        pcie::PortId stub_port = fabric.add_port("stub", 50.0, 0);
        fabric.attach(stub_port, &nic_stub, 0x4000'0000, 1 << 20);
        fld->bind_tx_queue(0, 1, 1, false);
    }

    /** Read back the AFU's i-th transmitted message via the BAR. */
    std::vector<uint8_t> tx_message(uint32_t slot)
    {
        uint8_t raw[nic::kWqeStride];
        fld->bar_read(core::FlexDriver::kTxRingRegion +
                          uint64_t(slot) * nic::kWqeStride,
                      raw, nic::kWqeStride);
        nic::Wqe wqe = nic::Wqe::decode(raw);
        std::vector<uint8_t> out(wqe.byte_count);
        if (wqe.byte_count)
            fld->bar_read(wqe.addr - 0x8000'0000, out.data(),
                          out.size());
        return out;
    }
};

// ---------------------------------------------------------------------
// ZUC: request geometry sweep against library ground truth.
// ---------------------------------------------------------------------

class ZucGeometrySweep
    : public ::testing::TestWithParam<std::tuple<size_t, int>>
{};

TEST_P(ZucGeometrySweep, CiphertextMatchesLibrary)
{
    auto [payload_len, packets] = GetParam();
    Rig rig;
    ZucAccelerator zuc(rig.eq, *rig.fld, 0);

    ZucHeader hdr;
    hdr.op = ZucOp::Eea3Crypt;
    hdr.count = 7;
    hdr.bearer = 11;
    hdr.direction = 1;
    for (size_t i = 0; i < hdr.key.size(); ++i)
        hdr.key[i] = uint8_t(0x90 + i);
    std::vector<uint8_t> plaintext(payload_len);
    std::iota(plaintext.begin(), plaintext.end(), 1);
    hdr.length_bits = uint32_t(payload_len * 8);

    // Deliver the request split into `packets` MPRQ completions.
    std::vector<uint8_t> msg = zuc_request(hdr, plaintext);
    size_t chunk = (msg.size() + packets - 1) / size_t(packets);
    uint32_t off = 0;
    for (int p = 0; p < packets; ++p) {
        size_t take = std::min(chunk, msg.size() - off);
        core::StreamPacket pkt;
        pkt.data.assign(msg.begin() + off, msg.begin() + off + take);
        pkt.meta.is_rdma = true;
        pkt.meta.msg_id = 5;
        pkt.meta.msg_offset = off;
        pkt.meta.msg_last = p + 1 == packets;
        zuc.inject(std::move(pkt));
        off += uint32_t(take);
    }
    rig.eq.run();

    ASSERT_EQ(zuc.requests_served(), 1u);
    auto resp = rig.tx_message(0);
    auto parsed = zuc_parse(resp);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->first.status, ZucStatus::Ok);

    std::vector<uint8_t> expect = plaintext;
    crypto::eea3_crypt(hdr.key, hdr.count, hdr.bearer, hdr.direction,
                       expect.data(), hdr.length_bits);
    EXPECT_EQ(parsed->second, expect);
}

INSTANTIATE_TEST_SUITE_P(
    GeometryGrid, ZucGeometrySweep,
    ::testing::Combine(::testing::Values<size_t>(16, 512, 1500, 4000),
                       ::testing::Values(1, 3, 7)));

// ---------------------------------------------------------------------
// Defrag: MTU sweep with interleaved datagrams.
// ---------------------------------------------------------------------

class DefragMtuSweep : public ::testing::TestWithParam<size_t>
{};

TEST_P(DefragMtuSweep, InterleavedDatagramsReassemble)
{
    size_t mtu = GetParam();
    Rig rig;
    DefragAccelerator defrag(rig.eq, *rig.fld, 0);

    // Three datagrams of different sizes, fragments interleaved.
    std::vector<net::Packet> originals;
    std::vector<net::Packet> frags;
    for (uint16_t id = 1; id <= 3; ++id) {
        std::vector<uint8_t> payload(1000 + 800 * id);
        std::iota(payload.begin(), payload.end(), uint8_t(id));
        net::Packet dg = net::PacketBuilder()
                             .eth({2, 0, 0, 0, 0, 1},
                                  {2, 0, 0, 0, 0, 2})
                             .ipv4(1, 2, net::kIpProtoUdp, id)
                             .udp(5, 6)
                             .payload(payload)
                             .build();
        originals.push_back(dg);
        for (auto& f : net::ip_fragment(dg, mtu))
            frags.push_back(std::move(f));
    }
    // Round-robin interleave by rotating.
    std::rotate(frags.begin(), frags.begin() + long(frags.size() / 2),
                frags.end());

    for (auto& f : frags) {
        core::StreamPacket pkt;
        pkt.data = std::move(f.data);
        pkt.meta.next_table = 9;
        defrag.inject(std::move(pkt));
    }
    rig.eq.run();

    EXPECT_EQ(defrag.stats().packets_out, 3u);
    // Each reassembled datagram must byte-match one original.
    std::set<std::vector<uint8_t>> expect;
    for (const auto& o : originals)
        expect.insert(o.data);
    for (uint32_t slot = 0; slot < 3; ++slot)
        EXPECT_TRUE(expect.count(rig.tx_message(slot)))
            << "slot " << slot;
}

INSTANTIATE_TEST_SUITE_P(Mtus, DefragMtuSweep,
                         ::testing::Values<size_t>(576, 1000, 1450));

// ---------------------------------------------------------------------
// IoT: tenant isolation of the key table.
// ---------------------------------------------------------------------

class IotTenantSweep : public ::testing::TestWithParam<int>
{};

TEST_P(IotTenantSweep, KeysNeverCross)
{
    int tenants = GetParam();
    Rig rig;
    IotAuthAccelerator auth(rig.eq, *rig.fld, 0);
    for (int t = 1; t <= tenants; ++t)
        auth.set_tenant_key(uint32_t(t),
                            "tenant-key-" + std::to_string(t));

    // Each tenant sends one token signed with every tenant's key;
    // only the matching one may pass.
    for (int owner = 1; owner <= tenants; ++owner) {
        for (int signer = 1; signer <= tenants; ++signer) {
            std::string token = net::jwt_sign_hs256(
                R"({"x":1})", "tenant-key-" + std::to_string(signer));
            net::CoapMessage msg;
            msg.payload.assign(token.begin(), token.end());
            auto coap = msg.encode();
            net::Packet pkt =
                net::PacketBuilder()
                    .eth({2, 0, 0, 0, 0, 1}, {2, 0, 0, 0, 0, 2})
                    .ipv4(1, 2, net::kIpProtoUdp)
                    .udp(777, net::kCoapPort)
                    .payload(coap)
                    .build();
            core::StreamPacket sp;
            sp.data = std::move(pkt.data);
            sp.meta.context_id = uint32_t(owner);
            auth.inject(std::move(sp));
        }
    }
    rig.eq.run();

    EXPECT_EQ(auth.auth_stats().valid, uint64_t(tenants));
    EXPECT_EQ(auth.auth_stats().invalid_signature,
              uint64_t(tenants) * uint64_t(tenants - 1));
}

INSTANTIATE_TEST_SUITE_P(TenantCounts, IotTenantSweep,
                         ::testing::Values(1, 3, 6));

// ---------------------------------------------------------------------
// Determinism: identical runs produce identical results.
// ---------------------------------------------------------------------

TEST(Determinism, RepeatedScenarioRunsAreBitIdentical)
{
    auto run_once = [] {
        apps::PktGenConfig g;
        g.frame_size = 200;
        g.window = 16;
        g.measure_rtt = true;
        auto s = apps::make_fld_echo(true, g);
        s->gen->start(sim::microseconds(100), sim::milliseconds(2));
        s->tb->eq.run();
        return std::make_tuple(s->gen->tx_count(), s->gen->rx_count(),
                               s->gen->rtt_us().mean(),
                               s->tb->fld->stats().cqes,
                               s->tb->eq.now());
    };
    auto a = run_once();
    auto b = run_once();
    EXPECT_EQ(a, b) << "simulation must be deterministic";
}

} // namespace
} // namespace fld::accel
