/**
 * @file
 * RpcDispatcher conformance and cost-model tests.
 *
 * Conformance pins rpc_execute's per-method semantics against
 * independent re-implementations written here (a map-based
 * reassembler for defrag, the documented key-schedule plus the
 * crypto-layer cipher for zuc, a direct FNV receipt for busy) — the
 * dispatcher must produce byte-identical responses through its own
 * path. The cost-model tests pin the worker bank: serial occupancy on
 * one worker, parallel completion across the bank, and the
 * setup+serialization service-time formula.
 */
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "apps/rpc_client.h" // build_defrag_payload
#include "apps/rpc_service.h"
#include "crypto/zuc.h"
#include "sim/event_queue.h"
#include "sim/fuzz.h" // fnv1a64
#include "util/rng.h"

namespace fld::apps {
namespace {

std::vector<uint8_t>
random_payload(Rng& rng, size_t len)
{
    std::vector<uint8_t> p(len);
    for (auto& b : p)
        b = uint8_t(rng.next());
    return p;
}

/** Dispatch one request and run the queue to completion. */
rpc::Frame
run_one(RpcDispatcher& disp, sim::EventQueue& eq, uint8_t method,
        uint64_t id, const std::vector<uint8_t>& payload)
{
    rpc::Frame req;
    req.method = method;
    req.request_id = id;
    req.payload = payload;
    rpc::Frame resp;
    bool done = false;
    EXPECT_TRUE(disp.dispatch(std::move(req), [&](rpc::Frame&& r) {
        resp = std::move(r);
        done = true;
    }));
    eq.run();
    EXPECT_TRUE(done);
    return resp;
}

TEST(RpcDispatch, EchoConformance)
{
    sim::EventQueue eq;
    RpcDispatcher disp(eq, {});
    Rng rng(1);
    for (int i = 0; i < 8; ++i) {
        auto p = random_payload(rng, size_t(rng.range(0, 300)));
        rpc::Frame r = run_one(disp, eq, kRpcEcho, uint64_t(i), p);
        EXPECT_EQ(r.method, kRpcEcho);
        EXPECT_EQ(r.request_id, uint64_t(i));
        EXPECT_EQ(r.payload, p); // independent expectation: identity
    }
}

TEST(RpcDispatch, ZucConformance)
{
    sim::EventQueue eq;
    RpcDispatcher disp(eq, {});
    Rng rng(2);
    for (int i = 0; i < 8; ++i) {
        uint64_t id = rng.next();
        auto p = random_payload(rng, size_t(rng.range(1, 200)));
        rpc::Frame r = run_one(disp, eq, kRpcZuc, id, p);

        // Independent expectation: the documented key schedule --
        // key[i] = (id >> 8*(i mod 8)) + i * 0x9e, count = low word,
        // bearer = bits [32,37), direction = bit 37 -- applied through
        // the crypto layer directly.
        crypto::Zuc::Key key;
        for (size_t k = 0; k < key.size(); ++k)
            key[k] = uint8_t((id >> (8 * (k & 7))) + k * 0x9e);
        std::vector<uint8_t> expect = p;
        crypto::eea3_crypt(key, uint32_t(id), uint8_t((id >> 32) & 0x1f),
                           uint8_t((id >> 37) & 1), expect.data(),
                           expect.size() * 8);
        EXPECT_EQ(r.payload, expect);
        // Sanity: the cipher actually transformed the bytes.
        EXPECT_NE(r.payload, p);
    }
}

TEST(RpcDispatch, ZucKeyDependsOnRequestId)
{
    sim::EventQueue eq;
    RpcDispatcher disp(eq, {});
    std::vector<uint8_t> p(64, 0x42);
    rpc::Frame a = run_one(disp, eq, kRpcZuc, 1, p);
    rpc::Frame b = run_one(disp, eq, kRpcZuc, 2, p);
    EXPECT_NE(a.payload, b.payload);
}

TEST(RpcDispatch, DefragConformance)
{
    sim::EventQueue eq;
    RpcDispatcher disp(eq, {});
    Rng rng(3);
    for (int i = 0; i < 10; ++i) {
        uint32_t datum_len = uint32_t(rng.range(1, 900));
        Rng payload_rng(uint64_t(1000 + i));
        auto p = build_defrag_payload(payload_rng, datum_len);

        // Independent expectation: byte-map reassembly of the chunk
        // records, last write wins, extent = max(off + len).
        std::map<size_t, uint8_t> bytes;
        size_t extent = 0;
        for (size_t pos = 0; pos + 4 <= p.size();) {
            size_t off = size_t(p[pos]) | size_t(p[pos + 1]) << 8;
            size_t len = size_t(p[pos + 2]) | size_t(p[pos + 3]) << 8;
            if (pos + 4 + len > p.size())
                break;
            for (size_t k = 0; k < len; ++k)
                bytes[off + k] = p[pos + 4 + k];
            extent = std::max(extent, off + len);
            pos += 4 + len;
        }
        std::vector<uint8_t> expect(extent, 0);
        for (const auto& [off, b] : bytes)
            expect[off] = b;

        rpc::Frame r = run_one(disp, eq, kRpcDefrag, uint64_t(i), p);
        ASSERT_EQ(r.payload.size(), datum_len);
        EXPECT_EQ(r.payload, expect);
    }
}

TEST(RpcDispatch, BusyConformance)
{
    sim::EventQueue eq;
    RpcDispatcher disp(eq, {});
    Rng rng(4);
    auto p = random_payload(rng, 123);
    rpc::Frame r = run_one(disp, eq, kRpcBusy, 9, p);
    ASSERT_EQ(r.payload.size(), 12u);
    uint64_t d = sim::fnv1a64(p.data(), p.size());
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(r.payload[size_t(i)], uint8_t(d >> (8 * i)));
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(r.payload[size_t(8 + i)],
                  uint8_t(uint32_t(p.size()) >> (8 * i)));
}

TEST(RpcDispatch, RejectsUnknownMethodAndOversize)
{
    sim::EventQueue eq;
    RpcServiceConfig cfg;
    cfg.max_payload = 64;
    RpcDispatcher disp(eq, cfg);

    rpc::Frame bad_method;
    bad_method.method = kRpcMethodCount;
    EXPECT_FALSE(
        disp.dispatch(std::move(bad_method), [](rpc::Frame&&) {
            FAIL() << "rejected dispatch must not complete";
        }));

    rpc::Frame oversize;
    oversize.method = kRpcEcho;
    oversize.payload.resize(65);
    EXPECT_FALSE(disp.dispatch(std::move(oversize), [](rpc::Frame&&) {
        FAIL() << "rejected dispatch must not complete";
    }));
    eq.run();
    EXPECT_EQ(disp.stats().rejected, 2u);
    EXPECT_EQ(disp.stats().dispatched, 0u);
    EXPECT_TRUE(disp.idle());
}

TEST(RpcDispatch, SingleWorkerSerializesRequests)
{
    sim::EventQueue eq;
    RpcServiceConfig cfg;
    cfg.workers = 1;
    RpcDispatcher disp(eq, cfg); // busy = 2us pure setup
    std::vector<sim::TimePs> completions;
    for (int i = 0; i < 3; ++i) {
        rpc::Frame f;
        f.method = kRpcBusy;
        f.request_id = uint64_t(i);
        ASSERT_TRUE(disp.dispatch(std::move(f), [&](rpc::Frame&&) {
            completions.push_back(eq.now());
        }));
    }
    eq.run();
    ASSERT_EQ(completions.size(), 3u);
    EXPECT_EQ(completions[0], sim::microseconds(2));
    EXPECT_EQ(completions[1], sim::microseconds(4));
    EXPECT_EQ(completions[2], sim::microseconds(6));
    EXPECT_EQ(disp.stats().busy_time, sim::microseconds(6));
}

TEST(RpcDispatch, WorkerBankRunsInParallel)
{
    sim::EventQueue eq;
    RpcServiceConfig cfg;
    cfg.workers = 4;
    RpcDispatcher disp(eq, cfg);
    std::vector<sim::TimePs> completions;
    for (int i = 0; i < 4; ++i) {
        rpc::Frame f;
        f.method = kRpcBusy;
        ASSERT_TRUE(disp.dispatch(std::move(f), [&](rpc::Frame&&) {
            completions.push_back(eq.now());
        }));
    }
    eq.run();
    ASSERT_EQ(completions.size(), 4u);
    for (sim::TimePs t : completions)
        EXPECT_EQ(t, sim::microseconds(2)); // all four in parallel
}

TEST(RpcDispatch, ServiceTimeIsSetupPlusSerialization)
{
    RpcHandlerModel m{sim::nanoseconds(100), 5.4};
    EXPECT_EQ(m.service_time(0), sim::nanoseconds(100));
    EXPECT_EQ(m.service_time(1024),
              sim::nanoseconds(100) + sim::serialize_time(1024, 5.4));
    RpcHandlerModel pure{sim::microseconds(2), 0.0};
    EXPECT_EQ(pure.service_time(1 << 20), sim::microseconds(2));
}

/**
 * Overload conformance: a worker bank saturated with the slowest
 * method (busy, pure 2us setup) plus a mixed tail must complete every
 * accepted request with a response byte-identical to the rpc_execute
 * shadow oracle — queueing pressure may delay answers but must never
 * corrupt them or cross-wire request ids.
 */
TEST(RpcDispatch, SaturatedWorkerBankKeepsConformanceDigests)
{
    sim::EventQueue eq;
    RpcServiceConfig cfg;
    cfg.workers = 2; // tiny bank: most of the burst sits queued
    RpcDispatcher disp(eq, cfg);
    Rng rng(0x5a7);

    struct Expect
    {
        uint8_t method;
        std::vector<uint8_t> response;
    };
    std::map<uint64_t, Expect> expect;
    std::map<uint64_t, rpc::Frame> got;

    // 64 requests at once: a 32x overload of the bank. The front
    // half is all busy (saturation), the tail is a random method mix
    // racing the drained backlog.
    for (uint64_t id = 0; id < 64; ++id) {
        rpc::Frame f;
        f.method = id < 32 ? kRpcBusy
                           : uint8_t(rng.uniform(kRpcMethodCount));
        f.request_id = id;
        f.payload = f.method == kRpcDefrag
                        ? build_defrag_payload(rng, 1 + uint32_t(
                                                        rng.uniform(400)))
                        : random_payload(rng,
                                         size_t(rng.range(1, 300)));
        expect[id] = {f.method,
                      rpc_execute(f.method, id, f.payload.data(),
                                  f.payload.size())};
        ASSERT_TRUE(disp.dispatch(std::move(f), [&, id](rpc::Frame&& r) {
            EXPECT_EQ(got.count(id), 0u) << "duplicate completion";
            got[id] = std::move(r);
        }));
    }
    eq.run();

    ASSERT_EQ(got.size(), 64u) << "saturation swallowed completions";
    for (const auto& [id, e] : expect) {
        ASSERT_TRUE(got.count(id)) << "request " << id << " lost";
        EXPECT_EQ(got[id].method, e.method) << "request " << id;
        EXPECT_EQ(got[id].request_id, id);
        EXPECT_EQ(got[id].payload, e.response)
            << "request " << id << " corrupted under overload";
    }
    EXPECT_TRUE(disp.idle());
    EXPECT_EQ(disp.stats().dispatched, 64u);
}

TEST(RpcDispatch, CompletionOrderIsDeterministic)
{
    auto run = [] {
        sim::EventQueue eq;
        RpcServiceConfig cfg;
        cfg.workers = 2;
        RpcDispatcher disp(eq, cfg);
        Rng rng(7);
        std::vector<uint64_t> order;
        for (int i = 0; i < 12; ++i) {
            rpc::Frame f;
            f.method = uint8_t(rng.uniform(kRpcMethodCount));
            f.request_id = uint64_t(i);
            f.payload = random_payload(rng, size_t(rng.range(1, 400)));
            disp.dispatch(std::move(f), [&order](rpc::Frame&& r) {
                order.push_back(r.request_id);
            });
        }
        eq.run();
        return order;
    };
    std::vector<uint64_t> a = run(), b = run();
    ASSERT_EQ(a.size(), 12u);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace fld::apps
