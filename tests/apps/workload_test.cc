/**
 * @file
 * Workload-generator tests: IMC size mixture statistics, TRex frame
 * validity (CoAP + JWT), iperf software fragmentation/tunneling.
 */
#include <gtest/gtest.h>

#include <map>

#include "apps/scenarios.h"
#include "net/coap.h"
#include "net/jwt.h"

namespace fld::apps {
namespace {

TEST(ImcMixture, SizesFromCharacterizedSet)
{
    Rng rng(1);
    std::map<size_t, int> hist;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hist[imc_frame_size(rng)]++;

    // Only characterized bins appear.
    for (const auto& [size, count] : hist) {
        EXPECT_TRUE(size == 64 || size == 128 || size == 256 ||
                    size == 512 || size == 1024 || size == 1500)
            << size;
        EXPECT_GT(count, 0);
    }
    // Bimodal: small packets dominate by count...
    EXPECT_GT(hist[64], n / 2);
    // ...with a meaningful full-MTU mode.
    EXPECT_GT(hist[1500], n / 40);
}

TEST(ImcMixture, CountWeightedAverageMatchesCalibration)
{
    Rng rng(2);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += double(imc_frame_size(rng));
    double avg = sum / n;
    // Calibrated to ~220 B (see pktgen.cc); the 12.7 Mpps experiment
    // depends on this scale.
    EXPECT_GT(avg, 190.0);
    EXPECT_LT(avg, 250.0);
}

TEST(TrexGen, FramesCarryVerifiableTokens)
{
    sim::EventQueue eq;
    pcie::PcieFabric fabric{eq};
    pcie::MemoryEndpoint hostmem{"m", 16 << 20};
    pcie::PortId hp = fabric.add_port("h", 50.0, 0);
    fabric.attach(hp, &hostmem, 0, 16 << 20);
    pcie::PortId np = fabric.add_port("n", 50.0, 0);
    nic::NicDevice nic("nic", eq, fabric, np);
    fabric.attach(np, &nic, 0x4000'0000, nic::NicDevice::kBarSize);
    driver::HostNode host("h", eq, {});
    nic::VportId v = nic.add_vport();
    driver::CpuDriver drv("d", eq, fabric, hp, hostmem, 0x1000,
                          8 << 20, nic, 0x4000'0000, host, v);

    TenantFlow good;
    good.tenant_id = 1;
    good.jwt_key = "k1";
    good.valid_tokens = true;
    good.frame_size = 512;
    TenantFlow bad = good;
    bad.tenant_id = 2;
    bad.jwt_key = "k2";
    bad.valid_tokens = false;
    TrexConfig cfg;
    cfg.flows = {good, bad};
    TrexGen trex(eq, drv, cfg);

    net::Packet gp = trex.make_frame(0);
    EXPECT_EQ(gp.size(), 512u);
    net::ParsedPacket pp = net::parse(gp);
    ASSERT_TRUE(pp.udp);
    EXPECT_EQ(pp.udp->dport, net::kCoapPort);
    // UDP length is authoritative; trailing L2 padding is ignored.
    size_t coap_len = pp.udp->length - net::kUdpHeaderLen;
    auto coap = net::CoapMessage::decode(gp.bytes() + pp.payload_offset,
                                         coap_len);
    ASSERT_TRUE(coap.has_value());
    std::string token(coap->payload.begin(), coap->payload.end());
    EXPECT_TRUE(net::jwt_verify_hs256(token, "k1").valid);
    EXPECT_FALSE(net::jwt_verify_hs256(token, "k2").valid);

    net::Packet bp = trex.make_frame(1);
    net::ParsedPacket bpp = net::parse(bp);
    auto bcoap = net::CoapMessage::decode(
        bp.bytes() + bpp.payload_offset,
        size_t(bpp.udp->length - net::kUdpHeaderLen));
    ASSERT_TRUE(bcoap.has_value());
    std::string btoken(bcoap->payload.begin(), bcoap->payload.end());
    EXPECT_FALSE(net::jwt_verify_hs256(btoken, "k2").valid)
        << "attack flow tokens must not verify under the real key";
}

TEST(IperfSender, FragmentationDoublesFrames)
{
    sim::EventQueue eq;
    pcie::PcieFabric fabric{eq};
    pcie::MemoryEndpoint hostmem{"m", 32 << 20};
    pcie::PortId hp = fabric.add_port("h", 50.0, 0);
    fabric.attach(hp, &hostmem, 0, 32 << 20);
    pcie::PortId np = fabric.add_port("n", 100.0, 0);
    nic::NicDevice nic("nic", eq, fabric, np);
    fabric.attach(np, &nic, 0x4000'0000, nic::NicDevice::kBarSize);
    driver::HostNode host("h", eq, {});
    nic::VportId v = nic.add_vport();
    driver::CpuDriver drv("d", eq, fabric, hp, hostmem, 0x1000,
                          24 << 20, nic, 0x4000'0000, host, v);
    // Sink everything at the switch.
    nic::FlowMatch m;
    m.in_vport = v;
    nic.add_rule(0, 0, m, {nic::drop_action()});

    IperfConfig cfg;
    cfg.fragment = true;
    cfg.route_mtu = 1450;
    cfg.offered_gbps = 10.0;
    IperfSender iperf(eq, host, drv, cfg);
    iperf.start(sim::milliseconds(1));
    eq.run();

    EXPECT_GT(iperf.datagrams_sent(), 100u);
    EXPECT_EQ(iperf.frames_sent(), 2 * iperf.datagrams_sent())
        << "1500 B datagrams over a 1450 B route MTU split in two";
}

TEST(IperfSender, NoFragmentationOneFramePerDatagram)
{
    sim::EventQueue eq;
    pcie::PcieFabric fabric{eq};
    pcie::MemoryEndpoint hostmem{"m", 32 << 20};
    pcie::PortId hp = fabric.add_port("h", 50.0, 0);
    fabric.attach(hp, &hostmem, 0, 32 << 20);
    pcie::PortId np = fabric.add_port("n", 100.0, 0);
    nic::NicDevice nic("nic", eq, fabric, np);
    fabric.attach(np, &nic, 0x4000'0000, nic::NicDevice::kBarSize);
    driver::HostNode host("h", eq, {});
    nic::VportId v = nic.add_vport();
    driver::CpuDriver drv("d", eq, fabric, hp, hostmem, 0x1000,
                          24 << 20, nic, 0x4000'0000, host, v);
    nic::FlowMatch m;
    m.in_vport = v;
    nic.add_rule(0, 0, m, {nic::drop_action()});

    IperfConfig cfg;
    cfg.offered_gbps = 10.0;
    IperfSender iperf(eq, host, drv, cfg);
    iperf.start(sim::milliseconds(1));
    eq.run();
    EXPECT_EQ(iperf.frames_sent(), iperf.datagrams_sent());
}

} // namespace
} // namespace fld::apps
