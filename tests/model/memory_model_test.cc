/**
 * @file
 * Memory-model tests: must reproduce Table 2a and Table 3 *exactly*
 * (85.3 MiB software vs 832.7 KiB FLD, x105 overall).
 */
#include "model/memory_model.h"

#include <gtest/gtest.h>

namespace fld::model {
namespace {

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;

TEST(MemoryModel, Table2aDerivedParameters)
{
    MemoryParams p; // defaults == Table 2a
    DerivedParams d = derive(p);
    // R = 100 Gbps / (256+20)B = 45.3 Mpps ("45 Mpps").
    EXPECT_NEAR(d.packet_rate_mpps, 45.3, 0.2);
    // Min. TX descriptors: ceil(R * 25 us) = 1133.
    EXPECT_EQ(d.n_txdesc, 1133u);
    // Min. RX descriptors: ceil(R * 5 us) = 227.
    EXPECT_EQ(d.n_rxdesc, 227u);
    // BDPs: 305 KiB and 61 KiB.
    EXPECT_NEAR(d.s_txbdp / kKiB, 305.2, 0.5);
    EXPECT_NEAR(d.s_rxbdp / kKiB, 61.0, 0.2);
}

TEST(MemoryModel, Table3SoftwareColumn)
{
    MemoryParams p;
    MemoryBreakdown m = software_memory(p);
    EXPECT_NEAR(m.txq / kMiB, 64.0, 0.01);      // 512 * 2048 * 64 B
    EXPECT_NEAR(m.txdata / kMiB, 17.7, 0.05);   // 16 KiB * 1133
    EXPECT_NEAR(m.rxdata / kMiB, 3.5, 0.06);    // 16 KiB * 227
    EXPECT_NEAR(m.cq / kKiB, 144.0, 0.01);      // (2048+256)*64
    EXPECT_NEAR(m.srq / kKiB, 4.0, 0.01);       // 256*16
    EXPECT_NEAR(m.pi, 2052.0, 0.1);             // 513*4
    EXPECT_NEAR(m.total / kMiB, 85.3, 0.2);
}

TEST(MemoryModel, Table3FldColumn)
{
    MemoryParams p;
    MemoryBreakdown m = fld_memory(p);
    EXPECT_NEAR(m.txq / kKiB, 32.0, 0.8);     // 2048*8 + 15.5 KiB
    EXPECT_NEAR(m.txdata / kKiB, 643.0, 2.0); // 2*305 + 33 KiB
    EXPECT_NEAR(m.rxdata / kKiB, 122.0, 0.5); // 2*61 KiB
    EXPECT_NEAR(m.cq / kKiB, 33.75, 0.01);    // (2048+256)*15
    EXPECT_EQ(m.srq, 0.0);                    // host memory
    EXPECT_NEAR(m.pi, 2052.0, 0.1);
    EXPECT_NEAR(m.total / kKiB, 832.7, 3.0);
}

TEST(MemoryModel, Table3ShrinkRatios)
{
    MemoryParams p;
    MemoryBreakdown sw = software_memory(p);
    MemoryBreakdown fld = fld_memory(p);
    EXPECT_NEAR(sw.txq / fld.txq, 2080, 60);
    EXPECT_NEAR(sw.txdata / fld.txdata, 28.2, 0.5);
    EXPECT_NEAR(sw.rxdata / fld.rxdata, 29.8, 0.5);
    EXPECT_NEAR(sw.cq / fld.cq, 4.27, 0.02);
    EXPECT_NEAR(sw.total / fld.total, 105, 2);
}

TEST(MemoryModel, Figure4ScalingShape)
{
    // FLD stays within the XCKU15P (10.05 MiB) even at 400 Gbps and
    // 2048 queues; the software driver exceeds it by orders of
    // magnitude (the point of Figure 4).
    MemoryParams p;
    p.bandwidth_gbps = 400;
    p.num_queues = 2048;
    MemoryBreakdown fld = fld_memory(p);
    MemoryBreakdown sw = software_memory(p);
    EXPECT_LT(fld.total / kMiB, 10.05);
    EXPECT_GT(sw.total / kMiB, 100.0);
}

TEST(MemoryModel, SoftwareTxRingsScaleWithQueues)
{
    MemoryParams p;
    MemoryBreakdown base = software_memory(p);
    p.num_queues = 1024;
    MemoryBreakdown doubled = software_memory(p);
    EXPECT_NEAR(doubled.txq / base.txq, 2.0, 1e-9);
    // FLD's tx ring memory is queue-count independent.
    MemoryParams q;
    MemoryBreakdown f1 = fld_memory(q);
    q.num_queues = 1024;
    MemoryBreakdown f2 = fld_memory(q);
    EXPECT_NEAR(f2.txq, f1.txq, 1e-9);
}

TEST(MemoryModel, BandwidthScalesBuffers)
{
    MemoryParams p;
    MemoryBreakdown at100 = fld_memory(p);
    p.bandwidth_gbps = 200;
    MemoryBreakdown at200 = fld_memory(p);
    EXPECT_NEAR(at200.rxdata / at100.rxdata, 2.0, 1e-9);
    EXPECT_GT(at200.txdata, at100.txdata * 1.9);
}

} // namespace
} // namespace fld::model
