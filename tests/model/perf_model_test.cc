/** @file Performance-model (Fig 7a) sanity and shape tests. */
#include "model/perf_model.h"

#include <gtest/gtest.h>

namespace fld::model {
namespace {

TEST(PerfModel, EthernetGoodputAccountsFraming)
{
    EXPECT_NEAR(eth_goodput_gbps(25.0, 1500), 25.0 * 1500 / 1520,
                1e-9);
    EXPECT_NEAR(eth_goodput_gbps(25.0, 64), 25.0 * 64 / 84, 1e-9);
}

TEST(PerfModel, PcieCostDecomposes)
{
    PerfModelParams p;
    PcieCost c = echo_pcie_cost(p, 512);
    // Both directions carry at least the payload once.
    EXPECT_GT(c.to_fld, 512);
    EXPECT_GT(c.from_fld, 512);
    // Overheads are bounded (within ~40% at 512 B).
    EXPECT_LT(c.to_fld, 512 * 1.45);
    EXPECT_LT(c.from_fld, 512 * 1.45);
}

TEST(PerfModel, Remote25GMeetsLineForMtuPackets)
{
    // The paper's remote configuration: 25 GbE port, 50 Gbps PCIe.
    PerfModelParams p;
    p.pcie_gbps = 50.0;
    p.eth_gbps = 25.0;
    for (uint32_t size : {128u, 256u, 512u, 1024u, 1500u}) {
        EXPECT_NEAR(fld_expected_gbps(p, size),
                    eth_goodput_gbps(25.0, size), 1e-6)
            << "size " << size;
    }
    // At 64 B the PCIe control overhead bites (Fig 7b: measured FLD-E
    // meets expectations only from 128 B up).
    EXPECT_LT(fld_expected_gbps(p, 64), eth_goodput_gbps(25.0, 64));
    EXPECT_GT(fld_expected_gbps(p, 64),
              0.7 * eth_goodput_gbps(25.0, 64));
}

TEST(PerfModel, PcieBoundGrowsWithPacketSize)
{
    PerfModelParams p;
    double prev = 0;
    for (uint32_t size = 64; size <= 16384; size *= 2) {
        double g = fld_pcie_bound_gbps(p, size);
        EXPECT_GT(g, prev) << "size " << size;
        prev = g;
    }
}

TEST(PerfModel, LocalConfigCapsAtPcie)
{
    // Local experiments: traffic crosses the 50 Gbps PCIe twice
    // (host link and FLD link), so the per-link bound applies.
    PerfModelParams p;
    p.pcie_gbps = 50.0;
    p.eth_gbps = 50.0;
    double bound = fld_pcie_bound_gbps(p, 1500);
    EXPECT_LT(bound, 50.0);
    EXPECT_GT(bound, 38.0); // header overheads only
}

TEST(PerfModel, HigherPcieRateLiftsSmallPacketBound)
{
    PerfModelParams p50;
    p50.pcie_gbps = 50.0;
    PerfModelParams p100;
    p100.pcie_gbps = 100.0;
    EXPECT_NEAR(fld_pcie_bound_gbps(p100, 256) /
                    fld_pcie_bound_gbps(p50, 256),
                2.0, 1e-9);
}

TEST(PerfModel, ZucBoundBelowLineAndAboveHalf)
{
    // Fig 8a's model line: 25 GbE, 64 B app headers, 1024 B MTU.
    PerfModelParams p;
    p.pcie_gbps = 50.0;
    p.eth_gbps = 25.0;
    double g512 = zuc_expected_gbps(p, 512, 64, 1024);
    EXPECT_GT(g512, 15.0);
    EXPECT_LT(g512, 25.0);
    // Larger requests amortize headers better.
    EXPECT_GT(zuc_expected_gbps(p, 2048, 64, 1024), g512);
    // The paper reports 17.6 Gbps measured = 89% of expected at
    // >= 512 B: the expected value is ~19.8 Gbps. Allow a band.
    EXPECT_NEAR(g512, 19.8, 2.0);
}

} // namespace
} // namespace fld::model
