/** @file PCIe fabric: routing, timing, contention, TLP accounting. */
#include "pcie/fabric.h"

#include <gtest/gtest.h>

#include "pcie/tlp.h"

namespace fld::pcie {
namespace {

struct Fixture
{
    sim::EventQueue eq;
    PcieFabric fabric{eq};
    MemoryEndpoint host{"host", 1 << 20};
    MemoryEndpoint dev{"dev", 1 << 20};
    PortId host_port;
    PortId dev_port;

    Fixture(double gbps = 50.0, sim::TimePs lat = sim::nanoseconds(150))
    {
        host_port = fabric.add_port("host", gbps, lat);
        dev_port = fabric.add_port("dev", gbps, lat);
        fabric.attach(host_port, &host, 0x0000'0000, 1 << 20);
        fabric.attach(dev_port, &dev, 0x1000'0000, 1 << 20);
    }
};

TEST(TlpParams, WriteSegmentation)
{
    TlpParams tlp;
    EXPECT_EQ(tlp.write_tlps(0), 1u);
    EXPECT_EQ(tlp.write_tlps(1), 1u);
    EXPECT_EQ(tlp.write_tlps(256), 1u);
    EXPECT_EQ(tlp.write_tlps(257), 2u);
    EXPECT_EQ(tlp.write_tlps(1500), 6u);
    EXPECT_EQ(tlp.write_wire_bytes(1500), 1500u + 6 * 24);
}

TEST(TlpParams, ReadSegmentation)
{
    TlpParams tlp;
    EXPECT_EQ(tlp.read_req_tlps(512), 1u);
    EXPECT_EQ(tlp.read_req_tlps(513), 2u);
    EXPECT_EQ(tlp.read_req_wire_bytes(64), 24u);
    EXPECT_EQ(tlp.read_cpl_wire_bytes(64), 64u + 24);
}

TEST(PcieFabric, WriteDeliversData)
{
    Fixture f;
    bool done = false;
    std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
    f.fabric.write(f.host_port, 0x1000'0010, payload,
                   [&] { done = true; });
    f.eq.run();
    ASSERT_TRUE(done);
    uint8_t out[5];
    f.dev.bar_read(0x10, out, 5);
    EXPECT_EQ(std::vector<uint8_t>(out, out + 5), payload);
}

TEST(PcieFabric, ReadReturnsWrittenData)
{
    Fixture f;
    uint8_t seed[8] = {9, 8, 7, 6, 5, 4, 3, 2};
    f.dev.bar_write(0x40, seed, 8);

    std::vector<uint8_t> got;
    f.fabric.read(f.host_port, 0x1000'0040, 8,
                  [&](std::vector<uint8_t> data) { got = std::move(data); });
    f.eq.run();
    EXPECT_EQ(got, std::vector<uint8_t>(seed, seed + 8));
}

TEST(PcieFabric, WriteLatencyMatchesModel)
{
    Fixture f(50.0, sim::nanoseconds(150));
    sim::TimePs delivered = 0;
    f.fabric.write(f.host_port, 0x1000'0000,
                   std::vector<uint8_t>(64, 0xaa),
                   [&] { delivered = f.eq.now(); });
    f.eq.run();
    // Wire = 64 + 24 = 88 B; serialization at 50 Gbps = 14.08 ns,
    // twice (src egress + dst ingress), plus 2 x 150 ns propagation.
    sim::TimePs expect = 2 * sim::serialize_time(88, 50.0) +
                         2 * sim::nanoseconds(150);
    EXPECT_EQ(delivered, expect);
}

TEST(PcieFabric, ReadRoundTripLatency)
{
    Fixture f(50.0, sim::nanoseconds(150));
    sim::TimePs done_at = 0;
    f.fabric.read(f.host_port, 0x1000'0000, 64,
                  [&](std::vector<uint8_t>) { done_at = f.eq.now(); });
    f.eq.run();
    // Request: 24 B wire both segments + 2 hops; completion: 88 B both
    // segments + 2 hops.
    sim::TimePs expect = 2 * sim::serialize_time(24, 50.0) +
                         2 * sim::serialize_time(88, 50.0) +
                         4 * sim::nanoseconds(150);
    EXPECT_EQ(done_at, expect);
}

TEST(PcieFabric, BackToBackWritesSerialize)
{
    Fixture f(50.0, 0);
    sim::TimePs t1 = 0, t2 = 0;
    std::vector<uint8_t> data(256, 1); // 280 B wire each
    f.fabric.write(f.host_port, 0x1000'0000, data,
                   [&] { t1 = f.eq.now(); });
    f.fabric.write(f.host_port, 0x1000'2000, data,
                   [&] { t2 = f.eq.now(); });
    f.eq.run();
    // Second write cannot finish less than one serialization after the
    // first (they share the egress link).
    EXPECT_GE(t2, t1 + sim::serialize_time(280, 50.0));
}

TEST(PcieFabric, OppositeDirectionsDoNotContend)
{
    Fixture f(50.0, 0);
    // Host->dev and dev->host writes at the same instant.
    sim::TimePs t1 = 0, t2 = 0;
    std::vector<uint8_t> data(1024, 1);
    f.fabric.write(f.host_port, 0x1000'0000, data,
                   [&] { t1 = f.eq.now(); });
    f.fabric.write(f.dev_port, 0x0000'0000, data,
                   [&] { t2 = f.eq.now(); });
    f.eq.run();
    // Full-duplex links: both complete in one serialization x2 window.
    sim::TimePs one = sim::serialize_time(1024 + 4 * 24, 50.0);
    EXPECT_LE(t1, 2 * one + 1);
    EXPECT_LE(t2, 2 * one + 1);
}

TEST(PcieFabric, StatsAccumulateWireBytes)
{
    Fixture f;
    f.fabric.write(f.host_port, 0x1000'0000,
                   std::vector<uint8_t>(100, 0));
    f.eq.run();
    const PortStats& s = f.fabric.stats(f.host_port);
    EXPECT_EQ(s.egress_bytes, 100u + 24);
    EXPECT_EQ(s.writes, 1u);
    const PortStats& d = f.fabric.stats(f.dev_port);
    EXPECT_EQ(d.ingress_bytes, 100u + 24);
}

TEST(PcieFabric, ThroughputBoundedByLinkRate)
{
    Fixture f(50.0, sim::nanoseconds(150));
    // Blast 1000 x 1 KiB writes; goodput must be below 50 Gbps and
    // close to 50 * 1024/(1024+4*24) once headers are paid.
    const int n = 1000;
    int delivered = 0;
    sim::TimePs last = 0;
    for (int i = 0; i < n; ++i) {
        f.fabric.write(f.host_port, 0x1000'0000 + (i % 16) * 1024,
                       std::vector<uint8_t>(1024, uint8_t(i)), [&] {
                           ++delivered;
                           last = f.eq.now();
                       });
    }
    f.eq.run();
    ASSERT_EQ(delivered, n);
    double goodput = sim::gbps_of(uint64_t(n) * 1024, last);
    double expect = 50.0 * 1024.0 / (1024.0 + 4 * 24);
    EXPECT_LT(goodput, 50.0);
    EXPECT_NEAR(goodput, expect, 2.0);
}

TEST(PcieFabricDeath, UnmappedAddressPanics)
{
    Fixture f;
    EXPECT_DEATH(
        {
            f.fabric.write(f.host_port, 0x7000'0000, {1});
            f.eq.run();
        },
        "no endpoint");
}

TEST(MemoryEndpoint, GrowsOnDemandAndZeroFills)
{
    MemoryEndpoint mem("m", 4096);
    uint8_t out[16];
    mem.bar_read(100, out, 16);
    for (uint8_t b : out)
        EXPECT_EQ(b, 0);
    uint8_t v = 42;
    mem.bar_write(4000, &v, 1);
    mem.bar_read(4000, out, 1);
    EXPECT_EQ(out[0], 42);
}

} // namespace
} // namespace fld::pcie
