/**
 * @file
 * Parameterized PCIe fabric sweeps: TLP geometry (MPS/MRRS), link
 * rates, and transfer sizes — the wire-byte accounting must stay
 * exact and throughput must track the configured rate.
 */
#include <gtest/gtest.h>

#include <tuple>

#include "pcie/fabric.h"

namespace fld::pcie {
namespace {

class TlpGeometrySweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{};

TEST_P(TlpGeometrySweep, WireBytesExact)
{
    auto [mps, mrrs] = GetParam();
    TlpParams tlp;
    tlp.mps = mps;
    tlp.mrrs = mrrs;

    for (uint64_t len : {1ull, 63ull, 64ull, 255ull, 256ull, 257ull,
                         1500ull, 4096ull, 65536ull}) {
        uint32_t wtlps = uint32_t((len + mps - 1) / mps);
        EXPECT_EQ(tlp.write_tlps(len), wtlps) << len;
        EXPECT_EQ(tlp.write_wire_bytes(len),
                  len + uint64_t(wtlps) * tlp.hdr)
            << len;
        uint32_t rtlps = uint32_t((len + mrrs - 1) / mrrs);
        EXPECT_EQ(tlp.read_req_tlps(len), rtlps) << len;
        EXPECT_EQ(tlp.read_req_wire_bytes(len),
                  uint64_t(rtlps) * tlp.read_req)
            << len;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlpGeometrySweep,
    ::testing::Combine(::testing::Values<uint32_t>(128, 256, 512),
                       ::testing::Values<uint32_t>(256, 512, 4096)));

class LinkRateSweep : public ::testing::TestWithParam<double>
{};

TEST_P(LinkRateSweep, SustainedWritesTrackConfiguredRate)
{
    double gbps = GetParam();
    sim::EventQueue eq;
    PcieFabric fabric(eq);
    MemoryEndpoint mem("m", 1 << 20);
    PortId a = fabric.add_port("a", gbps, 0);
    PortId b = fabric.add_port("b", gbps, 0);
    fabric.attach(b, &mem, 0, 1 << 20);
    (void)a;

    const int n = 500;
    const uint64_t len = 2048;
    sim::TimePs last = 0;
    for (int i = 0; i < n; ++i) {
        fabric.write(a, uint64_t(i % 8) * 4096,
                     std::vector<uint8_t>(len, uint8_t(i)),
                     [&] { last = eq.now(); });
    }
    eq.run();

    TlpParams tlp;
    double wire = double(tlp.write_wire_bytes(len));
    double expect = gbps * double(len) / wire;
    double measured = sim::gbps_of(uint64_t(n) * len, last);
    EXPECT_NEAR(measured, expect, expect * 0.02) << gbps;
}

INSTANTIATE_TEST_SUITE_P(Rates, LinkRateSweep,
                         ::testing::Values(10.0, 25.0, 50.0, 100.0));

class ReadSizeSweep : public ::testing::TestWithParam<size_t>
{};

TEST_P(ReadSizeSweep, ReadsReturnExactBytes)
{
    size_t len = GetParam();
    sim::EventQueue eq;
    PcieFabric fabric(eq);
    MemoryEndpoint mem("m", 1 << 20);
    PortId a = fabric.add_port("a", 50.0, sim::nanoseconds(100));
    PortId b = fabric.add_port("b", 50.0, sim::nanoseconds(100));
    fabric.attach(b, &mem, 0, 1 << 20);

    std::vector<uint8_t> seed(len);
    for (size_t i = 0; i < len; ++i)
        seed[i] = uint8_t(i * 13 + 7);
    if (len)
        mem.bar_write(100, seed.data(), len);

    std::vector<uint8_t> got;
    fabric.read(a, 100, len,
                [&](std::vector<uint8_t> data) { got = std::move(data); });
    eq.run();
    EXPECT_EQ(got, seed);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReadSizeSweep,
                         ::testing::Values<size_t>(1, 64, 256, 257,
                                                   4096, 65536));

} // namespace
} // namespace fld::pcie
