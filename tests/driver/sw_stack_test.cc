/**
 * @file
 * Unit tests for the software send stack: ARP resolution, TCP
 * segmentation at MSS boundaries, and retransmission timer arming.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "driver/sw_stack.h"
#include "net/headers.h"
#include "sim/event_queue.h"

namespace fld::driver {
namespace {

constexpr net::MacAddr kPeerMac = {0x02, 0, 0, 0, 0, 0x99};

/** Captures every frame the stack transmits. */
struct TxCapture
{
    std::vector<net::Packet> frames;

    SoftwareSendStack::TxFn fn()
    {
        return [this](net::Packet&& p) { frames.push_back(std::move(p)); };
    }
};

SendStackConfig
small_config()
{
    SendStackConfig cfg;
    cfg.mss = 100;
    cfg.window_segments = 4;
    cfg.rto = sim::microseconds(200);
    return cfg;
}

std::vector<uint8_t>
pattern(size_t n)
{
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; ++i)
        v[i] = uint8_t(i * 13 + 7);
    return v;
}

/** Build the cumulative ACK the peer would send for `ack`. */
net::Packet
ack_packet(const SendStackConfig& cfg, uint32_t ack)
{
    return net::PacketBuilder()
        .eth(kPeerMac, cfg.src_mac)
        .ipv4(cfg.dst_ip, cfg.src_ip, net::kIpProtoTcp)
        .tcp(cfg.dport, cfg.sport, /*seq=*/1, ack, /*flags=*/0x10)
        .build();
}

// ---------------------------------------------------------------------
// ARP resolution
// ---------------------------------------------------------------------

TEST(SwSendStack, UnresolvedPeerTriggersArpRequestAndQueues)
{
    sim::EventQueue eq;
    TxCapture tx;
    SoftwareSendStack stack(eq, tx.fn(), small_config());

    stack.send(pattern(250)); // 3 segments
    eq.run();

    // Only the ARP request went out; data waits for the reply.
    ASSERT_EQ(tx.frames.size(), 1u);
    EXPECT_EQ(stack.backlog_segments(), 3u);
    EXPECT_EQ(stack.segments_sent(), 0u);
    EXPECT_EQ(stack.arp_requests(), 1u);

    const net::Packet& req = tx.frames[0];
    net::EthHeader eth = net::EthHeader::decode(req.bytes());
    EXPECT_EQ(eth.ethertype, net::kEtherTypeArp);
    net::MacAddr bcast = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
    EXPECT_EQ(eth.dst, bcast);

    auto arp = net::ArpHeader::decode(req.bytes() + net::kEthHeaderLen,
                                      req.size() - net::kEthHeaderLen);
    ASSERT_TRUE(arp.has_value());
    EXPECT_EQ(arp->oper, net::ArpHeader::kRequest);
    EXPECT_EQ(arp->target_ip, small_config().dst_ip);
    EXPECT_EQ(arp->sender_ip, small_config().src_ip);
}

TEST(SwSendStack, ArpReplyReleasesQueuedSegments)
{
    sim::EventQueue eq;
    TxCapture tx;
    SendStackConfig cfg = small_config();
    SoftwareSendStack stack(eq, tx.fn(), cfg);

    stack.send(pattern(250));
    ASSERT_EQ(tx.frames.size(), 1u); // the ARP request

    net::ArpHeader reply;
    reply.oper = net::ArpHeader::kReply;
    reply.sender_mac = kPeerMac;
    reply.sender_ip = cfg.dst_ip;
    reply.target_mac = cfg.src_mac;
    reply.target_ip = cfg.src_ip;
    net::EthHeader eth;
    eth.src = kPeerMac;
    eth.dst = cfg.src_mac;
    eth.ethertype = net::kEtherTypeArp;
    net::Packet frame;
    frame.data.resize(net::kEthHeaderLen + net::kArpLen);
    eth.encode(frame.bytes());
    reply.encode(frame.bytes() + net::kEthHeaderLen);

    stack.on_rx(frame); // transmission is synchronous on resolution

    EXPECT_TRUE(stack.resolved(cfg.dst_ip));
    ASSERT_EQ(tx.frames.size(), 4u); // request + 3 data segments
    for (size_t i = 1; i < tx.frames.size(); ++i) {
        net::EthHeader h = net::EthHeader::decode(tx.frames[i].bytes());
        EXPECT_EQ(h.dst, kPeerMac) << "segment " << i;
    }
    // Exactly one request even though three segments were waiting.
    EXPECT_EQ(stack.arp_requests(), 1u);
}

TEST(SwSendStack, StaticArpEntrySkipsResolution)
{
    sim::EventQueue eq;
    TxCapture tx;
    SendStackConfig cfg = small_config();
    SoftwareSendStack stack(eq, tx.fn(), cfg);
    stack.add_arp_entry(cfg.dst_ip, kPeerMac);

    stack.send(pattern(50));
    ASSERT_EQ(tx.frames.size(), 1u);
    net::ParsedPacket pp = net::parse(tx.frames[0]);
    ASSERT_TRUE(pp.tcp.has_value());
    EXPECT_EQ(stack.arp_requests(), 0u);
}

// ---------------------------------------------------------------------
// TCP segmentation
// ---------------------------------------------------------------------

TEST(SwSendStack, SegmentsAtMssBoundaries)
{
    sim::EventQueue eq;
    TxCapture tx;
    SendStackConfig cfg = small_config(); // mss = 100
    SoftwareSendStack stack(eq, tx.fn(), cfg);
    stack.add_arp_entry(cfg.dst_ip, kPeerMac);

    std::vector<uint8_t> data = pattern(3 * cfg.mss + 7);
    stack.send(data);

    ASSERT_EQ(tx.frames.size(), 4u);
    uint32_t expect_seq = 1;
    size_t off = 0;
    for (size_t i = 0; i < tx.frames.size(); ++i) {
        net::ParsedPacket pp = net::parse(tx.frames[i]);
        ASSERT_TRUE(pp.tcp.has_value()) << "segment " << i;
        EXPECT_EQ(pp.tcp->seq, expect_seq) << "segment " << i;
        size_t want = (i < 3) ? cfg.mss : 7u;
        ASSERT_EQ(pp.payload_len, want) << "segment " << i;
        EXPECT_EQ(0, std::memcmp(tx.frames[i].bytes() + pp.payload_offset,
                                 data.data() + off, want))
            << "segment " << i;
        // PSH marks the end of the application write, nothing earlier.
        EXPECT_EQ((pp.tcp->flags & 0x08) != 0, i == 3) << "segment " << i;
        expect_seq += uint32_t(want);
        off += want;
    }
    EXPECT_EQ(stack.snd_nxt(), 1u + uint32_t(data.size()));
}

TEST(SwSendStack, ExactMultipleOfMssHasNoEmptyTail)
{
    sim::EventQueue eq;
    TxCapture tx;
    SendStackConfig cfg = small_config();
    SoftwareSendStack stack(eq, tx.fn(), cfg);
    stack.add_arp_entry(cfg.dst_ip, kPeerMac);

    stack.send(pattern(2 * cfg.mss));
    ASSERT_EQ(tx.frames.size(), 2u);
    net::ParsedPacket last = net::parse(tx.frames[1]);
    EXPECT_EQ(last.payload_len, cfg.mss);
    EXPECT_TRUE(last.tcp->flags & 0x08); // still PSH-terminated
}

TEST(SwSendStack, WindowLimitsInFlightSegments)
{
    sim::EventQueue eq;
    TxCapture tx;
    SendStackConfig cfg = small_config(); // window = 4 segments
    SoftwareSendStack stack(eq, tx.fn(), cfg);
    stack.add_arp_entry(cfg.dst_ip, kPeerMac);

    stack.send(pattern(6 * cfg.mss));
    EXPECT_EQ(tx.frames.size(), 4u);
    EXPECT_EQ(stack.unacked_segments(), 4u);
    EXPECT_EQ(stack.backlog_segments(), 2u);

    // Cumulative ACK for the first two segments opens the window.
    stack.on_rx(ack_packet(cfg, 1 + 2 * cfg.mss));
    EXPECT_EQ(tx.frames.size(), 6u);
    EXPECT_EQ(stack.snd_una(), 1 + 2 * cfg.mss);
    EXPECT_EQ(stack.backlog_segments(), 0u);
}

// ---------------------------------------------------------------------
// Retransmission timer
// ---------------------------------------------------------------------

TEST(SwSendStack, TimerArmsOnFirstUnackedSegment)
{
    sim::EventQueue eq;
    TxCapture tx;
    SendStackConfig cfg = small_config();
    SoftwareSendStack stack(eq, tx.fn(), cfg);
    stack.add_arp_entry(cfg.dst_ip, kPeerMac);

    EXPECT_FALSE(stack.timer_armed());
    stack.send(pattern(50));
    EXPECT_TRUE(stack.timer_armed());
}

TEST(SwSendStack, TimeoutRetransmitsWholeWindow)
{
    sim::EventQueue eq;
    TxCapture tx;
    SendStackConfig cfg = small_config();
    SoftwareSendStack stack(eq, tx.fn(), cfg);
    stack.add_arp_entry(cfg.dst_ip, kPeerMac);

    stack.send(pattern(2 * cfg.mss)); // 2 segments, both in window
    ASSERT_EQ(tx.frames.size(), 2u);

    eq.run_until(cfg.rto + sim::microseconds(1));
    // Go-back-N: both segments resent, same sequence numbers.
    ASSERT_EQ(tx.frames.size(), 4u);
    EXPECT_EQ(stack.retransmits(), 2u);
    EXPECT_EQ(net::parse(tx.frames[2]).tcp->seq, 1u);
    EXPECT_EQ(net::parse(tx.frames[3]).tcp->seq, 1u + cfg.mss);
    // And the timer is armed again for the retransmission.
    EXPECT_TRUE(stack.timer_armed());
}

TEST(SwSendStack, AckDisarmsTimerNoSpuriousRetransmit)
{
    sim::EventQueue eq;
    TxCapture tx;
    SendStackConfig cfg = small_config();
    SoftwareSendStack stack(eq, tx.fn(), cfg);
    stack.add_arp_entry(cfg.dst_ip, kPeerMac);

    stack.send(pattern(cfg.mss));
    ASSERT_EQ(tx.frames.size(), 1u);

    // ACK everything just before the timer would fire.
    eq.run_until(cfg.rto - sim::microseconds(10));
    stack.on_rx(ack_packet(cfg, 1 + cfg.mss));
    EXPECT_EQ(stack.unacked_segments(), 0u);
    EXPECT_FALSE(stack.timer_armed());

    // The already-scheduled timeout must hit the generation check.
    eq.run();
    EXPECT_EQ(tx.frames.size(), 1u);
    EXPECT_EQ(stack.retransmits(), 0u);
}

TEST(SwSendStack, StaleTimerDoesNotRetransmitAfterProgress)
{
    sim::EventQueue eq;
    TxCapture tx;
    SendStackConfig cfg = small_config();
    SoftwareSendStack stack(eq, tx.fn(), cfg);
    stack.add_arp_entry(cfg.dst_ip, kPeerMac);

    stack.send(pattern(cfg.mss)); // seg 1, timer armed at t=0
    eq.run_until(cfg.rto / 2);
    stack.on_rx(ack_packet(cfg, 1 + cfg.mss)); // progress
    stack.send(pattern(cfg.mss));              // seg 2, fresh timer

    // Past the ORIGINAL deadline: the stale timer must not fire.
    eq.run_until(cfg.rto + sim::microseconds(1));
    EXPECT_EQ(stack.retransmits(), 0u);

    // The fresh timer still protects segment 2.
    eq.run_until(cfg.rto / 2 + cfg.rto + sim::microseconds(1));
    EXPECT_EQ(stack.retransmits(), 1u);
    EXPECT_EQ(net::parse(tx.frames.back()).tcp->seq, 1u + cfg.mss);
}

TEST(SwSendStack, DuplicateAckIsIgnored)
{
    sim::EventQueue eq;
    TxCapture tx;
    SendStackConfig cfg = small_config();
    SoftwareSendStack stack(eq, tx.fn(), cfg);
    stack.add_arp_entry(cfg.dst_ip, kPeerMac);

    stack.send(pattern(2 * cfg.mss));
    stack.on_rx(ack_packet(cfg, 1 + cfg.mss));
    uint32_t una = stack.snd_una();
    stack.on_rx(ack_packet(cfg, 1 + cfg.mss)); // duplicate
    stack.on_rx(ack_packet(cfg, 1));           // stale
    EXPECT_EQ(stack.snd_una(), una);
    EXPECT_EQ(stack.unacked_segments(), 1u);
}

TEST(SwSendStack, MaxRetriesResetsConnection)
{
    sim::EventQueue eq;
    TxCapture tx;
    SendStackConfig cfg = small_config();
    cfg.max_retries = 2;
    SoftwareSendStack stack(eq, tx.fn(), cfg);
    stack.add_arp_entry(cfg.dst_ip, kPeerMac);

    stack.send(pattern(cfg.mss));
    eq.run(); // no ACK ever: retry, retry, reset
    EXPECT_EQ(stack.retransmits(), 2u);
    EXPECT_EQ(stack.resets(), 1u);
    EXPECT_EQ(stack.unacked_segments(), 0u);
}

} // namespace
} // namespace fld::driver
