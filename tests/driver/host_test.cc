/** @file Host CPU model tests: serialization, jitter, utilization. */
#include "driver/host.h"

#include <gtest/gtest.h>

#include "sim/stats.h"

namespace fld::driver {
namespace {

HostConfig no_jitter()
{
    HostConfig cfg;
    cfg.jitter_prob = 0.0;
    return cfg;
}

TEST(HostNode, CoreSerializesWork)
{
    sim::EventQueue eq;
    HostNode host("h", eq, no_jitter());
    std::vector<sim::TimePs> done;
    for (int i = 0; i < 3; ++i) {
        host.run_on_core(0, sim::nanoseconds(100),
                         [&] { done.push_back(eq.now()); });
    }
    eq.run();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0], sim::nanoseconds(100));
    EXPECT_EQ(done[1], sim::nanoseconds(200));
    EXPECT_EQ(done[2], sim::nanoseconds(300));
}

TEST(HostNode, CoresAreIndependent)
{
    sim::EventQueue eq;
    HostNode host("h", eq, no_jitter());
    sim::TimePs a = 0, b = 0;
    host.run_on_core(0, sim::microseconds(10), [&] { a = eq.now(); });
    host.run_on_core(1, sim::nanoseconds(10), [&] { b = eq.now(); });
    eq.run();
    EXPECT_EQ(a, sim::microseconds(10));
    EXPECT_EQ(b, sim::nanoseconds(10));
}

TEST(HostNode, BusyTimeAccounting)
{
    sim::EventQueue eq;
    HostNode host("h", eq, no_jitter());
    for (int i = 0; i < 10; ++i)
        host.run_on_core(2, sim::nanoseconds(50), [] {});
    eq.run();
    EXPECT_EQ(host.core_busy_time(2), sim::nanoseconds(500));
    EXPECT_EQ(host.core_busy_time(3), 0u);
}

TEST(HostNode, PacketCostFormula)
{
    sim::EventQueue eq;
    HostConfig cfg = no_jitter();
    cfg.per_byte_cost = 2; // 2 ps/B
    HostNode host("h", eq, cfg);
    EXPECT_EQ(host.packet_cost(1000, false),
              cfg.rx_packet_cost + 2000);
    EXPECT_EQ(host.packet_cost(0, true), cfg.tx_packet_cost);
}

TEST(HostNode, JitterCreatesTailLatency)
{
    sim::EventQueue eq;
    HostConfig cfg;
    cfg.jitter_prob = 0.01;
    cfg.jitter_min = sim::microseconds(5);
    HostNode host("h", eq, cfg);

    sim::Histogram latency;
    // Submit items spaced far enough apart that the core is idle:
    // observed latency == cost + jitter.
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        eq.schedule_at(sim::microseconds(20) * uint64_t(i), [&, i] {
            sim::TimePs submit = eq.now();
            host.run_on_core(0, sim::nanoseconds(100), [&, submit] {
                latency.add(sim::to_us(eq.now() - submit));
            });
        });
    }
    eq.run();
    EXPECT_NEAR(latency.median(), 0.1, 0.01);
    EXPECT_GT(latency.percentile(99.9), 4.0)
        << "rare OS jitter must show in the tail";
    EXPECT_LT(latency.percentile(95), 0.2);
}

TEST(HostNodeDeath, CoreOutOfRange)
{
    sim::EventQueue eq;
    HostNode host("h", eq, no_jitter());
    EXPECT_DEATH(host.run_on_core(99, 1, [] {}), "out of range");
}

} // namespace
} // namespace fld::driver
